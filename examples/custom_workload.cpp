// Running a user-provided workload from disk: the tool assembles
// workloads/vector_scale.s at campaign time (paper §3.2: the user
// "selects the target system workload"), runs a pre-runtime SWIFI
// campaign against its memory image, and analyses the outcome.
#include <cstdio>

#include "core/goofi.h"

#ifndef GOOFI_WORKLOADS_DIR
#define GOOFI_WORKLOADS_DIR "workloads"
#endif

using namespace goofi;

int main() {
  const std::string path =
      std::string(GOOFI_WORKLOADS_DIR) + "/vector_scale.workload";
  auto workload = target::LoadWorkloadSpecFromFile(path);
  if (!workload.ok()) {
    std::fprintf(stderr, "loading %s: %s\n", path.c_str(),
                 workload.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded workload '%s' (%zu bytes of assembly)\n",
              workload->name.c_str(), workload->assembly.size());

  db::Database database;
  target::ThorRdTarget target;
  if (!target.SetWorkload(*workload).ok()) return 1;
  if (!core::RegisterTargetSystem(database, target, "sim-card", "").ok()) {
    return 1;
  }

  // Golden run first, to show the workload actually works.
  target::ExperimentSpec reference;
  reference.name = "golden";
  target.set_experiment(reference);
  if (auto s = target.MakeReferenceRun(); !s.ok()) {
    std::fprintf(stderr, "reference: %s\n", s.ToString().c_str());
    return 1;
  }
  const target::Observation golden = target.TakeObservation();
  std::printf("golden checksum: 0x%08x after %llu instructions\n",
              golden.emitted.empty() ? 0u : golden.emitted[0],
              static_cast<unsigned long long>(golden.instructions));

  // Pre-runtime SWIFI campaign over the program and data image.
  core::CampaignConfig config;
  config.name = "vector_scale_swifi";
  config.workload = "vector_scale";  // ignored by the runner? no:
  // The runner resolves built-in workloads by name; for file-based
  // workloads the target is configured directly and the campaign must
  // reference a placeholder. We therefore run the campaign through the
  // lower-level per-experiment API instead, which is exactly what the
  // runner does internally.
  (void)config;

  Rng rng(99);
  auto space = core::LocationSpace::Build(
      target.ListLocations(), target::Technique::kSwifiPreRuntime, {});
  if (!space.ok()) {
    std::fprintf(stderr, "%s\n", space.status().ToString().c_str());
    return 1;
  }
  std::printf("pre-runtime SWIFI location space: %llu bits over %zu "
              "ranges\n",
              static_cast<unsigned long long>(space->total_bits()),
              space->entries().size());

  std::size_t detected = 0;
  std::size_t escaped = 0;
  std::size_t latent = 0;
  std::size_t overwritten = 0;
  const int experiments = 300;
  for (int i = 0; i < experiments; ++i) {
    target::ExperimentSpec spec;
    spec.name = "vs/exp" + std::to_string(i);
    spec.technique = target::Technique::kSwifiPreRuntime;
    spec.targets = {space->SampleBit(rng)};
    target.set_experiment(spec);
    if (auto s = target.RunExperiment(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    const core::Classification result =
        core::Classify(golden, target.TakeObservation());
    switch (result.outcome) {
      case core::OutcomeClass::kDetected: ++detected; break;
      case core::OutcomeClass::kEscaped: ++escaped; break;
      case core::OutcomeClass::kLatent: ++latent; break;
      default: ++overwritten; break;
    }
  }
  std::printf("\n%d memory-image bit flips:\n", experiments);
  std::printf("  detected:    %zu\n", detected);
  std::printf("  escaped:     %zu\n", escaped);
  std::printf("  latent:      %zu\n", latent);
  std::printf("  overwritten: %zu\n", overwritten);
  std::printf("\n(code-image faults mostly hit cold bytes — overwritten —\n"
              "or decode as illegal/protection-faulting instructions —\n"
              "detected; data-image faults on the input vector escape as\n"
              "wrong checksums.)\n");
  return 0;
}
