// Quickstart: a complete GOOFI++ fault-injection campaign in ~80 lines.
//
// Mirrors the paper's four phases:
//   configuration -> RegisterTargetSystem (TargetSystemData/TargetLocation)
//   set-up        -> CampaignConfig + StoreCampaign (CampaignData)
//   fault inject. -> CampaignRunner::FaultInjectorSCIFI (LoggedSystemState)
//   analysis      -> AnalyzeCampaign + FormatAnalysisReport
//
// Usage: goofi_quickstart [num_experiments] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/goofi.h"

int main(int argc, char** argv) {
  const int experiments = argc > 1 ? std::atoi(argv[1]) : 300;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 42;

  goofi::db::Database database;
  goofi::target::ThorRdTarget target;

  // Configuration phase: make the target known to the tool. This stores
  // its scan-chain location list in the database (paper Fig. 5).
  auto workload = goofi::target::GetBuiltinWorkload("isort");
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  if (auto s = target.SetWorkload(*workload); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  if (auto s = goofi::core::RegisterTargetSystem(
          database, target, "sim-test-card",
          "Simulated Thor RD board (GOOFI-32)");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Set-up phase: define the campaign (paper Fig. 6).
  goofi::core::CampaignConfig config;
  config.name = "quickstart";
  config.workload = "isort";
  config.technique = goofi::target::Technique::kScifi;
  config.num_experiments = static_cast<std::uint32_t>(experiments);
  config.seed = seed;
  config.location_filters = {"cpu.regs.*", "cpu.pc", "cpu.ir",
                             "icache.*", "dcache.*"};
  if (auto s = goofi::core::StoreCampaign(database, config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // Fault-injection phase, with the paper's Fig. 7 progress reporting.
  goofi::core::CampaignRunner runner(&database, &target);
  runner.set_progress_callback([](const goofi::core::ProgressInfo& info) {
    if (info.experiments_done % 100 == 0 ||
        info.experiments_done == info.experiments_total) {
      std::printf("  progress: %zu/%zu experiments, %zu faults injected\n",
                  info.experiments_done, info.experiments_total,
                  info.faults_injected);
    }
  });
  auto summary = runner.FaultInjectorSCIFI("quickstart");
  if (!summary.ok()) {
    std::fprintf(stderr, "campaign: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  std::printf("reference run: %llu instructions, checksum output %zu bytes\n",
              static_cast<unsigned long long>(
                  summary->reference.instructions),
              summary->reference.output_region.size());

  // Analysis phase (§3.4).
  auto analysis = goofi::core::AnalyzeCampaign(database, "quickstart");
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis: %s\n",
                 analysis.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", goofi::core::FormatAnalysisReport(*analysis).c_str());

  // The same numbers via the SQL interface, as the paper's user scripts
  // would get them.
  auto count = goofi::db::sql::ExecuteSql(
      database,
      "SELECT COUNT(*) FROM LoggedSystemState WHERE campaign_name = "
      "'quickstart'");
  if (count.ok()) {
    std::printf("LoggedSystemState rows (incl. reference):\n%s",
                count->ToAsciiTable().c_str());
  }
  return 0;
}
