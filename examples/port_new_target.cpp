// Porting GOOFI to a new target system (paper §2.2 and Fig. 3):
//
//   "When support for a new target system is added to GOOFI, a new
//    TargetSystemInterface class must be created. To do this the
//    programmer uses the Framework class as a template. This means that
//    the programmer only needs to implement the abstract methods used by
//    the fault injection algorithms."
//
// The new target here is a triple-modular-redundant (TMR) voter machine:
// three redundant copies of a counter vote on every step. Faults in one
// copy are outvoted (the machine's EDM reports the masked mismatch);
// faults that hit two copies in the same place defeat the voter. The
// inherited SCIFI algorithm drives it without modification.
#include <cstdio>

#include "core/goofi.h"

namespace {

using namespace goofi;

class TmrVoterTarget : public target::FrameworkTarget {
 public:
  const std::string& target_name() const override {
    static const std::string kName = "tmr_voter";
    return kName;
  }

  std::vector<LocationInfo> ListLocations() const override {
    std::vector<LocationInfo> locations;
    for (int copy = 0; copy < 3; ++copy) {
      LocationInfo info;
      info.kind = LocationInfo::Kind::kScanElement;
      info.name = "copy" + std::to_string(copy) + ".counter";
      info.chain = "internal";
      info.width_bits = 32;
      info.writable = true;
      info.category = "reg";
      locations.push_back(std::move(info));
    }
    return locations;
  }

  Status initTestCard() override {
    for (auto& c : copies_) c = 0;
    time_ = 0;
    mismatch_detected_ = false;
    return Status::Ok();
  }
  Status loadWorkload() override { return Status::Ok(); }
  Status writeMemory() override { return Status::Ok(); }
  Status runWorkload() override { return Status::Ok(); }

  Status waitForBreakpoint() override {
    Step(spec_.trigger.count);
    observation_.stop_reason = time_ < kDuration
                                   ? sim::StopReason::kBreakpoint
                                   : sim::StopReason::kHalted;
    return Status::Ok();
  }

  Status readScanChain() override {
    BitVector image(3 * 32);
    for (int i = 0; i < 3; ++i) image.SetField(i * 32u, 32, copies_[i]);
    observation_.chain_images["internal"] = image;
    snapshot_ = std::move(image);
    return Status::Ok();
  }

  Status injectFault() override {
    for (const target::FaultTarget& fault : spec_.targets) {
      if (fault.location.size() < 6 ||
          fault.location.compare(0, 4, "copy") != 0) {
        return NotFoundError("no location " + fault.location);
      }
      const unsigned copy = static_cast<unsigned>(fault.location[4] - '0');
      if (copy >= 3 || fault.bit >= 32) {
        return OutOfRangeError("bad TMR location");
      }
      snapshot_.Flip(copy * 32u + fault.bit);
    }
    observation_.fault_was_injected = true;
    return Status::Ok();
  }

  Status writeScanChain() override {
    for (int i = 0; i < 3; ++i) {
      copies_[i] =
          static_cast<std::uint32_t>(snapshot_.GetField(i * 32u, 32));
    }
    return Status::Ok();
  }

  Status waitForTermination() override {
    Step(kDuration);
    observation_.instructions = time_;
    if (mismatch_detected_) {
      // The voter's disagreement detector: a masked fault is *detected*
      // (and corrected) — the TMR analogue of a parity EDM.
      observation_.stop_reason = sim::StopReason::kEdm;
      sim::EdmEvent edm;
      edm.type = sim::EdmType::kAssertion;
      edm.time = mismatch_time_;
      observation_.edm = edm;
    } else {
      observation_.stop_reason = sim::StopReason::kHalted;
    }
    return Status::Ok();
  }

  Status readMemory() override {
    observation_.emitted = {Vote()};
    return Status::Ok();
  }

 private:
  static constexpr std::uint64_t kDuration = 64;

  std::uint32_t Vote() const {
    // Majority bit-vote across the three copies.
    return (copies_[0] & copies_[1]) | (copies_[0] & copies_[2]) |
           (copies_[1] & copies_[2]);
  }

  void Step(std::uint64_t until) {
    while (time_ < std::min(until, kDuration)) {
      ++time_;
      const std::uint32_t voted = Vote();
      if (copies_[0] != voted || copies_[1] != voted ||
          copies_[2] != voted) {
        if (!mismatch_detected_) {
          mismatch_detected_ = true;
          mismatch_time_ = time_;
        }
        // Forward recovery: resynchronise all copies from the vote.
        for (auto& c : copies_) c = voted;
      }
      for (auto& c : copies_) c += static_cast<std::uint32_t>(time_);
    }
  }

  std::uint32_t copies_[3] = {0, 0, 0};
  std::uint64_t time_ = 0;
  bool mismatch_detected_ = false;
  std::uint64_t mismatch_time_ = 0;
  BitVector snapshot_;
};

}  // namespace

int main() {
  // Register the new target alongside the built-ins, as a plugin would.
  core::TargetRegistry registry;
  core::RegisterBuiltinTargets(registry);
  (void)registry.Register("tmr_voter", []() {
    return std::unique_ptr<target::TargetSystemInterface>(
        new TmrVoterTarget());
  });
  std::printf("registered targets:");
  for (const std::string& name : registry.Names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n\n");

  auto created = registry.Create("tmr_voter");
  if (!created.ok()) return 1;
  target::TargetSystemInterface& tmr = **created;

  if (!tmr.MakeReferenceRun().ok()) return 1;
  const target::Observation golden = tmr.TakeObservation();
  std::printf("golden vote after %llu steps: %u\n\n",
              static_cast<unsigned long long>(golden.instructions),
              golden.emitted[0]);

  // Sweep single faults over every copy/bit at one injection time: TMR
  // must mask (and detect) every single fault.
  int masked = 0;
  int escaped = 0;
  for (int copy = 0; copy < 3; ++copy) {
    for (unsigned bit = 0; bit < 32; ++bit) {
      target::ExperimentSpec spec;
      spec.technique = target::Technique::kScifi;
      spec.trigger.count = 20;
      spec.targets = {{"copy" + std::to_string(copy) + ".counter", bit}};
      tmr.set_experiment(spec);
      if (!tmr.RunExperiment().ok()) return 1;
      const target::Observation obs = tmr.TakeObservation();
      const bool output_ok = obs.emitted == golden.emitted;
      if (obs.stop_reason == sim::StopReason::kEdm && output_ok) {
        ++masked;
      } else {
        ++escaped;
      }
    }
  }
  std::printf("single faults:  %d masked+detected, %d escaped "
              "(TMR must mask all: %s)\n",
              masked, escaped, escaped == 0 ? "PASS" : "FAIL");

  // Double faults in the *same bit* of two copies defeat the voter.
  int double_escaped = 0;
  for (unsigned bit = 0; bit < 32; ++bit) {
    target::ExperimentSpec spec;
    spec.technique = target::Technique::kScifi;
    spec.trigger.count = 20;
    spec.targets = {{"copy0.counter", bit}, {"copy1.counter", bit}};
    tmr.set_experiment(spec);
    if (!tmr.RunExperiment().ok()) return 1;
    if (tmr.observation().emitted != golden.emitted) ++double_escaped;
  }
  std::printf("double faults (same bit, two copies): %d/32 corrupted the "
              "voted output\n", double_escaped);
  std::printf("\nThe SCIFI algorithm, the outcome taxonomy and the "
              "campaign machinery all came from the framework; only the "
              "ten abstract methods above are new code (paper Fig. 3).\n");
  return 0;
}
