// The control-application scenario (paper §3.2 and companion study
// [12]): a PI engine-speed controller running as an infinite loop,
// exchanging sensor/actuator data with an environment simulator at every
// iteration, with executable assertions as application-level EDMs.
//
// Demonstrates:
//  - an iteration-bounded campaign with an environment simulator,
//  - the Fig. 7 progress window (text form) with pause/stop controls,
//  - fail-silence classification: a corrupted actuator value that
//    escapes all mechanisms is the failure class the study cares about,
//  - coverage comparison with assertions armed vs disarmed (the
//    target's assertion EDM disabled).
#include <cstdio>

#include "core/goofi.h"

namespace {

using namespace goofi;

core::CampaignAnalysis RunOnce(bool assertions_enabled,
                               std::uint32_t experiments) {
  db::Database database;
  target::TestCardOptions options;
  options.cpu_config.edm.SetEnabled(sim::EdmType::kAssertion,
                                    assertions_enabled);
  target::ThorRdTarget target(options);

  auto workload = target::GetBuiltinWorkload("engine_control");
  if (!workload.ok() || !target.SetWorkload(*workload).ok()) std::abort();
  if (!core::RegisterTargetSystem(database, target, "sim-card", "").ok()) {
    std::abort();
  }

  core::CampaignConfig config;
  config.name = "engine";
  config.workload = "engine_control";
  config.num_experiments = experiments;
  config.seed = 20010701;  // DSN 2001, Gothenburg
  config.location_filters = {"cpu.regs.*", "cpu.pc", "cpu.ir"};
  if (!core::StoreCampaign(database, config).ok()) std::abort();

  core::CampaignRunner runner(&database, &target);
  core::CampaignController controller;
  runner.set_controller(&controller);
  runner.set_progress_callback([](const core::ProgressInfo& info) {
    // The paper's progress window, one line at a time.
    if (info.experiments_done % 50 == 0) {
      std::printf("  [progress] %zu/%zu experiments, %zu faults injected "
                  "(%s)\n",
                  info.experiments_done, info.experiments_total,
                  info.faults_injected, info.current_experiment.c_str());
    }
  });
  auto summary = runner.FaultInjectorSCIFI("engine");
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    std::abort();
  }
  std::printf("  reference: %llu instructions over %llu control "
              "iterations\n",
              static_cast<unsigned long long>(
                  summary->reference.instructions),
              static_cast<unsigned long long>(
                  summary->reference.iterations));
  auto analysis = core::AnalyzeCampaign(database, "engine");
  if (!analysis.ok()) std::abort();
  return *analysis;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t experiments =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 250;

  std::printf("=== engine-control campaign, executable assertions ARMED "
              "===\n");
  const core::CampaignAnalysis armed = RunOnce(true, experiments);
  std::printf("%s\n", core::FormatAnalysisReport(armed).c_str());

  std::printf("=== same campaign, executable assertions DISARMED ===\n");
  const core::CampaignAnalysis disarmed = RunOnce(false, experiments);
  std::printf("%s\n", core::FormatAnalysisReport(disarmed).c_str());

  std::printf("=== fail-silence comparison ===\n");
  std::printf("assertions ARMED:    %zu fail-silence violations, "
              "%zu assertion detections\n",
              armed.fail_silence,
              armed.detected_by_mechanism.count("assertion")
                  ? armed.detected_by_mechanism.at("assertion")
                  : 0);
  std::printf("assertions DISARMED: %zu fail-silence violations\n",
              disarmed.fail_silence);
  std::printf(
      "\nThe companion study [12] used exactly this shape of experiment\n"
      "on the Thor microprocessor. Assertions catch state corruption\n"
      "(implausible sensor values, out-of-bound integral terms, stack\n"
      "damage) early; fail-silence violations that remain are in-range\n"
      "actuator corruptions, which plausibility checks cannot separate\n"
      "from legal commands — the residual that motivated [12]'s best\n"
      "effort recovery.\n");
  return 0;
}
