// goofi_serve: the campaign-as-a-service daemon. Accepts campaign
// submissions over a local Unix-domain socket, queues them in a
// crash-safe WAL-backed journal, and multiplexes them over a shared
// worker fleet (src/service/server.h).
//
//   goofi_serve [--config FILE.ini] [--root DIR] [--socket PATH]
//               [--fleet N] [--queue N] [--max-jobs N]
//
// --config reads a [service] deployment ini (lintable with goofi_lint,
// e.g. campaigns/serve_fleet.ini); later flags override its values.
//
// Shutdown semantics:
//   SIGTERM/SIGINT  graceful drain — every active campaign stops at its
//                   next experiment boundary, nothing past the last
//                   cadence commit is written, exit 0. The journal keeps
//                   drained campaigns as "running".
//   SIGKILL         nothing runs, and nothing needs to: the next start
//                   replays the journal and resumes every in-flight
//                   campaign from its results database's last commit.
// Either way a restarted daemon finishes each campaign byte-identical
// to an uninterrupted run.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include <fstream>
#include <sstream>

#include "core/supervision.h"
#include "service/server.h"
#include "util/config.h"

namespace {

using namespace goofi;

// Apply a [service] deployment ini to `config`/`socket_path`. Flags
// given after --config still win (they are parsed later in the loop).
bool LoadConfigFile(const char* path, service::ServiceConfig* config,
                    std::string* socket_path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "goofi_serve: cannot read %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = Config::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "goofi_serve: %s: %s\n", path,
                 parsed.status().ToString().c_str());
    return false;
  }
  const ConfigSection* section = parsed->FindSection("service");
  if (section == nullptr) {
    std::fprintf(stderr, "goofi_serve: %s has no [service] section\n", path);
    return false;
  }
  config->root = section->GetStringOr("root", config->root);
  *socket_path = section->GetStringOr("socket", *socket_path);
  config->fleet_workers = static_cast<std::size_t>(section->GetIntOr(
      "fleet_workers", static_cast<std::int64_t>(config->fleet_workers)));
  config->queue_limit = static_cast<std::size_t>(section->GetIntOr(
      "queue_limit", static_cast<std::int64_t>(config->queue_limit)));
  config->max_campaign_jobs = static_cast<std::size_t>(section->GetIntOr(
      "max_campaign_jobs",
      static_cast<std::int64_t>(config->max_campaign_jobs)));
  return true;
}

// Async-signal-safe shutdown request; the main loop polls it.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void HandleSignal(int) { g_shutdown_requested = 1; }

int Fail(const Status& status) {
  std::fprintf(stderr, "goofi_serve: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  service::ServiceConfig config;
  std::string socket_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--config") == 0 && i + 1 < argc) {
      if (!LoadConfigFile(argv[++i], &config, &socket_path)) return 1;
    } else if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      config.root = argv[++i];
    } else if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fleet") == 0 && i + 1 < argc) {
      config.fleet_workers = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--queue") == 0 && i + 1 < argc) {
      config.queue_limit = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-jobs") == 0 && i + 1 < argc) {
      config.max_campaign_jobs =
          static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: goofi_serve [--config FILE.ini] [--root DIR] "
                   "[--socket PATH] [--fleet N] [--queue N] "
                   "[--max-jobs N]\n");
      return 1;
    }
  }
  if (config.root.empty()) {
    std::fprintf(stderr, "goofi_serve: --root is required "
                         "(flag or [service] root)\n");
    return 1;
  }
  if (config.max_campaign_jobs > config.fleet_workers) {
    config.max_campaign_jobs = config.fleet_workers;
  }
  if (socket_path.empty()) {
    socket_path =
        (std::filesystem::path(config.root) / "goofi_serve.sock").string();
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  auto core = service::ServiceCore::Start(config);
  if (!core.ok()) return Fail(core.status());
  auto server = service::ServiceServer::Start(
      core->get(), socket_path, [] { g_shutdown_requested = 1; });
  if (!server.ok()) return Fail(server.status());

  std::printf("goofi_serve: listening on %s (fleet %zu, queue %zu, "
              "max %zu jobs/campaign)\n",
              socket_path.c_str(), config.fleet_workers, config.queue_limit,
              config.max_campaign_jobs);
  std::fflush(stdout);

  while (g_shutdown_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("goofi_serve: draining\n");
  std::fflush(stdout);
  // Order: stop taking connections, then drain the fleet. Drained
  // campaigns stay "running" in the journal for the next life.
  (*server)->Shutdown();
  (*core)->Drain();
  // Abandoned (wedged) target instances get a bounded grace period.
  if (!core::WaitForAbandonedTargets(std::chrono::milliseconds(10000))) {
    std::fprintf(stderr,
                 "goofi_serve: %zu abandoned target(s) still in flight\n",
                 core::AbandonedTargetsInFlight());
  }
  std::printf("goofi_serve: drained\n");
  return 0;
}
