// goofi_dbck: verify, repair, migrate and compact campaign database
// directories — the fsck for the WAL storage engine (db/wal.h).
//
//   verify <dir>    read-only health report: header, generation, commit
//                   count, torn-tail / checksum diagnosis, snapshot CRCs.
//                   exit 0 = clean, 1 = damaged-but-recoverable (recovery
//                   would drop the uncommitted tail), 2 = unreadable.
//   repair <dir>    recover to the last valid commit: truncate the torn
//                   tail, restart a crashed compaction, drop uncommitted
//                   records. (This is exactly what Open() does; repair
//                   just does it explicitly and reports what changed.)
//   migrate <dir>   legacy text directory -> WAL format, in place.
//   demote <dir>    WAL directory -> legacy text format, in place.
//   compact <dir>   fold the log into fresh snapshots (bumped generation).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "db/database.h"
#include "db/wal.h"

namespace {

using namespace goofi;
namespace fs = std::filesystem;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 2;
}

bool IsWalDirectory(const std::string& dir) {
  return fs::exists(fs::path(dir) / "wal.log") ||
         fs::exists(fs::path(dir) / "snapshot.manifest");
}

bool IsTextDirectory(const std::string& dir) {
  return fs::exists(fs::path(dir) / "manifest.txt");
}

int CmdVerify(const std::string& dir) {
  if (!IsWalDirectory(dir)) {
    if (IsTextDirectory(dir)) {
      auto database = db::Database::LoadFromDirectory(dir);
      if (!database.ok()) return Fail(database.status());
      std::printf("%s: legacy text format, %zu tables, loads cleanly "
                  "(run 'goofi_dbck migrate' for WAL)\n",
                  dir.c_str(), database->TableNames().size());
      return 0;
    }
    return Fail(NotFoundError("'" + dir + "' is not a database directory"));
  }

  auto manifest_text =
      db::wal::ReadFileBytes((fs::path(dir) / "snapshot.manifest").string());
  if (!manifest_text.ok()) return Fail(manifest_text.status());
  auto manifest = db::wal::DecodeManifest(*manifest_text);
  if (!manifest.ok()) return Fail(manifest.status());
  std::printf("%s: WAL format, generation %llu, %zu tables\n", dir.c_str(),
              static_cast<unsigned long long>(manifest->generation),
              manifest->tables.size());

  bool damaged = false;
  for (std::size_t i = 0; i < manifest->tables.size(); ++i) {
    const std::string& table = manifest->tables[i];
    // Per-table generation (manifest v2): a table untouched since an
    // incremental compaction legitimately points at an older file.
    const std::uint64_t snap_generation = manifest->table_generations[i];
    const std::string snap_path =
        (fs::path(dir) /
         (table + "." + std::to_string(snap_generation) + ".snap"))
            .string();
    auto bytes = db::wal::ReadFileBytes(snap_path);
    if (!bytes.ok()) {
      std::printf("  snapshot %-24s MISSING\n", table.c_str());
      damaged = true;
      continue;
    }
    auto snapshot = db::wal::DecodeTableSnapshot(*bytes);
    if (!snapshot.ok()) {
      std::printf("  snapshot %-24s CORRUPT (%s)\n", table.c_str(),
                  snapshot.status().message().c_str());
      damaged = true;
      continue;
    }
    std::printf("  snapshot %-24s ok (gen %llu), %zu rows, CRC valid\n",
                table.c_str(),
                static_cast<unsigned long long>(snap_generation),
                snapshot->rows.size());
  }
  if (damaged) {
    std::printf("verdict: snapshot damage — not recoverable from this "
                "directory alone\n");
    return 2;
  }

  auto log_bytes = db::wal::ReadFileBytes((fs::path(dir) / "wal.log").string());
  const db::wal::WalReadResult log =
      db::wal::ReadWal(log_bytes.ok() ? *log_bytes : std::string());
  if (!log.header_valid || log.generation != manifest->generation) {
    std::printf("  log: %s (snapshots are the committed state; repair "
                "restarts the log)\n",
                log.note.empty() ? "generation skew after a compaction crash"
                                 : log.note.c_str());
    std::printf("verdict: recoverable — repair restores generation %llu\n",
                static_cast<unsigned long long>(manifest->generation));
    return 1;
  }
  std::printf("  log: %llu/%llu bytes committed, %llu commits "
              "(last sequence %llu), %llu records\n",
              static_cast<unsigned long long>(log.committed_bytes),
              static_cast<unsigned long long>(log.total_bytes),
              static_cast<unsigned long long>(log.commits),
              static_cast<unsigned long long>(log.last_commit_sequence),
              static_cast<unsigned long long>(log.records_valid));
  if (log.torn_tail || log.checksum_failure || log.records_uncommitted > 0) {
    std::printf("  damage: %s; %llu uncommitted record(s) past the last "
                "commit would be dropped\n",
                log.note.empty() ? "uncommitted tail" : log.note.c_str(),
                static_cast<unsigned long long>(log.records_uncommitted));
    std::printf("verdict: recoverable — repair truncates to byte %llu\n",
                static_cast<unsigned long long>(log.committed_bytes));
    return 1;
  }
  std::printf("verdict: clean\n");
  return 0;
}

int CmdRepair(const std::string& dir) {
  auto before_bytes =
      db::wal::ReadFileBytes((fs::path(dir) / "wal.log").string());
  const std::uint64_t before =
      before_bytes.ok() ? before_bytes->size() : 0;
  auto database = db::Database::Open(dir);
  if (!database.ok()) return Fail(database.status());
  auto after_bytes =
      db::wal::ReadFileBytes((fs::path(dir) / "wal.log").string());
  const std::uint64_t after = after_bytes.ok() ? after_bytes->size() : 0;
  std::printf("%s: recovered to generation %llu, commit sequence %llu "
              "(%llu tail bytes dropped)\n",
              dir.c_str(),
              static_cast<unsigned long long>(database->generation()),
              static_cast<unsigned long long>(database->commit_sequence()),
              static_cast<unsigned long long>(before > after ? before - after
                                                             : 0));
  return 0;
}

int CmdMigrate(const std::string& dir) {
  if (IsWalDirectory(dir)) {
    std::printf("%s: already WAL format\n", dir.c_str());
    return 0;
  }
  auto database = db::Database::LoadFromDirectory(dir);
  if (!database.ok()) return Fail(database.status());
  if (auto s = database->AttachWal(dir); !s.ok()) return Fail(s);
  // The WAL markers are in place; retire the legacy files.
  std::error_code ec;
  fs::remove(fs::path(dir) / "manifest.txt", ec);
  for (const std::string& table : database->TableNames()) {
    fs::remove(fs::path(dir) / (table + ".schema"), ec);
    fs::remove(fs::path(dir) / (table + ".rows"), ec);
  }
  std::printf("%s: migrated %zu tables to WAL format (generation 0)\n",
              dir.c_str(), database->TableNames().size());
  return 0;
}

int CmdDemote(const std::string& dir) {
  if (!IsWalDirectory(dir)) {
    std::printf("%s: already legacy text format\n", dir.c_str());
    return 0;
  }
  auto database = db::Database::Open(dir);
  if (!database.ok()) return Fail(database.status());
  const std::uint64_t generation = database->generation();
  if (auto s = database->SaveToDirectory(dir); !s.ok()) return Fail(s);
  // SaveToDirectory swapped in a fresh directory holding only the text
  // format; nothing WAL survives the swap.
  std::printf("%s: demoted to legacy text format (was generation %llu)\n",
              dir.c_str(), static_cast<unsigned long long>(generation));
  return 0;
}

int CmdCompact(const std::string& dir) {
  auto database = db::Database::Open(dir);
  if (!database.ok()) return Fail(database.status());
  if (!database->wal_attached()) {
    return Fail(FailedPreconditionError(
        "'" + dir + "' is a legacy text directory; migrate it first"));
  }
  if (auto s = database->Compact(); !s.ok()) return Fail(s);
  std::printf("%s: compacted into generation %llu snapshots\n", dir.c_str(),
              static_cast<unsigned long long>(database->generation()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  const std::string dir = argc > 2 ? argv[2] : "";
  if (!dir.empty()) {
    if (command == "verify") return CmdVerify(dir);
    if (command == "repair") return CmdRepair(dir);
    if (command == "migrate") return CmdMigrate(dir);
    if (command == "demote") return CmdDemote(dir);
    if (command == "compact") return CmdCompact(dir);
  }
  std::fprintf(stderr,
               "goofi_dbck: campaign-database consistency checker\n"
               "usage: goofi_dbck <verify|repair|migrate|demote|compact> "
               "<db-dir>\n"
               "  verify   health report (0 clean, 1 recoverable, "
               "2 unreadable)\n"
               "  repair   recover to the last valid commit\n"
               "  migrate  legacy text -> WAL format, in place\n"
               "  demote   WAL -> legacy text format, in place\n"
               "  compact  fold the log into fresh table snapshots\n");
  return command.empty() ? 0 : 2;
}
