// Error-propagation tracing (paper §3.3 detail mode + §2.3's E1/E2
// parentExperiment workflow):
//
//  1. run a normal-mode campaign,
//  2. pick an experiment with an interesting outcome (escaped or latent),
//  3. re-run it in detail mode — logged as a child row whose
//     parentExperiment points at the original,
//  4. re-run the fault-free reference in detail mode,
//  5. diff the two per-instruction scan-chain traces: when did the
//     corruption appear, which state elements did it reach, how did the
//     number of corrupted bits evolve.
#include <cstdio>

#include "core/goofi.h"

using namespace goofi;

int main(int argc, char** argv) {
  const char* workload_name = argc > 1 ? argv[1] : "isort";

  db::Database database;
  target::ThorRdTarget target;
  auto workload = target::GetBuiltinWorkload(workload_name);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  if (!target.SetWorkload(*workload).ok()) return 1;
  if (!core::RegisterTargetSystem(database, target, "sim-card", "").ok()) {
    return 1;
  }

  core::CampaignConfig config;
  config.name = "prop";
  config.workload = workload_name;
  config.num_experiments = 150;
  config.seed = 4711;
  config.location_filters = {"cpu.regs.*"};
  if (!core::StoreCampaign(database, config).ok()) return 1;

  core::CampaignRunner runner(&database, &target);
  auto summary = runner.Run("prop");
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  auto analysis = core::AnalyzeCampaign(database, "prop");
  if (!analysis.ok()) return 1;

  // Find an interesting experiment: prefer escaped, then latent.
  std::string interesting;
  for (const auto want :
       {core::OutcomeClass::kEscaped, core::OutcomeClass::kLatent}) {
    for (const auto& experiment : analysis->experiments) {
      if (experiment.classification.outcome == want) {
        interesting = experiment.name;
        break;
      }
    }
    if (!interesting.empty()) break;
  }
  if (interesting.empty()) {
    std::printf("no escaped/latent experiment in %zu runs; try another "
                "seed\n", analysis->total);
    return 0;
  }
  std::printf("investigating %s\n", interesting.c_str());

  // Detail re-run of the experiment (E2, parented to E1)...
  auto child = runner.ReRunInDetailMode(interesting);
  if (!child.ok()) {
    std::fprintf(stderr, "%s\n", child.status().ToString().c_str());
    return 1;
  }
  const db::Table* logged = database.FindTable("LoggedSystemState");
  const auto child_row = logged->FindByUnique(0, db::Value::Text_(*child));
  auto faulty = target::Observation::Deserialize(
      logged->row(*child_row)[4].AsText());
  if (!faulty.ok()) return 1;

  // ...and a detail run of the fault-free reference for the golden trace.
  target::ExperimentSpec reference_spec;
  reference_spec.name = "prop/reference-detail";
  target.set_experiment(reference_spec);
  target.set_logging_mode(target::LoggingMode::kDetail);
  if (!target.MakeReferenceRun().ok()) return 1;
  const target::Observation golden = target.TakeObservation();

  const sim::ScanChain* internal =
      target.test_card().chains().FindChain("internal");
  auto report =
      core::AnalyzeErrorPropagation(*internal, golden, *faulty);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("\n=== error propagation report for %s ===\n",
              interesting.c_str());
  std::printf("%s", report->Format().c_str());

  // A compact propagation curve (corrupted bits over time, decimated).
  std::printf("\npropagation curve (time: corrupted bits):\n");
  const auto& timeline = report->timeline;
  const std::size_t stride =
      std::max<std::size_t>(1, timeline.size() / 12);
  for (std::size_t i = 0; i < timeline.size(); i += stride) {
    std::printf("  t=%-8llu %zu\n",
                static_cast<unsigned long long>(timeline[i].first),
                timeline[i].second);
  }
  std::printf("\nthe detail rows live in the database: parentExperiment "
              "of %s is %s\n", child->c_str(), interesting.c_str());
  return 0;
}
