// goofi_tool: the command-line face of GOOFI++ — the reproduction's
// substitute for the paper's graphical user interface. Each subcommand
// corresponds to a GUI window:
//
//   targets / workloads          the configuration-phase pickers (Fig. 5)
//   run <campaign.ini>           set-up + fault-injection phase (Figs. 6, 7)
//   resume <campaign>            continue a stopped campaign
//   analyze <campaign>           the analysis phase (§3.4 report)
//   rerun <experiment>           detail-mode re-run with parentExperiment
//   sql "<statement>"            ad-hoc queries over the campaign database
//   schema                       print the Fig. 4 schema as SQL
//
// The campaign database persists in the directory given by --db (default
// ./goofi_db), so phases can run in separate invocations, as they would
// with the Java tool and its SQL database.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/goofi.h"
#include "target/flaky_target.h"
#include "util/strings.h"

namespace {

using namespace goofi;

// SIGINT/SIGTERM drain the in-flight campaign instead of killing it
// mid-write: the controller's Drain() only flips lock-free atomics
// (async-signal-safe), the run ends at its next experiment boundary,
// and the database is left at its last cadence commit — the same state
// a SIGKILL there would leave, so `goofi_tool resume` finishes the
// campaign byte-identical to an uninterrupted run. Exit code 3 tells
// scripts "checkpointed, resumable" apart from success (0)/error (1).
constexpr int kExitDrained = 3;
core::CampaignController g_run_controller;

void HandleDrainSignal(int) { g_run_controller.Drain(); }

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

struct Arguments {
  std::string command;
  std::vector<std::string> positional;
  std::string db_dir = "goofi_db";
  std::size_t jobs = 0;  // 0 = take the campaign's `jobs` key (default 1)
  // Scripted target faults (target/flaky_target.h), e.g.
  // "io@3;hang@5;target_fault@7:2;hang_ms=200" — exercises the
  // supervision layer against a deterministic flaky transport.
  std::string flaky;
  // --checkpoint on|off forces checkpoint-fork execution for this run
  // only (execution-only override; the stored campaign row and the
  // logged results are identical either way). Unset honours the
  // campaign's checkpoint_mode key.
  std::optional<bool> checkpoint;
  bool bad_checkpoint = false;
};

Arguments ParseArguments(int argc, char** argv) {
  Arguments arguments;
  if (argc > 1) arguments.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--db") == 0 && i + 1 < argc) {
      arguments.db_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      arguments.jobs = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--flaky") == 0 && i + 1 < argc) {
      arguments.flaky = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      const std::string value = argv[++i];
      if (value == "on") {
        arguments.checkpoint = true;
      } else if (value == "off") {
        arguments.checkpoint = false;
      } else {
        arguments.bad_checkpoint = true;
      }
    } else {
      arguments.positional.emplace_back(argv[i]);
    }
  }
  return arguments;
}

// How often the runners group-commit the WAL, in experiments. The
// cadence is counted in canonical order by both runners, so serial and
// --jobs N runs flush at the same points and write identical log bytes.
constexpr std::size_t kCommitEveryExperiments = 32;

// Open the database directory in whichever format it holds; a fresh
// directory becomes a WAL database (legacy text directories keep their
// format until migrated with goofi_dbck).
Result<db::Database> OpenOrCreate(const std::string& dir) {
  namespace fs = std::filesystem;
  if (fs::exists(fs::path(dir) / "wal.log") ||
      fs::exists(fs::path(dir) / "snapshot.manifest") ||
      fs::exists(fs::path(dir) / "manifest.txt") ||
      fs::exists(fs::path(dir + ".saving") / "manifest.txt")) {
    return db::Database::Open(dir);
  }
  db::Database database;
  RETURN_IF_ERROR(database.AttachWal(dir));
  RETURN_IF_ERROR(core::CreateGoofiSchema(database));
  RETURN_IF_ERROR(database.Commit());
  return database;
}

Result<std::unique_ptr<target::TargetSystemInterface>> MakeTarget(
    const std::string& name, const std::string& workload_name) {
  core::TargetRegistry& registry = core::TargetRegistry::Instance();
  core::RegisterBuiltinTargets(registry);
  ASSIGN_OR_RETURN(auto target, registry.Create(name));
  if (!workload_name.empty()) {
    if (EndsWith(workload_name, ".workload")) {
      ASSIGN_OR_RETURN(target::WorkloadSpec workload,
                       target::LoadWorkloadSpecFromFile(workload_name));
      RETURN_IF_ERROR(target->SetWorkload(std::move(workload)));
    } else {
      ASSIGN_OR_RETURN(target::WorkloadSpec workload,
                       target::GetBuiltinWorkload(workload_name));
      RETURN_IF_ERROR(target->SetWorkload(std::move(workload)));
    }
  }
  return target;
}

int CmdTargets() {
  core::TargetRegistry& registry = core::TargetRegistry::Instance();
  core::RegisterBuiltinTargets(registry);
  std::printf("registered target systems:\n");
  for (const std::string& name : registry.Names()) {
    auto target = registry.Create(name);
    if (!target.ok()) continue;
    std::printf("  %-12s (%zu fault-injection locations before workload "
                "load)\n",
                name.c_str(), (*target)->ListLocations().size());
  }
  return 0;
}

int CmdWorkloads() {
  std::printf("built-in workloads:\n");
  for (const std::string& name : target::BuiltinWorkloadNames()) {
    auto workload = target::GetBuiltinWorkload(name);
    std::printf("  %-16s output %u bytes @0x%08x%s%s\n", name.c_str(),
                workload->output_length, workload->output_base,
                workload->environment.empty() ? "" : ", environment: ",
                workload->environment.c_str());
  }
  std::printf("(or pass a .workload file path in the campaign config's "
              "'workload_file' key)\n");
  return 0;
}

int CmdRun(const Arguments& arguments, bool resume) {
  if (arguments.positional.empty()) {
    std::fprintf(stderr, resume ? "usage: goofi_tool resume <campaign> "
                                  "[--db DIR]\n"
                                : "usage: goofi_tool run <campaign.ini> "
                                  "[--db DIR]\n");
    return 1;
  }
  if (arguments.bad_checkpoint) {
    return Fail(InvalidArgumentError("--checkpoint takes 'on' or 'off'"));
  }
  auto opened = OpenOrCreate(arguments.db_dir);
  if (!opened.ok()) return Fail(opened.status());
  db::Database database = std::move(*opened);

  std::string campaign_name;
  std::string workload_file;
  std::size_t ini_jobs = 1;
  if (resume) {
    campaign_name = arguments.positional[0];
  } else {
    auto file = Config::LoadFile(arguments.positional[0]);
    if (!file.ok()) return Fail(file.status());
    const ConfigSection* section = file->FindSection("campaign");
    if (section == nullptr) {
      return Fail(InvalidArgumentError("no [campaign] section"));
    }
    auto config = core::ParseCampaignConfig(*section);
    if (!config.ok()) return Fail(config.status());
    workload_file = section->GetStringOr("workload_file", "");
    campaign_name = config->name;
    ini_jobs = config->jobs;
    // Idempotent target registration + campaign storage.
    if (!database.HasTable(core::kCampaignDataTable)) {
      (void)core::CreateGoofiSchema(database);
    }
    const db::Table* campaigns =
        database.FindTable(core::kCampaignDataTable);
    if (!campaigns->FindByUnique(0, db::Value::Text_(campaign_name))) {
      auto target = MakeTarget(config->target, "");
      if (!target.ok()) return Fail(target.status());
      if (auto s = core::RegisterTargetSystem(database, **target,
                                              "goofi-tool-card", "");
          !s.ok()) {
        return Fail(s);
      }
      if (auto s = core::StoreCampaign(database, *config); !s.ok()) {
        return Fail(s);
      }
    }
  }

  auto loaded = core::LoadCampaign(database, campaign_name);
  if (!loaded.ok()) return Fail(loaded.status());
  auto target = MakeTarget(loaded->target, workload_file.empty()
                                               ? loaded->workload
                                               : workload_file);
  if (!target.ok()) return Fail(target.status());

  const auto print_progress = [](core::ProgressInfo info) {
    if (info.experiments_done % 100 == 0 ||
        info.experiments_done == info.experiments_total) {
      if (info.checkpoint_forks > 0) {
        // Fork-mode speedup is visible in flight: how many experiments
        // skipped to a checkpoint and the replay instructions saved.
        std::printf("\r[%zu/%zu] %zu faults injected, %zu forked "
                    "(%llu instructions saved)   ",
                    info.experiments_done, info.experiments_total,
                    info.faults_injected, info.checkpoint_forks,
                    static_cast<unsigned long long>(
                        info.instructions_skipped));
      } else {
        std::printf("\r[%zu/%zu] %zu faults injected   ",
                    info.experiments_done, info.experiments_total,
                    info.faults_injected);
      }
      std::fflush(stdout);
    }
  };
  // Scripted transport faults: wrap every minted target in the flaky
  // decorator so the supervision layer has something to survive.
  std::shared_ptr<target::FlakyScript> flaky_script;
  if (!arguments.flaky.empty()) {
    auto parsed = target::ParseFlakyScript(arguments.flaky);
    if (!parsed.ok()) return Fail(parsed.status());
    flaky_script = std::move(*parsed);
  }
  target::TargetFactory factory = [name = loaded->target, workload_file]() {
    return MakeTarget(name, workload_file);
  };
  if (flaky_script != nullptr) {
    factory = target::MakeFlakyTargetFactory(std::move(factory),
                                             flaky_script);
  }

  // --jobs beats the campaign's `jobs` key; either way the database is
  // bit-identical to a serial run (the sharded runner's guarantee).
  const std::size_t jobs = arguments.jobs != 0 ? arguments.jobs : ini_jobs;
  std::signal(SIGINT, HandleDrainSignal);
  std::signal(SIGTERM, HandleDrainSignal);
  // With a WAL attached, checkpoints are cheap group-commit flushes, so
  // run them on a fixed cadence; legacy text databases keep the old
  // behaviour (no mid-campaign rewrites unless asked).
  const bool wal = database.wal_attached();
  auto run_campaign = [&]() -> Result<core::CampaignSummary> {
    if (jobs > 1) {
      std::printf("running with %zu workers\n", jobs);
      core::ParallelCampaignRunner runner(&database, factory, jobs);
      runner.set_controller(&g_run_controller);
      runner.set_progress_callback(print_progress);
      runner.set_checkpoint_fork(arguments.checkpoint);
      if (wal) {
        runner.set_checkpoint(arguments.db_dir, kCommitEveryExperiments);
      }
      return resume ? runner.Resume(campaign_name)
                    : runner.Run(campaign_name);
    }
    core::CampaignRunner runner(&database, target->get());
    runner.set_controller(&g_run_controller);
    runner.set_target_factory(factory);
    runner.set_progress_callback(print_progress);
    runner.set_checkpoint_fork(arguments.checkpoint);
    if (wal) {
      runner.set_checkpoint(arguments.db_dir, kCommitEveryExperiments);
    }
    return resume ? runner.Resume(campaign_name)
                  : runner.Run(campaign_name);
  };
  auto summary = run_campaign();
  std::printf("\n");
  if (!summary.ok()) return Fail(summary.status());
  if (g_run_controller.drain_requested()) {
    // Checkpointed, not finished: the database holds exactly its last
    // cadence commit (nothing else was written), so `goofi_tool resume`
    // completes the campaign byte-identical to an uninterrupted run.
    // No Persist, no analysis — that is the drain contract.
    std::printf("campaign %s: interrupted after %zu experiments; "
                "checkpoint saved, resume with "
                "`goofi_tool resume %s --db %s`\n",
                campaign_name.c_str(), summary->experiments_run,
                campaign_name.c_str(), arguments.db_dir.c_str());
    if (!core::WaitForAbandonedTargets(std::chrono::milliseconds(10000))) {
      std::fprintf(stderr,
                   "warning: %zu abandoned target(s) still in flight at "
                   "exit\n",
                   core::AbandonedTargetsInFlight());
    }
    return kExitDrained;
  }
  std::printf("campaign %s: %zu experiments run (%zu skipped early)\n",
              campaign_name.c_str(), summary->experiments_run,
              summary->experiments_stopped_early);
  if (summary->experiment_retries > 0 ||
      summary->experiments_abandoned > 0 ||
      summary->targets_quarantined > 0) {
    std::printf("supervision: %zu retries, %zu experiments abandoned "
                "(tool-incomplete), %zu target instances quarantined\n",
                summary->experiment_retries,
                summary->experiments_abandoned,
                summary->targets_quarantined);
  }
  if (summary->checkpoint_forks > 0) {
    std::printf("checkpoint-fork: %zu checkpoints recorded, %zu/%zu "
                "experiments forked, %llu of %llu pre-trigger instructions "
                "skipped (%.1f%%)\n",
                summary->checkpoints_recorded, summary->checkpoint_forks,
                summary->experiments_run,
                static_cast<unsigned long long>(
                    summary->instructions_skipped),
                static_cast<unsigned long long>(
                    summary->trigger_instructions_total),
                summary->trigger_instructions_total > 0
                    ? 100.0 * static_cast<double>(
                                  summary->instructions_skipped) /
                          static_cast<double>(
                              summary->trigger_instructions_total)
                    : 0.0);
  }
  if (flaky_script != nullptr) {
    std::printf("flaky script: %llu faults + %llu hangs injected\n",
                static_cast<unsigned long long>(
                    flaky_script->faults_injected.load()),
                static_cast<unsigned long long>(
                    flaky_script->hangs_injected.load()));
  }
  if (summary->static_pruned_bits > 0) {
    std::printf("static analysis pruned %llu location bits "
                "(%.1f%% of the selected fault space)\n",
                static_cast<unsigned long long>(summary->static_pruned_bits),
                100.0 * summary->static_pruned_fraction);
  }
  if (summary->equiv_classes > 0) {
    std::printf("equivalence partitioning: %zu classes, %zu/%zu experiments "
                "injected (%zu duplicates pruned), %llu fault points "
                "extrapolated\n",
                summary->equiv_classes,
                summary->experiments_run - summary->equiv_duplicates,
                summary->experiments_run, summary->equiv_duplicates,
                static_cast<unsigned long long>(summary->equiv_space_weight));
  }

  auto analysis = core::AnalyzeCampaign(database, campaign_name,
                                        /*collect_experiments=*/false);
  if (!analysis.ok()) return Fail(analysis.status());
  std::printf("%s", core::FormatAnalysisReport(*analysis).c_str());

  if (auto s = database.Persist(arguments.db_dir); !s.ok()) {
    return Fail(s);
  }
  std::printf("database saved to %s\n", arguments.db_dir.c_str());

  // Abandoned (wedged) target instances drain on their own when their
  // runs return; give them a bounded grace period instead of racing
  // process teardown.
  if (!core::WaitForAbandonedTargets(std::chrono::milliseconds(10000))) {
    std::fprintf(stderr,
                 "warning: %zu abandoned target(s) still in flight at exit\n",
                 core::AbandonedTargetsInFlight());
  }
  return 0;
}

int CmdAnalyze(const Arguments& arguments, bool csv) {
  if (arguments.positional.empty()) {
    std::fprintf(stderr, "usage: goofi_tool %s <campaign> [--db DIR]\n",
                 csv ? "export" : "analyze");
    return 1;
  }
  auto database = db::Database::Open(arguments.db_dir);
  if (!database.ok()) return Fail(database.status());
  // The CSV export needs per-experiment rows; the report streams.
  auto analysis = core::AnalyzeCampaign(*database, arguments.positional[0],
                                        /*collect_experiments=*/csv);
  if (!analysis.ok()) return Fail(analysis.status());
  std::printf("%s", csv ? core::FormatAnalysisCsv(*analysis).c_str()
                        : core::FormatAnalysisReport(*analysis).c_str());
  return 0;
}

int CmdRerun(const Arguments& arguments) {
  if (arguments.positional.empty()) {
    std::fprintf(stderr, "usage: goofi_tool rerun <experiment> [--db DIR]\n");
    return 1;
  }
  auto database = db::Database::Open(arguments.db_dir);
  if (!database.ok()) return Fail(database.status());
  // Resolve the experiment's campaign to know which target to build.
  const db::Table* logged =
      database->FindTable(core::kLoggedSystemStateTable);
  if (logged == nullptr) return Fail(NotFoundError("empty database"));
  const auto row =
      logged->FindByUnique(0, db::Value::Text_(arguments.positional[0]));
  if (!row) {
    return Fail(NotFoundError("no experiment '" + arguments.positional[0] +
                              "'"));
  }
  auto config = core::LoadCampaign(*database,
                                   logged->row(*row)[2].AsText());
  if (!config.ok()) return Fail(config.status());
  auto target = MakeTarget(config->target, config->workload);
  if (!target.ok()) return Fail(target.status());
  core::CampaignRunner runner(&(*database), target->get());
  auto child = runner.ReRunInDetailMode(arguments.positional[0]);
  if (!child.ok()) return Fail(child.status());
  std::printf("detail re-run logged as %s (parentExperiment = %s)\n",
              child->c_str(), arguments.positional[0].c_str());
  if (auto s = database->Persist(arguments.db_dir); !s.ok()) {
    return Fail(s);
  }
  return 0;
}

int CmdEquivCheck(const Arguments& arguments) {
  if (arguments.positional.empty()) {
    std::fprintf(stderr,
                 "usage: goofi_tool equivcheck <campaign> [max_classes] "
                 "[--db DIR]\n");
    return 1;
  }
  auto database = db::Database::Open(arguments.db_dir);
  if (!database.ok()) return Fail(database.status());
  const std::size_t max_classes =
      arguments.positional.size() > 1
          ? static_cast<std::size_t>(std::atol(
                arguments.positional[1].c_str()))
          : 0;
  auto audit = core::CrossCheckEquivalenceCampaign(
      *database, arguments.positional[0], max_classes);
  if (!audit.ok()) return Fail(audit.status());
  std::printf("equivalence crosscheck: %zu classes checked, %zu member "
              "injections re-run (%llu fault points), all "
              "outcome-homogeneous\n",
              audit->classes_checked, audit->members_injected,
              static_cast<unsigned long long>(audit->space_weight));
  return 0;
}

int CmdSql(const Arguments& arguments) {
  if (arguments.positional.empty()) {
    std::fprintf(stderr, "usage: goofi_tool sql \"<statement>\" [--db DIR]\n");
    return 1;
  }
  auto database = db::Database::Open(arguments.db_dir);
  if (!database.ok()) return Fail(database.status());
  auto result = db::sql::ExecuteSql(*database, arguments.positional[0]);
  if (!result.ok()) return Fail(result.status());
  if (!result->columns.empty()) {
    std::printf("%s", result->ToAsciiTable().c_str());
    std::printf("(%zu rows)\n", result->rows.size());
  } else {
    std::printf("%zu rows affected\n", result->affected_rows);
    if (auto s = database->Persist(arguments.db_dir); !s.ok()) {
      return Fail(s);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Arguments arguments = ParseArguments(argc, argv);
  if (arguments.command == "targets") return CmdTargets();
  if (arguments.command == "workloads") return CmdWorkloads();
  if (arguments.command == "run") return CmdRun(arguments, false);
  if (arguments.command == "resume") return CmdRun(arguments, true);
  if (arguments.command == "analyze") return CmdAnalyze(arguments, false);
  if (arguments.command == "export") return CmdAnalyze(arguments, true);
  if (arguments.command == "rerun") return CmdRerun(arguments);
  if (arguments.command == "equivcheck") return CmdEquivCheck(arguments);
  if (arguments.command == "sql") return CmdSql(arguments);
  if (arguments.command == "schema") {
    std::printf("%s\n", core::GoofiSchemaSql());
    return 0;
  }
  std::fprintf(stderr,
               "GOOFI++ command-line tool\n"
               "usage: goofi_tool <command> [args] [--db DIR]\n"
               "commands:\n"
               "  targets                 list registered target systems\n"
               "  workloads               list built-in workloads\n"
               "  run <campaign.ini>      store + run a campaign, print "
               "analysis\n"
               "                          (--jobs N or a `jobs` campaign "
               "key shards it\n"
               "                          across N workers, same database "
               "bit for bit)\n"
               "  resume <campaign>       continue a stopped campaign "
               "(any --jobs)\n"
               "                          (--flaky \"io@3;hang@5\" scripts "
               "transport faults\n"
               "                          to exercise the supervision "
               "layer)\n"
               "                          (--checkpoint on|off forces "
               "checkpoint-fork\n"
               "                          execution; results are identical "
               "either way)\n"
               "  analyze <campaign>      re-print the analysis report\n"
               "  export <campaign>       per-experiment outcomes as CSV\n"
               "  rerun <experiment>      detail-mode re-run "
               "(parentExperiment)\n"
               "  equivcheck <campaign>   re-inject every member of logged\n"
               "                          equivalence classes and prove "
               "them\n"
               "                          outcome-homogeneous "
               "([max_classes] bounds it)\n"
               "  sql \"<statement>\"       query the campaign database\n"
               "  schema                  print the Fig. 4 schema as SQL\n");
  return arguments.command.empty() ? 0 : 1;
}
