// goofi-lint: static checks for workloads and campaign definitions.
//
//   goofi_lint [--strict] [--format=text|json] FILE...
//
// FILE kinds are inferred from the extension:
//   *.workload     .workload spec (checks the spec and its assembly)
//   *.ini          campaign definition
//   anything else  GOOFI-32 assembly source
//
// Diagnostics print as "file:line: severity: message [check]";
// --format=json emits them to stdout as a JSON array of
// {file, line, check, severity, message} objects instead. Repeats of
// the same (file, line, check) are reported once. Exit status is 1
// when any error was reported (with --strict, when anything at all was
// reported) — wire it straight into CI.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/linter.h"
#include "target/factory.h"
#include "util/config.h"

namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

// Campaign location filters are checked against the board the campaign
// actually names with its `target` key (thor_rd when the key is absent
// or names no builtin — the location checks then still catch the
// legacy-board mistakes, and the unknown target itself is the runner's
// error to report).
class LocationInventory {
 public:
  const std::vector<goofi::target::TargetSystemInterface::LocationInfo>*
  ForCampaignText(const std::string& ini_text) {
    std::string name = "thor_rd";
    const auto parsed = goofi::Config::Parse(ini_text);
    if (parsed.ok()) {
      const goofi::ConfigSection* section = parsed->FindSection("campaign");
      if (section != nullptr) name = section->GetStringOr("target", name);
    }
    if (!goofi::target::BuiltinTargetFactory(name).ok()) name = "thor_rd";
    auto it = cache_.find(name);
    if (it == cache_.end()) {
      auto factory = goofi::target::BuiltinTargetFactory(name);
      auto target = (*factory)();
      if (!target.ok()) return nullptr;
      it = cache_.emplace(name, (*target)->ListLocations()).first;
    }
    return &it->second;
  }

 private:
  std::map<std::string,
           std::vector<goofi::target::TargetSystemInterface::LocationInfo>>
      cache_;
};

}  // namespace

int main(int argc, char** argv) {
  using goofi::analysis::LintDiagnostic;
  bool strict = false;
  bool json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg.rfind("--format", 0) == 0) {
      std::fprintf(stderr, "goofi_lint: unknown format '%s'\n", arg.c_str());
      return 2;
    } else if (arg == "--help" || arg == "-h") {
      std::puts("usage: goofi_lint [--strict] [--format=text|json] FILE...");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fputs("usage: goofi_lint [--strict] [--format=text|json] FILE...\n",
               stderr);
    return 2;
  }

  LocationInventory inventory;
  std::vector<LintDiagnostic> diagnostics;
  for (const std::string& file : files) {
    if (EndsWith(file, ".workload")) {
      const auto found = goofi::analysis::LintWorkloadSpecFile(file);
      diagnostics.insert(diagnostics.end(), found.begin(), found.end());
      continue;
    }
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      diagnostics.push_back({LintDiagnostic::Severity::kError, file, 0,
                             "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::vector<LintDiagnostic> found =
        EndsWith(file, ".ini")
            ? goofi::analysis::LintCampaignText(
                  file, buffer.str(),
                  inventory.ForCampaignText(buffer.str()))
            : goofi::analysis::LintWorkloadSource(file, buffer.str());
    diagnostics.insert(diagnostics.end(), found.begin(), found.end());
  }

  diagnostics =
      goofi::analysis::DeduplicateDiagnostics(std::move(diagnostics));
  if (json) {
    std::fputs(goofi::analysis::FormatDiagnosticsJson(diagnostics).c_str(),
               stdout);
  } else {
    for (const LintDiagnostic& diagnostic : diagnostics) {
      std::fprintf(stderr, "%s\n",
                   goofi::analysis::FormatDiagnostic(diagnostic).c_str());
    }
    if (!diagnostics.empty()) {
      std::fprintf(stderr, "goofi-lint: %zu diagnostic%s\n",
                   diagnostics.size(), diagnostics.size() == 1 ? "" : "s");
    }
  }
  const bool failed =
      goofi::analysis::HasErrors(diagnostics) ||
      (strict && !diagnostics.empty());
  return failed ? 1 : 0;
}
