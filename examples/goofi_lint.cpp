// goofi-lint: static checks for workloads and campaign definitions.
//
//   goofi_lint [--strict] FILE...
//
// FILE kinds are inferred from the extension:
//   *.workload     .workload spec (checks the spec and its assembly)
//   *.ini          campaign definition
//   anything else  GOOFI-32 assembly source
//
// Diagnostics print as "file:line: severity: message [check]". Exit
// status is 1 when any error was reported (with --strict, when anything
// at all was reported) — wire it straight into CI.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/linter.h"
#include "target/thor_rd_target.h"

namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

int main(int argc, char** argv) {
  using goofi::analysis::LintDiagnostic;
  bool strict = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--help" || arg == "-h") {
      std::puts("usage: goofi_lint [--strict] FILE...");
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fputs("usage: goofi_lint [--strict] FILE...\n", stderr);
    return 2;
  }

  // Campaign location filters are checked against the Thor RD board,
  // the target every stored campaign in this repository runs on.
  goofi::target::ThorRdTarget thor;
  const auto locations = thor.ListLocations();

  std::vector<LintDiagnostic> diagnostics;
  for (const std::string& file : files) {
    if (EndsWith(file, ".workload")) {
      const auto found = goofi::analysis::LintWorkloadSpecFile(file);
      diagnostics.insert(diagnostics.end(), found.begin(), found.end());
      continue;
    }
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      diagnostics.push_back({LintDiagnostic::Severity::kError, file, 0,
                             "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::vector<LintDiagnostic> found =
        EndsWith(file, ".ini")
            ? goofi::analysis::LintCampaignText(file, buffer.str(),
                                                &locations)
            : goofi::analysis::LintWorkloadSource(file, buffer.str());
    diagnostics.insert(diagnostics.end(), found.begin(), found.end());
  }

  for (const LintDiagnostic& diagnostic : diagnostics) {
    std::fprintf(stderr, "%s\n",
                 goofi::analysis::FormatDiagnostic(diagnostic).c_str());
  }
  const bool failed =
      goofi::analysis::HasErrors(diagnostics) ||
      (strict && !diagnostics.empty());
  if (!diagnostics.empty()) {
    std::fprintf(stderr, "goofi-lint: %zu diagnostic%s\n",
                 diagnostics.size(), diagnostics.size() == 1 ? "" : "s");
  }
  return failed ? 1 : 0;
}
