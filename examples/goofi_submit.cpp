// goofi_submit: client CLI for a running goofi_serve daemon.
//
//   goofi_submit --socket PATH submit <campaign.ini>
//   goofi_submit --socket PATH status [id]
//   goofi_submit --socket PATH watch <id>
//   goofi_submit --socket PATH cancel|pause|unpause <id>
//   goofi_submit --socket PATH ping | drain
//
// Exit codes: 0 ok, 1 daemon-side error (the error line is printed) or
// a watch that ended in a terminal state other than "completed"
// (failed/cancelled), 2 usage / cannot reach the daemon.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/socket.h"
#include "util/strings.h"

namespace {

using namespace goofi;

int Usage() {
  std::fprintf(stderr,
               "usage: goofi_submit --socket PATH <command> [args]\n"
               "commands:\n"
               "  submit <campaign.ini>   queue a campaign, print its id\n"
               "  status [id]             one submission or the whole queue\n"
               "  watch <id>              stream progress until terminal\n"
               "  cancel <id>             cancel queued/running\n"
               "  pause <id> | unpause <id>\n"
               "  ping                    daemon liveness\n"
               "  drain                   ask the daemon to drain and exit\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else {
      positional.emplace_back(argv[i]);
    }
  }
  if (socket_path.empty() || positional.empty()) return Usage();
  const std::string& command = positional[0];

  std::string request;
  if (command == "submit") {
    if (positional.size() < 2) return Usage();
    std::ifstream file(positional[1]);
    if (!file) {
      std::fprintf(stderr, "goofi_submit: cannot read %s\n",
                   positional[1].c_str());
      return 2;
    }
    std::ostringstream text;
    text << file.rdbuf();
    request = "submit\n" + text.str();
  } else if (command == "ping" || command == "drain" ||
             command == "status") {
    request = command;
    if (command == "status" && positional.size() > 1) {
      request += " " + positional[1];
    }
  } else if (command == "watch" || command == "cancel" ||
             command == "pause" || command == "unpause") {
    if (positional.size() < 2) return Usage();
    request = command + " " + positional[1];
  } else {
    return Usage();
  }

  auto connection = UnixSocket::Connect(socket_path);
  if (!connection.ok()) {
    std::fprintf(stderr, "goofi_submit: %s\n",
                 connection.status().ToString().c_str());
    return 2;
  }
  if (auto sent = connection->SendFrame(request); !sent.ok()) {
    std::fprintf(stderr, "goofi_submit: %s\n", sent.ToString().c_str());
    return 2;
  }

  // watch streams many frames; everything else answers with one.
  for (;;) {
    auto frame = connection->RecvFrame();
    if (!frame.ok()) {
      std::fprintf(stderr, "goofi_submit: %s\n",
                   frame.status().ToString().c_str());
      return 2;
    }
    if (StartsWith(*frame, "progress ")) {
      std::printf("%s\n", frame->c_str());
      std::fflush(stdout);
      continue;
    }
    if (StartsWith(*frame, "end ")) {
      // Scripts branch on the exit code: only a campaign that actually
      // completed is success; "end failed"/"end cancelled" are not.
      std::printf("%s\n", frame->c_str());
      return *frame == "end completed" ? 0 : 1;
    }
    auto response = service::ParseResponse(*frame);
    if (!response.ok()) {
      std::fprintf(stderr, "goofi_submit: %s\n",
                   response.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", response->empty() ? "ok" : response->c_str());
    return 0;
  }
}
