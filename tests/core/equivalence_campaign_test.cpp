// Campaign-level tests for `static_analysis = equivalence`: one
// representative injection per def-use class, stub rows for the pruned
// duplicates, weighted extrapolation in the analysis stage, serial /
// parallel bit-identity, and the exhaustive class re-injection audit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/analysis.h"
#include "core/campaign.h"
#include "core/crosscheck.h"
#include "core/goofi_schema.h"
#include "core/parallel_runner.h"
#include "core/runner.h"
#include "core/supervision.h"
#include "db/sql/executor.h"
#include "target/thor_rd_target.h"
#include "target/workloads.h"

namespace goofi::core {
namespace {

std::vector<std::string> DumpTable(db::Database& database,
                                   const std::string& table_name) {
  std::vector<std::string> rows;
  const db::Table* table = database.FindTable(table_name);
  if (table == nullptr) return rows;
  for (const db::Row& row : table->rows()) {
    std::string line;
    for (const db::Value& value : row) {
      line += value.Encode();
      line += '\t';
    }
    rows.push_back(std::move(line));
  }
  return rows;
}

class EquivalenceCampaignTest : public ::testing::Test {
 protected:
  // A narrow injection window keeps the class space small enough that
  // 160 draws reliably collide: the fib prologue touches few
  // registers, so distinct (reg, bit, interval) triples are scarce.
  static CampaignConfig MakeConfig(const std::string& name,
                                   std::uint32_t experiments = 160) {
    CampaignConfig config;
    config.name = name;
    config.workload = "fib";
    config.num_experiments = experiments;
    config.seed = 7;
    config.location_filters = {"cpu.regs.*"};
    config.use_preinjection_analysis = true;
    config.use_static_analysis = true;
    config.use_equivalence = true;
    config.time_window_lo = 0;
    config.time_window_hi = 30;
    return config;
  }

  static void SetUpDatabase(db::Database& database,
                            const CampaignConfig& config) {
    ASSERT_TRUE(CreateGoofiSchema(database).ok());
    target::ThorRdTarget registrar;
    ASSERT_TRUE(RegisterTargetSystem(database, registrar, "card", "").ok());
    ASSERT_TRUE(StoreCampaign(database, config).ok());
  }

  static target::TargetFactory ThorFactory() {
    auto factory = target::BuiltinTargetFactory("thor_rd");
    EXPECT_TRUE(factory.ok());
    return *factory;
  }
};

TEST_F(EquivalenceCampaignTest, RepresentativesRunAndDuplicatesStub) {
  const CampaignConfig config = MakeConfig("equiv");
  db::Database database;
  SetUpDatabase(database, config);
  target::ThorRdTarget target;
  auto summary = CampaignRunner(&database, &target).Run("equiv");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  // Every planned experiment is either a class representative or a
  // pruned duplicate, and the narrow window guarantees collisions.
  EXPECT_EQ(summary->equiv_classes + summary->equiv_duplicates,
            config.num_experiments);
  EXPECT_GT(summary->equiv_duplicates, 0u);
  EXPECT_GE(summary->equiv_space_weight, summary->equiv_classes);
  EXPECT_EQ(summary->experiments_run, config.num_experiments);

  std::size_t stubs = 0;
  std::size_t representatives = 0;
  const db::Table* logged = database.FindTable(kLoggedSystemStateTable);
  ASSERT_NE(logged, nullptr);
  for (const db::Row& row : logged->rows()) {
    if (row[6].is_null()) continue;  // the reference row
    if (row[6].AsText() == kToolStatusEquivalent) {
      ++stubs;
      // A stub points at its representative and stores no state: the
      // outcome IS the representative's.
      EXPECT_FALSE(row[1].is_null());
      EXPECT_TRUE(row[4].is_null());
      ASSERT_FALSE(row[8].is_null());
      EXPECT_EQ(row[5].AsInteger(), 0);
    } else if (!row[8].is_null()) {
      ++representatives;
      EXPECT_TRUE(row[1].is_null());
      EXPECT_FALSE(row[4].is_null());
      EXPECT_GE(row[9].AsInteger(), 1);
    }
  }
  EXPECT_EQ(stubs, summary->equiv_duplicates);
  EXPECT_EQ(representatives, summary->equiv_classes);

  auto analysis = AnalyzeCampaign(database, "equiv");
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_TRUE(analysis->equivalence.enabled);
  EXPECT_EQ(analysis->equivalence.classes, summary->equiv_classes);
  EXPECT_EQ(analysis->equivalence.duplicates, summary->equiv_duplicates);
  EXPECT_EQ(analysis->equivalence.unresolved_duplicates, 0u);
  EXPECT_EQ(analysis->equivalence.space_weight, summary->equiv_space_weight);
  // Each class weight >= 1, so every weighted count dominates its
  // per-representative (measured) counterpart.
  EXPECT_GE(analysis->equivalence.weighted_detected, analysis->detected);
  EXPECT_GE(analysis->equivalence.weighted_escaped, analysis->escaped);
  const std::uint64_t weighted_total =
      analysis->equivalence.weighted_detected +
      analysis->equivalence.weighted_escaped +
      analysis->equivalence.weighted_latent +
      analysis->equivalence.weighted_overwritten +
      analysis->equivalence.weighted_not_injected;
  EXPECT_EQ(weighted_total, analysis->equivalence.space_weight);
  // The report renders the extrapolation block.
  EXPECT_NE(FormatAnalysisReport(*analysis).find("Equivalence classes"),
            std::string::npos);
}

TEST_F(EquivalenceCampaignTest, SerialAndParallelDatabasesAreBitIdentical) {
  const CampaignConfig config = MakeConfig("equiv_par");
  db::Database serial_db;
  SetUpDatabase(serial_db, config);
  target::ThorRdTarget serial_target;
  auto serial_summary =
      CampaignRunner(&serial_db, &serial_target).Run("equiv_par");
  ASSERT_TRUE(serial_summary.ok()) << serial_summary.status().ToString();

  db::Database parallel_db;
  SetUpDatabase(parallel_db, config);
  ParallelCampaignRunner runner(&parallel_db, ThorFactory(), 4);
  auto summary = runner.Run("equiv_par");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  EXPECT_EQ(DumpTable(parallel_db, kLoggedSystemStateTable),
            DumpTable(serial_db, kLoggedSystemStateTable));
  EXPECT_EQ(DumpTable(parallel_db, kCampaignDataTable),
            DumpTable(serial_db, kCampaignDataTable));
  EXPECT_EQ(summary->equiv_classes, serial_summary->equiv_classes);
  EXPECT_EQ(summary->equiv_duplicates, serial_summary->equiv_duplicates);
  EXPECT_EQ(summary->equiv_space_weight, serial_summary->equiv_space_weight);
  EXPECT_EQ(summary->preinjection_resamples,
            serial_summary->preinjection_resamples);
}

TEST_F(EquivalenceCampaignTest, EquivalenceModeRoundTripsThroughTheDb) {
  const CampaignConfig config = MakeConfig("equiv_rt");
  db::Database database;
  SetUpDatabase(database, config);
  auto loaded = LoadCampaign(database, "equiv_rt");
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->use_static_analysis);
  EXPECT_TRUE(loaded->use_equivalence);

  CampaignConfig liveness_only = MakeConfig("liveness_rt");
  liveness_only.use_equivalence = false;
  ASSERT_TRUE(StoreCampaign(database, liveness_only).ok());
  auto loaded_liveness = LoadCampaign(database, "liveness_rt");
  ASSERT_TRUE(loaded_liveness.ok());
  EXPECT_TRUE(loaded_liveness->use_static_analysis);
  EXPECT_FALSE(loaded_liveness->use_equivalence);
}

TEST_F(EquivalenceCampaignTest, CrossCheckProvesHomogeneityAndBounds) {
  const CampaignConfig config = MakeConfig("equiv_audit", 60);
  db::Database database;
  SetUpDatabase(database, config);
  target::ThorRdTarget target;
  auto summary = CampaignRunner(&database, &target).Run("equiv_audit");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  auto bounded = CrossCheckEquivalenceCampaign(database, "equiv_audit", 3);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded->classes_checked, 3u);
  EXPECT_GE(bounded->members_injected, 3u);
  EXPECT_EQ(bounded->members_injected, bounded->space_weight);

  auto full = CrossCheckEquivalenceCampaign(database, "equiv_audit");
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->classes_checked, summary->equiv_classes);
  EXPECT_EQ(full->space_weight, summary->equiv_space_weight);
}

TEST_F(EquivalenceCampaignTest, CrossCheckDetectsATamperedRepresentative) {
  const CampaignConfig config = MakeConfig("equiv_tamper", 40);
  db::Database database;
  SetUpDatabase(database, config);
  target::ThorRdTarget target;
  ASSERT_TRUE(CampaignRunner(&database, &target).Run("equiv_tamper").ok());

  // Corrupt the first representative's stored observation; every
  // member re-injection now disagrees with it, and the audit must say
  // so rather than bless the class.
  auto tampered = db::sql::ExecuteSql(
      database,
      "UPDATE LoggedSystemState SET state_vector = 'tampered' WHERE "
      "tool_status = 'ok' AND campaign_name = 'equiv_tamper'");
  ASSERT_TRUE(tampered.ok()) << tampered.status().ToString();
  ASSERT_GT(tampered->affected_rows, 0u);

  auto audit = CrossCheckEquivalenceCampaign(database, "equiv_tamper", 1);
  ASSERT_FALSE(audit.ok());
  EXPECT_NE(audit.status().message().find("outcome-heterogeneous"),
            std::string::npos);
}

TEST_F(EquivalenceCampaignTest, RejectsCombinationsTheTheoryCannotCover) {
  db::Database database;
  CampaignConfig config = MakeConfig("equiv_bad");
  config.model.kind = target::FaultModel::Kind::kPermanentStuckAt;
  SetUpDatabase(database, config);
  target::ThorRdTarget target;
  auto summary = CampaignRunner(&database, &target).Run("equiv_bad");
  EXPECT_FALSE(summary.ok());
}

}  // namespace
}  // namespace goofi::core
