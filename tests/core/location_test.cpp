#include "core/location.h"

#include <gtest/gtest.h>

#include <map>

namespace goofi::core {
namespace {

using LocationInfo = target::TargetSystemInterface::LocationInfo;

std::vector<LocationInfo> SampleLocations() {
  std::vector<LocationInfo> locations;
  auto element = [](const char* name, std::uint32_t width, bool writable,
                    const char* category) {
    LocationInfo info;
    info.kind = LocationInfo::Kind::kScanElement;
    info.name = name;
    info.chain = "internal";
    info.width_bits = width;
    info.writable = writable;
    info.category = category;
    return info;
  };
  locations.push_back(element("cpu.regs.r1", 32, true, "reg"));
  locations.push_back(element("cpu.regs.r2", 32, true, "reg"));
  locations.push_back(element("cpu.pc", 32, true, "control"));
  locations.push_back(element("cpu.chip_id", 32, false, "status"));
  locations.push_back(element("icache.line0.data0", 32, true, "icache"));

  LocationInfo code;
  code.kind = LocationInfo::Kind::kMemoryRange;
  code.name = "mem.0x00000000";
  code.category = "memory_code";
  code.base = 0;
  code.size = 64;  // 512 bits
  locations.push_back(code);
  LocationInfo data;
  data.kind = LocationInfo::Kind::kMemoryRange;
  data.name = "mem.0x00010000";
  data.category = "memory_data";
  data.base = 0x10000;
  data.size = 16;  // 128 bits
  locations.push_back(data);
  return locations;
}

TEST(LocationSpaceTest, TechniqueReach) {
  const auto all = SampleLocations();
  // SCIFI: writable scan elements only.
  auto scifi = LocationSpace::Build(all, target::Technique::kScifi, {});
  ASSERT_TRUE(scifi.ok());
  EXPECT_EQ(scifi->entries().size(), 4u);  // chip_id (RO) and memory out
  EXPECT_EQ(scifi->total_bits(), 4u * 32);

  // Pre-runtime SWIFI: memory only.
  auto pre = LocationSpace::Build(all, target::Technique::kSwifiPreRuntime,
                                  {});
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->entries().size(), 2u);
  EXPECT_EQ(pre->total_bits(), (64u + 16u) * 8);

  // Runtime SWIFI: registers, pc, memory — no cache arrays.
  auto runtime = LocationSpace::Build(all, target::Technique::kSwifiRuntime,
                                      {});
  ASSERT_TRUE(runtime.ok());
  EXPECT_EQ(runtime->entries().size(), 5u);
}

TEST(LocationSpaceTest, FiltersAreGlobPatterns) {
  const auto all = SampleLocations();
  auto regs = LocationSpace::Build(all, target::Technique::kScifi,
                                   {"cpu.regs.*"});
  ASSERT_TRUE(regs.ok());
  EXPECT_EQ(regs->entries().size(), 2u);

  auto mixed = LocationSpace::Build(all, target::Technique::kScifi,
                                    {"cpu.regs.r1", "icache.*"});
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->entries().size(), 2u);
}

TEST(LocationSpaceTest, EmptySelectionIsAnError) {
  const auto all = SampleLocations();
  EXPECT_EQ(LocationSpace::Build(all, target::Technique::kScifi,
                                 {"nothing.*"})
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  // Filters that only match unreachable locations also error.
  EXPECT_FALSE(LocationSpace::Build(all, target::Technique::kScifi,
                                    {"mem.*"})
                   .ok());
}

TEST(LocationSpaceTest, SampleIndexMapsBitsExactly) {
  const auto all = SampleLocations();
  auto space = LocationSpace::Build(all, target::Technique::kScifi,
                                    {"cpu.regs.*"});
  ASSERT_TRUE(space.ok());
  // Bits 0..31 belong to r1, 32..63 to r2.
  EXPECT_EQ(space->SampleIndex(0).location, "cpu.regs.r1");
  EXPECT_EQ(space->SampleIndex(0).bit, 0u);
  EXPECT_EQ(space->SampleIndex(31).location, "cpu.regs.r1");
  EXPECT_EQ(space->SampleIndex(31).bit, 31u);
  EXPECT_EQ(space->SampleIndex(32).location, "cpu.regs.r2");
  EXPECT_EQ(space->SampleIndex(32).bit, 0u);
  EXPECT_EQ(space->SampleIndex(63).bit, 31u);
}

TEST(LocationSpaceTest, MemorySamplesNameByteAddresses) {
  const auto all = SampleLocations();
  auto space = LocationSpace::Build(all, target::Technique::kSwifiPreRuntime,
                                    {"mem.0x00010000"});
  ASSERT_TRUE(space.ok());
  const target::FaultTarget first = space->SampleIndex(0);
  EXPECT_EQ(first.location, "mem@0x00010000");
  EXPECT_EQ(first.bit, 0u);
  const target::FaultTarget mid = space->SampleIndex(8 * 5 + 3);
  EXPECT_EQ(mid.location, "mem@0x00010005");
  EXPECT_EQ(mid.bit, 3u);
}

TEST(LocationSpaceTest, SamplingIsRoughlyUniformOverBits) {
  const auto all = SampleLocations();
  auto space = LocationSpace::Build(all, target::Technique::kScifi, {});
  ASSERT_TRUE(space.ok());
  Rng rng(99);
  std::map<std::string, int> histogram;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    ++histogram[space->SampleBit(rng).location];
  }
  // Four 32-bit locations: each should get ~25%.
  ASSERT_EQ(histogram.size(), 4u);
  for (const auto& [name, count] : histogram) {
    EXPECT_GT(count, trials / 4 - trials / 20) << name;
    EXPECT_LT(count, trials / 4 + trials / 20) << name;
  }
}

TEST(LocationSpaceTest, ZeroWidthLocationsAreSkipped) {
  std::vector<LocationInfo> all = SampleLocations();
  LocationInfo empty;
  empty.kind = LocationInfo::Kind::kMemoryRange;
  empty.name = "mem.empty";
  empty.base = 0x90000;
  empty.size = 0;
  all.push_back(empty);
  auto space =
      LocationSpace::Build(all, target::Technique::kSwifiPreRuntime, {});
  ASSERT_TRUE(space.ok());
  for (const auto& entry : space->entries()) {
    EXPECT_GT(entry.bit_count, 0u);
  }
}

}  // namespace
}  // namespace goofi::core
