#include "core/experiment_codec.h"

#include <gtest/gtest.h>

namespace goofi::core {
namespace {

target::ExperimentSpec MakeSpec() {
  target::ExperimentSpec spec;
  spec.name = "camp/exp00042";
  spec.technique = target::Technique::kSwifiRuntime;
  spec.trigger.kind = sim::Breakpoint::Kind::kDataWrite;
  spec.trigger.address = 0x10020;
  spec.trigger.count = 3;
  spec.targets = {{"cpu.regs.r5", 17}, {"mem@0x00010004", 6}};
  spec.model.kind = target::FaultModel::Kind::kIntermittentBitFlip;
  spec.model.period = 256;
  spec.model.occurrences = 7;
  spec.model.stuck_to_one = false;
  spec.termination.max_instructions = 123456;
  spec.termination.max_iterations = 40;
  return spec;
}

TEST(ExperimentCodecTest, SpecRoundTrip) {
  const target::ExperimentSpec original = MakeSpec();
  const auto restored = ParseExperimentSpec(SerializeExperimentSpec(original));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->name, original.name);
  EXPECT_EQ(restored->technique, original.technique);
  EXPECT_EQ(restored->trigger.kind, original.trigger.kind);
  EXPECT_EQ(restored->trigger.address, original.trigger.address);
  EXPECT_EQ(restored->trigger.count, original.trigger.count);
  ASSERT_EQ(restored->targets.size(), 2u);
  EXPECT_EQ(restored->targets[0].location, "cpu.regs.r5");
  EXPECT_EQ(restored->targets[0].bit, 17u);
  EXPECT_EQ(restored->targets[1].location, "mem@0x00010004");
  EXPECT_EQ(restored->targets[1].bit, 6u);
  EXPECT_EQ(restored->model.kind, original.model.kind);
  EXPECT_EQ(restored->model.period, 256u);
  EXPECT_EQ(restored->model.occurrences, 7u);
  EXPECT_FALSE(restored->model.stuck_to_one);
  EXPECT_EQ(restored->termination.max_instructions, 123456u);
  EXPECT_EQ(restored->termination.max_iterations, 40u);
}

TEST(ExperimentCodecTest, TriggerRoundTripsAllKinds) {
  for (const auto kind :
       {sim::Breakpoint::Kind::kPcEquals,
        sim::Breakpoint::Kind::kInstretReached,
        sim::Breakpoint::Kind::kDataRead, sim::Breakpoint::Kind::kDataWrite,
        sim::Breakpoint::Kind::kBranchTaken, sim::Breakpoint::Kind::kCall,
        sim::Breakpoint::Kind::kRtcMicros}) {
    sim::Breakpoint trigger;
    trigger.kind = kind;
    trigger.address = 0xABCD;
    trigger.count = 42;
    trigger.micros = 17;
    const auto restored = ParseTrigger(SerializeTrigger(trigger));
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->kind, kind);
    EXPECT_EQ(restored->address, 0xABCDu);
    EXPECT_EQ(restored->count, 42u);
    EXPECT_EQ(restored->micros, 17u);
  }
}

TEST(ExperimentCodecTest, EmptyTargetsAllowed) {
  target::ExperimentSpec reference;
  reference.name = "camp/reference";
  const auto restored =
      ParseExperimentSpec(SerializeExperimentSpec(reference));
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->targets.empty());
}

TEST(ExperimentCodecTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseExperimentSpec("nonsense").ok());
  EXPECT_FALSE(ParseExperimentSpec("technique=laser").ok());
  EXPECT_FALSE(ParseExperimentSpec("targets=no-bit-separator").ok());
  EXPECT_FALSE(ParseExperimentSpec("model=vapor").ok());
  EXPECT_FALSE(ParseExperimentSpec("unknown=1").ok());
  EXPECT_FALSE(ParseTrigger("pc,zz,1,1").ok());
  EXPECT_FALSE(ParseTrigger("pc,0x0,1").ok());
  EXPECT_FALSE(ParseTrigger("teleport,0x0,1,1").ok());
}

}  // namespace
}  // namespace goofi::core
