// The supervision layer under test by fault injection: a FlakyTarget
// factory scripts transport faults, target faults and hangs at exact
// (experiment, attempt) coordinates, and the tests assert the
// supervisor's dispositions — retries consumed, instances quarantined,
// experiments abandoned with the right tool status — plus the
// fail-soft behaviour of the serial campaign loop and the detail
// re-run workflow built on top of it.
#include "core/supervision.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "core/analysis.h"
#include "core/goofi_schema.h"
#include "core/runner.h"
#include "db/sql/executor.h"
#include "target/factory.h"
#include "target/flaky_target.h"
#include "target/thor_rd_target.h"

namespace goofi::core {
namespace {

using target::FlakyFault;
using target::FlakyScript;

// ---- policy ------------------------------------------------------------

TEST(SupervisionPolicyTest, DerivedTimeoutHasAFloorAndScalesWithBudget) {
  EXPECT_EQ(DeriveExperimentTimeoutMs(0), 1000u);
  EXPECT_EQ(DeriveExperimentTimeoutMs(1), 1000u);
  EXPECT_EQ(DeriveExperimentTimeoutMs(500'000), 1000u);
  EXPECT_EQ(DeriveExperimentTimeoutMs(2'000'000), 2100u);
  EXPECT_EQ(DeriveExperimentTimeoutMs(50'000'000), 50'100u);
}

TEST(SupervisionPolicyTest, ExplicitTimeoutBeatsEveryDerivation) {
  CampaignConfig config;
  config.experiment_timeout_ms = 777;
  config.max_retries = 3;
  config.retry_backoff_ms = 5;
  const SupervisionPolicy policy =
      ResolveSupervisionPolicy(config, target::TerminationSpec{9'000'000, 0});
  EXPECT_EQ(policy.experiment_timeout_ms, 777u);
  EXPECT_EQ(policy.max_retries, 3u);
  EXPECT_EQ(policy.retry_backoff_ms, 5u);
}

TEST(SupervisionPolicyTest, TimeoutDerivesFromTheEffectiveBudget) {
  // Campaign termination override beats the workload's default.
  CampaignConfig config;
  config.termination.max_instructions = 10'000'000;
  EXPECT_EQ(ResolveSupervisionPolicy(config,
                                     target::TerminationSpec{4'000'000, 0})
                .experiment_timeout_ms,
            DeriveExperimentTimeoutMs(10'000'000));
  // Workload default beats the global budget.
  config.termination.max_instructions = 0;
  EXPECT_EQ(ResolveSupervisionPolicy(config,
                                     target::TerminationSpec{4'000'000, 0})
                .experiment_timeout_ms,
            DeriveExperimentTimeoutMs(4'000'000));
  // Nothing set: the global 2M-instruction budget.
  EXPECT_EQ(ResolveSupervisionPolicy(config, target::TerminationSpec{0, 0})
                .experiment_timeout_ms,
            DeriveExperimentTimeoutMs(2'000'000));
}

// ---- the flaky script --------------------------------------------------

TEST(FlakyScriptTest, ParsesKindsAttemptsAndHangDuration) {
  auto script = target::ParseFlakyScript(
      "io@3;hang@5;target_fault@7:2;io@9:*;hang_ms=250");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ((*script)->faults.at({3, 1}), FlakyFault::kIo);
  EXPECT_EQ((*script)->faults.at({5, 1}), FlakyFault::kHang);
  EXPECT_EQ((*script)->faults.at({7, 2}), FlakyFault::kTargetFault);
  EXPECT_EQ((*script)->always.at(9), FlakyFault::kIo);
  EXPECT_EQ((*script)->hang_ms, 250u);
  // Comma separation works too.
  EXPECT_TRUE(target::ParseFlakyScript("io@1,io@2").ok());
}

TEST(FlakyScriptTest, RejectsMalformedEntries) {
  EXPECT_FALSE(target::ParseFlakyScript("laser@3").ok());
  EXPECT_FALSE(target::ParseFlakyScript("io@").ok());
  EXPECT_FALSE(target::ParseFlakyScript("io").ok());
  EXPECT_FALSE(target::ParseFlakyScript("io@x").ok());
  EXPECT_FALSE(target::ParseFlakyScript("io@3:y").ok());
}

TEST(FlakyScriptTest, ExperimentIndexComesFromTheCanonicalName) {
  EXPECT_EQ(target::FlakyExperimentIndex("camp/exp00042"), 42u);
  EXPECT_EQ(target::FlakyExperimentIndex("camp/exp00007/detail0"), 7u);
  // Reference runs (and anything unnamed) are never scripted.
  EXPECT_EQ(target::FlakyExperimentIndex("camp/reference"),
            std::numeric_limits<std::uint64_t>::max());
}

// ---- the supervised run ------------------------------------------------

class SupervisedRunTest : public ::testing::Test {
 protected:
  static CampaignConfig MakeConfig() {
    CampaignConfig config;
    config.name = "sup";
    config.workload = "fib";
    config.seed = 7;
    return config;
  }

  // An experiment any thor_rd instance can run: flip one register bit
  // before the first instruction.
  static target::ExperimentSpec MakeSpec(const std::string& name) {
    target::ExperimentSpec spec;
    spec.name = name;
    spec.targets = {{"cpu.regs.r2", 13}};
    return spec;
  }

  // A flaky thor_rd factory sharing `script`, plus a slot owning one
  // configured instance minted from it.
  target::TargetFactory FlakyFactory(std::shared_ptr<FlakyScript> script) {
    auto inner = target::BuiltinTargetFactory("thor_rd");
    EXPECT_TRUE(inner.ok());
    return target::MakeFlakyTargetFactory(*inner, std::move(script));
  }

  TargetSlot MintConfiguredSlot(const target::TargetFactory& factory,
                                const CampaignConfig& config) {
    auto made = factory();
    EXPECT_TRUE(made.ok());
    EXPECT_TRUE(ConfigureTargetWorkload(config, made->get()).ok());
    return TargetSlot::Own(std::move(*made));
  }

  static SupervisionPolicy FastPolicy(std::uint32_t max_retries,
                                      std::uint64_t timeout_ms = 30'000) {
    SupervisionPolicy policy;
    policy.experiment_timeout_ms = timeout_ms;
    policy.max_retries = max_retries;
    policy.retry_backoff_ms = 1;  // exercise the backoff path cheaply
    return policy;
  }
};

TEST_F(SupervisedRunTest, CleanRunCompletesOnTheFirstAttempt) {
  const CampaignConfig config = MakeConfig();
  auto script = std::make_shared<FlakyScript>();
  const target::TargetFactory factory = FlakyFactory(script);
  TargetSlot slot = MintConfiguredSlot(factory, config);

  auto outcome = RunSupervisedExperiment(slot, MakeSpec("sup/exp00001"),
                                         config, FastPolicy(2), factory);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->disposition.completed());
  EXPECT_FALSE(outcome->disposition.retried());
  EXPECT_EQ(outcome->disposition.attempts, 1u);
  EXPECT_EQ(outcome->disposition.quarantined, 0u);
  EXPECT_TRUE(outcome->last_error.ok());
  EXPECT_TRUE(outcome->observation.fault_was_injected);
}

TEST_F(SupervisedRunTest, RetryableFaultRetriesQuarantinesAndMatchesClean) {
  const CampaignConfig config = MakeConfig();
  auto script = std::make_shared<FlakyScript>();
  script->faults[{3, 1}] = FlakyFault::kTargetFault;  // first try only
  const target::TargetFactory factory = FlakyFactory(script);
  TargetSlot slot = MintConfiguredSlot(factory, config);

  auto outcome = RunSupervisedExperiment(slot, MakeSpec("sup/exp00003"),
                                         config, FastPolicy(2), factory);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->disposition.completed());
  EXPECT_EQ(outcome->disposition.attempts, 2u);
  EXPECT_EQ(outcome->disposition.quarantined, 1u);
  EXPECT_EQ(script->faults_injected.load(), 1u);

  // The retried experiment's observation is byte-identical to the same
  // experiment run without any scripted fault: retries do not perturb
  // results, which is what keeps flaky runs serial-equivalent.
  auto clean_script = std::make_shared<FlakyScript>();
  const target::TargetFactory clean = FlakyFactory(clean_script);
  TargetSlot clean_slot = MintConfiguredSlot(clean, config);
  auto clean_outcome = RunSupervisedExperiment(
      clean_slot, MakeSpec("sup/exp00003"), config, FastPolicy(2), clean);
  ASSERT_TRUE(clean_outcome.ok());
  EXPECT_EQ(outcome->observation.Serialize(),
            clean_outcome->observation.Serialize());
}

TEST_F(SupervisedRunTest, ExhaustedRetriesAbandonWithTheFinalToolStatus) {
  const CampaignConfig config = MakeConfig();
  auto script = std::make_shared<FlakyScript>();
  script->always[4] = FlakyFault::kIo;  // every attempt fails
  const target::TargetFactory factory = FlakyFactory(script);
  TargetSlot slot = MintConfiguredSlot(factory, config);

  auto outcome = RunSupervisedExperiment(slot, MakeSpec("sup/exp00004"),
                                         config, FastPolicy(2), factory);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->disposition.completed());
  EXPECT_EQ(outcome->disposition.tool_status, kToolStatusIo);
  EXPECT_EQ(outcome->disposition.attempts, 3u);  // 1 try + 2 retries
  // Every failed attempt quarantined its instance.
  EXPECT_EQ(outcome->disposition.quarantined, 3u);
  EXPECT_EQ(outcome->last_error.code(), ErrorCode::kIo);
  EXPECT_EQ(script->faults_injected.load(), 3u);
  // The slot still holds a healthy replacement for the next experiment.
  EXPECT_NE(slot.get(), nullptr);
}

TEST_F(SupervisedRunTest, WatchdogAbandonsAWedgedOwnedInstance) {
  const CampaignConfig config = MakeConfig();
  auto script = std::make_shared<FlakyScript>();
  script->faults[{5, 1}] = FlakyFault::kHang;
  script->hang_ms = 1500;  // well past the 100 ms watchdog below
  const target::TargetFactory factory = FlakyFactory(script);
  TargetSlot slot = MintConfiguredSlot(factory, config);

  auto outcome =
      RunSupervisedExperiment(slot, MakeSpec("sup/exp00005"), config,
                              FastPolicy(1, /*timeout_ms=*/100), factory);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The hang consumed attempt 1, quarantine minted a replacement, and
  // the unscripted retry completed.
  EXPECT_TRUE(outcome->disposition.completed());
  EXPECT_EQ(outcome->disposition.attempts, 2u);
  EXPECT_GE(outcome->disposition.quarantined, 1u);
  EXPECT_EQ(script->hangs_injected.load(), 1u);
  // The wedged instance was handed to the reaper and self-releases
  // when its run finally returns; drain it so no corpse outlives the
  // test.
  EXPECT_TRUE(WaitForAbandonedTargets(std::chrono::milliseconds(10'000)));
  EXPECT_EQ(AbandonedTargetsInFlight(), 0u);
}

TEST_F(SupervisedRunTest, PersistentHangIsAbandonedAsAHang) {
  const CampaignConfig config = MakeConfig();
  auto script = std::make_shared<FlakyScript>();
  script->always[6] = FlakyFault::kHang;
  script->hang_ms = 1500;
  const target::TargetFactory factory = FlakyFactory(script);
  TargetSlot slot = MintConfiguredSlot(factory, config);

  auto outcome =
      RunSupervisedExperiment(slot, MakeSpec("sup/exp00006"), config,
                              FastPolicy(0, /*timeout_ms=*/100), factory);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->disposition.completed());
  EXPECT_EQ(outcome->disposition.tool_status, kToolStatusHang);
  EXPECT_EQ(outcome->disposition.attempts, 1u);
  EXPECT_TRUE(WaitForAbandonedTargets(std::chrono::milliseconds(10'000)));
}

TEST_F(SupervisedRunTest, BorrowedSlotRetriesInPlaceWithoutAFactory) {
  const CampaignConfig config = MakeConfig();
  auto script = std::make_shared<FlakyScript>();
  script->faults[{8, 1}] = FlakyFault::kIo;
  const target::TargetFactory factory = FlakyFactory(script);
  auto made = factory();
  ASSERT_TRUE(made.ok());
  ASSERT_TRUE(ConfigureTargetWorkload(config, made->get()).ok());
  TargetSlot slot = TargetSlot::Borrow(made->get());

  // No factory: the retry must reuse the borrowed instance (and the
  // caller keeps ownership throughout).
  auto outcome =
      RunSupervisedExperiment(slot, MakeSpec("sup/exp00008"), config,
                              FastPolicy(1), target::TargetFactory());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome->disposition.completed());
  EXPECT_EQ(outcome->disposition.attempts, 2u);
  EXPECT_EQ(outcome->disposition.quarantined, 0u);
  EXPECT_EQ(slot.get(), made->get());
}

TEST_F(SupervisedRunTest, NonRetryableErrorsStayCampaignFatal) {
  const CampaignConfig config = MakeConfig();
  auto inner = target::BuiltinTargetFactory("thor_rd");
  ASSERT_TRUE(inner.ok());
  TargetSlot slot = MintConfiguredSlot(*inner, config);

  // A programming error (nonexistent fault location) must surface as a
  // Status, not burn retries or masquerade as an abandoned experiment.
  auto outcome = RunSupervisedExperiment(slot, MakeSpec("sup/exp00002"),
                                         config, FastPolicy(3), *inner);
  target::ExperimentSpec bogus = MakeSpec("sup/exp00002");
  bogus.targets = {{"no.such.element", 0}};
  auto fatal = RunSupervisedExperiment(slot, bogus, config, FastPolicy(3),
                                       *inner);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(fatal.ok());
}

// ---- the fail-soft campaign loop ---------------------------------------

class SupervisedCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(CreateGoofiSchema(database_).ok());
    auto workload = target::GetBuiltinWorkload("fib");
    ASSERT_TRUE(workload.ok());
    ASSERT_TRUE(target_.SetWorkload(*workload).ok());
    ASSERT_TRUE(RegisterTargetSystem(database_, target_, "card0", "").ok());
  }

  CampaignConfig MakeConfig(const std::string& name,
                            std::uint32_t experiments = 12) {
    CampaignConfig config;
    config.name = name;
    config.workload = "fib";
    config.num_experiments = experiments;
    config.seed = 11;
    config.location_filters = {"cpu.regs.*"};
    config.experiment_timeout_ms = 30'000;
    config.max_retries = 2;
    config.retry_backoff_ms = 1;
    return config;
  }

  target::TargetFactory FlakyFactory(std::shared_ptr<FlakyScript> script) {
    auto inner = target::BuiltinTargetFactory("thor_rd");
    EXPECT_TRUE(inner.ok());
    return target::MakeFlakyTargetFactory(*inner, std::move(script));
  }

  db::Value FetchOne(const std::string& column, const std::string& name) {
    auto result = db::sql::ExecuteSql(
        database_, "SELECT " + column +
                       " FROM LoggedSystemState WHERE experiment_name = '" +
                       name + "'");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->rows.size(), 1u) << name;
    return result->rows[0][0];
  }

  db::Database database_;
  target::ThorRdTarget target_;
};

TEST_F(SupervisedCampaignTest, FlakyCampaignCompletesAndLogsDispositions) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("flaky")).ok());
  auto script = std::make_shared<FlakyScript>();
  script->faults[{3, 1}] = FlakyFault::kTargetFault;  // retried once
  script->always[5] = FlakyFault::kIo;                // abandoned

  CampaignRunner runner(&database_, &target_);
  runner.set_target_factory(FlakyFactory(script));
  auto summary = runner.Run("flaky");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  // Every planned experiment ended with a logged disposition — the
  // abandoned one included.
  EXPECT_EQ(summary->experiments_run, 12u);
  EXPECT_EQ(summary->experiments_stopped_early, 0u);
  EXPECT_EQ(summary->experiment_retries, 3u);     // 1 (exp3) + 2 (exp5)
  EXPECT_EQ(summary->experiments_abandoned, 1u);  // exp5
  EXPECT_EQ(summary->targets_quarantined, 4u);    // 1 (exp3) + 3 (exp5)

  // The retried experiment completed: ok status, real observation.
  EXPECT_EQ(FetchOne("attempts", "flaky/exp00003").AsInteger(), 2);
  EXPECT_EQ(FetchOne("tool_status", "flaky/exp00003").AsText(), "ok");
  EXPECT_EQ(FetchOne("quarantined", "flaky/exp00003").AsInteger(), 1);
  EXPECT_FALSE(FetchOne("state_vector", "flaky/exp00003").is_null());

  // The abandoned experiment carries its full disposition and no
  // observation (NULL state vector).
  EXPECT_EQ(FetchOne("attempts", "flaky/exp00005").AsInteger(), 3);
  EXPECT_EQ(FetchOne("tool_status", "flaky/exp00005").AsText(), "io");
  EXPECT_EQ(FetchOne("quarantined", "flaky/exp00005").AsInteger(), 3);
  EXPECT_TRUE(FetchOne("state_vector", "flaky/exp00005").is_null());

  // Untouched experiments log the default disposition.
  EXPECT_EQ(FetchOne("attempts", "flaky/exp00000").AsInteger(), 1);
  EXPECT_EQ(FetchOne("tool_status", "flaky/exp00000").AsText(), "ok");
  EXPECT_EQ(FetchOne("quarantined", "flaky/exp00000").AsInteger(), 0);

  // The campaign still reads as completed.
  auto status = db::sql::ExecuteSql(
      database_,
      "SELECT status, experiments_done FROM CampaignData WHERE "
      "campaign_name = 'flaky'");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->rows[0][0].AsText(), "completed");
  EXPECT_EQ(status->rows[0][1].AsInteger(), 12);
}

TEST_F(SupervisedCampaignTest, RetriedResultsMatchAFaultFreeRun) {
  // The same campaign with and without scripted faults: every
  // *surviving* experiment's data and state vector are byte-identical.
  const CampaignConfig config = MakeConfig("ident");
  ASSERT_TRUE(StoreCampaign(database_, config).ok());
  auto script = std::make_shared<FlakyScript>();
  script->faults[{2, 1}] = FlakyFault::kIo;
  script->faults[{7, 1}] = FlakyFault::kTargetFault;
  CampaignRunner flaky_runner(&database_, &target_);
  flaky_runner.set_target_factory(FlakyFactory(script));
  ASSERT_TRUE(flaky_runner.Run("ident").ok());

  db::Database clean_db;
  ASSERT_TRUE(CreateGoofiSchema(clean_db).ok());
  target::ThorRdTarget clean_target;
  auto workload = target::GetBuiltinWorkload("fib");
  ASSERT_TRUE(workload.ok());
  ASSERT_TRUE(clean_target.SetWorkload(*workload).ok());
  ASSERT_TRUE(
      RegisterTargetSystem(clean_db, clean_target, "card0", "").ok());
  CampaignConfig clean_config = config;
  ASSERT_TRUE(StoreCampaign(clean_db, clean_config).ok());
  CampaignRunner clean_runner(&clean_db, &clean_target);
  ASSERT_TRUE(clean_runner.Run("ident").ok());

  for (const std::size_t index : {2u, 7u}) {
    const std::string name = ExperimentName("ident", index);
    const std::string query =
        "SELECT experiment_data, state_vector FROM LoggedSystemState WHERE "
        "experiment_name = '" +
        name + "'";
    auto flaky_row = db::sql::ExecuteSql(database_, query);
    auto clean_row = db::sql::ExecuteSql(clean_db, query);
    ASSERT_TRUE(flaky_row.ok());
    ASSERT_TRUE(clean_row.ok());
    EXPECT_EQ(flaky_row->rows[0][0].AsText(), clean_row->rows[0][0].AsText())
        << name;
    EXPECT_EQ(flaky_row->rows[0][1].AsText(), clean_row->rows[0][1].AsText())
        << name;
  }
}

TEST_F(SupervisedCampaignTest, AnalysisSkipsAbandonedExperiments) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("skipped")).ok());
  auto script = std::make_shared<FlakyScript>();
  script->always[4] = FlakyFault::kTargetFault;
  CampaignRunner runner(&database_, &target_);
  runner.set_target_factory(FlakyFactory(script));
  ASSERT_TRUE(runner.Run("skipped").ok());

  // The abandoned experiment is counted as tool-incomplete and excluded
  // from the outcome taxonomy: an experiment with no observation is not
  // evidence about the target's error-handling.
  auto analysis = AnalyzeCampaign(database_, "skipped");
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->tool_incomplete, 1u);
  EXPECT_EQ(analysis->total, 11u);
  const std::string report = FormatAnalysisReport(*analysis);
  EXPECT_NE(report.find("Tool-incomplete"), std::string::npos);
}

TEST_F(SupervisedCampaignTest, DetailReRunIsFailSoft) {
  // Satellite: a detail re-run that hits tool-level failures retries
  // like any experiment, and one the tool cannot complete still logs
  // its disposition instead of erroring out of the investigation.
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("forensic", 5)).ok());
  auto script = std::make_shared<FlakyScript>();
  // Campaign runs consume attempt 1 of each experiment; the re-runs
  // below start at attempt 2.
  script->faults[{2, 2}] = FlakyFault::kIo;           // retried re-run
  script->faults[{3, 2}] = FlakyFault::kTargetFault;  // abandoned re-run
  script->faults[{3, 3}] = FlakyFault::kTargetFault;
  script->faults[{3, 4}] = FlakyFault::kTargetFault;
  const target::TargetFactory factory = FlakyFactory(script);
  auto flaky_serial = factory();
  ASSERT_TRUE(flaky_serial.ok());

  CampaignRunner runner(&database_, flaky_serial->get());
  ASSERT_TRUE(runner.Run("forensic").ok());

  auto retried = runner.ReRunInDetailMode("forensic/exp00002");
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(*retried, "forensic/exp00002/detail0");
  EXPECT_EQ(FetchOne("attempts", *retried).AsInteger(), 2);
  EXPECT_EQ(FetchOne("tool_status", *retried).AsText(), "ok");
  EXPECT_FALSE(FetchOne("state_vector", *retried).is_null());

  auto abandoned = runner.ReRunInDetailMode("forensic/exp00003");
  ASSERT_TRUE(abandoned.ok()) << abandoned.status().ToString();
  EXPECT_EQ(FetchOne("attempts", *abandoned).AsInteger(), 3);
  EXPECT_EQ(FetchOne("tool_status", *abandoned).AsText(), "target_fault");
  EXPECT_TRUE(FetchOne("state_vector", *abandoned).is_null());
}

}  // namespace
}  // namespace goofi::core
