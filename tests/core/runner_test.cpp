#include "core/runner.h"

#include <gtest/gtest.h>

#include <thread>

#include "core/analysis.h"
#include "core/goofi_schema.h"
#include "db/sql/executor.h"
#include "target/thor_rd_target.h"
#include "util/strings.h"

namespace goofi::core {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(CreateGoofiSchema(database_).ok());
    auto workload = target::GetBuiltinWorkload("fib");
    ASSERT_TRUE(workload.ok());
    ASSERT_TRUE(target_.SetWorkload(*workload).ok());
    ASSERT_TRUE(RegisterTargetSystem(database_, target_, "card0", "").ok());
  }

  CampaignConfig MakeConfig(const std::string& name,
                            std::uint32_t experiments = 20) {
    CampaignConfig config;
    config.name = name;
    config.workload = "fib";
    config.num_experiments = experiments;
    config.seed = 11;
    config.location_filters = {"cpu.regs.*"};
    return config;
  }

  std::int64_t CountRows(const std::string& where) {
    auto result = db::sql::ExecuteSql(
        database_, "SELECT COUNT(*) FROM LoggedSystemState WHERE " + where);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->rows[0][0].AsInteger() : -1;
  }

  db::Database database_;
  target::ThorRdTarget target_;
};

TEST_F(RunnerTest, RunsFullCampaignAndLogsEverything) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("c1")).ok());
  CampaignRunner runner(&database_, &target_);
  std::size_t progress_calls = 0;
  std::size_t last_done = 0;
  runner.set_progress_callback([&](const ProgressInfo& info) {
    ++progress_calls;
    last_done = info.experiments_done;
    EXPECT_EQ(info.experiments_total, 20u);
  });
  auto summary = runner.FaultInjectorSCIFI("c1");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->experiments_run, 20u);
  EXPECT_EQ(summary->experiments_stopped_early, 0u);
  EXPECT_GT(summary->reference.instructions, 50u);
  EXPECT_EQ(progress_calls, 20u);
  EXPECT_EQ(last_done, 20u);
  // 20 experiments + 1 reference row.
  EXPECT_EQ(CountRows("campaign_name = 'c1'"), 21);
  EXPECT_EQ(CountRows("experiment_name = 'c1/reference'"), 1);
  // Campaign status updated.
  auto status = db::sql::ExecuteSql(
      database_,
      "SELECT status, experiments_done FROM CampaignData WHERE "
      "campaign_name = 'c1'");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->rows[0][0].AsText(), "completed");
  EXPECT_EQ(status->rows[0][1].AsInteger(), 20);
}

TEST_F(RunnerTest, SameSeedSameExperiments) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("s1", 10)).ok());
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("s2", 10)).ok());
  CampaignRunner runner(&database_, &target_);
  ASSERT_TRUE(runner.Run("s1").ok());
  ASSERT_TRUE(runner.Run("s2").ok());
  // The experiment_data for the i-th experiment differs only in name.
  for (int i = 0; i < 10; ++i) {
    auto fetch = [&](const std::string& campaign) {
      auto result = db::sql::ExecuteSql(
          database_, StrFormat("SELECT experiment_data FROM "
                               "LoggedSystemState WHERE experiment_name = "
                               "'%s/exp%05d'",
                               campaign.c_str(), i));
      EXPECT_TRUE(result.ok());
      std::string data = result->rows[0][0].AsText();
      return data.substr(data.find(';'));  // drop name=...
    };
    EXPECT_EQ(fetch("s1"), fetch("s2")) << i;
  }
}

TEST_F(RunnerTest, TechniqueWrappersEnforceTechnique) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("scifi_c")).ok());
  CampaignConfig swifi = MakeConfig("swifi_c");
  swifi.technique = target::Technique::kSwifiPreRuntime;
  swifi.location_filters = {"mem.*"};
  ASSERT_TRUE(StoreCampaign(database_, swifi).ok());
  CampaignRunner runner(&database_, &target_);
  EXPECT_EQ(runner.FaultInjectorSWIFI("scifi_c").status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(runner.FaultInjectorSCIFI("swifi_c").status().code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_TRUE(runner.FaultInjectorSWIFI("swifi_c").ok());
}

TEST_F(RunnerTest, PreRuntimeSwifiCampaign) {
  CampaignConfig config = MakeConfig("pre", 15);
  config.technique = target::Technique::kSwifiPreRuntime;
  config.location_filters.clear();  // all memory ranges
  ASSERT_TRUE(StoreCampaign(database_, config).ok());
  CampaignRunner runner(&database_, &target_);
  auto summary = runner.Run("pre");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->experiments_run, 15u);
  auto analysis = AnalyzeCampaign(database_, "pre");
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->total, 15u);
}

TEST_F(RunnerTest, RuntimeSwifiCampaign) {
  CampaignConfig config = MakeConfig("rt", 15);
  config.technique = target::Technique::kSwifiRuntime;
  ASSERT_TRUE(StoreCampaign(database_, config).ok());
  CampaignRunner runner(&database_, &target_);
  auto summary = runner.Run("rt");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->experiments_run, 15u);
}

TEST_F(RunnerTest, ControllerStopsEarly) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("stop_me", 50)).ok());
  CampaignRunner runner(&database_, &target_);
  CampaignController controller;
  runner.set_controller(&controller);
  runner.set_progress_callback([&](const ProgressInfo& info) {
    if (info.experiments_done == 10) controller.Stop();
  });
  auto summary = runner.Run("stop_me");
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->experiments_run, 10u);
  EXPECT_EQ(summary->experiments_stopped_early, 40u);
  auto status = db::sql::ExecuteSql(
      database_,
      "SELECT status FROM CampaignData WHERE campaign_name = 'stop_me'");
  EXPECT_EQ(status->rows[0][0].AsText(), "stopped");
}

TEST_F(RunnerTest, PauseAndResumeFromAnotherThread) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("pausable", 30)).ok());
  CampaignRunner runner(&database_, &target_);
  CampaignController controller;
  controller.Pause();  // paused before the first experiment
  runner.set_controller(&controller);
  std::thread resumer([&controller]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    controller.Resume();
  });
  auto summary = runner.Run("pausable");
  resumer.join();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->experiments_run, 30u);
}

TEST_F(RunnerTest, DetailReRunCreatesChildWithParent) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("parented", 5)).ok());
  CampaignRunner runner(&database_, &target_);
  ASSERT_TRUE(runner.Run("parented").ok());

  auto child = runner.ReRunInDetailMode("parented/exp00002");
  ASSERT_TRUE(child.ok()) << child.status().ToString();
  EXPECT_EQ(*child, "parented/exp00002/detail0");
  auto row = db::sql::ExecuteSql(
      database_,
      "SELECT parent_experiment, state_vector FROM LoggedSystemState WHERE "
      "experiment_name = 'parented/exp00002/detail0'");
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row->rows.size(), 1u);
  EXPECT_EQ(row->rows[0][0].AsText(), "parented/exp00002");
  // The detail re-run logged a per-instruction trace.
  auto observation =
      target::Observation::Deserialize(row->rows[0][1].AsText());
  ASSERT_TRUE(observation.ok());
  EXPECT_FALSE(observation->detail_trace.empty());
  // Second re-run gets a fresh child name.
  auto second = runner.ReRunInDetailMode("parented/exp00002");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, "parented/exp00002/detail1");
  // The detail child reproduces the parent's outcome: same experiment
  // data modulo the name.
  auto parent_data = db::sql::ExecuteSql(
      database_,
      "SELECT experiment_data FROM LoggedSystemState WHERE experiment_name "
      "= 'parented/exp00002'");
  auto child_data = db::sql::ExecuteSql(
      database_,
      "SELECT experiment_data FROM LoggedSystemState WHERE experiment_name "
      "= 'parented/exp00002/detail0'");
  const std::string parent_tail =
      parent_data->rows[0][0].AsText().substr(
          parent_data->rows[0][0].AsText().find(';'));
  const std::string child_tail =
      child_data->rows[0][0].AsText().substr(
          child_data->rows[0][0].AsText().find(';'));
  EXPECT_EQ(parent_tail, child_tail);
}

TEST_F(RunnerTest, ReRunRejectsReferenceAndUnknown) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("rr", 3)).ok());
  CampaignRunner runner(&database_, &target_);
  ASSERT_TRUE(runner.Run("rr").ok());
  EXPECT_EQ(runner.ReRunInDetailMode("rr/reference").status().code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(runner.ReRunInDetailMode("ghost").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(RunnerTest, PreinjectionAnalysisFiltersDeadPoints) {
  // Plain campaign vs pre-injection campaign on the same seed: the
  // pre-injection one must produce strictly fewer overwritten/no-effect
  // outcomes among register faults.
  CampaignConfig plain = MakeConfig("plain", 60);
  ASSERT_TRUE(StoreCampaign(database_, plain).ok());
  CampaignConfig filtered = MakeConfig("filtered", 60);
  filtered.use_preinjection_analysis = true;
  ASSERT_TRUE(StoreCampaign(database_, filtered).ok());

  CampaignRunner runner(&database_, &target_);
  auto plain_summary = runner.Run("plain");
  ASSERT_TRUE(plain_summary.ok());
  auto filtered_summary = runner.Run("filtered");
  ASSERT_TRUE(filtered_summary.ok()) << filtered_summary.status().ToString();
  EXPECT_GT(filtered_summary->preinjection_resamples, 0u);
  EXPECT_GT(filtered_summary->register_live_fraction, 0.0);
  EXPECT_LT(filtered_summary->register_live_fraction, 0.5);

  auto plain_analysis = AnalyzeCampaign(database_, "plain");
  auto filtered_analysis = AnalyzeCampaign(database_, "filtered");
  ASSERT_TRUE(plain_analysis.ok());
  ASSERT_TRUE(filtered_analysis.ok());
  const std::size_t plain_noneffect =
      plain_analysis->overwritten + plain_analysis->not_injected;
  const std::size_t filtered_noneffect =
      filtered_analysis->overwritten + filtered_analysis->not_injected;
  EXPECT_LT(filtered_noneffect, plain_noneffect);
  const std::size_t filtered_effective =
      filtered_analysis->detected + filtered_analysis->escaped +
      filtered_analysis->latent;
  const std::size_t plain_effective =
      plain_analysis->detected + plain_analysis->escaped +
      plain_analysis->latent;
  EXPECT_GT(filtered_effective, plain_effective);
}

TEST_F(RunnerTest, MissingCampaignFails) {
  CampaignRunner runner(&database_, &target_);
  EXPECT_EQ(runner.Run("ghost").status().code(), ErrorCode::kNotFound);
}

TEST_F(RunnerTest, TargetMismatchFails) {
  CampaignConfig config = MakeConfig("mismatch");
  config.target = "other_board";
  ASSERT_TRUE(db::sql::ExecuteSql(database_,
                                  "INSERT INTO TargetSystemData VALUES "
                                  "('other_board', 'c', '')").ok());
  ASSERT_TRUE(StoreCampaign(database_, config).ok());
  CampaignRunner runner(&database_, &target_);
  EXPECT_EQ(runner.Run("mismatch").status().code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(RunnerTest, TriggerKindsProduceRunnableCampaigns) {
  CampaignRunner runner(&database_, &target_);
  for (const std::string trigger :
       {"instret", "rtc", "branch", "call", "pc", "data_read",
        "data_write"}) {
    CampaignConfig config = MakeConfig("trig_" + trigger, 8);
    config.trigger_kind = trigger;
    ASSERT_TRUE(StoreCampaign(database_, config).ok());
    auto summary = runner.Run("trig_" + trigger);
    ASSERT_TRUE(summary.ok()) << trigger << ": "
                              << summary.status().ToString();
    EXPECT_EQ(summary->experiments_run, 8u) << trigger;
  }
}

}  // namespace
}  // namespace goofi::core
