#include "core/analysis.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace goofi::core {
namespace {

target::Observation Golden() {
  target::Observation reference;
  reference.stop_reason = sim::StopReason::kHalted;
  reference.instructions = 1000;
  reference.chain_images["internal"] = BitVector::FromBitString("00110011");
  reference.output_region = {1, 2, 3, 4};
  reference.emitted = {42};
  reference.env_outputs = {10, 20, 30};
  return reference;
}

TEST(ClassifyTest, DetectedByMechanism) {
  target::Observation experiment = Golden();
  experiment.stop_reason = sim::StopReason::kEdm;
  sim::EdmEvent edm;
  edm.type = sim::EdmType::kIcacheParity;
  experiment.edm = edm;
  experiment.fault_was_injected = true;
  const Classification result = Classify(Golden(), experiment);
  EXPECT_EQ(result.outcome, OutcomeClass::kDetected);
  EXPECT_EQ(result.detected_by, sim::EdmType::kIcacheParity);
}

TEST(ClassifyTest, TimelinessViolation) {
  target::Observation experiment = Golden();
  experiment.stop_reason = sim::StopReason::kBudgetExhausted;
  experiment.fault_was_injected = true;
  const Classification result = Classify(Golden(), experiment);
  EXPECT_EQ(result.outcome, OutcomeClass::kEscaped);
  EXPECT_EQ(result.escape_kind, EscapeKind::kTimelinessViolation);
}

TEST(ClassifyTest, WrongOutputEscapes) {
  target::Observation experiment = Golden();
  experiment.fault_was_injected = true;
  experiment.output_region = {1, 2, 3, 99};
  const Classification result = Classify(Golden(), experiment);
  EXPECT_EQ(result.outcome, OutcomeClass::kEscaped);
  EXPECT_EQ(result.escape_kind, EscapeKind::kWrongOutput);
}

TEST(ClassifyTest, WrongEmitStreamEscapes) {
  target::Observation experiment = Golden();
  experiment.fault_was_injected = true;
  experiment.emitted = {43};
  const Classification result = Classify(Golden(), experiment);
  EXPECT_EQ(result.outcome, OutcomeClass::kEscaped);
  EXPECT_EQ(result.escape_kind, EscapeKind::kWrongOutput);
}

TEST(ClassifyTest, ActuatorDivergenceIsFailSilenceViolation) {
  target::Observation experiment = Golden();
  experiment.fault_was_injected = true;
  experiment.env_outputs = {10, 21, 30};
  const Classification result = Classify(Golden(), experiment);
  EXPECT_EQ(result.outcome, OutcomeClass::kEscaped);
  EXPECT_EQ(result.escape_kind, EscapeKind::kFailSilenceViolation);
}

TEST(ClassifyTest, LatentWhenStateDiffersButOutputsMatch) {
  target::Observation experiment = Golden();
  experiment.fault_was_injected = true;
  experiment.chain_images["internal"] =
      BitVector::FromBitString("00110111");  // one flipped bit remains
  const Classification result = Classify(Golden(), experiment);
  EXPECT_EQ(result.outcome, OutcomeClass::kLatent);
  EXPECT_EQ(result.state_diff_bits, 1u);
}

TEST(ClassifyTest, OverwrittenWhenNothingDiffers) {
  target::Observation experiment = Golden();
  experiment.fault_was_injected = true;
  const Classification result = Classify(Golden(), experiment);
  EXPECT_EQ(result.outcome, OutcomeClass::kOverwritten);
  EXPECT_EQ(result.state_diff_bits, 0u);
}

TEST(ClassifyTest, NotInjectedSeparatedFromOverwritten) {
  target::Observation experiment = Golden();
  experiment.fault_was_injected = false;
  EXPECT_EQ(Classify(Golden(), experiment).outcome,
            OutcomeClass::kNotInjected);
}

TEST(ClassifyTest, DetectionWinsOverStateDiff) {
  target::Observation experiment = Golden();
  experiment.stop_reason = sim::StopReason::kEdm;
  sim::EdmEvent edm;
  edm.type = sim::EdmType::kWatchdog;
  experiment.edm = edm;
  experiment.output_region = {9, 9, 9, 9};
  EXPECT_EQ(Classify(Golden(), experiment).outcome,
            OutcomeClass::kDetected);
}

TEST(WilsonIntervalTest, KnownValues) {
  const ConfidenceInterval all = WilsonInterval95(10, 10);
  EXPECT_DOUBLE_EQ(all.estimate, 1.0);
  EXPECT_GT(all.low, 0.69);   // Wilson lower bound for 10/10 ~ 0.722
  EXPECT_LT(all.low, 0.73);
  EXPECT_DOUBLE_EQ(all.high, 1.0);

  const ConfidenceInterval half = WilsonInterval95(50, 100);
  EXPECT_DOUBLE_EQ(half.estimate, 0.5);
  EXPECT_NEAR(half.low, 0.404, 0.01);
  EXPECT_NEAR(half.high, 0.596, 0.01);

  const ConfidenceInterval none = WilsonInterval95(0, 0);
  EXPECT_DOUBLE_EQ(none.estimate, 0.0);
  EXPECT_DOUBLE_EQ(none.high, 0.0);
}

TEST(WilsonIntervalTest, IntervalShrinksWithSampleSize) {
  const ConfidenceInterval small = WilsonInterval95(5, 10);
  const ConfidenceInterval large = WilsonInterval95(500, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(LocationCategoryTest, Categorization) {
  EXPECT_EQ(LocationCategory("cpu.regs.r3"), "reg");
  EXPECT_EQ(LocationCategory("cpu.pc"), "control");
  EXPECT_EQ(LocationCategory("cpu.ir"), "control");
  EXPECT_EQ(LocationCategory("icache.line2.tag"), "icache");
  EXPECT_EQ(LocationCategory("dcache.line0.parity1"), "dcache");
  EXPECT_EQ(LocationCategory("pins.data_bus"), "pin");
  EXPECT_EQ(LocationCategory("mem@0x00010004"), "memory");
  EXPECT_EQ(LocationCategory("weird"), "?");
}

TEST(FormatCsvTest, OneRowPerExperimentWithHeader) {
  CampaignAnalysis analysis;
  ExperimentResult detected;
  detected.name = "c/exp00000";
  detected.location = "dcache.line3.data1";
  detected.category = "dcache";
  detected.injection_time = 1234;
  detected.classification.outcome = OutcomeClass::kDetected;
  detected.classification.detected_by = sim::EdmType::kDcacheParity;
  analysis.experiments.push_back(detected);
  ExperimentResult escaped;
  escaped.name = "c/exp00001";
  escaped.location = "cpu.regs.r3";
  escaped.category = "reg";
  escaped.classification.outcome = OutcomeClass::kEscaped;
  escaped.classification.escape_kind = EscapeKind::kWrongOutput;
  escaped.classification.state_diff_bits = 7;
  analysis.experiments.push_back(escaped);

  const std::string csv = FormatAnalysisCsv(analysis);
  const auto lines = goofi::SplitString(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "experiment,location,category,injection_time,outcome,"
            "detected_by,escape_kind,state_diff_bits");
  EXPECT_EQ(lines[1],
            "c/exp00000,dcache.line3.data1,dcache,1234,detected,"
            "dcache_parity,,0");
  EXPECT_EQ(lines[2],
            "c/exp00001,cpu.regs.r3,reg,0,escaped,,wrong_output,7");
}

TEST(TimeHistogramTest, BucketsOutcomesByInjectionTime) {
  CampaignAnalysis analysis;
  auto add = [&](std::uint64_t time, OutcomeClass outcome) {
    ExperimentResult experiment;
    experiment.injection_time = time;
    experiment.classification.outcome = outcome;
    analysis.experiments.push_back(std::move(experiment));
  };
  add(10, OutcomeClass::kDetected);
  add(20, OutcomeClass::kOverwritten);
  add(55, OutcomeClass::kEscaped);
  add(99, OutcomeClass::kLatent);
  add(100, OutcomeClass::kDetected);
  add(0, OutcomeClass::kDetected);  // unknown time: excluded

  const TimeHistogram histogram = BuildTimeHistogram(analysis, 2);
  ASSERT_EQ(histogram.buckets.size(), 2u);
  EXPECT_EQ(histogram.covered_experiments, 5u);
  // width = (100 + 2) / 2 = 51 -> [0,50], [51,101].
  EXPECT_EQ(histogram.buckets[0].detected, 1u);
  EXPECT_EQ(histogram.buckets[0].non_effective, 1u);
  EXPECT_EQ(histogram.buckets[0].escaped, 0u);
  EXPECT_EQ(histogram.buckets[1].escaped, 1u);
  EXPECT_EQ(histogram.buckets[1].latent, 1u);
  EXPECT_EQ(histogram.buckets[1].detected, 1u);

  const std::string text = FormatTimeHistogram(histogram);
  EXPECT_NE(text.find("5 experiments"), std::string::npos);
  EXPECT_NE(text.find("detect"), std::string::npos);
}

TEST(TimeHistogramTest, EmptyAndDegenerateInputs) {
  CampaignAnalysis analysis;
  EXPECT_TRUE(BuildTimeHistogram(analysis, 4).buckets.empty());
  EXPECT_TRUE(BuildTimeHistogram(analysis, 0).buckets.empty());
  ExperimentResult experiment;
  experiment.injection_time = 0;
  analysis.experiments.push_back(experiment);
  EXPECT_TRUE(BuildTimeHistogram(analysis, 4).buckets.empty());
}

TEST(FormatReportTest, ContainsTaxonomySections) {
  CampaignAnalysis analysis;
  analysis.campaign = "demo";
  analysis.total = 10;
  analysis.detected = 4;
  analysis.escaped = 1;
  analysis.latent = 2;
  analysis.overwritten = 3;
  analysis.detected_by_mechanism["dcache_parity"] = 4;
  analysis.fail_silence = 1;
  analysis.detection_coverage = WilsonInterval95(4, 5);
  analysis.effectiveness = WilsonInterval95(5, 10);
  const std::string report = FormatAnalysisReport(analysis);
  EXPECT_NE(report.find("Effective errors"), std::string::npos);
  EXPECT_NE(report.find("Detected errors:     4"), std::string::npos);
  EXPECT_NE(report.find("dcache_parity"), std::string::npos);
  EXPECT_NE(report.find("Escaped errors:      1"), std::string::npos);
  EXPECT_NE(report.find("Latent errors:       2"), std::string::npos);
  EXPECT_NE(report.find("Overwritten errors:  3"), std::string::npos);
  EXPECT_NE(report.find("Detection coverage"), std::string::npos);
}

}  // namespace
}  // namespace goofi::core
