#include "core/propagation.h"

#include <gtest/gtest.h>

#include "target/thor_rd_target.h"

namespace goofi::core {
namespace {

// A miniature chain over two fake "registers" for pure unit tests.
class FakeChainTest : public ::testing::Test {
 protected:
  FakeChainTest() : chain_("internal") {
    for (int i = 0; i < 2; ++i) {
      sim::ScanElement element;
      element.name = "reg" + std::to_string(i);
      element.width = 8;
      element.category = "reg";
      element.get = [](const sim::Cpu&) -> std::uint64_t { return 0; };
      element.set = [](sim::Cpu&, std::uint64_t) {};
      chain_.AddElement(std::move(element));
    }
  }

  static BitVector Image(std::uint8_t reg0, std::uint8_t reg1) {
    BitVector image(16);
    image.SetField(0, 8, reg0);
    image.SetField(8, 8, reg1);
    return image;
  }

  sim::ScanChain chain_;
};

TEST_F(FakeChainTest, NoDivergenceOnIdenticalTraces) {
  std::vector<std::pair<std::uint64_t, BitVector>> trace = {
      {0, Image(1, 2)}, {1, Image(3, 4)}};
  auto report = AnalyzeErrorPropagation(chain_, trace, trace);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->diverged);
  EXPECT_TRUE(report->elements.empty());
  EXPECT_EQ(report->compared_steps, 2u);
}

TEST_F(FakeChainTest, TracksFirstDivergencePerElement) {
  std::vector<std::pair<std::uint64_t, BitVector>> reference = {
      {0, Image(1, 2)}, {1, Image(3, 4)}, {2, Image(5, 6)}};
  std::vector<std::pair<std::uint64_t, BitVector>> faulty = {
      {0, Image(1, 2)},
      {1, Image(3 ^ 0x10, 4)},          // reg0 corrupted at t=1
      {2, Image(5 ^ 0x30, 6 ^ 0x01)}};  // spreads to reg1 at t=2
  auto report = AnalyzeErrorPropagation(chain_, reference, faulty);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->diverged);
  EXPECT_EQ(report->first_divergence_time, 1u);
  ASSERT_EQ(report->elements.size(), 2u);
  EXPECT_EQ(report->elements[0].name, "reg0");
  EXPECT_EQ(report->elements[0].first_time, 1u);
  EXPECT_EQ(report->elements[0].peak_diff_bits, 2u);
  EXPECT_TRUE(report->elements[0].still_corrupted_at_end);
  EXPECT_EQ(report->elements[1].name, "reg1");
  EXPECT_EQ(report->elements[1].first_time, 2u);
  // Timeline: 0, 1, 3 corrupted bits.
  ASSERT_EQ(report->timeline.size(), 3u);
  EXPECT_EQ(report->timeline[0].second, 0u);
  EXPECT_EQ(report->timeline[1].second, 1u);
  EXPECT_EQ(report->timeline[2].second, 3u);
}

TEST_F(FakeChainTest, CorruptionCanHeal) {
  std::vector<std::pair<std::uint64_t, BitVector>> reference = {
      {0, Image(1, 2)}, {1, Image(3, 4)}, {2, Image(5, 6)}};
  std::vector<std::pair<std::uint64_t, BitVector>> faulty = {
      {0, Image(1, 2)}, {1, Image(7, 4)}, {2, Image(5, 6)}};  // healed
  auto report = AnalyzeErrorPropagation(chain_, reference, faulty);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->diverged);
  ASSERT_EQ(report->elements.size(), 1u);
  EXPECT_FALSE(report->elements[0].still_corrupted_at_end);
  EXPECT_EQ(report->timeline.back().second, 0u);
}

TEST_F(FakeChainTest, LengthDifferenceIsDivergence) {
  std::vector<std::pair<std::uint64_t, BitVector>> reference = {
      {0, Image(1, 2)}, {1, Image(3, 4)}};
  std::vector<std::pair<std::uint64_t, BitVector>> faulty = {
      {0, Image(1, 2)}};
  auto report = AnalyzeErrorPropagation(chain_, reference, faulty);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->diverged);
  EXPECT_TRUE(report->lengths_differ);
  EXPECT_EQ(report->compared_steps, 1u);
}

TEST_F(FakeChainTest, RejectsEmptyOrMismatchedTraces) {
  std::vector<std::pair<std::uint64_t, BitVector>> empty;
  std::vector<std::pair<std::uint64_t, BitVector>> good = {{0, Image(0, 0)}};
  EXPECT_FALSE(AnalyzeErrorPropagation(chain_, empty, good).ok());
  EXPECT_FALSE(AnalyzeErrorPropagation(chain_, good, empty).ok());
  std::vector<std::pair<std::uint64_t, BitVector>> narrow = {
      {0, BitVector(8)}};
  EXPECT_FALSE(AnalyzeErrorPropagation(chain_, good, narrow).ok());
}

TEST_F(FakeChainTest, FormatSummarizes) {
  std::vector<std::pair<std::uint64_t, BitVector>> reference = {
      {0, Image(1, 2)}, {1, Image(3, 4)}};
  std::vector<std::pair<std::uint64_t, BitVector>> faulty = {
      {0, Image(1, 2)}, {1, Image(0xFF, 4)}};
  auto report = AnalyzeErrorPropagation(chain_, reference, faulty);
  ASSERT_TRUE(report.ok());
  const std::string text = report->Format();
  EXPECT_NE(text.find("first divergence at instruction 1"),
            std::string::npos);
  EXPECT_NE(text.find("reg0"), std::string::npos);
  EXPECT_NE(text.find("peak corruption"), std::string::npos);
}

TEST(PropagationEndToEndTest, RealTargetDetailTraces) {
  target::ThorRdTarget target;
  auto workload = target::GetBuiltinWorkload("fib");
  ASSERT_TRUE(workload.ok());
  ASSERT_TRUE(target.SetWorkload(*workload).ok());
  target.set_logging_mode(target::LoggingMode::kDetail);

  target::ExperimentSpec reference_spec;
  reference_spec.name = "ref";
  target.set_experiment(reference_spec);
  ASSERT_TRUE(target.MakeReferenceRun().ok());
  const target::Observation golden = target.TakeObservation();

  target::ExperimentSpec spec;
  spec.technique = target::Technique::kScifi;
  spec.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  spec.trigger.count = 10;
  spec.targets = {{"cpu.regs.r2", 3}};  // corrupt the accumulator
  target.set_experiment(spec);
  ASSERT_TRUE(target.RunExperiment().ok());
  const target::Observation faulty = target.TakeObservation();

  const sim::ScanChain* internal =
      target.test_card().chains().FindChain("internal");
  auto report = core::AnalyzeErrorPropagation(*internal, golden, faulty);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->diverged);
  EXPECT_EQ(report->first_divergence_time, 10u);
  // The corruption starts in r2 and spreads into r1/r4 via the fib
  // recurrence.
  ASSERT_FALSE(report->elements.empty());
  EXPECT_EQ(report->elements[0].name, "cpu.regs.r2");
  bool reached_other_reg = false;
  for (const auto& element : report->elements) {
    if (element.name == "cpu.regs.r1" || element.name == "cpu.regs.r4") {
      reached_other_reg = true;
    }
  }
  EXPECT_TRUE(reached_other_reg);
}

}  // namespace
}  // namespace goofi::core
