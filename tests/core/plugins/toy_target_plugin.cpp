// A GOOFI++ target plugin: a second (toy) target system compiled as a
// shared library and loaded at run time with core/plugin.h.
//
// The target is a 3-register accumulator machine whose "workload" sums
// 1..50 into acc0 — just enough substance for the SCIFI algorithm to
// produce meaningful detected/overwritten outcomes. Its single EDM is a
// range check on the accumulator.
#include "core/plugin.h"
#include "target/framework_target.h"

namespace {

using goofi::BitVector;
using goofi::Status;
using goofi::target::ExperimentSpec;
using goofi::target::FaultTarget;
using goofi::target::FrameworkTarget;

class ToyTarget : public FrameworkTarget {
 public:
  const std::string& target_name() const override {
    static const std::string kName = "toy_accumulator";
    return kName;
  }

  std::vector<LocationInfo> ListLocations() const override {
    std::vector<LocationInfo> locations;
    for (int i = 0; i < 3; ++i) {
      LocationInfo info;
      info.kind = LocationInfo::Kind::kScanElement;
      info.name = "acc" + std::to_string(i);
      info.chain = "internal";
      info.width_bits = 32;
      info.writable = true;
      info.category = "reg";
      locations.push_back(std::move(info));
    }
    return locations;
  }

  Status initTestCard() override {
    for (auto& acc : acc_) acc = 0;
    time_ = 0;
    detected_ = false;
    return Status::Ok();
  }
  Status loadWorkload() override { return Status::Ok(); }
  Status writeMemory() override { return Status::Ok(); }
  Status runWorkload() override { return Status::Ok(); }

  Status waitForBreakpoint() override {
    RunUntil(spec_.trigger.count);
    observation_.stop_reason = time_ < kDuration
                                   ? goofi::sim::StopReason::kBreakpoint
                                   : goofi::sim::StopReason::kHalted;
    return Status::Ok();
  }

  Status readScanChain() override {
    BitVector image(3 * 32);
    for (int i = 0; i < 3; ++i) image.SetField(i * 32u, 32, acc_[i]);
    observation_.chain_images["internal"] = image;
    snapshot_ = std::move(image);
    return Status::Ok();
  }

  Status injectFault() override {
    for (const FaultTarget& target : spec_.targets) {
      if (target.location.size() != 4 ||
          target.location.compare(0, 3, "acc") != 0) {
        return goofi::NotFoundError("no location " + target.location);
      }
      const unsigned index =
          static_cast<unsigned>(target.location[3] - '0');
      if (index >= 3 || target.bit >= 32) {
        return goofi::OutOfRangeError("bad toy location");
      }
      snapshot_.Flip(index * 32u + target.bit);
    }
    observation_.fault_was_injected = true;
    return Status::Ok();
  }

  Status writeScanChain() override {
    for (int i = 0; i < 3; ++i) {
      acc_[i] = static_cast<std::uint32_t>(snapshot_.GetField(i * 32u, 32));
    }
    return Status::Ok();
  }

  Status waitForTermination() override {
    RunUntil(kDuration);
    observation_.stop_reason = detected_
                                   ? goofi::sim::StopReason::kEdm
                                   : goofi::sim::StopReason::kHalted;
    if (detected_) {
      goofi::sim::EdmEvent edm;
      edm.type = goofi::sim::EdmType::kAssertion;
      edm.time = time_;
      observation_.edm = edm;
    }
    observation_.instructions = time_;
    return Status::Ok();
  }

  Status readMemory() override {
    observation_.emitted = {acc_[0]};
    return Status::Ok();
  }

 private:
  static constexpr std::uint64_t kDuration = 50;
  void RunUntil(std::uint64_t until) {
    while (time_ < std::min(until, kDuration) && !detected_) {
      ++time_;
      acc_[0] += static_cast<std::uint32_t>(time_);
      acc_[1] = acc_[0] >> 1;
      // EDM: the accumulator can never legally exceed 1275 (= sum 1..50).
      if (acc_[0] > 1275) detected_ = true;
    }
  }

  std::uint32_t acc_[3] = {0, 0, 0};
  std::uint64_t time_ = 0;
  bool detected_ = false;
  BitVector snapshot_;
};

}  // namespace

extern "C" const char* goofi_plugin_abi() {
  return goofi::core::kGoofiPluginAbi;
}

extern "C" void goofi_register_targets(
    goofi::core::TargetRegistry* registry) {
  (void)registry->Register("toy_accumulator", []() {
    return std::unique_ptr<goofi::target::TargetSystemInterface>(
        new ToyTarget());
  });
}
