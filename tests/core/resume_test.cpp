// Resume semantics: a stopped campaign continues deterministically and
// ends up byte-identical (modulo timing-free state) to an uninterrupted
// run with the same seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "core/goofi.h"

namespace goofi::core {
namespace {

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(CreateGoofiSchema(database_).ok());
    auto workload = target::GetBuiltinWorkload("fib");
    ASSERT_TRUE(workload.ok());
    ASSERT_TRUE(target_.SetWorkload(*workload).ok());
    ASSERT_TRUE(RegisterTargetSystem(database_, target_, "card", "").ok());
  }

  CampaignConfig MakeConfig(const std::string& name) {
    CampaignConfig config;
    config.name = name;
    config.workload = "fib";
    config.num_experiments = 30;
    config.seed = 17;
    config.location_filters = {"cpu.regs.*"};
    return config;
  }

  std::vector<std::string> ExperimentData(const std::string& campaign) {
    return ExperimentDataIn(database_, campaign);
  }

  static std::vector<std::string> ExperimentDataIn(
      db::Database& database, const std::string& campaign) {
    std::vector<std::string> data;
    const db::Table* logged = database.FindTable(kLoggedSystemStateTable);
    for (const db::Row& row : logged->rows()) {
      if (row[2].AsText() != campaign) continue;
      if (row[3].AsText() == "reference") continue;
      std::string entry = row[3].AsText();
      data.push_back(entry.substr(entry.find(';')));  // drop the name
    }
    std::sort(data.begin(), data.end());
    return data;
  }

  db::Database database_;
  target::ThorRdTarget target_;
};

TEST_F(ResumeTest, StoppedCampaignResumesToCompletion) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("r1")).ok());
  CampaignRunner runner(&database_, &target_);
  CampaignController controller;
  runner.set_controller(&controller);
  runner.set_progress_callback([&](const ProgressInfo& info) {
    if (info.experiments_done == 12) controller.Stop();
  });
  auto stopped = runner.Run("r1");
  ASSERT_TRUE(stopped.ok());
  EXPECT_EQ(stopped->experiments_run, 12u);

  // Resume with a fresh runner and no controller.
  CampaignRunner resumer(&database_, &target_);
  auto resumed = resumer.Resume("r1");
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->experiments_run, 18u);

  // The completed campaign matches an uninterrupted run with the same
  // seed, experiment for experiment.
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("r2")).ok());
  ASSERT_TRUE(CampaignRunner(&database_, &target_).Run("r2").ok());
  EXPECT_EQ(ExperimentData("r1"), ExperimentData("r2"));

  auto status = db::sql::ExecuteSql(
      database_,
      "SELECT status, experiments_done FROM CampaignData WHERE "
      "campaign_name = 'r1'");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->rows[0][0].AsText(), "completed");
  EXPECT_EQ(status->rows[0][1].AsInteger(), 30);
}

TEST_F(ResumeTest, ResumingCompletedCampaignIsNoOp) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("done")).ok());
  CampaignRunner runner(&database_, &target_);
  ASSERT_TRUE(runner.Run("done").ok());
  auto again = runner.Resume("done");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->experiments_run, 0u);
  auto count = db::sql::ExecuteSql(
      database_,
      "SELECT COUNT(*) FROM LoggedSystemState WHERE campaign_name = "
      "'done'");
  EXPECT_EQ(count->rows[0][0].AsInteger(), 31);  // no duplicates
}

TEST_F(ResumeTest, RunRefusesToRerunCompletedCampaign) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("once")).ok());
  CampaignRunner runner(&database_, &target_);
  ASSERT_TRUE(runner.Run("once").ok());
  EXPECT_EQ(runner.Run("once").status().code(), ErrorCode::kAlreadyExists);
}

TEST_F(ResumeTest, CrashRecoveryViaCheckpointDirectory) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goofi_checkpoint_test").string();
  fs::remove_all(dir);

  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("ckpt")).ok());
  CampaignRunner runner(&database_, &target_);
  runner.set_checkpoint(dir, /*every_n=*/5);
  CampaignController controller;
  runner.set_controller(&controller);
  runner.set_progress_callback([&](const ProgressInfo& info) {
    // "Crash" right after the third checkpoint.
    if (info.experiments_done == 15) controller.Stop();
  });
  ASSERT_TRUE(runner.Run("ckpt").ok());

  // Recovery: reload the world from the checkpoint and resume there.
  auto recovered = db::Database::LoadFromDirectory(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  target::ThorRdTarget fresh_target;
  auto workload = target::GetBuiltinWorkload("fib");
  ASSERT_TRUE(fresh_target.SetWorkload(*workload).ok());
  CampaignRunner resumer(&(*recovered), &fresh_target);
  auto summary = resumer.Resume("ckpt");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->experiments_run, 15u);  // 15 survived the checkpoint

  auto analysis = AnalyzeCampaign(*recovered, "ckpt");
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->total, 30u);
  fs::remove_all(dir);
}

TEST_F(ResumeTest, ParallelCrashAfterCheckpointResumesWithOtherWorkerCount) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goofi_parallel_checkpoint_test").string();
  fs::remove_all(dir);

  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("pckpt")).ok());
  auto factory = target::BuiltinTargetFactory("thor_rd");
  ASSERT_TRUE(factory.ok());
  ParallelCampaignRunner runner(&database_, *factory, 4);
  runner.set_checkpoint(dir, /*every_n=*/5);
  CampaignController controller;
  runner.set_controller(&controller);
  runner.set_progress_callback([&](ProgressInfo info) {
    // "Crash" mid-campaign: stop the fleet right after a checkpoint.
    if (info.experiments_done == 15) controller.Stop();
  });
  ASSERT_TRUE(runner.Run("pckpt").ok());

  // Recovery: reload the checkpointed world (which holds some multiple
  // of 5 experiments — in-flight claims may land after the stop) and
  // resume the sharded plan with a *different* worker count.
  auto recovered = db::Database::LoadFromDirectory(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ParallelCampaignRunner resumer(&(*recovered), *factory, 2);
  auto summary = resumer.Resume("pckpt");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->experiments_stopped_early, 0u);

  // Completion with no duplicates: exactly 30 experiments + reference.
  auto count = db::sql::ExecuteSql(
      *recovered,
      "SELECT COUNT(*) FROM LoggedSystemState WHERE campaign_name = "
      "'pckpt'");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0].AsInteger(), 31);
  auto status = db::sql::ExecuteSql(
      *recovered,
      "SELECT status, experiments_done FROM CampaignData WHERE "
      "campaign_name = 'pckpt'");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->rows[0][0].AsText(), "completed");
  EXPECT_EQ(status->rows[0][1].AsInteger(), 30);

  // And the recovered campaign holds the same experiments as a serial
  // uninterrupted run of the same configuration.
  CampaignConfig reference_config = MakeConfig("pserial");
  ASSERT_TRUE(StoreCampaign(*recovered, reference_config).ok());
  ASSERT_TRUE(CampaignRunner(&(*recovered), &target_).Run("pserial").ok());
  EXPECT_EQ(ExperimentDataIn(*recovered, "pckpt"),
            ExperimentDataIn(*recovered, "pserial"));
  fs::remove_all(dir);
}

TEST_F(ResumeTest, ResumeOfNeverRunCampaignRunsEverything) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("fresh")).ok());
  CampaignRunner runner(&database_, &target_);
  auto summary = runner.Resume("fresh");
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->experiments_run, 30u);
}

}  // namespace
}  // namespace goofi::core
