#include "core/campaign.h"

#include <gtest/gtest.h>

#include "core/goofi_schema.h"
#include "core/location.h"
#include "db/sql/executor.h"
#include "target/thor_rd_target.h"

namespace goofi::core {
namespace {

constexpr const char* kConfigText = R"(
[campaign]
name = regs_scifi
target = thor_rd
technique = scifi
workload = isort
experiments = 250
seed = 77
fault_model = transient
multiplicity = 2
location[] = cpu.regs.*
location[] = cpu.pc
time_window_lo = 10
time_window_hi = 900
trigger = instret
max_instructions = 50000
logging = detail
preinjection = yes
)";

TEST(CampaignConfigTest, ParsesEveryField) {
  auto config = Config::Parse(kConfigText);
  ASSERT_TRUE(config.ok());
  auto campaign = ParseCampaignConfig(*config->FindSection("campaign"));
  ASSERT_TRUE(campaign.ok()) << campaign.status().ToString();
  EXPECT_EQ(campaign->name, "regs_scifi");
  EXPECT_EQ(campaign->target, "thor_rd");
  EXPECT_EQ(campaign->technique, target::Technique::kScifi);
  EXPECT_EQ(campaign->workload, "isort");
  EXPECT_EQ(campaign->num_experiments, 250u);
  EXPECT_EQ(campaign->seed, 77u);
  EXPECT_EQ(campaign->model.kind,
            target::FaultModel::Kind::kTransientBitFlip);
  EXPECT_EQ(campaign->multiplicity, 2u);
  EXPECT_EQ(campaign->location_filters,
            (std::vector<std::string>{"cpu.regs.*", "cpu.pc"}));
  EXPECT_EQ(campaign->time_window_lo, 10u);
  EXPECT_EQ(campaign->time_window_hi, 900u);
  EXPECT_EQ(campaign->termination.max_instructions, 50000u);
  EXPECT_EQ(campaign->logging_mode, target::LoggingMode::kDetail);
  EXPECT_TRUE(campaign->use_preinjection_analysis);
}

TEST(CampaignConfigTest, ParsesJobsKey) {
  auto config =
      Config::Parse("[campaign]\nname = x\nworkload = fib\njobs = 4\n");
  ASSERT_TRUE(config.ok());
  auto campaign = ParseCampaignConfig(*config->FindSection("campaign"));
  ASSERT_TRUE(campaign.ok());
  EXPECT_EQ(campaign->jobs, 4u);
}

TEST(CampaignConfigTest, JobsIsAnExecutionKnobNotCampaignIdentity) {
  // `jobs` defaults to serial, must be >= 1, and round-trips through
  // CampaignData as the default (it is deliberately not persisted, so
  // serial and parallel runs store byte-identical campaign rows).
  auto config = Config::Parse("[campaign]\nname = x\nworkload = fib\n");
  ASSERT_TRUE(config.ok());
  auto campaign = ParseCampaignConfig(*config->FindSection("campaign"));
  ASSERT_TRUE(campaign.ok());
  EXPECT_EQ(campaign->jobs, 1u);

  auto zero =
      Config::Parse("[campaign]\nname = x\nworkload = fib\njobs = 0\n");
  EXPECT_FALSE(ParseCampaignConfig(*zero->FindSection("campaign")).ok());

  db::Database database;
  ASSERT_TRUE(CreateGoofiSchema(database).ok());
  target::ThorRdTarget target;
  ASSERT_TRUE(RegisterTargetSystem(database, target, "card", "").ok());
  CampaignConfig stored;
  stored.name = "par";
  stored.workload = "fib";
  stored.jobs = 8;
  ASSERT_TRUE(StoreCampaign(database, stored).ok());
  auto loaded = LoadCampaign(database, "par");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->jobs, 1u);  // not persisted: loads as the default
}

TEST(CampaignConfigTest, ParsesSupervisionKeys) {
  auto config = Config::Parse(
      "[campaign]\nname = x\nworkload = fib\n"
      "experiment_timeout_ms = 2000\nmax_retries = 3\n"
      "retry_backoff_ms = 50\n");
  ASSERT_TRUE(config.ok());
  auto campaign = ParseCampaignConfig(*config->FindSection("campaign"));
  ASSERT_TRUE(campaign.ok()) << campaign.status().ToString();
  EXPECT_EQ(campaign->experiment_timeout_ms, 2000u);
  EXPECT_EQ(campaign->max_retries, 3u);
  EXPECT_EQ(campaign->retry_backoff_ms, 50u);

  // All default to "off" (timeout derived, no retries).
  auto plain = Config::Parse("[campaign]\nname = x\nworkload = fib\n");
  auto defaults = ParseCampaignConfig(*plain->FindSection("campaign"));
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults->experiment_timeout_ms, 0u);
  EXPECT_EQ(defaults->max_retries, 0u);
  EXPECT_EQ(defaults->retry_backoff_ms, 0u);
}

TEST(CampaignConfigTest, DefaultsApply) {
  auto config = Config::Parse("[campaign]\nname = x\nworkload = fib\n");
  ASSERT_TRUE(config.ok());
  auto campaign = ParseCampaignConfig(*config->FindSection("campaign"));
  ASSERT_TRUE(campaign.ok());
  EXPECT_EQ(campaign->technique, target::Technique::kScifi);
  EXPECT_EQ(campaign->num_experiments, 100u);
  EXPECT_EQ(campaign->multiplicity, 1u);
  EXPECT_TRUE(campaign->location_filters.empty());
  EXPECT_EQ(campaign->logging_mode, target::LoggingMode::kNormal);
  EXPECT_FALSE(campaign->use_preinjection_analysis);
}

TEST(CampaignConfigTest, ValidationErrors) {
  auto no_name = Config::Parse("[campaign]\nworkload = fib\n");
  EXPECT_FALSE(
      ParseCampaignConfig(*no_name->FindSection("campaign")).ok());
  auto no_workload = Config::Parse("[campaign]\nname = x\n");
  EXPECT_FALSE(
      ParseCampaignConfig(*no_workload->FindSection("campaign")).ok());
  auto bad_technique =
      Config::Parse("[campaign]\nname=x\nworkload=fib\ntechnique=laser\n");
  EXPECT_FALSE(
      ParseCampaignConfig(*bad_technique->FindSection("campaign")).ok());
  auto bad_multiplicity =
      Config::Parse("[campaign]\nname=x\nworkload=fib\nmultiplicity=0\n");
  EXPECT_FALSE(
      ParseCampaignConfig(*bad_multiplicity->FindSection("campaign")).ok());
  auto bad_logging =
      Config::Parse("[campaign]\nname=x\nworkload=fib\nlogging=verbose\n");
  EXPECT_FALSE(
      ParseCampaignConfig(*bad_logging->FindSection("campaign")).ok());
}

class CampaignDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(CreateGoofiSchema(database_).ok());
    auto workload = target::GetBuiltinWorkload("fib");
    ASSERT_TRUE(workload.ok());
    ASSERT_TRUE(target_.SetWorkload(*workload).ok());
    ASSERT_TRUE(RegisterTargetSystem(database_, target_, "card0",
                                     "test board").ok());
  }

  CampaignConfig MakeConfig(const std::string& name) {
    CampaignConfig config;
    config.name = name;
    config.workload = "fib";
    config.num_experiments = 25;
    config.seed = 3;
    config.location_filters = {"cpu.regs.*"};
    return config;
  }

  db::Database database_;
  target::ThorRdTarget target_;
};

TEST_F(CampaignDbTest, RegisterTargetStoresLocations) {
  auto rows = db::sql::ExecuteSql(
      database_,
      "SELECT COUNT(*) FROM TargetLocation WHERE target_name = 'thor_rd'");
  ASSERT_TRUE(rows.ok());
  // 15 regs + pc + ir + wdt + edm_status + chip_id + 2*16 lines * 10
  // cache elements + 3 pins = at least 300 rows.
  EXPECT_GT(rows->rows[0][0].AsInteger(), 300);
  // Registration is idempotent.
  ASSERT_TRUE(RegisterTargetSystem(database_, target_, "card0", "").ok());
  auto again = db::sql::ExecuteSql(
      database_, "SELECT COUNT(*) FROM TargetSystemData");
  EXPECT_EQ(again->rows[0][0].AsInteger(), 1);
}

TEST_F(CampaignDbTest, LoadTargetLocationsRoundTrips) {
  auto loaded = LoadTargetLocations(database_, "thor_rd");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const auto live = target_.ListLocations();
  ASSERT_EQ(loaded->size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ((*loaded)[i].name, live[i].name);
    EXPECT_EQ((*loaded)[i].kind, live[i].kind);
    EXPECT_EQ((*loaded)[i].chain, live[i].chain);
    EXPECT_EQ((*loaded)[i].width_bits, live[i].width_bits);
    EXPECT_EQ((*loaded)[i].writable, live[i].writable);
    EXPECT_EQ((*loaded)[i].category, live[i].category);
  }
  // A location space built from the stored rows samples identically to
  // one built from the live target (the set-up phase is DB-driven).
  auto from_db = LocationSpace::Build(*loaded, target::Technique::kScifi,
                                      {"cpu.regs.*"});
  auto from_live = LocationSpace::Build(live, target::Technique::kScifi,
                                        {"cpu.regs.*"});
  ASSERT_TRUE(from_db.ok());
  ASSERT_TRUE(from_live.ok());
  EXPECT_EQ(from_db->total_bits(), from_live->total_bits());
  EXPECT_EQ(from_db->SampleIndex(100).location,
            from_live->SampleIndex(100).location);
  EXPECT_EQ(LoadTargetLocations(database_, "ghost").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(CampaignDbTest, StoreAndLoadRoundTrip) {
  CampaignConfig config = MakeConfig("c1");
  config.technique = target::Technique::kSwifiRuntime;
  config.model.kind = target::FaultModel::Kind::kIntermittentBitFlip;
  config.model.period = 99;
  config.model.occurrences = 3;
  config.model.stuck_to_one = false;
  config.multiplicity = 2;
  config.time_window_lo = 5;
  config.time_window_hi = 50;
  config.trigger_kind = "branch";
  config.termination.max_instructions = 7777;
  config.termination.max_iterations = 11;
  config.logging_mode = target::LoggingMode::kDetail;
  config.use_preinjection_analysis = true;
  ASSERT_TRUE(StoreCampaign(database_, config).ok());

  auto loaded = LoadCampaign(database_, "c1");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->technique, config.technique);
  EXPECT_EQ(loaded->model.kind, config.model.kind);
  EXPECT_EQ(loaded->model.period, 99u);
  EXPECT_EQ(loaded->model.occurrences, 3u);
  EXPECT_FALSE(loaded->model.stuck_to_one);
  EXPECT_EQ(loaded->multiplicity, 2u);
  EXPECT_EQ(loaded->location_filters, config.location_filters);
  EXPECT_EQ(loaded->time_window_lo, 5u);
  EXPECT_EQ(loaded->time_window_hi, 50u);
  EXPECT_EQ(loaded->trigger_kind, "branch");
  EXPECT_EQ(loaded->termination.max_instructions, 7777u);
  EXPECT_EQ(loaded->termination.max_iterations, 11u);
  EXPECT_EQ(loaded->logging_mode, target::LoggingMode::kDetail);
  EXPECT_TRUE(loaded->use_preinjection_analysis);
}

TEST_F(CampaignDbTest, SupervisionKeysRoundTripThroughCampaignData) {
  // Unlike `jobs`, the supervision keys ARE part of the campaign
  // record: an abandoned experiment's disposition depends on them.
  CampaignConfig config = MakeConfig("supervised");
  config.experiment_timeout_ms = 2500;
  config.max_retries = 2;
  config.retry_backoff_ms = 10;
  ASSERT_TRUE(StoreCampaign(database_, config).ok());
  auto loaded = LoadCampaign(database_, "supervised");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->experiment_timeout_ms, 2500u);
  EXPECT_EQ(loaded->max_retries, 2u);
  EXPECT_EQ(loaded->retry_backoff_ms, 10u);
}

TEST_F(CampaignDbTest, DuplicateCampaignRejected) {
  ASSERT_TRUE(StoreCampaign(database_, MakeConfig("dup")).ok());
  EXPECT_EQ(StoreCampaign(database_, MakeConfig("dup")).code(),
            ErrorCode::kConstraintViolation);
}

TEST_F(CampaignDbTest, UnknownTargetRejected) {
  CampaignConfig config = MakeConfig("orphan");
  config.target = "nonexistent";
  EXPECT_EQ(StoreCampaign(database_, config).code(),
            ErrorCode::kConstraintViolation);
}

TEST_F(CampaignDbTest, LoadMissingCampaign) {
  EXPECT_EQ(LoadCampaign(database_, "ghost").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(CampaignDbTest, MergeCampaignsUnionsSettings) {
  CampaignConfig a = MakeConfig("a");
  a.location_filters = {"cpu.regs.*"};
  a.num_experiments = 100;
  CampaignConfig b = MakeConfig("b");
  b.location_filters = {"cpu.regs.*", "icache.*"};
  b.num_experiments = 50;
  ASSERT_TRUE(StoreCampaign(database_, a).ok());
  ASSERT_TRUE(StoreCampaign(database_, b).ok());
  auto merged = MergeCampaigns(database_, {"a", "b"}, "ab");
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->num_experiments, 150u);
  EXPECT_EQ(merged->location_filters,
            (std::vector<std::string>{"cpu.regs.*", "icache.*"}));
  // Stored in the database too.
  EXPECT_TRUE(LoadCampaign(database_, "ab").ok());
}

TEST_F(CampaignDbTest, MergeRejectsMixedWorkloads) {
  CampaignConfig a = MakeConfig("wa");
  ASSERT_TRUE(StoreCampaign(database_, a).ok());
  CampaignConfig b = MakeConfig("wb");
  b.workload = "isort";
  ASSERT_TRUE(StoreCampaign(database_, b).ok());
  EXPECT_EQ(MergeCampaigns(database_, {"wa", "wb"}, "bad").status().code(),
            ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace goofi::core
