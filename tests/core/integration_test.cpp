// End-to-end integration: the paper's four phases (configuration,
// set-up, fault injection, analysis) across techniques and workloads,
// including database persistence between phases — the whole tool, not
// just its modules.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/goofi.h"

namespace goofi::core {
namespace {

namespace fs = std::filesystem;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto workload = target::GetBuiltinWorkload("isort");
    ASSERT_TRUE(workload.ok());
    ASSERT_TRUE(target_.SetWorkload(*workload).ok());
    ASSERT_TRUE(RegisterTargetSystem(database_, target_, "sim-card",
                                     "integration board").ok());
  }

  db::Database database_;
  target::ThorRdTarget target_;
};

TEST_F(IntegrationTest, FullScifiPipelineOnIsort) {
  CampaignConfig config;
  config.name = "it_scifi";
  config.workload = "isort";
  config.num_experiments = 120;
  config.seed = 20030623;  // DSN 2003
  config.location_filters = {"cpu.regs.*", "cpu.pc", "cpu.ir", "icache.*",
                             "dcache.*"};
  ASSERT_TRUE(StoreCampaign(database_, config).ok());

  CampaignRunner runner(&database_, &target_);
  auto summary = runner.FaultInjectorSCIFI("it_scifi");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->experiments_run, 120u);

  auto analysis = AnalyzeCampaign(database_, "it_scifi");
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->total, 120u);
  EXPECT_EQ(analysis->detected + analysis->escaped + analysis->latent +
                analysis->overwritten + analysis->not_injected,
            analysis->total);
  // With cache arrays in the location mix, parity detections must occur.
  EXPECT_GT(analysis->detected, 0u);
  EXPECT_GT(analysis->detected_by_mechanism.count("dcache_parity") +
                analysis->detected_by_mechanism.count("icache_parity"),
            0u);
  // And a healthy chunk of random faults do nothing (the paper's
  // motivation for pre-injection analysis).
  EXPECT_GT(analysis->overwritten + analysis->not_injected, 10u);
  // Coverage estimate is a proper interval.
  EXPECT_LE(analysis->detection_coverage.low,
            analysis->detection_coverage.estimate);
  EXPECT_GE(analysis->detection_coverage.high,
            analysis->detection_coverage.estimate);
}

TEST_F(IntegrationTest, EngineControlCampaignFindsFailSilenceViolations) {
  CampaignConfig config;
  config.name = "it_engine";
  config.workload = "engine_control";
  config.num_experiments = 150;
  config.seed = 7;
  config.location_filters = {"cpu.regs.*"};
  ASSERT_TRUE(StoreCampaign(database_, config).ok());
  CampaignRunner runner(&database_, &target_);
  auto summary = runner.Run("it_engine");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  ASSERT_EQ(summary->reference.env_outputs.size(), 40u);

  auto analysis = AnalyzeCampaign(database_, "it_engine");
  ASSERT_TRUE(analysis.ok());
  // The control loop reads sensors every iteration: register faults can
  // corrupt the actuator stream. Either the executable assertions catch
  // them (detected) or they become fail-silence violations (escaped).
  EXPECT_GT(analysis->detected + analysis->fail_silence, 0u);
}

TEST_F(IntegrationTest, DatabaseSurvivesSaveAndLoadBetweenPhases) {
  CampaignConfig config;
  config.name = "it_persist";
  config.workload = "isort";
  config.num_experiments = 40;
  config.seed = 99;
  config.location_filters = {"cpu.regs.*"};
  ASSERT_TRUE(StoreCampaign(database_, config).ok());
  CampaignRunner runner(&database_, &target_);
  ASSERT_TRUE(runner.Run("it_persist").ok());

  const std::string dir =
      (fs::temp_directory_path() / "goofi_integration_db").string();
  fs::remove_all(dir);
  ASSERT_TRUE(database_.SaveToDirectory(dir).ok());
  auto reloaded = db::Database::LoadFromDirectory(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  // Analysis of the reloaded database matches the in-memory one.
  auto original = AnalyzeCampaign(database_, "it_persist");
  auto restored = AnalyzeCampaign(*reloaded, "it_persist");
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->total, original->total);
  EXPECT_EQ(restored->detected, original->detected);
  EXPECT_EQ(restored->escaped, original->escaped);
  EXPECT_EQ(restored->latent, original->latent);
  EXPECT_EQ(restored->overwritten, original->overwritten);
  fs::remove_all(dir);
}

TEST_F(IntegrationTest, AnalysisViaSqlMatchesApi) {
  CampaignConfig config;
  config.name = "it_sql";
  config.workload = "fib";
  config.num_experiments = 30;
  config.seed = 5;
  config.location_filters = {"cpu.regs.*"};
  ASSERT_TRUE(StoreCampaign(database_, config).ok());
  CampaignRunner runner(&database_, &target_);
  ASSERT_TRUE(runner.Run("it_sql").ok());

  // The paper's analysis phase: user-written SQL over LoggedSystemState.
  auto rows = db::sql::ExecuteSql(
      database_,
      "SELECT COUNT(*) FROM LoggedSystemState WHERE campaign_name = "
      "'it_sql' AND parent_experiment IS NULL");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows[0][0].AsInteger(), 31);  // 30 + reference

  auto analysis = AnalyzeCampaign(database_, "it_sql");
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->total, 30u);
}

TEST_F(IntegrationTest, MergedCampaignRuns) {
  CampaignConfig a;
  a.name = "it_a";
  a.workload = "fib";
  a.num_experiments = 10;
  a.seed = 1;
  a.location_filters = {"cpu.regs.*"};
  CampaignConfig b = a;
  b.name = "it_b";
  b.location_filters = {"cpu.pc"};
  ASSERT_TRUE(StoreCampaign(database_, a).ok());
  ASSERT_TRUE(StoreCampaign(database_, b).ok());
  auto merged = MergeCampaigns(database_, {"it_a", "it_b"}, "it_merged");
  ASSERT_TRUE(merged.ok());
  CampaignRunner runner(&database_, &target_);
  auto summary = runner.Run("it_merged");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(summary->experiments_run, 20u);
}

TEST_F(IntegrationTest, AllThreeTechniquesOnOneWorkload) {
  CampaignRunner runner(&database_, &target_);
  const struct {
    const char* name;
    target::Technique technique;
    std::vector<std::string> filters;
  } cases[] = {
      {"t_scifi", target::Technique::kScifi, {"cpu.regs.*", "icache.*"}},
      {"t_pre", target::Technique::kSwifiPreRuntime, {}},
      {"t_rt", target::Technique::kSwifiRuntime, {"cpu.regs.*"}},
  };
  for (const auto& c : cases) {
    CampaignConfig config;
    config.name = c.name;
    config.workload = "isort";
    config.technique = c.technique;
    config.num_experiments = 30;
    config.seed = 13;
    config.location_filters = c.filters;
    ASSERT_TRUE(StoreCampaign(database_, config).ok());
    auto summary = runner.Run(c.name);
    ASSERT_TRUE(summary.ok()) << c.name << ": "
                              << summary.status().ToString();
    auto analysis = AnalyzeCampaign(database_, c.name);
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis->total, 30u) << c.name;
  }
}

}  // namespace
}  // namespace goofi::core
