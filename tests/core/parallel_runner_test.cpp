// The serial-equivalence proof suite for sharded campaign execution:
// a ParallelCampaignRunner with any worker count must produce a
// database bit-identical to the serial CampaignRunner's — same
// LoggedSystemState rows in the same order, same CampaignData state,
// same outcome classification — plus the fleet-wide control-and-resume
// behaviours (pause/stop under fire, sharded resume with a different
// worker count, value-copied progress snapshots).
#include "core/parallel_runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/analysis.h"
#include "core/goofi_schema.h"
#include "db/sql/executor.h"
#include "target/flaky_target.h"
#include "target/framework_target.h"
#include "target/thor_rd_target.h"
#include "target/workloads.h"

namespace goofi::core {
namespace {

// Every column of every row, encoded, in table order: the "dump" the
// equivalence criterion is stated over.
std::vector<std::string> DumpTable(db::Database& database,
                                   const std::string& table_name) {
  std::vector<std::string> rows;
  const db::Table* table = database.FindTable(table_name);
  if (table == nullptr) return rows;
  for (const db::Row& row : table->rows()) {
    std::string line;
    for (const db::Value& value : row) {
      line += value.Encode();
      line += '\t';
    }
    rows.push_back(std::move(line));
  }
  return rows;
}

class ParallelRunnerTest : public ::testing::Test {
 protected:
  static CampaignConfig MakeConfig(const std::string& name,
                                   std::uint32_t experiments = 24) {
    CampaignConfig config;
    config.name = name;
    config.workload = "fib";
    config.num_experiments = experiments;
    config.seed = 23;
    config.location_filters = {"cpu.regs.*"};
    return config;
  }

  // A fresh database with the target registered and `config` stored,
  // exactly as the serial tests set theirs up.
  static void SetUpDatabase(db::Database& database,
                            const CampaignConfig& config) {
    ASSERT_TRUE(CreateGoofiSchema(database).ok());
    target::ThorRdTarget registrar;
    ASSERT_TRUE(
        RegisterTargetSystem(database, registrar, "card", "").ok());
    ASSERT_TRUE(StoreCampaign(database, config).ok());
  }

  static target::TargetFactory ThorFactory() {
    auto factory = target::BuiltinTargetFactory("thor_rd");
    EXPECT_TRUE(factory.ok());
    return *factory;
  }
};

TEST_F(ParallelRunnerTest, MatchesSerialRunBitForBitAtEveryWorkerCount) {
  const CampaignConfig config = MakeConfig("eq");

  db::Database serial_db;
  SetUpDatabase(serial_db, config);
  target::ThorRdTarget serial_target;
  auto serial_summary = CampaignRunner(&serial_db, &serial_target).Run("eq");
  ASSERT_TRUE(serial_summary.ok()) << serial_summary.status().ToString();
  const auto serial_logged = DumpTable(serial_db, kLoggedSystemStateTable);
  const auto serial_campaign = DumpTable(serial_db, kCampaignDataTable);
  ASSERT_EQ(serial_logged.size(), 25u);  // 24 experiments + reference
  auto serial_analysis = AnalyzeCampaign(serial_db, "eq");
  ASSERT_TRUE(serial_analysis.ok());

  for (const std::size_t workers : {2u, 4u, 8u}) {
    db::Database parallel_db;
    SetUpDatabase(parallel_db, config);
    ParallelCampaignRunner runner(&parallel_db, ThorFactory(), workers);
    auto summary = runner.Run("eq");
    ASSERT_TRUE(summary.ok())
        << workers << " workers: " << summary.status().ToString();
    EXPECT_EQ(summary->experiments_run, 24u) << workers;
    EXPECT_EQ(summary->experiments_stopped_early, 0u) << workers;

    // The whole LoggedSystemState row set, row for row and byte for
    // byte — names, parentExperiment links, specs, state vectors, and
    // the row order a dump would serialize.
    EXPECT_EQ(DumpTable(parallel_db, kLoggedSystemStateTable),
              serial_logged)
        << workers << " workers";
    EXPECT_EQ(DumpTable(parallel_db, kCampaignDataTable), serial_campaign)
        << workers << " workers";

    // Outcome classification counts match (implied by the dump check,
    // asserted separately for a readable failure).
    auto analysis = AnalyzeCampaign(parallel_db, "eq");
    ASSERT_TRUE(analysis.ok());
    EXPECT_EQ(analysis->detected, serial_analysis->detected) << workers;
    EXPECT_EQ(analysis->escaped, serial_analysis->escaped) << workers;
    EXPECT_EQ(analysis->latent, serial_analysis->latent) << workers;
    EXPECT_EQ(analysis->overwritten, serial_analysis->overwritten)
        << workers;
    EXPECT_EQ(analysis->not_injected, serial_analysis->not_injected)
        << workers;
  }
}

TEST_F(ParallelRunnerTest, MatchesSerialWithPreinjectionAnalysis) {
  CampaignConfig config = MakeConfig("eq_pre", 40);
  config.use_preinjection_analysis = true;

  db::Database serial_db;
  SetUpDatabase(serial_db, config);
  target::ThorRdTarget serial_target;
  auto serial_summary =
      CampaignRunner(&serial_db, &serial_target).Run("eq_pre");
  ASSERT_TRUE(serial_summary.ok()) << serial_summary.status().ToString();

  db::Database parallel_db;
  SetUpDatabase(parallel_db, config);
  ParallelCampaignRunner runner(&parallel_db, ThorFactory(), 4);
  auto summary = runner.Run("eq_pre");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  EXPECT_EQ(DumpTable(parallel_db, kLoggedSystemStateTable),
            DumpTable(serial_db, kLoggedSystemStateTable));
  // Per-experiment RNG streams make even the resample count a sum of
  // per-experiment constants, identical however the plan is sharded.
  EXPECT_EQ(summary->preinjection_resamples,
            serial_summary->preinjection_resamples);
  EXPECT_EQ(summary->register_live_fraction,
            serial_summary->register_live_fraction);
}

TEST_F(ParallelRunnerTest, SingleWorkerDegeneratesToSerial) {
  const CampaignConfig config = MakeConfig("eq_one", 10);

  db::Database serial_db;
  SetUpDatabase(serial_db, config);
  target::ThorRdTarget serial_target;
  ASSERT_TRUE(CampaignRunner(&serial_db, &serial_target).Run("eq_one").ok());

  db::Database parallel_db;
  SetUpDatabase(parallel_db, config);
  ParallelCampaignRunner runner(&parallel_db, ThorFactory(), 1);
  ASSERT_TRUE(runner.Run("eq_one").ok());
  EXPECT_EQ(DumpTable(parallel_db, kLoggedSystemStateTable),
            DumpTable(serial_db, kLoggedSystemStateTable));
}

TEST_F(ParallelRunnerTest, FrameworkTargetShardsThroughTheFactory) {
  CampaignConfig config = MakeConfig("eq_fw", 12);
  config.target = "framework";
  config.location_filters = {"counter*"};  // the skeleton's chain elements

  auto factory = target::BuiltinTargetFactory("framework");
  ASSERT_TRUE(factory.ok());

  db::Database serial_db;
  ASSERT_TRUE(CreateGoofiSchema(serial_db).ok());
  target::FrameworkTarget registrar;
  ASSERT_TRUE(RegisterTargetSystem(serial_db, registrar, "card", "").ok());
  ASSERT_TRUE(StoreCampaign(serial_db, config).ok());
  target::FrameworkTarget serial_target;
  ASSERT_TRUE(CampaignRunner(&serial_db, &serial_target).Run("eq_fw").ok());

  db::Database parallel_db;
  ASSERT_TRUE(CreateGoofiSchema(parallel_db).ok());
  target::FrameworkTarget registrar2;
  ASSERT_TRUE(
      RegisterTargetSystem(parallel_db, registrar2, "card", "").ok());
  ASSERT_TRUE(StoreCampaign(parallel_db, config).ok());
  ParallelCampaignRunner runner(&parallel_db, *factory, 4);
  auto summary = runner.Run("eq_fw");
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(DumpTable(parallel_db, kLoggedSystemStateTable),
            DumpTable(serial_db, kLoggedSystemStateTable));
}

TEST_F(ParallelRunnerTest, UnknownTargetFactoryIsNotFound) {
  EXPECT_EQ(target::BuiltinTargetFactory("no_such_board").status().code(),
            ErrorCode::kNotFound);
}

TEST_F(ParallelRunnerTest, WithWorkloadPreinstallsOnEveryInstance) {
  auto factory = target::BuiltinTargetFactory("thor_rd");
  ASSERT_TRUE(factory.ok());
  auto workload = target::GetBuiltinWorkload("fib");
  ASSERT_TRUE(workload.ok());
  target::TargetFactory wrapped =
      target::WithWorkload(*factory, *workload);
  for (int i = 0; i < 2; ++i) {
    auto target = wrapped();
    ASSERT_TRUE(target.ok());
    // A ready-to-run instance: the reference run works immediately.
    target::ExperimentSpec reference;
    reference.name = "probe";
    (*target)->set_experiment(reference);
    EXPECT_TRUE((*target)->MakeReferenceRun().ok());
  }
}

// Satellite: the progress-callback data race. Snapshots are value
// copies aggregated in canonical order — a callback may stash them and
// a control thread may read them while the fleet runs (TSan-clean),
// and the stored sequence is exactly the serial runner's.
TEST_F(ParallelRunnerTest, ProgressSnapshotsAreOrderedValueCopies) {
  const CampaignConfig config = MakeConfig("prog", 20);
  db::Database database;
  SetUpDatabase(database, config);

  std::vector<ProgressInfo> snapshots;
  std::atomic<std::size_t> done_view{0};  // read from another thread
  ParallelCampaignRunner runner(&database, ThorFactory(), 4);
  runner.set_progress_callback([&](ProgressInfo info) {
    done_view = info.experiments_done;
    snapshots.push_back(std::move(info));
  });

  std::atomic<bool> finished{false};
  std::thread observer([&] {
    std::size_t last = 0;
    while (!finished) {
      const std::size_t now = done_view;
      EXPECT_GE(now, last);  // monotonic across threads
      last = now;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  ASSERT_TRUE(runner.Run("prog").ok());
  finished = true;
  observer.join();

  ASSERT_EQ(snapshots.size(), 20u);  // one per logged experiment
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].experiments_done, i + 1);
    EXPECT_EQ(snapshots[i].experiments_total, 20u);
    EXPECT_EQ(snapshots[i].current_experiment, ExperimentName("prog", i));
  }
}

// Satellite: concurrency stress. A control thread hammers
// Pause()/Resume()/Stop() while the fleet runs; no experiment may be
// logged twice, and a stop must leave a resumable state that a fleet
// of a *different* size completes to the serial result. Runs under
// ThreadSanitizer in the GOOFI_TSAN CI job.
TEST_F(ParallelRunnerTest, PauseResumeStopUnderFireLeavesResumableState) {
  const CampaignConfig config = MakeConfig("stress", 120);
  db::Database database;
  SetUpDatabase(database, config);

  CampaignController controller;
  ParallelCampaignRunner runner(&database, ThorFactory(), 4);
  runner.set_controller(&controller);

  std::atomic<bool> run_finished{false};
  std::thread control([&] {
    // Hammer the controls until the run has made some progress, then
    // stop mid-flight.
    for (int burst = 0; !run_finished && burst < 400; ++burst) {
      controller.Pause();
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      controller.Resume();
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    controller.Stop();
  });
  auto stopped = runner.Run("stress");
  run_finished = true;
  control.join();
  ASSERT_TRUE(stopped.ok()) << stopped.status().ToString();

  // No experiment logged twice: names are the primary key, so count
  // distinct-by-construction rows against the total.
  auto count = db::sql::ExecuteSql(
      database,
      "SELECT COUNT(*) FROM LoggedSystemState WHERE campaign_name = "
      "'stress'");
  ASSERT_TRUE(count.ok());
  const std::int64_t logged_rows = count->rows[0][0].AsInteger();
  EXPECT_EQ(static_cast<std::size_t>(logged_rows),
            1 + 120 - stopped->experiments_stopped_early);
  std::set<std::string> names;
  const db::Table* logged = database.FindTable(kLoggedSystemStateTable);
  for (const db::Row& row : logged->rows()) {
    EXPECT_TRUE(names.insert(row[0].AsText()).second)
        << "duplicate " << row[0].AsText();
  }

  // Stop leaves a resumable state: a different worker count finishes
  // the campaign, and the completed database matches a serial run.
  ParallelCampaignRunner resumer(&database, ThorFactory(), 8);
  auto resumed = resumer.Resume("stress");
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->experiments_run + (120 - stopped->experiments_stopped_early),
            120u);

  db::Database serial_db;
  SetUpDatabase(serial_db, config);
  target::ThorRdTarget serial_target;
  ASSERT_TRUE(
      CampaignRunner(&serial_db, &serial_target).Run("stress").ok());
  // Row *sets* match; the row order may differ from a never-stopped
  // run when the stop landed between shards.
  auto sorted = [](std::vector<std::string> rows) {
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(sorted(DumpTable(database, kLoggedSystemStateTable)),
            sorted(DumpTable(serial_db, kLoggedSystemStateTable)));
  auto status = db::sql::ExecuteSql(
      database,
      "SELECT status, experiments_done FROM CampaignData WHERE "
      "campaign_name = 'stress'");
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->rows[0][0].AsText(), "completed");
  EXPECT_EQ(status->rows[0][1].AsInteger(), 120);
}

// Satellite: the supervisor must not cost the sharded runner its
// serial-equivalence guarantee. With the same scripted faults, a flaky
// 4-worker run is bit-identical to a flaky serial run; every surviving
// experiment matches a fault-free serial baseline; and the abandoned
// experiment is recorded with its non-ok tool status, not lost.
TEST_F(ParallelRunnerTest, SupervisorPreservesSerialEquivalenceUnderFaults) {
  CampaignConfig config = MakeConfig("flaky_eq");
  config.experiment_timeout_ms = 30'000;
  config.max_retries = 2;
  config.retry_backoff_ms = 1;

  // The script is keyed by (experiment, attempt), so two fresh copies
  // of it steer the serial and parallel runs identically regardless of
  // worker scheduling.
  auto make_script = [] {
    auto script = std::make_shared<target::FlakyScript>();
    script->faults[{3, 1}] = target::FlakyFault::kTargetFault;
    script->faults[{11, 1}] = target::FlakyFault::kIo;
    script->faults[{11, 2}] = target::FlakyFault::kIo;
    script->always[17] = target::FlakyFault::kIo;  // abandoned
    return script;
  };

  db::Database clean_db;
  SetUpDatabase(clean_db, config);
  target::ThorRdTarget clean_target;
  ASSERT_TRUE(
      CampaignRunner(&clean_db, &clean_target).Run("flaky_eq").ok());

  db::Database serial_db;
  SetUpDatabase(serial_db, config);
  target::ThorRdTarget serial_target;
  CampaignRunner serial_runner(&serial_db, &serial_target);
  serial_runner.set_target_factory(
      target::MakeFlakyTargetFactory(ThorFactory(), make_script()));
  auto serial_summary = serial_runner.Run("flaky_eq");
  ASSERT_TRUE(serial_summary.ok()) << serial_summary.status().ToString();

  db::Database parallel_db;
  SetUpDatabase(parallel_db, config);
  ParallelCampaignRunner parallel_runner(
      &parallel_db,
      target::MakeFlakyTargetFactory(ThorFactory(), make_script()), 4);
  auto parallel_summary = parallel_runner.Run("flaky_eq");
  ASSERT_TRUE(parallel_summary.ok())
      << parallel_summary.status().ToString();

  // No experiment lost, and the supervision counters agree.
  EXPECT_EQ(serial_summary->experiments_run, 24u);
  EXPECT_EQ(parallel_summary->experiments_run, 24u);
  EXPECT_EQ(serial_summary->experiment_retries, 5u);
  EXPECT_EQ(parallel_summary->experiment_retries, 5u);
  EXPECT_EQ(serial_summary->experiments_abandoned, 1u);
  EXPECT_EQ(parallel_summary->experiments_abandoned, 1u);
  EXPECT_EQ(serial_summary->targets_quarantined, 6u);
  EXPECT_EQ(parallel_summary->targets_quarantined, 6u);

  // Flaky serial and flaky 4-worker databases are bit-identical —
  // dispositions, row order and all.
  EXPECT_EQ(DumpTable(parallel_db, kLoggedSystemStateTable),
            DumpTable(serial_db, kLoggedSystemStateTable));
  EXPECT_EQ(DumpTable(parallel_db, kCampaignDataTable),
            DumpTable(serial_db, kCampaignDataTable));

  // Every surviving experiment — retried ones included — produced the
  // same spec and observation as the fault-free baseline.
  for (std::size_t i = 0; i < 24; ++i) {
    const std::string query =
        "SELECT experiment_data, state_vector, tool_status FROM "
        "LoggedSystemState WHERE experiment_name = '" +
        ExperimentName("flaky_eq", i) + "'";
    auto flaky = db::sql::ExecuteSql(parallel_db, query);
    auto clean = db::sql::ExecuteSql(clean_db, query);
    ASSERT_TRUE(flaky.ok());
    ASSERT_TRUE(clean.ok());
    ASSERT_EQ(flaky->rows.size(), 1u) << i;
    if (i == 17) {
      // The abandoned experiment keeps its row: disposition recorded,
      // observation absent.
      EXPECT_EQ(flaky->rows[0][2].AsText(), "io");
      EXPECT_TRUE(flaky->rows[0][1].is_null());
      continue;
    }
    EXPECT_EQ(flaky->rows[0][2].AsText(), "ok") << i;
    EXPECT_EQ(flaky->rows[0][0].AsText(), clean->rows[0][0].AsText()) << i;
    EXPECT_EQ(flaky->rows[0][1].AsText(), clean->rows[0][1].AsText()) << i;
  }
}

// Aggregate-aware pause: with the fleet paused before the first claim,
// nothing is logged until a Resume from another thread releases all
// workers.
TEST_F(ParallelRunnerTest, FleetWidePauseBlocksAllWorkers) {
  const CampaignConfig config = MakeConfig("pausefleet", 16);
  db::Database database;
  SetUpDatabase(database, config);

  CampaignController controller;
  controller.Pause();
  ParallelCampaignRunner runner(&database, ThorFactory(), 4);
  runner.set_controller(&controller);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    controller.Resume();
  });
  auto summary = runner.Run("pausefleet");
  releaser.join();
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->experiments_run, 16u);
}

}  // namespace
}  // namespace goofi::core
