// Loads the toy-target shared library at run time and runs experiments
// against it — the reproduction's answer to extending GOOFI with new
// TargetSystemInterface classes without recompiling the tool.
#include "core/plugin.h"

#include <gtest/gtest.h>

#include "core/registry.h"
#include "target/thor_rd_target.h"

#ifndef GOOFI_TOY_PLUGIN_PATH
#error "build must define GOOFI_TOY_PLUGIN_PATH"
#endif

namespace goofi::core {
namespace {

TEST(RegistryTest, BuiltinTargets) {
  TargetRegistry registry;
  RegisterBuiltinTargets(registry);
  EXPECT_TRUE(registry.Has("thor_rd"));
  EXPECT_TRUE(registry.Has("thor"));
  EXPECT_TRUE(registry.Has("cache_hierarchy"));
  auto target = registry.Create("thor_rd");
  ASSERT_TRUE(target.ok());
  EXPECT_EQ((*target)->target_name(), "thor_rd");
  auto thor = registry.Create("thor");
  ASSERT_TRUE(thor.ok());
  EXPECT_EQ((*thor)->target_name(), "thor");
  EXPECT_EQ(registry.Create("missing").status().code(),
            ErrorCode::kNotFound);
  // Double registration of the same name is rejected...
  EXPECT_EQ(registry
                .Register("thor_rd",
                          []() {
                            return std::unique_ptr<
                                target::TargetSystemInterface>();
                          })
                .code(),
            ErrorCode::kAlreadyExists);
  // ...but RegisterBuiltinTargets itself is idempotent.
  RegisterBuiltinTargets(registry);
  EXPECT_EQ(registry.Names().size(), 3u);
}

TEST(RegistryTest, ThorLacksCacheParityCheckers) {
  // The predecessor board: cache faults are not parity-detected.
  auto thor = target::MakeThorTarget();
  EXPECT_FALSE(thor->test_card().cpu().config().edm.IsEnabled(
      sim::EdmType::kIcacheParity));
  EXPECT_FALSE(thor->test_card().cpu().config().edm.IsEnabled(
      sim::EdmType::kDcacheParity));
  // The scan-chain location space is identical: the test logic did not
  // change between Thor and Thor RD, only the checkers did.
  target::ThorRdTarget thor_rd;
  EXPECT_EQ(thor->ListLocations().size(),
            thor_rd.ListLocations().size());
}

TEST(RegistryTest, RejectsBadRegistrations) {
  TargetRegistry registry;
  EXPECT_EQ(registry.Register("", []() {
    return std::unique_ptr<target::TargetSystemInterface>();
  }).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("x", nullptr).code(),
            ErrorCode::kInvalidArgument);
}

TEST(PluginTest, LoadErrors) {
  TargetRegistry registry;
  EXPECT_EQ(LoadTargetPlugin("/nonexistent/plugin.so", registry).code(),
            ErrorCode::kIo);
}

TEST(PluginTest, LoadsToyTargetAndRunsExperiments) {
  TargetRegistry registry;
  ASSERT_TRUE(LoadTargetPlugin(GOOFI_TOY_PLUGIN_PATH, registry).ok());
  ASSERT_TRUE(registry.Has("toy_accumulator"));
  auto created = registry.Create("toy_accumulator");
  ASSERT_TRUE(created.ok());
  target::TargetSystemInterface& toy = **created;
  EXPECT_EQ(toy.target_name(), "toy_accumulator");
  EXPECT_EQ(toy.ListLocations().size(), 3u);

  // Golden run: sum 1..50 = 1275.
  ASSERT_TRUE(toy.MakeReferenceRun().ok());
  const target::Observation golden = toy.TakeObservation();
  ASSERT_EQ(golden.emitted.size(), 1u);
  EXPECT_EQ(golden.emitted[0], 1275u);

  // Inject a high bit early: the toy's range-check EDM detects it.
  target::ExperimentSpec spec;
  spec.technique = target::Technique::kScifi;
  spec.trigger.count = 10;
  spec.targets = {{"acc0", 20}};  // +2^20: way beyond the legal range
  toy.set_experiment(spec);
  ASSERT_TRUE(toy.RunExperiment().ok());
  const target::Observation detected = toy.TakeObservation();
  EXPECT_EQ(detected.stop_reason, sim::StopReason::kEdm);

  // A low-bit flip escapes with a wrong result.
  spec.targets = {{"acc0", 0}};
  toy.set_experiment(spec);
  ASSERT_TRUE(toy.RunExperiment().ok());
  const target::Observation escaped = toy.TakeObservation();
  EXPECT_EQ(escaped.stop_reason, sim::StopReason::kHalted);
  EXPECT_NE(escaped.emitted[0], 1275u);

  // A flip in the unused acc2 is overwritten/latent (no output change).
  spec.targets = {{"acc2", 5}};
  toy.set_experiment(spec);
  ASSERT_TRUE(toy.RunExperiment().ok());
  EXPECT_EQ(toy.observation().emitted, golden.emitted);
}

TEST(PluginTest, LoadingTwiceConflictsOnName) {
  TargetRegistry registry;
  ASSERT_TRUE(LoadTargetPlugin(GOOFI_TOY_PLUGIN_PATH, registry).ok());
  // Second load: registration fails internally (duplicate name), but
  // loading reports OK — the plugin decides how to handle it; the
  // registry still has exactly one entry.
  ASSERT_TRUE(LoadTargetPlugin(GOOFI_TOY_PLUGIN_PATH, registry).ok());
  EXPECT_EQ(registry.Names().size(), 1u);
}

}  // namespace
}  // namespace goofi::core
