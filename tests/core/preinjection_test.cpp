#include "core/preinjection.h"

#include <gtest/gtest.h>

namespace goofi::core {
namespace {

using sim::AccessEvent;

TEST(LivenessIntervalsTest, BuildFromReadsAndWrites) {
  // write@5, read@10, write@12, read@20  =>  live [6,10] and [13,20].
  const std::vector<AccessEvent> events = {
      {5, true}, {10, false}, {12, true}, {20, false}};
  const LivenessIntervals intervals = BuildIntervals(events);
  ASSERT_EQ(intervals.spans.size(), 2u);
  const auto first = std::make_pair<std::uint64_t, std::uint64_t>(6, 10);
  const auto second = std::make_pair<std::uint64_t, std::uint64_t>(13, 20);
  EXPECT_EQ(intervals.spans[0], first);
  EXPECT_EQ(intervals.spans[1], second);
  EXPECT_FALSE(intervals.Contains(5));
  EXPECT_TRUE(intervals.Contains(6));
  EXPECT_TRUE(intervals.Contains(10));
  EXPECT_FALSE(intervals.Contains(11));
  EXPECT_FALSE(intervals.Contains(12));
  EXPECT_TRUE(intervals.Contains(13));
  EXPECT_TRUE(intervals.Contains(20));
  EXPECT_FALSE(intervals.Contains(21));
  EXPECT_EQ(intervals.TotalLiveTime(), 5u + 8u);
}

TEST(LivenessIntervalsTest, ReadBeforeAnyWriteIsLiveFromZero) {
  const std::vector<AccessEvent> events = {{7, false}};
  const LivenessIntervals intervals = BuildIntervals(events);
  ASSERT_EQ(intervals.spans.size(), 1u);
  EXPECT_TRUE(intervals.Contains(0));
  EXPECT_TRUE(intervals.Contains(7));
  EXPECT_FALSE(intervals.Contains(8));
}

TEST(LivenessIntervalsTest, WriteOnlyLocationIsNeverLive) {
  const std::vector<AccessEvent> events = {{3, true}, {9, true}};
  EXPECT_TRUE(BuildIntervals(events).spans.empty());
}

TEST(LivenessIntervalsTest, ReadAndWriteSameInstruction) {
  // "add r1, r1, r2" at t=4: read r1 then write r1 (program order).
  // Injection at t<=4 reaches the read; the write covers [5, 8] for the
  // next read — adjacent spans, so they merge into one.
  const std::vector<AccessEvent> events = {
      {4, false}, {4, true}, {8, false}};
  const LivenessIntervals intervals = BuildIntervals(events);
  ASSERT_EQ(intervals.spans.size(), 1u);
  EXPECT_TRUE(intervals.Contains(0));
  EXPECT_TRUE(intervals.Contains(4));
  EXPECT_TRUE(intervals.Contains(5));
  EXPECT_TRUE(intervals.Contains(8));
  EXPECT_FALSE(intervals.Contains(9));
}

TEST(LivenessIntervalsTest, AdjacentSpansMerge) {
  // read@5, write@5, read@6: [0,5] and [6,6] merge into [0,6].
  const std::vector<AccessEvent> events = {
      {5, false}, {5, true}, {6, false}};
  const LivenessIntervals intervals = BuildIntervals(events);
  ASSERT_EQ(intervals.spans.size(), 1u);
  EXPECT_EQ(intervals.spans[0].second, 6u);
}

TEST(PreInjectionAnalysisTest, BuildsFromRecorder) {
  sim::AccessRecorder recorder;
  recorder.OnRegisterWrite(3, 0, 1, 2);
  recorder.OnRegisterRead(3, 9);
  recorder.OnMemoryWrite(0x1000, 4, 5, 4);
  recorder.OnMemoryRead(0x1000, 4, 11);
  PreInjectionAnalysis analysis;
  analysis.Build(recorder, /*end_time=*/20);

  EXPECT_TRUE(analysis.IsRegisterLive(3, 5));
  EXPECT_FALSE(analysis.IsRegisterLive(3, 2));
  EXPECT_FALSE(analysis.IsRegisterLive(3, 10));
  EXPECT_FALSE(analysis.IsRegisterLive(4, 5));  // untouched register
  EXPECT_FALSE(analysis.IsRegisterLive(0, 5));  // r0 never live

  EXPECT_TRUE(analysis.IsMemoryWordLive(0x1000, 7));
  EXPECT_TRUE(analysis.IsMemoryWordLive(0x1002, 7));  // same word
  EXPECT_FALSE(analysis.IsMemoryWordLive(0x1000, 12));
  EXPECT_FALSE(analysis.IsMemoryWordLive(0x2000, 7));
}

TEST(PreInjectionAnalysisTest, FaultTargetResolution) {
  sim::AccessRecorder recorder;
  recorder.OnRegisterWrite(5, 0, 1, 1);
  recorder.OnRegisterRead(5, 6);
  recorder.OnMemoryWrite(0x10020, 4, 5, 3);
  recorder.OnMemoryRead(0x10020, 4, 9);
  PreInjectionAnalysis analysis;
  analysis.Build(recorder, 20);

  EXPECT_TRUE(analysis.IsLive({"cpu.regs.r5", 12}, 4));
  EXPECT_FALSE(analysis.IsLive({"cpu.regs.r5", 12}, 8));
  // Byte addressing within a word: bit 10 lives in byte +1, same word.
  EXPECT_TRUE(analysis.IsLive({"mem@0x00010020", 10}, 5));
  EXPECT_FALSE(analysis.IsLive({"mem@0x00010020", 10}, 15));
  // Non-architectural locations are conservatively live.
  EXPECT_TRUE(analysis.IsLive({"icache.line3.data2", 7}, 5));
  EXPECT_TRUE(analysis.IsLive({"cpu.ir", 7}, 5));
  // Nonsense registers are not.
  EXPECT_FALSE(analysis.IsLive({"cpu.regs.r77", 0}, 5));
}

TEST(LivenessIntervalsTest, ContainsOnEmptyIntervals) {
  const LivenessIntervals intervals;
  EXPECT_FALSE(intervals.Contains(0));
  EXPECT_FALSE(intervals.Contains(42));
  EXPECT_EQ(intervals.TotalLiveTime(), 0u);
}

TEST(LivenessIntervalsTest, SinglePointSpanBoundaries) {
  // write@6, read@7: the only live time is 7.
  const std::vector<AccessEvent> events = {{6, true}, {7, false}};
  const LivenessIntervals intervals = BuildIntervals(events);
  ASSERT_EQ(intervals.spans.size(), 1u);
  EXPECT_FALSE(intervals.Contains(6));
  EXPECT_TRUE(intervals.Contains(7));
  EXPECT_FALSE(intervals.Contains(8));
  EXPECT_EQ(intervals.TotalLiveTime(), 1u);
}

TEST(PreInjectionAnalysisTest, EmptyTraceHasNoLiveness) {
  const sim::AccessRecorder recorder;
  PreInjectionAnalysis analysis;
  analysis.Build(recorder, /*end_time=*/0);
  for (unsigned reg = 0; reg < 16; ++reg) {
    EXPECT_FALSE(analysis.IsRegisterLive(reg, 0));
  }
  EXPECT_FALSE(analysis.IsMemoryWordLive(0x10000, 0));
  EXPECT_TRUE(analysis.memory_intervals().empty());
  EXPECT_EQ(analysis.RegisterLiveFraction(), 0.0);
}

TEST(PreInjectionAnalysisTest, RzeroIsNeverLiveEvenIfEventsClaimSo) {
  // The recorder drops r0 events itself, but Build must stay safe even
  // against a tracer that reports them.
  sim::AccessRecorder recorder;
  recorder.OnRegisterRead(0, 5);
  recorder.OnRegisterWrite(0, 0, 1, 2);
  PreInjectionAnalysis analysis;
  analysis.Build(recorder, 10);
  EXPECT_FALSE(analysis.IsRegisterLive(0, 3));
  EXPECT_FALSE(analysis.IsLive({"cpu.regs.r0", 0}, 3));
}

TEST(PreInjectionAnalysisTest, AccessesAtOrAfterEndTimeAreNotLive) {
  // A read event at the end of the run keeps earlier times live, but an
  // injection at t >= end_time happens after the workload halted and
  // can never be read.
  sim::AccessRecorder recorder;
  recorder.OnRegisterRead(2, 9);  // last instruction of a 10-long run
  recorder.OnMemoryWrite(0x10000, 4, 1, 1);
  recorder.OnMemoryRead(0x10000, 4, 9);
  PreInjectionAnalysis analysis;
  analysis.Build(recorder, /*end_time=*/10);
  EXPECT_TRUE(analysis.IsRegisterLive(2, 9));
  EXPECT_FALSE(analysis.IsRegisterLive(2, 10));
  EXPECT_FALSE(analysis.IsRegisterLive(2, 11));
  EXPECT_TRUE(analysis.IsMemoryWordLive(0x10000, 9));
  EXPECT_FALSE(analysis.IsMemoryWordLive(0x10000, 10));
}

TEST(PreInjectionAnalysisTest, RegisterLiveFraction) {
  sim::AccessRecorder recorder;
  // r1 live for [0,9] out of end_time 100 => 10/100 of one register;
  // over 15 registers: 10 / 1500.
  recorder.OnRegisterRead(1, 9);
  PreInjectionAnalysis analysis;
  analysis.Build(recorder, 100);
  EXPECT_NEAR(analysis.RegisterLiveFraction(), 10.0 / 1500.0, 1e-9);
}

}  // namespace
}  // namespace goofi::core
