// Checkpoint-fork execution: the CheckpointStore/CheckpointCache lookup
// machinery, and the guarantee the whole mode rides on — a campaign run
// with fork-from-checkpoint logs a database bit-identical to
// replay-from-reset, serially, at any worker count, under supervision
// retries, and on the framework skeleton target. Ineligible campaigns
// must silently fall back to replay rather than change results.
#include "core/checkpoint.h"

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/goofi_schema.h"
#include "core/parallel_runner.h"
#include "core/runner.h"
#include "target/flaky_target.h"
#include "target/framework_target.h"
#include "target/thor_rd_target.h"

namespace goofi::core {
namespace {

sim::Snapshot At(std::uint64_t instret) {
  sim::Snapshot snapshot;
  snapshot.instret = instret;
  return snapshot;
}

TEST(CheckpointStoreTest, AddKeepsOnlyIncreasingInstret) {
  CheckpointStore store;
  EXPECT_TRUE(store.empty());
  store.Add(At(100));
  store.Add(At(100));  // duplicate: ignored
  store.Add(At(50));   // out of order: ignored
  store.Add(At(200));
  EXPECT_EQ(store.size(), 2u);
}

TEST(CheckpointStoreTest, NearestAtOrBelowReturnsPredecessorAndInterval) {
  CheckpointStore store;
  store.Add(At(100));
  store.Add(At(200));
  store.Add(At(300));

  EXPECT_EQ(store.NearestAtOrBelow(99), nullptr);

  std::uint64_t lo = 0, hi = 0;
  auto exact = store.NearestAtOrBelow(100, &lo, &hi);
  ASSERT_NE(exact, nullptr);
  EXPECT_EQ(exact->instret, 100u);
  EXPECT_EQ(lo, 100u);
  EXPECT_EQ(hi, 200u);

  auto mid = store.NearestAtOrBelow(250, &lo, &hi);
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->instret, 200u);
  EXPECT_EQ(lo, 200u);
  EXPECT_EQ(hi, 300u);

  auto past_last = store.NearestAtOrBelow(1000, &lo, &hi);
  ASSERT_NE(past_last, nullptr);
  EXPECT_EQ(past_last->instret, 300u);
  EXPECT_EQ(lo, 300u);
  EXPECT_EQ(hi, std::numeric_limits<std::uint64_t>::max());
}

TEST(CheckpointCacheTest, MemoizesWithinIntervalAndTalliesSavings) {
  CheckpointStore store;
  store.Add(At(100));
  store.Add(At(200));

  CheckpointCache cache(&store);
  auto first = cache.ForTrigger(150);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->instret, 100u);
  // Same stride interval: the memoized snapshot, no re-search needed.
  EXPECT_EQ(cache.ForTrigger(199), first);
  auto next = cache.ForTrigger(250);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->instret, 200u);
  // Below every checkpoint: a miss that doesn't count as a fork.
  EXPECT_EQ(cache.ForTrigger(10), nullptr);

  EXPECT_EQ(cache.forks(), 3u);
  EXPECT_EQ(cache.instructions_skipped(), 100u + 100u + 200u);
}

TEST(CheckpointCacheTest, NullStoreMeansEveryLookupMisses) {
  CheckpointCache cache(nullptr);
  EXPECT_EQ(cache.ForTrigger(0), nullptr);
  EXPECT_EQ(cache.ForTrigger(1000), nullptr);
  EXPECT_EQ(cache.forks(), 0u);
  EXPECT_EQ(cache.instructions_skipped(), 0u);
}

// ---- fork vs replay equivalence ---------------------------------------

std::vector<std::string> DumpTable(db::Database& database,
                                   const std::string& table_name) {
  std::vector<std::string> rows;
  const db::Table* table = database.FindTable(table_name);
  if (table == nullptr) return rows;
  for (const db::Row& row : table->rows()) {
    std::string line;
    for (const db::Value& value : row) {
      line += value.Encode();
      line += '\t';
    }
    rows.push_back(std::move(line));
  }
  return rows;
}

class CheckpointForkTest : public ::testing::Test {
 protected:
  // A register-SCIFI campaign with checkpoint_mode stored in the
  // campaign itself; the stride covers the isort reference run (~1679
  // instructions) with several checkpoints.
  static CampaignConfig MakeConfig(std::uint32_t experiments = 40) {
    CampaignConfig config;
    config.name = "ckfork";
    config.workload = "isort";
    config.num_experiments = experiments;
    config.seed = 31;
    config.location_filters = {"cpu.regs.*"};
    config.checkpoint_mode = true;
    config.checkpoint_stride = 200;
    return config;
  }

  static void SetUpDatabase(db::Database& database,
                            const CampaignConfig& config) {
    ASSERT_TRUE(CreateGoofiSchema(database).ok());
    target::ThorRdTarget registrar;
    ASSERT_TRUE(RegisterTargetSystem(database, registrar, "card", "").ok());
    ASSERT_TRUE(StoreCampaign(database, config).ok());
  }

  // Run `config`'s stored campaign with the execution-mode override.
  static CampaignSummary RunWith(db::Database& database,
                                 const CampaignConfig& config,
                                 std::optional<bool> checkpoint) {
    SetUpDatabase(database, config);
    target::ThorRdTarget target;
    CampaignRunner runner(&database, &target);
    runner.set_checkpoint_fork(checkpoint);
    auto summary = runner.Run(config.name);
    EXPECT_TRUE(summary.ok()) << summary.status().ToString();
    return *summary;
  }

  static target::TargetFactory ThorFactory() {
    auto factory = target::BuiltinTargetFactory("thor_rd");
    EXPECT_TRUE(factory.ok());
    return *factory;
  }
};

TEST_F(CheckpointForkTest, ForkedRunLogsTheIdenticalDatabase) {
  const CampaignConfig config = MakeConfig();

  db::Database replay_db;
  const CampaignSummary replay = RunWith(replay_db, config, false);
  EXPECT_EQ(replay.checkpoint_forks, 0u);
  EXPECT_EQ(replay.instructions_skipped, 0u);

  db::Database fork_db;
  const CampaignSummary fork = RunWith(fork_db, config, true);
  EXPECT_GT(fork.checkpoints_recorded, 2u);
  EXPECT_GT(fork.checkpoint_forks, 0u);
  EXPECT_GT(fork.instructions_skipped, 0u);
  EXPECT_EQ(fork.experiments_run, replay.experiments_run);

  // The whole logged row set and the campaign bookkeeping, byte for
  // byte: the mode is pure execution, invisible in the database.
  EXPECT_EQ(DumpTable(fork_db, kLoggedSystemStateTable),
            DumpTable(replay_db, kLoggedSystemStateTable));
  EXPECT_EQ(DumpTable(fork_db, kCampaignDataTable),
            DumpTable(replay_db, kCampaignDataTable));
}

TEST_F(CheckpointForkTest, StoredCheckpointModeEnablesForkWithoutOverride) {
  const CampaignConfig config = MakeConfig(12);
  db::Database database;
  const CampaignSummary summary = RunWith(database, config, std::nullopt);
  EXPECT_GT(summary.checkpoint_forks, 0u);

  // And the override wins over the stored mode in both directions.
  db::Database forced_off;
  EXPECT_EQ(RunWith(forced_off, config, false).checkpoint_forks, 0u);
  EXPECT_EQ(DumpTable(forced_off, kLoggedSystemStateTable),
            DumpTable(database, kLoggedSystemStateTable));
}

TEST_F(CheckpointForkTest, IneligibleCampaignsFallBackToReplay) {
  // Pre-runtime SWIFI injects before the workload starts — there is no
  // pre-trigger replay to skip. The mode must fall back silently.
  CampaignConfig swifi = MakeConfig(10);
  swifi.name = "ck_swifi";
  swifi.technique = target::Technique::kSwifiPreRuntime;
  swifi.location_filters.clear();
  db::Database swifi_fork_db;
  const CampaignSummary swifi_fork = RunWith(swifi_fork_db, swifi, true);
  EXPECT_EQ(swifi_fork.checkpoints_recorded, 0u);
  EXPECT_EQ(swifi_fork.checkpoint_forks, 0u);
  db::Database swifi_replay_db;
  RunWith(swifi_replay_db, swifi, false);
  EXPECT_EQ(DumpTable(swifi_fork_db, kLoggedSystemStateTable),
            DumpTable(swifi_replay_db, kLoggedSystemStateTable));

  // Detail logging traces every pre-trigger instruction; forking over
  // them would lose trace rows, so the mode must decline.
  CampaignConfig detail = MakeConfig(4);
  detail.name = "ck_detail";
  detail.logging_mode = target::LoggingMode::kDetail;
  db::Database detail_fork_db;
  const CampaignSummary detail_fork = RunWith(detail_fork_db, detail, true);
  EXPECT_EQ(detail_fork.checkpoint_forks, 0u);
  db::Database detail_replay_db;
  RunWith(detail_replay_db, detail, false);
  EXPECT_EQ(DumpTable(detail_fork_db, kLoggedSystemStateTable),
            DumpTable(detail_replay_db, kLoggedSystemStateTable));
}

TEST_F(CheckpointForkTest, ParallelForkMatchesSerialReplayAtEveryWorkerCount) {
  const CampaignConfig config = MakeConfig();

  db::Database replay_db;
  RunWith(replay_db, config, false);
  const auto replay_logged = DumpTable(replay_db, kLoggedSystemStateTable);
  const auto replay_campaign = DumpTable(replay_db, kCampaignDataTable);

  for (const std::size_t workers : {1u, 4u, 8u}) {
    db::Database fork_db;
    SetUpDatabase(fork_db, config);
    ParallelCampaignRunner runner(&fork_db, ThorFactory(), workers);
    runner.set_checkpoint_fork(true);
    auto summary = runner.Run(config.name);
    ASSERT_TRUE(summary.ok())
        << workers << " workers: " << summary.status().ToString();
    EXPECT_GT(summary->checkpoint_forks, 0u) << workers;
    EXPECT_GT(summary->instructions_skipped, 0u) << workers;
    EXPECT_EQ(DumpTable(fork_db, kLoggedSystemStateTable), replay_logged)
        << workers << " workers";
    EXPECT_EQ(DumpTable(fork_db, kCampaignDataTable), replay_campaign)
        << workers << " workers";
  }
}

TEST_F(CheckpointForkTest, SupervisionRetriesComposeWithForking) {
  // Scripted target faults force retries and a quarantine replacement
  // mid-campaign; the replacement instance must fork from the same
  // checkpoint and the flaky forked run must match the flaky replay
  // run bit for bit, serially and sharded.
  CampaignConfig config = MakeConfig(24);
  config.name = "ck_flaky";
  config.experiment_timeout_ms = 30'000;
  config.max_retries = 2;
  config.retry_backoff_ms = 1;

  auto make_script = [] {
    auto script = std::make_shared<target::FlakyScript>();
    script->faults[{5, 1}] = target::FlakyFault::kTargetFault;
    script->faults[{13, 1}] = target::FlakyFault::kIo;
    return script;
  };

  db::Database replay_db;
  SetUpDatabase(replay_db, config);
  target::ThorRdTarget replay_target;
  CampaignRunner replay_runner(&replay_db, &replay_target);
  replay_runner.set_target_factory(
      target::MakeFlakyTargetFactory(ThorFactory(), make_script()));
  replay_runner.set_checkpoint_fork(false);
  auto replay = replay_runner.Run("ck_flaky");
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();

  db::Database fork_db;
  SetUpDatabase(fork_db, config);
  target::ThorRdTarget fork_target;
  CampaignRunner fork_runner(&fork_db, &fork_target);
  fork_runner.set_target_factory(
      target::MakeFlakyTargetFactory(ThorFactory(), make_script()));
  fork_runner.set_checkpoint_fork(true);
  auto fork = fork_runner.Run("ck_flaky");
  ASSERT_TRUE(fork.ok()) << fork.status().ToString();

  EXPECT_EQ(fork->experiment_retries, replay->experiment_retries);
  EXPECT_EQ(fork->targets_quarantined, replay->targets_quarantined);
  EXPECT_GT(fork->checkpoint_forks, 0u);
  EXPECT_EQ(DumpTable(fork_db, kLoggedSystemStateTable),
            DumpTable(replay_db, kLoggedSystemStateTable));

  db::Database sharded_db;
  SetUpDatabase(sharded_db, config);
  ParallelCampaignRunner sharded_runner(
      &sharded_db,
      target::MakeFlakyTargetFactory(ThorFactory(), make_script()), 4);
  sharded_runner.set_checkpoint_fork(true);
  auto sharded = sharded_runner.Run("ck_flaky");
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ(DumpTable(sharded_db, kLoggedSystemStateTable),
            DumpTable(replay_db, kLoggedSystemStateTable));
}

TEST_F(CheckpointForkTest, FrameworkTargetForksThroughTheExtrasBlob) {
  // The skeleton target carries its counter machine in
  // Snapshot::extras; forking must reproduce the replay database on it
  // just as on the full simulator.
  CampaignConfig config;
  config.name = "ck_fw";
  config.workload = "fib";
  config.num_experiments = 12;
  config.seed = 23;
  config.target = "framework";
  config.location_filters = {"counter*"};
  config.checkpoint_mode = true;
  config.checkpoint_stride = 5;

  auto run = [&](std::optional<bool> checkpoint, db::Database& database) {
    ASSERT_TRUE(CreateGoofiSchema(database).ok());
    target::FrameworkTarget registrar;
    ASSERT_TRUE(RegisterTargetSystem(database, registrar, "card", "").ok());
    ASSERT_TRUE(StoreCampaign(database, config).ok());
    target::FrameworkTarget target;
    CampaignRunner runner(&database, &target);
    runner.set_checkpoint_fork(checkpoint);
    auto summary = runner.Run("ck_fw");
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    if (checkpoint == std::optional<bool>(true)) {
      EXPECT_GT(summary->checkpoint_forks, 0u);
    }
  };

  db::Database replay_db, fork_db;
  run(false, replay_db);
  run(true, fork_db);
  EXPECT_EQ(DumpTable(fork_db, kLoggedSystemStateTable),
            DumpTable(replay_db, kLoggedSystemStateTable));
}

}  // namespace
}  // namespace goofi::core
