#include "db/table.h"

#include <gtest/gtest.h>

namespace goofi::db {
namespace {

TableSchema PeopleSchema() {
  TableSchema schema("people");
  EXPECT_TRUE(schema.AddColumn({"id", ColumnType::kInteger, false, false,
                                true}).ok());
  EXPECT_TRUE(schema.AddColumn({"name", ColumnType::kText, true, true,
                                false}).ok());
  EXPECT_TRUE(schema.AddColumn({"age", ColumnType::kInteger, false, false,
                                false}).ok());
  return schema;
}

Table MakePopulated() {
  Table table(PeopleSchema());
  EXPECT_TRUE(table.Insert({Value::Integer(1), Value::Text_("ada"),
                            Value::Integer(36)}).ok());
  EXPECT_TRUE(table.Insert({Value::Integer(2), Value::Text_("bob"),
                            Value::Integer(25)}).ok());
  EXPECT_TRUE(table.Insert({Value::Integer(3), Value::Text_("cid"),
                            Value::Null()}).ok());
  return table;
}

TEST(TableTest, InsertAndCount) {
  Table table = MakePopulated();
  EXPECT_EQ(table.row_count(), 3u);
}

TEST(TableTest, PrimaryKeyUnique) {
  Table table = MakePopulated();
  const Status dup = table.Insert(
      {Value::Integer(1), Value::Text_("dup"), Value::Null()});
  EXPECT_EQ(dup.code(), ErrorCode::kConstraintViolation);
  EXPECT_EQ(table.row_count(), 3u);
}

TEST(TableTest, UniqueColumnEnforced) {
  Table table = MakePopulated();
  EXPECT_EQ(table.Insert({Value::Integer(9), Value::Text_("ada"),
                          Value::Null()}).code(),
            ErrorCode::kConstraintViolation);
}

TEST(TableTest, NullsDoNotCollideOnUnique) {
  TableSchema schema("t");
  ASSERT_TRUE(schema.AddColumn({"u", ColumnType::kInteger, false, true,
                                false}).ok());
  Table table(schema);
  EXPECT_TRUE(table.Insert({Value::Null()}).ok());
  EXPECT_TRUE(table.Insert({Value::Null()}).ok());
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, FindByUnique) {
  Table table = MakePopulated();
  const auto found = table.FindByUnique(1, Value::Text_("bob"));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(table.row(*found)[0].AsInteger(), 2);
  EXPECT_FALSE(table.FindByUnique(1, Value::Text_("zed")).has_value());
  EXPECT_FALSE(table.FindByUnique(1, Value::Null()).has_value());
}

TEST(TableTest, FindRowsPredicate) {
  Table table = MakePopulated();
  const auto young = table.FindRows([](const Row& row) {
    return !row[2].is_null() && row[2].AsInteger() < 30;
  });
  ASSERT_EQ(young.size(), 1u);
  EXPECT_EQ(table.row(young[0])[1].AsText(), "bob");
}

TEST(TableTest, ContainsValueIndexedAndScanned) {
  Table table = MakePopulated();
  EXPECT_TRUE(table.ContainsValue(0, Value::Integer(3)));   // indexed
  EXPECT_FALSE(table.ContainsValue(0, Value::Integer(99)));
  EXPECT_TRUE(table.ContainsValue(2, Value::Integer(25)));  // scan
  EXPECT_FALSE(table.ContainsValue(2, Value::Null()));
}

TEST(TableTest, UpdateChangesMatchingRows) {
  Table table = MakePopulated();
  const auto updated = table.Update(
      [](const Row& row) { return row[0].AsInteger() <= 2; },
      {{2, Value::Integer(40)}});
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 2u);
  EXPECT_EQ(table.row(0)[2].AsInteger(), 40);
  EXPECT_EQ(table.row(1)[2].AsInteger(), 40);
}

TEST(TableTest, UpdateIsAllOrNothingOnUniqueViolation) {
  Table table = MakePopulated();
  // Renaming everyone to the same unique name must fail and leave every
  // row untouched.
  const auto updated = table.Update(
      [](const Row&) { return true; }, {{1, Value::Text_("same")}});
  ASSERT_FALSE(updated.ok());
  EXPECT_EQ(updated.status().code(), ErrorCode::kConstraintViolation);
  EXPECT_EQ(table.row(0)[1].AsText(), "ada");
  EXPECT_EQ(table.row(2)[1].AsText(), "cid");
}

TEST(TableTest, UpdateAllowsSwappingToFreedKey) {
  Table table = MakePopulated();
  // 'ada' -> 'dee' frees 'ada'; single-row update to a currently-used
  // key still fails.
  ASSERT_TRUE(table.Update([](const Row& row) {
                             return row[1].AsText() == "ada";
                           },
                           {{1, Value::Text_("dee")}}).ok());
  EXPECT_TRUE(table.FindByUnique(1, Value::Text_("dee")).has_value());
  EXPECT_FALSE(table.FindByUnique(1, Value::Text_("ada")).has_value());
  EXPECT_EQ(table.Update([](const Row& row) {
                            return row[1].AsText() == "bob";
                          },
                          {{1, Value::Text_("dee")}})
                .status()
                .code(),
            ErrorCode::kConstraintViolation);
}

TEST(TableTest, UpdateValidatesTypes) {
  Table table = MakePopulated();
  const auto bad = table.Update([](const Row&) { return true; },
                                {{2, Value::Text_("old")}});
  EXPECT_EQ(bad.status().code(), ErrorCode::kConstraintViolation);
}

TEST(TableTest, UpdateNoMatchesIsZero) {
  Table table = MakePopulated();
  const auto updated = table.Update(
      [](const Row&) { return false; }, {{2, Value::Integer(1)}});
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(*updated, 0u);
}

TEST(TableTest, DeleteRemovesAndReindexes) {
  Table table = MakePopulated();
  const std::size_t removed = table.Delete(
      [](const Row& row) { return row[0].AsInteger() == 2; });
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_FALSE(table.FindByUnique(0, Value::Integer(2)).has_value());
  // Indexes still find the surviving rows after compaction.
  const auto cid = table.FindByUnique(1, Value::Text_("cid"));
  ASSERT_TRUE(cid.has_value());
  EXPECT_EQ(table.row(*cid)[0].AsInteger(), 3);
  // Reinserting the deleted key works.
  EXPECT_TRUE(table.Insert({Value::Integer(2), Value::Text_("new-bob"),
                            Value::Null()}).ok());
}

TEST(TableTest, ClearEmptiesTable) {
  Table table = MakePopulated();
  table.Clear();
  EXPECT_EQ(table.row_count(), 0u);
  EXPECT_TRUE(table.Insert({Value::Integer(1), Value::Text_("ada"),
                            Value::Null()}).ok());
}

TEST(TableTest, InsertValidatesSchema) {
  Table table(PeopleSchema());
  EXPECT_EQ(table.Insert({Value::Integer(1)}).code(),
            ErrorCode::kInvalidArgument);  // arity
  EXPECT_EQ(table.Insert({Value::Integer(1), Value::Null(),
                          Value::Null()}).code(),
            ErrorCode::kConstraintViolation);  // NOT NULL name
}

}  // namespace
}  // namespace goofi::db
