// GOOFI injecting faults into itself: the WAL storage engine driven
// through a fault-injecting WalFile and a scripted sweep of crash
// points. The property under test is the recovery contract of
// db/wal.h — after any torn write, truncated log, or flipped bit,
// reopening the directory restores exactly the state at some commit
// boundary (the last one the damage left intact), never a partial
// batch and never a partial row.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "db/database.h"
#include "db/wal.h"

namespace goofi::db {
namespace {

namespace fs = std::filesystem;

// ---- fault-injecting WalFile -------------------------------------------

// Shared crash plan: the file dies after `remaining` appended bytes.
struct FaultState {
  explicit FaultState(std::uint64_t budget) : remaining(budget) {}
  std::uint64_t remaining;
  bool dead = false;
};

// Decorator over the production log file that models a power cut: the
// first append crossing the byte budget lands only its prefix (a torn
// write) and every operation afterwards fails.
class FaultyFile : public wal::WalFile {
 public:
  FaultyFile(std::unique_ptr<wal::WalFile> inner,
             std::shared_ptr<FaultState> state)
      : inner_(std::move(inner)), state_(std::move(state)) {}

  Status Append(std::string_view bytes) override {
    if (state_->dead) return DataLossError("simulated crash");
    if (bytes.size() <= state_->remaining) {
      state_->remaining -= bytes.size();
      return inner_->Append(bytes);
    }
    const std::string_view torn = bytes.substr(0, state_->remaining);
    state_->remaining = 0;
    state_->dead = true;
    (void)inner_->Append(torn);
    (void)inner_->Sync();
    return DataLossError("simulated crash (torn write)");
  }

  Status Sync() override {
    if (state_->dead) return DataLossError("simulated crash");
    return inner_->Sync();
  }

 private:
  std::unique_ptr<wal::WalFile> inner_;
  std::shared_ptr<FaultState> state_;
};

wal::WalFileFactory FaultyFactory(std::shared_ptr<FaultState> state) {
  return [state](const std::string& path)
             -> Result<std::unique_ptr<wal::WalFile>> {
    auto inner = wal::OpenLogFile(path);
    if (!inner.ok()) return inner.status();
    return std::unique_ptr<wal::WalFile>(
        new FaultyFile(std::move(*inner), state));
  };
}

// ---- scripted workload --------------------------------------------------

// Canonical dump of the full database state; two databases with equal
// dumps hold identical schemas and identical rows in identical order.
std::string DumpDatabase(const Database& database) {
  std::string dump;
  for (const std::string& name : database.TableNames()) {
    const Table* table = database.FindTable(name);
    dump += "== " + name + "\n" + SerializeSchema(table->schema());
    for (const Row& row : table->rows()) {
      for (const Value& value : row) {
        dump += value.Encode();
        dump += '\x1f';
      }
      dump += '\n';
    }
  }
  return dump;
}

// One commit batch of the scripted campaign-like workload. Exercises
// every record type: schema DDL, inserts (with FK links and hostile
// bytes), in-place updates, deletes, and a table drop.
Status ApplyBatch(Database& database, int step) {
  if (step == 0) {
    TableSchema parent("parent");
    RETURN_IF_ERROR(parent.AddColumn(
        {"key", ColumnType::kInteger, false, false, true}));
    RETURN_IF_ERROR(parent.AddColumn({"payload", ColumnType::kText}));
    RETURN_IF_ERROR(database.CreateTable(parent));

    TableSchema event("event");
    RETURN_IF_ERROR(event.AddColumn(
        {"id", ColumnType::kInteger, false, false, true}));
    RETURN_IF_ERROR(event.AddColumn({"parent_key", ColumnType::kInteger}));
    RETURN_IF_ERROR(event.AddColumn(
        {"campaign", ColumnType::kText, false, false, false, true}));
    RETURN_IF_ERROR(event.AddColumn({"note", ColumnType::kText}));
    RETURN_IF_ERROR(event.AddForeignKey({"parent_key", "parent", "key"}));
    RETURN_IF_ERROR(database.CreateTable(event));

    for (int k = 0; k < 3; ++k) {
      RETURN_IF_ERROR(database.Insert(
          "parent",
          {Value::Integer(k), Value::Text_("p" + std::to_string(k))}));
    }
    return Status::Ok();
  }

  if (step == 2) {
    TableSchema scratch("scratch");
    RETURN_IF_ERROR(scratch.AddColumn(
        {"n", ColumnType::kInteger, false, false, true}));
    RETURN_IF_ERROR(database.CreateTable(scratch));
    for (int k = 0; k < 5; ++k) {
      RETURN_IF_ERROR(database.Insert("scratch", {Value::Integer(k)}));
    }
  }
  if (step == 8) RETURN_IF_ERROR(database.DropTable("scratch"));

  const int base = step * 10;
  for (int k = 0; k < 4; ++k) {
    RETURN_IF_ERROR(database.Insert(
        "event",
        {Value::Integer(base + k), Value::Integer((base + k) % 3),
         Value::Text_("c" + std::to_string(k % 3)),
         Value::Text_("note\t\n" +
                      std::string(1, static_cast<char>(step * 16 + k)))}));
  }
  if (step % 3 == 0) {
    RETURN_IF_ERROR(
        database
            .Update(
                "event",
                [](const Row& row) { return row[2].AsText() == "c1"; },
                {{3, Value::Text_("touched" + std::to_string(step))}})
            .status());
  }
  if (step % 4 == 1 && step > 1) {
    RETURN_IF_ERROR(
        database
            .Delete("event",
                    [](const Row& row) {
                      return row[0].AsInteger() % 5 == 0;
                    })
            .status());
  }
  return Status::Ok();
}

constexpr int kBatches = 12;

// A completed scripted run: the WAL directory, the raw log bytes, and
// the (log size, state dump) pair at every commit boundary. Boundary 0
// is the empty state snapshotted by AttachWal.
struct ScriptedRun {
  std::string dir;
  std::string log_bytes;
  std::vector<std::pair<std::uint64_t, std::string>> boundaries;
};

void BuildScriptedRun(const fs::path& dir, ScriptedRun* out) {
  fs::remove_all(dir);
  out->dir = dir.string();
  Database database;
  ASSERT_TRUE(database.AttachWal(out->dir).ok());
  database.set_compaction_threshold(0);  // keep every record in the log
  out->boundaries.emplace_back(0, DumpDatabase(database));
  for (int step = 0; step < kBatches; ++step) {
    ASSERT_TRUE(ApplyBatch(database, step).ok()) << "step " << step;
    ASSERT_TRUE(database.Commit().ok()) << "step " << step;
    out->boundaries.emplace_back(fs::file_size(dir / "wal.log"),
                                 DumpDatabase(database));
  }
  auto log = wal::ReadFileBytes((dir / "wal.log").string());
  ASSERT_TRUE(log.ok());
  out->log_bytes = *std::move(log);
  ASSERT_EQ(out->log_bytes.size(), out->boundaries.back().first);
}

// Clone a WAL directory, substituting the given log bytes (a truncated
// or corrupted variant of the original).
void CloneWalDirectory(const std::string& src, const std::string& dst,
                       const std::string& log_bytes) {
  fs::remove_all(dst);
  fs::create_directories(dst);
  for (const auto& entry : fs::directory_iterator(src)) {
    const std::string name = entry.path().filename().string();
    if (name == "wal.log") continue;
    fs::copy_file(entry.path(), fs::path(dst) / name);
  }
  std::ofstream log(fs::path(dst) / "wal.log", std::ios::binary);
  log.write(log_bytes.data(),
            static_cast<std::streamsize>(log_bytes.size()));
}

// The state the recovery contract promises for a log cut at `cut`
// bytes: the largest commit boundary at or below the cut.
std::string ExpectedAtCut(const ScriptedRun& run, std::uint64_t cut) {
  std::string expected;
  for (const auto& [offset, dump] : run.boundaries) {
    if (offset <= cut) expected = dump;
  }
  return expected;
}

// ---- the crash sweeps ---------------------------------------------------

TEST(WalCrashTest, CutPointSweepRecoversToLastCommit) {
  const fs::path base = fs::temp_directory_path() / "goofi_wal_cut";
  ScriptedRun run;
  BuildScriptedRun(base / "full", &run);

  const std::uint64_t total = run.log_bytes.size();
  std::set<std::uint64_t> cuts;
  const std::uint64_t stride = std::max<std::uint64_t>(1, total / 384);
  for (std::uint64_t cut = 0; cut <= total; cut += stride) cuts.insert(cut);
  // Dense coverage around every commit boundary, where the torn-tail /
  // exact-frame-end distinctions live.
  for (const auto& [offset, dump] : run.boundaries) {
    for (std::uint64_t delta = 0; delta <= 3; ++delta) {
      if (offset + delta <= total) cuts.insert(offset + delta);
      if (offset >= delta) cuts.insert(offset - delta);
    }
  }
  ASSERT_GE(cuts.size(), 100u) << "sweep must cover >= 100 crash points";

  const std::string copy = (base / "cut").string();
  for (const std::uint64_t cut : cuts) {
    CloneWalDirectory(run.dir, copy, run.log_bytes.substr(0, cut));
    auto reopened = Database::Open(copy);
    ASSERT_TRUE(reopened.ok())
        << "cut=" << cut << ": " << reopened.status().ToString();
    EXPECT_EQ(DumpDatabase(*reopened), ExpectedAtCut(run, cut))
        << "cut=" << cut;
  }
  fs::remove_all(base);
}

TEST(WalCrashTest, TornWritesRecoverToLastSuccessfulCommit) {
  const fs::path base = fs::temp_directory_path() / "goofi_wal_torn";
  fs::remove_all(base);

  // Size the budget sweep off an undamaged run.
  ScriptedRun intact;
  BuildScriptedRun(base / "intact", &intact);
  const std::uint64_t appended =
      intact.log_bytes.size() - wal::kWalHeaderSize;

  constexpr int kBudgets = 40;
  for (int i = 0; i <= kBudgets; ++i) {
    // Unaligned budgets so most crashes land mid-frame.
    const std::uint64_t budget =
        appended * static_cast<std::uint64_t>(i) / kBudgets +
        static_cast<std::uint64_t>(i % 7);
    const std::string dir = (base / ("budget" + std::to_string(i))).string();
    fs::remove_all(dir);

    auto state = std::make_shared<FaultState>(budget);
    Database database;
    ASSERT_TRUE(database.AttachWal(dir, FaultyFactory(state)).ok());
    database.set_compaction_threshold(0);
    std::string last_committed = DumpDatabase(database);
    bool crashed = false;
    for (int step = 0; step < kBatches && !crashed; ++step) {
      ASSERT_TRUE(ApplyBatch(database, step).ok());
      if (database.Commit().ok()) {
        last_committed = DumpDatabase(database);
      } else {
        crashed = true;
      }
    }
    // Reopen with the real file: recovery must land exactly on the
    // last group commit that fully reached the disk.
    auto reopened = Database::Open(dir);
    ASSERT_TRUE(reopened.ok())
        << "budget=" << budget << ": " << reopened.status().ToString();
    EXPECT_EQ(DumpDatabase(*reopened), last_committed)
        << "budget=" << budget << " crashed=" << crashed;
    fs::remove_all(dir);
  }
  fs::remove_all(base);
}

TEST(WalCrashTest, BitFlipsNeverExposePartialBatches) {
  const fs::path base = fs::temp_directory_path() / "goofi_wal_flip";
  ScriptedRun run;
  BuildScriptedRun(base / "full", &run);

  std::set<std::string> committed_states;
  for (const auto& [offset, dump] : run.boundaries) {
    committed_states.insert(dump);
  }

  const std::uint64_t total = run.log_bytes.size();
  std::set<std::uint64_t> positions{0, 4, 8, 12, 16, 23};  // header fields
  const std::uint64_t stride = std::max<std::uint64_t>(1, total / 64);
  for (std::uint64_t pos = 0; pos < total; pos += stride) {
    positions.insert(pos);
  }

  const std::string copy = (base / "flip").string();
  for (const std::uint64_t pos : positions) {
    std::string corrupted = run.log_bytes;
    corrupted[pos] ^= static_cast<char>(1u << (pos % 8));
    CloneWalDirectory(run.dir, copy, corrupted);
    auto reopened = Database::Open(copy);
    ASSERT_TRUE(reopened.ok())
        << "flip at " << pos << ": " << reopened.status().ToString();
    // Whatever the flip hit — header, length, CRC, payload — recovery
    // lands on SOME commit boundary, never between two.
    EXPECT_EQ(committed_states.count(DumpDatabase(*reopened)), 1u)
        << "flip at byte " << pos << " exposed a non-committed state";
  }
  fs::remove_all(base);
}

TEST(WalCrashTest, CompactionCrashWindowFallsBackToSnapshots) {
  const fs::path base = fs::temp_directory_path() / "goofi_wal_compact";
  ScriptedRun run;
  BuildScriptedRun(base / "full", &run);
  const std::string final_state = run.boundaries.back().second;

  {
    auto database = Database::Open(run.dir);
    ASSERT_TRUE(database.ok());
    ASSERT_TRUE(database->Compact().ok());
    EXPECT_EQ(database->generation(), 1u);
    EXPECT_EQ(DumpDatabase(*database), final_state);
  }

  // A crash between the manifest rename (generation 1) and the log
  // replacement leaves the old generation-0 log beside new snapshots.
  // The manifest is the commit point: the stale log must be ignored.
  {
    std::ofstream log(fs::path(run.dir) / "wal.log", std::ios::binary);
    log.write(run.log_bytes.data(),
              static_cast<std::streamsize>(run.log_bytes.size()));
  }
  auto recovered = Database::Open(run.dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(DumpDatabase(*recovered), final_state);
  EXPECT_EQ(recovered->generation(), 1u);

  // Snapshot damage, by contrast, is NOT silently recoverable: a bit
  // flip inside a checksummed snapshot must surface as an error, not
  // as wrong rows.
  const fs::path snap = fs::path(run.dir) / "event.1.snap";
  ASSERT_TRUE(fs::exists(snap));
  auto bytes = wal::ReadFileBytes(snap.string());
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x10;
  ASSERT_TRUE(wal::WriteFileAtomic(snap.string(), corrupted).ok());
  auto damaged = Database::Open(run.dir);
  EXPECT_FALSE(damaged.ok());
  fs::remove_all(base);
}

}  // namespace
}  // namespace goofi::db
