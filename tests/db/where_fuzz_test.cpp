// Property sweep for the WHERE evaluator: random boolean expression
// trees are rendered to SQL text, parsed, and executed; the surviving
// row set must match a host-side oracle implementing SQL's three-valued
// logic directly. Exercises parser precedence, NULL semantics, NOT/IN/
// BETWEEN/LIKE and the executor's binding in one sweep.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <set>

#include "db/sql/executor.h"
#include "util/rng.h"
#include "util/strings.h"

namespace goofi::db::sql {
namespace {

struct TestRow {
  std::int64_t id;
  std::optional<std::string> grp;
  std::optional<std::int64_t> score;
};

// A rendered predicate plus its oracle.
struct Predicate {
  std::string sql;
  std::function<std::optional<bool>(const TestRow&)> eval;
};

Predicate RandomLeaf(goofi::Rng& rng) {
  const char* groups[] = {"a", "b", "c"};
  switch (rng.NextBelow(7)) {
    case 0: {  // id cmp k
      const std::int64_t k = static_cast<std::int64_t>(rng.NextBelow(20));
      const char* ops[] = {"=", "!=", "<", "<=", ">", ">="};
      const int op = static_cast<int>(rng.NextBelow(6));
      return {"id " + std::string(ops[op]) + " " + std::to_string(k),
              [k, op](const TestRow& row) -> std::optional<bool> {
                switch (op) {
                  case 0: return row.id == k;
                  case 1: return row.id != k;
                  case 2: return row.id < k;
                  case 3: return row.id <= k;
                  case 4: return row.id > k;
                  default: return row.id >= k;
                }
              }};
    }
    case 1: {  // grp = 'x'
      const std::string g = groups[rng.NextBelow(3)];
      return {"grp = '" + g + "'",
              [g](const TestRow& row) -> std::optional<bool> {
                if (!row.grp) return std::nullopt;
                return *row.grp == g;
              }};
    }
    case 2:  // grp IS NULL
      return {"grp IS NULL", [](const TestRow& row) -> std::optional<bool> {
                return !row.grp.has_value();
              }};
    case 3: {  // score BETWEEN lo AND hi (maybe negated)
      const std::int64_t lo = static_cast<std::int64_t>(rng.NextBelow(50));
      const std::int64_t hi = lo + static_cast<std::int64_t>(
                                       rng.NextBelow(40));
      const bool negated = rng.NextBool();
      return {StrFormat("score %sBETWEEN %lld AND %lld",
                        negated ? "NOT " : "", static_cast<long long>(lo),
                        static_cast<long long>(hi)),
              [lo, hi, negated](const TestRow& row)
                  -> std::optional<bool> {
                if (!row.score) return std::nullopt;
                const bool in = *row.score >= lo && *row.score <= hi;
                return negated ? !in : in;
              }};
    }
    case 4: {  // grp IN ('a', 'c') (maybe negated)
      const bool negated = rng.NextBool();
      return {std::string("grp ") + (negated ? "NOT " : "") +
                  "IN ('a', 'c')",
              [negated](const TestRow& row) -> std::optional<bool> {
                if (!row.grp) return std::nullopt;
                const bool in = *row.grp == "a" || *row.grp == "c";
                return negated ? !in : in;
              }};
    }
    case 5: {  // grp LIKE 'pattern'
      const bool negated = rng.NextBool();
      return {std::string("grp ") + (negated ? "NOT " : "") + "LIKE '_'",
              [negated](const TestRow& row) -> std::optional<bool> {
                if (!row.grp) return std::nullopt;
                const bool match = row.grp->size() == 1;
                return negated ? !match : match;
              }};
    }
    default:  // score IS NOT NULL
      return {"score IS NOT NULL",
              [](const TestRow& row) -> std::optional<bool> {
                return row.score.has_value();
              }};
  }
}

Predicate RandomTree(goofi::Rng& rng, int depth) {
  if (depth == 0 || rng.NextBool(0.4)) return RandomLeaf(rng);
  switch (rng.NextBelow(3)) {
    case 0: {  // AND
      Predicate lhs = RandomTree(rng, depth - 1);
      Predicate rhs = RandomTree(rng, depth - 1);
      return {"(" + lhs.sql + " AND " + rhs.sql + ")",
              [l = lhs.eval, r = rhs.eval](const TestRow& row)
                  -> std::optional<bool> {
                const auto a = l(row);
                const auto b = r(row);
                if (a.has_value() && !*a) return false;
                if (b.has_value() && !*b) return false;
                if (!a.has_value() || !b.has_value()) return std::nullopt;
                return true;
              }};
    }
    case 1: {  // OR
      Predicate lhs = RandomTree(rng, depth - 1);
      Predicate rhs = RandomTree(rng, depth - 1);
      return {"(" + lhs.sql + " OR " + rhs.sql + ")",
              [l = lhs.eval, r = rhs.eval](const TestRow& row)
                  -> std::optional<bool> {
                const auto a = l(row);
                const auto b = r(row);
                if (a.has_value() && *a) return true;
                if (b.has_value() && *b) return true;
                if (!a.has_value() || !b.has_value()) return std::nullopt;
                return false;
              }};
    }
    default: {  // NOT
      Predicate inner = RandomTree(rng, depth - 1);
      return {"NOT (" + inner.sql + ")",
              [f = inner.eval](const TestRow& row)
                  -> std::optional<bool> {
                const auto v = f(row);
                if (!v.has_value()) return std::nullopt;
                return !*v;
              }};
    }
  }
}

class WhereFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WhereFuzz, ExecutorAgreesWithOracle) {
  goofi::Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 19);

  // Build a table with NULL-rich rows.
  Database database;
  ASSERT_TRUE(db::sql::ExecuteSql(
                  database,
                  "CREATE TABLE t (id INTEGER PRIMARY KEY, grp TEXT, "
                  "score INTEGER)")
                  .ok());
  std::vector<TestRow> rows;
  const char* groups[] = {"a", "b", "c", "ab"};
  for (std::int64_t id = 0; id < 40; ++id) {
    TestRow row;
    row.id = id;
    if (!rng.NextBool(0.25)) row.grp = groups[rng.NextBelow(4)];
    if (!rng.NextBool(0.25)) {
      row.score = static_cast<std::int64_t>(rng.NextBelow(100));
    }
    std::vector<Value> values = {
        Value::Integer(row.id),
        row.grp ? Value::Text_(*row.grp) : Value::Null(),
        row.score ? Value::Integer(*row.score) : Value::Null()};
    ASSERT_TRUE(database.Insert("t", std::move(values)).ok());
    rows.push_back(std::move(row));
  }

  for (int round = 0; round < 60; ++round) {
    const Predicate predicate = RandomTree(rng, 3);
    auto result = ExecuteSql(database,
                             "SELECT id FROM t WHERE " + predicate.sql);
    ASSERT_TRUE(result.ok()) << predicate.sql << " -> "
                             << result.status().ToString();
    std::set<std::int64_t> got;
    for (const Row& row : result->rows) got.insert(row[0].AsInteger());
    std::set<std::int64_t> expected;
    for (const TestRow& row : rows) {
      const auto verdict = predicate.eval(row);
      if (verdict.has_value() && *verdict) expected.insert(row.id);
    }
    EXPECT_EQ(got, expected) << predicate.sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WhereFuzz, ::testing::Range(0, 8));

}  // namespace
}  // namespace goofi::db::sql
