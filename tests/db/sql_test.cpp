#include "db/sql/executor.h"

#include <gtest/gtest.h>

#include "db/sql/lexer.h"
#include "db/sql/parser.h"

namespace goofi::db::sql {
namespace {

// ---------------------------------------------------------------- lexer --

TEST(SqlLexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a, 42 -1.5 'it''s' x'ab' <= != ;");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  EXPECT_TRUE(t[0].IsKeyword("select"));
  EXPECT_EQ(t[1].type, TokenType::kIdentifier);
  EXPECT_TRUE(t[2].IsSymbol(","));
  EXPECT_EQ(t[3].integer, 42);
  EXPECT_TRUE(t[4].IsSymbol("-"));
  EXPECT_DOUBLE_EQ(t[5].real, 1.5);
  EXPECT_EQ(t[6].type, TokenType::kString);
  EXPECT_EQ(t[6].text, "it's");
  EXPECT_EQ(t[7].type, TokenType::kBlob);
  EXPECT_EQ(t[7].text, "\xab");
  EXPECT_TRUE(t[8].IsSymbol("<="));
  EXPECT_TRUE(t[9].IsSymbol("!="));
  EXPECT_TRUE(t[10].IsSymbol(";"));
  EXPECT_EQ(t[11].type, TokenType::kEnd);
}

TEST(SqlLexerTest, LineComments) {
  auto tokens = Tokenize("SELECT -- the whole row\n *");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("*"));
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("x'zz'").ok());
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(SqlLexerTest, HexIntegerLiteral) {
  auto tokens = Tokenize("0x10");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].integer, 16);
}

// --------------------------------------------------------------- parser --

TEST(SqlParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseStatement("SELECT * FROM t extra").ok());
}

TEST(SqlParserTest, ParseErrors) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("SELEC * FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FORM t").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES (1,)").ok());
  EXPECT_FALSE(ParseStatement("CREATE TABLE t ()").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t WHERE a ? 3").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM t LIMIT -2").ok());
}

TEST(SqlParserTest, ScriptSplitsStatements) {
  auto script = ParseScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1);;");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->size(), 2u);
}

// ------------------------------------------------------------- executor --

class SqlExecTest : public ::testing::Test {
 protected:
  // `wl` and `outcome` carry secondary indexes so the existing SELECTs
  // below double as index-consistency proofs: Exec() runs every SELECT
  // twice — index-assisted and full-scan — and requires row-for-row
  // identical results.
  void SetUp() override {
    Exec("CREATE TABLE runs (id INTEGER PRIMARY KEY, "
         "wl TEXT NOT NULL INDEXED, outcome TEXT INDEXED, score REAL)");
    Exec("INSERT INTO runs VALUES (1, 'isort', 'detected', 0.5)");
    Exec("INSERT INTO runs VALUES (2, 'isort', 'latent', 1.5)");
    Exec("INSERT INTO runs (id, wl) VALUES (3, 'matmul')");
    Exec("INSERT INTO runs VALUES (4, 'matmul', 'detected', 2.0), "
         "(5, 'crc32', 'escaped', 4.5)");
  }

  void TearDown() override { SetIndexScanEnabled(true); }

  static bool IsSelect(const std::string& sql) {
    const std::size_t start = sql.find_first_not_of(" \t\n");
    return start != std::string::npos &&
           (sql.compare(start, 6, "SELECT") == 0 ||
            sql.compare(start, 6, "select") == 0);
  }

  static std::string EncodeRows(const QueryResult& result) {
    std::string encoded;
    for (const Row& row : result.rows) {
      for (const Value& value : row) {
        encoded += value.Encode();
        encoded += '\x1f';
      }
      encoded += '\n';
    }
    return encoded;
  }

  QueryResult Exec(const std::string& sql) {
    SetIndexScanEnabled(true);
    auto result = ExecuteSql(database_, sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    if (result.ok() && IsSelect(sql)) {
      SetIndexScanEnabled(false);
      auto scanned = ExecuteSql(database_, sql);
      SetIndexScanEnabled(true);
      EXPECT_TRUE(scanned.ok()) << sql;
      if (scanned.ok()) {
        EXPECT_EQ(scanned->columns, result->columns) << sql;
        EXPECT_EQ(EncodeRows(*scanned), EncodeRows(*result))
            << sql << " (index-assisted vs full scan)";
      }
    }
    return result.ok() ? *result : QueryResult{};
  }

  Status ExecStatus(const std::string& sql) {
    return ExecuteSql(database_, sql).status();
  }

  Database database_;
};

TEST_F(SqlExecTest, SelectStar) {
  const QueryResult result = Exec("SELECT * FROM runs");
  EXPECT_EQ(result.columns.size(), 4u);
  EXPECT_EQ(result.rows.size(), 5u);
}

TEST_F(SqlExecTest, SelectProjection) {
  const QueryResult result = Exec("SELECT wl, id FROM runs WHERE id = 3");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.columns, (std::vector<std::string>{"wl", "id"}));
  EXPECT_EQ(result.rows[0][0].AsText(), "matmul");
  EXPECT_EQ(result.rows[0][1].AsInteger(), 3);
}

TEST_F(SqlExecTest, WhereConjunction) {
  const QueryResult result = Exec(
      "SELECT id FROM runs WHERE wl = 'isort' AND outcome = 'latent'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInteger(), 2);
}

TEST_F(SqlExecTest, WhereComparisons) {
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE score > 1.0").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE score >= 1.5").rows.size(), 3u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE id != 1").rows.size(), 4u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE id <> 1").rows.size(), 4u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE score < 0").rows.size(), 0u);
}

TEST_F(SqlExecTest, NullSemantics) {
  // Comparisons with NULL cells never match; IS NULL does.
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE outcome = 'detected'")
                .rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE outcome IS NULL").rows.size(),
            1u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE outcome IS NOT NULL")
                .rows.size(),
            4u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE outcome != 'detected'")
                .rows.size(),
            2u);  // NULL row excluded
}

TEST_F(SqlExecTest, Like) {
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE wl LIKE 'i%'").rows.size(), 2u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE wl LIKE '_sort'").rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE wl LIKE 'sort'").rows.size(),
            0u);
}

TEST_F(SqlExecTest, OrExpression) {
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE wl = 'crc32' OR wl = 'matmul'")
                .rows.size(),
            3u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE id = 1 OR id = 2 OR id = 5")
                .rows.size(),
            3u);
}

TEST_F(SqlExecTest, AndBindsTighterThanOr) {
  // a OR b AND c  ==  a OR (b AND c)
  const QueryResult result = Exec(
      "SELECT id FROM runs WHERE id = 5 OR wl = 'isort' AND outcome = "
      "'latent'");
  ASSERT_EQ(result.rows.size(), 2u);  // id 5 and id 2
}

TEST_F(SqlExecTest, ParenthesesOverridePrecedence) {
  const QueryResult result = Exec(
      "SELECT id FROM runs WHERE (id = 5 OR wl = 'isort') AND outcome = "
      "'latent'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInteger(), 2);
}

TEST_F(SqlExecTest, NotExpression) {
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE NOT wl = 'isort'").rows.size(),
            3u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE NOT (id = 1 OR id = 2)")
                .rows.size(),
            3u);
  // NOT over an UNKNOWN comparison stays UNKNOWN: the NULL-outcome row
  // (id 3) is excluded both ways.
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE NOT outcome = 'detected'")
                .rows.size(),
            2u);
}

TEST_F(SqlExecTest, InList) {
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE id IN (1, 3, 5)").rows.size(),
            3u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE wl IN ('crc32')").rows.size(),
            1u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE id NOT IN (1, 2)").rows.size(),
            3u);
  // NULL cell: x IN (...) is UNKNOWN -> excluded, even under NOT IN.
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE outcome IN ('detected', "
                 "'latent')").rows.size(),
            3u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE outcome NOT IN ('detected', "
                 "'latent')").rows.size(),
            1u);  // only 'escaped'; the NULL row is UNKNOWN
}

TEST_F(SqlExecTest, InListWithNullElement) {
  // 'escaped' NOT IN ('detected', NULL) is UNKNOWN per SQL.
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE outcome NOT IN ('detected', "
                 "NULL)").rows.size(),
            0u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE outcome IN ('detected', NULL)")
                .rows.size(),
            2u);
}

TEST_F(SqlExecTest, Between) {
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE score BETWEEN 1.0 AND 2.0")
                .rows.size(),
            2u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE id BETWEEN 2 AND 4")
                .rows.size(),
            3u);
  EXPECT_EQ(Exec("SELECT id FROM runs WHERE score NOT BETWEEN 1.0 AND 2.0")
                .rows.size(),
            2u);  // 0.5 and 4.5; the NULL-score row is UNKNOWN
}

TEST_F(SqlExecTest, ComplexBooleanInUpdateAndDelete) {
  QueryResult updated = Exec(
      "UPDATE runs SET outcome = 'x' WHERE wl = 'isort' AND "
      "(score BETWEEN 0 AND 1 OR id IN (2))");
  EXPECT_EQ(updated.affected_rows, 2u);
  QueryResult deleted =
      Exec("DELETE FROM runs WHERE NOT outcome = 'x' AND outcome IS NOT "
           "NULL");
  EXPECT_EQ(deleted.affected_rows, 2u);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM runs").rows[0][0].AsInteger(), 3);
}

TEST_F(SqlExecTest, BooleanParseErrors) {
  EXPECT_FALSE(ExecStatus("SELECT id FROM runs WHERE id NOT = 1").ok());
  EXPECT_FALSE(ExecStatus("SELECT id FROM runs WHERE id IN ()").ok());
  EXPECT_FALSE(ExecStatus("SELECT id FROM runs WHERE (id = 1").ok());
  EXPECT_FALSE(
      ExecStatus("SELECT id FROM runs WHERE id BETWEEN 1").ok());
  EXPECT_FALSE(ExecStatus("SELECT id FROM runs WHERE OR id = 1").ok());
}

TEST_F(SqlExecTest, OrderByAndLimit) {
  const QueryResult desc =
      Exec("SELECT id FROM runs ORDER BY score DESC LIMIT 2");
  ASSERT_EQ(desc.rows.size(), 2u);
  EXPECT_EQ(desc.rows[0][0].AsInteger(), 5);
  EXPECT_EQ(desc.rows[1][0].AsInteger(), 4);
  // Order by a column that is not selected.
  const QueryResult by_wl = Exec("SELECT id FROM runs ORDER BY wl");
  EXPECT_EQ(by_wl.rows.front()[0].AsInteger(), 5);  // crc32 sorts first
}

TEST_F(SqlExecTest, Aggregates) {
  const QueryResult counts = Exec("SELECT COUNT(*) FROM runs");
  ASSERT_EQ(counts.rows.size(), 1u);
  EXPECT_EQ(counts.rows[0][0].AsInteger(), 5);
  // COUNT(col) skips NULLs.
  EXPECT_EQ(Exec("SELECT COUNT(outcome) FROM runs").rows[0][0].AsInteger(),
            4);
  EXPECT_DOUBLE_EQ(Exec("SELECT SUM(score) FROM runs").rows[0][0].AsReal(),
                   8.5);
  EXPECT_DOUBLE_EQ(Exec("SELECT AVG(score) FROM runs").rows[0][0].AsReal(),
                   8.5 / 4);
  EXPECT_DOUBLE_EQ(Exec("SELECT MIN(score) FROM runs").rows[0][0].AsReal(),
                   0.5);
  EXPECT_DOUBLE_EQ(Exec("SELECT MAX(score) FROM runs").rows[0][0].AsReal(),
                   4.5);
}

TEST_F(SqlExecTest, AggregateOverEmptySelection) {
  const QueryResult result =
      Exec("SELECT COUNT(*), SUM(score) FROM runs WHERE id > 100");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInteger(), 0);
  EXPECT_TRUE(result.rows[0][1].is_null());
}

TEST_F(SqlExecTest, GroupBy) {
  const QueryResult result = Exec(
      "SELECT wl, COUNT(*), MAX(score) FROM runs GROUP BY wl "
      "ORDER BY wl");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][0].AsText(), "crc32");
  EXPECT_EQ(result.rows[0][1].AsInteger(), 1);
  EXPECT_EQ(result.rows[1][0].AsText(), "isort");
  EXPECT_EQ(result.rows[1][1].AsInteger(), 2);
  EXPECT_DOUBLE_EQ(result.rows[1][2].AsReal(), 1.5);
  EXPECT_EQ(result.rows[2][0].AsText(), "matmul");
  EXPECT_EQ(result.rows[2][1].AsInteger(), 2);
}

TEST_F(SqlExecTest, GroupByRejectsUngroupedColumn) {
  EXPECT_FALSE(
      ExecStatus("SELECT outcome, COUNT(*) FROM runs GROUP BY wl").ok());
  EXPECT_FALSE(ExecStatus("SELECT wl, score FROM runs GROUP BY wl").ok());
}

TEST_F(SqlExecTest, UpdateAndDelete) {
  QueryResult updated =
      Exec("UPDATE runs SET outcome = 'overwritten' WHERE outcome IS NULL");
  EXPECT_EQ(updated.affected_rows, 1u);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM runs WHERE outcome = 'overwritten'")
                .rows[0][0]
                .AsInteger(),
            1);
  QueryResult deleted = Exec("DELETE FROM runs WHERE wl = 'isort'");
  EXPECT_EQ(deleted.affected_rows, 2u);
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM runs").rows[0][0].AsInteger(), 3);
}

TEST_F(SqlExecTest, InsertNegativeNumbers) {
  Exec("INSERT INTO runs VALUES (6, 'neg', NULL, -2.5)");
  EXPECT_DOUBLE_EQ(
      Exec("SELECT score FROM runs WHERE id = 6").rows[0][0].AsReal(), -2.5);
}

TEST_F(SqlExecTest, ConstraintErrorsSurface) {
  EXPECT_EQ(ExecStatus("INSERT INTO runs VALUES (1, 'dup', NULL, NULL)")
                .code(),
            ErrorCode::kConstraintViolation);
  EXPECT_EQ(ExecStatus("INSERT INTO runs VALUES (9, NULL, NULL, NULL)")
                .code(),
            ErrorCode::kConstraintViolation);
}

TEST_F(SqlExecTest, UnknownColumnsAndTables) {
  EXPECT_EQ(ExecStatus("SELECT nope FROM runs").code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(ExecStatus("SELECT * FROM ghost").code(), ErrorCode::kNotFound);
  EXPECT_EQ(ExecStatus("SELECT * FROM runs WHERE ghost = 1").code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(SqlExecTest, CreateWithForeignKeyAndDrop) {
  EXPECT_TRUE(ExecStatus(
      "CREATE TABLE notes (id INTEGER PRIMARY KEY, run_id INTEGER, "
      "FOREIGN KEY (run_id) REFERENCES runs(id))").ok());
  EXPECT_TRUE(ExecStatus("INSERT INTO notes VALUES (1, 2)").ok());
  EXPECT_EQ(ExecStatus("INSERT INTO notes VALUES (2, 99)").code(),
            ErrorCode::kConstraintViolation);
  EXPECT_EQ(ExecStatus("DROP TABLE runs").code(),
            ErrorCode::kConstraintViolation);
  EXPECT_TRUE(ExecStatus("DROP TABLE notes").ok());
  EXPECT_TRUE(ExecStatus("DROP TABLE runs").ok());
}

TEST_F(SqlExecTest, AsciiTableRendering) {
  const QueryResult result =
      Exec("SELECT id, wl FROM runs WHERE id = 1");
  const std::string table = result.ToAsciiTable();
  EXPECT_NE(table.find("id"), std::string::npos);
  EXPECT_NE(table.find("'isort'"), std::string::npos);
  EXPECT_NE(table.find("--"), std::string::npos);
}

TEST_F(SqlExecTest, ExecuteScriptReturnsLastResult) {
  auto result = ExecuteScript(
      database_,
      "INSERT INTO runs VALUES (10, 'x', NULL, NULL);"
      "SELECT COUNT(*) FROM runs;");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInteger(), 6);
}

// --------------------------------------------------- secondary indexes --

TEST_F(SqlExecTest, EqualityOnIndexedColumnUsesIndex) {
  ResetIndexScanCount();
  const QueryResult by_wl = Exec("SELECT id FROM runs WHERE wl = 'isort'");
  EXPECT_EQ(by_wl.rows.size(), 2u);
  EXPECT_GE(IndexScanCount(), 1u);

  // The primary key goes through the unique index on the same path.
  ResetIndexScanCount();
  Exec("SELECT wl FROM runs WHERE id = 4");
  EXPECT_GE(IndexScanCount(), 1u);

  // An equality leaf under AND still narrows via the index even though
  // the other conjunct needs per-row evaluation.
  ResetIndexScanCount();
  const QueryResult conj =
      Exec("SELECT id FROM runs WHERE outcome = 'detected' AND score > 1.0");
  ASSERT_EQ(conj.rows.size(), 1u);
  EXPECT_EQ(conj.rows[0][0].AsInteger(), 4);
  EXPECT_GE(IndexScanCount(), 1u);
}

TEST_F(SqlExecTest, IndexNeverAnswersDisjunctionsOrNegations) {
  // OR / NOT / IS NULL must not be narrowed by one equality leaf; the
  // executor falls back to the scan (Exec() still proves the results
  // match a forced scan).
  ResetIndexScanCount();
  Exec("SELECT id FROM runs WHERE wl = 'isort' OR outcome = 'escaped'");
  Exec("SELECT id FROM runs WHERE NOT (wl = 'isort')");
  Exec("SELECT id FROM runs WHERE outcome IS NULL");
  EXPECT_EQ(IndexScanCount(), 0u);
}

TEST_F(SqlExecTest, IndexSurvivesUpdateOfIndexedColumn) {
  // Regression: updating an indexed column in place must move rows
  // between index buckets, not leave stale entries behind.
  Exec("UPDATE runs SET wl = 'qsort' WHERE wl = 'isort'");
  const QueryResult old_key = Exec("SELECT id FROM runs WHERE wl = 'isort'");
  EXPECT_TRUE(old_key.rows.empty());
  const QueryResult new_key =
      Exec("SELECT id FROM runs WHERE wl = 'qsort' ORDER BY id");
  ASSERT_EQ(new_key.rows.size(), 2u);
  EXPECT_EQ(new_key.rows[0][0].AsInteger(), 1);
  EXPECT_EQ(new_key.rows[1][0].AsInteger(), 2);

  // NULLing an indexed value removes it from the index entirely.
  Exec("UPDATE runs SET outcome = NULL WHERE id = 4");
  EXPECT_TRUE(Exec("SELECT id FROM runs WHERE outcome = 'detected' "
                   "AND id = 4").rows.empty());
  EXPECT_EQ(Exec("SELECT COUNT(*) FROM runs WHERE outcome = 'detected'")
                .rows[0][0].AsInteger(), 1);
}

TEST_F(SqlExecTest, IndexSurvivesDeletes) {
  Exec("DELETE FROM runs WHERE id = 1");
  const QueryResult result =
      Exec("SELECT id FROM runs WHERE wl = 'isort'");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0][0].AsInteger(), 2);
}

TEST_F(SqlExecTest, IndexedResultsPreserveRowOrder) {
  // Candidates come back in ascending row order, so an unordered SELECT
  // over an indexed column lists rows exactly as a scan would.
  Exec("INSERT INTO runs VALUES (9, 'isort', 'detected', 9.0)");
  const QueryResult result =
      Exec("SELECT id FROM runs WHERE wl = 'isort'");
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.rows[0][0].AsInteger(), 1);
  EXPECT_EQ(result.rows[1][0].AsInteger(), 2);
  EXPECT_EQ(result.rows[2][0].AsInteger(), 9);
}

}  // namespace
}  // namespace goofi::db::sql
