#include "db/value.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goofi::db {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Integer(7).type(), ValueType::kInteger);
  EXPECT_EQ(Value::Integer(7).AsInteger(), 7);
  EXPECT_EQ(Value::Real(2.5).type(), ValueType::kReal);
  EXPECT_DOUBLE_EQ(Value::Real(2.5).AsReal(), 2.5);
  EXPECT_EQ(Value::Text_("hi").type(), ValueType::kText);
  EXPECT_EQ(Value::Text_("hi").AsText(), "hi");
  EXPECT_EQ(Value::Blob("ab").type(), ValueType::kBlob);
  EXPECT_EQ(Value::Blob("ab").AsBlob(), "ab");
}

TEST(ValueTest, IntegerWidensToReal) {
  EXPECT_DOUBLE_EQ(Value::Integer(3).AsReal(), 3.0);
}

TEST(ValueTest, ImplicitConstructors) {
  Value i = std::int64_t{5};
  Value d = 1.5;
  Value s = "text";
  EXPECT_EQ(i.type(), ValueType::kInteger);
  EXPECT_EQ(d.type(), ValueType::kReal);
  EXPECT_EQ(s.type(), ValueType::kText);
}

TEST(ValueTest, CompareOrderAcrossTypes) {
  // NULL < numeric < TEXT < BLOB
  EXPECT_LT(Value::Null().Compare(Value::Integer(0)), 0);
  EXPECT_LT(Value::Integer(999).Compare(Value::Text_("")), 0);
  EXPECT_LT(Value::Text_("zzz").Compare(Value::Blob("")), 0);
}

TEST(ValueTest, NumericComparisonMixesIntAndReal) {
  EXPECT_EQ(Value::Integer(2).Compare(Value::Real(2.0)), 0);
  EXPECT_LT(Value::Integer(2).Compare(Value::Real(2.5)), 0);
  EXPECT_GT(Value::Real(3.1).Compare(Value::Integer(3)), 0);
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // 2^62 and 2^62+1 collapse to the same double; integer compare must
  // still distinguish them.
  const std::int64_t big = std::int64_t{1} << 62;
  EXPECT_LT(Value::Integer(big).Compare(Value::Integer(big + 1)), 0);
}

TEST(ValueTest, TextComparison) {
  EXPECT_LT(Value::Text_("abc").Compare(Value::Text_("abd")), 0);
  EXPECT_EQ(Value::Text_("abc"), Value::Text_("abc"));
  EXPECT_GT(Value::Text_("b").Compare(Value::Text_("aaaa")), 0);
}

TEST(ValueTest, Truthiness) {
  EXPECT_TRUE(Value::Integer(1).Truthy());
  EXPECT_FALSE(Value::Integer(0).Truthy());
  EXPECT_TRUE(Value::Real(0.5).Truthy());
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Text_("true").Truthy());
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value::Null().ToDisplayString(), "NULL");
  EXPECT_EQ(Value::Integer(-3).ToDisplayString(), "-3");
  EXPECT_EQ(Value::Text_("o'brien").ToDisplayString(), "'o''brien'");
  EXPECT_EQ(Value::Blob(std::string("\xAB\x01", 2)).ToDisplayString(),
            "x'ab01'");
}

TEST(ValueTest, EncodeDecodeBasics) {
  for (const Value& v :
       {Value::Null(), Value::Integer(-42), Value::Real(3.25),
        Value::Text_("with\ttab"), Value::Blob(std::string("\0\1", 2))}) {
    const auto decoded = Value::Decode(v.Encode());
    ASSERT_TRUE(decoded.ok()) << v.ToDisplayString();
    EXPECT_EQ(decoded->type(), v.type());
    EXPECT_EQ(*decoded, v);
  }
}

TEST(ValueTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(Value::Decode("").ok());
  EXPECT_FALSE(Value::Decode("ix").ok());
  EXPECT_FALSE(Value::Decode("q42").ok());
  EXPECT_FALSE(Value::Decode("rzz").ok());
}

class ValueEncodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ValueEncodeSweep, RandomRoundTrips) {
  goofi::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (int i = 0; i < 200; ++i) {
    Value v;
    switch (rng.NextBelow(4)) {
      case 0:
        v = Value::Integer(static_cast<std::int64_t>(rng.NextU64()));
        break;
      case 1: {
        // Avoid NaN (NaN != NaN breaks equality round trip by design).
        v = Value::Real(rng.NextDouble() * 1e18 - 5e17);
        break;
      }
      case 2: {
        std::string text;
        const std::size_t length = rng.NextBelow(40);
        for (std::size_t c = 0; c < length; ++c) {
          text.push_back(static_cast<char>(rng.NextBelow(256)));
        }
        v = Value::Text_(text);
        break;
      }
      default: {
        std::string bytes;
        const std::size_t length = rng.NextBelow(40);
        for (std::size_t c = 0; c < length; ++c) {
          bytes.push_back(static_cast<char>(rng.NextBelow(256)));
        }
        v = Value::Blob(bytes);
        break;
      }
    }
    // Encoded values must not contain characters the TSV layer cannot
    // escape... they may; EscapeTsvField handles that. Here: pure
    // Encode/Decode fidelity.
    const auto decoded = Value::Decode(v.Encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, v);
    EXPECT_EQ(decoded->type(), v.type());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValueEncodeSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace goofi::db
