#include "db/database.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace goofi::db {
namespace {

TableSchema ParentSchema() {
  TableSchema schema("parent");
  EXPECT_TRUE(schema.AddColumn({"key", ColumnType::kText, false, false,
                                true}).ok());
  EXPECT_TRUE(schema.AddColumn({"info", ColumnType::kText, false, false,
                                false}).ok());
  return schema;
}

TableSchema ChildSchema() {
  TableSchema schema("child");
  EXPECT_TRUE(schema.AddColumn({"id", ColumnType::kInteger, false, false,
                                true}).ok());
  EXPECT_TRUE(schema.AddColumn({"parent_key", ColumnType::kText, false,
                                false, false}).ok());
  EXPECT_TRUE(schema.AddForeignKey({"parent_key", "parent", "key"}).ok());
  return schema;
}

Database MakeLinked() {
  Database database;
  EXPECT_TRUE(database.CreateTable(ParentSchema()).ok());
  EXPECT_TRUE(database.CreateTable(ChildSchema()).ok());
  EXPECT_TRUE(database.Insert("parent", {Value::Text_("p1"),
                                         Value::Text_("first")}).ok());
  EXPECT_TRUE(database.Insert("parent", {Value::Text_("p2"),
                                         Value::Null()}).ok());
  EXPECT_TRUE(database.Insert("child", {Value::Integer(1),
                                        Value::Text_("p1")}).ok());
  return database;
}

TEST(DatabaseTest, CreateAndLookupTables) {
  Database database = MakeLinked();
  EXPECT_TRUE(database.HasTable("parent"));
  EXPECT_NE(database.FindTable("child"), nullptr);
  EXPECT_EQ(database.FindTable("ghost"), nullptr);
  EXPECT_EQ(database.TableNames().size(), 2u);
}

TEST(DatabaseTest, DuplicateTableRejected) {
  Database database = MakeLinked();
  EXPECT_EQ(database.CreateTable(ParentSchema()).code(),
            ErrorCode::kAlreadyExists);
}

TEST(DatabaseTest, ForeignKeyMustReferenceExistingTable) {
  Database database;
  TableSchema schema("orphan");
  ASSERT_TRUE(schema.AddColumn({"x", ColumnType::kText, false, false,
                                true}).ok());
  ASSERT_TRUE(schema.AddForeignKey({"x", "nowhere", "key"}).ok());
  EXPECT_EQ(database.CreateTable(schema).code(),
            ErrorCode::kInvalidArgument);
}

TEST(DatabaseTest, ForeignKeyMustReferenceUniqueColumn) {
  Database database;
  ASSERT_TRUE(database.CreateTable(ParentSchema()).ok());
  TableSchema schema("bad");
  ASSERT_TRUE(schema.AddColumn({"x", ColumnType::kText, false, false,
                                true}).ok());
  ASSERT_TRUE(schema.AddForeignKey({"x", "parent", "info"}).ok());
  EXPECT_EQ(database.CreateTable(schema).code(),
            ErrorCode::kInvalidArgument);
}

TEST(DatabaseTest, InsertNeedsParent) {
  Database database = MakeLinked();
  EXPECT_EQ(database.Insert("child", {Value::Integer(2),
                                      Value::Text_("missing")}).code(),
            ErrorCode::kConstraintViolation);
  // NULL FK is allowed.
  EXPECT_TRUE(database.Insert("child", {Value::Integer(2),
                                        Value::Null()}).ok());
}

TEST(DatabaseTest, DeleteRestrictedByChildren) {
  Database database = MakeLinked();
  const auto blocked = database.Delete("parent", [](const Row& row) {
    return row[0].AsText() == "p1";
  });
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), ErrorCode::kConstraintViolation);
  // p2 has no children: deletable.
  const auto removed = database.Delete("parent", [](const Row& row) {
    return row[0].AsText() == "p2";
  });
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1u);
}

TEST(DatabaseTest, DeleteChildThenParentWorks) {
  Database database = MakeLinked();
  ASSERT_TRUE(database.Delete("child", [](const Row&) {
                                return true;
                              }).ok());
  EXPECT_TRUE(database.Delete("parent", [](const Row&) {
                                return true;
                              }).ok());
}

TEST(DatabaseTest, UpdateParentKeyRestricted) {
  Database database = MakeLinked();
  const auto blocked = database.Update(
      "parent", [](const Row& row) { return row[0].AsText() == "p1"; },
      {{0, Value::Text_("renamed")}});
  EXPECT_EQ(blocked.status().code(), ErrorCode::kConstraintViolation);
  // Updating a non-key column is fine.
  EXPECT_TRUE(database.Update("parent",
                              [](const Row& row) {
                                return row[0].AsText() == "p1";
                              },
                              {{1, Value::Text_("changed")}}).ok());
}

TEST(DatabaseTest, UpdateChildFkChecked) {
  Database database = MakeLinked();
  const auto bad = database.Update(
      "child", [](const Row&) { return true; },
      {{1, Value::Text_("nope")}});
  EXPECT_EQ(bad.status().code(), ErrorCode::kConstraintViolation);
  EXPECT_TRUE(database.Update("child", [](const Row&) { return true; },
                              {{1, Value::Text_("p2")}}).ok());
}

TEST(DatabaseTest, DropRestrictedWhileReferenced) {
  Database database = MakeLinked();
  EXPECT_EQ(database.DropTable("parent").code(),
            ErrorCode::kConstraintViolation);
  EXPECT_TRUE(database.DropTable("child").ok());
  EXPECT_TRUE(database.DropTable("parent").ok());
  EXPECT_EQ(database.DropTable("parent").code(), ErrorCode::kNotFound);
}

TableSchema SelfRefSchema() {
  // Mirrors LoggedSystemState.parentExperiment.
  TableSchema schema("tree");
  EXPECT_TRUE(schema.AddColumn({"name", ColumnType::kText, false, false,
                                true}).ok());
  EXPECT_TRUE(schema.AddColumn({"parent", ColumnType::kText, false, false,
                                false}).ok());
  EXPECT_TRUE(schema.AddForeignKey({"parent", "tree", "name"}).ok());
  return schema;
}

TEST(DatabaseTest, SelfReferencingForeignKey) {
  Database database;
  ASSERT_TRUE(database.CreateTable(SelfRefSchema()).ok());
  EXPECT_TRUE(database.Insert("tree", {Value::Text_("root"),
                                       Value::Null()}).ok());
  EXPECT_TRUE(database.Insert("tree", {Value::Text_("leaf"),
                                       Value::Text_("root")}).ok());
  EXPECT_EQ(database.Insert("tree", {Value::Text_("orphan"),
                                     Value::Text_("ghost")}).code(),
            ErrorCode::kConstraintViolation);
  // Deleting the parent alone is restricted...
  EXPECT_FALSE(database.Delete("tree", [](const Row& row) {
                 return row[0].AsText() == "root";
               }).ok());
  // ...but deleting the whole subtree in one call is allowed.
  const auto removed =
      database.Delete("tree", [](const Row&) { return true; });
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2u);
}

TEST(DatabaseTest, SchemaSerializationRoundTrip) {
  const TableSchema schema = ChildSchema();
  const std::string text = SerializeSchema(schema);
  const auto parsed = ParseSchemaText(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->table_name(), "child");
  EXPECT_EQ(parsed->column_count(), 2u);
  EXPECT_EQ(parsed->primary_key_index(), 0u);
  ASSERT_EQ(parsed->foreign_keys().size(), 1u);
  EXPECT_EQ(parsed->foreign_keys()[0].ref_table, "parent");
}

TEST(DatabaseTest, SaveAndLoadDirectory) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goofi_db_test").string();
  fs::remove_all(dir);
  {
    Database database = MakeLinked();
    ASSERT_TRUE(database.SaveToDirectory(dir).ok());
  }
  auto loaded = Database::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table* parent = loaded->FindTable("parent");
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->row_count(), 2u);
  const Table* child = loaded->FindTable("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->row_count(), 1u);
  EXPECT_EQ(child->row(0)[1].AsText(), "p1");
  // Constraints survive the round trip.
  EXPECT_EQ(loaded->Insert("child", {Value::Integer(9),
                                     Value::Text_("ghost")}).code(),
            ErrorCode::kConstraintViolation);
  fs::remove_all(dir);
}

TEST(DatabaseTest, SaveOrdersParentsBeforeChildren) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goofi_db_order_test").string();
  fs::remove_all(dir);
  Database database;
  // Alphabetically the child ("a_child") precedes the parent ("z_parent"),
  // so a naive alphabetical manifest would fail to load.
  TableSchema parent("z_parent");
  ASSERT_TRUE(parent.AddColumn({"k", ColumnType::kText, false, false,
                                true}).ok());
  ASSERT_TRUE(database.CreateTable(parent).ok());
  TableSchema child("a_child");
  ASSERT_TRUE(child.AddColumn({"k", ColumnType::kText, false, false,
                               true}).ok());
  ASSERT_TRUE(child.AddForeignKey({"k", "z_parent", "k"}).ok());
  ASSERT_TRUE(database.CreateTable(child).ok());
  ASSERT_TRUE(database.Insert("z_parent", {Value::Text_("x")}).ok());
  ASSERT_TRUE(database.Insert("a_child", {Value::Text_("x")}).ok());
  ASSERT_TRUE(database.SaveToDirectory(dir).ok());
  const auto loaded = Database::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->FindTable("a_child")->row_count(), 1u);
  fs::remove_all(dir);
}

TEST(DatabaseTest, LoadHandlesSelfRefChildBeforeParentRows) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goofi_db_selfref_test").string();
  fs::remove_all(dir);
  {
    Database database;
    ASSERT_TRUE(database.CreateTable(SelfRefSchema()).ok());
    ASSERT_TRUE(database.Insert("tree", {Value::Text_("root"),
                                         Value::Null()}).ok());
    ASSERT_TRUE(database.Insert("tree", {Value::Text_("mid"),
                                         Value::Text_("root")}).ok());
    ASSERT_TRUE(database.Insert("tree", {Value::Text_("leaf"),
                                         Value::Text_("mid")}).ok());
    ASSERT_TRUE(database.SaveToDirectory(dir).ok());
  }
  const auto loaded = Database::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->FindTable("tree")->row_count(), 3u);
  fs::remove_all(dir);
}

TEST(DatabaseTest, MissingDirectoryReportsIoError) {
  const auto loaded = Database::LoadFromDirectory("/nonexistent/goofi");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), ErrorCode::kIo);
}

TEST(DatabaseTest, SaveReplacesDirectoryAtomically) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goofi_db_atomic_test").string();
  fs::remove_all(dir);

  Database database;
  ASSERT_TRUE(database.CreateTable(ParentSchema()).ok());
  ASSERT_TRUE(database.Insert("parent", {Value::Text_("a"),
                                         Value::Text_("one")}).ok());
  ASSERT_TRUE(database.SaveToDirectory(dir).ok());

  // A second save goes through a sibling temp directory and a rename
  // swap: no .saving/.stale residue survives a successful save, and a
  // file that only existed in the old version is gone.
  {
    std::ofstream((fs::path(dir) / "leftover.rows").string()) << "junk\n";
  }
  ASSERT_TRUE(database.Insert("parent", {Value::Text_("b"),
                                         Value::Text_("two")}).ok());
  ASSERT_TRUE(database.SaveToDirectory(dir).ok());
  EXPECT_FALSE(fs::exists(dir + ".saving"));
  EXPECT_FALSE(fs::exists(dir + ".stale"));
  EXPECT_FALSE(fs::exists(fs::path(dir) / "leftover.rows"));
  const auto loaded = Database::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->FindTable("parent")->row_count(), 2u);
  fs::remove_all(dir);
}

TEST(DatabaseTest, LoadRecoversInterruptedSave) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goofi_db_interrupted_test").string();
  fs::remove_all(dir);
  fs::remove_all(dir + ".saving");

  // Simulate a crash after the temp directory was fully written but
  // before it was renamed into place: save elsewhere, then move the
  // result to `<dir>.saving` with no `<dir>` present.
  Database database;
  ASSERT_TRUE(database.CreateTable(ParentSchema()).ok());
  ASSERT_TRUE(database.Insert("parent", {Value::Text_("a"),
                                         Value::Text_("one")}).ok());
  ASSERT_TRUE(database.SaveToDirectory(dir).ok());
  fs::rename(dir, dir + ".saving");

  const auto loaded = Database::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->FindTable("parent")->row_count(), 1u);
  // Recovery published the temp directory as the real one.
  EXPECT_TRUE(fs::exists(fs::path(dir) / "manifest.txt"));
  EXPECT_FALSE(fs::exists(dir + ".saving"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace goofi::db
