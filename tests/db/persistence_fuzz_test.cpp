// Property sweep: random databases (random schemas, rows full of
// hostile bytes — tabs, newlines, NULs, non-UTF8 blobs) must survive a
// save/load round trip bit-exactly, with constraints still enforced.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "db/database.h"
#include "util/rng.h"

namespace goofi::db {
namespace {

namespace fs = std::filesystem;

Value RandomValue(Rng& rng, ColumnType type, bool allow_null) {
  if (allow_null && rng.NextBool(0.15)) return Value::Null();
  auto random_bytes = [&rng]() {
    std::string bytes;
    const std::size_t length = rng.NextBelow(24);
    for (std::size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    return bytes;
  };
  switch (type) {
    case ColumnType::kInteger:
      return Value::Integer(static_cast<std::int64_t>(rng.NextU64()));
    case ColumnType::kReal:
      return Value::Real(rng.NextDouble() * 1e12 - 5e11);
    case ColumnType::kText:
      return Value::Text_(random_bytes());
    case ColumnType::kBlob:
      return Value::Blob(random_bytes());
    case ColumnType::kAny:
      switch (rng.NextBelow(4)) {
        case 0: return Value::Integer(7);
        case 1: return Value::Real(1.5);
        case 2: return Value::Text_(random_bytes());
        default: return Value::Blob(random_bytes());
      }
  }
  return Value::Null();
}

class PersistenceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PersistenceFuzz, RandomDatabaseRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL +
          1442695040888963407ULL);
  Database database;

  // Parent table with a unique text key.
  TableSchema parent("parent");
  ASSERT_TRUE(parent.AddColumn({"key", ColumnType::kInteger, false, false,
                                true}).ok());
  ASSERT_TRUE(parent.AddColumn({"payload", ColumnType::kBlob, false, false,
                                false}).ok());
  ASSERT_TRUE(database.CreateTable(parent).ok());

  // Child table with a random extra column type.
  const ColumnType extra_types[] = {ColumnType::kInteger, ColumnType::kReal,
                                    ColumnType::kText, ColumnType::kBlob,
                                    ColumnType::kAny};
  const ColumnType extra = extra_types[rng.NextBelow(5)];
  TableSchema child("child");
  ASSERT_TRUE(child.AddColumn({"id", ColumnType::kInteger, false, false,
                               true}).ok());
  ASSERT_TRUE(child.AddColumn({"parent_key", ColumnType::kInteger, false,
                               false, false}).ok());
  ASSERT_TRUE(child.AddColumn({"extra", extra, false, false, false}).ok());
  ASSERT_TRUE(child.AddForeignKey({"parent_key", "parent", "key"}).ok());
  ASSERT_TRUE(database.CreateTable(child).ok());

  // Populate with random (sometimes colliding) rows.
  std::vector<std::int64_t> parent_keys;
  const int parents = 5 + static_cast<int>(rng.NextBelow(20));
  for (int i = 0; i < parents; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(rng.NextBelow(1000));
    if (database.Insert("parent", {Value::Integer(key),
                                   RandomValue(rng, ColumnType::kBlob,
                                               true)}).ok()) {
      parent_keys.push_back(key);
    }
  }
  ASSERT_FALSE(parent_keys.empty());
  const int children = static_cast<int>(rng.NextBelow(40));
  for (int i = 0; i < children; ++i) {
    const Value parent_ref =
        rng.NextBool(0.2)
            ? Value::Null()
            : Value::Integer(
                  parent_keys[rng.NextBelow(parent_keys.size())]);
    (void)database.Insert("child", {Value::Integer(i), parent_ref,
                                    RandomValue(rng, extra, true)});
  }

  const std::string dir =
      (fs::temp_directory_path() /
       ("goofi_persist_fuzz_" + std::to_string(GetParam()))).string();
  fs::remove_all(dir);
  ASSERT_TRUE(database.SaveToDirectory(dir).ok());
  auto loaded = Database::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const char* table_name : {"parent", "child"}) {
    const Table* original = database.FindTable(table_name);
    const Table* restored = loaded->FindTable(table_name);
    ASSERT_NE(restored, nullptr) << table_name;
    ASSERT_EQ(restored->row_count(), original->row_count()) << table_name;
    // Compare as multisets: load order may differ for FK-deferred rows.
    std::multiset<std::string> original_rows;
    std::multiset<std::string> restored_rows;
    for (const Row& row : original->rows()) {
      std::string entry;
      for (const Value& value : row) entry += value.Encode() + "\x1f";
      original_rows.insert(entry);
    }
    for (const Row& row : restored->rows()) {
      std::string entry;
      for (const Value& value : row) entry += value.Encode() + "\x1f";
      restored_rows.insert(entry);
    }
    EXPECT_EQ(restored_rows, original_rows) << table_name;
  }

  // Constraints survived: duplicate PK and dangling FK still rejected.
  EXPECT_FALSE(loaded->Insert("parent",
                              {Value::Integer(parent_keys[0]),
                               Value::Null()}).ok());
  EXPECT_EQ(loaded->Insert("child", {Value::Integer(99999),
                                     Value::Integer(100000),
                                     Value::Null()}).code(),
            ErrorCode::kConstraintViolation);
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace goofi::db
