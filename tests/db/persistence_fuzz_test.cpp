// Property sweep: random databases (random schemas, rows full of
// hostile bytes — tabs, newlines, NULs, non-UTF8 blobs) must survive a
// save/load round trip bit-exactly, with constraints still enforced.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "db/database.h"
#include "util/rng.h"

namespace goofi::db {
namespace {

namespace fs = std::filesystem;

Value RandomValue(Rng& rng, ColumnType type, bool allow_null) {
  if (allow_null && rng.NextBool(0.15)) return Value::Null();
  auto random_bytes = [&rng]() {
    std::string bytes;
    const std::size_t length = rng.NextBelow(24);
    for (std::size_t i = 0; i < length; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBelow(256)));
    }
    return bytes;
  };
  switch (type) {
    case ColumnType::kInteger:
      return Value::Integer(static_cast<std::int64_t>(rng.NextU64()));
    case ColumnType::kReal:
      return Value::Real(rng.NextDouble() * 1e12 - 5e11);
    case ColumnType::kText:
      return Value::Text_(random_bytes());
    case ColumnType::kBlob:
      return Value::Blob(random_bytes());
    case ColumnType::kAny:
      switch (rng.NextBelow(4)) {
        case 0: return Value::Integer(7);
        case 1: return Value::Real(1.5);
        case 2: return Value::Text_(random_bytes());
        default: return Value::Blob(random_bytes());
      }
  }
  return Value::Null();
}

class PersistenceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PersistenceFuzz, RandomDatabaseRoundTrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6364136223846793005ULL +
          1442695040888963407ULL);
  Database database;

  // Parent table with a unique text key.
  TableSchema parent("parent");
  ASSERT_TRUE(parent.AddColumn({"key", ColumnType::kInteger, false, false,
                                true}).ok());
  ASSERT_TRUE(parent.AddColumn({"payload", ColumnType::kBlob, false, false,
                                false}).ok());
  ASSERT_TRUE(database.CreateTable(parent).ok());

  // Child table with a random extra column type.
  const ColumnType extra_types[] = {ColumnType::kInteger, ColumnType::kReal,
                                    ColumnType::kText, ColumnType::kBlob,
                                    ColumnType::kAny};
  const ColumnType extra = extra_types[rng.NextBelow(5)];
  TableSchema child("child");
  ASSERT_TRUE(child.AddColumn({"id", ColumnType::kInteger, false, false,
                               true}).ok());
  ASSERT_TRUE(child.AddColumn({"parent_key", ColumnType::kInteger, false,
                               false, false}).ok());
  ASSERT_TRUE(child.AddColumn({"extra", extra, false, false, false}).ok());
  ASSERT_TRUE(child.AddForeignKey({"parent_key", "parent", "key"}).ok());
  ASSERT_TRUE(database.CreateTable(child).ok());

  // Populate with random (sometimes colliding) rows.
  std::vector<std::int64_t> parent_keys;
  const int parents = 5 + static_cast<int>(rng.NextBelow(20));
  for (int i = 0; i < parents; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(rng.NextBelow(1000));
    if (database.Insert("parent", {Value::Integer(key),
                                   RandomValue(rng, ColumnType::kBlob,
                                               true)}).ok()) {
      parent_keys.push_back(key);
    }
  }
  ASSERT_FALSE(parent_keys.empty());
  const int children = static_cast<int>(rng.NextBelow(40));
  for (int i = 0; i < children; ++i) {
    const Value parent_ref =
        rng.NextBool(0.2)
            ? Value::Null()
            : Value::Integer(
                  parent_keys[rng.NextBelow(parent_keys.size())]);
    (void)database.Insert("child", {Value::Integer(i), parent_ref,
                                    RandomValue(rng, extra, true)});
  }

  const std::string dir =
      (fs::temp_directory_path() /
       ("goofi_persist_fuzz_" + std::to_string(GetParam()))).string();
  fs::remove_all(dir);
  ASSERT_TRUE(database.SaveToDirectory(dir).ok());
  auto loaded = Database::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  for (const char* table_name : {"parent", "child"}) {
    const Table* original = database.FindTable(table_name);
    const Table* restored = loaded->FindTable(table_name);
    ASSERT_NE(restored, nullptr) << table_name;
    ASSERT_EQ(restored->row_count(), original->row_count()) << table_name;
    // Compare as multisets: load order may differ for FK-deferred rows.
    std::multiset<std::string> original_rows;
    std::multiset<std::string> restored_rows;
    for (const Row& row : original->rows()) {
      std::string entry;
      for (const Value& value : row) entry += value.Encode() + "\x1f";
      original_rows.insert(entry);
    }
    for (const Row& row : restored->rows()) {
      std::string entry;
      for (const Value& value : row) entry += value.Encode() + "\x1f";
      restored_rows.insert(entry);
    }
    EXPECT_EQ(restored_rows, original_rows) << table_name;
  }

  // Constraints survived: duplicate PK and dangling FK still rejected.
  EXPECT_FALSE(loaded->Insert("parent",
                              {Value::Integer(parent_keys[0]),
                               Value::Null()}).ok());
  EXPECT_EQ(loaded->Insert("child", {Value::Integer(99999),
                                     Value::Integer(100000),
                                     Value::Null()}).code(),
            ErrorCode::kConstraintViolation);
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PersistenceFuzz, ::testing::Range(0, 12));

// ---- WAL format ---------------------------------------------------------

// Exact-order dump: WAL replay must reproduce rows in their original
// positions (update/delete records address rows by index), so unlike
// the text round trip above this comparison is order-sensitive.
std::string ExactDump(const Database& database) {
  std::string dump;
  for (const std::string& name : database.TableNames()) {
    const Table* table = database.FindTable(name);
    dump += "== " + name + "\n" + SerializeSchema(table->schema());
    for (const Row& row : table->rows()) {
      for (const Value& value : row) {
        dump += value.Encode();
        dump += '\x1f';
      }
      dump += '\n';
    }
  }
  return dump;
}

class WalPersistenceFuzz : public ::testing::TestWithParam<int> {};

// Random insert/update/delete/commit/compaction interleavings: after
// every run the reopened (snapshot-loaded + log-replayed) database must
// equal the in-memory one row for row, and compaction must be an
// invisible no-op on the logical state.
TEST_P(WalPersistenceFuzz, ReplayedStateMatchesMemory) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2862933555777941757ULL +
          3037000493ULL);
  const std::string dir =
      (fs::temp_directory_path() /
       ("goofi_wal_fuzz_" + std::to_string(GetParam()))).string();
  fs::remove_all(dir);

  Database database;
  ASSERT_TRUE(database.AttachWal(dir).ok());
  // Sometimes let the log grow unboundedly, sometimes force frequent
  // automatic compactions mid-run.
  const std::uint64_t thresholds[] = {0, 0, 768, 4096};
  database.set_compaction_threshold(thresholds[rng.NextBelow(4)]);

  TableSchema parent("parent");
  ASSERT_TRUE(parent.AddColumn({"key", ColumnType::kInteger, false, false,
                                true}).ok());
  ASSERT_TRUE(parent.AddColumn({"payload", ColumnType::kBlob}).ok());
  ASSERT_TRUE(database.CreateTable(parent).ok());
  TableSchema child("child");
  ASSERT_TRUE(child.AddColumn({"id", ColumnType::kInteger, false, false,
                               true}).ok());
  ASSERT_TRUE(child.AddColumn({"parent_key", ColumnType::kInteger}).ok());
  ASSERT_TRUE(child.AddColumn({"tag", ColumnType::kText, false, false,
                               false, true}).ok());  // secondary-indexed
  ASSERT_TRUE(child.AddForeignKey({"parent_key", "parent", "key"}).ok());
  ASSERT_TRUE(database.CreateTable(child).ok());

  int next_id = 0;
  const int operations = 40 + static_cast<int>(rng.NextBelow(60));
  for (int op = 0; op < operations; ++op) {
    switch (rng.NextBelow(10)) {
      case 0:
      case 1:
        (void)database.Insert(
            "parent", {Value::Integer(rng.NextBelow(50)),
                       RandomValue(rng, ColumnType::kBlob, true)});
        break;
      case 2:
      case 3:
      case 4: {
        const Value parent_ref =
            rng.NextBool(0.3)
                ? Value::Null()
                : Value::Integer(rng.NextBelow(50));
        (void)database.Insert(
            "child", {Value::Integer(next_id++), parent_ref,
                      Value::Text_("t" + std::to_string(rng.NextBelow(5)))});
        break;
      }
      case 5: {
        const std::string tag = "t" + std::to_string(rng.NextBelow(5));
        (void)database.Update(
            "child",
            [&tag](const Row& row) { return row[2].AsText() == tag; },
            {{2, Value::Text_("t" + std::to_string(rng.NextBelow(5)))}});
        break;
      }
      case 6: {
        const std::int64_t cutoff =
            static_cast<std::int64_t>(rng.NextBelow(200));
        (void)database.Delete("child", [cutoff](const Row& row) {
          return row[0].AsInteger() < cutoff % 37;
        });
        break;
      }
      case 7:
        (void)database.Delete("parent", [&rng](const Row& row) {
          return row[0].AsInteger() ==
                 static_cast<std::int64_t>(rng.NextBelow(50));
        });
        break;
      case 8:
        ASSERT_TRUE(database.Commit().ok());
        break;
      case 9:
        ASSERT_TRUE(database.Compact().ok());
        break;
    }
  }
  ASSERT_TRUE(database.Commit().ok());
  const std::string expected = ExactDump(database);

  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(ExactDump(*reopened), expected);

  // Compact -> reopen is idempotent: the fold into snapshots and the
  // reload from them are logically invisible, any number of times.
  ASSERT_TRUE(reopened->Compact().ok());
  EXPECT_EQ(ExactDump(*reopened), expected);
  ASSERT_TRUE(reopened->Compact().ok());
  auto reloaded = Database::Open(dir);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(ExactDump(*reloaded), expected);

  // Constraints survived replay: duplicate child PK still rejected.
  if (next_id > 0 && reloaded->FindTable("child")->row_count() > 0) {
    const Row& first = reloaded->FindTable("child")->row(0);
    EXPECT_FALSE(reloaded->Insert("child",
                                  {first[0], Value::Null(),
                                   Value::Text_("dup")}).ok());
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalPersistenceFuzz, ::testing::Range(0, 16));

}  // namespace
}  // namespace goofi::db
