// Verifies the paper's Fig. 4 schema: the three tables, their foreign
// keys, and the parentExperiment tracking workflow (experiment E2
// re-running E1's campaign data).
#include "core/goofi_schema.h"

#include <gtest/gtest.h>

#include "db/sql/executor.h"

namespace goofi::core {
namespace {

using db::Value;

class GoofiSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(CreateGoofiSchema(database_).ok());
  }

  Status Exec(const std::string& sql) {
    return db::sql::ExecuteSql(database_, sql).status();
  }

  db::Database database_;
};

TEST_F(GoofiSchemaTest, CreatesAllTables) {
  EXPECT_TRUE(database_.HasTable("TargetSystemData"));
  EXPECT_TRUE(database_.HasTable("TargetLocation"));
  EXPECT_TRUE(database_.HasTable("CampaignData"));
  EXPECT_TRUE(database_.HasTable("LoggedSystemState"));
}

TEST_F(GoofiSchemaTest, IsIdempotent) {
  EXPECT_TRUE(CreateGoofiSchema(database_).ok());
}

TEST_F(GoofiSchemaTest, CampaignNeedsTarget) {
  // Fig. 4 arrow: CampaignData -> TargetSystemData.
  const Status status = Exec(
      "INSERT INTO CampaignData (campaign_name, target_name, technique, "
      "workload, num_experiments, seed, fault_model, multiplicity, "
      "logging_mode, preinjection, status, experiments_done) VALUES "
      "('c1', 'ghost_target', 'scifi', 'isort', 10, 1, 'transient', 1, "
      "'normal', 0, 'configured', 0)");
  EXPECT_EQ(status.code(), ErrorCode::kConstraintViolation);
}

TEST_F(GoofiSchemaTest, LoggedStateNeedsCampaign) {
  // Fig. 4 arrow: LoggedSystemState -> CampaignData.
  const Status status = Exec(
      "INSERT INTO LoggedSystemState (experiment_name, campaign_name) "
      "VALUES ('e1', 'ghost_campaign')");
  EXPECT_EQ(status.code(), ErrorCode::kConstraintViolation);
}

TEST_F(GoofiSchemaTest, ParentExperimentWorkflow) {
  ASSERT_TRUE(Exec("INSERT INTO TargetSystemData VALUES "
                   "('thor_rd', 'card0', 'test')").ok());
  ASSERT_TRUE(Exec(
      "INSERT INTO CampaignData (campaign_name, target_name, technique, "
      "workload, num_experiments, seed, fault_model, multiplicity, "
      "logging_mode, preinjection, status, experiments_done) VALUES "
      "('c1', 'thor_rd', 'scifi', 'isort', 10, 1, 'transient', 1, "
      "'normal', 0, 'configured', 0)").ok());
  // E1: a fail-silence violation worth investigating.
  ASSERT_TRUE(Exec(
      "INSERT INTO LoggedSystemState (experiment_name, parent_experiment, "
      "campaign_name, experiment_data, state_vector) VALUES "
      "('E1', NULL, 'c1', 'targets=cpu.regs.r3:5', 'stop=halted')").ok());
  // E2 re-runs E1 in detail mode; parentExperiment tracks the origin.
  ASSERT_TRUE(Exec(
      "INSERT INTO LoggedSystemState (experiment_name, parent_experiment, "
      "campaign_name, experiment_data, state_vector) VALUES "
      "('E2', 'E1', 'c1', 'targets=cpu.regs.r3:5', 'stop=halted')").ok());
  // A dangling parent is rejected.
  EXPECT_EQ(Exec("INSERT INTO LoggedSystemState (experiment_name, "
                 "parent_experiment, campaign_name) VALUES "
                 "('E3', 'nonexistent', 'c1')").code(),
            ErrorCode::kConstraintViolation);
  // The campaign data of E1 is reachable from E2 through the keys — the
  // paper's traceability argument, as a SQL join-by-hand.
  auto parent = db::sql::ExecuteSql(
      database_,
      "SELECT parent_experiment FROM LoggedSystemState WHERE "
      "experiment_name = 'E2'");
  ASSERT_TRUE(parent.ok());
  ASSERT_EQ(parent->rows.size(), 1u);
  const std::string e1 = parent->rows[0][0].AsText();
  auto campaign = db::sql::ExecuteSql(
      database_,
      "SELECT campaign_name FROM LoggedSystemState WHERE experiment_name "
      "= '" + e1 + "'");
  ASSERT_TRUE(campaign.ok());
  EXPECT_EQ(campaign->rows[0][0].AsText(), "c1");
  // E1 cannot be deleted while E2 references it.
  EXPECT_EQ(Exec("DELETE FROM LoggedSystemState WHERE experiment_name = "
                 "'E1'").code(),
            ErrorCode::kConstraintViolation);
}

TEST_F(GoofiSchemaTest, TargetLocationNeedsTarget) {
  const Status status = Exec(
      "INSERT INTO TargetLocation VALUES (1, 'ghost', 'cpu.regs.r1', "
      "'scan_element', 'internal', 32, 1, 'reg', 0, 0)");
  EXPECT_EQ(status.code(), ErrorCode::kConstraintViolation);
}

TEST_F(GoofiSchemaTest, TargetDeletionRestrictedByCampaigns) {
  ASSERT_TRUE(Exec("INSERT INTO TargetSystemData VALUES "
                   "('thor_rd', 'card0', '')").ok());
  ASSERT_TRUE(Exec(
      "INSERT INTO CampaignData (campaign_name, target_name, technique, "
      "workload, num_experiments, seed, fault_model, multiplicity, "
      "logging_mode, preinjection, status, experiments_done) VALUES "
      "('c1', 'thor_rd', 'scifi', 'isort', 10, 1, 'transient', 1, "
      "'normal', 0, 'configured', 0)").ok());
  EXPECT_EQ(Exec("DELETE FROM TargetSystemData WHERE target_name = "
                 "'thor_rd'").code(),
            ErrorCode::kConstraintViolation);
}

}  // namespace
}  // namespace goofi::core
