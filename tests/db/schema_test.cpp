#include "db/schema.h"

#include <gtest/gtest.h>

namespace goofi::db {
namespace {

TableSchema MakeSchema() {
  TableSchema schema("t");
  EXPECT_TRUE(schema.AddColumn({"id", ColumnType::kInteger, false, false,
                                true}).ok());
  EXPECT_TRUE(schema.AddColumn({"name", ColumnType::kText, true, false,
                                false}).ok());
  EXPECT_TRUE(schema.AddColumn({"score", ColumnType::kReal, false, false,
                                false}).ok());
  return schema;
}

TEST(SchemaTest, ColumnTypeNamesRoundTrip) {
  for (const ColumnType type :
       {ColumnType::kInteger, ColumnType::kReal, ColumnType::kText,
        ColumnType::kBlob, ColumnType::kAny}) {
    EXPECT_EQ(ColumnTypeFromName(ColumnTypeName(type)), type);
  }
  EXPECT_EQ(ColumnTypeFromName("VARCHAR"), ColumnType::kText);
  EXPECT_EQ(ColumnTypeFromName("int"), ColumnType::kInteger);
  EXPECT_FALSE(ColumnTypeFromName("DATETIME").has_value());
}

TEST(SchemaTest, PrimaryKeyImpliesUniqueNotNull) {
  TableSchema schema = MakeSchema();
  const Column& id = schema.columns()[0];
  EXPECT_TRUE(id.primary_key);
  EXPECT_TRUE(id.unique);
  EXPECT_TRUE(id.not_null);
  EXPECT_EQ(schema.primary_key_index(), 0u);
}

TEST(SchemaTest, RejectsSecondPrimaryKey) {
  TableSchema schema = MakeSchema();
  const Status status =
      schema.AddColumn({"id2", ColumnType::kInteger, false, false, true});
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsDuplicateColumn) {
  TableSchema schema = MakeSchema();
  EXPECT_EQ(schema.AddColumn({"name", ColumnType::kText, false, false,
                              false}).code(),
            ErrorCode::kAlreadyExists);
}

TEST(SchemaTest, RejectsEmptyColumnName) {
  TableSchema schema("t");
  EXPECT_EQ(schema.AddColumn({"", ColumnType::kText, false, false,
                              false}).code(),
            ErrorCode::kInvalidArgument);
}

TEST(SchemaTest, FindColumn) {
  TableSchema schema = MakeSchema();
  EXPECT_EQ(schema.FindColumn("score"), 2u);
  EXPECT_FALSE(schema.FindColumn("missing").has_value());
}

TEST(SchemaTest, ForeignKeyNeedsLocalColumn) {
  TableSchema schema = MakeSchema();
  EXPECT_TRUE(schema.AddForeignKey({"name", "other", "key"}).ok());
  EXPECT_EQ(schema.AddForeignKey({"ghost", "other", "key"}).code(),
            ErrorCode::kInvalidArgument);
}

TEST(SchemaTest, CheckRowValidatesArity) {
  TableSchema schema = MakeSchema();
  std::vector<Value> too_short = {Value::Integer(1)};
  EXPECT_EQ(schema.CheckRow(too_short).code(), ErrorCode::kInvalidArgument);
}

TEST(SchemaTest, CheckRowEnforcesNotNull) {
  TableSchema schema = MakeSchema();
  std::vector<Value> row = {Value::Integer(1), Value::Null(),
                            Value::Real(1.0)};
  EXPECT_EQ(schema.CheckRow(row).code(), ErrorCode::kConstraintViolation);
}

TEST(SchemaTest, CheckRowEnforcesAffinity) {
  TableSchema schema = MakeSchema();
  std::vector<Value> bad_type = {Value::Text_("x"), Value::Text_("n"),
                                 Value::Real(1.0)};
  EXPECT_EQ(schema.CheckRow(bad_type).code(),
            ErrorCode::kConstraintViolation);
}

TEST(SchemaTest, CheckRowWidensIntegerToReal) {
  TableSchema schema = MakeSchema();
  std::vector<Value> row = {Value::Integer(1), Value::Text_("n"),
                            Value::Integer(5)};
  ASSERT_TRUE(schema.CheckRow(row).ok());
  EXPECT_EQ(row[2].type(), ValueType::kReal);
  EXPECT_DOUBLE_EQ(row[2].AsReal(), 5.0);
}

TEST(SchemaTest, NullAllowedWhereNotForbidden) {
  TableSchema schema = MakeSchema();
  std::vector<Value> row = {Value::Integer(1), Value::Text_("n"),
                            Value::Null()};
  EXPECT_TRUE(schema.CheckRow(row).ok());
}

TEST(SchemaTest, AnyColumnAcceptsEverything) {
  TableSchema schema("t");
  ASSERT_TRUE(schema.AddColumn({"x", ColumnType::kAny, false, false,
                                false}).ok());
  for (Value v : {Value::Null(), Value::Integer(1), Value::Real(1.5),
                  Value::Text_("t"), Value::Blob("b")}) {
    std::vector<Value> row = {v};
    EXPECT_TRUE(schema.CheckRow(row).ok());
  }
}

}  // namespace
}  // namespace goofi::db
