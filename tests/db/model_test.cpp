// Model-based property test: random insert/update/delete sequences on a
// Table are mirrored against a naive reference model with the same
// constraint rules; the engine and the model must agree on every
// operation's outcome and on the final contents.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "db/table.h"
#include "util/rng.h"

namespace goofi::db {
namespace {

TableSchema ModelSchema() {
  TableSchema schema("m");
  EXPECT_TRUE(schema.AddColumn({"id", ColumnType::kInteger, false, false,
                                true}).ok());  // PRIMARY KEY
  EXPECT_TRUE(schema.AddColumn({"tag", ColumnType::kText, false, true,
                                false}).ok());  // UNIQUE, nullable
  EXPECT_TRUE(schema.AddColumn({"score", ColumnType::kInteger, true, false,
                                false}).ok());  // NOT NULL
  return schema;
}

// The reference model: rows in insertion order, constraints by scan.
struct Model {
  struct MRow {
    std::int64_t id;
    std::optional<std::string> tag;
    std::int64_t score;
  };
  std::vector<MRow> rows;

  bool Insert(std::int64_t id, std::optional<std::string> tag,
              std::optional<std::int64_t> score) {
    if (!score) return false;  // NOT NULL
    for (const MRow& row : rows) {
      if (row.id == id) return false;                 // PK
      if (tag && row.tag && *row.tag == *tag) return false;  // UNIQUE
    }
    rows.push_back({id, std::move(tag), *score});
    return true;
  }

  std::size_t Delete(std::int64_t score_below) {
    const std::size_t before = rows.size();
    rows.erase(std::remove_if(rows.begin(), rows.end(),
                              [&](const MRow& row) {
                                return row.score < score_below;
                              }),
               rows.end());
    return before - rows.size();
  }

  // Update score for id == key. Always constraint-safe.
  std::size_t UpdateScore(std::int64_t key, std::int64_t new_score) {
    std::size_t updated = 0;
    for (MRow& row : rows) {
      if (row.id == key) {
        row.score = new_score;
        ++updated;
      }
    }
    return updated;
  }

  // Re-tag id == key; fails (atomically) if the tag is taken elsewhere.
  // A key that matches nothing succeeds vacuously (0 rows updated).
  bool UpdateTag(std::int64_t key, const std::string& tag) {
    const bool key_exists =
        std::any_of(rows.begin(), rows.end(),
                    [&](const MRow& row) { return row.id == key; });
    if (!key_exists) return true;
    for (const MRow& row : rows) {
      if (row.id != key && row.tag && *row.tag == tag) return false;
    }
    for (MRow& row : rows) {
      if (row.id == key) row.tag = tag;
    }
    return true;
  }
};

std::multiset<std::string> Snapshot(const Table& table) {
  std::multiset<std::string> snapshot;
  for (const Row& row : table.rows()) {
    std::string entry;
    for (const Value& value : row) entry += value.Encode() + "|";
    snapshot.insert(entry);
  }
  return snapshot;
}

std::multiset<std::string> Snapshot(const Model& model) {
  std::multiset<std::string> snapshot;
  for (const Model::MRow& row : model.rows) {
    std::string entry = Value::Integer(row.id).Encode() + "|";
    entry += (row.tag ? Value::Text_(*row.tag) : Value::Null()).Encode();
    entry += "|" + Value::Integer(row.score).Encode() + "|";
    snapshot.insert(entry);
  }
  return snapshot;
}

class TableModelTest : public ::testing::TestWithParam<int> {};

TEST_P(TableModelTest, RandomOperationSequencesAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 17);
  Table table(ModelSchema());
  Model model;

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t action = rng.NextBelow(10);
    if (action < 5) {
      // Insert with colliding ids/tags on purpose.
      const std::int64_t id = static_cast<std::int64_t>(rng.NextBelow(60));
      std::optional<std::string> tag;
      if (rng.NextBool(0.7)) {
        tag = "t" + std::to_string(rng.NextBelow(40));
      }
      std::optional<std::int64_t> score;
      if (rng.NextBool(0.9)) {
        score = static_cast<std::int64_t>(rng.NextBelow(100));
      }
      const bool model_ok = model.Insert(id, tag, score);
      Row row;
      row.push_back(Value::Integer(id));
      row.push_back(tag ? Value::Text_(*tag) : Value::Null());
      row.push_back(score ? Value::Integer(*score) : Value::Null());
      const bool table_ok = table.Insert(std::move(row)).ok();
      ASSERT_EQ(table_ok, model_ok) << "insert step " << step;
    } else if (action < 7) {
      const std::int64_t threshold =
          static_cast<std::int64_t>(rng.NextBelow(100));
      const std::size_t model_removed = model.Delete(threshold);
      const std::size_t table_removed =
          table.Delete([&](const Row& row) {
            return row[2].AsInteger() < threshold;
          });
      ASSERT_EQ(table_removed, model_removed) << "delete step " << step;
    } else if (action < 9) {
      const std::int64_t key = static_cast<std::int64_t>(rng.NextBelow(60));
      const std::int64_t new_score =
          static_cast<std::int64_t>(rng.NextBelow(100));
      const std::size_t model_updated = model.UpdateScore(key, new_score);
      const auto table_updated = table.Update(
          [&](const Row& row) { return row[0].AsInteger() == key; },
          {{2, Value::Integer(new_score)}});
      ASSERT_TRUE(table_updated.ok());
      ASSERT_EQ(*table_updated, model_updated) << "update step " << step;
    } else {
      const std::int64_t key = static_cast<std::int64_t>(rng.NextBelow(60));
      const std::string tag = "t" + std::to_string(rng.NextBelow(40));
      const bool model_ok = model.UpdateTag(key, tag);
      const auto table_updated = table.Update(
          [&](const Row& row) { return row[0].AsInteger() == key; },
          {{1, Value::Text_(tag)}});
      // A no-match update succeeds with 0 rows in both worlds.
      const bool table_ok = table_updated.ok();
      ASSERT_EQ(table_ok, model_ok) << "retag step " << step;
    }
    ASSERT_EQ(Snapshot(table), Snapshot(model)) << "state after step "
                                                << step;
    // Index invariant: every row is findable through its PK index.
    for (const Row& row : table.rows()) {
      const auto found = table.FindByUnique(0, row[0]);
      ASSERT_TRUE(found.has_value());
      ASSERT_EQ(table.row(*found)[0], row[0]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableModelTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace goofi::db
