#include "util/strings.h"

#include <gtest/gtest.h>

namespace goofi {
namespace {

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("a b"), "a b");
}

TEST(StringsTest, SplitStringKeepsEmptyPieces) {
  EXPECT_EQ(SplitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringsTest, CaseHelpers) {
  EXPECT_EQ(AsciiToLower("MiXeD"), "mixed");
  EXPECT_EQ(AsciiToUpper("MiXeD"), "MIXED");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_TRUE(StartsWith("cpu.regs.r3", "cpu.regs."));
  EXPECT_FALSE(StartsWith("cpu", "cpu.regs."));
  EXPECT_TRUE(EndsWith("file.schema", ".schema"));
}

TEST(StringsTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-42"), -42);
  EXPECT_EQ(ParseInt64("0x1F"), 31);
  EXPECT_EQ(ParseInt64(" 7 "), 7);
  EXPECT_EQ(ParseInt64("9223372036854775807"), 9223372036854775807LL);
  EXPECT_FALSE(ParseInt64("9223372036854775808").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("12x").has_value());
  EXPECT_FALSE(ParseInt64("--3").has_value());
}

TEST(StringsTest, ParseInt64Min) {
  EXPECT_EQ(ParseInt64("-9223372036854775808"),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE(ParseInt64("-9223372036854775809").has_value());
}

TEST(StringsTest, ParseUint64) {
  EXPECT_EQ(ParseUint64("0xffffffffffffffff"), ~std::uint64_t{0});
  EXPECT_FALSE(ParseUint64("0x").has_value());
  EXPECT_FALSE(ParseUint64("-1").has_value());
  EXPECT_FALSE(ParseUint64("18446744073709551616").has_value());  // overflow
}

TEST(StringsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_FALSE(ParseDouble("3.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%08x", 0xBEEF), "0000beef");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

struct WildcardCase {
  const char* pattern;
  const char* text;
  bool glob_match;
};

class GlobMatchTest : public ::testing::TestWithParam<WildcardCase> {};

TEST_P(GlobMatchTest, Matches) {
  const WildcardCase& c = GetParam();
  EXPECT_EQ(GlobMatch(c.pattern, c.text), c.glob_match)
      << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GlobMatchTest,
    ::testing::Values(
        WildcardCase{"*", "", true}, WildcardCase{"*", "anything", true},
        WildcardCase{"cpu.regs.*", "cpu.regs.r3", true},
        WildcardCase{"cpu.regs.*", "cpu.pc", false},
        WildcardCase{"*.data?", "icache.line3.data2", true},
        WildcardCase{"?", "", false}, WildcardCase{"?", "a", true},
        WildcardCase{"a*b*c", "axxbyyc", true},
        WildcardCase{"a*b*c", "axxbyy", false},
        WildcardCase{"exact", "exact", true},
        WildcardCase{"exact", "exac", false},
        WildcardCase{"**", "x", true},
        WildcardCase{"mem@0x*", "mem@0x00010004", true}));

TEST(StringsTest, LikeMatchUsesSqlWildcards) {
  EXPECT_TRUE(LikeMatch("camp%", "campaign1"));
  EXPECT_TRUE(LikeMatch("%reference", "quickstart/reference"));
  EXPECT_TRUE(LikeMatch("exp___", "exp001"));
  EXPECT_FALSE(LikeMatch("exp___", "exp0001"));
  EXPECT_FALSE(LikeMatch("camp%", "scamp"));
}

TEST(StringsTest, TsvEscapeRoundTrip) {
  const std::string nasty = "a\tb\nc\rd\\e";
  const std::string escaped = EscapeTsvField(nasty);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(UnescapeTsvField(escaped), nasty);
}

TEST(StringsTest, TsvUnescapeRejectsMalformed) {
  EXPECT_FALSE(UnescapeTsvField("trailing\\").has_value());
  EXPECT_FALSE(UnescapeTsvField("bad\\q").has_value());
}

TEST(StringsTest, HexRoundTrip) {
  const std::string bytes("\x00\xff\x10 abc", 7);
  EXPECT_EQ(HexDecode(HexEncode(bytes)), bytes);
  EXPECT_EQ(HexEncode("\xAB"), "ab");
  EXPECT_FALSE(HexDecode("abc").has_value());   // odd length
  EXPECT_FALSE(HexDecode("zz").has_value());
}

}  // namespace
}  // namespace goofi
