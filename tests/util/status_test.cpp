#include "util/status.h"

#include <gtest/gtest.h>

namespace goofi {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("no such table");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.message(), "no such table");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: no such table");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_FALSE(NotFoundError("x") == NotFoundError("y"));
  EXPECT_FALSE(NotFoundError("x") == InternalError("x"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(InvalidArgumentError("m").code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("m").code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("m").code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("m").code(), ErrorCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("m").code(), ErrorCode::kUnimplemented);
  EXPECT_EQ(InternalError("m").code(), ErrorCode::kInternal);
  EXPECT_EQ(DataLossError("m").code(), ErrorCode::kDataLoss);
  EXPECT_EQ(ConstraintViolationError("m").code(),
            ErrorCode::kConstraintViolation);
  EXPECT_EQ(ParseError("m").code(), ErrorCode::kParseError);
  EXPECT_EQ(TargetFaultError("m").code(), ErrorCode::kTargetFault);
  EXPECT_EQ(IoError("m").code(), ErrorCode::kIo);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("gone");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  ASSIGN_OR_RETURN(int half, Half(x));
  RETURN_IF_ERROR(Status::Ok());
  *out = half;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagatesErrors) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
  const Status status = UseMacros(9, &out);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(out, 4);  // untouched on failure
}

}  // namespace
}  // namespace goofi
