#include "util/config.h"

#include <gtest/gtest.h>

namespace goofi {
namespace {

constexpr const char* kSample = R"(
# a comment
top_key = top value

[campaign]
name = regs
experiments = 500
ratio = 0.25
enabled = yes
location[] = cpu.regs.*
location[] = cpu.pc

[campaign]
name = caches

; semicolon comment
[env]
gain = 8
)";

TEST(ConfigTest, ParsesSectionsInOrder) {
  auto config = Config::Parse(kSample);
  ASSERT_TRUE(config.ok());
  // Implicit top section + campaign + campaign + env.
  ASSERT_EQ(config->sections().size(), 4u);
  EXPECT_EQ(config->sections()[0].name(), "");
  EXPECT_EQ(config->sections()[1].name(), "campaign");
  EXPECT_EQ(config->sections()[3].name(), "env");
}

TEST(ConfigTest, TopLevelKeys) {
  auto config = Config::Parse(kSample);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->sections()[0].GetStringOr("top_key", ""), "top value");
}

TEST(ConfigTest, FindSectionReturnsFirst) {
  auto config = Config::Parse(kSample);
  ASSERT_TRUE(config.ok());
  const ConfigSection* campaign = config->FindSection("campaign");
  ASSERT_NE(campaign, nullptr);
  EXPECT_EQ(campaign->GetStringOr("name", ""), "regs");
  EXPECT_EQ(config->FindSections("campaign").size(), 2u);
  EXPECT_EQ(config->FindSection("missing"), nullptr);
}

TEST(ConfigTest, TypedGetters) {
  auto config = Config::Parse(kSample);
  ASSERT_TRUE(config.ok());
  const ConfigSection* campaign = config->FindSection("campaign");
  EXPECT_EQ(campaign->GetIntOr("experiments", 0), 500);
  EXPECT_DOUBLE_EQ(campaign->GetDoubleOr("ratio", 0), 0.25);
  EXPECT_TRUE(campaign->GetBoolOr("enabled", false));
  EXPECT_EQ(campaign->GetIntOr("missing", -7), -7);
  const auto bad = campaign->GetInt("name");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kParseError);
  const auto missing = campaign->GetInt("nope");
  EXPECT_EQ(missing.status().code(), ErrorCode::kNotFound);
}

TEST(ConfigTest, ListKeys) {
  auto config = Config::Parse(kSample);
  ASSERT_TRUE(config.ok());
  const ConfigSection* campaign = config->FindSection("campaign");
  EXPECT_EQ(campaign->GetList("location"),
            (std::vector<std::string>{"cpu.regs.*", "cpu.pc"}));
  EXPECT_TRUE(campaign->GetList("nothing").empty());
}

TEST(ConfigTest, BooleanSpellings) {
  auto config = Config::Parse(
      "a = true\nb = FALSE\nc = 1\nd = off\ne = maybe\n");
  ASSERT_TRUE(config.ok());
  const ConfigSection& top = config->sections()[0];
  EXPECT_TRUE(*top.GetBool("a"));
  EXPECT_FALSE(*top.GetBool("b"));
  EXPECT_TRUE(*top.GetBool("c"));
  EXPECT_FALSE(*top.GetBool("d"));
  EXPECT_FALSE(top.GetBool("e").ok());
}

TEST(ConfigTest, ParseErrorsCarryLineNumbers) {
  const auto no_eq = Config::Parse("just some words\n");
  ASSERT_FALSE(no_eq.ok());
  EXPECT_NE(no_eq.status().message().find("line 1"), std::string::npos);

  const auto bad_section = Config::Parse("\n[unclosed\n");
  ASSERT_FALSE(bad_section.ok());
  EXPECT_NE(bad_section.status().message().find("line 2"), std::string::npos);

  EXPECT_FALSE(Config::Parse("= value\n").ok());
}

TEST(ConfigTest, SerializeRoundTrip) {
  auto config = Config::Parse(kSample);
  ASSERT_TRUE(config.ok());
  auto reparsed = Config::Parse(config->Serialize());
  ASSERT_TRUE(reparsed.ok());
  const ConfigSection* campaign = reparsed->FindSection("campaign");
  ASSERT_NE(campaign, nullptr);
  EXPECT_EQ(campaign->GetList("location").size(), 2u);
  EXPECT_EQ(reparsed->FindSection("env")->GetIntOr("gain", 0), 8);
}

TEST(ConfigTest, LoadFileReportsMissing) {
  const auto missing = Config::LoadFile("/nonexistent/path.ini");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), ErrorCode::kIo);
}

TEST(ConfigTest, ScalarGetUsesLastOccurrence) {
  auto config = Config::Parse("k = first\nk = second\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->sections()[0].GetStringOr("k", ""), "second");
  EXPECT_EQ(config->sections()[0].GetList("k").size(), 2u);
}

}  // namespace
}  // namespace goofi
