#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace goofi {
namespace {

TEST(BitVectorTest, StartsZeroed) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.PopCount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.Get(i));
}

TEST(BitVectorTest, SetGetFlip) {
  BitVector v(70);
  v.Set(0, true);
  v.Set(63, true);
  v.Set(64, true);
  v.Set(69, true);
  EXPECT_TRUE(v.Get(0));
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(69));
  EXPECT_EQ(v.PopCount(), 4u);
  v.Flip(64);
  EXPECT_FALSE(v.Get(64));
  v.Flip(1);
  EXPECT_TRUE(v.Get(1));
  EXPECT_EQ(v.PopCount(), 4u);
}

TEST(BitVectorTest, FieldWithinOneWord) {
  BitVector v(64);
  v.SetField(4, 16, 0xBEEF);
  EXPECT_EQ(v.GetField(4, 16), 0xBEEFu);
  EXPECT_EQ(v.GetField(0, 4), 0u);
  EXPECT_EQ(v.GetField(20, 8), 0u);
}

TEST(BitVectorTest, FieldStraddlingWordBoundary) {
  BitVector v(128);
  v.SetField(60, 32, 0xDEADBEEF);
  EXPECT_EQ(v.GetField(60, 32), 0xDEADBEEFu);
  // Neighbours untouched.
  EXPECT_EQ(v.GetField(0, 60), 0u);
  EXPECT_EQ(v.GetField(92, 36), 0u);
}

TEST(BitVectorTest, Full64BitField) {
  BitVector v(200);
  const std::uint64_t value = 0x0123456789abcdefULL;
  v.SetField(0, 64, value);
  EXPECT_EQ(v.GetField(0, 64), value);
  v.SetField(100, 64, value);
  EXPECT_EQ(v.GetField(100, 64), value);
  EXPECT_EQ(v.GetField(0, 64), value);  // first field intact
}

TEST(BitVectorTest, SetFieldOverwritesOldBits) {
  BitVector v(64);
  v.SetField(8, 8, 0xFF);
  v.SetField(8, 8, 0x0F);
  EXPECT_EQ(v.GetField(8, 8), 0x0Fu);
  EXPECT_EQ(v.PopCount(), 4u);
}

TEST(BitVectorTest, HammingDistance) {
  BitVector a(100);
  BitVector b(100);
  EXPECT_EQ(a.HammingDistance(b), 0u);
  a.Set(3, true);
  b.Set(97, true);
  EXPECT_EQ(a.HammingDistance(b), 2u);
  b.Set(3, true);
  EXPECT_EQ(a.HammingDistance(b), 1u);
}

TEST(BitVectorTest, FillOneRespectsTail) {
  BitVector v(67);
  v.FillOne();
  EXPECT_EQ(v.PopCount(), 67u);
  v.FillZero();
  EXPECT_EQ(v.PopCount(), 0u);
}

TEST(BitVectorTest, ShiftRightInsertTop) {
  BitVector v = BitVector::FromBitString("10110");
  EXPECT_TRUE(v.ShiftRightInsertTop(true));    // out = old bit 0 = 1
  EXPECT_EQ(v.ToBitString(), "01101");
  EXPECT_FALSE(v.ShiftRightInsertTop(false));  // out = 0
  EXPECT_EQ(v.ToBitString(), "11010");
}

TEST(BitVectorTest, ShiftAcrossWordBoundary) {
  BitVector v(130);
  v.Set(64, true);
  v.Set(129, true);
  EXPECT_FALSE(v.ShiftRightInsertTop(false));
  EXPECT_TRUE(v.Get(63));
  EXPECT_FALSE(v.Get(64));
  EXPECT_TRUE(v.Get(128));
  EXPECT_FALSE(v.Get(129));
  // Full rotation restores the original pattern.
  BitVector w = BitVector::FromBitString("1100101");
  BitVector original = w;
  for (int i = 0; i < 7; ++i) {
    const bool out = w.ShiftRightInsertTop(false);
    w.Set(6, out);  // feed back
  }
  EXPECT_TRUE(w == original);
}

TEST(BitVectorTest, BitStringRoundTrip) {
  const std::string bits = "1011001110001";
  BitVector v = BitVector::FromBitString(bits);
  EXPECT_EQ(v.size(), bits.size());
  EXPECT_EQ(v.ToBitString(), bits);
}

TEST(BitVectorTest, HexStringFormat) {
  BitVector v(8);
  v.SetField(0, 8, 0xA5);
  EXPECT_EQ(v.ToHexString(), "8:5a");  // low nibble first
}

TEST(BitVectorTest, HexRejectsMalformed) {
  BitVector out;
  EXPECT_FALSE(BitVector::FromHexString("nocolon", &out));
  EXPECT_FALSE(BitVector::FromHexString("8:z5", &out));
  EXPECT_FALSE(BitVector::FromHexString("8:5", &out));     // wrong length
  EXPECT_FALSE(BitVector::FromHexString("5:ff", &out));    // tail bits set
  EXPECT_TRUE(BitVector::FromHexString("5:f1", &out));     // 5 bits all set
  EXPECT_EQ(out.PopCount(), 5u);
}

TEST(BitVectorTest, EqualityIncludesSize) {
  BitVector a(10);
  BitVector b(11);
  EXPECT_FALSE(a == b);
  BitVector c(10);
  EXPECT_TRUE(a == c);
  c.Set(9, true);
  EXPECT_FALSE(a == c);
}

// Property sweep: hex round trip over many random sizes and contents.
class BitVectorRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitVectorRoundTrip, HexRoundTripIsLossless) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const std::size_t size = 1 + rng.NextBelow(5000);
  BitVector v(size);
  for (std::size_t i = 0; i < size; ++i) v.Set(i, rng.NextBool());
  BitVector parsed;
  ASSERT_TRUE(BitVector::FromHexString(v.ToHexString(), &parsed));
  EXPECT_TRUE(v == parsed);
  // Bit-string round trip agrees too.
  EXPECT_TRUE(BitVector::FromBitString(v.ToBitString()) == v);
}

TEST_P(BitVectorRoundTrip, FieldReadBackMatchesWrites) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  BitVector v(512);
  for (int round = 0; round < 50; ++round) {
    const std::size_t width = 1 + rng.NextBelow(64);
    const std::size_t bit = rng.NextBelow(512 - width + 1);
    const std::uint64_t value =
        width == 64 ? rng.NextU64()
                    : rng.NextU64() & ((std::uint64_t{1} << width) - 1);
    v.SetField(bit, width, value);
    EXPECT_EQ(v.GetField(bit, width), value)
        << "bit=" << bit << " width=" << width;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitVectorRoundTrip, ::testing::Range(0, 20));

}  // namespace
}  // namespace goofi
