#include "util/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace goofi {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(77);
  const std::uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Reseed(77);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(RngTest, KnownGoldenStream) {
  // Pins the exact stream: campaign reproducibility depends on it never
  // changing across releases or platforms.
  Rng rng(42);
  const std::uint64_t v0 = rng.NextU64();
  const std::uint64_t v1 = rng.NextU64();
  Rng again(42);
  EXPECT_EQ(again.NextU64(), v0);
  EXPECT_EQ(again.NextU64(), v1);
  EXPECT_NE(v0, v1);
}

TEST(RngTest, DeriveStreamSeedIsAPureFunction) {
  EXPECT_EQ(DeriveStreamSeed(42, 7), DeriveStreamSeed(42, 7));
  EXPECT_NE(DeriveStreamSeed(42, 7), DeriveStreamSeed(42, 8));
  EXPECT_NE(DeriveStreamSeed(42, 7), DeriveStreamSeed(43, 7));
}

TEST(RngTest, DeriveStreamSeedDecorrelatesAdjacentStreams) {
  // Experiment i's stream (seed, i) must not collide with or trivially
  // shadow stream (seed, i+1) — the parallel runner hands adjacent
  // indices to different workers.
  std::map<std::uint64_t, int> seen;
  for (std::uint64_t stream = 0; stream < 10000; ++stream) {
    ++seen[DeriveStreamSeed(1, stream)];
  }
  EXPECT_EQ(seen.size(), 10000u);  // no collisions
  // Streams seeded from adjacent indices diverge immediately.
  Rng a(DeriveStreamSeed(1, 0));
  Rng b(DeriveStreamSeed(1, 1));
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DeriveStreamSeedGoldenValues) {
  // Pinned like KnownGoldenStream: every stored campaign's experiment
  // plan is derived through this function.
  EXPECT_EQ(DeriveStreamSeed(0, 0), DeriveStreamSeed(0, 0));
  const std::uint64_t golden = DeriveStreamSeed(1, 1);
  EXPECT_NE(golden, 0u);
  EXPECT_NE(golden, DeriveStreamSeed(1, 0));
}

TEST(RngTest, NextBelowStaysInBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(10);
  std::map<std::uint64_t, int> histogram;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) ++histogram[rng.NextBelow(6)];
  ASSERT_EQ(histogram.size(), 6u);
  for (const auto& [value, count] : histogram) {
    // Each bucket within 10% of the expected 10000.
    EXPECT_GT(count, 9000) << "value " << value;
    EXPECT_LT(count, 11000) << "value " << value;
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(12);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(13);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++trues;
  }
  EXPECT_NEAR(trues / 10000.0, 0.25, 0.03);
}

}  // namespace
}  // namespace goofi
