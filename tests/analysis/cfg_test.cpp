#include "analysis/cfg.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/assembler.h"

namespace goofi::analysis {
namespace {

using sim::Opcode;

Cfg BuildCfg(const std::string& source) {
  const auto program = sim::Assemble(source);
  EXPECT_TRUE(program.ok()) << program.status().message();
  const auto cfg = Cfg::Build(*program);
  EXPECT_TRUE(cfg.ok()) << cfg.status().message();
  return *cfg;
}

bool HasSuccessor(const BasicBlock& block, std::uint32_t target) {
  return std::find(block.successors.begin(), block.successors.end(),
                   target) != block.successors.end();
}

TEST(CfgTest, StraightLineIsOneBlock) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 5
  add r2, r1, r1
  halt
)");
  EXPECT_EQ(cfg.entry(), 0u);
  ASSERT_EQ(cfg.blocks().size(), 1u);
  const BasicBlock& block = cfg.blocks().at(0);
  EXPECT_EQ(block.begin, 0u);
  EXPECT_EQ(block.end, 12u);
  EXPECT_TRUE(block.successors.empty());
  EXPECT_FALSE(block.falls_off_image);
  EXPECT_FALSE(block.has_indirect_successor);
  EXPECT_TRUE(cfg.IsReachable(0));
  EXPECT_TRUE(cfg.IsReachable(8));
  EXPECT_FALSE(cfg.IsReachable(12));
  ASSERT_NE(cfg.InstructionAt(4), nullptr);
  EXPECT_EQ(cfg.InstructionAt(4)->opcode, Opcode::kAdd);
  ASSERT_NE(cfg.BlockContaining(8), nullptr);
  EXPECT_EQ(cfg.BlockContaining(8)->begin, 0u);
  EXPECT_EQ(cfg.BlockContaining(12), nullptr);
  EXPECT_TRUE(cfg.returns_resolved());
}

TEST(CfgTest, ConditionalBranchHasTakenAndFallThroughEdges) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 1
  beq r1, r2, done
  addi r1, r1, 1
done:
  halt
)");
  // 0: addi, 4: beq -> 12, 8: addi, 12: halt.
  ASSERT_EQ(cfg.blocks().size(), 3u);
  const BasicBlock& head = cfg.blocks().at(0);
  EXPECT_EQ(head.end, 8u);
  EXPECT_TRUE(HasSuccessor(head, 12));
  EXPECT_TRUE(HasSuccessor(head, 8));
  EXPECT_TRUE(HasSuccessor(cfg.blocks().at(8), 12));
  EXPECT_TRUE(cfg.blocks().at(12).successors.empty());
}

TEST(CfgTest, AlwaysTakenBranchPrunesFallThrough) {
  // The assembler's `b` is beq r0, r0: same-register, always taken.
  const auto program = sim::Assemble(R"(
.entry start
start:
  b done
  li r9, 1
done:
  halt
)");
  ASSERT_TRUE(program.ok());
  const auto cfg = Cfg::Build(*program);
  ASSERT_TRUE(cfg.ok());
  const BasicBlock& head = cfg->blocks().at(0);
  ASSERT_EQ(head.successors.size(), 1u);
  EXPECT_EQ(head.successors[0], 8u);
  EXPECT_FALSE(cfg->IsReachable(4));

  const auto dead = cfg->UnreachableCodeRanges(*program);
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].begin, 4u);
  EXPECT_EQ(dead[0].end, 8u);
}

TEST(CfgTest, NeverTakenSameRegisterBranchPrunesTarget) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  bne r3, r3, dead
  halt
dead:
  li r1, 1
  halt
)");
  const BasicBlock& head = cfg.blocks().at(0);
  ASSERT_EQ(head.successors.size(), 1u);
  EXPECT_EQ(head.successors[0], 4u);
  EXPECT_FALSE(cfg.IsReachable(8));
}

TEST(CfgTest, DisciplinedReturnsLinkEveryReturnSite) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  call leaf
  call leaf
  halt
leaf:
  addi r1, r1, 1
  ret
)");
  // 0: jal, 4: jal, 8: halt, 12: addi, 16: jalr lr.
  EXPECT_TRUE(cfg.returns_resolved());
  const BasicBlock* ret_block = cfg.BlockContaining(16);
  ASSERT_NE(ret_block, nullptr);
  EXPECT_FALSE(ret_block->has_indirect_successor);
  EXPECT_TRUE(HasSuccessor(*ret_block, 4));
  EXPECT_TRUE(HasSuccessor(*ret_block, 8));
  // With resolved returns a call edge goes only to the callee; the
  // return edge above carries control back.
  const BasicBlock& first_call = cfg.blocks().at(0);
  ASSERT_EQ(first_call.successors.size(), 1u);
  EXPECT_EQ(first_call.successors[0], 12u);
}

TEST(CfgTest, LinkRegisterSpillFallsBackToWidenedModel) {
  // `pop lr` reloads the link register from the stack: the discipline
  // proof cannot bound that jalr, so the whole image widens.
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  la sp, 0x24000
  call outer
  halt
outer:
  push lr
  call leaf
  pop lr
  ret
leaf:
  addi r1, r1, 1
  ret
)");
  EXPECT_FALSE(cfg.returns_resolved());
  bool saw_indirect = false;
  for (const auto& [begin, block] : cfg.blocks()) {
    (void)begin;
    saw_indirect = saw_indirect || block.has_indirect_successor;
  }
  EXPECT_TRUE(saw_indirect);
  // Widened calls keep the fall-through edge as the return path: the
  // block ending in `call outer` (jal at 8) flows to halt at 12.
  const BasicBlock* call_block = cfg.BlockContaining(8);
  ASSERT_NE(call_block, nullptr);
  EXPECT_TRUE(HasSuccessor(*call_block, 12));
}

TEST(CfgTest, MissingHaltFallsOffImage) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 1
  add r2, r1, r1
)");
  ASSERT_EQ(cfg.blocks().size(), 1u);
  EXPECT_TRUE(cfg.blocks().at(0).falls_off_image);
}

TEST(CfgTest, TrapHandlerIsDiscoveredAsRoot) {
  const auto program = sim::Assemble(R"(
.entry start
start:
  halt
trap_handler:
  li r1, 1
  halt
)");
  ASSERT_TRUE(program.ok());
  const auto cfg = Cfg::Build(*program);
  ASSERT_TRUE(cfg.ok());
  // No edge from the entry reaches it, but traps can.
  EXPECT_TRUE(cfg->IsReachable(4));
  EXPECT_TRUE(cfg->UnreachableCodeRanges(*program).empty());
}

TEST(CfgTest, UndecodableEntryFailsToBuild) {
  const auto program = sim::Assemble(R"(
.entry data
.org 0x10000
data:
  .word 0xffffffff
)");
  ASSERT_TRUE(program.ok());
  const auto cfg = Cfg::Build(*program);
  EXPECT_FALSE(cfg.ok());
}

TEST(CfgTest, EntryPastImageFailsToBuild) {
  const auto program = sim::Assemble(R"(
.entry end
start:
  halt
end:
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(Cfg::Build(*program).ok());
}

}  // namespace
}  // namespace goofi::analysis
