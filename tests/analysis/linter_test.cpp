#include "analysis/linter.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "target/cache_target.h"
#include "target/thor_rd_target.h"

namespace goofi::analysis {
namespace {

using Severity = LintDiagnostic::Severity;

const LintDiagnostic* Find(const std::vector<LintDiagnostic>& diagnostics,
                           const std::string& check) {
  for (const LintDiagnostic& diagnostic : diagnostics) {
    if (diagnostic.check == check) return &diagnostic;
  }
  return nullptr;
}

std::string WriteTempFile(const std::string& name,
                          const std::string& content) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  return path;
}

TEST(LintFormatTest, FormatsFileLineSeverityAndCheck) {
  const LintDiagnostic with_line{Severity::kError, "w.s", 7, "asm-error",
                                 "boom"};
  EXPECT_EQ(FormatDiagnostic(with_line), "w.s:7: error: boom [asm-error]");
  const LintDiagnostic whole_file{Severity::kWarning, "w.s", 0,
                                  "unreachable-code", "dead"};
  EXPECT_EQ(FormatDiagnostic(whole_file),
            "w.s: warning: dead [unreachable-code]");
}

TEST(LintFormatTest, HasErrorsIgnoresWarnings) {
  EXPECT_FALSE(HasErrors({}));
  EXPECT_FALSE(
      HasErrors({{Severity::kWarning, "f", 1, "unreachable-code", "m"}}));
  EXPECT_TRUE(HasErrors({{Severity::kWarning, "f", 1, "c", "m"},
                         {Severity::kError, "f", 2, "c", "m"}}));
}

// ---- assembly-source checks -------------------------------------------

TEST(LintSourceTest, CleanProgramHasNoDiagnostics) {
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry start
start:
  li r1, 3
  la r6, 0x10000
  call double
  st r1, [r6]
  halt
double:
  add r1, r1, r1
  ret
)");
  EXPECT_TRUE(diagnostics.empty())
      << FormatDiagnostic(diagnostics.front());
}

TEST(LintSourceTest, AsmErrorIsAnchoredToItsLine) {
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry start
start:
  frobnicate r1
)");
  const LintDiagnostic* found = Find(diagnostics, "asm-error");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 3);
  EXPECT_NE(found->message.find("frobnicate"), std::string::npos);
}

TEST(LintSourceTest, BadEntryIsAnError) {
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry end
start:
  halt
end:
)");
  const LintDiagnostic* found = Find(diagnostics, "bad-entry");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 0);
}

TEST(LintSourceTest, UnreachableCodeWarnsAtTheDeadLine) {
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry start
start:
  b done
  li r9, 1
done:
  halt
)");
  const LintDiagnostic* found = Find(diagnostics, "unreachable-code");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kWarning);
  EXPECT_EQ(found->line, 4);
  EXPECT_NE(found->message.find("1 instruction"), std::string::npos);
}

TEST(LintSourceTest, WriteToR0Warns) {
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry start
start:
  li r1, 1
  add r0, r1, r1
  halt
)");
  const LintDiagnostic* found = Find(diagnostics, "write-to-r0");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kWarning);
  EXPECT_EQ(found->line, 4);
}

TEST(LintSourceTest, LinkDiscardingJumpsDoNotWarnAboutR0) {
  // `ret` is jalr with ra = r0 — discarding the link is idiom.
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry start
start:
  call leaf
  halt
leaf:
  ret
)");
  EXPECT_EQ(Find(diagnostics, "write-to-r0"), nullptr);
}

TEST(LintSourceTest, FallingOffTheImageIsAnError) {
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry start
start:
  li r1, 1
)");
  const LintDiagnostic* found = Find(diagnostics, "falls-off-image");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 3);
}

TEST(LintSourceTest, MaybeUninitReadWarns) {
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry start
start:
  add r2, r1, r1
  halt
)");
  const LintDiagnostic* found = Find(diagnostics, "maybe-uninit-read");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kWarning);
  EXPECT_EQ(found->line, 3);
  EXPECT_NE(found->message.find("r1"), std::string::npos);
}

TEST(LintSourceTest, UnmappedAddressIsAnError) {
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry start
start:
  la r6, 0x50000
  st r0, [r6]
  halt
)");
  const LintDiagnostic* found = Find(diagnostics, "unmapped-address");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 4);
  EXPECT_NE(found->message.find("0x00050000"), std::string::npos);
}

TEST(LintSourceTest, StoreToCodeSegmentWarns) {
  const auto diagnostics = LintWorkloadSource("w.s", R"(.entry start
start:
  la r6, 0x100
  st r0, [r6]
  halt
)");
  const LintDiagnostic* found = Find(diagnostics, "store-to-code");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kWarning);
  EXPECT_EQ(found->line, 4);
}

// ---- .workload spec files ---------------------------------------------

TEST(LintSpecTest, MissingFileIsAnIoError) {
  const auto diagnostics =
      LintWorkloadSpecFile("/nonexistent/dir/x.workload");
  const LintDiagnostic* found = Find(diagnostics, "io-error");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
}

TEST(LintSpecTest, MissingWorkloadSectionIsAnError) {
  const std::string path =
      WriteTempFile("lint_nosection.workload", "[other]\nname = x\n");
  EXPECT_NE(Find(LintWorkloadSpecFile(path), "missing-section"), nullptr);
}

TEST(LintSpecTest, CleanSpecHasNoDiagnostics) {
  WriteTempFile("lint_clean.s", ".entry start\nstart:\n  halt\n");
  const std::string path = WriteTempFile("lint_clean.workload",
                                         "[workload]\n"
                                         "name = demo\n"
                                         "assembly_file = lint_clean.s\n"
                                         "output_base = 0x10000\n"
                                         "output_length = 16\n"
                                         "environment = engine\n");
  const auto diagnostics = LintWorkloadSpecFile(path);
  EXPECT_TRUE(diagnostics.empty())
      << FormatDiagnostic(diagnostics.front());
}

TEST(LintSpecTest, ReportsSpecLevelProblemsWithLines) {
  WriteTempFile("lint_bad.s", ".entry start\nstart:\n  halt\n");
  const std::string path = WriteTempFile(
      "lint_bad.workload",
      "[workload]\n"               // line 1
      "name = demo\n"              // line 2
      "assembly_file = lint_bad.s\n"
      "output_base = 0x1fffc\n"    // line 4: region crosses data->stack
      "output_length = 16\n"
      "environment = marsrover\n"  // line 6
      "frobs = 3\n");              // line 7
  const auto diagnostics = LintWorkloadSpecFile(path);

  const LintDiagnostic* range = Find(diagnostics, "output-range");
  ASSERT_NE(range, nullptr);
  EXPECT_EQ(range->severity, Severity::kError);
  EXPECT_EQ(range->line, 4);

  const LintDiagnostic* environment =
      Find(diagnostics, "unknown-environment");
  ASSERT_NE(environment, nullptr);
  EXPECT_EQ(environment->line, 6);

  const LintDiagnostic* unknown = Find(diagnostics, "unknown-key");
  ASSERT_NE(unknown, nullptr);
  EXPECT_EQ(unknown->severity, Severity::kWarning);
  EXPECT_EQ(unknown->line, 7);
}

TEST(LintSpecTest, MissingNameAndAssemblyFileAreErrors) {
  const std::string path =
      WriteTempFile("lint_empty.workload", "[workload]\n");
  const auto diagnostics = LintWorkloadSpecFile(path);
  int missing = 0;
  for (const LintDiagnostic& diagnostic : diagnostics) {
    if (diagnostic.check == "missing-key") ++missing;
  }
  EXPECT_EQ(missing, 2);  // no name, no assembly_file
}

TEST(LintSpecTest, UnreadableAssemblyFileIsAnIoError) {
  const std::string path = WriteTempFile("lint_noasm.workload",
                                         "[workload]\n"
                                         "name = demo\n"
                                         "assembly_file = missing_xyz.s\n");
  const LintDiagnostic* found =
      Find(LintWorkloadSpecFile(path), "io-error");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->line, 3);
}

// ---- campaign definitions ---------------------------------------------

std::vector<LintDiagnostic> LintCampaign(const std::string& text) {
  return LintCampaignText("c.ini", text, nullptr);
}

constexpr const char* kCleanCampaign =
    "[campaign]\n"
    "name = demo\n"
    "workload = isort\n"
    "technique = scifi\n"
    "fault_model = transient\n"
    "experiments = 10\n";

TEST(LintCampaignTest, CleanCampaignHasNoDiagnostics) {
  const auto diagnostics = LintCampaign(kCleanCampaign);
  EXPECT_TRUE(diagnostics.empty())
      << FormatDiagnostic(diagnostics.front());
}

TEST(LintCampaignTest, IniParseErrorIsAnchored) {
  const auto diagnostics = LintCampaign("[campaign]\nbogus line\n");
  const LintDiagnostic* found = Find(diagnostics, "ini-error");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 2);
}

TEST(LintCampaignTest, MissingCampaignSectionIsAnError) {
  EXPECT_NE(Find(LintCampaign("[other]\nname = x\n"), "missing-section"),
            nullptr);
}

TEST(LintCampaignTest, UnknownKeyWarns) {
  const auto diagnostics =
      LintCampaign(std::string(kCleanCampaign) + "frobnicate = 1\n");
  const LintDiagnostic* found = Find(diagnostics, "unknown-key");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kWarning);
  EXPECT_EQ(found->line, 7);
}

TEST(LintCampaignTest, MissingNameAndWorkloadAreErrors) {
  const auto diagnostics = LintCampaign("[campaign]\n");
  int missing = 0;
  for (const LintDiagnostic& diagnostic : diagnostics) {
    if (diagnostic.check == "missing-key") ++missing;
  }
  EXPECT_EQ(missing, 2);
}

TEST(LintCampaignTest, UnknownEnumValuesAreErrors) {
  const auto diagnostics = LintCampaign(
      "[campaign]\n"
      "name = demo\n"
      "workload = isort\n"
      "technique = warp\n"      // line 4
      "fault_model = cosmic\n"  // line 5
      "logging = chatty\n"      // line 6
      "trigger = moonphase\n"); // line 7
  int line = 4;
  for (const char* key : {"technique", "fault_model", "logging", "trigger"}) {
    (void)key;
    bool found = false;
    for (const LintDiagnostic& diagnostic : diagnostics) {
      found = found || (diagnostic.check == "unknown-value" &&
                        diagnostic.line == line &&
                        diagnostic.severity == Severity::kError);
    }
    EXPECT_TRUE(found) << "no unknown-value diagnostic at line " << line;
    ++line;
  }
}

TEST(LintCampaignTest, UnknownWorkloadListsTheBuiltins) {
  const auto diagnostics = LintCampaign(
      "[campaign]\n"
      "name = demo\n"
      "workload = nosuch\n");
  const LintDiagnostic* found = Find(diagnostics, "unknown-workload");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 3);
  EXPECT_NE(found->message.find("isort"), std::string::npos);
}

TEST(LintCampaignTest, BadNumericValues) {
  const auto diagnostics = LintCampaign(std::string(kCleanCampaign) +
                                        "multiplicity = 0\n"
                                        "time_window_lo = 9\n"
                                        "time_window_hi = 3\n");
  int bad = 0;
  for (const LintDiagnostic& diagnostic : diagnostics) {
    if (diagnostic.check == "bad-value") ++bad;
  }
  EXPECT_EQ(bad, 2);  // multiplicity and the empty window
}

TEST(LintCampaignTest, ZeroExperimentsOnlyWarns) {
  const auto diagnostics = LintCampaign(
      "[campaign]\n"
      "name = demo\n"
      "workload = isort\n"
      "experiments = 0\n");
  const LintDiagnostic* found = Find(diagnostics, "bad-value");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kWarning);
  EXPECT_FALSE(HasErrors(diagnostics));
}

TEST(LintCampaignTest, IgnoredKeysForMismatchedFaultModel) {
  const auto diagnostics = LintCampaign(std::string(kCleanCampaign) +
                                        "intermittent_period = 5\n"
                                        "stuck_to_one = yes\n");
  int ignored = 0;
  for (const LintDiagnostic& diagnostic : diagnostics) {
    if (diagnostic.check == "ignored-key") {
      ++ignored;
      EXPECT_EQ(diagnostic.severity, Severity::kWarning);
    }
  }
  EXPECT_EQ(ignored, 2);
}

TEST(LintCampaignTest, PreRuntimeSwifiIgnoresTriggerAndStaticAnalysis) {
  const auto diagnostics = LintCampaign(
      "[campaign]\n"
      "name = demo\n"
      "workload = qsort\n"
      "technique = swifi_pre_runtime\n"
      "trigger = instret\n"
      "static_analysis = yes\n");
  int ignored = 0;
  for (const LintDiagnostic& diagnostic : diagnostics) {
    if (diagnostic.check == "ignored-key") ++ignored;
  }
  EXPECT_EQ(ignored, 2);
}

TEST(LintCampaignTest, SupervisionKeysAreKnownAndCleanTogether) {
  const auto diagnostics = LintCampaign(std::string(kCleanCampaign) +
                                        "experiment_timeout_ms = 2000\n"
                                        "max_retries = 2\n"
                                        "retry_backoff_ms = 10\n"
                                        "jobs = 4\n");
  EXPECT_TRUE(diagnostics.empty())
      << FormatDiagnostic(diagnostics.front());
}

TEST(LintCampaignTest, RetriesWithoutATimeoutWarn) {
  // max_retries without experiment_timeout_ms: retries only fire on
  // returned errors, so a wedged target still stalls the campaign for
  // the full derived deadline. Flag the half-configured supervisor.
  const auto diagnostics =
      LintCampaign(std::string(kCleanCampaign) + "max_retries = 2\n");
  const LintDiagnostic* found = Find(diagnostics, "retry-without-timeout");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kWarning);
  EXPECT_EQ(found->line, 7);
}

TEST(LintCampaignTest, BackoffWithoutRetriesIsIgnored) {
  const auto diagnostics = LintCampaign(std::string(kCleanCampaign) +
                                        "experiment_timeout_ms = 2000\n"
                                        "retry_backoff_ms = 10\n");
  const LintDiagnostic* found = Find(diagnostics, "ignored-key");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kWarning);
  EXPECT_NE(found->message.find("retry_backoff_ms"), std::string::npos);
}

TEST(LintCampaignTest, LocationFilterMatchingNothingIsAnError) {
  target::ThorRdTarget thor;
  const auto locations = thor.ListLocations();
  const auto diagnostics = LintCampaignText(
      "c.ini", std::string(kCleanCampaign) + "location[] = nonexistent.*\n",
      &locations);
  const LintDiagnostic* found =
      Find(diagnostics, "filter-matches-nothing");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 7);
  EXPECT_NE(found->message.find("scifi"), std::string::npos);

  // A filter the technique can actually reach passes.
  const auto clean = LintCampaignText(
      "c.ini", std::string(kCleanCampaign) + "location[] = cpu.regs.*\n",
      &locations);
  EXPECT_EQ(Find(clean, "filter-matches-nothing"), nullptr);
}

TEST(LintCampaignTest, CacheFaultModelNamesAreKnownValues) {
  // The access-path fault models share the fault_model key; naming one
  // must not trip unknown-value (geometry checks need locations, so a
  // location-less lint stays quiet about them).
  const auto diagnostics = LintCampaign(
      "[campaign]\n"
      "name = demo\n"
      "workload = isort\n"
      "technique = scifi\n"
      "fault_model = cache_data_bit\n"
      "experiments = 10\n");
  EXPECT_EQ(Find(diagnostics, "unknown-value"), nullptr);
  EXPECT_EQ(Find(diagnostics, "cache-model-without-geometry"), nullptr);
}

TEST(LintCampaignTest, CacheModelWithoutGeometryIsAnError) {
  // A cache fault model against a board with no cache coordinates (the
  // scan-chain-only thor_rd) selects an empty fault space.
  target::ThorRdTarget thor;
  const auto thor_locations = thor.ListLocations();
  const std::string text =
      "[campaign]\n"
      "name = demo\n"
      "workload = isort\n"
      "technique = scifi\n"
      "fault_model = inflight_load_bit\n"  // line 5
      "experiments = 10\n";
  const auto diagnostics = LintCampaignText("c.ini", text, &thor_locations);
  const LintDiagnostic* found =
      Find(diagnostics, "cache-model-without-geometry");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 5);
  EXPECT_NE(found->message.find("cache_hierarchy"), std::string::npos);

  // The same campaign against the cache board is clean.
  target::CacheHierarchyTarget cache_target;
  const auto cache_locations = cache_target.ListLocations();
  const auto clean = LintCampaignText("c.ini", text, &cache_locations);
  EXPECT_EQ(Find(clean, "cache-model-without-geometry"), nullptr);
}

TEST(LintCampaignTest, CacheCoordinateOutOfRangeIsDiagnosed) {
  // A syntactically valid coordinate past the advertised geometry is
  // reported as out-of-range (with the real maxima), not as a generic
  // unmatched filter.
  target::CacheHierarchyTarget cache_target;
  const auto locations = cache_target.ListLocations();
  const auto diagnostics = LintCampaignText(
      "c.ini",
      std::string(kCleanCampaign) +
          "location[] = dcache.set99.word0.data\n",
      &locations);
  const LintDiagnostic* found = Find(diagnostics, "coordinate-out-of-range");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 7);
  EXPECT_NE(found->message.find("set15"), std::string::npos);
  EXPECT_EQ(Find(diagnostics, "filter-matches-nothing"), nullptr);

  // An in-range coordinate passes; a non-coordinate filter still gets
  // the generic diagnostic.
  const auto clean = LintCampaignText(
      "c.ini",
      std::string(kCleanCampaign) + "location[] = dcache.set15.word3.data\n",
      &locations);
  EXPECT_EQ(Find(clean, "coordinate-out-of-range"), nullptr);
  EXPECT_EQ(Find(clean, "filter-matches-nothing"), nullptr);
  const auto generic = LintCampaignText(
      "c.ini", std::string(kCleanCampaign) + "location[] = nonexistent.*\n",
      &locations);
  EXPECT_NE(Find(generic, "filter-matches-nothing"), nullptr);
}

TEST(LintCampaignTest, CacheCampaignIniIsClean) {
  // The shipped cache campaign must lint clean against the board it
  // names (goofi_lint resolves locations per campaign target).
  target::CacheHierarchyTarget cache_target;
  const auto locations = cache_target.ListLocations();
  const std::string path =
      std::string(GOOFI_CAMPAIGNS_DIR "/regs_cache_parity.ini");
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const auto diagnostics = LintCampaignText(path, text, &locations);
  EXPECT_TRUE(diagnostics.empty())
      << FormatDiagnostic(diagnostics.front());
}

TEST(LintCampaignTest, RepositoryCampaignsAreClean) {
  // The campaigns shipped in campaigns/ must stay lint-clean; CI runs
  // goofi-lint over them.
  target::ThorRdTarget thor;
  const auto locations = thor.ListLocations();
  for (const char* name : {"engine_preinjection", "image_swifi",
                           "regs_scifi", "regs_scifi_supervised",
                           "regs_scifi_equivalence"}) {
    const std::string path =
        std::string(GOOFI_CAMPAIGNS_DIR "/") + name + ".ini";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << path;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto diagnostics = LintCampaignText(path, text, &locations);
    EXPECT_TRUE(diagnostics.empty())
        << FormatDiagnostic(diagnostics.front());
  }
}

// ---- machine-readable output and deduplication ------------------------

TEST(LintJsonTest, EmptyBatchIsAnEmptyArray) {
  EXPECT_EQ(FormatDiagnosticsJson({}), "[]\n");
}

TEST(LintJsonTest, EmitsOneObjectPerDiagnosticWithEscaping) {
  const std::vector<LintDiagnostic> diagnostics = {
      {Severity::kError, "dir/w.s", 7, "asm-error", "bad \"thing\""},
      {Severity::kWarning, "c.ini", 0, "ignored-key", "line1\nline2"},
  };
  EXPECT_EQ(FormatDiagnosticsJson(diagnostics),
            "[\n"
            "  {\"file\": \"dir/w.s\", \"line\": 7, \"check\": "
            "\"asm-error\", \"severity\": \"error\", \"message\": "
            "\"bad \\\"thing\\\"\"},\n"
            "  {\"file\": \"c.ini\", \"line\": 0, \"check\": "
            "\"ignored-key\", \"severity\": \"warning\", \"message\": "
            "\"line1\\nline2\"}\n"
            "]\n");
}

TEST(LintDedupTest, DropsRepeatsOfTheSameFileLineCheck) {
  const std::vector<LintDiagnostic> deduped = DeduplicateDiagnostics({
      {Severity::kWarning, "w.s", 3, "maybe-uninit-read", "r1"},
      {Severity::kWarning, "w.s", 3, "maybe-uninit-read", "r2"},
      {Severity::kWarning, "w.s", 4, "maybe-uninit-read", "r1"},
      {Severity::kError, "w.s", 3, "unmapped-address", "x"},
      {Severity::kWarning, "w.s", 3, "maybe-uninit-read", "r3"},
  });
  ASSERT_EQ(deduped.size(), 3u);
  // First occurrence wins, original order preserved.
  EXPECT_EQ(deduped[0].message, "r1");
  EXPECT_EQ(deduped[0].line, 3);
  EXPECT_EQ(deduped[1].line, 4);
  EXPECT_EQ(deduped[2].check, "unmapped-address");
}

TEST(LintDedupTest, ExitCodeRelevantErrorsSurviveDedup) {
  // A duplicated error must still be an error after dedup.
  const auto deduped = DeduplicateDiagnostics({
      {Severity::kError, "w.s", 1, "asm-error", "a"},
      {Severity::kError, "w.s", 1, "asm-error", "a"},
  });
  ASSERT_EQ(deduped.size(), 1u);
  EXPECT_TRUE(HasErrors(deduped));
}

// ---- equivalence-mode campaign checks ---------------------------------

constexpr const char* kEquivalenceCampaign =
    "[campaign]\n"
    "name = demo\n"
    "workload = isort\n"
    "technique = scifi\n"
    "fault_model = transient\n"
    "static_analysis = equivalence\n";

TEST(LintCampaignTest, EquivalenceModeIsCleanOnItsSupportedShape) {
  const auto diagnostics = LintCampaign(kEquivalenceCampaign);
  EXPECT_TRUE(diagnostics.empty())
      << FormatDiagnostic(diagnostics.front());
}

TEST(LintCampaignTest, MisspelledStaticAnalysisValueIsAnError) {
  const auto diagnostics = LintCampaign(
      "[campaign]\n"
      "name = demo\n"
      "workload = isort\n"
      "static_analysis = equivalnce\n");
  const LintDiagnostic* found = Find(diagnostics, "unknown-value");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 4);
}

TEST(LintCampaignTest, EquivalenceRejectsNonInstretTriggers) {
  const auto diagnostics = LintCampaign(
      std::string(kEquivalenceCampaign) + "trigger = branch\n");
  EXPECT_NE(Find(diagnostics, "equivalence-needs-instret"), nullptr);
}

TEST(LintCampaignTest, EquivalenceRejectsNonTransientModels) {
  const auto diagnostics = LintCampaign(
      "[campaign]\n"
      "name = demo\n"
      "workload = isort\n"
      "fault_model = permanent\n"
      "static_analysis = equivalence\n");
  EXPECT_NE(Find(diagnostics, "equivalence-needs-transient"), nullptr);
}

TEST(LintCampaignTest, EquivalenceRejectsMultiBitAndDetailLogging) {
  const auto diagnostics = LintCampaign(
      std::string(kEquivalenceCampaign) +
      "multiplicity = 2\n"
      "logging = detail\n");
  EXPECT_NE(Find(diagnostics, "equivalence-needs-single-fault"), nullptr);
  EXPECT_NE(Find(diagnostics, "equivalence-needs-normal-logging"), nullptr);
}

// ---- [service] deployment-ini checks ----------------------------------

TEST(LintServiceTest, PureServiceIniIsACompleteFile) {
  const auto diagnostics = LintCampaign(
      "[service]\n"
      "root = /var/lib/goofi\n"
      "fleet_workers = 4\n"
      "queue_limit = 16\n"
      "max_campaign_jobs = 2\n");
  EXPECT_TRUE(diagnostics.empty()) << FormatDiagnostic(diagnostics.front());
}

TEST(LintServiceTest, NonPositiveFleetAndQueueAreErrors) {
  const auto diagnostics = LintCampaign(
      "[service]\n"
      "fleet_workers = 0\n"
      "queue_limit = -1\n");
  const LintDiagnostic* fleet = Find(diagnostics, "bad-value");
  ASSERT_NE(fleet, nullptr);
  EXPECT_EQ(fleet->severity, Severity::kError);
  EXPECT_EQ(fleet->line, 2);
  std::size_t bad_values = 0;
  for (const LintDiagnostic& diagnostic : diagnostics) {
    if (diagnostic.check == "bad-value") ++bad_values;
  }
  EXPECT_EQ(bad_values, 2u);
}

TEST(LintServiceTest, MaxJobsBeyondTheFleetIsAnError) {
  const auto diagnostics = LintCampaign(
      "[service]\n"
      "fleet_workers = 2\n"
      "max_campaign_jobs = 8\n");
  const LintDiagnostic* found = Find(diagnostics, "jobs-exceed-fleet");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kError);
  EXPECT_EQ(found->line, 3);
  EXPECT_NE(found->message.find("8"), std::string::npos);
  EXPECT_NE(found->message.find("2"), std::string::npos);
}

TEST(LintServiceTest, UnknownServiceKeyWarns) {
  const auto diagnostics = LintCampaign(
      "[service]\n"
      "fleet_wrokers = 4\n");
  const LintDiagnostic* found = Find(diagnostics, "unknown-key");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->severity, Severity::kWarning);
  EXPECT_EQ(found->line, 2);
}

TEST(LintServiceTest, ServiceSectionComposesWithACampaignSection) {
  // A deployment ini may carry a default campaign next to the daemon
  // settings; both sections get their own checks.
  const auto diagnostics = LintCampaign(
      "[service]\n"
      "fleet_workers = 0\n"
      "[campaign]\n"
      "name = demo\n"
      "workload = nosuch\n");
  EXPECT_NE(Find(diagnostics, "bad-value"), nullptr);
  EXPECT_NE(Find(diagnostics, "unknown-workload"), nullptr);
}

}  // namespace
}  // namespace goofi::analysis
