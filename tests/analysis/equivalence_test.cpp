#include "analysis/equivalence.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/access_recorder.h"
#include "target/target_types.h"

namespace goofi::analysis {
namespace {

using sim::AccessEvent;

TEST(BuildAccessIntervalsTest, NoEventsMeansNoIntervals) {
  EXPECT_TRUE(BuildAccessIntervals({}).empty());
}

TEST(BuildAccessIntervalsTest, EveryAccessClosesAnInterval) {
  // Write at t=3, read at t=7, read at t=9: three classes, reads
  // included — injections before and after a read reach different
  // first uses, so a read is a boundary just like a write.
  const std::vector<AccessEvent> events = {
      {3, true}, {7, false}, {9, false}};
  const std::vector<EquivInterval> intervals = BuildAccessIntervals(events);
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0].lo, 0u);
  EXPECT_EQ(intervals[0].hi, 3u);
  EXPECT_EQ(intervals[1].lo, 4u);
  EXPECT_EQ(intervals[1].hi, 7u);
  EXPECT_EQ(intervals[2].lo, 8u);
  EXPECT_EQ(intervals[2].hi, 9u);
  EXPECT_EQ(intervals[1].weight(), 4u);
}

TEST(BuildAccessIntervalsTest, SameTimeAccessesCollapse) {
  // An instruction that reads then writes the same location emits two
  // events with one time; they delimit a single class boundary.
  const std::vector<AccessEvent> events = {
      {2, false}, {2, true}, {5, false}};
  const std::vector<EquivInterval> intervals = BuildAccessIntervals(events);
  ASSERT_EQ(intervals.size(), 2u);
  EXPECT_EQ(intervals[0].lo, 0u);
  EXPECT_EQ(intervals[0].hi, 2u);
  EXPECT_EQ(intervals[1].lo, 3u);
  EXPECT_EQ(intervals[1].hi, 5u);
}

TEST(FaultSpacePartitionTest, RegisterLookupFindsTheEnclosingInterval) {
  sim::AccessRecorder recorder;
  recorder.OnRegisterWrite(3, 0, 7, 2);
  recorder.OnRegisterRead(3, 6);
  recorder.OnRegisterRead(3, 11);
  FaultSpacePartition partition;
  partition.Build(recorder, 20);

  const target::FaultTarget target{"cpu.regs.r3", 5};
  const auto first = partition.IntervalOf(target, 1);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->lo, 0u);
  EXPECT_EQ(first->hi, 2u);
  const auto middle = partition.IntervalOf(target, 4);
  ASSERT_TRUE(middle.has_value());
  EXPECT_EQ(middle->lo, 3u);
  EXPECT_EQ(middle->hi, 6u);
  // Past the last access the fault is never consumed: no class.
  EXPECT_FALSE(partition.IntervalOf(target, 12).has_value());
  // A register the trace never touched has no classes either.
  EXPECT_FALSE(
      partition.IntervalOf({"cpu.regs.r9", 0}, 1).has_value());
  EXPECT_EQ(partition.register_interval_count(), 3u);
}

TEST(FaultSpacePartitionTest, MemoryLookupResolvesByteAndBitToTheWord) {
  sim::AccessRecorder recorder;
  recorder.OnMemoryWrite(0x10004, 4, 0, 3);
  recorder.OnMemoryRead(0x10004, 4, 8);
  FaultSpacePartition partition;
  partition.Build(recorder, 20);

  // Byte-granularity locations with a bit offset land in their word:
  // mem@0x10005 bit 9 is byte 0x10006, word 0x10004.
  const auto interval =
      partition.IntervalOf({"mem@0x10005", 9}, 5);
  ASSERT_TRUE(interval.has_value());
  EXPECT_EQ(interval->lo, 4u);
  EXPECT_EQ(interval->hi, 8u);
  EXPECT_FALSE(partition.IntervalOf({"mem@0x20000", 0}, 5).has_value());
  EXPECT_EQ(partition.memory_interval_count(), 2u);
}

TEST(FaultSpacePartitionTest, UnmodeledLocationsHaveNoIntervals) {
  sim::AccessRecorder recorder;
  recorder.OnRegisterWrite(1, 0, 7, 2);
  FaultSpacePartition partition;
  partition.Build(recorder, 10);
  EXPECT_FALSE(partition.IntervalOf({"cpu.ir", 3}, 1).has_value());
  EXPECT_FALSE(partition.IntervalOf({"cpu.regs.r0", 0}, 1).has_value());
  EXPECT_FALSE(partition.IntervalOf({"cpu.regs.r16", 0}, 1).has_value());
  EXPECT_FALSE(
      partition.IntervalOf({"icache.set0.word0.data", 0}, 1).has_value());
}

TEST(EquivalenceClassIdTest, RoundTripsThroughTheTextForm) {
  const target::FaultTarget target{"cpu.regs.r12", 31};
  const std::string id = EquivalenceClassId(target, 17, 123);
  EXPECT_EQ(id, "cpu.regs.r12:b31:[17,123]");
  const auto key = ParseEquivalenceClassId(id);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->target.location, "cpu.regs.r12");
  EXPECT_EQ(key->target.bit, 31u);
  EXPECT_EQ(key->lo, 17u);
  EXPECT_EQ(key->hi, 123u);
  EXPECT_EQ(key->weight(), 107u);
}

TEST(EquivalenceClassIdTest, MemoryLocationsRoundTripToo) {
  const auto key =
      ParseEquivalenceClassId("mem@0x00010004:b7:[0,0]");
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->target.location, "mem@0x00010004");
  EXPECT_EQ(key->target.bit, 7u);
  EXPECT_EQ(key->weight(), 1u);
}

TEST(EquivalenceClassIdTest, MalformedIdsAreRejected) {
  EXPECT_FALSE(ParseEquivalenceClassId("").ok());
  EXPECT_FALSE(ParseEquivalenceClassId("cpu.regs.r1").ok());
  EXPECT_FALSE(ParseEquivalenceClassId("cpu.regs.r1:[0,4]").ok());
  EXPECT_FALSE(ParseEquivalenceClassId("cpu.regs.r1:b3:[4,0]").ok());
  EXPECT_FALSE(ParseEquivalenceClassId("cpu.regs.r1:b3:[0,4").ok());
  EXPECT_FALSE(ParseEquivalenceClassId(":b3:[0,4]").ok());
}

}  // namespace
}  // namespace goofi::analysis
