#include "core/crosscheck.h"

#include <gtest/gtest.h>

#include "target/workloads.h"

namespace goofi::core {
namespace {

// The soundness gate of the static analyzer (ISSUE: static liveness
// must be a SUPERSET of the dynamic pre-injection analysis on every
// built-in workload). A violation here means StaticLiveness could
// prune a location the reference run proves live — an unsound
// campaign.
TEST(CrossCheckTest, EveryBuiltinWorkloadSatisfiesTheSupersetInvariant) {
  for (const std::string& name : target::BuiltinWorkloadNames()) {
    const auto violations = CrossCheckWorkload(name);
    ASSERT_TRUE(violations.ok())
        << name << ": " << violations.status().message();
    for (const CrossCheckViolation& violation : *violations) {
      ADD_FAILURE() << violation.ToString();
    }
  }
}

TEST(CrossCheckTest, AggregateCheckerReportsOk) {
  const Status status = CrossCheckBuiltinWorkloads();
  EXPECT_TRUE(status.ok()) << status.message();
}

TEST(CrossCheckTest, UnknownWorkloadIsAnError) {
  EXPECT_FALSE(CrossCheckWorkload("no_such_workload").ok());
}

TEST(CrossCheckTest, ViolationFormatsPerKind) {
  CrossCheckViolation violation;
  violation.workload = "isort";
  violation.kind = "register";
  violation.time = 42;
  violation.pc = 0x10;
  violation.subject = 3;
  EXPECT_NE(violation.ToString().find("isort: r3 dynamically live"),
            std::string::npos);
  violation.kind = "memory";
  violation.subject = 0x10020;
  EXPECT_NE(violation.ToString().find("word 0x00010020"),
            std::string::npos);
  violation.kind = "reachability";
  EXPECT_NE(violation.ToString().find("statically unreachable"),
            std::string::npos);
}

}  // namespace
}  // namespace goofi::core
