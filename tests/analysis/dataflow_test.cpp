#include "analysis/dataflow.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/cfg.h"
#include "sim/assembler.h"

namespace goofi::analysis {
namespace {

constexpr std::uint16_t Bit(unsigned reg) {
  return static_cast<std::uint16_t>(1u << reg);
}

Cfg BuildCfg(const std::string& source) {
  const auto program = sim::Assemble(source);
  EXPECT_TRUE(program.ok()) << program.status().message();
  const auto cfg = Cfg::Build(*program);
  EXPECT_TRUE(cfg.ok()) << cfg.status().message();
  return *cfg;
}

TEST(LivenessTest, StraightLineLiveInMasks) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 7
  add r2, r1, r1
  st r2, [r6]
  halt
)");
  const LivenessResult liveness = ComputeLiveness(cfg);
  // Backward from halt: st reads {r2, r6}; add kills r2, reads r1;
  // li kills r1.
  EXPECT_EQ(liveness.live_in.at(8), Bit(2) | Bit(6));
  EXPECT_EQ(liveness.live_in.at(4), Bit(1) | Bit(6));
  EXPECT_EQ(liveness.live_in.at(0), Bit(6));
  EXPECT_EQ(liveness.ever_live, Bit(1) | Bit(2) | Bit(6));
}

TEST(LivenessTest, WrittenButNeverReadRegistersAreNeverLive) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r5, 9
  li r1, 7
  add r2, r1, r1
  halt
)");
  // Only r1 is ever read; r5 and r2 are write-only, r0 never counts.
  EXPECT_EQ(ComputeLiveness(cfg).ever_live, Bit(1));
}

TEST(LivenessTest, LoopKeepsInductionVariablesLive) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 0
  li r2, 10
loop:
  addi r1, r1, 1
  blt r1, r2, loop
  halt
)");
  const LivenessResult liveness = ComputeLiveness(cfg);
  EXPECT_EQ(liveness.live_in.at(8), Bit(1) | Bit(2));
  EXPECT_EQ(liveness.ever_live, Bit(1) | Bit(2));
}

TEST(LivenessTest, UnresolvedIndirectJumpWidensToAllRegisters) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  la sp, 0x24000
  call outer
  halt
outer:
  push lr
  call leaf
  pop lr
  ret
leaf:
  addi r1, r1, 1
  ret
)");
  ASSERT_FALSE(cfg.returns_resolved());
  const LivenessResult liveness = ComputeLiveness(cfg);
  // Some block ends in an unbounded jalr; everything but r0 is live
  // somewhere, so nothing can be pruned.
  EXPECT_EQ(liveness.ever_live, 0xfffe);
}

TEST(MaybeUninitTest, ReadBeforeAnyWriteIsReported) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  add r2, r1, r1
  halt
)");
  const auto reads = FindMaybeUninitReads(cfg);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].pc, 0u);
  EXPECT_EQ(reads[0].reg, 1);
}

TEST(MaybeUninitTest, WriteOnEveryPathSilencesTheRead) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 3
  add r2, r1, r1
  halt
)");
  EXPECT_TRUE(FindMaybeUninitReads(cfg).empty());
}

TEST(MaybeUninitTest, WriteOnOnlyOnePathStillReports) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r3, 1
  li r4, 2
  beq r3, r4, skip
  li r1, 5
skip:
  add r2, r1, r1
  halt
)");
  const auto reads = FindMaybeUninitReads(cfg);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].pc, 16u);  // the add at `skip`
  EXPECT_EQ(reads[0].reg, 1);
}

TEST(MaybeUninitTest, R0ReadsAreNeverReported) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  add r2, r0, r0
  halt
)");
  EXPECT_TRUE(FindMaybeUninitReads(cfg).empty());
}

TEST(MemorySummaryTest, ResolvesLuiOriAddressChains) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 3
  la r6, 0x10000
  st r1, [r6]
  ld r2, [r6+4]
  halt
)");
  const MemorySummary summary = ComputeMemorySummary(cfg);
  EXPECT_FALSE(summary.has_unknown_load);
  EXPECT_FALSE(summary.has_unknown_store);
  EXPECT_EQ(summary.written_words.count(0x10000), 1u);
  EXPECT_EQ(summary.read_words.count(0x10004), 1u);
  // li(1) + la(2) instructions precede: st at 12, ld at 16.
  ASSERT_EQ(summary.accesses.count(12), 1u);
  EXPECT_TRUE(summary.accesses.at(12).is_store);
  EXPECT_EQ(summary.accesses.at(12).address, 0x10000u);
  ASSERT_EQ(summary.accesses.count(16), 1u);
  EXPECT_FALSE(summary.accesses.at(16).is_store);
  EXPECT_EQ(summary.accesses.at(16).address, 0x10004u);
}

TEST(MemorySummaryTest, ConstantsPropagateThroughArithmetic) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  la r6, 0x10000
  addi r6, r6, 32
  st r0, [r6]
  halt
)");
  const MemorySummary summary = ComputeMemorySummary(cfg);
  EXPECT_EQ(summary.written_words.count(0x10020), 1u);
  EXPECT_FALSE(summary.has_unknown_store);
}

TEST(MemorySummaryTest, ByteStoreReadsAndWritesItsWord) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  la r6, 0x10010
  stb r0, [r6+1]
  halt
)");
  const MemorySummary summary = ComputeMemorySummary(cfg);
  // STB is a read-modify-write at word granularity: the untouched
  // bytes of 0x10010 survive into the stored word.
  EXPECT_EQ(summary.written_words.count(0x10010), 1u);
  EXPECT_EQ(summary.read_words.count(0x10010), 1u);
  const MemoryAccess& access = summary.accesses.at(8);
  EXPECT_TRUE(access.is_store);
  EXPECT_TRUE(access.is_byte);
  EXPECT_EQ(access.address, 0x10011u);
}

TEST(MemorySummaryTest, UnknownAddressWidens) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  ld r2, [r3]
  halt
)");
  const MemorySummary summary = ComputeMemorySummary(cfg);
  EXPECT_TRUE(summary.has_unknown_load);
  EXPECT_FALSE(summary.accesses.at(0).address.has_value());
  EXPECT_TRUE(summary.read_words.empty());
}

TEST(MemorySummaryTest, ConflictingPathConstantsMeetToUnknown) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r5, 1
  beq r5, r6, other
  la r1, 0x10000
  b store
other:
  la r1, 0x10004
store:
  st r0, [r1]
  halt
)");
  const MemorySummary summary = ComputeMemorySummary(cfg);
  // r1 is 0x10000 on one path and 0x10004 on the other: no single
  // static address, so the store must widen.
  EXPECT_TRUE(summary.has_unknown_store);
  EXPECT_TRUE(summary.written_words.empty());
}

// ---- ComputeFirstUses: the equivalence partitioner's static dual ------

TEST(FirstUseTest, StraightLineFirstUseIsTheNextRead) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 7
  add r2, r1, r1
  st r2, [r6]
  halt
)");
  const FirstUseResult first_uses = ComputeFirstUses(cfg);
  // The value of r1 entering the add (pc 4) is first read right there.
  EXPECT_TRUE(first_uses.MayFirstUseAt(1, 4, 4));
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 4, 8));
  // Entering the li (pc 0) the incoming r1 is killed unread.
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 0, 4));
  // After its only read r1 is dead: no first use anywhere.
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 8, 8));
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 8, 12));
}

TEST(FirstUseTest, FirstUseCrossesBasicBlockBoundaries) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 5
  b next
next:
  add r2, r1, r1
  halt
)");
  const FirstUseResult first_uses = ComputeFirstUses(cfg);
  // The def-use interval spans the unconditional branch: the value
  // entering the `b` (pc 4) is first read in the NEXT block (pc 8).
  EXPECT_TRUE(first_uses.MayFirstUseAt(1, 4, 8));
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 4, 4));
  // Entering the li the incoming value is killed before any read.
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 0, 8));
}

TEST(FirstUseTest, BranchJoinUnionsBothArms) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 5
  li r3, 1
  beq r3, r0, other
  add r2, r1, r1
  halt
other:
  add r4, r1, r1
  halt
)");
  const FirstUseResult first_uses = ComputeFirstUses(cfg);
  // Entering the beq (pc 8) the first read of r1 may be either arm's
  // add (pc 12 fallthrough, pc 20 taken) — the may-set is their union.
  EXPECT_TRUE(first_uses.MayFirstUseAt(1, 8, 12));
  EXPECT_TRUE(first_uses.MayFirstUseAt(1, 8, 20));
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 8, 8));
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 8, 0));
}

TEST(FirstUseTest, LoopBackEdgeConverges) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 0
  li r2, 10
loop:
  addi r1, r1, 1
  blt r1, r2, loop
  halt
)");
  const FirstUseResult first_uses = ComputeFirstUses(cfg);
  // r2 flows around the back edge untouched: entering the addi (pc 8)
  // its first read is the blt (pc 12), in every iteration.
  EXPECT_TRUE(first_uses.MayFirstUseAt(2, 8, 12));
  EXPECT_FALSE(first_uses.MayFirstUseAt(2, 8, 8));
  // r1 entering the addi is consumed by the addi itself — the blt
  // reads the REDEFINED r1, a different def-use interval.
  EXPECT_TRUE(first_uses.MayFirstUseAt(1, 8, 8));
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 8, 12));
  // Around the back edge: entering the blt, r1's first read is there.
  EXPECT_TRUE(first_uses.MayFirstUseAt(1, 12, 12));
}

TEST(FirstUseTest, UnreachableBlockDoesNotLeakUsesIntoLivePath) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  li r1, 1
  b end
  add r2, r1, r1
end:
  halt
)");
  const FirstUseResult first_uses = ComputeFirstUses(cfg);
  // The add at pc 8 sits after an unconditional branch and has no
  // predecessors; its read of r1 must not flow into the live path.
  EXPECT_FALSE(cfg.IsReachable(8));
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 4, 8));
  EXPECT_FALSE(first_uses.MayFirstUseAt(1, 4, 4));
}

TEST(FirstUseTest, UnresolvedIndirectControlFlowWidens) {
  const Cfg cfg = BuildCfg(R"(
.entry start
start:
  la sp, 0x24000
  call outer
  halt
outer:
  push lr
  call leaf
  pop lr
  ret
leaf:
  addi r1, r1, 1
  ret
)");
  ASSERT_FALSE(cfg.returns_resolved());
  const FirstUseResult first_uses = ComputeFirstUses(cfg);
  // Past an unbounded jalr any instruction may consume any value; a
  // register nothing ever touches must stay conservatively unknown.
  EXPECT_TRUE(first_uses.MayFirstUseAt(5, 0, 0xdeadbeef));
  // Unmodeled registers are always conservative.
  EXPECT_TRUE(first_uses.MayFirstUseAt(0, 0, 4));
  // A pc the Cfg never decoded is conservative too.
  EXPECT_TRUE(first_uses.MayFirstUseAt(1, 0x7777, 4));
}

}  // namespace
}  // namespace goofi::analysis
