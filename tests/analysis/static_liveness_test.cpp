#include "analysis/static_liveness.h"

#include <gtest/gtest.h>

namespace goofi::analysis {
namespace {

// r1 is read at pc 4 and dead after; r5 is written but never read; r6
// feeds the store address of the one memory word the program reads.
constexpr const char* kProgram = R"(
.entry start
start:
  li r1, 7
  add r2, r1, r1
  li r5, 9
  la r6, 0x10000
  st r2, [r6]
  ld r3, [r6]
  halt
)";

StaticLiveness AnalyzeOrDie(const std::string& source) {
  const auto analysis = StaticLiveness::AnalyzeSource(source);
  EXPECT_TRUE(analysis.ok()) << analysis.status().message();
  return *analysis;
}

TEST(StaticLivenessTest, MayBeLiveAtPcFollowsDataflow) {
  const StaticLiveness analysis = AnalyzeOrDie(kProgram);
  EXPECT_TRUE(analysis.MayBeLiveAtPc(1, 4));   // add still reads r1
  EXPECT_FALSE(analysis.MayBeLiveAtPc(1, 8));  // dead past its last read
  EXPECT_FALSE(analysis.MayBeLiveAtPc(5, 0));  // write-only register
}

TEST(StaticLivenessTest, ConservativeAnswersForUnknownQueries) {
  const StaticLiveness analysis = AnalyzeOrDie(kProgram);
  EXPECT_FALSE(analysis.MayBeLiveAtPc(0, 0));      // r0 never
  EXPECT_TRUE(analysis.MayBeLiveAtPc(77, 0));      // unknown register
  EXPECT_TRUE(analysis.MayBeLiveAtPc(2, 0x8888));  // pc not modelled
}

TEST(StaticLivenessTest, EverLiveLicensesPruning) {
  const StaticLiveness analysis = AnalyzeOrDie(kProgram);
  EXPECT_TRUE(analysis.EverLive(1));
  EXPECT_TRUE(analysis.EverLive(2));
  EXPECT_FALSE(analysis.EverLive(5));
  EXPECT_FALSE(analysis.EverLive(0));
  EXPECT_FALSE(analysis.EverLive(9));  // untouched register
}

TEST(StaticLivenessTest, MayWordHoldLiveDataTracksReadWords) {
  const StaticLiveness analysis = AnalyzeOrDie(kProgram);
  EXPECT_TRUE(analysis.MayWordHoldLiveData(0x10000));
  EXPECT_TRUE(analysis.MayWordHoldLiveData(0x10002));  // same word
  EXPECT_FALSE(analysis.MayWordHoldLiveData(0x10004));
}

TEST(StaticLivenessTest, UnknownLoadWidensEveryWord) {
  const StaticLiveness analysis = AnalyzeOrDie(R"(
.entry start
start:
  ld r2, [r3]
  halt
)");
  EXPECT_TRUE(analysis.MayWordHoldLiveData(0x10000));
  EXPECT_TRUE(analysis.MayWordHoldLiveData(0x23f00));
}

TEST(StaticLivenessTest, LocationNameFrontEnd) {
  const StaticLiveness analysis = AnalyzeOrDie(kProgram);
  EXPECT_TRUE(analysis.MayLocationHoldLiveData("cpu.regs.r1"));
  EXPECT_FALSE(analysis.MayLocationHoldLiveData("cpu.regs.r5"));
  EXPECT_FALSE(analysis.MayLocationHoldLiveData("cpu.regs.r0"));
  // Everything that is not a register scan element stays live: the
  // comparison stage reads memory and control state regardless.
  EXPECT_TRUE(analysis.MayLocationHoldLiveData("mem@0x00010004"));
  EXPECT_TRUE(analysis.MayLocationHoldLiveData("cpu.ir"));
  EXPECT_TRUE(analysis.MayLocationHoldLiveData("icache.line3.data2"));
  EXPECT_TRUE(analysis.MayLocationHoldLiveData("cpu.regs.r99"));
  EXPECT_TRUE(analysis.MayLocationHoldLiveData("cpu.regs.rX"));
}

TEST(StaticLivenessTest, BadSourceReportsError) {
  EXPECT_FALSE(StaticLiveness::AnalyzeSource("bogus instruction\n").ok());
}

}  // namespace
}  // namespace goofi::analysis
