// The service's core robustness claim, tested at the executor level:
// a campaign interrupted at ANY point — graceful drain or a log cut at
// an arbitrary byte offset (SIGKILL) — and then resumed by a later
// daemon life finishes with a results database BYTE-identical to an
// uninterrupted one-shot run, at any worker count in either life.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "db/wal.h"
#include "service/executor.h"

namespace goofi::service {
namespace {

namespace fs = std::filesystem;

// 70 experiments = two full cadence commits (32, 64) plus a final
// partial batch, so interruptions land in every regime.
constexpr const char* kIni =
    "[campaign]\n"
    "name = equiv\n"
    "target = thor_rd\n"
    "technique = scifi\n"
    "workload = fib\n"
    "experiments = 70\n"
    "seed = 17\n"
    "location[] = cpu.regs.*\n";

std::string TempDir(const std::string& leaf) {
  const std::string dir =
      (fs::temp_directory_path() / ("goofi_restart_equiv_" + leaf)).string();
  fs::remove_all(dir);
  return dir;
}

// Every file in the results directory, name -> bytes. Byte-identity of
// this map is the strongest form of the equivalence claim.
std::map<std::string, std::string> DumpDirectory(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    auto bytes = db::wal::ReadFileBytes(entry.path().string());
    EXPECT_TRUE(bytes.ok()) << entry.path();
    files[entry.path().filename().string()] = bytes.ok() ? *bytes : "";
  }
  return files;
}

Status RunToCompletion(const std::string& dir, std::size_t jobs) {
  ExecutionRequest request;
  request.db_dir = dir;
  request.config_text = kIni;
  request.jobs = jobs;
  return ExecuteSubmission(request).status();
}

// Run until `drain_at` experiments have been reported, then drain —
// the daemon's SIGTERM path.
Status RunUntilDrain(const std::string& dir, std::size_t jobs,
                     std::size_t drain_at) {
  core::CampaignController controller;
  ExecutionRequest request;
  request.db_dir = dir;
  request.config_text = kIni;
  request.jobs = jobs;
  request.controller = &controller;
  request.progress = [&controller, drain_at](core::ProgressInfo info) {
    if (info.experiments_done >= drain_at) controller.Drain();
  };
  return ExecuteSubmission(request).status();
}

class RestartEquivalenceTest : public ::testing::Test {
 protected:
  // The uninterrupted reference, shared across tests in this process.
  static void SetUpTestSuite() {
    reference_dir_ = new std::string(TempDir("oneshot"));
    ASSERT_TRUE(RunToCompletion(*reference_dir_, 1).ok());
    reference_files_ =
        new std::map<std::string, std::string>(DumpDirectory(*reference_dir_));
    ASSERT_TRUE(reference_files_->count("wal.log"));
    ASSERT_GT(reference_files_->at("wal.log").size(),
              db::wal::kWalHeaderSize);
  }
  static void TearDownTestSuite() {
    fs::remove_all(*reference_dir_);
    delete reference_dir_;
    delete reference_files_;
    reference_dir_ = nullptr;
    reference_files_ = nullptr;
  }

  static std::string* reference_dir_;
  static std::map<std::string, std::string>* reference_files_;
};

std::string* RestartEquivalenceTest::reference_dir_ = nullptr;
std::map<std::string, std::string>* RestartEquivalenceTest::reference_files_ =
    nullptr;

// Precondition for everything else: worker count alone never changes
// the bytes (the sharded runner's guarantee, surfaced at service level).
TEST_F(RestartEquivalenceTest, WorkerCountDoesNotChangeTheBytes) {
  const std::string dir = TempDir("jobs2");
  ASSERT_TRUE(RunToCompletion(dir, 2).ok());
  EXPECT_EQ(DumpDirectory(dir), *reference_files_);
  fs::remove_all(dir);
}

// Drain (SIGTERM) at points before, on, and after cadence commits; the
// resumed life — at the same or a different worker count — must land
// on the reference bytes exactly.
TEST_F(RestartEquivalenceTest, DrainThenResumeMatchesOneShot) {
  const std::size_t drain_points[] = {5, 32, 47, 64};
  std::size_t resume_jobs = 1;
  for (const std::size_t drain_at : drain_points) {
    const std::string dir =
        TempDir("drain" + std::to_string(drain_at));
    ASSERT_TRUE(RunUntilDrain(dir, 1, drain_at).ok()) << drain_at;
    // The drained database must differ from the finished one (the run
    // really was interrupted)...
    ASSERT_NE(DumpDirectory(dir), *reference_files_) << drain_at;
    // ...and one resume, at an alternating worker count, finishes it.
    ASSERT_TRUE(RunToCompletion(dir, resume_jobs).ok()) << drain_at;
    EXPECT_EQ(DumpDirectory(dir), *reference_files_)
        << "drain_at=" << drain_at << " resume_jobs=" << resume_jobs;
    resume_jobs = resume_jobs == 1 ? 2 : 1;
    fs::remove_all(dir);
  }
}

// A parallel fleet drains the same way.
TEST_F(RestartEquivalenceTest, ParallelDrainThenResumeMatchesOneShot) {
  const std::string dir = TempDir("pdrain");
  ASSERT_TRUE(RunUntilDrain(dir, 2, 20).ok());
  ASSERT_TRUE(RunToCompletion(dir, 2).ok());
  EXPECT_EQ(DumpDirectory(dir), *reference_files_);
  fs::remove_all(dir);
}

// SIGKILL at arbitrary instants, modelled as the reference log cut at
// sampled byte offsets (including inside the header and mid-frame).
// Reopen + resume must rebuild the reference bytes exactly.
TEST_F(RestartEquivalenceTest, LogCutThenResumeMatchesOneShot) {
  const std::string& log = reference_files_->at("wal.log");
  std::vector<std::uint64_t> cuts = {0, 7, db::wal::kWalHeaderSize};
  for (int i = 1; i <= 7; ++i) {
    cuts.push_back(log.size() * static_cast<std::uint64_t>(i) / 8 + i);
  }
  cuts.push_back(log.size() - 1);

  std::size_t resume_jobs = 2;
  const std::string dir = TempDir("cut");
  for (const std::uint64_t cut : cuts) {
    if (cut > log.size()) continue;
    // Clone the finished directory with the truncated log.
    fs::remove_all(dir);
    fs::create_directories(dir);
    for (const auto& [name, bytes] : *reference_files_) {
      std::ofstream out(fs::path(dir) / name, std::ios::binary);
      if (name == "wal.log") {
        out.write(log.data(), static_cast<std::streamsize>(cut));
      } else {
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      }
    }
    ASSERT_TRUE(RunToCompletion(dir, resume_jobs).ok()) << "cut=" << cut;
    EXPECT_EQ(DumpDirectory(dir), *reference_files_)
        << "cut=" << cut << " resume_jobs=" << resume_jobs;
    resume_jobs = resume_jobs == 1 ? 2 : 1;
  }
  fs::remove_all(dir);
}

// Resuming an already-finished campaign must be a byte no-op — the
// daemon calls this path when it is killed after a campaign's last
// commit but before the journal records completion.
TEST_F(RestartEquivalenceTest, ResumeOfCompletedCampaignChangesNothing) {
  const std::string dir = TempDir("done");
  ASSERT_TRUE(RunToCompletion(dir, 1).ok());
  ASSERT_TRUE(RunToCompletion(dir, 1).ok());
  EXPECT_EQ(DumpDirectory(dir), *reference_files_);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace goofi::service
