// ServiceCore end to end, no sockets: fleet scheduling, backpressure,
// cancellation, and the drain -> restart -> resume cycle whose final
// results databases must match one-shot executor runs byte for byte.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <string>
#include <thread>

#include "db/wal.h"
#include "service/executor.h"
#include "service/server.h"

namespace goofi::service {
namespace {

namespace fs = std::filesystem;

std::string Ini(const std::string& name, int experiments,
                std::size_t jobs = 1) {
  return "[campaign]\nname = " + name +
         "\ntarget = thor_rd\ntechnique = scifi\nworkload = fib\n"
         "experiments = " + std::to_string(experiments) +
         "\nseed = 17\nlocation[] = cpu.regs.*\njobs = " +
         std::to_string(jobs) + "\n";
}

std::map<std::string, std::string> DumpDirectory(const std::string& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    auto bytes = db::wal::ReadFileBytes(entry.path().string());
    EXPECT_TRUE(bytes.ok()) << entry.path();
    files[entry.path().filename().string()] = bytes.ok() ? *bytes : "";
  }
  return files;
}

// Poll until the submission reaches a terminal journal state.
Submission AwaitTerminal(ServiceCore& core, std::uint64_t id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (;;) {
    auto status = core.GetStatus(id);
    EXPECT_TRUE(status.ok()) << status.status().ToString();
    if (!status.ok()) return Submission{};
    const std::string& state = status->submission.state;
    if (state == kStateCompleted || state == kStateFailed ||
        state == kStateCancelled) {
      return status->submission;
    }
    if (std::chrono::steady_clock::now() > deadline) {
      ADD_FAILURE() << "submission " << id << " stuck in " << state;
      return status->submission;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// Poll until the submission is actively executing on a campaign thread.
void AwaitActive(ServiceCore& core, std::uint64_t id) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (;;) {
    auto status = core.GetStatus(id);
    ASSERT_TRUE(status.ok());
    if (status->active) return;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "submission " << id << " never became active";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

class ServiceCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() / "goofi_service_core_test").string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  ServiceConfig Config_(std::size_t fleet, std::size_t queue) {
    ServiceConfig config;
    config.root = root_;
    config.fleet_workers = fleet;
    config.queue_limit = queue;
    config.max_campaign_jobs = fleet;
    return config;
  }

  std::string root_;
};

TEST_F(ServiceCoreTest, SubmitRunsToCompletion) {
  auto core = ServiceCore::Start(Config_(2, 8));
  ASSERT_TRUE(core.ok()) << core.status().ToString();
  auto id = (*core)->Submit(Ini("c1", 40));
  ASSERT_TRUE(id.ok());
  const Submission done = AwaitTerminal(**core, *id);
  EXPECT_EQ(done.state, kStateCompleted);
  EXPECT_TRUE(fs::exists(
      fs::path((*core)->CampaignDbDir("c1")) / "wal.log"));
}

TEST_F(ServiceCoreTest, RejectsBadIniAndDuplicatesAndFullQueue) {
  auto core = ServiceCore::Start(Config_(1, 2));
  ASSERT_TRUE(core.ok());
  // Not a campaign at all.
  EXPECT_EQ((*core)->Submit("[not_campaign]\n").status().code(),
            ErrorCode::kInvalidArgument);
  // A name that would escape the campaigns/ directory.
  EXPECT_EQ((*core)->Submit("[campaign]\nname = ../evil\n").status().code(),
            ErrorCode::kInvalidArgument);

  auto first = (*core)->Submit(Ini("dup", 2000));
  ASSERT_TRUE(first.ok());
  AwaitActive(**core, *first);
  ASSERT_TRUE((*core)->Pause(*first).ok());  // hold its fleet slot
  EXPECT_EQ((*core)->Submit(Ini("dup", 10)).status().code(),
            ErrorCode::kAlreadyExists);
  // One active + one queued = the queue bound; the third is explicit
  // backpressure, not a silent drop.
  ASSERT_TRUE((*core)->Submit(Ini("q1", 10)).ok());
  EXPECT_EQ((*core)->Submit(Ini("q2", 10)).status().code(),
            ErrorCode::kQueueFull);
  ASSERT_TRUE((*core)->Cancel(*first).ok());
  const Submission cancelled = AwaitTerminal(**core, *first);
  EXPECT_EQ(cancelled.state, kStateCancelled);
}

TEST_F(ServiceCoreTest, CancelQueuedAndRunningSubmissions) {
  auto core = ServiceCore::Start(Config_(1, 8));
  ASSERT_TRUE(core.ok());
  auto running = (*core)->Submit(Ini("runner", 5000));
  ASSERT_TRUE(running.ok());
  AwaitActive(**core, *running);
  ASSERT_TRUE((*core)->Pause(*running).ok());
  // The fleet is saturated, so this one stays queued.
  auto queued = (*core)->Submit(Ini("waiter", 10));
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE((*core)->Cancel(*queued).ok());
  EXPECT_EQ(AwaitTerminal(**core, *queued).state, kStateCancelled);
  // Cancelling the paused running campaign unblocks and journals it.
  ASSERT_TRUE((*core)->Cancel(*running).ok());
  EXPECT_EQ(AwaitTerminal(**core, *running).state, kStateCancelled);
  // Cancel is not valid from a terminal state.
  EXPECT_EQ((*core)->Cancel(*queued).code(),
            ErrorCode::kFailedPrecondition);
}

TEST_F(ServiceCoreTest, SecondDaemonOnTheSameRootIsRejected) {
  auto first = ServiceCore::Start(Config_(1, 4));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // A second daemon would race the first for the journal and the
  // campaign databases; the root lock refuses it outright.
  auto second = ServiceCore::Start(Config_(1, 4));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), ErrorCode::kAlreadyExists);
  // The lock dies with its owner: a new life starts cleanly.
  first->reset();
  auto next_life = ServiceCore::Start(Config_(1, 4));
  EXPECT_TRUE(next_life.ok()) << next_life.status().ToString();
}

TEST_F(ServiceCoreTest, ServerSurvivesConnectionChurn) {
  auto core = ServiceCore::Start(Config_(1, 4));
  ASSERT_TRUE(core.ok());
  const std::string socket_path =
      (fs::path(root_) / "churn.sock").string();
  auto server = ServiceServer::Start(core->get(), socket_path, nullptr);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  // A long-lived daemon sees thousands of short-lived clients (status
  // polls, benches). Each finished connection must release its fd and
  // thread — this churns well past the fd budget a leak would tolerate
  // under a tight RLIMIT_NOFILE, and the daemon must still answer.
  for (int i = 0; i < 200; ++i) {
    auto client = UnixSocket::Connect(socket_path);
    ASSERT_TRUE(client.ok()) << "connect " << i << ": "
                             << client.status().ToString();
    ASSERT_TRUE(client->SendFrame("ping").ok());
    auto reply = client->RecvFrame();
    ASSERT_TRUE(reply.ok()) << "ping " << i << ": "
                            << reply.status().ToString();
    EXPECT_EQ(*reply, "ok pong");
  }
}

TEST_F(ServiceCoreTest, MultiplexesCampaignsOverTheFleet) {
  auto core = ServiceCore::Start(Config_(2, 8));
  ASSERT_TRUE(core.ok());
  auto a = (*core)->Submit(Ini("ma", 40));
  auto b = (*core)->Submit(Ini("mb", 40));
  auto c = (*core)->Submit(Ini("mc", 40));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(AwaitTerminal(**core, *a).state, kStateCompleted);
  EXPECT_EQ(AwaitTerminal(**core, *b).state, kStateCompleted);
  EXPECT_EQ(AwaitTerminal(**core, *c).state, kStateCompleted);
}

// The tentpole cycle: drain a busy daemon, start a new life on the same
// root, and require every campaign to finish byte-identical to a
// one-shot executor run of the same ini.
TEST_F(ServiceCoreTest, DrainRestartResumeMatchesOneShot) {
  const std::string ini_a = Ini("ra", 70);
  const std::string ini_b = Ini("rb", 70, /*jobs=*/2);
  std::string dir_a;
  std::string dir_b;
  {
    auto core = ServiceCore::Start(Config_(3, 8));
    ASSERT_TRUE(core.ok());
    auto a = (*core)->Submit(ini_a);
    auto b = (*core)->Submit(ini_b);
    ASSERT_TRUE(a.ok() && b.ok());
    dir_a = (*core)->CampaignDbDir("ra");
    dir_b = (*core)->CampaignDbDir("rb");
    AwaitActive(**core, *a);
    AwaitActive(**core, *b);
    (*core)->Drain();
    EXPECT_TRUE((*core)->draining());
    // Draining daemons refuse new work.
    EXPECT_EQ((*core)->Submit(Ini("late", 10)).status().code(),
              ErrorCode::kFailedPrecondition);
  }
  {
    // The journal still carries both campaigns as "running"; a new life
    // must pick them up without being asked.
    auto core = ServiceCore::Start(Config_(3, 8));
    ASSERT_TRUE(core.ok()) << core.status().ToString();
    EXPECT_EQ(AwaitTerminal(**core, 1).state, kStateCompleted);
    EXPECT_EQ(AwaitTerminal(**core, 2).state, kStateCompleted);
  }

  // Reference one-shot runs of the same inis.
  const std::string ref_a =
      (fs::temp_directory_path() / "goofi_service_core_ref_a").string();
  const std::string ref_b =
      (fs::temp_directory_path() / "goofi_service_core_ref_b").string();
  fs::remove_all(ref_a);
  fs::remove_all(ref_b);
  ExecutionRequest request;
  request.db_dir = ref_a;
  request.config_text = ini_a;
  ASSERT_TRUE(ExecuteSubmission(request).ok());
  request.db_dir = ref_b;
  request.config_text = ini_b;
  request.jobs = 2;
  ASSERT_TRUE(ExecuteSubmission(request).ok());

  EXPECT_EQ(DumpDirectory(dir_a), DumpDirectory(ref_a));
  EXPECT_EQ(DumpDirectory(dir_b), DumpDirectory(ref_b));
  fs::remove_all(ref_a);
  fs::remove_all(ref_b);
}

}  // namespace
}  // namespace goofi::service
