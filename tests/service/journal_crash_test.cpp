// Crash sweeps for the submission journal, in the image of the storage
// engine's own harness (tests/db/wal_crash_test.cpp): every lifecycle
// transition is one group commit, so after ANY torn write or truncated
// log the reopened journal must hold exactly the transitions that were
// acknowledged — no submission lost, none duplicated, none half-applied.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "db/wal.h"
#include "service/journal.h"

namespace goofi::service {
namespace {

namespace fs = std::filesystem;

// ---- fault-injecting log file (same model as the engine's harness) -----

struct FaultState {
  explicit FaultState(std::uint64_t budget) : remaining(budget) {}
  std::uint64_t remaining;
  bool dead = false;
};

class FaultyFile : public db::wal::WalFile {
 public:
  FaultyFile(std::unique_ptr<db::wal::WalFile> inner,
             std::shared_ptr<FaultState> state)
      : inner_(std::move(inner)), state_(std::move(state)) {}

  Status Append(std::string_view bytes) override {
    if (state_->dead) return DataLossError("simulated crash");
    if (bytes.size() <= state_->remaining) {
      state_->remaining -= bytes.size();
      return inner_->Append(bytes);
    }
    const std::string_view torn = bytes.substr(0, state_->remaining);
    state_->remaining = 0;
    state_->dead = true;
    (void)inner_->Append(torn);
    (void)inner_->Sync();
    return DataLossError("simulated crash (torn write)");
  }

  Status Sync() override {
    if (state_->dead) return DataLossError("simulated crash");
    return inner_->Sync();
  }

 private:
  std::unique_ptr<db::wal::WalFile> inner_;
  std::shared_ptr<FaultState> state_;
};

db::wal::WalFileFactory FaultyFactory(std::shared_ptr<FaultState> state) {
  return [state](const std::string& path)
             -> Result<std::unique_ptr<db::wal::WalFile>> {
    auto inner = db::wal::OpenLogFile(path);
    if (!inner.ok()) return inner.status();
    return std::unique_ptr<db::wal::WalFile>(
        new FaultyFile(std::move(*inner), state));
  };
}

// ---- scripted daemon life ----------------------------------------------

// Canonical dump of the queue; equal dumps = identical journal state.
std::string DumpJournal(SubmissionJournal& journal) {
  std::string dump;
  for (const Submission& s : journal.All()) {
    dump += std::to_string(s.id) + "|" + s.name + "|" + s.state + "|" +
            s.error + "|" + std::to_string(s.jobs) + "\n";
  }
  return dump;
}

// The daemon's journal traffic, one committed transition per step:
// submissions, claims, completions, a failure, a cancellation.
constexpr int kSteps = 12;

Status ApplyStep(SubmissionJournal& journal, int step) {
  const auto ini = [](const std::string& name) {
    return "[campaign]\nname = " + name + "\ntarget = thor_rd\n";
  };
  switch (step) {
    case 0: return journal.Submit("s1", ini("s1"), 1).status();
    case 1: return journal.Submit("s2", ini("s2"), 2).status();
    case 2: return journal.ClaimNext().status();          // s1 running
    case 3: return journal.Submit("s3", ini("s3"), 4).status();
    case 4: return journal.MarkCompleted(1);
    case 5: return journal.ClaimNext().status();          // s2 running
    case 6: return journal.Submit("s4", ini("s4"), 1).status();
    case 7: return journal.MarkFailed(2, "target wedged");
    case 8: return journal.MarkCancelled(4);              // s4 queued
    case 9: return journal.ClaimNext().status();          // s3 running
    case 10: return journal.Submit("s5", ini("s5"), 2).status();
    case 11: return journal.MarkCompleted(3);
  }
  return Status::Ok();
}

// A freshly created (and committed) journal directory to crash against.
void BuildProtoJournal(const std::string& dir, std::string* creation_dump) {
  fs::remove_all(dir);
  auto journal = SubmissionJournal::Open(dir, 32);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  *creation_dump = DumpJournal(*journal);
}

void CopyDirectory(const std::string& src, const std::string& dst) {
  fs::remove_all(dst);
  fs::create_directories(dst);
  for (const auto& entry : fs::directory_iterator(src)) {
    fs::copy_file(entry.path(),
                  fs::path(dst) / entry.path().filename().string());
  }
}

// Structural invariants no crash may break: unique ids, unique names,
// every state a known lifecycle state.
void CheckInvariants(SubmissionJournal& journal) {
  std::set<std::uint64_t> ids;
  std::set<std::string> names;
  for (const Submission& s : journal.All()) {
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate id " << s.id;
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate name " << s.name;
    EXPECT_TRUE(s.state == kStateQueued || s.state == kStateRunning ||
                s.state == kStateCompleted || s.state == kStateFailed ||
                s.state == kStateCancelled)
        << "bad state " << s.state;
  }
}

// ---- the sweeps ---------------------------------------------------------

// Torn-write sweep: the log file dies mid-append at every byte budget.
// Acknowledged transitions must survive; the half-written one must
// vanish entirely.
TEST(JournalCrashTest, TornWriteSweepKeepsEveryAcknowledgedTransition) {
  const fs::path base = fs::temp_directory_path() / "goofi_journal_torn";
  fs::remove_all(base);
  std::string creation_dump;
  BuildProtoJournal((base / "proto").string(), &creation_dump);

  // Size the budget sweep off an undamaged life.
  std::uint64_t appended = 0;
  {
    const std::string intact = (base / "intact").string();
    CopyDirectory((base / "proto").string(), intact);
    const std::uint64_t before = fs::file_size(fs::path(intact) / "wal.log");
    auto journal = SubmissionJournal::Open(intact, 32);
    ASSERT_TRUE(journal.ok());
    for (int step = 0; step < kSteps; ++step) {
      ASSERT_TRUE(ApplyStep(*journal, step).ok()) << "step " << step;
    }
    appended = fs::file_size(fs::path(intact) / "wal.log") - before;
  }
  ASSERT_GT(appended, 0u);

  constexpr int kBudgets = 48;
  for (int i = 0; i <= kBudgets; ++i) {
    // Unaligned budgets so most crashes land mid-frame.
    const std::uint64_t budget =
        appended * static_cast<std::uint64_t>(i) / kBudgets +
        static_cast<std::uint64_t>(i % 5);
    const std::string dir =
        (base / ("budget" + std::to_string(i))).string();
    CopyDirectory((base / "proto").string(), dir);

    auto state = std::make_shared<FaultState>(budget);
    auto journal = SubmissionJournal::Open(dir, 32, FaultyFactory(state));
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    std::string acknowledged = DumpJournal(*journal);
    for (int step = 0; step < kSteps; ++step) {
      if (!ApplyStep(*journal, step).ok()) break;  // the crash
      acknowledged = DumpJournal(*journal);
    }

    // The next daemon life replays the real file.
    auto reopened = SubmissionJournal::Open(dir, 32);
    ASSERT_TRUE(reopened.ok())
        << "budget=" << budget << ": " << reopened.status().ToString();
    EXPECT_EQ(DumpJournal(*reopened), acknowledged) << "budget=" << budget;
    CheckInvariants(*reopened);
  }
  fs::remove_all(base);
}

// Cut-point sweep: the log is truncated at every sampled byte offset
// (SIGKILL plus a dying disk). Recovery must land on the youngest
// committed transition at or below the cut.
TEST(JournalCrashTest, CutPointSweepRecoversToACommittedTransition) {
  const fs::path base = fs::temp_directory_path() / "goofi_journal_cut";
  fs::remove_all(base);
  std::string creation_dump;
  const std::string full = (base / "full").string();
  BuildProtoJournal(full, &creation_dump);

  // Replay the scripted life, recording (log size, dump) at every
  // commit boundary. Boundary floor: the creation state survives any
  // damage to the log alone (it lives in the initial snapshots).
  std::vector<std::pair<std::uint64_t, std::string>> boundaries;
  boundaries.emplace_back(0, creation_dump);
  {
    auto journal = SubmissionJournal::Open(full, 32);
    ASSERT_TRUE(journal.ok());
    boundaries.emplace_back(fs::file_size(fs::path(full) / "wal.log"),
                            creation_dump);
    for (int step = 0; step < kSteps; ++step) {
      ASSERT_TRUE(ApplyStep(*journal, step).ok()) << "step " << step;
      boundaries.emplace_back(fs::file_size(fs::path(full) / "wal.log"),
                              DumpJournal(*journal));
    }
  }
  auto log = db::wal::ReadFileBytes((fs::path(full) / "wal.log").string());
  ASSERT_TRUE(log.ok());
  const std::uint64_t total = log->size();
  ASSERT_EQ(total, boundaries.back().first);

  std::set<std::uint64_t> cuts;
  const std::uint64_t stride = std::max<std::uint64_t>(1, total / 128);
  for (std::uint64_t cut = 0; cut <= total; cut += stride) cuts.insert(cut);
  for (const auto& [offset, dump] : boundaries) {
    for (std::uint64_t delta = 0; delta <= 3; ++delta) {
      if (offset + delta <= total) cuts.insert(offset + delta);
      if (offset >= delta) cuts.insert(offset - delta);
    }
  }

  const std::string copy = (base / "cut").string();
  for (const std::uint64_t cut : cuts) {
    CopyDirectory(full, copy);
    {
      std::ofstream out(fs::path(copy) / "wal.log",
                        std::ios::binary | std::ios::trunc);
      out.write(log->data(), static_cast<std::streamsize>(cut));
    }
    auto reopened = SubmissionJournal::Open(copy, 32);
    ASSERT_TRUE(reopened.ok())
        << "cut=" << cut << ": " << reopened.status().ToString();
    std::string expected;
    for (const auto& [offset, dump] : boundaries) {
      if (offset <= cut) expected = dump;
    }
    EXPECT_EQ(DumpJournal(*reopened), expected) << "cut=" << cut;
    CheckInvariants(*reopened);
  }
  fs::remove_all(base);
}

}  // namespace
}  // namespace goofi::service
