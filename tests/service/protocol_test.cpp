// Wire protocol framing and parsing, plus the Unix-socket transport the
// daemon and client share.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <filesystem>
#include <string>
#include <thread>

#include "service/protocol.h"
#include "util/crc32.h"
#include "util/socket.h"

namespace goofi::service {
namespace {

namespace fs = std::filesystem;

TEST(ProtocolTest, ParsesVerbsIdsAndBodies) {
  auto ping = ParseRequest("ping");
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping->verb, "ping");
  EXPECT_FALSE(ping->has_id);

  auto submit = ParseRequest("submit\n[campaign]\nname = x\n");
  ASSERT_TRUE(submit.ok());
  EXPECT_EQ(submit->verb, "submit");
  EXPECT_EQ(submit->body, "[campaign]\nname = x\n");

  auto watch = ParseRequest("watch 42");
  ASSERT_TRUE(watch.ok());
  EXPECT_TRUE(watch->has_id);
  EXPECT_EQ(watch->id, 42u);

  auto bare_status = ParseRequest("status");
  ASSERT_TRUE(bare_status.ok());
  EXPECT_FALSE(bare_status->has_id);

  EXPECT_FALSE(ParseRequest("").ok());
  EXPECT_FALSE(ParseRequest("cancel banana").ok());
}

TEST(ProtocolTest, ResponsesRoundTripStatusCodes) {
  EXPECT_EQ(FormatOk(), "ok");
  EXPECT_EQ(FormatOk("id 7"), "ok id 7");
  auto ok = ParseResponse("ok id 7");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, "id 7");
  ASSERT_TRUE(ParseResponse("ok").ok());

  // The error codes the daemon actually emits survive the wire,
  // QUEUE_FULL above all — clients script against it for backpressure.
  const Status queue_full = QueueFullError("queue is full");
  auto parsed = ParseResponse(FormatError(queue_full));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), ErrorCode::kQueueFull);
  EXPECT_EQ(parsed.status().message(), "queue is full");

  auto not_found = ParseResponse(FormatError(NotFoundError("no 9")));
  EXPECT_EQ(not_found.status().code(), ErrorCode::kNotFound);

  EXPECT_FALSE(ParseResponse("gibberish").ok());
}

TEST(SocketTest, FramesRoundTripAndEofIsClean) {
  const std::string path =
      (fs::temp_directory_path() / "goofi_protocol_test.sock").string();
  auto listener = UnixSocket::Listen(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  std::thread server([&listener] {
    auto connection = listener->Accept();
    ASSERT_TRUE(connection.ok());
    for (;;) {
      auto frame = connection->RecvFrame();
      if (!frame.ok()) break;  // client closed
      ASSERT_TRUE(connection->SendFrame("echo:" + *frame).ok());
    }
  });

  auto client = UnixSocket::Connect(path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // Small frame, empty frame, and a frame bigger than one pipe buffer.
  for (const std::string& payload :
       {std::string("ping"), std::string(),
        std::string(256 * 1024, '\x7f') + std::string("\0tail", 5)}) {
    ASSERT_TRUE(client->SendFrame(payload).ok());
    auto reply = client->RecvFrame();
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    EXPECT_EQ(*reply, "echo:" + payload);
  }
  client->Close();
  server.join();

  // A second client connecting after the first closed still works —
  // the listener survives its clients.
  auto again = UnixSocket::Connect(path);
  ASSERT_TRUE(again.ok());
  std::thread server2([&listener] {
    auto connection = listener->Accept();
    ASSERT_TRUE(connection.ok());
    // Consume the request, then close without replying: the client
    // sees clean EOF. (Closing with the frame unread would be a
    // connection reset — kIo — not EOF.)
    ASSERT_TRUE(connection->RecvFrame().ok());
  });
  ASSERT_TRUE(again->SendFrame("hello").ok());
  server2.join();
  auto eof = again->RecvFrame();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), ErrorCode::kNotFound);  // clean EOF
  fs::remove(path);
}

TEST(SocketTest, CorruptedFrameFailsItsCrc) {
  const std::string path =
      (fs::temp_directory_path() / "goofi_crc_test.sock").string();
  auto listener = UnixSocket::Listen(path);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  Result<std::string> received = NotFoundError("never received");
  std::thread server([&listener, &received] {
    auto connection = listener->Accept();
    ASSERT_TRUE(connection.ok());
    received = connection->RecvFrame();
  });

  auto client = UnixSocket::Connect(path);
  ASSERT_TRUE(client.ok());
  // Hand-build a frame whose length prefix is right but whose payload
  // was flipped after the CRC was computed — a desynchronized or
  // corrupted stream must surface as kDataLoss, not parse as a verb.
  const std::string payload = "cancel 1";
  std::string corrupted = payload;
  corrupted[0] ^= 0x20;
  std::string wire;
  const auto length = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = Crc32(payload);
  for (const std::uint32_t word : {length, crc}) {
    wire.push_back(static_cast<char>(word & 0xff));
    wire.push_back(static_cast<char>((word >> 8) & 0xff));
    wire.push_back(static_cast<char>((word >> 16) & 0xff));
    wire.push_back(static_cast<char>((word >> 24) & 0xff));
  }
  wire += corrupted;
  ASSERT_EQ(::send(client->fd(), wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  server.join();
  ASSERT_FALSE(received.ok());
  EXPECT_EQ(received.status().code(), ErrorCode::kDataLoss);

  // An intact frame on a fresh connection still round-trips.
  auto again = UnixSocket::Connect(path);
  ASSERT_TRUE(again.ok());
  std::thread server2([&listener] {
    auto connection = listener->Accept();
    ASSERT_TRUE(connection.ok());
    auto frame = connection->RecvFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(*frame, "cancel 1");
  });
  ASSERT_TRUE(again->SendFrame("cancel 1").ok());
  server2.join();
  fs::remove(path);
}

}  // namespace
}  // namespace goofi::service
