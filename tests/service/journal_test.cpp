// The submission journal's contract: every lifecycle transition is one
// committed batch, the queue bound is explicit backpressure, campaign
// names are unique forever, and a reopened journal sees exactly the
// committed transitions. Also pins the incremental-compaction benefit
// the journal's two-table split was designed for.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "service/journal.h"

namespace goofi::service {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "goofi_journal_test").string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::string Ini(const std::string& name) {
    return "[campaign]\nname = " + name + "\ntarget = thor_rd\n";
  }

  std::string dir_;
};

TEST_F(JournalTest, SubmitClaimCompleteLifecycle) {
  auto journal = SubmissionJournal::Open(dir_, 8);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();

  auto id_a = journal->Submit("alpha", Ini("alpha"), 2);
  ASSERT_TRUE(id_a.ok());
  auto id_b = journal->Submit("beta", Ini("beta"), 1);
  ASSERT_TRUE(id_b.ok());
  EXPECT_LT(*id_a, *id_b);
  EXPECT_EQ(journal->ActiveCount(), 2u);

  // FIFO claim order, oldest id first.
  auto claimed = journal->ClaimNext();
  ASSERT_TRUE(claimed.ok());
  ASSERT_TRUE(claimed->has_value());
  EXPECT_EQ((*claimed)->id, *id_a);
  EXPECT_EQ((*claimed)->name, "alpha");
  EXPECT_EQ((*claimed)->config_text, Ini("alpha"));
  EXPECT_EQ((*claimed)->jobs, 2u);
  EXPECT_EQ((*claimed)->state, kStateRunning);

  ASSERT_TRUE(journal->MarkCompleted(*id_a).ok());
  auto done = journal->Find(*id_a);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->state, kStateCompleted);
  // Completion frees a queue slot; beta is still active.
  EXPECT_EQ(journal->ActiveCount(), 1u);

  auto next = journal->ClaimNext();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ((*next)->id, *id_b);
  ASSERT_TRUE(journal->MarkFailed(*id_b, "target wedged").ok());
  auto failed = journal->Find(*id_b);
  ASSERT_TRUE(failed.ok());
  EXPECT_EQ(failed->state, kStateFailed);
  EXPECT_EQ(failed->error, "target wedged");

  // Drained queue.
  auto empty = journal->ClaimNext();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
}

TEST_F(JournalTest, QueueBoundIsExplicitBackpressure) {
  auto journal = SubmissionJournal::Open(dir_, 2);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Submit("a", Ini("a"), 1).ok());
  ASSERT_TRUE(journal->Submit("b", Ini("b"), 1).ok());
  auto full = journal->Submit("c", Ini("c"), 1);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), ErrorCode::kQueueFull);

  // Claiming does not free a slot (running still counts); a terminal
  // transition does.
  ASSERT_TRUE(journal->ClaimNext().ok());
  EXPECT_EQ(journal->Submit("c", Ini("c"), 1).status().code(),
            ErrorCode::kQueueFull);
  ASSERT_TRUE(journal->MarkCompleted(1).ok());
  EXPECT_TRUE(journal->Submit("c", Ini("c"), 1).ok());
}

TEST_F(JournalTest, DuplicateNamesAreRejectedForever) {
  auto journal = SubmissionJournal::Open(dir_, 8);
  ASSERT_TRUE(journal.ok());
  auto id = journal->Submit("dup", Ini("dup"), 1);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(journal->Submit("dup", Ini("dup"), 1).status().code(),
            ErrorCode::kAlreadyExists);
  // Even after the first run finished: the campaign's results database
  // directory still exists, so the name stays taken.
  ASSERT_TRUE(journal->MarkCompleted(*id).ok());
  EXPECT_EQ(journal->Submit("dup", Ini("dup"), 1).status().code(),
            ErrorCode::kAlreadyExists);
}

TEST_F(JournalTest, CancelOnlyFromQueuedOrRunning) {
  auto journal = SubmissionJournal::Open(dir_, 8);
  ASSERT_TRUE(journal.ok());
  auto id = journal->Submit("x", Ini("x"), 1);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(journal->MarkCancelled(*id).ok());
  EXPECT_EQ(journal->Find(*id)->state, kStateCancelled);
  // Terminal states are final.
  EXPECT_EQ(journal->MarkCancelled(*id).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(journal->MarkCancelled(999).code(), ErrorCode::kNotFound);
}

TEST_F(JournalTest, ReopenSeesCommittedTransitionsAndContinuesIds) {
  std::uint64_t id_a = 0;
  std::uint64_t id_b = 0;
  {
    auto journal = SubmissionJournal::Open(dir_, 8);
    ASSERT_TRUE(journal.ok());
    id_a = *journal->Submit("a", Ini("a"), 1);
    id_b = *journal->Submit("b", Ini("b"), 3);
    ASSERT_TRUE(journal->ClaimNext().ok());  // a -> running
  }
  auto journal = SubmissionJournal::Open(dir_, 8);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  // The killed daemon's in-flight campaign is visible as "running" —
  // the restart path resumes it rather than re-queueing it.
  std::vector<Submission> running = journal->InState(kStateRunning);
  ASSERT_EQ(running.size(), 1u);
  EXPECT_EQ(running[0].id, id_a);
  std::vector<Submission> queued = journal->InState(kStateQueued);
  ASSERT_EQ(queued.size(), 1u);
  EXPECT_EQ(queued[0].id, id_b);
  EXPECT_EQ(queued[0].jobs, 3u);
  // Ids keep monotonically increasing across lives.
  auto id_c = journal->Submit("c", Ini("c"), 1);
  ASSERT_TRUE(id_c.ok());
  EXPECT_GT(*id_c, id_b);
}

// The journal is the poster child for incremental compaction: the
// SubmissionQueue table churns on every transition while ServiceMeta is
// written once at creation. After the first Compact() both tables have
// snapshots; later Compact() calls must rewrite only the dirty queue
// table and leave the clean meta table's snapshot file untouched.
TEST_F(JournalTest, CompactionSkipsCleanMetaTable) {
  auto journal = SubmissionJournal::Open(dir_, 32);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal->Submit("one", Ini("one"), 1).ok());
  ASSERT_TRUE(journal->database().Compact().ok());

  // The meta row is inserted before AttachWal, so it lives in the
  // generation-0 snapshot and the table has been clean ever since:
  // the first Compact() keeps it at generation 0 while the churned
  // queue table gets a fresh snapshot.
  const std::uint64_t meta_gen =
      journal->database().table_snapshot_generation(kServiceMetaTable);
  const std::uint64_t queue_gen =
      journal->database().table_snapshot_generation(kSubmissionQueueTable);
  EXPECT_EQ(meta_gen, 0u);
  ASSERT_GT(queue_gen, 0u);
  const fs::path meta_snapshot =
      fs::path(dir_) /
      (std::string(kServiceMetaTable) + "." + std::to_string(meta_gen) +
       ".snap");
  ASSERT_TRUE(fs::exists(meta_snapshot));
  const auto meta_mtime = fs::last_write_time(meta_snapshot);

  // More queue churn, then compact again.
  ASSERT_TRUE(journal->Submit("two", Ini("two"), 1).ok());
  ASSERT_TRUE(journal->ClaimNext().ok());
  EXPECT_TRUE(journal->database().table_dirty(kSubmissionQueueTable));
  EXPECT_FALSE(journal->database().table_dirty(kServiceMetaTable));
  ASSERT_TRUE(journal->database().Compact().ok());

  // Queue snapshot advanced, meta snapshot is the very same file.
  EXPECT_GT(journal->database().table_snapshot_generation(
                kSubmissionQueueTable),
            queue_gen);
  EXPECT_EQ(journal->database().table_snapshot_generation(kServiceMetaTable),
            meta_gen);
  ASSERT_TRUE(fs::exists(meta_snapshot));
  EXPECT_EQ(fs::last_write_time(meta_snapshot), meta_mtime);

  // And the incrementally-compacted directory still reopens cleanly.
  journal = SubmissionJournal::Open(dir_, 32);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(journal->All().size(), 2u);
}

}  // namespace
}  // namespace goofi::service
