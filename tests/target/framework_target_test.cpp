// FrameworkTarget (paper Fig. 3 porting skeleton) tests, plus the
// TEST_P bodies of the target-agnostic conformance contract declared in
// conformance.h. The contract is instantiated here for the skeleton
// itself and for a minimal one-override port of it; thor_rd_target_test
// instantiates the same contract for the full Thor RD board.
#include "target/framework_target.h"

#include <set>

#include <gtest/gtest.h>

#include "conformance.h"

namespace goofi::target {
namespace {

using LocationInfo = TargetSystemInterface::LocationInfo;

// =====================================================================
// The conformance contract. Everything below TEST_P uses only the
// abstract TargetSystemInterface — never a concrete target type.
// =====================================================================

TEST_P(TargetConformanceTest, AdvertisesInjectableLocations) {
  auto target = GetParam().make();
  const std::vector<LocationInfo> locations = target->ListLocations();
  ASSERT_FALSE(locations.empty());
  std::set<std::string> names;
  bool any_writable = false;
  for (const LocationInfo& location : locations) {
    EXPECT_TRUE(names.insert(location.name).second)
        << "duplicate location name " << location.name;
    if (location.kind == LocationInfo::Kind::kScanElement) {
      EXPECT_GT(location.width_bits, 0u) << location.name;
      EXPECT_FALSE(location.chain.empty()) << location.name;
    } else {
      EXPECT_GT(location.size, 0u) << location.name;
    }
    any_writable = any_writable || location.writable;
  }
  EXPECT_TRUE(any_writable);
}

TEST_P(TargetConformanceTest, ReferenceRunIsDeterministic) {
  auto target = GetParam().make();
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const Observation first = target->TakeObservation();
  EXPECT_FALSE(first.fault_was_injected);
  EXPECT_FALSE(first.chain_images.empty());
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const Observation second = target->TakeObservation();
  EXPECT_EQ(first.Serialize(), second.Serialize());
}

TEST_P(TargetConformanceTest, ScifiExperimentInjectsAtTrigger) {
  auto target = GetParam().make();
  ExperimentSpec spec;
  spec.name = "conformance-scifi";
  spec.technique = Technique::kScifi;
  spec.trigger = GetParam().trigger;
  spec.targets = {GetParam().writable_fault};
  target->set_experiment(spec);
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation observation = target->TakeObservation();
  EXPECT_TRUE(observation.fault_was_injected);
  EXPECT_FALSE(observation.chain_images.empty());
  // Whatever happened, the run must have ended for a defined reason.
  EXPECT_LE(static_cast<int>(observation.stop_reason),
            static_cast<int>(sim::StopReason::kBudgetExhausted));
}

TEST_P(TargetConformanceTest, ObserveOnlyLocationRejectsInjection) {
  if (GetParam().readonly_location.empty()) {
    GTEST_SKIP() << "target advertises no observe-only locations";
  }
  auto target = GetParam().make();
  ExperimentSpec spec;
  spec.technique = Technique::kScifi;
  spec.trigger = GetParam().trigger;
  spec.targets = {{GetParam().readonly_location, 0}};
  target->set_experiment(spec);
  EXPECT_FALSE(target->RunExperiment().ok());
}

TEST_P(TargetConformanceTest, ExperimentLeavesTargetReusable) {
  auto target = GetParam().make();
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const std::string golden = target->TakeObservation().Serialize();

  ExperimentSpec spec;
  spec.technique = Technique::kScifi;
  spec.trigger = GetParam().trigger;
  spec.targets = {GetParam().writable_fault};
  target->set_experiment(spec);
  ASSERT_TRUE(target->RunExperiment().ok());
  (void)target->TakeObservation();

  // A fresh reference run on the same instance must reproduce the
  // golden observation exactly: experiments may not leak state.
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  EXPECT_EQ(golden, target->TakeObservation().Serialize());
}

TEST_P(TargetConformanceTest, TakeObservationResetsTheSlate) {
  auto target = GetParam().make();
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const Observation taken = target->TakeObservation();
  EXPECT_FALSE(taken.chain_images.empty());
  EXPECT_TRUE(target->observation().chain_images.empty());
  EXPECT_EQ(target->observation().instructions, 0u);
}

// =====================================================================
// Instantiations for the skeleton and for a minimal port of it.
// =====================================================================

ConformanceParam SkeletonParam() {
  ConformanceParam param;
  param.label = "FrameworkSkeleton";
  param.make = [] { return std::make_unique<FrameworkTarget>(); };
  param.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  param.trigger.count = 10;
  param.writable_fault = {"counter1", 7};
  param.readonly_location = "machine_id";
  return param;
}

// The smallest possible port: override one identity and inherit every
// operation. Proves a port stays driveable while built up incrementally.
class RenamedPort : public FrameworkTarget {
 public:
  const std::string& target_name() const override {
    static const std::string kName = "renamed_port";
    return kName;
  }
};

ConformanceParam RenamedPortParam() {
  ConformanceParam param = SkeletonParam();
  param.label = "RenamedPort";
  param.make = [] { return std::make_unique<RenamedPort>(); };
  return param;
}

INSTANTIATE_TEST_SUITE_P(Framework, TargetConformanceTest,
                         ::testing::Values(SkeletonParam(),
                                           RenamedPortParam()),
                         ConformanceParamName);

// =====================================================================
// Skeleton-specific behaviour.
// =====================================================================

TEST(FrameworkTargetTest, ReferenceRunEmitsTheCounterSum) {
  FrameworkTarget target;
  ASSERT_TRUE(target.MakeReferenceRun().ok());
  const Observation& observation = target.observation();
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kHalted);
  EXPECT_EQ(observation.instructions, 64u);
  ASSERT_EQ(observation.emitted.size(), 2u);
  EXPECT_EQ(observation.emitted[0], 64u * 65u / 2u);  // sum 1..64
}

TEST(FrameworkTargetTest, HighBitFlipTripsTheRangeEdm) {
  FrameworkTarget target;
  ExperimentSpec spec;
  spec.technique = Technique::kScifi;
  spec.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  spec.trigger.count = 10;
  spec.targets = {{"counter0", 30}};  // way above the legal ceiling
  target.set_experiment(spec);
  ASSERT_TRUE(target.RunExperiment().ok());
  const Observation& observation = target.observation();
  EXPECT_TRUE(observation.fault_was_injected);
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kEdm);
  ASSERT_TRUE(observation.edm.has_value());
  EXPECT_EQ(observation.edm->type, sim::EdmType::kAssertion);
}

TEST(FrameworkTargetTest, LowBitFlipCorruptsTheSumSilently) {
  FrameworkTarget target;
  ASSERT_TRUE(target.MakeReferenceRun().ok());
  const std::vector<std::uint32_t> golden = target.observation().emitted;

  ExperimentSpec spec;
  spec.technique = Technique::kScifi;
  spec.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  spec.trigger.count = 10;
  spec.targets = {{"counter0", 0}};
  target.set_experiment(spec);
  ASSERT_TRUE(target.RunExperiment().ok());
  const Observation& observation = target.observation();
  // A one-bit nudge stays under the EDM ceiling but corrupts the sum.
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kHalted);
  ASSERT_EQ(observation.emitted.size(), 2u);
  EXPECT_NE(observation.emitted[0], golden[0]);
}

TEST(FrameworkTargetTest, TriggerPastTheEndMeansNoInjection) {
  FrameworkTarget target;
  ExperimentSpec spec;
  spec.technique = Technique::kScifi;
  spec.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  spec.trigger.count = 10'000;  // beyond the 64-step workload
  spec.targets = {{"counter0", 30}};
  target.set_experiment(spec);
  ASSERT_TRUE(target.RunExperiment().ok());
  EXPECT_FALSE(target.observation().fault_was_injected);
  EXPECT_EQ(target.observation().stop_reason, sim::StopReason::kHalted);
}

TEST(FrameworkTargetTest, UnknownLocationIsNotFound) {
  FrameworkTarget target;
  ExperimentSpec spec;
  spec.technique = Technique::kScifi;
  spec.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  spec.trigger.count = 10;
  spec.targets = {{"bogus", 0}};
  target.set_experiment(spec);
  EXPECT_EQ(target.RunExperiment().code(), ErrorCode::kNotFound);

  spec.targets = {{"counter9", 0}};  // matches the naming scheme but
  target.set_experiment(spec);       // names a counter that isn't there
  EXPECT_EQ(target.RunExperiment().code(), ErrorCode::kNotFound);

  spec.targets = {{"counter1", 40}};  // a real counter, impossible bit
  target.set_experiment(spec);
  EXPECT_EQ(target.RunExperiment().code(), ErrorCode::kOutOfRange);
}

TEST(FrameworkTargetTest, RuntimeSwifiFlipsLiveState) {
  FrameworkTarget target;
  ASSERT_TRUE(target.MakeReferenceRun().ok());
  const std::vector<std::uint32_t> golden = target.observation().emitted;

  ExperimentSpec spec;
  spec.technique = Technique::kSwifiRuntime;
  spec.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  spec.trigger.count = 32;
  spec.targets = {{"counter0", 2}};
  target.set_experiment(spec);
  ASSERT_TRUE(target.RunExperiment().ok());
  EXPECT_TRUE(target.observation().fault_was_injected);
  ASSERT_EQ(target.observation().emitted.size(), 2u);
  EXPECT_NE(target.observation().emitted[0], golden[0]);
}

}  // namespace
}  // namespace goofi::target
