// The host-side plant models (paper: "the environment simulator runs on
// the host computer and exchanges sensor/actuator values with the
// workload at every iteration").
#include "target/environment.h"

#include <gtest/gtest.h>

#include "target/io_map.h"

namespace goofi::target {
namespace {

sim::Memory MakeIoMemory() {
  sim::Memory memory;
  EXPECT_TRUE(
      memory.AddSegment({"io", kIoBase, kIoSize, true, true, false, true})
          .ok());
  return memory;
}

std::uint32_t ReadIo(const sim::Memory& memory, std::uint32_t offset) {
  std::uint32_t value = 0;
  EXPECT_TRUE(memory.PeekWord(kIoBase + offset, &value));
  return value;
}

TEST(EnvironmentTest, FactoryKnowsTheEngineAndNothingElse) {
  auto engine = MakeEnvironment("engine");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value()->name(), "engine");
  EXPECT_FALSE(MakeEnvironment("wind_tunnel").ok());
  EXPECT_FALSE(MakeEnvironment("").ok());
}

TEST(EnvironmentTest, ResetPrimesTheSensorPage) {
  sim::Memory memory = MakeIoMemory();
  EngineEnvironment engine;
  engine.Reset(memory);
  EXPECT_GT(ReadIo(memory, kIoInOffset), 0u);  // initial shaft speed
  EXPECT_EQ(ReadIo(memory, kIoOutOffset), 0u);
  EXPECT_EQ(ReadIo(memory, kIoIterOffset), 0u);
  EXPECT_TRUE(engine.outputs().empty());
}

TEST(EnvironmentTest, EveryIterationRecordsTheActuatorCommand) {
  sim::Memory memory = MakeIoMemory();
  EngineEnvironment engine;
  engine.Reset(memory);
  for (std::uint32_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(memory.PokeWord(kIoBase + kIoOutOffset, 400 + i));
    ASSERT_TRUE(engine.OnIterationEnd(memory));
    ASSERT_EQ(engine.outputs().size(), i);
    EXPECT_EQ(engine.outputs().back(), 400 + i);
    EXPECT_EQ(ReadIo(memory, kIoIterOffset), i);
  }
}

TEST(EnvironmentTest, PlantRespondsToTheActuator) {
  sim::Memory memory = MakeIoMemory();
  EngineEnvironment engine;
  engine.Reset(memory);
  const std::int32_t initial = engine.speed();
  // Full throttle spins the shaft up.
  ASSERT_TRUE(memory.PokeWord(kIoBase + kIoOutOffset, 1000));
  ASSERT_TRUE(engine.OnIterationEnd(memory));
  EXPECT_GT(engine.speed(), initial);
  // The new speed is on the sensor page for the next iteration.
  EXPECT_EQ(ReadIo(memory, kIoInOffset),
            static_cast<std::uint32_t>(engine.speed()));
}

TEST(EnvironmentTest, ZeroThrottleNeverDrivesSpeedNegative) {
  sim::Memory memory = MakeIoMemory();
  EngineEnvironment engine;
  engine.Reset(memory);
  ASSERT_TRUE(memory.PokeWord(kIoBase + kIoOutOffset, 0));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine.OnIterationEnd(memory));
    ASSERT_GE(engine.speed(), 0);
  }
  EXPECT_EQ(engine.speed(), 0);  // coasted to a stop
}

TEST(EnvironmentTest, LoadDisturbanceIsASquareWave) {
  // With the actuator held constant, the speed trajectory must change
  // when the load steps at iteration 8 — the disturbance is what keeps
  // the controller exercised over the mission.
  sim::Memory memory = MakeIoMemory();
  EngineEnvironment engine;
  engine.Reset(memory);
  ASSERT_TRUE(memory.PokeWord(kIoBase + kIoOutOffset, 300));
  std::vector<std::int32_t> speeds;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(engine.OnIterationEnd(memory));
    speeds.push_back(engine.speed());
  }
  // speeds[7] is computed after the load has already stepped up, so
  // sample a delta from well inside each phase: the light-load half
  // spins the shaft up, the heavy-load half drags it back down.
  const std::int32_t delta_before = speeds[5] - speeds[4];
  const std::int32_t delta_after = speeds[10] - speeds[9];
  EXPECT_GT(delta_before, 0);
  EXPECT_LT(delta_after, 0);
  EXPECT_NE(delta_before, delta_after);
}

TEST(EnvironmentTest, TwoInstancesEvolveIdentically) {
  sim::Memory memory_a = MakeIoMemory();
  sim::Memory memory_b = MakeIoMemory();
  EngineEnvironment a, b;
  a.Reset(memory_a);
  b.Reset(memory_b);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(memory_a.PokeWord(kIoBase + kIoOutOffset, 350 + i));
    ASSERT_TRUE(memory_b.PokeWord(kIoBase + kIoOutOffset, 350 + i));
    ASSERT_TRUE(a.OnIterationEnd(memory_a));
    ASSERT_TRUE(b.OnIterationEnd(memory_b));
    ASSERT_EQ(a.speed(), b.speed());
  }
  EXPECT_EQ(a.outputs(), b.outputs());
}

TEST(EnvironmentTest, ResetRestartsThePlantFromScratch) {
  sim::Memory memory = MakeIoMemory();
  EngineEnvironment engine;
  engine.Reset(memory);
  const std::int32_t initial = engine.speed();
  ASSERT_TRUE(memory.PokeWord(kIoBase + kIoOutOffset, 900));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.OnIterationEnd(memory));
  }
  ASSERT_NE(engine.speed(), initial);
  engine.Reset(memory);
  EXPECT_EQ(engine.speed(), initial);
  EXPECT_TRUE(engine.outputs().empty());
  EXPECT_EQ(ReadIo(memory, kIoIterOffset), 0u);
}

}  // namespace
}  // namespace goofi::target
