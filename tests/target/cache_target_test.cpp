// CacheHierarchyTarget: Thor RD with access-path fault injection into
// the memory hierarchy (sim/fault_injector.h). Instantiates the
// target-agnostic conformance contract (TEST_P bodies in
// framework_target_test.cpp) with zero changes to the contract itself —
// the headline proof that the access-path seam is just another port —
// then pins down the cache-specific semantics: the detected/escaped
// parity split, coordinate validation, and the campaign-level guarantee
// that serial, sharded and checkpoint-forked cache campaigns log
// byte-identical databases.
#include "target/cache_target.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "conformance.h"
#include "core/experiment_codec.h"
#include "core/goofi_schema.h"
#include "core/parallel_runner.h"
#include "core/runner.h"
#include "target/workloads.h"

namespace goofi::target {
namespace {

using sim::CacheArray;
using sim::MemUnit;

std::unique_ptr<CacheHierarchyTarget> MakeLoadedTarget(
    const std::string& workload) {
  auto target = MakeCacheHierarchyTarget();
  auto spec = GetBuiltinWorkload(workload);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(target->SetWorkload(std::move(spec.value())).ok());
  return target;
}

// =====================================================================
// Conformance: the suite in conformance.h / framework_target_test.cpp,
// unmodified. The writable fault is a cache coordinate — proving the
// access-path location family satisfies the same contract as scan
// chains and counter machines.
// =====================================================================

ConformanceParam CacheIsortParam() {
  ConformanceParam param;
  param.label = "CacheHierarchyIsort";
  param.make = [] {
    return std::unique_ptr<TargetSystemInterface>(MakeLoadedTarget("isort"));
  };
  param.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  param.trigger.count = 50;
  param.writable_fault = {"dcache.set0.word0.data", 5};
  param.readonly_location = "cpu.chip_id";
  return param;
}

INSTANTIATE_TEST_SUITE_P(CacheHierarchy, TargetConformanceTest,
                         ::testing::Values(CacheIsortParam()),
                         ConformanceParamName);

// =====================================================================
// Coordinate grammar and the advertised location space.
// =====================================================================

TEST(CacheCoordinateTest, ParsesTheFourArrayFamilies) {
  auto tag = ParseCacheCoordinate("icache.set3.tag");
  ASSERT_TRUE(tag.has_value());
  EXPECT_EQ(tag->unit, MemUnit::kIcache);
  EXPECT_EQ(tag->array, CacheArray::kTag);
  EXPECT_EQ(tag->set, 3u);

  auto data = ParseCacheCoordinate("dcache.set15.word2.data");
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->unit, MemUnit::kDcache);
  EXPECT_EQ(data->array, CacheArray::kData);
  EXPECT_EQ(data->set, 15u);
  EXPECT_EQ(data->word, 2u);

  auto parity = ParseCacheCoordinate("dcache.set0.word0.parity");
  ASSERT_TRUE(parity.has_value());
  EXPECT_EQ(parity->array, CacheArray::kParity);

  auto inflight = ParseCacheCoordinate("icache.set1.word3.inflight");
  ASSERT_TRUE(inflight.has_value());
  EXPECT_EQ(inflight->array, CacheArray::kInflight);
}

TEST(CacheCoordinateTest, RejectsEverythingElse) {
  EXPECT_FALSE(ParseCacheCoordinate("cpu.regs.r2").has_value());
  EXPECT_FALSE(ParseCacheCoordinate("dcache.set.word0.data").has_value());
  EXPECT_FALSE(ParseCacheCoordinate("dcache.set0.word0").has_value());
  EXPECT_FALSE(ParseCacheCoordinate("dcache.set0.word0.valid").has_value());
  EXPECT_FALSE(ParseCacheCoordinate("dcache.set0.tagx").has_value());
  EXPECT_FALSE(ParseCacheCoordinate("mem@0x10000").has_value());
}

TEST(CacheCoordinateTest, ModelNamesAndGlobsRoundTrip) {
  for (const CacheFaultModel model :
       {CacheFaultModel::kDataBit, CacheFaultModel::kTagBit,
        CacheFaultModel::kParityBit, CacheFaultModel::kInflightLoadBit}) {
    const auto back = CacheFaultModelFromName(CacheFaultModelName(model));
    ASSERT_TRUE(back.has_value()) << CacheFaultModelName(model);
    EXPECT_EQ(*back, model);
  }
  EXPECT_FALSE(CacheFaultModelFromName("transient").has_value());
}

TEST(CacheHierarchyTargetTest, AdvertisesCacheCoordinatesOnTopOfThorRd) {
  auto target = MakeLoadedTarget("isort");
  bool saw_regs = false;
  std::size_t tags = 0, data = 0, parity = 0, inflight = 0;
  for (const auto& location : target->ListLocations()) {
    if (location.name == "cpu.regs.r2") saw_regs = true;
    const auto coordinate = ParseCacheCoordinate(location.name);
    if (!coordinate.has_value()) continue;
    EXPECT_TRUE(location.writable) << location.name;
    EXPECT_EQ(location.chain, "access_path") << location.name;
    EXPECT_EQ(location.category, "cache_access_path") << location.name;
    switch (coordinate->array) {
      case CacheArray::kTag:
        ++tags;
        EXPECT_EQ(location.width_bits, 24u) << location.name;
        break;
      case CacheArray::kData:
        ++data;
        EXPECT_EQ(location.width_bits, 32u) << location.name;
        break;
      case CacheArray::kParity:
        ++parity;
        EXPECT_EQ(location.width_bits, 1u) << location.name;
        break;
      case CacheArray::kInflight:
        ++inflight;
        EXPECT_EQ(location.width_bits, 32u) << location.name;
        break;
    }
  }
  // The inherited Thor RD space is still there...
  EXPECT_TRUE(saw_regs);
  // ...plus, per unit: one tag per set, and one data/parity/inflight
  // coordinate per (set, word) of the 16x4 geometry.
  EXPECT_EQ(tags, 2u * 16u);
  EXPECT_EQ(data, 2u * 16u * 4u);
  EXPECT_EQ(parity, 2u * 16u * 4u);
  EXPECT_EQ(inflight, 2u * 16u * 4u);
}

// =====================================================================
// Injection semantics: the section 3.4 detected/escaped split.
// =====================================================================

ExperimentSpec AtInstret(std::uint64_t count, FaultTarget fault,
                         Technique technique = Technique::kScifi) {
  ExperimentSpec spec;
  spec.technique = technique;
  spec.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  spec.trigger.count = count;
  spec.targets = {std::move(fault)};
  return spec;
}

TEST(CacheHierarchyTargetTest, DataArrayFlipIsCaughtByTheParityEdm) {
  // isort keeps its working set resident in the D-cache; a flipped data
  // bit leaves the stored parity stale, so the next read hit of that
  // word trips the kDcacheParity checker.
  auto target = MakeLoadedTarget("isort");
  target->set_experiment(AtInstret(50, {"dcache.set0.word0.data", 7}));
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation& observation = target->observation();
  EXPECT_TRUE(observation.fault_was_injected);
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kEdm);
  ASSERT_TRUE(observation.edm.has_value());
  EXPECT_EQ(observation.edm->type, sim::EdmType::kDcacheParity);
}

TEST(CacheHierarchyTargetTest, InflightLoadFlipEscapesTheParityEdm) {
  // The same bit of the same word, corrupted on the wires after the
  // parity comparison: the EDM is blind to it, the workload keeps
  // running on wrong data — the escaped half of the taxonomy.
  auto target = MakeLoadedTarget("isort");
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const std::vector<std::uint8_t> golden =
      target->observation().output_region;

  target->set_experiment(
      AtInstret(50, {"dcache.set0.word0.inflight", 7}));
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation& observation = target->observation();
  EXPECT_TRUE(observation.fault_was_injected);
  if (observation.edm.has_value()) {
    EXPECT_NE(observation.edm->type, sim::EdmType::kDcacheParity);
    EXPECT_NE(observation.edm->type, sim::EdmType::kIcacheParity);
  }
  // The flip corrupted a value isort actually loaded: wrong output.
  EXPECT_NE(observation.output_region, golden);
}

TEST(CacheHierarchyTargetTest, ExperimentsDoNotLeakArmedFaults) {
  // A permanent stuck-at is the stickiest state a fault model has;
  // initTestCard must still wipe it before the next run.
  auto target = MakeLoadedTarget("isort");
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const std::string golden = target->TakeObservation().Serialize();

  ExperimentSpec spec = AtInstret(50, {"dcache.set0.word0.data", 0});
  spec.model.kind = FaultModel::Kind::kPermanentStuckAt;
  spec.model.stuck_to_one = true;
  target->set_experiment(spec);
  ASSERT_TRUE(target->RunExperiment().ok());
  EXPECT_GT(target->injector().applied_count(), 0u);
  (void)target->TakeObservation();

  ASSERT_TRUE(target->MakeReferenceRun().ok());
  EXPECT_TRUE(target->injector().armed().empty());
  EXPECT_EQ(target->TakeObservation().Serialize(), golden);
}

TEST(CacheHierarchyTargetTest, RejectsCoordinatesOutsideTheGeometry) {
  auto target = MakeLoadedTarget("isort");
  target->set_experiment(AtInstret(50, {"dcache.set99.word0.data", 0}));
  EXPECT_EQ(target->RunExperiment().code(), ErrorCode::kOutOfRange);

  target->set_experiment(AtInstret(50, {"dcache.set0.word9.data", 0}));
  EXPECT_EQ(target->RunExperiment().code(), ErrorCode::kOutOfRange);

  // Real coordinate, impossible bit: parity is a 1-bit location.
  target->set_experiment(AtInstret(50, {"dcache.set0.word0.parity", 1}));
  EXPECT_EQ(target->RunExperiment().code(), ErrorCode::kOutOfRange);
}

TEST(CacheHierarchyTargetTest, PreRuntimeSwifiCannotReachTheAccessPath) {
  // Cache coordinates only exist while the workload runs; arming one
  // before download makes no physical sense and must be rejected.
  auto target = MakeLoadedTarget("isort");
  target->set_experiment(AtInstret(0, {"icache.set0.word0.data", 3},
                                   Technique::kSwifiPreRuntime));
  EXPECT_EQ(target->RunExperiment().code(), ErrorCode::kInvalidArgument);
}

// =====================================================================
// Campaign-level determinism: a cache campaign logs the identical
// database serially, sharded across 4 workers, and checkpoint-forked —
// the guarantee every execution mode in the tool rides on, extended to
// the new location family. Mirrors checkpoint_fork_test.cpp.
// =====================================================================

std::vector<std::string> DumpTable(db::Database& database,
                                   const std::string& table_name) {
  std::vector<std::string> rows;
  const db::Table* table = database.FindTable(table_name);
  if (table == nullptr) return rows;
  for (const db::Row& row : table->rows()) {
    std::string line;
    for (const db::Value& value : row) {
      line += value.Encode();
      line += '\t';
    }
    rows.push_back(std::move(line));
  }
  return rows;
}

class CacheCampaignTest : public ::testing::Test {
 protected:
  static core::CampaignConfig MakeConfig() {
    core::CampaignConfig config;
    config.name = "cache_parity";
    config.target = "cache_hierarchy";
    config.workload = "isort";
    config.num_experiments = 30;
    config.seed = 17;
    config.cache_fault_model = "cache_data_bit";
    config.location_filters = {"dcache.*"};
    config.checkpoint_mode = true;
    config.checkpoint_stride = 200;
    return config;
  }

  static void SetUpDatabase(db::Database& database,
                            const core::CampaignConfig& config) {
    ASSERT_TRUE(core::CreateGoofiSchema(database).ok());
    CacheHierarchyTarget registrar;
    ASSERT_TRUE(
        core::RegisterTargetSystem(database, registrar, "card", "").ok());
    ASSERT_TRUE(core::StoreCampaign(database, config).ok());
  }

  static core::CampaignSummary RunSerial(db::Database& database,
                                         const core::CampaignConfig& config,
                                         std::optional<bool> checkpoint) {
    SetUpDatabase(database, config);
    CacheHierarchyTarget target;
    core::CampaignRunner runner(&database, &target);
    runner.set_checkpoint_fork(checkpoint);
    auto summary = runner.Run(config.name);
    EXPECT_TRUE(summary.ok()) << summary.status().ToString();
    return *summary;
  }
};

TEST_F(CacheCampaignTest, SerialShardedAndForkedRunsLogIdentically) {
  const core::CampaignConfig config = MakeConfig();

  db::Database replay_db;
  const core::CampaignSummary replay = RunSerial(replay_db, config, false);
  EXPECT_EQ(replay.checkpoint_forks, 0u);
  const auto replay_logged =
      DumpTable(replay_db, core::kLoggedSystemStateTable);
  const auto replay_campaign =
      DumpTable(replay_db, core::kCampaignDataTable);
  ASSERT_FALSE(replay_logged.empty());

  // Checkpoint-fork execution (eligibility carries over unmodified:
  // instret triggers, normal logging, a fork-capable board).
  db::Database fork_db;
  const core::CampaignSummary fork = RunSerial(fork_db, config, true);
  EXPECT_GT(fork.checkpoint_forks, 0u);
  EXPECT_GT(fork.instructions_skipped, 0u);
  EXPECT_EQ(DumpTable(fork_db, core::kLoggedSystemStateTable),
            replay_logged);
  EXPECT_EQ(DumpTable(fork_db, core::kCampaignDataTable), replay_campaign);

  // Four-way sharding.
  auto factory = BuiltinTargetFactory("cache_hierarchy");
  ASSERT_TRUE(factory.ok());
  db::Database sharded_db;
  SetUpDatabase(sharded_db, config);
  core::ParallelCampaignRunner sharded(&sharded_db, *factory, 4);
  auto summary = sharded.Run(config.name);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_EQ(DumpTable(sharded_db, core::kLoggedSystemStateTable),
            replay_logged);
  EXPECT_EQ(DumpTable(sharded_db, core::kCampaignDataTable),
            replay_campaign);
}

TEST_F(CacheCampaignTest, EveryExperimentInjectsIntoTheDataArrayOnly) {
  // The cache_data_bit model narrows the sampled family: every logged
  // fault location must be a *.data coordinate.
  const core::CampaignConfig config = MakeConfig();
  db::Database database;
  RunSerial(database, config, std::nullopt);
  const db::Table* table =
      database.FindTable(core::kLoggedSystemStateTable);
  ASSERT_NE(table, nullptr);
  ASSERT_FALSE(table->rows().empty());
  std::size_t experiments = 0;
  for (const db::Row& row : table->rows()) {
    const std::string experiment_data = row[3].AsText();
    if (experiment_data == "reference") continue;
    const auto spec = core::ParseExperimentSpec(experiment_data);
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    ASSERT_FALSE(spec->targets.empty());
    for (const FaultTarget& fault : spec->targets) {
      const auto coordinate = ParseCacheCoordinate(fault.location);
      ASSERT_TRUE(coordinate.has_value()) << fault.location;
      EXPECT_EQ(coordinate->array, CacheArray::kData) << fault.location;
      EXPECT_EQ(coordinate->unit, MemUnit::kDcache) << fault.location;
    }
    ++experiments;
  }
  EXPECT_EQ(experiments, config.num_experiments);
}

TEST_F(CacheCampaignTest, CacheModelOnAScanChainBoardFailsLoudly) {
  // thor_rd advertises no cache coordinates: the runner must refuse the
  // campaign instead of silently sampling an empty family.
  core::CampaignConfig config = MakeConfig();
  config.target = "thor_rd";
  db::Database database;
  ASSERT_TRUE(core::CreateGoofiSchema(database).ok());
  ThorRdTarget registrar;
  ASSERT_TRUE(
      core::RegisterTargetSystem(database, registrar, "card", "").ok());
  ASSERT_TRUE(core::StoreCampaign(database, config).ok());
  ThorRdTarget target;
  core::CampaignRunner runner(&database, &target);
  EXPECT_EQ(runner.Run(config.name).status().code(),
            ErrorCode::kFailedPrecondition);
}

}  // namespace
}  // namespace goofi::target
