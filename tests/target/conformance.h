// Target-agnostic conformance contract for TargetSystemInterface ports.
//
// Any target plugin GOOFI's algorithms can drive must pass this
// parameterized suite. The TEST_P bodies live in
// framework_target_test.cpp (one translation unit, per gtest's
// cross-TU value-parameterized pattern); every target test file
// instantiates the suite with its own factories:
//
//   INSTANTIATE_TEST_SUITE_P(MyTarget, TargetConformanceTest,
//                            ::testing::Values(MyParam()),
//                            ConformanceParamName);
//
// The params carry only a factory and generic fault coordinates, so the
// contract itself never references a concrete target type.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "target/fault_injection_algorithms.h"

namespace goofi::target {

struct ConformanceParam {
  // Used as the test-name suffix; [A-Za-z0-9_] only.
  std::string label;
  // Returns a fully configured target (workload installed, ready for
  // MakeReferenceRun / RunExperiment).
  std::function<std::unique_ptr<TargetSystemInterface>()> make;
  // A trigger that fires strictly before the workload finishes.
  sim::Breakpoint trigger;
  // A fault reaching a writable scan element of this target.
  FaultTarget writable_fault;
  // Name of an observe-only location, or "" if the target has none
  // (the corresponding test skips).
  std::string readonly_location;
};

inline std::string ConformanceParamName(
    const ::testing::TestParamInfo<ConformanceParam>& info) {
  return info.param.label;
}

class TargetConformanceTest
    : public ::testing::TestWithParam<ConformanceParam> {};

}  // namespace goofi::target
