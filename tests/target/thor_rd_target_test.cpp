// ThorRdTarget: the simulated Thor RD board behind the test card.
// Instantiates the target-agnostic conformance contract (TEST_P bodies
// in framework_target_test.cpp) for the rad-hard and commercial board
// variants, then pins down Thor-specific behaviour: the three
// techniques end-to-end, observe-only protection, detail logging and
// the engine-control mission.
#include "target/thor_rd_target.h"

#include <gtest/gtest.h>

#include "conformance.h"
#include "target/workloads.h"

namespace goofi::target {
namespace {

std::unique_ptr<ThorRdTarget> MakeLoadedTarget(
    const std::string& workload) {
  auto target = std::make_unique<ThorRdTarget>();
  auto spec = GetBuiltinWorkload(workload);
  EXPECT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_TRUE(target->SetWorkload(std::move(spec.value())).ok());
  return target;
}

ConformanceParam ThorRdFibParam() {
  ConformanceParam param;
  param.label = "ThorRdFib";
  param.make = [] {
    return std::unique_ptr<TargetSystemInterface>(MakeLoadedTarget("fib"));
  };
  param.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  param.trigger.count = 10;
  param.writable_fault = {"cpu.regs.r2", 13};
  param.readonly_location = "cpu.chip_id";
  return param;
}

ConformanceParam ThorIsortParam() {
  ConformanceParam param;
  param.label = "ThorIsort";
  param.make = [] {
    std::unique_ptr<ThorRdTarget> target = MakeThorTarget();
    auto spec = GetBuiltinWorkload("isort");
    EXPECT_TRUE(spec.ok());
    EXPECT_TRUE(target->SetWorkload(std::move(spec.value())).ok());
    return std::unique_ptr<TargetSystemInterface>(std::move(target));
  };
  param.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  param.trigger.count = 50;
  param.writable_fault = {"cpu.regs.r7", 3};
  param.readonly_location = "cpu.edm_status";
  return param;
}

INSTANTIATE_TEST_SUITE_P(Thor, TargetConformanceTest,
                         ::testing::Values(ThorRdFibParam(),
                                           ThorIsortParam()),
                         ConformanceParamName);

ExperimentSpec AtInstret(std::uint64_t count, FaultTarget fault,
                         Technique technique = Technique::kScifi) {
  ExperimentSpec spec;
  spec.technique = technique;
  spec.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  spec.trigger.count = count;
  spec.targets = {std::move(fault)};
  return spec;
}

TEST(ThorRdTargetTest, AdvertisesScanElementsAndMemoryRanges) {
  auto target = MakeLoadedTarget("fib");
  bool saw_r2 = false, saw_chip_id = false, saw_code = false,
       saw_data = false;
  for (const auto& location : target->ListLocations()) {
    if (location.name == "cpu.regs.r2") {
      saw_r2 = true;
      EXPECT_TRUE(location.writable);
      EXPECT_EQ(location.chain, "internal");
      EXPECT_EQ(location.width_bits, 32u);
    } else if (location.name == "cpu.chip_id") {
      saw_chip_id = true;
      EXPECT_FALSE(location.writable);
    } else if (location.name.rfind("mem.code@", 0) == 0) {
      saw_code = true;
      EXPECT_EQ(location.category, "memory_code");
      EXPECT_GT(location.size, 0u);
    } else if (location.name.rfind("mem.data@", 0) == 0) {
      saw_data = true;
      EXPECT_EQ(location.category, "memory_data");
    }
  }
  EXPECT_TRUE(saw_r2);
  EXPECT_TRUE(saw_chip_id);
  EXPECT_TRUE(saw_code);
  EXPECT_TRUE(saw_data);
}

TEST(ThorRdTargetTest, ReferenceRunComputesFibonacci) {
  auto target = MakeLoadedTarget("fib");
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const Observation& observation = target->observation();
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kHalted);
  ASSERT_EQ(observation.emitted.size(), 1u);
  EXPECT_EQ(observation.emitted[0], 10946u);  // fib(21)
  ASSERT_EQ(observation.output_region.size(), 4u);
}

TEST(ThorRdTargetTest, ScifiRegisterFlipDivergesFromReference) {
  auto target = MakeLoadedTarget("fib");
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const std::vector<std::uint32_t> golden = target->observation().emitted;

  target->set_experiment(AtInstret(10, {"cpu.regs.r2", 13}));
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation& observation = target->observation();
  EXPECT_TRUE(observation.fault_was_injected);
  ASSERT_EQ(observation.emitted.size(), 1u);
  EXPECT_NE(observation.emitted[0], golden[0]);
}

TEST(ThorRdTargetTest, LinkRetriesLandInTheObservationPerRun) {
  // A lossy host<->card link: every transferred word needs retries.
  // The per-run delta (not the card's cumulative counter) must land in
  // the observation, so each experiment logs its own link trouble.
  TestCardOptions lossy;
  lossy.link_fault_probability = 1.0;
  ThorRdTarget target(lossy);
  auto spec = GetBuiltinWorkload("fib");
  ASSERT_TRUE(spec.ok());
  ASSERT_TRUE(target.SetWorkload(std::move(spec.value())).ok());

  ASSERT_TRUE(target.MakeReferenceRun().ok());
  const std::uint64_t reference_retries =
      target.observation().link_words_retried;
  EXPECT_GT(reference_retries, 0u);

  target.set_experiment(AtInstret(10, {"cpu.regs.r2", 13}));
  ASSERT_TRUE(target.RunExperiment().ok());
  const Observation observation = target.TakeObservation();
  EXPECT_GT(observation.link_words_retried, 0u);
  // Per-run delta, not the cumulative card counter.
  EXPECT_LT(observation.link_words_retried,
            target.test_card().link_stats().words_retried);
  // And the stat survives the LoggedSystemState text codec.
  auto decoded = Observation::Deserialize(observation.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().link_words_retried,
            observation.link_words_retried);

  // A clean link records none.
  auto clean = MakeLoadedTarget("fib");
  ASSERT_TRUE(clean->MakeReferenceRun().ok());
  EXPECT_EQ(clean->observation().link_words_retried, 0u);
}

TEST(ThorRdTargetTest, RuntimeSwifiMatchesScifiForTheSameFlip) {
  // A transient register flip at the same trigger must corrupt the run
  // identically whether it arrives via the scan chains or the debug
  // port — the two techniques differ in mechanism, not effect.
  auto target = MakeLoadedTarget("fib");
  target->set_experiment(AtInstret(10, {"cpu.regs.r2", 13}));
  ASSERT_TRUE(target->RunExperiment().ok());
  const std::vector<std::uint32_t> scifi = target->observation().emitted;

  target->set_experiment(
      AtInstret(10, {"cpu.regs.r2", 13}, Technique::kSwifiRuntime));
  ASSERT_TRUE(target->RunExperiment().ok());
  EXPECT_EQ(target->observation().emitted, scifi);
}

TEST(ThorRdTargetTest, PreRuntimeSwifiCorruptsTheDownloadedImage) {
  auto target = MakeLoadedTarget("isort");
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const std::vector<std::uint8_t> golden =
      target->observation().output_region;
  ASSERT_FALSE(golden.empty());

  // Flip a bit of the first input word before execution starts.
  target->set_experiment(AtInstret(0, {"mem@0x00010000", 0},
                                   Technique::kSwifiPreRuntime));
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation& observation = target->observation();
  EXPECT_TRUE(observation.fault_was_injected);
  EXPECT_NE(observation.output_region, golden);
}

// The ISSUE's observe-only guarantee: injecting into a read-only scan
// position must fail AND must not perturb the captured state — the
// chain image on the target stays bit-identical to the one GOOFI read.
TEST(ThorRdTargetTest, ReadOnlyInjectionFailsWithoutTouchingTheChain) {
  auto target = MakeLoadedTarget("fib");
  target->set_experiment(AtInstret(10, {"cpu.chip_id", 0}));
  const Status status = target->RunExperiment();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kTargetFault);

  // readScanChain ran before the failing injectFault, so the captured
  // image is in the observation; the target must still hold it.
  const auto captured = target->observation().chain_images.find("internal");
  ASSERT_NE(captured, target->observation().chain_images.end());
  auto live = target->test_card().ReadChain("internal");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value().ToHexString(), captured->second.ToHexString());
}

TEST(ThorRdTargetTest, MultiBitFaultsApplyEveryTarget) {
  auto target = MakeLoadedTarget("fib");
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const std::vector<std::uint32_t> golden = target->observation().emitted;

  ExperimentSpec spec = AtInstret(10, {"cpu.regs.r2", 13});
  spec.targets.push_back({"cpu.regs.r1", 5});
  target->set_experiment(spec);
  ASSERT_TRUE(target->RunExperiment().ok());
  EXPECT_TRUE(target->observation().fault_was_injected);
  EXPECT_NE(target->observation().emitted, golden);
}

TEST(ThorRdTargetTest, TriggerThatNeverFiresMeansNoInjection) {
  auto target = MakeLoadedTarget("fib");
  ExperimentSpec spec = AtInstret(0, {"cpu.regs.r2", 13});
  spec.trigger.kind = sim::Breakpoint::Kind::kPcEquals;
  spec.trigger.address = 0xFFFC;  // never executed
  spec.trigger.count = 1;
  target->set_experiment(spec);
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation& observation = target->observation();
  EXPECT_FALSE(observation.fault_was_injected);
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kHalted);
  ASSERT_EQ(observation.emitted.size(), 1u);
  EXPECT_EQ(observation.emitted[0], 10946u);
}

TEST(ThorRdTargetTest, DetailModeCapturesOneImagePerInstruction) {
  auto target = MakeLoadedTarget("fib");
  target->set_logging_mode(LoggingMode::kDetail);
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const Observation& observation = target->observation();
  ASSERT_FALSE(observation.detail_trace.empty());
  EXPECT_EQ(observation.detail_trace.size(), observation.instructions);
  const std::size_t image_bits = observation.detail_trace[0].second.size();
  EXPECT_GT(image_bits, 0u);
  for (std::size_t i = 1; i < observation.detail_trace.size(); ++i) {
    EXPECT_LT(observation.detail_trace[i - 1].first,
              observation.detail_trace[i].first);
    EXPECT_EQ(observation.detail_trace[i].second.size(), image_bits);
  }
}

TEST(ThorRdTargetTest, EngineControlMissionCompletesFortyIterations) {
  auto target = MakeLoadedTarget("engine_control");
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const Observation& observation = target->observation();
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kIterationLimit);
  EXPECT_EQ(observation.iterations, 40u);
  ASSERT_EQ(observation.env_outputs.size(), 40u);
  // The controller must actually drive the plant: actuator commands
  // settle to something non-zero against the load.
  EXPECT_NE(observation.env_outputs.back(), 0u);
  ASSERT_NE(target->environment(), nullptr);
  EXPECT_EQ(target->environment()->name(), "engine");
}

TEST(ThorRdTargetTest, PermanentStuckAtKeepsTheBitPinned) {
  auto target = MakeLoadedTarget("fib");
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const std::vector<std::uint32_t> golden = target->observation().emitted;

  // Stuck-at-0 on r2 bit 0: Fibonacci parity is destroyed for good.
  ExperimentSpec spec = AtInstret(10, {"cpu.regs.r2", 0});
  spec.model.kind = FaultModel::Kind::kPermanentStuckAt;
  spec.model.stuck_to_one = false;
  target->set_experiment(spec);
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation& observation = target->observation();
  EXPECT_TRUE(observation.fault_was_injected);
  EXPECT_NE(observation.emitted, golden);
  const auto image = observation.chain_images.find("internal");
  ASSERT_NE(image, observation.chain_images.end());
}

TEST(ThorRdTargetTest, RejectsWorkloadsThatDoNotAssemble) {
  ThorRdTarget target;
  WorkloadSpec bad;
  bad.name = "bad";
  bad.assembly = "this is not assembly\n";
  EXPECT_FALSE(target.SetWorkload(bad).ok());
}

TEST(ThorRdTargetTest, ScifiIntoMemoryLocationIsRejected) {
  auto target = MakeLoadedTarget("fib");
  target->set_experiment(AtInstret(10, {"mem@0x00010000", 0}));
  const Status status = target->RunExperiment();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

}  // namespace
}  // namespace goofi::target
