// Value types of the target layer: enum name round-trips and the
// Observation text codec that LoggedSystemState.stateVector stores.
#include "target/target_types.h"

#include <gtest/gtest.h>

namespace goofi::target {
namespace {

TEST(TargetTypesTest, TechniqueNamesRoundTrip) {
  for (Technique technique :
       {Technique::kScifi, Technique::kSwifiPreRuntime,
        Technique::kSwifiRuntime}) {
    const auto parsed = TechniqueFromName(TechniqueName(technique));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, technique);
  }
  EXPECT_FALSE(TechniqueFromName("laser").has_value());
  EXPECT_FALSE(TechniqueFromName("").has_value());
}

TEST(TargetTypesTest, FaultModelKindNamesRoundTrip) {
  for (FaultModel::Kind kind :
       {FaultModel::Kind::kTransientBitFlip,
        FaultModel::Kind::kIntermittentBitFlip,
        FaultModel::Kind::kPermanentStuckAt}) {
    const auto parsed = FaultModelKindFromName(FaultModelKindName(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(FaultModelKindFromName("sticky").has_value());
}

Observation FullObservation() {
  Observation observation;
  observation.stop_reason = sim::StopReason::kEdm;
  observation.instructions = 123456;
  observation.iterations = 40;
  observation.recovery_count = 3;
  observation.fault_was_injected = true;
  sim::EdmEvent edm;
  edm.type = sim::EdmType::kAssertion;
  edm.time = 99;
  edm.pc = 0x1234;
  edm.detail = "executable assertion failed (r1=0x00000bad)";
  observation.edm = edm;
  BitVector internal(40);
  internal.SetField(3, 16, 0xBEEF);
  observation.chain_images["internal"] = internal;
  BitVector boundary(9);
  boundary.Set(8, true);
  observation.chain_images["boundary"] = boundary;
  observation.output_region = {0x00, 0xFF, 0x10, 0x20};
  observation.emitted = {10946, 0};
  observation.env_outputs = {500, 501, 502};
  BitVector snap(12);
  snap.Set(0, true);
  observation.detail_trace.emplace_back(1, snap);
  snap.Set(11, true);
  observation.detail_trace.emplace_back(2, snap);
  return observation;
}

TEST(TargetTypesTest, ObservationSerializeRoundTripsEveryField) {
  const Observation original = FullObservation();
  const auto decoded = Observation::Deserialize(original.Serialize());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Observation& back = decoded.value();
  EXPECT_EQ(back.stop_reason, original.stop_reason);
  EXPECT_EQ(back.instructions, original.instructions);
  EXPECT_EQ(back.iterations, original.iterations);
  EXPECT_EQ(back.recovery_count, original.recovery_count);
  EXPECT_EQ(back.fault_was_injected, original.fault_was_injected);
  ASSERT_TRUE(back.edm.has_value());
  EXPECT_EQ(back.edm->type, original.edm->type);
  EXPECT_EQ(back.edm->time, original.edm->time);
  EXPECT_EQ(back.edm->pc, original.edm->pc);
  EXPECT_EQ(back.edm->detail, original.edm->detail);
  ASSERT_EQ(back.chain_images.size(), 2u);
  EXPECT_EQ(back.chain_images.at("internal").ToHexString(),
            original.chain_images.at("internal").ToHexString());
  EXPECT_EQ(back.chain_images.at("boundary").ToHexString(),
            original.chain_images.at("boundary").ToHexString());
  EXPECT_EQ(back.output_region, original.output_region);
  EXPECT_EQ(back.emitted, original.emitted);
  EXPECT_EQ(back.env_outputs, original.env_outputs);
  ASSERT_EQ(back.detail_trace.size(), 2u);
  EXPECT_EQ(back.detail_trace[0].first, 1u);
  EXPECT_EQ(back.detail_trace[1].second.ToHexString(),
            original.detail_trace[1].second.ToHexString());
  // And the round trip is a fixed point.
  EXPECT_EQ(back.Serialize(), original.Serialize());
}

TEST(TargetTypesTest, LinkRetriesRoundTripAndAreOmittedWhenZero) {
  Observation observation;
  observation.link_words_retried = 17;
  const std::string text = observation.Serialize();
  EXPECT_NE(text.find("linkretry=17"), std::string::npos);
  const auto decoded = Observation::Deserialize(text);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().link_words_retried, 17u);

  // A clean link serializes exactly as it did before the field existed,
  // so historical state vectors (and fault-free dumps) stay byte-stable.
  observation.link_words_retried = 0;
  EXPECT_EQ(observation.Serialize().find("linkretry"), std::string::npos);
  EXPECT_EQ(Observation::Deserialize(observation.Serialize())
                .value()
                .link_words_retried,
            0u);
}

TEST(TargetTypesTest, DefaultObservationRoundTrips) {
  const Observation original;
  const auto decoded = Observation::Deserialize(original.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().Serialize(), original.Serialize());
  EXPECT_TRUE(decoded.value().chain_images.empty());
  EXPECT_FALSE(decoded.value().edm.has_value());
}

TEST(TargetTypesTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Observation::Deserialize("not an observation").ok());
  EXPECT_FALSE(Observation::Deserialize("").ok());  // missing stop
  EXPECT_FALSE(Observation::Deserialize("instr=5").ok());
  EXPECT_FALSE(Observation::Deserialize("stop=9").ok());  // out of range
  EXPECT_FALSE(Observation::Deserialize("stop=0;edm=1,2").ok());
  EXPECT_FALSE(Observation::Deserialize("stop=0;chain:x=zz").ok());
  EXPECT_FALSE(Observation::Deserialize("stop=0;emit=1+x").ok());
}

TEST(TargetTypesTest, DeserializeSkipsUnknownKeysFromNewerWriters) {
  const auto decoded =
      Observation::Deserialize("stop=0;instr=7;future_field=anything");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().instructions, 7u);
}

TEST(TargetTypesTest, EdmTypeOutOfRangeIsRejected) {
  const std::string text =
      "stop=1;edm=" + std::to_string(sim::kEdmTypeCount) + ",1,0x0,";
  EXPECT_FALSE(Observation::Deserialize(text).ok());
}

}  // namespace
}  // namespace goofi::target
