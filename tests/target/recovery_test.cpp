// Best-effort recovery: the engine_control_ber workload vectors EDM
// detections to its trap_handler, scrubs the controller state and
// finishes the mission, while plain engine_control fail-stops on the
// same fault. This reproduces the paper's companion recovery study on
// the jet-engine controller.
#include <gtest/gtest.h>

#include "target/thor_rd_target.h"
#include "target/workloads.h"

namespace goofi::target {
namespace {

std::unique_ptr<ThorRdTarget> MakeEngineTarget(const std::string& name) {
  auto target = std::make_unique<ThorRdTarget>();
  auto spec = GetBuiltinWorkload(name);
  EXPECT_TRUE(spec.ok());
  EXPECT_TRUE(target->SetWorkload(std::move(spec.value())).ok());
  return target;
}

// Corrupt the IO page pointer mid-mission: the next sensor read lands
// in unmapped memory and trips the memory-protection EDM.
ExperimentSpec IoPointerFlip() {
  ExperimentSpec spec;
  spec.technique = Technique::kSwifiRuntime;
  spec.trigger.kind = sim::Breakpoint::Kind::kInstretReached;
  spec.trigger.count = 100;
  spec.targets = {{"cpu.regs.r10", 31}};
  return spec;
}

TEST(RecoveryTest, BerReferenceMissionNeedsNoRecoveries) {
  auto target = MakeEngineTarget("engine_control_ber");
  ASSERT_TRUE(target->MakeReferenceRun().ok());
  const Observation& observation = target->observation();
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kIterationLimit);
  EXPECT_EQ(observation.iterations, 40u);
  EXPECT_EQ(observation.recovery_count, 0u);
}

TEST(RecoveryTest, WithoutAHandlerTheFaultStopsTheMission) {
  auto target = MakeEngineTarget("engine_control");
  target->set_experiment(IoPointerFlip());
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation& observation = target->observation();
  EXPECT_TRUE(observation.fault_was_injected);
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kEdm);
  ASSERT_TRUE(observation.edm.has_value());
  EXPECT_EQ(observation.edm->type, sim::EdmType::kMemProtection);
  EXPECT_LT(observation.iterations, 40u);
  EXPECT_EQ(observation.recovery_count, 0u);
}

TEST(RecoveryTest, BestEffortRecoveryCompletesTheMission) {
  auto target = MakeEngineTarget("engine_control_ber");
  target->set_experiment(IoPointerFlip());
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation& observation = target->observation();
  EXPECT_TRUE(observation.fault_was_injected);
  // The detection vectors to trap_handler, which counts the recovery,
  // scrubs the controller state and resumes: the mission still reaches
  // all 40 iterations instead of fail-stopping.
  EXPECT_GE(observation.recovery_count, 1u);
  EXPECT_EQ(observation.stop_reason, sim::StopReason::kIterationLimit);
  EXPECT_EQ(observation.iterations, 40u);
  EXPECT_EQ(observation.env_outputs.size(), 40u);
}

TEST(RecoveryTest, RecoveredMissionActuatorStreamDegradesGracefully) {
  auto reference = MakeEngineTarget("engine_control_ber");
  ASSERT_TRUE(reference->MakeReferenceRun().ok());
  const std::vector<std::uint32_t> golden =
      reference->observation().env_outputs;
  ASSERT_EQ(golden.size(), 40u);

  auto target = MakeEngineTarget("engine_control_ber");
  target->set_experiment(IoPointerFlip());
  ASSERT_TRUE(target->RunExperiment().ok());
  const std::vector<std::uint32_t>& faulty =
      target->observation().env_outputs;
  ASSERT_EQ(faulty.size(), 40u);
  // The scrubbed controller re-converges: early iterations may diverge
  // from the reference, but the mission's tail settles into the same
  // regime (every command inside the clamped actuator range).
  for (const std::uint32_t command : faulty) {
    EXPECT_LE(command, 1000u);
  }
  EXPECT_NE(faulty, golden);  // the upset is visible in the stream
}

TEST(RecoveryTest, AssertionEdmAlsoTriggersRecovery) {
  // Corrupting the previous-error term blows up the derivative and
  // pushes the PID output outside the executable-assertion envelope
  // (SYS 2) — the application-level EDM must route through the same
  // recovery path as the machine-level ones. Trigger on the third
  // actuator store so the flip lands at a fixed loop position, after
  // the state was last written and before it is next consumed.
  auto target = MakeEngineTarget("engine_control_ber");
  ExperimentSpec spec;
  spec.technique = Technique::kSwifiRuntime;
  spec.trigger.kind = sim::Breakpoint::Kind::kDataWrite;
  spec.trigger.address = 0xFFFF0020;  // IO OUT page
  spec.trigger.count = 3;
  spec.targets = {{"cpu.regs.r3", 30}};  // previous error, huge magnitude
  target->set_experiment(spec);
  ASSERT_TRUE(target->RunExperiment().ok());
  const Observation& observation = target->observation();
  EXPECT_GE(observation.recovery_count, 1u);
  EXPECT_EQ(observation.iterations, 40u);
}

}  // namespace
}  // namespace goofi::target
