// The built-in workload set and the .workload file loader.
#include "target/workloads.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/assembler.h"

namespace goofi::target {
namespace {

TEST(WorkloadsTest, BuiltinNamesAreSortedAndResolvable) {
  const std::vector<std::string> names = BuiltinWorkloadNames();
  ASSERT_FALSE(names.empty());
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);
  }
  for (const std::string& name : names) {
    auto spec = GetBuiltinWorkload(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec.value().name, name);
  }
  EXPECT_FALSE(GetBuiltinWorkload("pacman").ok());
}

TEST(WorkloadsTest, EveryBuiltinAssembles) {
  for (const std::string& name : BuiltinWorkloadNames()) {
    auto spec = GetBuiltinWorkload(name);
    ASSERT_TRUE(spec.ok());
    auto program = sim::Assemble(spec.value().assembly);
    EXPECT_TRUE(program.ok())
        << name << ": " << program.status().ToString();
  }
}

TEST(WorkloadsTest, TheBenchmarkSuiteIsPresent) {
  // The paper's campaign set: sorting, matrix multiply, CRC and the
  // jet-engine controller (plus its recovery-handler variant).
  for (const char* name : {"fib", "isort", "qsort", "matmul", "crc32",
                           "engine_control", "engine_control_ber"}) {
    EXPECT_TRUE(GetBuiltinWorkload(name).ok()) << name;
  }
  auto engine = GetBuiltinWorkload("engine_control");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine.value().environment, "engine");
  EXPECT_EQ(engine.value().termination.max_iterations, 40u);
}

TEST(WorkloadFileTest, LoadsTheShippedVectorScaleDefinition) {
  const std::string path =
      std::string(GOOFI_WORKLOADS_DIR) + "/vector_scale.workload";
  auto spec = LoadWorkloadSpecFromFile(path);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const WorkloadSpec& workload = spec.value();
  EXPECT_EQ(workload.name, "vector_scale");
  EXPECT_EQ(workload.output_base, 0x10200u);
  EXPECT_EQ(workload.output_length, 68u);
  EXPECT_EQ(workload.termination.max_instructions, 50000u);
  ASSERT_FALSE(workload.assembly.empty());
  EXPECT_TRUE(sim::Assemble(workload.assembly).ok());
}

class WorkloadFileFixture : public ::testing::Test {
 protected:
  std::string Dir() const { return ::testing::TempDir(); }

  std::string WriteFile(const std::string& name,
                        const std::string& content) {
    const std::string path = Dir() + "/" + name;
    std::ofstream out(path, std::ios::trunc);
    out << content;
    return path;
  }
};

TEST_F(WorkloadFileFixture, ResolvesTheAssemblyFileRelatively) {
  WriteFile("tiny.s", "halt\n");
  const std::string path = WriteFile("tiny.workload",
                                     "[workload]\n"
                                     "name = tiny\n"
                                     "assembly_file = tiny.s\n"
                                     "max_iterations = 3\n");
  auto spec = LoadWorkloadSpecFromFile(path);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().assembly, "halt\n");
  EXPECT_EQ(spec.value().termination.max_iterations, 3u);
  EXPECT_EQ(spec.value().output_length, 0u);
  EXPECT_TRUE(spec.value().environment.empty());
}

TEST_F(WorkloadFileFixture, MissingPiecesAreDiagnosed) {
  EXPECT_FALSE(LoadWorkloadSpecFromFile(Dir() + "/absent.workload").ok());

  const std::string no_section =
      WriteFile("no_section.workload", "name = x\n");
  EXPECT_FALSE(LoadWorkloadSpecFromFile(no_section).ok());

  const std::string no_name = WriteFile(
      "no_name.workload", "[workload]\nassembly_file = tiny.s\n");
  EXPECT_FALSE(LoadWorkloadSpecFromFile(no_name).ok());

  const std::string no_assembly =
      WriteFile("no_assembly.workload", "[workload]\nname = x\n");
  EXPECT_FALSE(LoadWorkloadSpecFromFile(no_assembly).ok());

  const std::string dangling = WriteFile(
      "dangling.workload",
      "[workload]\nname = x\nassembly_file = does_not_exist.s\n");
  EXPECT_FALSE(LoadWorkloadSpecFromFile(dangling).ok());
}

}  // namespace
}  // namespace goofi::target
