// The simulated host<->target test-card link: memory map, debug-port
// accesses, TAP-mediated scan-chain IO and the injectable link faults
// and latency (paper: the test card connects the host to the target's
// TAP; a flaky cable is part of real campaigns).
#include "target/test_card.h"

#include <gtest/gtest.h>

#include "sim/assembler.h"
#include "target/io_map.h"

namespace goofi::target {
namespace {

TEST(TestCardTest, InitializeMapsTheBoardSegments) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  // The code segment is execute-only from the debug port's point of
  // view: programs arrive through LoadProgram, stray pokes are faults.
  EXPECT_FALSE(card.WriteWord(kCodeBase, 0x11111111).ok());
  EXPECT_TRUE(card.WriteWord(kDataBase, 0x22222222).ok());
  EXPECT_TRUE(card.WriteWord(kStackBase, 0x33333333).ok());
  EXPECT_TRUE(card.WriteWord(kIoBase, 0x44444444).ok());
  auto data = card.ReadWord(kDataBase);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), 0x22222222u);
  // Off the map: the debug port reports a target fault.
  EXPECT_FALSE(card.ReadWord(0x80000000).ok());
  EXPECT_FALSE(card.WriteWord(0x80000000, 1).ok());
}

TEST(TestCardTest, InitializeIsIdempotent) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  ASSERT_TRUE(card.WriteWord(kDataBase, 77).ok());
  // Re-initialize resets the target but must not fail on the already
  // mapped segments.
  ASSERT_TRUE(card.Initialize().ok());
  EXPECT_EQ(card.cpu().instret(), 0u);
}

TEST(TestCardTest, LoadsAndRunsAProgram) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  auto program = sim::Assemble("li r1, 7\nsys 4\nhalt\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_TRUE(card.LoadProgram(program.value()).ok());
  card.ResetTarget(program.value().entry);
  const sim::RunResult result = card.Run(1000);
  EXPECT_EQ(result.reason, sim::StopReason::kHalted);
  ASSERT_EQ(card.cpu().emitted().size(), 1u);
  EXPECT_EQ(card.cpu().emitted()[0], 7u);
}

TEST(TestCardTest, BreakpointsStopTheRun) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  auto program = sim::Assemble("li r1, 0\nloop:\naddi r1, r1, 1\nb loop\n");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(card.LoadProgram(program.value()).ok());
  card.ResetTarget(program.value().entry);
  sim::Breakpoint breakpoint;
  breakpoint.kind = sim::Breakpoint::Kind::kInstretReached;
  breakpoint.count = 5;
  card.SetBreakpoint(breakpoint);
  const sim::RunResult result = card.Run(1000);
  EXPECT_EQ(result.reason, sim::StopReason::kBreakpoint);
  EXPECT_EQ(card.cpu().instret(), 5u);
}

TEST(TestCardTest, ScanChainReadMatchesTheLiveCpu) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  card.cpu().set_reg(2, 0xCAFEF00D);
  auto image = card.ReadChain("internal");
  ASSERT_TRUE(image.ok());
  const sim::ScanChain* chain = card.chains().FindChain("internal");
  ASSERT_NE(chain, nullptr);
  EXPECT_EQ(image.value().size(), chain->bit_length());
  const auto found = card.chains().FindElement("cpu.regs.r2");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(image.value().GetField(found->second->position, 32),
            0xCAFEF00Du);
}

TEST(TestCardTest, ExchangeChainWritesTheImageBack) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  card.cpu().set_reg(3, 0x1111);
  auto image = card.ReadChain("internal");
  ASSERT_TRUE(image.ok());
  const auto r3 = card.chains().FindElement("cpu.regs.r3");
  ASSERT_TRUE(r3.has_value());
  BitVector modified = image.value();
  modified.SetField(r3->second->position, 32, 0x2222);
  auto shifted_out = card.ExchangeChain("internal", modified);
  ASSERT_TRUE(shifted_out.ok());
  // The old image shifts out while the new one shifts in.
  EXPECT_EQ(shifted_out.value().GetField(r3->second->position, 32),
            0x1111u);
  EXPECT_EQ(card.cpu().reg(3), 0x2222u);
}

TEST(TestCardTest, ExchangeRejectsWrongSizeAndUnknownChains) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  EXPECT_FALSE(card.ExchangeChain("internal", BitVector(5)).ok());
  EXPECT_FALSE(card.ReadChain("nonexistent").ok());
  EXPECT_FALSE(card.ExchangeChain("nonexistent", BitVector(5)).ok());
}

TEST(TestCardTest, FlipMemoryBitFlipsExactlyOneBit) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  ASSERT_TRUE(card.WriteWord(kDataBase, 0).ok());
  ASSERT_TRUE(card.FlipMemoryBit(kDataBase, 5).ok());
  auto value = card.ReadWord(kDataBase);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 1u << 5);
  EXPECT_FALSE(card.FlipMemoryBit(kDataBase, 8).ok());    // bits are 0..7
  EXPECT_FALSE(card.FlipMemoryBit(0x80000000, 0).ok());   // unmapped
}

TEST(TestCardTest, DumpMemoryReturnsTheRange) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  ASSERT_TRUE(card.WriteWord(kDataBase, 0x04030201).ok());
  auto bytes = card.DumpMemory(kDataBase, 4);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes.value(),
            (std::vector<std::uint8_t>{0x01, 0x02, 0x03, 0x04}));
}

TEST(TestCardTest, LinkStatsCountCommandsAndBytes) {
  TestCard card;
  ASSERT_TRUE(card.Initialize().ok());
  card.ResetLinkStats();
  ASSERT_TRUE(card.WriteWord(kDataBase, 1).ok());
  (void)card.ReadWord(kDataBase);
  const LinkStats& stats = card.link_stats();
  EXPECT_EQ(stats.commands, 2u);
  EXPECT_GT(stats.bytes_transferred, 0u);
  EXPECT_EQ(stats.words_retried, 0u);  // clean link by default
}

TEST(TestCardTest, FaultyLinkRetriesWordsAndAddsLatency) {
  TestCardOptions options;
  options.link_fault_probability = 1.0;  // every word corrupts
  options.link_latency_micros = 10;
  TestCard card(options);
  ASSERT_TRUE(card.Initialize().ok());
  card.ResetLinkStats();
  ASSERT_TRUE(card.WriteWord(kDataBase, 42).ok());  // still succeeds
  const LinkStats& stats = card.link_stats();
  EXPECT_GT(stats.words_retried, 0u);
  // Latency: base per command plus per retried word.
  EXPECT_GT(stats.latency_micros, options.link_latency_micros);
  // The payload still arrives intact — retries are transparent.
  auto value = card.ReadWord(kDataBase);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42u);
}

TEST(TestCardTest, CleanLinkAccumulatesOnlyBaseLatency) {
  TestCardOptions options;
  options.link_latency_micros = 7;
  TestCard card(options);
  ASSERT_TRUE(card.Initialize().ok());
  card.ResetLinkStats();
  ASSERT_TRUE(card.WriteWord(kDataBase, 1).ok());
  EXPECT_EQ(card.link_stats().latency_micros, 7u);
  card.ResetLinkStats();
  EXPECT_EQ(card.link_stats().commands, 0u);
  EXPECT_EQ(card.link_stats().latency_micros, 0u);
}

}  // namespace
}  // namespace goofi::target
