// Asserts the paper's Fig. 2 fault-injection algorithms literally: the
// template methods must call the abstract operations in the published
// order, for every technique, without knowing anything about a concrete
// target. The RecordingTarget below is the only "target" here — this
// file must never reference ThorRdTarget, FrameworkTarget or any other
// concrete type.
#include "target/fault_injection_algorithms.h"

#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace goofi::target {
namespace {

// Records every abstract-operation call; optionally fails one of them.
class RecordingTarget : public TargetSystemInterface {
 public:
  const std::string& target_name() const override {
    static const std::string kName = "recording";
    return kName;
  }
  std::vector<LocationInfo> ListLocations() const override { return {}; }

  std::vector<std::string> calls;
  std::string fail_at;  // op name that should return an error

 protected:
  Status Record(const char* op) {
    calls.push_back(op);
    if (fail_at == op) return InternalError(std::string(op) + " failed");
    return Status::Ok();
  }
  Status initTestCard() override { return Record("initTestCard"); }
  Status loadWorkload() override { return Record("loadWorkload"); }
  Status writeMemory() override { return Record("writeMemory"); }
  Status runWorkload() override { return Record("runWorkload"); }
  Status waitForBreakpoint() override {
    return Record("waitForBreakpoint");
  }
  Status readScanChain() override {
    observation_.chain_images["recorded"] = BitVector(8);
    return Record("readScanChain");
  }
  Status injectFault() override {
    observation_.fault_was_injected = true;
    return Record("injectFault");
  }
  Status writeScanChain() override { return Record("writeScanChain"); }
  Status waitForTermination() override {
    return Record("waitForTermination");
  }
  Status readMemory() override { return Record("readMemory"); }
};

// The published sequences (paper Fig. 2). Any change here is a breaking
// change to every ported target.
const std::vector<std::string> kReferenceSequence = {
    "initTestCard",       "loadWorkload", "writeMemory", "runWorkload",
    "waitForTermination", "readMemory",   "readScanChain"};

const std::vector<std::string> kScifiSequence = {
    "initTestCard", "loadWorkload",      "writeMemory",
    "runWorkload",  "waitForBreakpoint", "readScanChain",
    "injectFault",  "writeScanChain",    "waitForTermination",
    "readMemory",   "readScanChain"};

const std::vector<std::string> kSwifiPreRuntimeSequence = {
    "initTestCard", "loadWorkload",       "writeMemory", "injectFault",
    "runWorkload",  "waitForTermination", "readMemory",  "readScanChain"};

const std::vector<std::string> kSwifiRuntimeSequence = {
    "initTestCard",       "loadWorkload",      "writeMemory",
    "runWorkload",        "waitForBreakpoint", "injectFault",
    "waitForTermination", "readMemory",        "readScanChain"};

TEST(AlgorithmsTest, ReferenceRunFollowsFig2WithoutInjectionPhases) {
  RecordingTarget target;
  ASSERT_TRUE(target.MakeReferenceRun().ok());
  EXPECT_EQ(target.calls, kReferenceSequence);
}

TEST(AlgorithmsTest, ScifiFollowsFig2) {
  RecordingTarget target;
  ASSERT_TRUE(target.faultInjectorSCIFI().ok());
  EXPECT_EQ(target.calls, kScifiSequence);
}

TEST(AlgorithmsTest, SwifiPreRuntimeFollowsTheReducedSequence) {
  // Pre-runtime SWIFI corrupts the downloaded image before execution:
  // inject comes between writeMemory and runWorkload, and there is no
  // trigger phase and no scan-chain write-back.
  RecordingTarget target;
  ASSERT_TRUE(target.faultInjectorSWIFIPreRuntime().ok());
  EXPECT_EQ(target.calls, kSwifiPreRuntimeSequence);
}

TEST(AlgorithmsTest, SwifiRuntimeInjectsAtTheTriggerWithoutChainIo) {
  RecordingTarget target;
  ASSERT_TRUE(target.faultInjectorSWIFIRuntime().ok());
  EXPECT_EQ(target.calls, kSwifiRuntimeSequence);
}

TEST(AlgorithmsTest, RunExperimentDispatchesOnTheTechnique) {
  for (const auto& [technique, expected] :
       std::vector<std::pair<Technique, std::vector<std::string>>>{
           {Technique::kScifi, kScifiSequence},
           {Technique::kSwifiPreRuntime, kSwifiPreRuntimeSequence},
           {Technique::kSwifiRuntime, kSwifiRuntimeSequence}}) {
    RecordingTarget target;
    ExperimentSpec spec;
    spec.technique = technique;
    target.set_experiment(spec);
    ASSERT_TRUE(target.RunExperiment().ok());
    EXPECT_EQ(target.calls, expected)
        << "technique " << TechniqueName(technique);
  }
}

TEST(AlgorithmsTest, FailingOperationAbortsTheSequence) {
  RecordingTarget target;
  target.fail_at = "injectFault";
  const Status status = target.faultInjectorSCIFI();
  ASSERT_FALSE(status.ok());
  // The failure propagates out and nothing after injectFault runs: a
  // half-injected target must not be silently driven to completion.
  const std::vector<std::string> expected(kScifiSequence.begin(),
                                          kScifiSequence.begin() + 7);
  EXPECT_EQ(target.calls, expected);
}

TEST(AlgorithmsTest, FailingSetupAbortsBeforeTheWorkloadRuns) {
  RecordingTarget target;
  target.fail_at = "writeMemory";
  ASSERT_FALSE(target.faultInjectorSWIFIPreRuntime().ok());
  const std::vector<std::string> expected = {
      "initTestCard", "loadWorkload", "writeMemory"};
  EXPECT_EQ(target.calls, expected);
}

TEST(AlgorithmsTest, EachRunStartsFromAFreshObservation) {
  RecordingTarget target;
  ASSERT_TRUE(target.faultInjectorSCIFI().ok());
  EXPECT_TRUE(target.observation().fault_was_injected);
  // The next run must not inherit the previous run's observation.
  ASSERT_TRUE(target.MakeReferenceRun().ok());
  EXPECT_FALSE(target.observation().fault_was_injected);
}

TEST(AlgorithmsTest, TakeObservationHandsOverAndResets) {
  RecordingTarget target;
  ASSERT_TRUE(target.faultInjectorSCIFI().ok());
  const Observation taken = target.TakeObservation();
  EXPECT_TRUE(taken.fault_was_injected);
  EXPECT_EQ(taken.chain_images.count("recorded"), 1u);
  EXPECT_FALSE(target.observation().fault_was_injected);
  EXPECT_TRUE(target.observation().chain_images.empty());
}

TEST(AlgorithmsTest, SetWorkloadIsAcceptedWithoutEagerValidation) {
  RecordingTarget target;
  WorkloadSpec workload;
  workload.name = "w";
  workload.termination = {123, 4};
  EXPECT_TRUE(target.SetWorkload(workload).ok());
}

}  // namespace
}  // namespace goofi::target
