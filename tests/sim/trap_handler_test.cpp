// Trap-to-handler detection response (best-effort recovery substrate).
#include <gtest/gtest.h>

#include "sim/assembler.h"
#include "sim/debug_unit.h"

namespace goofi::sim {
namespace {

class TrapHandlerTest : public ::testing::Test {
 protected:
  void Boot(const std::string& source, CpuConfig config = {}) {
    cpu_ = std::make_unique<Cpu>(config);
    ASSERT_TRUE(cpu_->memory().AddSegment({"code", 0, 0x4000, true, false,
                                           true, false}).ok());
    ASSERT_TRUE(cpu_->memory().AddSegment({"data", 0x10000, 0x4000, true,
                                           true, false, false}).ok());
    program_ = std::make_unique<AssembledProgram>();
    auto assembled = Assemble(source);
    ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();
    *program_ = std::move(*assembled);
    ASSERT_TRUE(program_->LoadInto(cpu_->memory()).ok());
    cpu_->Reset(program_->entry);
  }

  void ArmHandler(const std::string& label) {
    cpu_->set_trap_handler(true, program_->symbols.at(label));
  }

  std::unique_ptr<Cpu> cpu_;
  std::unique_ptr<AssembledProgram> program_;
};

constexpr const char* kFaultThenRecover = R"(
.entry start
start:
  li r1, 5
  li r2, 0
  div r3, r1, r2       ; divide by zero -> EDM
  li r4, 111           ; skipped under fail-stop
  halt
handler:
  sys 5                ; recovery marker
  li r4, 222
  halt
)";

TEST_F(TrapHandlerTest, FailStopByDefault) {
  Boot(kFaultThenRecover);
  const RunResult result = goofi::sim::Run(*cpu_, nullptr, 1000);
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_TRUE(cpu_->halted());
  EXPECT_EQ(cpu_->reg(4), 0u);
}

TEST_F(TrapHandlerTest, TrapVectorsToHandler) {
  Boot(kFaultThenRecover);
  ArmHandler("handler");
  const RunResult result = goofi::sim::Run(*cpu_, nullptr, 1000);
  EXPECT_EQ(result.reason, StopReason::kHalted);  // handler halted cleanly
  EXPECT_EQ(cpu_->reg(4), 222u);
  EXPECT_EQ(cpu_->recovery_count(), 1u);
  // The event is still recorded (observable via the EDM status chain).
  ASSERT_EQ(cpu_->edm_events().size(), 1u);
  EXPECT_EQ(cpu_->edm_events()[0].type, EdmType::kDivByZero);
}

TEST_F(TrapHandlerTest, FaultingInstructionIsAborted) {
  Boot(kFaultThenRecover);
  ArmHandler("handler");
  goofi::sim::Run(*cpu_, nullptr, 1000);
  EXPECT_EQ(cpu_->reg(3), 0u);  // the div never wrote its result
}

TEST_F(TrapHandlerTest, AssertionTrapsToo) {
  Boot(R"(
.entry start
start:
  sys 2
  halt
handler:
  li r5, 9
  halt
)");
  ArmHandler("handler");
  const RunResult result = goofi::sim::Run(*cpu_, nullptr, 1000);
  EXPECT_EQ(result.reason, StopReason::kHalted);
  EXPECT_EQ(cpu_->reg(5), 9u);
}

TEST_F(TrapHandlerTest, WatchdogTrapRearmsTimer) {
  CpuConfig config;
  config.watchdog_period = 40;
  Boot(R"(
.entry start
start:
loop:
  b loop               ; starve the watchdog
handler:
  sys 5
  li r1, 1
  halt
)", config);
  ArmHandler("handler");
  const RunResult result = goofi::sim::Run(*cpu_, nullptr, 10000);
  EXPECT_EQ(result.reason, StopReason::kHalted);
  EXPECT_EQ(cpu_->recovery_count(), 1u);
  EXPECT_EQ(cpu_->reg(1), 1u);
}

TEST_F(TrapHandlerTest, TrapStormIsBoundedByBudget) {
  // A handler that itself faults: the run must still terminate via the
  // tool-level instruction budget, not hang.
  Boot(R"(
.entry start
start:
  li r1, 1
  li r2, 0
  div r3, r1, r2
  halt
handler:
  div r3, r1, r2       ; faults again, forever
  halt
)");
  ArmHandler("handler");
  const RunResult result = goofi::sim::Run(*cpu_, nullptr, 500);
  EXPECT_EQ(result.reason, StopReason::kBudgetExhausted);
  EXPECT_GT(cpu_->edm_events().size(), 10u);
}

TEST_F(TrapHandlerTest, RunawayPcRecovered) {
  Boot(R"(
.entry start
start:
  la r1, 0x10000
  jalr r0, r1          ; jump into the data segment
  halt
handler:
  li r6, 77
  halt
)");
  ArmHandler("handler");
  const RunResult result = goofi::sim::Run(*cpu_, nullptr, 1000);
  EXPECT_EQ(result.reason, StopReason::kHalted);
  EXPECT_EQ(cpu_->reg(6), 77u);
  EXPECT_EQ(cpu_->edm_events()[0].type, EdmType::kPcOutOfRange);
}

}  // namespace
}  // namespace goofi::sim
