// Snapshot round-trip proofs for every sim component: CaptureState();
// mutate; RestoreState() must be bit-exact, because checkpoint-fork
// execution (core/checkpoint.*) rides on a restored simulator being
// indistinguishable from one that replayed from reset. Each component
// is also checked for the loud-failure half of the contract: restoring
// onto mismatched geometry is an error, never silent corruption.
#include "sim/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/assembler.h"
#include "sim/scan_chain.h"

namespace goofi::sim {
namespace {

// ---- field-by-field state comparisons ---------------------------------
// The state structs deliberately have no operator== (they are plain
// carriers); the tests compare every member so a new field that misses
// Capture/Restore shows up as a named failure, not a silent pass.

void ExpectCacheStateEq(const CacheState& a, const CacheState& b,
                        const std::string& label) {
  EXPECT_EQ(a.stats.hits, b.stats.hits) << label;
  EXPECT_EQ(a.stats.misses, b.stats.misses) << label;
  EXPECT_EQ(a.stats.parity_errors, b.stats.parity_errors) << label;
  ASSERT_EQ(a.lines.size(), b.lines.size()) << label;
  for (std::size_t i = 0; i < a.lines.size(); ++i) {
    EXPECT_EQ(a.lines[i].valid, b.lines[i].valid) << label << " line " << i;
    EXPECT_EQ(a.lines[i].tag, b.lines[i].tag) << label << " line " << i;
    EXPECT_EQ(a.lines[i].words, b.lines[i].words) << label << " line " << i;
    EXPECT_EQ(a.lines[i].parity, b.lines[i].parity)
        << label << " line " << i;
  }
}

void ExpectMemoryStateEq(const MemoryState& a, const MemoryState& b) {
  ASSERT_EQ(a.backings.size(), b.backings.size());
  for (std::size_t i = 0; i < a.backings.size(); ++i) {
    EXPECT_EQ(a.backings[i], b.backings[i]) << "segment " << i;
  }
}

void ExpectCpuStateEq(const CpuState& a, const CpuState& b) {
  EXPECT_EQ(a.regs, b.regs);
  EXPECT_EQ(a.pc, b.pc);
  EXPECT_EQ(a.ir, b.ir);
  EXPECT_EQ(a.mar, b.mar);
  EXPECT_EQ(a.mdr, b.mdr);
  EXPECT_EQ(a.wdt, b.wdt);
  EXPECT_EQ(a.ir_valid, b.ir_valid);
  EXPECT_EQ(a.halted, b.halted);
  EXPECT_EQ(a.instret, b.instret);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.emitted, b.emitted);
  ASSERT_EQ(a.edm_events.size(), b.edm_events.size());
  for (std::size_t i = 0; i < a.edm_events.size(); ++i) {
    EXPECT_EQ(a.edm_events[i].type, b.edm_events[i].type) << i;
    EXPECT_EQ(a.edm_events[i].time, b.edm_events[i].time) << i;
    EXPECT_EQ(a.edm_events[i].pc, b.edm_events[i].pc) << i;
    EXPECT_EQ(a.edm_events[i].detail, b.edm_events[i].detail) << i;
  }
  ExpectMemoryStateEq(a.memory, b.memory);
  ExpectCacheStateEq(a.icache, b.icache, "icache");
  ExpectCacheStateEq(a.dcache, b.dcache, "dcache");
}

// ---- Cache ------------------------------------------------------------

class CacheSnapshotTest : public ::testing::Test {
 protected:
  CacheSnapshotTest() : cache_({4, 4, 24}) {
    EXPECT_TRUE(
        memory_.AddSegment({"ram", 0, 0x10000, true, true, true, false})
            .ok());
    for (std::uint32_t address = 0; address < 0x400; address += 4) {
      EXPECT_TRUE(memory_.PokeWord(address, address ^ 0xA5A5A5A5u));
    }
  }

  void Read(Cache& cache, std::uint32_t address,
            bool* parity_error = nullptr) {
    std::uint32_t value = 0;
    bool parity = false;
    EXPECT_EQ(cache.ReadWord(memory_, address, &value, AccessKind::kRead,
                             &parity),
              MemFault::kNone);
    if (parity_error != nullptr) *parity_error = parity;
  }

  Memory memory_;
  Cache cache_;
};

TEST_F(CacheSnapshotTest, RoundTripIsBitExact) {
  // Fill some lines and accumulate stats.
  Read(cache_, 0x00);
  Read(cache_, 0x10);
  Read(cache_, 0x10);  // hit
  Read(cache_, 0x40);  // evicts line 0's tag 0
  const CacheState saved = cache_.CaptureState();

  // Mutate everything a fault model can touch: array bits, parity,
  // residency, statistics.
  cache_.line(1).words[2] ^= 0x80;
  cache_.line(1).parity[3] = !cache_.line(1).parity[3];
  cache_.line(0).tag ^= 1;
  cache_.Invalidate();
  Read(cache_, 0x20);

  ASSERT_TRUE(cache_.RestoreState(saved).ok());
  ExpectCacheStateEq(cache_.CaptureState(), saved, "restored");
}

TEST_F(CacheSnapshotTest, StoredParityBitsAreStateNotRecomputed) {
  Read(cache_, 0x10);
  // Flip a stored parity bit: the classic cache-array SCIFI fault.
  cache_.line(1).parity[0] = !cache_.line(1).parity[0];
  const CacheState saved = cache_.CaptureState();

  Cache fresh({4, 4, 24});
  ASSERT_TRUE(fresh.RestoreState(saved).ok());
  // The restored cache must reproduce the fault's detection: a read hit
  // on the poisoned word raises a parity error, proving Restore carried
  // the parity bit itself rather than recomputing it from the data.
  bool parity_error = false;
  Read(fresh, 0x10, &parity_error);
  EXPECT_TRUE(parity_error);
  EXPECT_EQ(fresh.stats().parity_errors, 1u);
}

TEST_F(CacheSnapshotTest, RestoreRejectsGeometryMismatch) {
  const CacheState saved = cache_.CaptureState();
  Cache more_lines({8, 4, 24});
  EXPECT_FALSE(more_lines.RestoreState(saved).ok());
  Cache wider_lines({4, 8, 24});
  EXPECT_FALSE(wider_lines.RestoreState(saved).ok());

  CacheState malformed = saved;
  malformed.lines[2].words.pop_back();
  EXPECT_FALSE(cache_.RestoreState(malformed).ok());
}

// ---- Memory -----------------------------------------------------------

TEST(MemorySnapshotTest, RoundTripIsBitExact) {
  Memory memory;
  ASSERT_TRUE(
      memory.AddSegment({"code", 0, 0x100, true, false, true, false}).ok());
  ASSERT_TRUE(memory.AddSegment({"data", 0x10000, 0x100, true, true, false,
                                 false}).ok());
  ASSERT_TRUE(memory.PokeWord(0x10, 0xDEADBEEF));
  ASSERT_TRUE(memory.Poke(0x10020, 0x5A));
  const MemoryState saved = memory.CaptureState();

  ASSERT_TRUE(memory.PokeWord(0x10, 0));
  ASSERT_TRUE(memory.Poke(0x10021, 0xFF));
  ASSERT_TRUE(memory.RestoreState(saved).ok());

  std::uint32_t word = 0;
  EXPECT_TRUE(memory.PeekWord(0x10, &word));
  EXPECT_EQ(word, 0xDEADBEEFu);
  std::uint8_t byte = 0;
  EXPECT_TRUE(memory.Peek(0x10020, &byte));
  EXPECT_EQ(byte, 0x5Au);
  EXPECT_TRUE(memory.Peek(0x10021, &byte));
  EXPECT_EQ(byte, 0u);
  ExpectMemoryStateEq(memory.CaptureState(), saved);
}

TEST(MemorySnapshotTest, RestoreRejectsLayoutMismatch) {
  Memory one_segment;
  ASSERT_TRUE(
      one_segment.AddSegment({"a", 0, 0x100, true, true, false, false})
          .ok());
  const MemoryState saved = one_segment.CaptureState();

  Memory two_segments;
  ASSERT_TRUE(
      two_segments.AddSegment({"a", 0, 0x100, true, true, false, false})
          .ok());
  ASSERT_TRUE(
      two_segments
          .AddSegment({"b", 0x1000, 0x100, true, true, false, false})
          .ok());
  EXPECT_FALSE(two_segments.RestoreState(saved).ok());

  Memory different_size;
  ASSERT_TRUE(
      different_size.AddSegment({"a", 0, 0x200, true, true, false, false})
          .ok());
  EXPECT_FALSE(different_size.RestoreState(saved).ok());
}

// ---- Cpu (registers, latches, counters, logs, memory, caches) --------

class CpuSnapshotTest : public ::testing::Test {
 protected:
  // A control-loop-shaped workload: emits, writes memory through the
  // dcache, and loops forever — so any mid-run capture point has live
  // state in every component.
  std::unique_ptr<Cpu> BootLooper() {
    auto cpu = std::make_unique<Cpu>();
    AddSegments(*cpu);
    const auto program = Assemble(R"(
  li r2, 0x10000
  li r3, 0
loop:
  addi r3, r3, 7
  st r3, [r2]
  ld r4, [r2]
  mov r1, r4
  sys 4          ; emit r1
  b loop
)");
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    EXPECT_TRUE(program->LoadInto(cpu->memory()).ok());
    cpu->Reset(program->entry);
    return cpu;
  }

  static void AddSegments(Cpu& cpu) {
    ASSERT_TRUE(cpu.memory()
                    .AddSegment({"code", 0, 0x4000, true, false, true,
                                 false})
                    .ok());
    ASSERT_TRUE(cpu.memory()
                    .AddSegment({"data", 0x10000, 0x4000, true, true,
                                 false, false})
                    .ok());
  }

  static void Step(Cpu& cpu, int count) {
    for (int i = 0; i < count; ++i) cpu.Step();
  }
};

TEST_F(CpuSnapshotTest, MidRunRoundTripIsBitExact) {
  auto cpu = BootLooper();
  Step(*cpu, 40);
  cpu->set_mar(0x1234);  // touch the latches too
  cpu->set_mdr(0x5678);
  const CpuState saved = cpu->CaptureState();
  EXPECT_GT(saved.instret, 0u);
  EXPECT_FALSE(saved.emitted.empty());

  Step(*cpu, 25);  // drift every component away from the capture point
  ASSERT_TRUE(cpu->RestoreState(saved).ok());
  ExpectCpuStateEq(cpu->CaptureState(), saved);
}

TEST_F(CpuSnapshotTest, RestoredCpuContinuesIdenticallyToTheOriginalRun) {
  // The fork property itself: run A to t, capture; run A to t+n and
  // record its state; restore t onto a *fresh* instance B and step n —
  // B must land on exactly A's state.
  auto original = BootLooper();
  Step(*original, 30);
  const CpuState at_t = original->CaptureState();
  Step(*original, 50);
  const CpuState at_t_plus_n = original->CaptureState();

  auto forked = std::make_unique<Cpu>();
  AddSegments(*forked);
  ASSERT_TRUE(forked->RestoreState(at_t).ok());
  Step(*forked, 50);
  ExpectCpuStateEq(forked->CaptureState(), at_t_plus_n);
}

TEST_F(CpuSnapshotTest, RestoreRejectsForeignCacheGeometry) {
  auto cpu = BootLooper();
  Step(*cpu, 10);
  const CpuState saved = cpu->CaptureState();

  CpuConfig other;
  other.icache_geometry.lines = cpu->config().icache_geometry.lines * 2;
  Cpu mismatched(other);
  AddSegments(mismatched);
  EXPECT_FALSE(mismatched.RestoreState(saved).ok());
}

TEST_F(CpuSnapshotTest, ScanChainImageMatchesAfterRestore) {
  // What the scan chain reads (every internal-chain element: registers,
  // pc, ir, watchdog, cache arrays...) must be identical on the
  // restored CPU — SCIFI injection on a forked run then behaves exactly
  // as on a replayed one.
  auto original = BootLooper();
  Step(*original, 35);
  const CpuState saved = original->CaptureState();
  const ScanChainSet chains = BuildThorRdScanChains(*original);

  auto restored = std::make_unique<Cpu>();
  AddSegments(*restored);
  ASSERT_TRUE(restored->RestoreState(saved).ok());
  for (const ScanChain& chain : chains.chains) {
    EXPECT_EQ(chain.Capture(*original), chain.Capture(*restored))
        << chain.name();
  }
}

// ---- TapController ----------------------------------------------------

TEST(TapSnapshotTest, MidShiftRoundTripReplaysIdentically) {
  Cpu cpu;
  const ScanChainSet chains = BuildThorRdScanChains(cpu);
  TapController tap(&chains, &cpu);
  tap.Reset();
  tap.Clock(false, false);  // -> Run-Test/Idle
  tap.LoadInstruction(TapInstruction::kScanInternal);

  // Walk into Shift-DR and shift a prefix so the capture lands mid-FSM
  // with a partially rotated shift register.
  tap.Clock(true, false);   // Select-DR-Scan
  tap.Clock(false, false);  // Capture-DR
  tap.Clock(false, false);  // -> Shift-DR
  for (int i = 0; i < 17; ++i) tap.Clock(false, i % 3 == 0);
  ASSERT_EQ(tap.state(), TapState::kShiftDr);
  const TapControllerState saved = tap.CaptureState();

  // Reference continuation: 64 more shift clocks' worth of TDO.
  std::vector<bool> reference;
  for (int i = 0; i < 64; ++i) reference.push_back(tap.Clock(false, false));

  // Rewind via Restore and replay: the TDO stream and the final FSM
  // position must be identical, bit for bit and cycle for cycle.
  tap.RestoreState(saved);
  EXPECT_EQ(tap.state(), TapState::kShiftDr);
  EXPECT_EQ(tap.instruction(), TapInstruction::kScanInternal);
  EXPECT_EQ(tap.tck_cycles(), saved.tck_cycles);
  std::vector<bool> replayed;
  for (int i = 0; i < 64; ++i) replayed.push_back(tap.Clock(false, false));
  EXPECT_EQ(replayed, reference);

  const TapControllerState end = tap.CaptureState();
  EXPECT_EQ(end.state, TapState::kShiftDr);
  EXPECT_EQ(end.tck_cycles, saved.tck_cycles + 64);
}

TEST(TapSnapshotTest, CaptureCarriesShiftRegisterAndCycleCount) {
  Cpu cpu;
  const ScanChainSet chains = BuildThorRdScanChains(cpu);
  TapController tap(&chains, &cpu);
  tap.Reset();
  tap.Clock(false, false);
  tap.LoadInstruction(TapInstruction::kScanBoundary);
  const TapControllerState saved = tap.CaptureState();
  EXPECT_EQ(saved.instruction, TapInstruction::kScanBoundary);
  EXPECT_GT(saved.tck_cycles, 0u);

  // Drift, restore, and verify every captured field came back.
  tap.Reset();
  tap.Clock(false, false);
  tap.LoadInstruction(TapInstruction::kIdcode);
  tap.RestoreState(saved);
  const TapControllerState back = tap.CaptureState();
  EXPECT_EQ(back.state, saved.state);
  EXPECT_EQ(back.instruction, saved.instruction);
  EXPECT_EQ(back.ir_shift, saved.ir_shift);
  EXPECT_EQ(back.dr_shift, saved.dr_shift);
  EXPECT_EQ(back.dr_length, saved.dr_length);
  EXPECT_EQ(back.tck_cycles, saved.tck_cycles);
}

// ---- AccessPathInjector -----------------------------------------------

void ExpectFaultInjectorStateEq(const FaultInjectorState& a,
                                const FaultInjectorState& b) {
  EXPECT_EQ(a.armed, b.armed);
  EXPECT_EQ(a.unit_accesses, b.unit_accesses);
  EXPECT_EQ(a.applied, b.applied);
  EXPECT_EQ(a.inflight_flips, b.inflight_flips);
}

TEST(FaultInjectorSnapshotTest, RoundTripIsBitExact) {
  AccessPathInjector injector;
  // Advance the unit counters so the capture holds non-trivial values.
  injector.PostWrite(MemUnit::kMainMemory, nullptr, 0x40, 1);
  injector.PostWrite(MemUnit::kMainMemory, nullptr, 0x44, 2);
  (void)injector.PreRead(MemUnit::kMainMemory, nullptr, 0x40,
                         AccessKind::kRead);

  ArmedCacheFault transient;
  transient.unit = MemUnit::kDcache;
  transient.array = CacheArray::kData;
  transient.set = 3;
  transient.word = 1;
  transient.bit = 17;
  injector.Arm(transient);
  ArmedCacheFault permanent;
  permanent.unit = MemUnit::kIcache;
  permanent.array = CacheArray::kTag;
  permanent.set = 7;
  permanent.bit = 2;
  permanent.kind = ArmedFaultKind::kPermanentStuckAt;
  permanent.stuck_to_one = true;
  injector.Arm(permanent);

  const FaultInjectorState saved = injector.CaptureState();
  EXPECT_EQ(saved.armed.size(), 2u);
  EXPECT_GT(saved.unit_accesses[static_cast<std::size_t>(
                MemUnit::kMainMemory)],
            0u);

  // Drift everything: more accesses, then wipe the armed list.
  injector.PostWrite(MemUnit::kMainMemory, nullptr, 0x48, 3);
  injector.Reset();
  injector.RestoreState(saved);
  ExpectFaultInjectorStateEq(injector.CaptureState(), saved);
}

TEST(FaultInjectorSnapshotTest, MidWindowCaptureForksIdentically) {
  // The checkpoint-fork property on the access path: capture while a
  // fault is armed but not yet applied, fork onto fresh hardware, and
  // the continuation must corrupt exactly the same accesses as the
  // original run — values, parity alarms and counters, bit for bit.
  Memory memory;
  ASSERT_TRUE(
      memory.AddSegment({"ram", 0, 0x10000, true, true, true, false}).ok());
  for (std::uint32_t address = 0; address < 0x400; address += 4) {
    ASSERT_TRUE(memory.PokeWord(address, address * 5 + 3));
  }
  Cache cache({4, 4, 24});
  AccessPathInjector injector;
  cache.set_fault_injector(&injector, MemUnit::kDcache);

  auto read = [&memory](Cache& target, std::uint32_t address,
                        std::pair<std::uint32_t, bool>* out) {
    std::uint32_t value = 0;
    bool parity = false;
    ASSERT_EQ(target.ReadWord(memory, address, &value, AccessKind::kRead,
                              &parity),
              MemFault::kNone);
    *out = {value, parity};
  };

  // Warm up, then arm an intermittent fault whose window extends well
  // past the capture point.
  std::pair<std::uint32_t, bool> sample;
  read(cache, 0x10, &sample);
  read(cache, 0x20, &sample);
  ArmedCacheFault fault;
  fault.unit = MemUnit::kDcache;
  fault.array = CacheArray::kData;
  fault.set = 1;
  fault.word = 0;
  fault.bit = 9;
  fault.kind = ArmedFaultKind::kIntermittent;
  fault.period = 3;
  fault.remaining = 4;
  injector.Arm(fault);
  read(cache, 0x10, &sample);  // application 1 of 4: mid-window now

  const CacheState cache_saved = cache.CaptureState();
  const FaultInjectorState injector_saved = injector.CaptureState();
  ASSERT_EQ(injector_saved.armed.size(), 1u);
  EXPECT_EQ(injector_saved.armed[0].remaining, 3u);

  // Original continuation.
  const std::vector<std::uint32_t> addresses = {0x10, 0x14, 0x10, 0x20,
                                                0x10, 0x10, 0x30, 0x10,
                                                0x10, 0x10};
  std::vector<std::pair<std::uint32_t, bool>> original;
  for (const std::uint32_t address : addresses) {
    std::pair<std::uint32_t, bool> result;
    read(cache, address, &result);
    original.push_back(result);
  }
  const FaultInjectorState original_end = injector.CaptureState();

  // Fork onto a fresh cache + injector pair and replay.
  Cache forked_cache({4, 4, 24});
  AccessPathInjector forked_injector;
  forked_cache.set_fault_injector(&forked_injector, MemUnit::kDcache);
  ASSERT_TRUE(forked_cache.RestoreState(cache_saved).ok());
  forked_injector.RestoreState(injector_saved);
  std::vector<std::pair<std::uint32_t, bool>> forked;
  for (const std::uint32_t address : addresses) {
    std::pair<std::uint32_t, bool> result;
    read(forked_cache, address, &result);
    forked.push_back(result);
  }

  EXPECT_EQ(forked, original);
  ExpectFaultInjectorStateEq(forked_injector.CaptureState(), original_end);
}

TEST(FaultInjectorSnapshotTest, SnapshotCarriesTheInjectorField) {
  // The aggregate Snapshot round-trips the injector sub-state like any
  // other component (targets fill it in CaptureSnapshot).
  AccessPathInjector injector;
  ArmedCacheFault fault;
  fault.unit = MemUnit::kIcache;
  fault.array = CacheArray::kInflight;
  fault.set = 2;
  fault.word = 3;
  fault.bit = 31;
  injector.Arm(fault);

  Snapshot snapshot;
  snapshot.injector = injector.CaptureState();
  const Snapshot copied = snapshot;  // snapshots pass by value to workers
  ASSERT_TRUE(copied.injector.has_value());
  injector.Reset();
  injector.RestoreState(*copied.injector);
  ASSERT_EQ(injector.armed().size(), 1u);
  fault.next_access = 1;  // Arm() scheduled it for the next unit access
  EXPECT_EQ(injector.armed()[0], fault);
}

// ---- AccessRecorder ---------------------------------------------------

TEST(AccessRecorderSnapshotTest, RoundTripPreservesAllThreeStreams) {
  AccessRecorder recorder;
  recorder.OnRegisterWrite(3, 0, 42, 10);
  recorder.OnRegisterRead(3, 11);
  recorder.OnRegisterRead(5, 12);
  recorder.OnMemoryWrite(0x10000, 4, 7, 13);
  recorder.OnMemoryRead(0x10000, 4, 14);
  recorder.OnMemoryRead(0x10020, 4, 15);
  Cpu cpu;
  recorder.OnInstructionRetired(cpu, Instruction{}, 0, 0x40);
  recorder.OnInstructionRetired(cpu, Instruction{}, 1, 0x44);
  const AccessRecorderState saved = recorder.CaptureState();

  recorder.OnRegisterWrite(7, 1, 2, 99);
  recorder.OnMemoryWrite(0x10040, 4, 9, 99);
  recorder.OnInstructionRetired(cpu, Instruction{}, 2, 0x48);
  recorder.RestoreState(saved);

  ASSERT_EQ(recorder.register_events(3).size(), 2u);
  EXPECT_EQ(recorder.register_events(3)[0].time, 10u);
  EXPECT_TRUE(recorder.register_events(3)[0].is_write);
  EXPECT_EQ(recorder.register_events(3)[1].time, 11u);
  EXPECT_FALSE(recorder.register_events(3)[1].is_write);
  EXPECT_EQ(recorder.register_events(5).size(), 1u);
  EXPECT_TRUE(recorder.register_events(7).empty());

  ASSERT_EQ(recorder.memory_events().size(), 2u);
  const auto& word_events = recorder.memory_events().at(0x10000);
  ASSERT_EQ(word_events.size(), 2u);
  EXPECT_TRUE(word_events[0].is_write);
  EXPECT_EQ(word_events[1].time, 14u);
  EXPECT_EQ(recorder.memory_events().count(0x10040), 0u);

  EXPECT_EQ(recorder.pc_trace(),
            (std::vector<std::uint32_t>{0x40, 0x44}));
}

TEST(AccessRecorderSnapshotTest, RestoringAnEmptyStateClears) {
  AccessRecorder recorder;
  const AccessRecorderState empty = recorder.CaptureState();
  Cpu cpu;
  recorder.OnRegisterRead(1, 5);
  recorder.OnMemoryRead(0x10000, 4, 6);
  recorder.OnInstructionRetired(cpu, Instruction{}, 0, 0);
  recorder.RestoreState(empty);
  EXPECT_TRUE(recorder.register_events(1).empty());
  EXPECT_TRUE(recorder.memory_events().empty());
  EXPECT_TRUE(recorder.pc_trace().empty());
}

}  // namespace
}  // namespace goofi::sim
