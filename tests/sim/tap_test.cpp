#include "sim/tap.h"

#include <gtest/gtest.h>

namespace goofi::sim {
namespace {

class TapTest : public ::testing::Test {
 protected:
  TapTest() {
    EXPECT_TRUE(cpu_.memory().AddSegment({"code", 0, 0x1000, true, false,
                                          true, false}).ok());
    chains_ = BuildThorRdScanChains(cpu_);
    tap_ = std::make_unique<TapController>(&chains_, &cpu_);
  }

  Cpu cpu_;
  ScanChainSet chains_;
  std::unique_ptr<TapController> tap_;
};

TEST_F(TapTest, ResetLandsInRunTestIdle) {
  tap_->Reset();
  EXPECT_EQ(tap_->state(), TapState::kRunTestIdle);
  EXPECT_EQ(tap_->instruction(), TapInstruction::kBypass);
}

TEST_F(TapTest, FiveTmsOnesFromAnywhereResets) {
  tap_->Reset();
  // Wander into Shift-DR.
  tap_->Clock(true, false);   // Select-DR
  tap_->Clock(false, false);  // Capture-DR
  tap_->Clock(false, false);  // Shift-DR
  EXPECT_EQ(tap_->state(), TapState::kShiftDr);
  for (int i = 0; i < 5; ++i) tap_->Clock(true, false);
  EXPECT_EQ(tap_->state(), TapState::kTestLogicReset);
}

TEST_F(TapTest, StateWalkMatchesIeee1149) {
  tap_->Reset();
  EXPECT_EQ(tap_->state(), TapState::kRunTestIdle);
  tap_->Clock(true, false);
  EXPECT_EQ(tap_->state(), TapState::kSelectDrScan);
  tap_->Clock(false, false);
  EXPECT_EQ(tap_->state(), TapState::kCaptureDr);
  tap_->Clock(true, false);
  EXPECT_EQ(tap_->state(), TapState::kExit1Dr);
  tap_->Clock(false, false);
  EXPECT_EQ(tap_->state(), TapState::kPauseDr);
  tap_->Clock(true, false);
  EXPECT_EQ(tap_->state(), TapState::kExit2Dr);
  tap_->Clock(false, false);
  EXPECT_EQ(tap_->state(), TapState::kShiftDr);
  tap_->Clock(true, false);
  EXPECT_EQ(tap_->state(), TapState::kExit1Dr);
  tap_->Clock(true, false);
  EXPECT_EQ(tap_->state(), TapState::kUpdateDr);
  tap_->Clock(false, false);
  EXPECT_EQ(tap_->state(), TapState::kRunTestIdle);
}

TEST_F(TapTest, IdcodeReadsDeviceId) {
  tap_->Reset();
  tap_->LoadInstruction(TapInstruction::kIdcode);
  EXPECT_EQ(tap_->instruction(), TapInstruction::kIdcode);
  const BitVector idcode = tap_->ReadDataRegister();
  ASSERT_EQ(idcode.size(), 32u);
  EXPECT_EQ(idcode.GetField(0, 32), 0x7408D001u);
}

TEST_F(TapTest, BypassIsOneBit) {
  tap_->Reset();
  tap_->LoadInstruction(TapInstruction::kBypass);
  const BitVector bypass = tap_->ReadDataRegister();
  EXPECT_EQ(bypass.size(), 1u);
}

TEST_F(TapTest, InternalChainReadMatchesDirectCapture) {
  cpu_.set_reg(5, 0x13572468);
  tap_->Reset();
  tap_->LoadInstruction(TapInstruction::kScanInternal);
  const BitVector via_tap = tap_->ReadDataRegister();
  const BitVector direct = chains_.FindChain("internal")->Capture(cpu_);
  EXPECT_TRUE(via_tap == direct);
}

TEST_F(TapTest, ReadDataRegisterDoesNotDisturbState) {
  cpu_.set_reg(5, 0xABCD0123);
  cpu_.set_pc(0x40);
  tap_->Reset();
  tap_->LoadInstruction(TapInstruction::kScanInternal);
  tap_->ReadDataRegister();
  EXPECT_EQ(cpu_.reg(5), 0xABCD0123u);
  EXPECT_EQ(cpu_.pc(), 0x40u);
}

TEST_F(TapTest, ExchangeAppliesShiftedInImage) {
  // The SCIFI injection path: read, flip one bit, write back.
  cpu_.set_reg(9, 0);
  tap_->Reset();
  tap_->LoadInstruction(TapInstruction::kScanInternal);
  BitVector image = tap_->ReadDataRegister();
  const ScanChain* internal = chains_.FindChain("internal");
  const ScanElement* r9 = internal->FindElement("cpu.regs.r9");
  image.Flip(r9->position + 7);
  const BitVector old = tap_->ExchangeDataRegister(image);
  EXPECT_EQ(cpu_.reg(9), 0x80u);
  // The exchange shifted out the pre-injection state.
  EXPECT_EQ(old.GetField(r9->position, 32), 0u);
}

TEST_F(TapTest, BoundaryChainSelectable) {
  cpu_.set_mar(0xFEEDF00D);
  tap_->Reset();
  tap_->LoadInstruction(TapInstruction::kScanBoundary);
  const BitVector image = tap_->ReadDataRegister();
  ASSERT_EQ(image.size(), chains_.FindChain("boundary")->bit_length());
  EXPECT_EQ(image.GetField(0, 32), 0xFEEDF00Du);  // addr_bus is first
}

TEST_F(TapTest, TckCyclesScaleWithChainLength) {
  tap_->Reset();
  tap_->LoadInstruction(TapInstruction::kIdcode);
  const std::uint64_t before_short = tap_->tck_cycles();
  tap_->ReadDataRegister();
  const std::uint64_t short_cost = tap_->tck_cycles() - before_short;

  tap_->LoadInstruction(TapInstruction::kScanInternal);
  const std::uint64_t before_long = tap_->tck_cycles();
  tap_->ReadDataRegister();
  const std::uint64_t long_cost = tap_->tck_cycles() - before_long;
  // The internal chain is thousands of bits; IDCODE is 32.
  EXPECT_GT(long_cost, 50 * short_cost);
}

TEST_F(TapTest, TestLogicResetRevertsToBypass) {
  tap_->Reset();
  tap_->LoadInstruction(TapInstruction::kScanInternal);
  for (int i = 0; i < 5; ++i) tap_->Clock(true, false);
  EXPECT_EQ(tap_->instruction(), TapInstruction::kBypass);
}

}  // namespace
}  // namespace goofi::sim
