#include "sim/isa.h"

#include <gtest/gtest.h>

namespace goofi::sim {
namespace {

std::vector<Opcode> AllOpcodes() {
  std::vector<Opcode> opcodes;
  for (int op = 0; op <= 0xff; ++op) {
    if (IsValidOpcode(static_cast<std::uint8_t>(op))) {
      opcodes.push_back(static_cast<Opcode>(op));
    }
  }
  return opcodes;
}

TEST(IsaTest, OpcodeCountMatchesIsaDefinition) {
  EXPECT_EQ(AllOpcodes().size(), 36u);
}

TEST(IsaTest, DecodeRejectsIllegalOpcodes) {
  EXPECT_FALSE(Decode(0xFF000000).ok());
  EXPECT_FALSE(Decode(0x09000000).ok());
  EXPECT_TRUE(Decode(0x00000000).ok());  // NOP
}

TEST(IsaTest, SignedImmediateSignExtends) {
  Instruction insn;
  insn.opcode = Opcode::kAddi;
  insn.ra = 1;
  insn.rb = 2;
  insn.imm = -5;
  const auto decoded = Decode(Encode(insn));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->imm, -5);
}

TEST(IsaTest, LogicalImmediateZeroExtends) {
  Instruction insn;
  insn.opcode = Opcode::kOri;
  insn.ra = 1;
  insn.rb = 1;
  insn.imm = 0x8320;  // would be negative if sign-extended
  const auto decoded = Decode(Encode(insn));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->imm, 0x8320);
}

TEST(IsaTest, RTypeFieldsRoundTrip) {
  Instruction insn;
  insn.opcode = Opcode::kXor;
  insn.ra = 15;
  insn.rb = 7;
  insn.rc = 3;
  const auto decoded = Decode(Encode(insn));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->ra, 15);
  EXPECT_EQ(decoded->rb, 7);
  EXPECT_EQ(decoded->rc, 3);
}

TEST(IsaTest, ClassPredicatesAreConsistent) {
  for (const Opcode op : AllOpcodes()) {
    // An opcode is in at most one immediate class.
    EXPECT_FALSE(UsesSignedImmediate(op) && UsesLogicalImmediate(op))
        << OpcodeMnemonic(op);
    // R-type opcodes use no immediate.
    if (IsRType(op)) {
      EXPECT_FALSE(UsesSignedImmediate(op)) << OpcodeMnemonic(op);
      EXPECT_FALSE(UsesLogicalImmediate(op)) << OpcodeMnemonic(op);
    }
  }
  EXPECT_TRUE(IsBranch(Opcode::kBgeu));
  EXPECT_FALSE(IsBranch(Opcode::kJal));
  EXPECT_TRUE(IsCall(Opcode::kJal));
  EXPECT_TRUE(IsCall(Opcode::kJalr));
  EXPECT_FALSE(IsCall(Opcode::kBeq));
}

TEST(IsaTest, DisassembleShapes) {
  Instruction add;
  add.opcode = Opcode::kAdd;
  add.ra = 1;
  add.rb = 2;
  add.rc = 3;
  EXPECT_EQ(Disassemble(add), "add r1, r2, r3");

  Instruction ld;
  ld.opcode = Opcode::kLd;
  ld.ra = 4;
  ld.rb = 14;
  ld.imm = -8;
  EXPECT_EQ(Disassemble(ld), "ld r4, [r14-8]");

  Instruction beq;
  beq.opcode = Opcode::kBeq;
  beq.ra = 0;
  beq.rb = 0;
  beq.imm = 3;
  EXPECT_EQ(Disassemble(beq), "beq r0, r0, +3");

  Instruction halt;
  halt.opcode = Opcode::kHalt;
  EXPECT_EQ(Disassemble(halt), "halt");
}

// Property sweep: every opcode round-trips through Encode/Decode with
// representative field values.
class IsaRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IsaRoundTrip, EncodeDecodeRoundTrips) {
  const std::vector<Opcode> opcodes = AllOpcodes();
  const Opcode op = opcodes[static_cast<std::size_t>(GetParam())];
  for (const int imm : {0, 1, -1, 32767, -32768, 0x1234}) {
    Instruction insn;
    insn.opcode = op;
    insn.ra = 5;
    insn.rb = 10;
    insn.rc = 12;
    if (UsesLogicalImmediate(op)) {
      insn.imm = imm & 0xffff;  // logical immediates are unsigned
    } else {
      insn.imm = imm;
    }
    const auto decoded = Decode(Encode(insn));
    ASSERT_TRUE(decoded.ok()) << OpcodeMnemonic(op);
    EXPECT_EQ(decoded->opcode, op);
    EXPECT_EQ(decoded->ra, insn.ra);
    if (IsRType(op)) {
      EXPECT_EQ(decoded->rb, insn.rb);
      EXPECT_EQ(decoded->rc, insn.rc);
    } else if (op != Opcode::kNop && op != Opcode::kHalt) {
      EXPECT_EQ(decoded->imm, insn.imm) << OpcodeMnemonic(op);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, IsaRoundTrip, ::testing::Range(0, 36));

}  // namespace
}  // namespace goofi::sim
