#include "sim/assembler.h"

#include <gtest/gtest.h>

#include "sim/isa.h"
#include "util/rng.h"

namespace goofi::sim {
namespace {

std::uint32_t WordAt(const AssembledProgram& program, std::uint32_t address) {
  for (const auto& [base, bytes] : program.chunks) {
    if (address >= base && address + 4 <= base + bytes.size()) {
      const std::size_t offset = address - base;
      return static_cast<std::uint32_t>(bytes[offset]) |
             static_cast<std::uint32_t>(bytes[offset + 1]) << 8 |
             static_cast<std::uint32_t>(bytes[offset + 2]) << 16 |
             static_cast<std::uint32_t>(bytes[offset + 3]) << 24;
    }
  }
  ADD_FAILURE() << "no word at " << address;
  return 0;
}

TEST(AssemblerTest, EmptySourceIsEmptyProgram) {
  const auto program = Assemble("");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->ByteSize(), 0u);
  EXPECT_EQ(program->entry, 0u);
}

TEST(AssemblerTest, BasicInstructions) {
  const auto program = Assemble("nop\nadd r1, r2, r3\nhalt\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->ByteSize(), 12u);
  const auto nop = Decode(WordAt(*program, 0));
  EXPECT_EQ(nop->opcode, Opcode::kNop);
  const auto add = Decode(WordAt(*program, 4));
  EXPECT_EQ(add->opcode, Opcode::kAdd);
  EXPECT_EQ(add->ra, 1);
  EXPECT_EQ(add->rb, 2);
  EXPECT_EQ(add->rc, 3);
}

TEST(AssemblerTest, RegisterAliases) {
  const auto program = Assemble("mov sp, lr\nadd zero, r1, r2\n");
  ASSERT_TRUE(program.ok());
  const auto mov = Decode(WordAt(*program, 0));
  EXPECT_EQ(mov->opcode, Opcode::kAdd);  // mov = add rd, rs, r0
  EXPECT_EQ(mov->ra, 14);
  EXPECT_EQ(mov->rb, 15);
}

TEST(AssemblerTest, MemoryOperands) {
  const auto program =
      Assemble("ld r1, [r2+8]\nst r3, [sp-4]\nldb r4, [r5]\n");
  ASSERT_TRUE(program.ok());
  const auto ld = Decode(WordAt(*program, 0));
  EXPECT_EQ(ld->opcode, Opcode::kLd);
  EXPECT_EQ(ld->imm, 8);
  const auto st = Decode(WordAt(*program, 4));
  EXPECT_EQ(st->rb, 14);
  EXPECT_EQ(st->imm, -4);
  const auto ldb = Decode(WordAt(*program, 8));
  EXPECT_EQ(ldb->imm, 0);
}

TEST(AssemblerTest, BranchOffsetsResolveLabels) {
  const auto program = Assemble(R"(
start:
  beq r1, r2, done
  nop
done:
  halt
)");
  ASSERT_TRUE(program.ok());
  const auto beq = Decode(WordAt(*program, 0));
  // done is at 8; offset from pc+4=4 is 4 bytes = 1 word.
  EXPECT_EQ(beq->imm, 1);
}

TEST(AssemblerTest, BackwardBranch) {
  const auto program = Assemble(R"(
loop:
  nop
  b loop
)");
  ASSERT_TRUE(program.ok());
  const auto b = Decode(WordAt(*program, 4));
  EXPECT_EQ(b->opcode, Opcode::kBeq);
  EXPECT_EQ(b->imm, -2);  // from pc+4=8 back to 0
}

TEST(AssemblerTest, CallAndRet) {
  const auto program = Assemble(R"(
  call fn
  halt
fn:
  ret
)");
  ASSERT_TRUE(program.ok());
  const auto call = Decode(WordAt(*program, 0));
  EXPECT_EQ(call->opcode, Opcode::kJal);
  EXPECT_EQ(call->ra, 15);
  EXPECT_EQ(call->imm, 1);
  const auto ret = Decode(WordAt(*program, 8));
  EXPECT_EQ(ret->opcode, Opcode::kJalr);
  EXPECT_EQ(ret->ra, 0);
  EXPECT_EQ(ret->rb, 15);
}

TEST(AssemblerTest, LiSmallIsOneInstruction) {
  const auto program = Assemble("li r1, -5\nhalt\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->ByteSize(), 8u);
  const auto addi = Decode(WordAt(*program, 0));
  EXPECT_EQ(addi->opcode, Opcode::kAddi);
  EXPECT_EQ(addi->imm, -5);
}

TEST(AssemblerTest, LiLargeExpandsToLuiOri) {
  const auto program = Assemble("li r1, 0x12345678\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->ByteSize(), 8u);
  const auto lui = Decode(WordAt(*program, 0));
  EXPECT_EQ(lui->opcode, Opcode::kLui);
  EXPECT_EQ(lui->imm, 0x1234);
  const auto ori = Decode(WordAt(*program, 4));
  EXPECT_EQ(ori->opcode, Opcode::kOri);
  EXPECT_EQ(ori->imm, 0x5678);
}

TEST(AssemblerTest, LaAlwaysTwoWords) {
  const auto program = Assemble(R"(
  la r1, data
  halt
.org 0x10000
data:
  .word 99
)");
  ASSERT_TRUE(program.ok());
  const auto lui = Decode(WordAt(*program, 0));
  EXPECT_EQ(lui->imm, 0x0001);
  const auto ori = Decode(WordAt(*program, 4));
  EXPECT_EQ(ori->imm, 0x0000);
  EXPECT_EQ(WordAt(*program, 0x10000), 99u);
}

TEST(AssemblerTest, PushPopExpand) {
  const auto program = Assemble("push r3\npop r4\n");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->ByteSize(), 16u);
  EXPECT_EQ(Decode(WordAt(*program, 0))->opcode, Opcode::kAddi);
  EXPECT_EQ(Decode(WordAt(*program, 4))->opcode, Opcode::kSt);
  EXPECT_EQ(Decode(WordAt(*program, 8))->opcode, Opcode::kLd);
  EXPECT_EQ(Decode(WordAt(*program, 12))->opcode, Opcode::kAddi);
}

TEST(AssemblerTest, DirectivesAndSymbols) {
  const auto program = Assemble(R"(
.entry main
.org 0x100
main:
  nop
.align 16
aligned:
  .word 1, 2, aligned
.space 8
after:
  halt
)");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->entry, 0x100u);
  EXPECT_EQ(program->symbols.at("main"), 0x100u);
  EXPECT_EQ(program->symbols.at("aligned"), 0x110u);
  EXPECT_EQ(WordAt(*program, 0x110), 1u);
  EXPECT_EQ(WordAt(*program, 0x118), 0x110u);  // label value
  EXPECT_EQ(program->symbols.at("after"), 0x110u + 12 + 8);
}

TEST(AssemblerTest, LabelPlusOffset) {
  const auto program = Assemble(R"(
  la r1, table+8
table:
  .word 0, 1, 2
)");
  ASSERT_TRUE(program.ok());
  const auto ori = Decode(WordAt(*program, 4));
  EXPECT_EQ(ori->imm, 8 + 8);  // table at 8, +8
}

TEST(AssemblerTest, Errors) {
  EXPECT_FALSE(Assemble("bogus r1, r2\n").ok());
  EXPECT_FALSE(Assemble("add r1, r2\n").ok());         // arity
  EXPECT_FALSE(Assemble("add r1, r2, r16\n").ok());    // bad register
  EXPECT_FALSE(Assemble("b nowhere\n").ok());          // undefined label
  EXPECT_FALSE(Assemble("x: nop\nx: nop\n").ok());     // duplicate label
  EXPECT_FALSE(Assemble("addi r1, r0, 40000\n").ok()); // imm range
  EXPECT_FALSE(Assemble("ori r1, r0, -1\n").ok());     // logical negative
  EXPECT_FALSE(Assemble("ld r1, r2\n").ok());          // not a mem operand
  EXPECT_FALSE(Assemble(".entry nowhere\nnop\n").ok());
  EXPECT_FALSE(Assemble(".bogus 3\n").ok());
  EXPECT_FALSE(Assemble("li r1, label\nlabel:\n").ok());  // li needs literal
}

TEST(AssemblerTest, ErrorsIncludeLineNumbers) {
  const auto bad = Assemble("nop\nadd r1, r2\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(AssemblerTest, LoadIntoMemory) {
  Memory memory;
  ASSERT_TRUE(memory.AddSegment({"code", 0, 0x1000, true, true, true,
                                 false}).ok());
  const auto program = Assemble("li r1, 7\nhalt\n");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(program->LoadInto(memory).ok());
  std::uint32_t word = 0;
  ASSERT_TRUE(memory.PeekWord(0, &word));
  EXPECT_EQ(Decode(word)->opcode, Opcode::kAddi);
}

// Fuzz sweep: the assembler must reject garbage with an error, never
// crash or loop; near-miss mutations of valid programs likewise.
class AssemblerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AssemblerFuzz, GarbageNeverCrashes) {
  goofi::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 123);
  const char alphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 ,.+-:[]#;rxl\n\t";
  for (int round = 0; round < 100; ++round) {
    std::string source;
    const std::size_t length = rng.NextBelow(300);
    for (std::size_t i = 0; i < length; ++i) {
      source.push_back(alphabet[rng.NextBelow(sizeof alphabet - 1)]);
    }
    const auto result = Assemble(source);  // must return, either way
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), goofi::ErrorCode::kParseError);
    }
  }
}

TEST_P(AssemblerFuzz, MutatedValidProgramsNeverCrash) {
  goofi::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 7);
  const std::string valid = R"(
.entry start
start:
  la sp, 0x24000
  li r1, 10
loop:
  addi r1, r1, -1
  bne r1, r0, loop
  st r1, [sp-4]
  halt
)";
  for (int round = 0; round < 100; ++round) {
    std::string mutated = valid;
    const int edits = 1 + static_cast<int>(rng.NextBelow(4));
    for (int e = 0; e < edits; ++e) {
      const std::size_t at = rng.NextBelow(mutated.size());
      switch (rng.NextBelow(3)) {
        case 0:
          mutated[at] = static_cast<char>(' ' + rng.NextBelow(94));
          break;
        case 1:
          mutated.erase(at, 1);
          break;
        default:
          mutated.insert(at, 1,
                         static_cast<char>(' ' + rng.NextBelow(94)));
          break;
      }
    }
    (void)Assemble(mutated);  // any Result is fine; crashing is not
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz, ::testing::Range(0, 5));

TEST(AssemblerTest, CommentsAndBlankLines) {
  const auto program = Assemble(R"(
; full line comment
# hash comment
  nop   ; trailing comment
  halt  # another
)");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->ByteSize(), 8u);
}

}  // namespace
}  // namespace goofi::sim
