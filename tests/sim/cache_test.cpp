#include "sim/cache.h"

#include <gtest/gtest.h>

namespace goofi::sim {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : cache_({/*lines=*/4, /*words_per_line=*/4, /*tag_bits=*/24}) {
    EXPECT_TRUE(memory_.AddSegment({"ram", 0, 0x10000, true, true, true,
                                    false}).ok());
    for (std::uint32_t address = 0; address < 0x400; address += 4) {
      EXPECT_TRUE(memory_.PokeWord(address, address * 3 + 1));
    }
  }

  std::uint32_t Read(std::uint32_t address, bool* parity = nullptr) {
    std::uint32_t value = 0;
    bool parity_error = false;
    EXPECT_EQ(cache_.ReadWord(memory_, address, &value, AccessKind::kRead,
                              &parity_error),
              MemFault::kNone);
    if (parity != nullptr) *parity = parity_error;
    EXPECT_FALSE(parity == nullptr && parity_error);
    return value;
  }

  Memory memory_;
  Cache cache_;
};

TEST_F(CacheTest, EvenParityComputation) {
  EXPECT_FALSE(Cache::ComputeParity(0));
  EXPECT_TRUE(Cache::ComputeParity(1));
  EXPECT_FALSE(Cache::ComputeParity(3));
  EXPECT_TRUE(Cache::ComputeParity(0x80000000));
  EXPECT_FALSE(Cache::ComputeParity(0xFFFFFFFF));
}

TEST_F(CacheTest, AddressDecomposition) {
  // 4 words/line -> word index bits [3:2]; 4 lines -> line bits [5:4].
  EXPECT_EQ(cache_.WordIndex(0x0), 0u);
  EXPECT_EQ(cache_.WordIndex(0xC), 3u);
  EXPECT_EQ(cache_.LineIndex(0x00), 0u);
  EXPECT_EQ(cache_.LineIndex(0x10), 1u);
  EXPECT_EQ(cache_.LineIndex(0x30), 3u);
  EXPECT_EQ(cache_.LineIndex(0x40), 0u);
  EXPECT_EQ(cache_.Tag(0x40), 1u);
  EXPECT_EQ(cache_.Tag(0x80), 2u);
}

TEST_F(CacheTest, MissThenHit) {
  EXPECT_EQ(Read(0x10), 0x10u * 3 + 1);
  EXPECT_EQ(cache_.stats().misses, 1u);
  EXPECT_EQ(cache_.stats().hits, 0u);
  // Same line, different word: the fill brought the whole line.
  EXPECT_EQ(Read(0x14), 0x14u * 3 + 1);
  EXPECT_EQ(cache_.stats().hits, 1u);
}

TEST_F(CacheTest, ConflictEvictsLine) {
  Read(0x10);
  Read(0x50);  // same line index, different tag
  EXPECT_EQ(cache_.stats().misses, 2u);
  Read(0x10);  // evicted -> miss again
  EXPECT_EQ(cache_.stats().misses, 3u);
}

TEST_F(CacheTest, WriteThroughUpdatesMemoryAndCachedLine) {
  Read(0x20);  // line resident
  EXPECT_EQ(cache_.WriteWord(memory_, 0x24, 0xCAFE), MemFault::kNone);
  std::uint32_t in_memory = 0;
  ASSERT_TRUE(memory_.PeekWord(0x24, &in_memory));
  EXPECT_EQ(in_memory, 0xCAFEu);
  EXPECT_EQ(Read(0x24), 0xCAFEu);  // hit, correct data, correct parity
  EXPECT_EQ(cache_.stats().parity_errors, 0u);
}

TEST_F(CacheTest, WriteMissDoesNotAllocate) {
  EXPECT_EQ(cache_.WriteWord(memory_, 0x100, 7), MemFault::kNone);
  Read(0x100);
  EXPECT_EQ(cache_.stats().misses, 1u);  // the read missed
}

TEST_F(CacheTest, DataBitFlipRaisesParityError) {
  Read(0x10);
  CacheLine& line = cache_.line(cache_.LineIndex(0x10));
  line.words[cache_.WordIndex(0x10)] ^= 0x4;  // injected fault
  bool parity = false;
  const std::uint32_t value = Read(0x10, &parity);
  EXPECT_TRUE(parity);
  EXPECT_EQ(value, (0x10u * 3 + 1) ^ 0x4);  // corrupted data returned
  EXPECT_EQ(cache_.stats().parity_errors, 1u);
}

TEST_F(CacheTest, ParityBitFlipAlsoRaises) {
  Read(0x10);
  CacheLine& line = cache_.line(cache_.LineIndex(0x10));
  const std::uint32_t word = cache_.WordIndex(0x10);
  line.parity[word] = !line.parity[word];  // fault in the parity bit itself
  bool parity = false;
  Read(0x10, &parity);
  EXPECT_TRUE(parity);  // false alarm, faithful to real checkers
}

TEST_F(CacheTest, TagBitFlipBecomesMiss) {
  Read(0x10);
  CacheLine& line = cache_.line(cache_.LineIndex(0x10));
  line.tag ^= 0x1;  // injected fault in the tag array
  bool parity = false;
  const std::uint32_t value = Read(0x10, &parity);
  EXPECT_FALSE(parity);               // no detection...
  EXPECT_EQ(value, 0x10u * 3 + 1);    // ...fault overwritten by the refill
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST_F(CacheTest, ValidBitFlipInvalidatesSilently) {
  Read(0x10);
  cache_.line(cache_.LineIndex(0x10)).valid = false;
  bool parity = false;
  EXPECT_EQ(Read(0x10, &parity), 0x10u * 3 + 1);
  EXPECT_FALSE(parity);
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST_F(CacheTest, InvalidateClearsEverything) {
  Read(0x10);
  cache_.Invalidate();
  for (std::size_t i = 0; i < cache_.line_count(); ++i) {
    EXPECT_FALSE(cache_.line(i).valid);
  }
  Read(0x10);
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST_F(CacheTest, MisalignedAndFaultingFills) {
  std::uint32_t value = 0;
  bool parity = false;
  EXPECT_EQ(cache_.ReadWord(memory_, 0x12, &value, AccessKind::kRead,
                            &parity),
            MemFault::kMisaligned);
  EXPECT_EQ(cache_.ReadWord(memory_, 0x20000, &value, AccessKind::kRead,
                            &parity),
            MemFault::kUnmapped);
}

TEST_F(CacheTest, HitStillChecksProtection) {
  // Fill via read, then ask for execute permission on a hit in a
  // non-executable segment... our "ram" is executable; add a second
  // cache over a non-executable segment instead.
  Memory memory;
  ASSERT_TRUE(memory.AddSegment({"data", 0, 0x1000, true, true, false,
                                 false}).ok());
  ASSERT_TRUE(memory.PokeWord(0x10, 42));
  Cache cache({4, 4, 24});
  std::uint32_t value = 0;
  bool parity = false;
  EXPECT_EQ(cache.ReadWord(memory, 0x10, &value, AccessKind::kRead, &parity),
            MemFault::kNone);
  EXPECT_EQ(cache.ReadWord(memory, 0x10, &value, AccessKind::kExecute,
                           &parity),
            MemFault::kProtection);
}

}  // namespace
}  // namespace goofi::sim
