#include "sim/cache.h"

#include <gtest/gtest.h>

#include "sim/fault_injector.h"

namespace goofi::sim {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : cache_({/*lines=*/4, /*words_per_line=*/4, /*tag_bits=*/24}) {
    EXPECT_TRUE(memory_.AddSegment({"ram", 0, 0x10000, true, true, true,
                                    false}).ok());
    for (std::uint32_t address = 0; address < 0x400; address += 4) {
      EXPECT_TRUE(memory_.PokeWord(address, address * 3 + 1));
    }
  }

  std::uint32_t Read(std::uint32_t address, bool* parity = nullptr) {
    std::uint32_t value = 0;
    bool parity_error = false;
    EXPECT_EQ(cache_.ReadWord(memory_, address, &value, AccessKind::kRead,
                              &parity_error),
              MemFault::kNone);
    if (parity != nullptr) *parity = parity_error;
    EXPECT_FALSE(parity == nullptr && parity_error);
    return value;
  }

  Memory memory_;
  Cache cache_;
};

TEST_F(CacheTest, EvenParityComputation) {
  EXPECT_FALSE(Cache::ComputeParity(0));
  EXPECT_TRUE(Cache::ComputeParity(1));
  EXPECT_FALSE(Cache::ComputeParity(3));
  EXPECT_TRUE(Cache::ComputeParity(0x80000000));
  EXPECT_FALSE(Cache::ComputeParity(0xFFFFFFFF));
}

TEST_F(CacheTest, AddressDecomposition) {
  // 4 words/line -> word index bits [3:2]; 4 lines -> line bits [5:4].
  EXPECT_EQ(cache_.WordIndex(0x0), 0u);
  EXPECT_EQ(cache_.WordIndex(0xC), 3u);
  EXPECT_EQ(cache_.LineIndex(0x00), 0u);
  EXPECT_EQ(cache_.LineIndex(0x10), 1u);
  EXPECT_EQ(cache_.LineIndex(0x30), 3u);
  EXPECT_EQ(cache_.LineIndex(0x40), 0u);
  EXPECT_EQ(cache_.Tag(0x40), 1u);
  EXPECT_EQ(cache_.Tag(0x80), 2u);
}

TEST_F(CacheTest, MissThenHit) {
  EXPECT_EQ(Read(0x10), 0x10u * 3 + 1);
  EXPECT_EQ(cache_.stats().misses, 1u);
  EXPECT_EQ(cache_.stats().hits, 0u);
  // Same line, different word: the fill brought the whole line.
  EXPECT_EQ(Read(0x14), 0x14u * 3 + 1);
  EXPECT_EQ(cache_.stats().hits, 1u);
}

TEST_F(CacheTest, ConflictEvictsLine) {
  Read(0x10);
  Read(0x50);  // same line index, different tag
  EXPECT_EQ(cache_.stats().misses, 2u);
  Read(0x10);  // evicted -> miss again
  EXPECT_EQ(cache_.stats().misses, 3u);
}

TEST_F(CacheTest, WriteThroughUpdatesMemoryAndCachedLine) {
  Read(0x20);  // line resident
  EXPECT_EQ(cache_.WriteWord(memory_, 0x24, 0xCAFE), MemFault::kNone);
  std::uint32_t in_memory = 0;
  ASSERT_TRUE(memory_.PeekWord(0x24, &in_memory));
  EXPECT_EQ(in_memory, 0xCAFEu);
  EXPECT_EQ(Read(0x24), 0xCAFEu);  // hit, correct data, correct parity
  EXPECT_EQ(cache_.stats().parity_errors, 0u);
}

TEST_F(CacheTest, WriteMissDoesNotAllocate) {
  EXPECT_EQ(cache_.WriteWord(memory_, 0x100, 7), MemFault::kNone);
  Read(0x100);
  EXPECT_EQ(cache_.stats().misses, 1u);  // the read missed
}

TEST_F(CacheTest, DataBitFlipRaisesParityError) {
  Read(0x10);
  CacheLine& line = cache_.line(cache_.LineIndex(0x10));
  line.words[cache_.WordIndex(0x10)] ^= 0x4;  // injected fault
  bool parity = false;
  const std::uint32_t value = Read(0x10, &parity);
  EXPECT_TRUE(parity);
  EXPECT_EQ(value, (0x10u * 3 + 1) ^ 0x4);  // corrupted data returned
  EXPECT_EQ(cache_.stats().parity_errors, 1u);
}

TEST_F(CacheTest, ParityBitFlipAlsoRaises) {
  Read(0x10);
  CacheLine& line = cache_.line(cache_.LineIndex(0x10));
  const std::uint32_t word = cache_.WordIndex(0x10);
  line.parity[word] = !line.parity[word];  // fault in the parity bit itself
  bool parity = false;
  Read(0x10, &parity);
  EXPECT_TRUE(parity);  // false alarm, faithful to real checkers
}

TEST_F(CacheTest, TagBitFlipBecomesMiss) {
  Read(0x10);
  CacheLine& line = cache_.line(cache_.LineIndex(0x10));
  line.tag ^= 0x1;  // injected fault in the tag array
  bool parity = false;
  const std::uint32_t value = Read(0x10, &parity);
  EXPECT_FALSE(parity);               // no detection...
  EXPECT_EQ(value, 0x10u * 3 + 1);    // ...fault overwritten by the refill
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST_F(CacheTest, ValidBitFlipInvalidatesSilently) {
  Read(0x10);
  cache_.line(cache_.LineIndex(0x10)).valid = false;
  bool parity = false;
  EXPECT_EQ(Read(0x10, &parity), 0x10u * 3 + 1);
  EXPECT_FALSE(parity);
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST_F(CacheTest, InvalidateClearsEverything) {
  Read(0x10);
  cache_.Invalidate();
  for (std::size_t i = 0; i < cache_.line_count(); ++i) {
    EXPECT_FALSE(cache_.line(i).valid);
  }
  Read(0x10);
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST_F(CacheTest, MisalignedAndFaultingFills) {
  std::uint32_t value = 0;
  bool parity = false;
  EXPECT_EQ(cache_.ReadWord(memory_, 0x12, &value, AccessKind::kRead,
                            &parity),
            MemFault::kMisaligned);
  EXPECT_EQ(cache_.ReadWord(memory_, 0x20000, &value, AccessKind::kRead,
                            &parity),
            MemFault::kUnmapped);
}

// ---- access-path fault injection (sim/fault_injector.h) --------------

ArmedCacheFault DcacheFault(CacheArray array, std::uint32_t set,
                            std::uint32_t word, std::uint32_t bit) {
  ArmedCacheFault fault;
  fault.unit = MemUnit::kDcache;
  fault.array = array;
  fault.set = set;
  fault.word = word;
  fault.bit = bit;
  return fault;
}

class CacheInjectionTest : public CacheTest {
 protected:
  CacheInjectionTest() {
    cache_.set_fault_injector(&injector_, MemUnit::kDcache);
  }

  AccessPathInjector injector_;
};

// The exhaustive detection property over the whole geometry: for every
// (set, word, bit), a single data-array flip injected through the
// access-path hook into a resident line is caught by the parity checker
// on the very next read hit of that word — and the corrupted value is
// what the read returns, faithful to a real array fault.
TEST_F(CacheInjectionTest, EveryDataBitFlipIsParityDetectedOnNextReadHit) {
  for (std::uint32_t set = 0; set < cache_.line_count(); ++set) {
    for (std::uint32_t word = 0; word < 4; ++word) {
      for (std::uint32_t bit = 0; bit < 32; ++bit) {
        cache_.Invalidate();
        injector_.Reset();
        const std::uint32_t address = set * 16 + word * 4;
        Read(address);  // line resident with fresh parity
        injector_.Arm(DcacheFault(CacheArray::kData, set, word, bit));
        bool parity = false;
        const std::uint32_t value = Read(address, &parity);
        EXPECT_TRUE(parity) << "set " << set << " word " << word << " bit "
                            << bit;
        EXPECT_EQ(value, (address * 3 + 1) ^ (1u << bit))
            << "set " << set << " word " << word << " bit " << bit;
      }
    }
  }
}

// The EDM blind spot: flipping the data bit AND the word's stored
// parity bit on the same access keeps the checksum consistent, so the
// corrupted value sails through undetected — a paired fault no
// single-bit parity code can see.
TEST_F(CacheInjectionTest, PairedDataAndParityFlipEscapesDetection) {
  for (std::uint32_t set = 0; set < cache_.line_count(); ++set) {
    for (std::uint32_t word = 0; word < 4; ++word) {
      for (std::uint32_t bit = 0; bit < 32; bit += 7) {
        cache_.Invalidate();
        injector_.Reset();
        const std::uint32_t address = set * 16 + word * 4;
        Read(address);
        injector_.Arm(DcacheFault(CacheArray::kData, set, word, bit));
        injector_.Arm(DcacheFault(CacheArray::kParity, set, word, 0));
        bool parity = false;
        const std::uint32_t value = Read(address, &parity);
        EXPECT_FALSE(parity) << "set " << set << " word " << word
                             << " bit " << bit;
        EXPECT_EQ(value, (address * 3 + 1) ^ (1u << bit));
      }
    }
  }
}

TEST_F(CacheInjectionTest, LoneParityFlipIsAFalseAlarm) {
  Read(0x10);
  injector_.Arm(DcacheFault(CacheArray::kParity, 1, 0, 0));
  bool parity = false;
  const std::uint32_t value = Read(0x10, &parity);
  EXPECT_TRUE(parity);                // detected...
  EXPECT_EQ(value, 0x10u * 3 + 1);    // ...but the data was never wrong
}

TEST_F(CacheInjectionTest, TagFlipTurnsTheNextAccessIntoAMiss) {
  Read(0x10);
  injector_.Arm(DcacheFault(CacheArray::kTag, 1, 0, 0));
  bool parity = false;
  // PreRead mutates the tag before hit determination: this very read
  // misses, refills the line, and returns clean data.
  EXPECT_EQ(Read(0x10, &parity), 0x10u * 3 + 1);
  EXPECT_FALSE(parity);
  EXPECT_EQ(cache_.stats().misses, 2u);
}

TEST_F(CacheInjectionTest, InflightFlipEscapesParityAndLeavesArraysClean) {
  Read(0x10);
  injector_.Arm(DcacheFault(CacheArray::kInflight, 1, 0, 3));
  bool parity = false;
  // Corrupted on the wires, after the parity comparison.
  EXPECT_EQ(Read(0x10, &parity), (0x10u * 3 + 1) ^ 0x8u);
  EXPECT_FALSE(parity);
  EXPECT_EQ(injector_.inflight_flip_count(), 1u);
  // The arrays were never touched: the next read is clean.
  EXPECT_EQ(Read(0x10, &parity), 0x10u * 3 + 1);
  EXPECT_FALSE(parity);
}

TEST_F(CacheInjectionTest, InflightFlipWaitsForItsCoordinate) {
  Read(0x10);
  Read(0x20);
  injector_.Arm(DcacheFault(CacheArray::kInflight, 1, 0, 3));
  // Accesses to other words pass untouched without consuming the fault.
  bool parity = false;
  EXPECT_EQ(Read(0x20, &parity), 0x20u * 3 + 1);
  EXPECT_EQ(Read(0x14, &parity), 0x14u * 3 + 1);
  ASSERT_EQ(injector_.armed().size(), 1u);
  EXPECT_EQ(Read(0x10, &parity), (0x10u * 3 + 1) ^ 0x8u);
  EXPECT_TRUE(injector_.armed().empty());
}

TEST_F(CacheInjectionTest, TransientFaultDisarmsAfterOneApplication) {
  Read(0x10);
  injector_.Arm(DcacheFault(CacheArray::kData, 1, 0, 2));
  bool parity = false;
  Read(0x10, &parity);
  EXPECT_TRUE(parity);
  EXPECT_TRUE(injector_.armed().empty());
  EXPECT_EQ(injector_.applied_count(), 1u);
}

TEST_F(CacheInjectionTest, PermanentStuckAtRePinsOnEveryAccess) {
  Read(0x10);
  // 0x10 * 3 + 1 = 49: bit 4 is set, so stuck-at-0 visibly corrupts.
  ArmedCacheFault fault = DcacheFault(CacheArray::kData, 1, 0, 4);
  fault.kind = ArmedFaultKind::kPermanentStuckAt;
  fault.stuck_to_one = false;
  ASSERT_NE((0x10u * 3 + 1) & 0x10u, 0u);
  injector_.Arm(fault);
  bool parity = false;
  EXPECT_EQ(Read(0x10, &parity) & 0x10u, 0u);
  EXPECT_TRUE(parity);
  // A refill rewrites the array with correct data + parity (PreRead's
  // pin lands before the fill); the stuck bit must reappear on the
  // access after that all the same.
  cache_.Invalidate();
  EXPECT_EQ(Read(0x10, &parity), 0x10u * 3 + 1);  // miss: fresh fill
  EXPECT_EQ(Read(0x10, &parity) & 0x10u, 0u);     // pinned again
  EXPECT_FALSE(injector_.armed().empty());  // permanents never disarm
}

TEST_F(CacheInjectionTest, IntermittentFaultAppliesEveryPeriod) {
  Read(0x10);
  ArmedCacheFault fault = DcacheFault(CacheArray::kParity, 1, 0, 0);
  fault.kind = ArmedFaultKind::kIntermittent;
  fault.period = 2;
  fault.remaining = 2;
  injector_.Arm(fault);
  bool parity = false;
  Read(0x10, &parity);
  EXPECT_TRUE(parity);   // application 1: stored parity now stale
  Read(0x10, &parity);
  EXPECT_TRUE(parity);   // period gap: no reapply, but still stale
  Read(0x10, &parity);
  EXPECT_FALSE(parity);  // application 2 flips the bit back: consistent
  EXPECT_TRUE(injector_.armed().empty());  // both occurrences spent
  EXPECT_EQ(cache_.stats().parity_errors, 2u);
}

TEST(MemoryInjectionTest, MainMemoryInflightFlipCorruptsUncachedReads) {
  Memory memory;
  ASSERT_TRUE(
      memory.AddSegment({"ram", 0, 0x1000, true, true, true, false}).ok());
  ASSERT_TRUE(memory.PokeWord(0x40, 0x1111));
  AccessPathInjector injector;
  memory.set_fault_injector(&injector);

  ArmedCacheFault fault;
  fault.unit = MemUnit::kMainMemory;
  fault.array = CacheArray::kInflight;
  fault.set = 0x40;  // word address stands in for (set, word)
  fault.bit = 0;
  injector.Arm(fault);

  std::uint32_t value = 0;
  ASSERT_EQ(memory.ReadWord(0x40, &value, AccessKind::kRead),
            MemFault::kNone);
  EXPECT_EQ(value, 0x1110u);
  // Transient: consumed. The backing store itself was never modified.
  ASSERT_EQ(memory.ReadWord(0x40, &value, AccessKind::kRead),
            MemFault::kNone);
  EXPECT_EQ(value, 0x1111u);
  // The backdoor Peek/Poke path is hook-free by design (it is the
  // loader's and the test card's channel, not the access path).
  injector.Arm(fault);
  std::uint32_t peeked = 0;
  ASSERT_TRUE(memory.PeekWord(0x40, &peeked));
  EXPECT_EQ(peeked, 0x1111u);
  EXPECT_EQ(injector.armed().size(), 1u);
}

TEST_F(CacheTest, HitStillChecksProtection) {
  // Fill via read, then ask for execute permission on a hit in a
  // non-executable segment... our "ram" is executable; add a second
  // cache over a non-executable segment instead.
  Memory memory;
  ASSERT_TRUE(memory.AddSegment({"data", 0, 0x1000, true, true, false,
                                 false}).ok());
  ASSERT_TRUE(memory.PokeWord(0x10, 42));
  Cache cache({4, 4, 24});
  std::uint32_t value = 0;
  bool parity = false;
  EXPECT_EQ(cache.ReadWord(memory, 0x10, &value, AccessKind::kRead, &parity),
            MemFault::kNone);
  EXPECT_EQ(cache.ReadWord(memory, 0x10, &value, AccessKind::kExecute,
                           &parity),
            MemFault::kProtection);
}

}  // namespace
}  // namespace goofi::sim
