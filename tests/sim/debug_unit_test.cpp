#include "sim/debug_unit.h"

#include <gtest/gtest.h>

#include "sim/assembler.h"

namespace goofi::sim {
namespace {

class DebugUnitTest : public ::testing::Test {
 protected:
  void Boot(const std::string& source) {
    cpu_ = std::make_unique<Cpu>();
    ASSERT_TRUE(cpu_->memory().AddSegment({"code", 0, 0x4000, true, false,
                                           true, false}).ok());
    ASSERT_TRUE(cpu_->memory().AddSegment({"data", 0x10000, 0x4000, true,
                                           true, false, false}).ok());
    const auto program = Assemble(source);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    ASSERT_TRUE(program->LoadInto(cpu_->memory()).ok());
    cpu_->Reset(program->entry);
  }

  std::unique_ptr<Cpu> cpu_;
  DebugUnit debug_{/*instructions_per_micro=*/10};
};

constexpr const char* kCountLoop = R"(
  li r1, 0
  li r2, 100
loop:
  addi r1, r1, 1
  blt r1, r2, loop
  halt
)";

TEST_F(DebugUnitTest, InstretBreakpoint) {
  Boot(kCountLoop);
  Breakpoint bp;
  bp.kind = Breakpoint::Kind::kInstretReached;
  bp.count = 50;
  debug_.AddBreakpoint(bp);
  const RunResult result = goofi::sim::Run(*cpu_, &debug_, 100000);
  EXPECT_EQ(result.reason, StopReason::kBreakpoint);
  EXPECT_EQ(cpu_->instret(), 50u);
  // One-shot: resuming runs to completion.
  const RunResult rest = goofi::sim::Run(*cpu_, &debug_, 100000);
  EXPECT_EQ(rest.reason, StopReason::kHalted);
  EXPECT_EQ(cpu_->reg(1), 100u);
}

TEST_F(DebugUnitTest, PcBreakpointWithOccurrenceCount) {
  Boot(kCountLoop);
  Breakpoint bp;
  bp.kind = Breakpoint::Kind::kPcEquals;
  bp.address = 8;  // "addi r1, r1, 1"
  bp.count = 5;    // fifth time around
  debug_.AddBreakpoint(bp);
  const RunResult result = goofi::sim::Run(*cpu_, &debug_, 100000);
  EXPECT_EQ(result.reason, StopReason::kBreakpoint);
  EXPECT_EQ(cpu_->pc(), 8u);
  EXPECT_EQ(cpu_->reg(1), 4u);  // about to execute the 5th increment
}

TEST_F(DebugUnitTest, RtcBreakpoint) {
  Boot(kCountLoop);
  Breakpoint bp;
  bp.kind = Breakpoint::Kind::kRtcMicros;
  bp.micros = 3;  // 3us x 10 instr/us = instret 30
  debug_.AddBreakpoint(bp);
  const RunResult result = goofi::sim::Run(*cpu_, &debug_, 100000);
  EXPECT_EQ(result.reason, StopReason::kBreakpoint);
  EXPECT_EQ(cpu_->instret(), 30u);
}

TEST_F(DebugUnitTest, DataReadAndWriteBreakpoints) {
  Boot(R"(
  la r1, 0x10010
  li r2, 7
  st r2, [r1]
  ld r3, [r1]
  ld r4, [r1]
  halt
)");
  Breakpoint write_bp;
  write_bp.kind = Breakpoint::Kind::kDataWrite;
  write_bp.address = 0x10010;
  debug_.AddBreakpoint(write_bp);
  const RunResult at_write = goofi::sim::Run(*cpu_, &debug_, 100000);
  EXPECT_EQ(at_write.reason, StopReason::kBreakpoint);

  Breakpoint read_bp;
  read_bp.kind = Breakpoint::Kind::kDataRead;
  read_bp.address = 0x10010;
  read_bp.count = 2;
  debug_.AddBreakpoint(read_bp);
  const RunResult at_read = goofi::sim::Run(*cpu_, &debug_, 100000);
  EXPECT_EQ(at_read.reason, StopReason::kBreakpoint);
  EXPECT_EQ(cpu_->reg(4), 7u);  // both loads retired
}

TEST_F(DebugUnitTest, BranchAndCallBreakpoints) {
  Boot(R"(
  la sp, 0x14000
  li r1, 0
  li r2, 3
loop:
  call fn
  addi r1, r1, 1
  blt r1, r2, loop
  halt
fn:
  ret
)");
  Breakpoint call_bp;
  call_bp.kind = Breakpoint::Kind::kCall;
  call_bp.count = 2;  // calls are JAL and JALR; 2nd = the ret of call #1
  debug_.AddBreakpoint(call_bp);
  const RunResult result = goofi::sim::Run(*cpu_, &debug_, 100000);
  EXPECT_EQ(result.reason, StopReason::kBreakpoint);

  Breakpoint branch_bp;
  branch_bp.kind = Breakpoint::Kind::kBranchTaken;
  branch_bp.count = 1;
  debug_.AddBreakpoint(branch_bp);
  const RunResult at_branch = goofi::sim::Run(*cpu_, &debug_, 100000);
  EXPECT_EQ(at_branch.reason, StopReason::kBreakpoint);
}

TEST_F(DebugUnitTest, RemoveAndClear) {
  Boot(kCountLoop);
  Breakpoint bp;
  bp.kind = Breakpoint::Kind::kInstretReached;
  bp.count = 10;
  const int id = debug_.AddBreakpoint(bp);
  debug_.RemoveBreakpoint(id);
  EXPECT_EQ(goofi::sim::Run(*cpu_, &debug_, 100000).reason, StopReason::kHalted);

  cpu_->Reset(0);
  debug_.AddBreakpoint(bp);
  debug_.AddBreakpoint(bp);
  EXPECT_EQ(debug_.breakpoint_count(), 2u);
  debug_.Clear();
  EXPECT_EQ(debug_.breakpoint_count(), 0u);
}

TEST_F(DebugUnitTest, BudgetExhaustion) {
  Boot(kCountLoop);
  const RunResult result = goofi::sim::Run(*cpu_, nullptr, 17);
  EXPECT_EQ(result.reason, StopReason::kBudgetExhausted);
  EXPECT_EQ(result.instructions_executed, 17u);
  EXPECT_FALSE(cpu_->halted());
}

TEST_F(DebugUnitTest, IterationCallbackCanVeto) {
  Boot(R"(
loop:
  sys 1
  b loop
)");
  int exchanges = 0;
  const RunResult result = goofi::sim::Run(
      *cpu_, nullptr, 100000, /*max_iterations=*/0,
      [&exchanges](Cpu&) { return ++exchanges < 4; });
  EXPECT_EQ(result.reason, StopReason::kIterationLimit);
  EXPECT_EQ(exchanges, 4);
}

TEST_F(DebugUnitTest, BreakpointIdReported) {
  Boot(kCountLoop);
  Breakpoint bp;
  bp.kind = Breakpoint::Kind::kInstretReached;
  bp.count = 5;
  const int id = debug_.AddBreakpoint(bp);
  const RunResult result = goofi::sim::Run(*cpu_, &debug_, 100000);
  ASSERT_TRUE(result.breakpoint_id.has_value());
  EXPECT_EQ(*result.breakpoint_id, id);
}

}  // namespace
}  // namespace goofi::sim
