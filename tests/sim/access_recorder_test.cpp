#include "sim/access_recorder.h"

#include <gtest/gtest.h>

#include "sim/assembler.h"
#include "sim/cpu.h"
#include "sim/debug_unit.h"

namespace goofi::sim {
namespace {

TEST(AccessRecorderTest, RecordsRegisterAndMemoryEvents) {
  Cpu cpu;
  ASSERT_TRUE(cpu.memory().AddSegment({"code", 0, 0x1000, true, false, true,
                                       false}).ok());
  ASSERT_TRUE(cpu.memory().AddSegment({"data", 0x10000, 0x1000, true, true,
                                       false, false}).ok());
  const auto program = Assemble(R"(
  li r1, 5          ; write r1        (t=0)
  la r2, 0x10020    ; writes r2       (t=1, t=2)
  st r1, [r2]       ; reads r1,r2; mem write (t=3)
  ld r3, [r2]       ; reads r2; mem read; writes r3 (t=4)
  halt
)");
  ASSERT_TRUE(program.ok());
  ASSERT_TRUE(program->LoadInto(cpu.memory()).ok());
  cpu.Reset(0);
  AccessRecorder recorder;
  cpu.set_tracer(&recorder);
  goofi::sim::Run(cpu, nullptr, 1000);

  const auto& r1 = recorder.register_events(1);
  ASSERT_GE(r1.size(), 2u);
  EXPECT_TRUE(r1[0].is_write);
  EXPECT_EQ(r1[0].time, 0u);
  EXPECT_FALSE(r1[1].is_write);  // read by the store
  EXPECT_EQ(r1[1].time, 3u);

  const auto& memory = recorder.memory_events();
  ASSERT_TRUE(memory.count(0x10020));
  const auto& word = memory.at(0x10020);
  ASSERT_EQ(word.size(), 2u);
  EXPECT_TRUE(word[0].is_write);
  EXPECT_EQ(word[0].time, 3u);
  EXPECT_FALSE(word[1].is_write);
  EXPECT_EQ(word[1].time, 4u);
}

TEST(AccessRecorderTest, ByteStoreCountsAsReadModifyWrite) {
  AccessRecorder recorder;
  recorder.OnMemoryWrite(0x1001, 1, 0xAB, 9);
  const auto& events = recorder.memory_events().at(0x1000);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].is_write);  // conservative read first
  EXPECT_TRUE(events[1].is_write);
}

TEST(AccessRecorderTest, IgnoresR0) {
  AccessRecorder recorder;
  recorder.OnRegisterRead(0, 1);
  recorder.OnRegisterWrite(0, 0, 5, 2);
  EXPECT_TRUE(recorder.register_events(0).empty());
}

TEST(AccessRecorderTest, ClearResets) {
  AccessRecorder recorder;
  recorder.OnRegisterWrite(3, 0, 5, 2);
  recorder.OnMemoryRead(0x100, 4, 3);
  recorder.Clear();
  EXPECT_TRUE(recorder.register_events(3).empty());
  EXPECT_TRUE(recorder.memory_events().empty());
}

}  // namespace
}  // namespace goofi::sim
