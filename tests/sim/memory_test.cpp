#include "sim/memory.h"

#include <gtest/gtest.h>

namespace goofi::sim {
namespace {

Memory MakeBoard() {
  Memory memory;
  EXPECT_TRUE(memory.AddSegment({"code", 0x0000, 0x1000, true, false, true,
                                 false}).ok());
  EXPECT_TRUE(memory.AddSegment({"data", 0x1000, 0x1000, true, true, false,
                                 false}).ok());
  EXPECT_TRUE(memory.AddSegment({"io", 0xFFFF0000, 0x100, true, true, false,
                                 true}).ok());
  return memory;
}

TEST(MemoryTest, SegmentLookup) {
  Memory memory = MakeBoard();
  ASSERT_NE(memory.FindSegment(0x800), nullptr);
  EXPECT_EQ(memory.FindSegment(0x800)->name, "code");
  EXPECT_EQ(memory.FindSegment(0x1FFF)->name, "data");
  EXPECT_EQ(memory.FindSegment(0x2000), nullptr);
  EXPECT_EQ(memory.FindSegmentByName("io")->base, 0xFFFF0000u);
  EXPECT_EQ(memory.FindSegmentByName("ghost"), nullptr);
}

TEST(MemoryTest, OverlapRejected) {
  Memory memory = MakeBoard();
  EXPECT_EQ(memory.AddSegment({"clash", 0x0800, 0x1000, true, true, false,
                               false}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(memory.AddSegment({"zero", 0x5000, 0, true, true, false,
                               false}).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(memory.AddSegment({"wrap", 0xFFFFFFF0, 0x100, true, true, false,
                               false}).code(),
            ErrorCode::kInvalidArgument);
}

TEST(MemoryTest, WordReadWriteLittleEndian) {
  Memory memory = MakeBoard();
  EXPECT_EQ(memory.WriteWord(0x1000, 0x11223344), MemFault::kNone);
  std::uint8_t byte = 0;
  EXPECT_EQ(memory.ReadByte(0x1000, &byte), MemFault::kNone);
  EXPECT_EQ(byte, 0x44);
  EXPECT_EQ(memory.ReadByte(0x1003, &byte), MemFault::kNone);
  EXPECT_EQ(byte, 0x11);
  std::uint32_t word = 0;
  EXPECT_EQ(memory.ReadWord(0x1000, &word), MemFault::kNone);
  EXPECT_EQ(word, 0x11223344u);
}

TEST(MemoryTest, ProtectionFaults) {
  Memory memory = MakeBoard();
  // Store to read/execute-only code.
  EXPECT_EQ(memory.WriteWord(0x0010, 1), MemFault::kProtection);
  EXPECT_EQ(memory.WriteByte(0x0010, 1), MemFault::kProtection);
  // Execute from data.
  std::uint32_t word = 0;
  EXPECT_EQ(memory.ReadWord(0x1000, &word, AccessKind::kExecute),
            MemFault::kProtection);
  // Unmapped.
  EXPECT_EQ(memory.ReadWord(0x9000, &word), MemFault::kUnmapped);
  EXPECT_EQ(memory.WriteWord(0x9000, 1), MemFault::kUnmapped);
}

TEST(MemoryTest, MisalignedWordAccess) {
  Memory memory = MakeBoard();
  std::uint32_t word = 0;
  EXPECT_EQ(memory.ReadWord(0x1002, &word), MemFault::kMisaligned);
  EXPECT_EQ(memory.WriteWord(0x1001, 5), MemFault::kMisaligned);
}

TEST(MemoryTest, PokeBypassesProtection) {
  Memory memory = MakeBoard();
  EXPECT_TRUE(memory.Poke(0x0010, 0xAB));  // code is CPU-read-only
  std::uint8_t byte = 0;
  EXPECT_TRUE(memory.Peek(0x0010, &byte));
  EXPECT_EQ(byte, 0xAB);
  EXPECT_FALSE(memory.Poke(0x9000, 1));
  EXPECT_FALSE(memory.Peek(0x9000, &byte));
}

TEST(MemoryTest, FlipBit) {
  Memory memory = MakeBoard();
  ASSERT_TRUE(memory.PokeWord(0x1004, 0));
  EXPECT_TRUE(memory.FlipBit(0x1004, 3));
  std::uint8_t byte = 0;
  ASSERT_TRUE(memory.Peek(0x1004, &byte));
  EXPECT_EQ(byte, 0x08);
  EXPECT_TRUE(memory.FlipBit(0x1004, 3));
  ASSERT_TRUE(memory.Peek(0x1004, &byte));
  EXPECT_EQ(byte, 0x00);
  EXPECT_FALSE(memory.FlipBit(0x1004, 8));  // bit out of range
  EXPECT_FALSE(memory.FlipBit(0x9000, 0));
}

TEST(MemoryTest, LoadImageAndDumpRange) {
  Memory memory = MakeBoard();
  const std::vector<std::uint8_t> image = {1, 2, 3, 4, 5};
  ASSERT_TRUE(memory.LoadImage(0x1000, image).ok());
  const auto dump = memory.DumpRange(0x1000, 5);
  ASSERT_TRUE(dump.ok());
  EXPECT_EQ(*dump, image);
  EXPECT_EQ(memory.LoadImage(0x0FFE, image).code(), ErrorCode::kOk);
  // A range crossing into unmapped space fails.
  EXPECT_FALSE(memory.DumpRange(0x1FFE, 8).ok());
  EXPECT_EQ(memory.LoadImage(0x2000, image).code(), ErrorCode::kOutOfRange);
}

TEST(MemoryTest, SegmentBoundarySpanningAccess) {
  Memory memory = MakeBoard();
  // code [0,0x1000) and data [0x1000,0x2000) are adjacent; LoadImage
  // across the boundary lands in both.
  ASSERT_TRUE(memory.LoadImage(0x0FFE, {0xAA, 0xBB, 0xCC, 0xDD}).ok());
  std::uint8_t byte = 0;
  ASSERT_TRUE(memory.Peek(0x0FFF, &byte));
  EXPECT_EQ(byte, 0xBB);
  ASSERT_TRUE(memory.Peek(0x1000, &byte));
  EXPECT_EQ(byte, 0xCC);
}

TEST(MemoryTest, ClearContentsKeepsSegments) {
  Memory memory = MakeBoard();
  ASSERT_TRUE(memory.PokeWord(0x1000, 0xFFFFFFFF));
  memory.ClearContents();
  std::uint32_t word = 1;
  ASSERT_TRUE(memory.PeekWord(0x1000, &word));
  EXPECT_EQ(word, 0u);
  EXPECT_EQ(memory.segments().size(), 3u);
}

TEST(MemoryTest, UncacheableFlagPreserved) {
  Memory memory = MakeBoard();
  EXPECT_TRUE(memory.FindSegmentByName("io")->uncacheable);
  EXPECT_FALSE(memory.FindSegmentByName("data")->uncacheable);
}

}  // namespace
}  // namespace goofi::sim
