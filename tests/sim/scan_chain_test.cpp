#include "sim/scan_chain.h"

#include <gtest/gtest.h>

namespace goofi::sim {
namespace {

class ScanChainTest : public ::testing::Test {
 protected:
  ScanChainTest() {
    EXPECT_TRUE(cpu_.memory().AddSegment({"code", 0, 0x1000, true, false,
                                          true, false}).ok());
    chains_ = BuildThorRdScanChains(cpu_);
  }

  Cpu cpu_;
  ScanChainSet chains_;
};

TEST_F(ScanChainTest, HasInternalAndBoundaryChains) {
  ASSERT_NE(chains_.FindChain("internal"), nullptr);
  ASSERT_NE(chains_.FindChain("boundary"), nullptr);
  EXPECT_EQ(chains_.FindChain("bogus"), nullptr);
  EXPECT_EQ(chains_.chains.size(), 2u);
}

TEST_F(ScanChainTest, ElementPositionsArePacked) {
  const ScanChain* internal = chains_.FindChain("internal");
  std::size_t expected = 0;
  for (const ScanElement& element : internal->elements()) {
    EXPECT_EQ(element.position, expected) << element.name;
    expected += element.width;
  }
  EXPECT_EQ(internal->bit_length(), expected);
}

TEST_F(ScanChainTest, ChainCoversDocumentedState) {
  const ScanChain* internal = chains_.FindChain("internal");
  // r0 is hardwired: not in the chain.
  EXPECT_EQ(internal->FindElement("cpu.regs.r0"), nullptr);
  for (unsigned r = 1; r < 16; ++r) {
    EXPECT_NE(internal->FindElement("cpu.regs.r" + std::to_string(r)),
              nullptr);
  }
  EXPECT_NE(internal->FindElement("cpu.pc"), nullptr);
  EXPECT_NE(internal->FindElement("cpu.ir"), nullptr);
  EXPECT_NE(internal->FindElement("cpu.wdt"), nullptr);
  EXPECT_NE(internal->FindElement("cpu.edm_status"), nullptr);
  EXPECT_NE(internal->FindElement("icache.line0.valid"), nullptr);
  EXPECT_NE(internal->FindElement("dcache.line0.parity0"), nullptr);
  const ScanChain* boundary = chains_.FindChain("boundary");
  EXPECT_NE(boundary->FindElement("pins.addr_bus"), nullptr);
  EXPECT_NE(boundary->FindElement("pins.data_bus"), nullptr);
}

TEST_F(ScanChainTest, TotalBitsMatchesGeometry) {
  // 15 regs + pc + ir + wdt (32 each) + edm status (10) + chip id (32)
  // + 2 caches x 16 lines x (1 + 24 + 4*32 + 4) bits.
  const std::size_t cache_bits = 2ull * 16 * (1 + 24 + 4 * 32 + 4);
  const std::size_t expected_internal = 18 * 32 + 10 + 32 + cache_bits;
  EXPECT_EQ(chains_.FindChain("internal")->bit_length(), expected_internal);
  EXPECT_EQ(chains_.FindChain("boundary")->bit_length(), 32u + 32 + 1);
  EXPECT_EQ(chains_.TotalBits(),
            expected_internal + 65);
}

TEST_F(ScanChainTest, CaptureReflectsCpuState) {
  cpu_.set_reg(3, 0xDEADBEEF);
  cpu_.set_pc(0x1234);
  const ScanChain* internal = chains_.FindChain("internal");
  const BitVector image = internal->Capture(cpu_);
  const ScanElement* r3 = internal->FindElement("cpu.regs.r3");
  EXPECT_EQ(image.GetField(r3->position, r3->width), 0xDEADBEEFu);
  const ScanElement* pc = internal->FindElement("cpu.pc");
  EXPECT_EQ(image.GetField(pc->position, pc->width), 0x1234u);
}

TEST_F(ScanChainTest, ApplyWritesBack) {
  const ScanChain* internal = chains_.FindChain("internal");
  BitVector image = internal->Capture(cpu_);
  const ScanElement* r7 = internal->FindElement("cpu.regs.r7");
  image.SetField(r7->position, r7->width, 0xCAFE);
  internal->Apply(cpu_, image);
  EXPECT_EQ(cpu_.reg(7), 0xCAFEu);
}

TEST_F(ScanChainTest, CaptureApplyRoundTripIsIdentity) {
  cpu_.set_reg(1, 0x11111111);
  cpu_.set_reg(15, 0xF555555F);
  cpu_.icache().line(3).valid = true;
  cpu_.icache().line(3).tag = 0x00ABCDEF & 0xFFFFFF;
  cpu_.icache().line(3).words[2] = 0x12345678;
  cpu_.icache().line(3).parity[2] = true;
  for (const ScanChain& chain : chains_.chains) {
    const BitVector before = chain.Capture(cpu_);
    chain.Apply(cpu_, before);
    const BitVector after = chain.Capture(cpu_);
    EXPECT_TRUE(before == after) << chain.name();
  }
  EXPECT_EQ(cpu_.reg(1), 0x11111111u);
  EXPECT_EQ(cpu_.icache().line(3).words[2], 0x12345678u);
  EXPECT_TRUE(cpu_.icache().line(3).parity[2]);
}

TEST_F(ScanChainTest, ReadOnlyElementsIgnoreWrites) {
  const ScanChain* internal = chains_.FindChain("internal");
  const ScanElement* chip_id = internal->FindElement("cpu.chip_id");
  ASSERT_EQ(chip_id->access, ScanAccess::kReadOnly);
  BitVector image = internal->Capture(cpu_);
  EXPECT_EQ(image.GetField(chip_id->position, chip_id->width), 0x7408D001u);
  image.SetField(chip_id->position, chip_id->width, 0);
  internal->Apply(cpu_, image);
  const BitVector again = internal->Capture(cpu_);
  EXPECT_EQ(again.GetField(chip_id->position, chip_id->width), 0x7408D001u);
}

TEST_F(ScanChainTest, EdmStatusReflectsEvents) {
  const ScanChain* internal = chains_.FindChain("internal");
  const ScanElement* status = internal->FindElement("cpu.edm_status");
  EXPECT_EQ(internal->Capture(cpu_).GetField(status->position,
                                             status->width),
            0u);
  // Run into an illegal instruction (memory is zero -> NOP... fetch from
  // unmapped eventually). Simpler: poke an illegal opcode at 0.
  cpu_.memory().PokeWord(0, 0xFF000000);
  cpu_.Reset(0);
  cpu_.Step();
  const std::uint64_t mask = internal->Capture(cpu_).GetField(
      status->position, status->width);
  EXPECT_EQ(mask, std::uint64_t{1}
                      << static_cast<int>(EdmType::kIllegalOpcode));
}

TEST_F(ScanChainTest, FindElementAcrossChains) {
  const auto found = chains_.FindElement("pins.data_bus");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->first->name(), "boundary");
  EXPECT_FALSE(chains_.FindElement("no.such.element").has_value());
}

TEST_F(ScanChainTest, CacheElementsAreLiveViews) {
  const ScanChain* internal = chains_.FindChain("internal");
  const ScanElement* data =
      internal->FindElement("dcache.line5.data1");
  ASSERT_NE(data, nullptr);
  cpu_.dcache().line(5).words[1] = 0xA5A5A5A5;
  EXPECT_EQ(data->get(cpu_), 0xA5A5A5A5u);
  data->set(cpu_, 0x5A5A5A5A);
  EXPECT_EQ(cpu_.dcache().line(5).words[1], 0x5A5A5A5Au);
}

}  // namespace
}  // namespace goofi::sim
