// Differential property test: every ALU operation of the GOOFI-32 CPU
// is executed on random operands and compared against the host's
// arithmetic — the reference semantics of isa.h.
#include <gtest/gtest.h>

#include <limits>

#include "sim/cpu.h"
#include "util/rng.h"

namespace goofi::sim {
namespace {

class AluFixture {
 public:
  AluFixture() {
    EXPECT_TRUE(cpu_.memory().AddSegment({"code", 0, 0x100, true, false,
                                          true, false}).ok());
    // Divide-by-zero stays an expected value (0) for this sweep.
    cpu_.edm_config().SetEnabled(EdmType::kDivByZero, false);
  }

  // Execute "op r3, r1, r2" with r1=a, r2=b and return r3.
  std::uint32_t RunR(Opcode opcode, std::uint32_t a, std::uint32_t b) {
    Instruction insn;
    insn.opcode = opcode;
    insn.ra = 3;
    insn.rb = 1;
    insn.rc = 2;
    return Execute(insn, a, b);
  }

  // Execute "op r3, r1, imm" with r1=a and return r3.
  std::uint32_t RunI(Opcode opcode, std::uint32_t a, std::int32_t imm) {
    Instruction insn;
    insn.opcode = opcode;
    insn.ra = 3;
    insn.rb = 1;
    insn.imm = imm;
    return Execute(insn, a, 0);
  }

 private:
  std::uint32_t Execute(const Instruction& insn, std::uint32_t a,
                        std::uint32_t b) {
    cpu_.memory().PokeWord(0, Encode(insn));
    cpu_.memory().PokeWord(4, 0x01000000);  // halt
    cpu_.Reset(0);
    cpu_.set_reg(1, a);
    cpu_.set_reg(2, b);
    const StepOutcome outcome = cpu_.Step();
    EXPECT_EQ(outcome.kind, StepOutcome::Kind::kRetired);
    return cpu_.reg(3);
  }

  Cpu cpu_;
};

class AluSweep : public ::testing::TestWithParam<int> {};

TEST_P(AluSweep, RTypeMatchesHostSemantics) {
  AluFixture alu;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48611 + 5);
  for (int round = 0; round < 200; ++round) {
    // Mix extremes in with uniform randoms.
    auto pick = [&]() -> std::uint32_t {
      switch (rng.NextBelow(6)) {
        case 0: return 0;
        case 1: return 1;
        case 2: return 0xFFFFFFFF;
        case 3: return 0x80000000;
        default: return static_cast<std::uint32_t>(rng.NextU64());
      }
    };
    const std::uint32_t a = pick();
    const std::uint32_t b = pick();
    const std::int32_t sa = static_cast<std::int32_t>(a);
    const std::int32_t sb = static_cast<std::int32_t>(b);

    EXPECT_EQ(alu.RunR(Opcode::kAdd, a, b), a + b);
    EXPECT_EQ(alu.RunR(Opcode::kSub, a, b), a - b);
    EXPECT_EQ(alu.RunR(Opcode::kMul, a, b), a * b);
    EXPECT_EQ(alu.RunR(Opcode::kAnd, a, b), a & b);
    EXPECT_EQ(alu.RunR(Opcode::kOr, a, b), a | b);
    EXPECT_EQ(alu.RunR(Opcode::kXor, a, b), a ^ b);
    EXPECT_EQ(alu.RunR(Opcode::kSll, a, b), a << (b & 31));
    EXPECT_EQ(alu.RunR(Opcode::kSrl, a, b), a >> (b & 31));
    EXPECT_EQ(alu.RunR(Opcode::kSra, a, b),
              static_cast<std::uint32_t>(sa >> (b & 31)));
    EXPECT_EQ(alu.RunR(Opcode::kSlt, a, b),
              static_cast<std::uint32_t>(sa < sb));
    EXPECT_EQ(alu.RunR(Opcode::kSltu, a, b),
              static_cast<std::uint32_t>(a < b));
    // Division (div-by-zero EDM disabled -> 0; INT_MIN/-1 -> INT_MIN).
    std::uint32_t expected_div;
    if (b == 0) {
      expected_div = 0;
    } else if (sa == std::numeric_limits<std::int32_t>::min() && sb == -1) {
      expected_div = a;
    } else {
      expected_div = static_cast<std::uint32_t>(sa / sb);
    }
    EXPECT_EQ(alu.RunR(Opcode::kDiv, a, b), expected_div)
        << "a=" << a << " b=" << b;
  }
}

TEST_P(AluSweep, ITypeMatchesHostSemantics) {
  AluFixture alu;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 11);
  for (int round = 0; round < 200; ++round) {
    const std::uint32_t a = static_cast<std::uint32_t>(rng.NextU64());
    const std::int32_t simm = static_cast<std::int32_t>(
        rng.NextInRange(-32768, 32767));
    const std::int32_t uimm = static_cast<std::int32_t>(
        rng.NextBelow(0x10000));

    // Signed immediates sign-extend.
    EXPECT_EQ(alu.RunI(Opcode::kAddi, a, simm),
              a + static_cast<std::uint32_t>(simm));
    EXPECT_EQ(alu.RunI(Opcode::kSlti, a, simm),
              static_cast<std::uint32_t>(static_cast<std::int32_t>(a) <
                                         simm));
    // Logical immediates zero-extend.
    EXPECT_EQ(alu.RunI(Opcode::kAndi, a, uimm),
              a & static_cast<std::uint32_t>(uimm));
    EXPECT_EQ(alu.RunI(Opcode::kOri, a, uimm),
              a | static_cast<std::uint32_t>(uimm));
    EXPECT_EQ(alu.RunI(Opcode::kXori, a, uimm),
              a ^ static_cast<std::uint32_t>(uimm));
    const std::uint32_t shift = static_cast<std::uint32_t>(uimm) & 31;
    EXPECT_EQ(alu.RunI(Opcode::kSlli, a, static_cast<std::int32_t>(shift)),
              a << shift);
    EXPECT_EQ(alu.RunI(Opcode::kSrli, a, static_cast<std::int32_t>(shift)),
              a >> shift);
    EXPECT_EQ(alu.RunI(Opcode::kSrai, a, static_cast<std::int32_t>(shift)),
              static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                         shift));
    EXPECT_EQ(alu.RunI(Opcode::kLui, a, uimm),
              static_cast<std::uint32_t>(uimm) << 16);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AluSweep, ::testing::Range(0, 5));

}  // namespace
}  // namespace goofi::sim
