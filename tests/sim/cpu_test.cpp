#include "sim/cpu.h"

#include <gtest/gtest.h>

#include "sim/assembler.h"
#include "sim/debug_unit.h"

namespace goofi::sim {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  void Boot(const std::string& source, CpuConfig config = {}) {
    cpu_ = std::make_unique<Cpu>(config);
    ASSERT_TRUE(cpu_->memory().AddSegment({"code", 0x0000, 0x4000, true,
                                           false, true, false}).ok());
    ASSERT_TRUE(cpu_->memory().AddSegment({"data", 0x10000, 0x4000, true,
                                           true, false, false}).ok());
    ASSERT_TRUE(cpu_->memory().AddSegment({"io", 0xFFFF0000, 0x100, true,
                                           true, false, true}).ok());
    const auto program = Assemble(source);
    ASSERT_TRUE(program.ok()) << program.status().ToString();
    ASSERT_TRUE(program->LoadInto(cpu_->memory()).ok());
    cpu_->Reset(program->entry);
  }

  RunResult RunAll(std::uint64_t budget = 100000) {
    return goofi::sim::Run(*cpu_, nullptr, budget);
  }

  std::unique_ptr<Cpu> cpu_;
};

TEST_F(CpuTest, ArithmeticBasics) {
  Boot(R"(
  li r1, 20
  li r2, 22
  add r3, r1, r2
  sub r4, r1, r2
  mul r5, r1, r2
  div r6, r2, r1
  halt
)");
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kHalted);
  EXPECT_EQ(cpu_->reg(3), 42u);
  EXPECT_EQ(cpu_->reg(4), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(cpu_->reg(5), 440u);
  EXPECT_EQ(cpu_->reg(6), 1u);
}

TEST_F(CpuTest, LogicAndShifts) {
  Boot(R"(
  li r1, 0x00F0
  li r2, 0x0F00
  or r3, r1, r2
  and r4, r1, r2
  xor r5, r3, r1
  li r6, 4
  sll r7, r1, r6
  srl r8, r1, r6
  li r9, -16
  srai r10, r9, 2
  slt r11, r9, r1
  sltu r12, r9, r1
  halt
)");
  RunAll();
  EXPECT_EQ(cpu_->reg(3), 0x0FF0u);
  EXPECT_EQ(cpu_->reg(4), 0u);
  EXPECT_EQ(cpu_->reg(5), 0x0F00u);
  EXPECT_EQ(cpu_->reg(7), 0x0F00u);
  EXPECT_EQ(cpu_->reg(8), 0x000Fu);
  EXPECT_EQ(cpu_->reg(10), static_cast<std::uint32_t>(-4));
  EXPECT_EQ(cpu_->reg(11), 1u);  // signed: -16 < 240
  EXPECT_EQ(cpu_->reg(12), 0u);  // unsigned: big
}

TEST_F(CpuTest, RegisterZeroIsHardwired) {
  Boot(R"(
  addi r0, r0, 99
  add r1, r0, r0
  halt
)");
  RunAll();
  EXPECT_EQ(cpu_->reg(0), 0u);
  EXPECT_EQ(cpu_->reg(1), 0u);
}

TEST_F(CpuTest, LoadStoreWordAndByte) {
  Boot(R"(
  la r1, 0x10000
  li r2, 0x1234
  st r2, [r1]
  ld r3, [r1]
  li r4, 0xAB
  stb r4, [r1+5]
  ldb r5, [r1+5]
  halt
)");
  RunAll();
  EXPECT_EQ(cpu_->reg(3), 0x1234u);
  EXPECT_EQ(cpu_->reg(5), 0xABu);
}

TEST_F(CpuTest, BranchesAndLoop) {
  Boot(R"(
  li r1, 0     ; sum
  li r2, 1     ; i
  li r3, 11
loop:
  bge r2, r3, done
  add r1, r1, r2
  addi r2, r2, 1
  b loop
done:
  halt
)");
  RunAll();
  EXPECT_EQ(cpu_->reg(1), 55u);
}

TEST_F(CpuTest, CallReturn) {
  Boot(R"(
  la sp, 0x14000
  li r1, 5
  call double_it
  mov r3, r1
  halt
double_it:
  add r1, r1, r1
  ret
)");
  RunAll();
  EXPECT_EQ(cpu_->reg(3), 10u);
}

TEST_F(CpuTest, EmitStream) {
  Boot(R"(
  li r1, 111
  sys 4
  li r1, 222
  sys 4
  halt
)");
  RunAll();
  EXPECT_EQ(cpu_->emitted(), (std::vector<std::uint32_t>{111, 222}));
}

TEST_F(CpuTest, IterationEndOutcome) {
  Boot(R"(
loop:
  sys 1
  b loop
)");
  std::uint64_t budget = 100;
  const RunResult result = goofi::sim::Run(*cpu_, nullptr, budget, /*max_iterations=*/3);
  EXPECT_EQ(result.reason, StopReason::kIterationLimit);
  EXPECT_EQ(cpu_->iteration_count(), 3u);
}

TEST_F(CpuTest, RecoveryCounter) {
  Boot("sys 5\nsys 5\nhalt\n");
  RunAll();
  EXPECT_EQ(cpu_->recovery_count(), 2u);
}

// ---- EDM behaviour -------------------------------------------------------

TEST_F(CpuTest, IllegalOpcodeDetected) {
  Boot(".word 0xFF000000\n");
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kEdm);
  ASSERT_TRUE(result.edm.has_value());
  EXPECT_EQ(result.edm->type, EdmType::kIllegalOpcode);
  EXPECT_TRUE(cpu_->halted());
}

TEST_F(CpuTest, IllegalOpcodeAsNopWhenDisabled) {
  CpuConfig config;
  config.edm.SetEnabled(EdmType::kIllegalOpcode, false);
  Boot(".word 0xFF000000\nli r1, 7\nhalt\n", config);
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kHalted);
  EXPECT_EQ(cpu_->reg(1), 7u);
}

TEST_F(CpuTest, UndefinedSysCodeIsIllegal) {
  Boot("sys 999\n");
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_EQ(result.edm->type, EdmType::kIllegalOpcode);
}

TEST_F(CpuTest, DivByZeroDetected) {
  Boot(R"(
  li r1, 5
  li r2, 0
  div r3, r1, r2
  halt
)");
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_EQ(result.edm->type, EdmType::kDivByZero);
}

TEST_F(CpuTest, DivByZeroYieldsZeroWhenDisabled) {
  CpuConfig config;
  config.edm.SetEnabled(EdmType::kDivByZero, false);
  Boot(R"(
  li r1, 5
  li r2, 0
  div r3, r1, r2
  halt
)", config);
  EXPECT_EQ(RunAll().reason, StopReason::kHalted);
  EXPECT_EQ(cpu_->reg(3), 0u);
}

TEST_F(CpuTest, MemProtectionOnStoreToCode) {
  Boot(R"(
  li r1, 0x100
  li r2, 1
  st r2, [r1]
  halt
)");
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_EQ(result.edm->type, EdmType::kMemProtection);
}

TEST_F(CpuTest, MemProtectionOnUnmappedLoad) {
  Boot(R"(
  lui r1, 0x00F0
  ld r2, [r1]
  halt
)");
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_EQ(result.edm->type, EdmType::kMemProtection);
}

TEST_F(CpuTest, DisabledProtectionReadsZeroDropsStores) {
  CpuConfig config;
  config.edm.SetEnabled(EdmType::kMemProtection, false);
  Boot(R"(
  lui r1, 0x00F0
  li r2, 77
  st r2, [r1]
  ld r3, [r1]
  halt
)", config);
  EXPECT_EQ(RunAll().reason, StopReason::kHalted);
  EXPECT_EQ(cpu_->reg(3), 0u);
}

TEST_F(CpuTest, MisalignedLoadDetected) {
  Boot(R"(
  la r1, 0x10002
  ld r2, [r1]
  halt
)");
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_EQ(result.edm->type, EdmType::kMisalignedAccess);
}

TEST_F(CpuTest, PcOutOfRangeOnRunawayJump) {
  Boot(R"(
  la r1, 0x10000      ; data segment: not executable
  jalr r0, r1
)");
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_EQ(result.edm->type, EdmType::kPcOutOfRange);
}

TEST_F(CpuTest, ArithOverflowOnlyWhenEnabled) {
  const char* source = R"(
  lui r1, 0x7FFF
  ori r1, r1, 0xFFFF
  addi r2, r1, 1
  halt
)";
  Boot(source);
  EXPECT_EQ(RunAll().reason, StopReason::kHalted);  // disabled by default

  CpuConfig config;
  config.edm.SetEnabled(EdmType::kArithOverflow, true);
  Boot(source, config);
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_EQ(result.edm->type, EdmType::kArithOverflow);
}

TEST_F(CpuTest, AssertionSysCode) {
  Boot("sys 2\nhalt\n");
  const RunResult result = RunAll();
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_EQ(result.edm->type, EdmType::kAssertion);
}

TEST_F(CpuTest, WatchdogFiresWithoutKicks) {
  CpuConfig config;
  config.watchdog_period = 50;
  Boot(R"(
loop:
  b loop
)", config);
  const RunResult result = RunAll(10000);
  EXPECT_EQ(result.reason, StopReason::kEdm);
  EXPECT_EQ(result.edm->type, EdmType::kWatchdog);
  EXPECT_LE(result.instructions_executed, 52u);
}

TEST_F(CpuTest, WatchdogKickKeepsRunning) {
  CpuConfig config;
  config.watchdog_period = 50;
  Boot(R"(
  li r1, 200
loop:
  sys 3
  addi r1, r1, -1
  bne r1, r0, loop
  halt
)", config);
  EXPECT_EQ(RunAll(10000).reason, StopReason::kHalted);
}

// ---- fault-injection-relevant microarchitecture -------------------------

TEST_F(CpuTest, PrefetchMakesIrLive) {
  Boot(R"(
  li r1, 1
  li r2, 2
  halt
)");
  cpu_->Step();  // executes li r1, prefetches li r2
  // Corrupt IR: change "li r2, 2" (addi r2,r0,2) into addi r2,r0,3.
  cpu_->set_ir(cpu_->ir() ^ 0x1);
  cpu_->Step();
  EXPECT_EQ(cpu_->reg(2), 3u);  // the corrupted instruction executed
}

TEST_F(CpuTest, PcCorruptionCausesControlFlowError) {
  Boot(R"(
  li r1, 1
  li r2, 2
  halt
)");
  cpu_->Step();
  cpu_->set_pc(0x10000);  // stale IR still executes, then fetch goes wild
  cpu_->Step();
  EXPECT_EQ(cpu_->reg(2), 2u);  // prefetched instruction was still good
  EXPECT_TRUE(cpu_->halted());  // fetch from data segment -> PC EDM
  EXPECT_EQ(cpu_->edm_events().back().type, EdmType::kPcOutOfRange);
}

TEST_F(CpuTest, PostStepHooksRunAndRemove) {
  Boot(R"(
  li r1, 1
  li r2, 2
  li r3, 3
  halt
)");
  int calls = 0;
  const int id = cpu_->AddPostStepHook([&calls](Cpu&) { ++calls; });
  cpu_->Step();
  cpu_->Step();
  cpu_->RemovePostStepHook(id);
  cpu_->Step();
  EXPECT_EQ(calls, 2);
}

TEST_F(CpuTest, StuckAtHookForcesBit) {
  Boot(R"(
  li r1, 0
  li r1, 0
  li r1, 0
  halt
)");
  cpu_->AddPostStepHook([](Cpu& cpu) {
    cpu.set_reg(1, cpu.reg(1) | 0x10);  // stuck-at-1 on bit 4
  });
  RunAll();
  EXPECT_EQ(cpu_->reg(1), 0x10u);
}

TEST_F(CpuTest, ResetClearsArchitecturalState) {
  Boot(R"(
  li r1, 99
  sys 4
  halt
)");
  RunAll();
  EXPECT_TRUE(cpu_->halted());
  cpu_->Reset(0);
  EXPECT_FALSE(cpu_->halted());
  EXPECT_EQ(cpu_->reg(1), 0u);
  EXPECT_EQ(cpu_->instret(), 0u);
  EXPECT_TRUE(cpu_->emitted().empty());
  EXPECT_TRUE(cpu_->edm_events().empty());
  // And it runs again identically.
  RunAll();
  EXPECT_EQ(cpu_->emitted(), (std::vector<std::uint32_t>{99}));
}

TEST_F(CpuTest, UncachedIoBypassesDataCache) {
  Boot(R"(
  lui r1, 0xFFFF
  ld r2, [r1]       ; first read caches nothing (uncacheable)
  ld r3, [r1]       ; must see the poked value
  halt
)");
  // Poke happens between the two loads via a hook after the first load.
  int steps = 0;
  cpu_->AddPostStepHook([&steps](Cpu& cpu) {
    if (++steps == 2) {  // after "ld r2"
      cpu.memory().PokeWord(0xFFFF0000, 42);
    }
  });
  RunAll();
  EXPECT_EQ(cpu_->reg(2), 0u);
  EXPECT_EQ(cpu_->reg(3), 42u);
}

TEST_F(CpuTest, TracerObservesAccesses) {
  class CountingTracer : public Tracer {
   public:
    int instructions = 0;
    int reg_writes = 0;
    int mem_reads = 0;
    int mem_writes = 0;
    void OnInstructionRetired(const Cpu&, const Instruction&, std::uint64_t,
                              std::uint32_t) override {
      ++instructions;
    }
    void OnRegisterWrite(unsigned, std::uint32_t, std::uint32_t,
                         std::uint64_t) override {
      ++reg_writes;
    }
    void OnMemoryRead(std::uint32_t, unsigned, std::uint64_t) override {
      ++mem_reads;
    }
    void OnMemoryWrite(std::uint32_t, unsigned, std::uint32_t,
                       std::uint64_t) override {
      ++mem_writes;
    }
  };
  Boot(R"(
  la r1, 0x10000
  li r2, 5
  st r2, [r1]
  ld r3, [r1]
  halt
)");
  CountingTracer tracer;
  cpu_->set_tracer(&tracer);
  RunAll();
  EXPECT_EQ(tracer.instructions, 6);  // la = 2 instructions
  EXPECT_EQ(tracer.mem_reads, 1);
  EXPECT_EQ(tracer.mem_writes, 1);
  EXPECT_GE(tracer.reg_writes, 4);
}

}  // namespace
}  // namespace goofi::sim
