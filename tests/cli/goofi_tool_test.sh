#!/bin/sh
# End-to-end exercise of the goofi_tool CLI: the four phases of §3 run
# as separate processes against a persisted database directory, the way
# the paper's tool is operated across GUI sessions.
set -eu

TOOL="$1"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

# --- configuration-phase listings -------------------------------------
"$TOOL" targets | grep -q thor_rd || fail "targets must list thor_rd"
"$TOOL" targets | grep -q "thor " || fail "targets must list thor"
"$TOOL" workloads | grep -q engine_control || fail "workloads listing"
"$TOOL" schema | grep -q "CREATE TABLE LoggedSystemState" \
  || fail "schema printout"

# --- set-up + fault-injection phase ------------------------------------
cat > campaign.ini <<'EOF'
[campaign]
name = cli_demo
workload = fib
technique = scifi
experiments = 25
seed = 9
location[] = cpu.regs.*
EOF
"$TOOL" run campaign.ini --db dbdir > run.out 2>&1 \
  || fail "run exited nonzero: $(cat run.out)"
grep -q "25 experiments run" run.out || fail "run must report 25 experiments"
grep -q "Detection coverage" run.out || fail "run must print the analysis"
# New databases are created in the WAL format (src/db/wal.h).
test -f dbdir/wal.log || fail "database directory must persist (wal.log)"
test -f dbdir/snapshot.manifest || fail "snapshot manifest must persist"

# --- analysis phase (separate process, reloaded database) ---------------
"$TOOL" analyze cli_demo --db dbdir | grep -q "25 experiments" \
  || fail "analyze from persisted db"
"$TOOL" export cli_demo --db dbdir > export.csv || fail "export"
# header + 25 rows
LINES=$(grep -c . export.csv)
test "$LINES" -eq 26 || fail "export must have 26 lines, got $LINES"
grep -q "^experiment,location,category" export.csv || fail "csv header"

# --- SQL access ----------------------------------------------------------
"$TOOL" sql "SELECT COUNT(*) FROM LoggedSystemState WHERE campaign_name = 'cli_demo'" \
  --db dbdir | grep -q "26" || fail "sql count (25 + reference)"
"$TOOL" sql "SELECT experiment_name FROM LoggedSystemState WHERE \
experiment_name LIKE '%reference' OR experiment_name IN ('cli_demo/exp00003')" \
  --db dbdir | grep -q "exp00003" || fail "sql boolean WHERE"

# --- detail re-run (parentExperiment) ------------------------------------
"$TOOL" rerun cli_demo/exp00001 --db dbdir | grep -q "detail0" \
  || fail "rerun"
"$TOOL" sql "SELECT COUNT(*) FROM LoggedSystemState WHERE parent_experiment IS NOT NULL" \
  --db dbdir | grep -q "1" || fail "child row persisted"

# --- resume is a no-op on a completed campaign ---------------------------
"$TOOL" resume cli_demo --db dbdir > resume.out 2>&1 || fail "resume"
grep -q "0 experiments run" resume.out || fail "resume no-op"

# --- error paths ----------------------------------------------------------
"$TOOL" analyze nonexistent --db dbdir 2>&1 | grep -qi "error" \
  || fail "analyze of unknown campaign must error"
"$TOOL" sql "SELEC broken" --db dbdir 2>&1 | grep -qi "error" \
  || fail "bad SQL must error"
if "$TOOL" run campaign.ini --db dbdir > rerun2.out 2>&1; then
  fail "re-running a completed campaign must fail (use resume)"
fi

echo "goofi_tool CLI: all checks passed"
