#!/bin/sh
# End-to-end exercise of the goofi_serve daemon: submissions over the
# Unix socket, multi-tenant scheduling, kill -9 mid-campaign, restart,
# graceful drain — and the robustness contract at the center of it all:
# the daemon's results databases must be BYTE-identical to one-shot
# goofi_tool runs of the same campaign inis, at different worker counts.
set -eu

SERVE="$1"
SUBMIT="$2"
TOOL="$3"
WORK=$(mktemp -d)
SERVE_PID=""
trap 'test -n "$SERVE_PID" && kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

SOCK="$WORK/serve.sock"
ROOT="$WORK/root"

# Wait for the daemon to answer pings (it unlinks/creates the socket).
await_daemon() {
  i=0
  while ! "$SUBMIT" --socket "$SOCK" ping >/dev/null 2>&1; do
    i=$((i + 1))
    test "$i" -lt 100 || fail "daemon never answered ping"
    sleep 0.1
  done
}

# Wait until the submission with id $1 reaches journal state $2.
await_state() {
  i=0
  while true; do
    STATE=$("$SUBMIT" --socket "$SOCK" status "$1" | awk '{print $3}')
    test "$STATE" = "$2" && return 0
    case "$STATE" in failed|cancelled)
      test "$STATE" = "$2" || fail "submission $1 is $STATE, wanted $2";;
    esac
    i=$((i + 1))
    test "$i" -lt 1200 || fail "submission $1 stuck in $STATE, wanted $2"
    sleep 0.1
  done
}

# Two campaigns, sized for a couple of cadence commits each, one serial
# and one sharded (the daemon multiplexes both over its fleet).
cat > alpha.ini <<'EOF'
[campaign]
name = alpha
workload = fib
technique = scifi
experiments = 70
seed = 9
location[] = cpu.regs.*
EOF
cat > beta.ini <<'EOF'
[campaign]
name = beta
workload = isort
technique = scifi
experiments = 70
seed = 23
location[] = cpu.regs.*
jobs = 2
EOF

# --- reference: one-shot goofi_tool runs of the same inis ---------------
"$TOOL" run alpha.ini --db ref_alpha > /dev/null 2>&1 || fail "ref alpha"
"$TOOL" run beta.ini --db ref_beta > /dev/null 2>&1 || fail "ref beta"

# --- life 1: submit both, then kill -9 mid-run ---------------------------
"$SERVE" --root "$ROOT" --socket "$SOCK" --fleet 3 > serve1.log 2>&1 &
SERVE_PID=$!
await_daemon

"$SUBMIT" --socket "$SOCK" ping | grep -q pong || fail "ping"
OUT=$("$SUBMIT" --socket "$SOCK" submit alpha.ini) || fail "submit alpha"
echo "$OUT" | grep -q "id 1" || fail "alpha must get id 1, got: $OUT"
OUT=$("$SUBMIT" --socket "$SOCK" submit beta.ini) || fail "submit beta"
echo "$OUT" | grep -q "id 2" || fail "beta must get id 2, got: $OUT"

# Duplicate names are rejected at submit time, not at run time.
if "$SUBMIT" --socket "$SOCK" submit alpha.ini > dup.out 2>&1; then
  fail "duplicate submit must fail"
fi
grep -q ALREADY_EXISTS dup.out || fail "duplicate must say ALREADY_EXISTS"

await_state 1 running
await_state 2 running
# SIGKILL: no drain, no cleanup. The journal and the campaigns' WAL
# checkpoints are all that survives.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# --- life 2: restart resumes both in-flight campaigns --------------------
# This life boots from a [service] deployment ini (the same format
# goofi_lint checks) instead of flags, at a different fleet width.
cat > serve.ini <<EOF
[service]
root = $ROOT
socket = $SOCK
fleet_workers = 2
EOF
"$SERVE" --config serve.ini > serve2.log 2>&1 &
SERVE_PID=$!
await_daemon
# The journal replay must show both campaigns, still owned by the fleet.
"$SUBMIT" --socket "$SOCK" status | grep -q "alpha" || fail "alpha in status"
"$SUBMIT" --socket "$SOCK" status | grep -q "beta" || fail "beta in status"
await_state 1 completed
await_state 2 completed

# watch on a completed campaign terminates immediately with its state.
"$SUBMIT" --socket "$SOCK" watch 1 | grep -q "end completed" || fail "watch"

# --- the robustness claim: byte-identical to the one-shot runs -----------
cmp -s "$ROOT/campaigns/alpha/wal.log" ref_alpha/wal.log \
  || fail "alpha database differs from one-shot goofi_tool run"
cmp -s "$ROOT/campaigns/beta/wal.log" ref_beta/wal.log \
  || fail "beta database differs from one-shot goofi_tool run"
# And readable by the ordinary toolchain.
"$TOOL" analyze alpha --db "$ROOT/campaigns/alpha" | grep -q "70 experiments" \
  || fail "daemon database must analyze like any other"

# --- backpressure: a full queue is an explicit error ---------------------
if "$SUBMIT" --socket "$SOCK" submit alpha.ini > dup2.out 2>&1; then
  fail "resubmitting a completed campaign must still fail (name taken)"
fi

# --- single instance: a second daemon on the same root is refused --------
if "$SERVE" --root "$ROOT" --socket "$WORK/second.sock" > second.log 2>&1; then
  fail "a second daemon on the same root must fail"
fi
grep -q ALREADY_EXISTS second.log || fail "second daemon must say ALREADY_EXISTS"
# ... and it must not have stolen the live daemon's socket.
"$SUBMIT" --socket "$SOCK" ping | grep -q pong || fail "ping after second daemon"

# --- watch exit code: cancelled/failed is not success --------------------
cat > delta.ini <<'EOF'
[campaign]
name = delta
workload = fib
technique = scifi
experiments = 4000
seed = 3
location[] = cpu.regs.*
EOF
"$SUBMIT" --socket "$SOCK" submit delta.ini > /dev/null || fail "submit delta"
await_state 3 running
"$SUBMIT" --socket "$SOCK" cancel 3 > /dev/null || fail "cancel delta"
await_state 3 cancelled
if "$SUBMIT" --socket "$SOCK" watch 3 > watch3.out; then
  fail "watch of a cancelled campaign must exit nonzero"
fi
grep -q "end cancelled" watch3.out || fail "watch must report end cancelled"

# --- graceful drain: SIGTERM => exit 0 -----------------------------------
kill -TERM "$SERVE_PID"
i=0
while kill -0 "$SERVE_PID" 2>/dev/null; do
  i=$((i + 1))
  test "$i" -lt 300 || fail "daemon did not drain after SIGTERM"
  sleep 0.1
done
wait "$SERVE_PID" && RC=0 || RC=$?
SERVE_PID=""
test "$RC" -eq 0 || fail "SIGTERM drain must exit 0, got $RC"

# --- client-side failure modes ------------------------------------------
if "$SUBMIT" --socket "$SOCK" ping > /dev/null 2>&1; then
  fail "ping must fail once the daemon is gone"
fi

# --- one-shot goofi_tool drains on SIGINT with exit code 3 ---------------
cat > gamma.ini <<'EOF'
[campaign]
name = gamma
workload = fib
technique = scifi
experiments = 4000
seed = 5
location[] = cpu.regs.*
EOF
"$TOOL" run gamma.ini --db gamma_db > gamma.out 2>&1 &
TOOL_PID=$!
sleep 1
kill -INT "$TOOL_PID"
wait "$TOOL_PID" && RC=0 || RC=$?
test "$RC" -eq 3 || fail "interrupted goofi_tool must exit 3, got $RC"
grep -q "checkpoint saved" gamma.out || fail "drain message"
# The checkpointed campaign resumes to completion.
"$TOOL" resume gamma --db gamma_db > /dev/null 2>&1 || fail "resume gamma"
"$TOOL" analyze gamma --db gamma_db | grep -q "4000 experiments" \
  || fail "resumed gamma incomplete"

echo "goofi_serve CLI: all checks passed"
