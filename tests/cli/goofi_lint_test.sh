#!/bin/sh
# End-to-end exercise of the goofi_lint CLI: diagnostics go to stderr in
# file:line format and the exit status drives CI (0 clean, 1 findings,
# 2 usage error).
set -eu

LINT="$1"
REPO="$2"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

# --- usage ---------------------------------------------------------------
"$LINT" --help | grep -q usage || fail "--help must print usage"
if "$LINT" > /dev/null 2>&1; then
  fail "no files must exit 2"
else
  test $? -eq 2 || fail "no files must exit 2, got $?"
fi

# --- clean assembly exits 0 ----------------------------------------------
cat > clean.s <<'EOF'
.entry start
start:
  li r1, 3
  halt
EOF
"$LINT" clean.s 2> clean.err || fail "clean source must exit 0"
test ! -s clean.err || fail "clean source must print nothing"

# --- errors exit 1 with file:line diagnostics ----------------------------
cat > broken.s <<'EOF'
.entry start
start:
  frobnicate r1
EOF
if "$LINT" broken.s 2> broken.err; then
  fail "assembler error must exit 1"
fi
grep -q "broken.s:3: error:" broken.err || fail "file:line anchor"
grep -q "asm-error" broken.err || fail "check id in output"
grep -q "goofi-lint: 1 diagnostic" broken.err || fail "summary line"

# --- warnings exit 0, --strict promotes them to failures -----------------
cat > warn.s <<'EOF'
.entry start
start:
  b done
  li r9, 1
done:
  halt
EOF
"$LINT" warn.s 2> warn.err || fail "warnings alone must exit 0"
grep -q "warn.s:4: warning:.*unreachable-code" warn.err \
  || fail "unreachable-code warning"
if "$LINT" --strict warn.s > /dev/null 2>&1; then
  fail "--strict must fail on warnings"
fi

# --- campaign definitions ------------------------------------------------
cat > bad.ini <<'EOF'
[campaign]
name = demo
workload = nosuch
EOF
if "$LINT" bad.ini 2> bad.err; then
  fail "unknown workload must exit 1"
fi
grep -q "unknown-workload" bad.err || fail "campaign diagnostic"

# --- cache fault models resolve locations per campaign target ------------
cat > cache_wrong_board.ini <<'EOF'
[campaign]
name = demo
target = thor_rd
technique = scifi
workload = isort
fault_model = cache_data_bit
experiments = 10
EOF
if "$LINT" cache_wrong_board.ini 2> cache_wrong.err; then
  fail "cache model without cache geometry must exit 1"
fi
grep -q "cache-model-without-geometry" cache_wrong.err \
  || fail "cache-model-without-geometry diagnostic"

cat > cache_oob.ini <<'EOF'
[campaign]
name = demo
target = cache_hierarchy
technique = scifi
workload = isort
fault_model = cache_data_bit
experiments = 10
location[] = dcache.set99.word0.data
EOF
if "$LINT" cache_oob.ini 2> cache_oob.err; then
  fail "out-of-range cache coordinate must exit 1"
fi
grep -q "coordinate-out-of-range" cache_oob.err \
  || fail "coordinate-out-of-range diagnostic"
grep -q "set15" cache_oob.err \
  || fail "diagnostic must name the real geometry maxima"

cat > cache_clean.ini <<'EOF'
[campaign]
name = demo
target = cache_hierarchy
technique = scifi
workload = isort
fault_model = inflight_load_bit
experiments = 10
location[] = icache.set*.word*.inflight
EOF
"$LINT" cache_clean.ini 2> cache_clean.err \
  || fail "cache campaign on the cache board must lint clean"
test ! -s cache_clean.err || fail "clean cache campaign must print nothing"

# --- --format=json emits machine-readable diagnostics to stdout ----------
if "$LINT" --format=json broken.s > broken.json 2> broken_json.err; then
  fail "JSON mode must keep the failing exit status"
fi
grep -q '"check": "asm-error"' broken.json || fail "JSON check id"
grep -q '"line": 3' broken.json || fail "JSON line number"
grep -q '"severity": "error"' broken.json || fail "JSON severity"
test ! -s broken_json.err || fail "JSON mode must not also print text"
"$LINT" --format=json clean.s > clean.json || fail "clean JSON must exit 0"
grep -q '^\[\]$' clean.json || fail "clean JSON must be an empty array"
"$LINT" --format=text clean.s || fail "--format=text must be accepted"
if "$LINT" --format=yaml clean.s > /dev/null 2>&1; then
  fail "unknown format must exit 2"
else
  test $? -eq 2 || fail "unknown format must exit 2, got $?"
fi

# --- [service] deployment inis -------------------------------------------
cat > serve_bad.ini <<'EOF'
[service]
fleet_workers = 2
max_campaign_jobs = 8
queue_limit = 0
EOF
if "$LINT" serve_bad.ini 2> serve_bad.err; then
  fail "oversubscribed service ini must exit 1"
fi
grep -q "jobs-exceed-fleet" serve_bad.err || fail "jobs-exceed-fleet check"
grep -q "serve_bad.ini:4: error:.*queue_limit" serve_bad.err \
  || fail "queue_limit diagnostic with line anchor"

cat > serve_typo.ini <<'EOF'
[service]
fleet_wrokers = 4
EOF
"$LINT" serve_typo.ini 2> serve_typo.err || fail "typo alone is a warning"
grep -q "warning:.*unknown-key" serve_typo.err \
  || fail "unknown [service] key warning"

cat > serve_clean.ini <<'EOF'
[service]
root = /tmp/goofi
fleet_workers = 4
queue_limit = 8
max_campaign_jobs = 2
EOF
"$LINT" serve_clean.ini 2> serve_clean.err \
  || fail "clean service ini must exit 0"
test ! -s serve_clean.err || fail "clean service ini must print nothing"

# --- repeated (file, line, check) diagnostics are reported once ----------
cat > dup.s <<'EOF'
.entry start
start:
  add r3, r1, r2
  halt
EOF
"$LINT" dup.s 2> dup.err || fail "uninit reads are warnings, exit 0"
test "$(grep -c 'maybe-uninit-read' dup.err)" = 1 \
  || fail "r1 and r2 uninit reads on one line must dedup to one"

# --- the repository's own inputs must stay clean -------------------------
"$LINT" "$REPO"/workloads/*.workload "$REPO"/campaigns/*.ini \
  || fail "shipped workloads and campaigns must lint clean"

echo "goofi_lint CLI: all checks passed"
