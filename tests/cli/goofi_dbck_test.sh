#!/bin/sh
# End-to-end exercise of goofi_dbck: verify/repair on a damaged WAL
# directory, plus the text<->WAL migration round trip, against a real
# campaign database produced by goofi_tool.
set -eu

DBCK="$1"
TOOL="$2"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

fail() { echo "FAIL: $1" >&2; exit 1; }

cat > campaign.ini <<'EOF'
[campaign]
name = dbck_demo
workload = fib
technique = scifi
experiments = 10
seed = 4
location[] = cpu.regs.*
EOF
"$TOOL" run campaign.ini --db dbdir > /dev/null 2>&1 || fail "seed campaign"

# --- verify on a healthy WAL directory ---------------------------------
"$DBCK" verify dbdir > verify.out || fail "verify must exit 0 when clean"
grep -q "WAL format" verify.out || fail "verify must report the format"
grep -q "verdict: clean" verify.out || fail "clean verdict"

# --- torn tail: verify flags it, repair heals it ------------------------
cp dbdir/wal.log wal.log.bak
printf 'torn-frame-garbage' >> dbdir/wal.log
if "$DBCK" verify dbdir > verify2.out; then
  fail "verify must exit nonzero on a torn log"
fi
grep -q "verdict: recoverable" verify2.out || fail "recoverable verdict"
"$DBCK" repair dbdir > repair.out || fail "repair"
grep -q "tail bytes dropped" repair.out || fail "repair must report the drop"
"$DBCK" verify dbdir > /dev/null || fail "verify must be clean after repair"
cmp -s dbdir/wal.log wal.log.bak || fail "repair must restore the exact log"

# --- compact ------------------------------------------------------------
"$DBCK" compact dbdir > compact.out || fail "compact"
grep -q "generation" compact.out || fail "compact must report the generation"
"$TOOL" analyze dbck_demo --db dbdir | grep -q "10 experiments" \
  || fail "analyze after compact"

# --- demote to legacy text, then migrate back ---------------------------
"$DBCK" demote dbdir > /dev/null || fail "demote"
test -f dbdir/manifest.txt || fail "demote must write the text manifest"
test ! -f dbdir/wal.log || fail "demote must drop the log"
"$DBCK" verify dbdir | grep -q "legacy text" || fail "verify on text dir"
"$TOOL" analyze dbck_demo --db dbdir | grep -q "10 experiments" \
  || fail "analyze on demoted db"

"$DBCK" migrate dbdir > /dev/null || fail "migrate"
test -f dbdir/wal.log || fail "migrate must create the log"
test ! -f dbdir/manifest.txt || fail "migrate must retire manifest.txt"
"$DBCK" verify dbdir > /dev/null || fail "verify after migrate"
"$TOOL" analyze dbck_demo --db dbdir | grep -q "10 experiments" \
  || fail "analyze on migrated db"

# --- error paths --------------------------------------------------------
"$DBCK" verify /nonexistent 2>&1 | grep -qi "error" \
  || fail "verify of a missing dir must error"
if "$DBCK" bogus dbdir > /dev/null 2>&1; then
  fail "unknown subcommand must fail"
fi

echo "goofi_dbck CLI: all checks passed"
