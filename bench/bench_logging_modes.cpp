// Experiment T-MODES (DESIGN.md): normal vs detail logging mode.
//
// Paper §3.3: "In normal mode, the system state is logged only when the
// termination condition is fulfilled. In detail mode the system state is
// logged as frequently as the target system allows, typically after the
// execution of each machine instruction, which increases the
// time-overhead. ... (Such logging is normally not done for each fault
// in a campaign because it is too time-consuming.)"
#include "bench_util.h"

int main() {
  using namespace goofi;
  std::printf("== T-MODES: normal vs detail logging mode ==\n\n");
  std::printf("%-14s %-8s %8s | %12s %14s %12s\n", "workload", "mode", "N",
              "wall (s)", "state-vector", "overhead");
  std::printf("%-14s %-8s %8s | %12s %14s %12s\n", "", "", "", "",
              "(bytes/exp)", "(x normal)");

  for (const std::string workload : {"fib", "crc32", "engine_control"}) {
    double normal_seconds = 0.0;
    for (const bool detail : {false, true}) {
      db::Database database;
      target::ThorRdTarget target;
      core::CampaignConfig config;
      config.name = workload + (detail ? "_detail" : "_normal");
      config.workload = workload;
      config.num_experiments = 40;
      config.seed = 8;
      config.location_filters = {"cpu.regs.*"};
      config.logging_mode = detail ? target::LoggingMode::kDetail
                                   : target::LoggingMode::kNormal;
      const bench::CampaignRun run =
          bench::RunCampaign(database, target, config);
      if (!detail) normal_seconds = run.wall_seconds;

      // Average logged state-vector size across the campaign's rows.
      std::uint64_t bytes = 0;
      std::uint64_t rows = 0;
      const db::Table* logged = database.FindTable("LoggedSystemState");
      for (const db::Row& row : logged->rows()) {
        bytes += row[4].AsText().size();
        ++rows;
      }
      std::printf("%-14s %-8s %8zu | %12.3f %14llu %11.1fx\n",
                  workload.c_str(), detail ? "detail" : "normal",
                  run.analysis.total, run.wall_seconds,
                  static_cast<unsigned long long>(bytes / rows),
                  detail && normal_seconds > 0
                      ? run.wall_seconds / normal_seconds
                      : 1.0);
    }
  }

  std::printf(
      "\n-- the parentExperiment workflow: one detail re-run --\n");
  {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = "rerun_demo";
    config.workload = "engine_control";
    config.num_experiments = 30;
    config.seed = 3;
    config.location_filters = {"cpu.regs.*"};
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    (void)run;
    // Find an escaped (fail-silence) experiment and re-run it.
    std::string interesting;
    for (const auto& experiment : run.analysis.experiments) {
      if (experiment.classification.outcome ==
          core::OutcomeClass::kEscaped) {
        interesting = experiment.name;
        break;
      }
    }
    if (interesting.empty() && !run.analysis.experiments.empty()) {
      interesting = run.analysis.experiments.front().name;
    }
    core::CampaignRunner runner(&database, &target);
    auto child = runner.ReRunInDetailMode(interesting);
    if (child.ok()) {
      const db::Table* logged = database.FindTable("LoggedSystemState");
      const auto index = logged->FindByUnique(0, db::Value::Text_(*child));
      const auto observation = target::Observation::Deserialize(
          logged->row(*index)[4].AsText());
      std::printf("re-ran %s as %s: %zu per-instruction trace entries\n",
                  interesting.c_str(), child->c_str(),
                  observation->detail_trace.size());
    }
  }
  return 0;
}
