// Experiment T-PARALLEL: sharded campaign execution — wall-clock
// speedup of ParallelCampaignRunner over the serial CampaignRunner at
// 1/2/4/8 workers, plus a dump-equality check proving every worker
// count logs the same database (the guarantee the speedup rides on).
//
// Speedup is bounded by the host's core count: on a single-core
// builder every worker count measures ~1.0x (the table still proves
// the sharding overhead is negligible); on an N-core host the regs
// campaign scales to ~min(jobs, N)x because experiments share nothing
// but the claim lock and the single writer.
//
// A second sweep repeats the worker ladder with checkpoint-fork
// execution forced on, proving the dump stays bit-identical to the
// serial replay baseline at every worker count — the two speedups
// (sharding and forking) compose. All rows land in
// BENCH_parallel_campaign.json.
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

std::vector<std::string> DumpLogged(goofi::db::Database& database) {
  std::vector<std::string> rows;
  const goofi::db::Table* table =
      database.FindTable(goofi::core::kLoggedSystemStateTable);
  for (const goofi::db::Row& row : table->rows()) {
    std::string line;
    for (const goofi::db::Value& value : row) {
      line += value.Encode();
      line += '\t';
    }
    rows.push_back(std::move(line));
  }
  return rows;
}

goofi::core::CampaignConfig MakeConfig(const std::string& name) {
  goofi::core::CampaignConfig config;
  config.name = name;
  config.workload = "isort";
  config.num_experiments = 300;
  config.seed = 5;
  config.location_filters = {"cpu.regs.*"};
  return config;
}

void Prepare(goofi::db::Database& database,
             const goofi::core::CampaignConfig& config) {
  goofi::target::ThorRdTarget registrar;
  if (auto s = goofi::core::RegisterTargetSystem(database, registrar,
                                                 "bench-card", "");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::abort();
  }
  if (auto s = goofi::core::StoreCampaign(database, config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace

int main() {
  using namespace goofi;
  bench::BenchJson json("parallel_campaign");
  std::printf("== T-PARALLEL: sharded campaign speedup ==\n\n");
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  // Serial baseline through CampaignRunner itself (not jobs=1), so the
  // table captures the sharding machinery's overhead too.
  db::Database serial_db;
  const core::CampaignConfig config = MakeConfig("par_serial");
  Prepare(serial_db, config);
  target::ThorRdTarget serial_target;
  const auto serial_begin = std::chrono::steady_clock::now();
  auto serial_summary =
      core::CampaignRunner(&serial_db, &serial_target).Run("par_serial");
  const auto serial_end = std::chrono::steady_clock::now();
  if (!serial_summary.ok()) {
    std::fprintf(stderr, "%s\n",
                 serial_summary.status().ToString().c_str());
    std::abort();
  }
  const double serial_seconds =
      std::chrono::duration<double>(serial_end - serial_begin).count();
  const std::vector<std::string> serial_rows = DumpLogged(serial_db);

  std::printf("%-8s %6s | %9s %9s %9s | %s\n", "jobs", "N", "seconds",
              "exps/s", "speedup", "dump vs serial");
  std::printf("%-8s %6zu | %9.3f %9.1f %9s | %s\n", "serial",
              serial_summary->experiments_run, serial_seconds,
              static_cast<double>(serial_summary->experiments_run) /
                  serial_seconds,
              "1.00x", "(baseline)");
  json.BeginEntry()
      .Field("jobs", std::uint64_t{0})
      .Field("checkpoint_mode", false)
      .Field("experiments", std::uint64_t{serial_summary->experiments_run})
      .Field("experiments_per_sec",
             static_cast<double>(serial_summary->experiments_run) /
                 serial_seconds)
      .Field("mean_pretrigger_instructions_replayed",
             serial_summary->experiments_run > 0
                 ? static_cast<double>(
                       serial_summary->trigger_instructions_total -
                       serial_summary->instructions_skipped) /
                       static_cast<double>(serial_summary->experiments_run)
                 : 0.0)
      .Field("dump_identical", true);

  auto factory = target::BuiltinTargetFactory("thor_rd");
  if (!factory.ok()) std::abort();
  // Both sweeps replay the same stored campaign; the checkpoint-fork
  // sweep only flips the execution-mode override, so every dump must
  // still match the serial replay baseline byte for byte.
  for (const bool checkpoint_on : {false, true}) {
    if (checkpoint_on) {
      std::printf("\ncheckpoint-fork forced on (same campaign, same "
                  "expected dump):\n");
    }
    for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
      db::Database database;
      core::CampaignConfig parallel_config = MakeConfig("par_serial");
      Prepare(database, parallel_config);
      core::ParallelCampaignRunner runner(&database, *factory, jobs);
      runner.set_checkpoint_fork(checkpoint_on);
      const auto begin = std::chrono::steady_clock::now();
      auto summary = runner.Run("par_serial");
      const auto end = std::chrono::steady_clock::now();
      if (!summary.ok()) {
        std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
        std::abort();
      }
      const double seconds =
          std::chrono::duration<double>(end - begin).count();
      const bool identical = DumpLogged(database) == serial_rows;
      std::printf("%-8zu %6zu | %9.3f %9.1f %8.2fx | %s%s\n", jobs,
                  summary->experiments_run, seconds,
                  static_cast<double>(summary->experiments_run) / seconds,
                  serial_seconds / seconds,
                  identical ? "bit-identical" : "MISMATCH",
                  checkpoint_on ? " (fork)" : "");
      json.BeginEntry()
          .Field("jobs", std::uint64_t{jobs})
          .Field("checkpoint_mode", checkpoint_on)
          .Field("experiments", std::uint64_t{summary->experiments_run})
          .Field("experiments_per_sec",
                 static_cast<double>(summary->experiments_run) / seconds)
          .Field("mean_pretrigger_instructions_replayed",
                 summary->experiments_run > 0
                     ? static_cast<double>(
                           summary->trigger_instructions_total -
                           summary->instructions_skipped) /
                           static_cast<double>(summary->experiments_run)
                     : 0.0)
          .Field("checkpoint_forks",
                 std::uint64_t{summary->checkpoint_forks})
          .Field("dump_identical", identical);
      if (!identical) {
        json.Write();
        return 1;
      }
    }
  }

  std::printf(
      "\nEvery row's dump matches the serial baseline byte for byte —\n"
      "worker count and checkpoint-fork mode are pure execution knobs.\n"
      "Speedup tracks min(jobs, hardware threads); with one hardware\n"
      "thread the table degenerates to measuring the sharding overhead\n"
      "(~1.0x), and the fork sweep shows the fork-mode gain alone.\n");
  json.Write();
  return 0;
}
