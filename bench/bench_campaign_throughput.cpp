// Experiment T-CAMPAIGN (DESIGN.md): end-to-end campaign throughput —
// experiments per second as a function of workload length, technique and
// logging mode, plus where the time goes (link traffic, TCK cycles).
// The second half measures checkpoint-fork execution: the same
// register-SCIFI campaign replayed from reset vs forked from golden-run
// checkpoints, with the speedup and the replay instructions saved.
// Everything also lands in BENCH_campaign_throughput.json.
#include <algorithm>

#include "bench_util.h"
#include "target/cache_target.h"

namespace {

// Mean pre-trigger instructions each experiment actually replayed:
// the trigger sum minus what forking skipped, per experiment run.
double MeanReplayed(const goofi::core::CampaignSummary& summary) {
  if (summary.experiments_run == 0) return 0.0;
  return static_cast<double>(summary.trigger_instructions_total -
                             summary.instructions_skipped) /
         static_cast<double>(summary.experiments_run);
}

}  // namespace

int main() {
  using namespace goofi;
  bench::BenchJson json("campaign_throughput");
  std::printf("== T-CAMPAIGN: campaign throughput ==\n\n");
  std::printf("%-16s %-14s %-8s %6s | %9s %12s %14s\n", "workload",
              "technique", "mode", "N", "exps/s", "ref instr",
              "link bytes/exp");

  struct Case {
    const char* workload;
    target::Technique technique;
    target::LoggingMode mode;
  };
  const Case cases[] = {
      {"fib", target::Technique::kScifi, target::LoggingMode::kNormal},
      {"crc32", target::Technique::kScifi, target::LoggingMode::kNormal},
      {"isort", target::Technique::kScifi, target::LoggingMode::kNormal},
      {"isort", target::Technique::kSwifiPreRuntime,
       target::LoggingMode::kNormal},
      {"isort", target::Technique::kSwifiRuntime,
       target::LoggingMode::kNormal},
      {"isort", target::Technique::kScifi, target::LoggingMode::kDetail},
      {"engine_control", target::Technique::kScifi,
       target::LoggingMode::kNormal},
  };
  int case_index = 0;
  for (const Case& c : cases) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = goofi::StrFormat("thr_%d", case_index++);
    config.workload = c.workload;
    config.technique = c.technique;
    config.num_experiments =
        c.mode == target::LoggingMode::kDetail ? 40 : 200;
    config.seed = 2;
    config.logging_mode = c.mode;
    if (c.technique != target::Technique::kSwifiPreRuntime) {
      config.location_filters = {"cpu.regs.*"};
    }
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    const target::LinkStats& link = target.test_card().link_stats();
    const double exps_per_sec =
        static_cast<double>(run.summary.experiments_run) / run.wall_seconds;
    std::printf("%-16s %-14s %-8s %6zu | %9.1f %12llu %14llu\n",
                c.workload, target::TechniqueName(c.technique),
                c.mode == target::LoggingMode::kDetail ? "detail"
                                                       : "normal",
                run.summary.experiments_run, exps_per_sec,
                static_cast<unsigned long long>(
                    run.summary.reference.instructions),
                static_cast<unsigned long long>(
                    link.bytes_transferred /
                    (run.summary.experiments_run + 1)));
    json.BeginEntry()
        .Field("workload", c.workload)
        .Field("technique", target::TechniqueName(c.technique))
        .Field("logging", c.mode == target::LoggingMode::kDetail
                              ? "detail" : "normal")
        .Field("experiments", std::uint64_t{run.summary.experiments_run})
        .Field("experiments_per_sec", exps_per_sec)
        .Field("reference_instructions",
               run.summary.reference.instructions)
        .Field("mean_pretrigger_instructions_replayed", MeanReplayed(run.summary))
        .Field("checkpoint_mode", false);
  }
  // ---- cache target: access-path injection instead of scan shifting ----
  // The same isort SCIFI campaign, but on the cache_hierarchy board with
  // the fault family narrowed to the D-cache data array. Arming an
  // access-path fault is a list append, not a chain shift, so the
  // per-experiment fixed cost is lower than register SCIFI's.
  {
    db::Database database;
    target::CacheHierarchyTarget target;
    core::CampaignConfig config;
    config.name = "thr_cache";
    config.target = "cache_hierarchy";
    config.workload = "isort";
    config.num_experiments = 200;
    config.seed = 2;
    config.cache_fault_model = "cache_data_bit";
    config.location_filters = {"dcache.*"};
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    const double exps_per_sec =
        static_cast<double>(run.summary.experiments_run) / run.wall_seconds;
    std::printf("%-16s %-14s %-8s %6zu | %9.1f %12llu %14s\n",
                "isort (dcache)", "scifi", "normal",
                run.summary.experiments_run, exps_per_sec,
                static_cast<unsigned long long>(
                    run.summary.reference.instructions),
                "-");
    json.BeginEntry()
        .Field("workload", "isort")
        .Field("target", "cache_hierarchy")
        .Field("fault_model", "cache_data_bit")
        .Field("technique", "scifi")
        .Field("logging", "normal")
        .Field("experiments", std::uint64_t{run.summary.experiments_run})
        .Field("experiments_per_sec", exps_per_sec)
        .Field("reference_instructions",
               run.summary.reference.instructions)
        .Field("mean_pretrigger_instructions_replayed",
               MeanReplayed(run.summary))
        .Field("checkpoint_mode", false);
  }

  std::printf(
      "\nExpected shape: throughput falls with workload length (the\n"
      "reference duration bounds every experiment); pre-runtime SWIFI is\n"
      "the fastest technique (no breakpoint wait, no scan-chain\n"
      "shifting); detail mode is the big outlier, paying a full\n"
      "internal-chain capture per executed instruction; the cache-target\n"
      "row injects through the access-path hooks (no chain shifting at\n"
      "the trigger), trading that saving against parity-EDM stops that\n"
      "end faulty runs early.\n");

  // ---- checkpoint-fork: replay-from-reset vs fork-from-checkpoint ------
  // A register-SCIFI campaign on a long engine_control mission (10000
  // control iterations, ~280k instructions — the regime checkpointing
  // targets), injecting in the back 7% of the run, once with
  // checkpoint-fork off and once forced on (execution-only override —
  // the stored campaign is identical). Stride is a tenth of the
  // reference duration, so every fork lands within one stride of its
  // trigger.
  std::printf("\n== checkpoint-fork execution ==\n\n");
  constexpr std::uint64_t kMissionIterations = 10000;
  const std::uint64_t probe_duration = [] {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = "ckpt_probe";
    config.workload = "engine_control";
    config.num_experiments = 1;
    config.seed = 7;
    config.location_filters = {"cpu.regs.*"};
    config.termination.max_iterations = kMissionIterations;
    return bench::RunCampaign(database, target, config)
        .summary.reference.instructions;
  }();
  core::CampaignConfig ckpt_config;
  ckpt_config.name = "ckpt";
  ckpt_config.workload = "engine_control";
  ckpt_config.num_experiments = 200;
  ckpt_config.seed = 7;
  ckpt_config.location_filters = {"cpu.regs.*"};
  ckpt_config.termination.max_iterations = kMissionIterations;
  ckpt_config.time_window_lo = probe_duration * 93 / 100;
  ckpt_config.checkpoint_stride = std::max<std::uint64_t>(
      1, probe_duration / 10);

  std::printf("%-10s %6s | %9s %9s | %12s %12s\n", "mode", "N", "exps/s",
              "speedup", "replayed/exp", "forks");
  double off_seconds = 0.0;
  for (const bool checkpoint_on : {false, true}) {
    db::Database database;
    target::ThorRdTarget target;
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, ckpt_config, checkpoint_on);
    if (!checkpoint_on) off_seconds = run.wall_seconds;
    const double exps_per_sec =
        static_cast<double>(run.summary.experiments_run) / run.wall_seconds;
    std::printf("%-10s %6zu | %9.1f %8.2fx | %12.0f %12zu\n",
                checkpoint_on ? "fork" : "replay",
                run.summary.experiments_run, exps_per_sec,
                off_seconds / run.wall_seconds, MeanReplayed(run.summary),
                run.summary.checkpoint_forks);
    json.BeginEntry()
        .Field("workload", "engine_control")
        .Field("technique", "scifi")
        .Field("logging", "normal")
        .Field("experiments", std::uint64_t{run.summary.experiments_run})
        .Field("experiments_per_sec", exps_per_sec)
        .Field("reference_instructions",
               run.summary.reference.instructions)
        .Field("mean_pretrigger_instructions_replayed", MeanReplayed(run.summary))
        .Field("checkpoint_mode", checkpoint_on)
        .Field("checkpoint_stride", ckpt_config.checkpoint_stride)
        .Field("checkpoint_forks",
               std::uint64_t{run.summary.checkpoint_forks})
        .Field("instructions_skipped", run.summary.instructions_skipped);
  }
  std::printf(
      "\nFork mode skips the pre-trigger replay: every experiment\n"
      "restores the checkpoint below its trigger and runs only the\n"
      "remainder, so the late-window campaign speeds up by roughly\n"
      "window position / (1 - window position). The logged database is\n"
      "bit-identical in both modes (tests/core/checkpoint_fork_test.cpp\n"
      "proves it row for row).\n");
  json.Write();
  return 0;
}
