// Experiment T-CAMPAIGN (DESIGN.md): end-to-end campaign throughput —
// experiments per second as a function of workload length, technique and
// logging mode, plus where the time goes (link traffic, TCK cycles).
#include "bench_util.h"

int main() {
  using namespace goofi;
  std::printf("== T-CAMPAIGN: campaign throughput ==\n\n");
  std::printf("%-16s %-14s %-8s %6s | %9s %12s %14s\n", "workload",
              "technique", "mode", "N", "exps/s", "ref instr",
              "link bytes/exp");

  struct Case {
    const char* workload;
    target::Technique technique;
    target::LoggingMode mode;
  };
  const Case cases[] = {
      {"fib", target::Technique::kScifi, target::LoggingMode::kNormal},
      {"crc32", target::Technique::kScifi, target::LoggingMode::kNormal},
      {"isort", target::Technique::kScifi, target::LoggingMode::kNormal},
      {"isort", target::Technique::kSwifiPreRuntime,
       target::LoggingMode::kNormal},
      {"isort", target::Technique::kSwifiRuntime,
       target::LoggingMode::kNormal},
      {"isort", target::Technique::kScifi, target::LoggingMode::kDetail},
      {"engine_control", target::Technique::kScifi,
       target::LoggingMode::kNormal},
  };
  int case_index = 0;
  for (const Case& c : cases) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = goofi::StrFormat("thr_%d", case_index++);
    config.workload = c.workload;
    config.technique = c.technique;
    config.num_experiments =
        c.mode == target::LoggingMode::kDetail ? 40 : 200;
    config.seed = 2;
    config.logging_mode = c.mode;
    if (c.technique != target::Technique::kSwifiPreRuntime) {
      config.location_filters = {"cpu.regs.*"};
    }
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    const target::LinkStats& link = target.test_card().link_stats();
    std::printf("%-16s %-14s %-8s %6zu | %9.1f %12llu %14llu\n",
                c.workload, target::TechniqueName(c.technique),
                c.mode == target::LoggingMode::kDetail ? "detail"
                                                       : "normal",
                run.summary.experiments_run,
                static_cast<double>(run.summary.experiments_run) /
                    run.wall_seconds,
                static_cast<unsigned long long>(
                    run.summary.reference.instructions),
                static_cast<unsigned long long>(
                    link.bytes_transferred /
                    (run.summary.experiments_run + 1)));
  }
  std::printf(
      "\nExpected shape: throughput falls with workload length (the\n"
      "reference duration bounds every experiment); pre-runtime SWIFI is\n"
      "the fastest technique (no breakpoint wait, no scan-chain\n"
      "shifting); detail mode is the big outlier, paying a full\n"
      "internal-chain capture per executed instruction.\n");
  return 0;
}
