// Experiment T-TRIGGERS (DESIGN.md): the paper's fault-trigger
// extension — "Additional fault triggers such as access of certain data
// values, execution of branch instructions or subprogram calls ... or at
// specific times determined by a real-time clock."
//
// For each trigger kind: how often the trigger actually fired (the
// injection happened), where the injections landed in time, and the
// outcome mix.
#include "bench_util.h"

int main() {
  using namespace goofi;
  std::printf("== T-TRIGGERS: fault-trigger comparison on engine_control "
              "==\n\n");
  std::printf("%-12s %6s | %9s | %8s %8s %8s %8s\n", "trigger", "N",
              "fired", "detect", "escape", "latent", "overwr");

  for (const std::string trigger :
       {"instret", "rtc", "pc", "data_read", "data_write", "branch",
        "call"}) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = "trig_" + trigger;
    config.workload = "engine_control";
    config.num_experiments = 250;
    config.seed = 31337;
    config.location_filters = {"cpu.regs.*"};
    config.trigger_kind = trigger;
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    const std::size_t fired =
        run.analysis.total - run.analysis.not_injected;
    std::printf("%-12s %6zu | %8.1f%% | %8zu %8zu %8zu %8zu\n",
                trigger.c_str(), run.analysis.total,
                100.0 * static_cast<double>(fired) /
                    static_cast<double>(run.analysis.total),
                run.analysis.detected, run.analysis.escaped,
                run.analysis.latent, run.analysis.overwritten);
  }
  std::printf(
      "\nExpected shape: instret/rtc triggers always fire (time is\n"
      "guaranteed to arrive); address- and event-based triggers may\n"
      "sample a PC/address/occurrence the run never reaches, so their\n"
      "firing rate is below 100%% — the tool logs those experiments as\n"
      "never-injected rather than failing.\n");
  return 0;
}
