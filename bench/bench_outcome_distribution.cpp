// Experiment T-OUTCOME (DESIGN.md): the paper's §3.4 dependability
// measures — Effective (Detected per mechanism / Escaped) and
// Non-effective (Latent / Overwritten) error counts — for full SCIFI
// campaigns on three workloads, plus the per-mechanism and per-location-
// category breakdowns.
#include "bench_util.h"

int main() {
  using namespace goofi;
  std::printf("== T-OUTCOME: SCIFI outcome taxonomy per workload ==\n");
  std::printf("(transient single bit flips, uniform over scan-chain bits "
              "and time)\n\n");
  bench::PrintTaxonomyHeader("workload");

  std::vector<core::CampaignAnalysis> analyses;
  for (const std::string workload : {"isort", "matmul", "engine_control",
                                     "crc32"}) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = "outcome_" + workload;
    config.workload = workload;
    config.num_experiments = 400;
    config.seed = 20030623;
    config.location_filters = {"cpu.regs.*", "cpu.pc", "cpu.ir", "cpu.wdt",
                               "icache.*", "dcache.*", "pins.*"};
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    bench::PrintTaxonomyRow(workload, run.analysis);
    analyses.push_back(run.analysis);
  }

  std::printf("\n-- detected errors by mechanism (paper: \"classified "
              "into errors detected by each of the various mechanisms\") "
              "--\n");
  std::printf("%-16s", "workload");
  const std::vector<std::string> mechanisms = {
      "icache_parity", "dcache_parity", "mem_protection", "pc_out_of_range",
      "illegal_opcode", "watchdog", "assertion", "div_by_zero",
      "misaligned_access"};
  for (const auto& mechanism : mechanisms) {
    std::printf(" %9.9s", mechanism.c_str());
  }
  std::printf("\n");
  const std::vector<std::string> workloads = {"isort", "matmul",
                                              "engine_control", "crc32"};
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    std::printf("%-16s", workloads[i].c_str());
    for (const auto& mechanism : mechanisms) {
      const auto it = analyses[i].detected_by_mechanism.find(mechanism);
      std::printf(" %9zu",
                  it == analyses[i].detected_by_mechanism.end()
                      ? std::size_t{0}
                      : it->second);
    }
    std::printf("\n");
  }

  std::printf("\n-- outcomes by fault-location category (isort) --\n");
  std::printf("%-10s %8s %8s %8s %8s\n", "category", "detect", "escape",
              "latent", "overwr");
  for (const auto& [category, outcomes] : analyses[0].by_category) {
    auto count = [&](core::OutcomeClass outcome) {
      const auto it = outcomes.find(outcome);
      return it == outcomes.end() ? std::size_t{0} : it->second;
    };
    std::printf("%-10s %8zu %8zu %8zu %8zu\n", category.c_str(),
                count(core::OutcomeClass::kDetected),
                count(core::OutcomeClass::kEscaped),
                count(core::OutcomeClass::kLatent),
                count(core::OutcomeClass::kOverwritten) +
                    count(core::OutcomeClass::kNotInjected));
  }

  std::printf("\n-- outcomes by injection time (isort) --\n%s",
              core::FormatTimeHistogram(
                  core::BuildTimeHistogram(analyses[0], 8)).c_str());

  std::printf("\n-- escaped errors by failure mode --\n");
  std::printf("%-16s %12s %14s %12s\n", "workload", "wrong_out",
              "fail_silence", "timeliness");
  for (std::size_t i = 0; i < analyses.size(); ++i) {
    std::printf("%-16s %12zu %14zu %12zu\n", workloads[i].c_str(),
                analyses[i].wrong_output, analyses[i].fail_silence,
                analyses[i].timeliness);
  }
  return 0;
}
