// Experiment T-MULTIPLICITY (DESIGN.md; paper §1: "GOOFI is capable of
// injecting single or multiple transient bit-flip faults"): outcome
// distribution as the number of simultaneously flipped bits grows.
#include "bench_util.h"

int main() {
  using namespace goofi;
  std::printf("== T-MULTIPLICITY: single vs multi-bit transient faults "
              "==\n");
  std::printf("(isort; every experiment flips N uniformly sampled "
              "scan-chain bits at one instant)\n\n");
  bench::PrintTaxonomyHeader("bits/fault");

  for (const std::uint32_t multiplicity : {1u, 2u, 4u, 8u, 16u}) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = "multi_" + std::to_string(multiplicity);
    config.workload = "isort";
    config.num_experiments = 300;
    config.seed = 1234;
    config.multiplicity = multiplicity;
    config.location_filters = {"cpu.regs.*", "cpu.pc", "cpu.ir",
                               "icache.*", "dcache.*"};
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    bench::PrintTaxonomyRow(std::to_string(multiplicity), run.analysis);
  }
  std::printf(
      "\nExpected shape: the overwritten fraction shrinks monotonically\n"
      "with multiplicity (more bits -> more chances that one of them is\n"
      "live), while detections grow — multi-bit upsets are easier to\n"
      "catch but also more likely to do damage before being caught.\n");
  return 0;
}
