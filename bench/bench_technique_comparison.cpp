// Experiment T-TECHNIQUES (DESIGN.md): SCIFI vs pre-runtime SWIFI vs
// runtime SWIFI with the same workload and fault budget.
//
// The paper's core claim for SCIFI (via its FTCS-28 companion study) is
// *reach*: scan chains access "almost all of the state elements" while
// SWIFI sees only software-visible state. The table reports the size of
// each technique's location space, the outcome mix, and campaign
// throughput.
#include "bench_util.h"

#include "core/location.h"

int main() {
  using namespace goofi;
  std::printf("== T-TECHNIQUES: technique comparison on isort ==\n\n");

  struct Case {
    const char* label;
    target::Technique technique;
    std::vector<std::string> filters;
  };
  const Case cases[] = {
      {"scifi", target::Technique::kScifi, {}},
      {"swifi_pre", target::Technique::kSwifiPreRuntime, {}},
      {"swifi_runtime", target::Technique::kSwifiRuntime, {}},
  };

  std::printf("%-16s %14s %12s | %8s %8s %8s %8s | %9s\n", "technique",
              "reachable", "locations", "detect", "escape", "latent",
              "overwr", "exps/s");
  std::printf("%-16s %14s %12s |\n", "", "(bits)", "");
  for (const Case& c : cases) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = std::string("tech_") + c.label;
    config.workload = "isort";
    config.technique = c.technique;
    config.num_experiments = 300;
    config.seed = 424242;
    config.location_filters = c.filters;
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);

    // Reachable location space (needs the loaded workload, so measure
    // after the run).
    auto space = core::LocationSpace::Build(target.ListLocations(),
                                            c.technique, {});
    const std::uint64_t bits = space.ok() ? space->total_bits() : 0;
    const std::size_t locations =
        space.ok() ? space->entries().size() : 0;
    std::printf("%-16s %14llu %12zu | %8zu %8zu %8zu %8zu | %9.1f\n",
                c.label, static_cast<unsigned long long>(bits), locations,
                run.analysis.detected, run.analysis.escaped,
                run.analysis.latent,
                run.analysis.overwritten + run.analysis.not_injected,
                static_cast<double>(run.summary.experiments_run) /
                    run.wall_seconds);
  }

  std::printf(
      "\nExpected shape (DESIGN.md): SCIFI reaches the most state (cache\n"
      "arrays, IR, latches); pre-runtime SWIFI reaches only the memory\n"
      "image; runtime SWIFI reaches registers + memory. Detection mix\n"
      "shifts accordingly (parity EDMs only fire for SCIFI cache faults;\n"
      "memory-image faults skew to illegal-opcode/protection detections).\n");

  // Per-mechanism detail: which EDMs each technique exercises.
  std::printf("\n-- detected-by-mechanism per technique --\n");
  for (const Case& c : cases) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = std::string("tech2_") + c.label;
    config.workload = "isort";
    config.technique = c.technique;
    config.num_experiments = 300;
    config.seed = 99;
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    std::printf("%-16s:", c.label);
    for (const auto& [mechanism, count] :
         run.analysis.detected_by_mechanism) {
      std::printf(" %s=%zu", mechanism.c_str(), count);
    }
    std::printf("\n");
  }
  return 0;
}
