// Experiment T-SCAN (DESIGN.md): SCIFI access mechanics. Scan access
// costs TCK cycles proportional to chain length — the fundamental cost
// model behind the paper's observation that detail-mode logging through
// the chains "increases the time-overhead".
#include <benchmark/benchmark.h>

#include "sim/assembler.h"
#include "sim/debug_unit.h"
#include "sim/tap.h"
#include "target/test_card.h"

namespace {

using namespace goofi;

void BM_InternalChainCapture(benchmark::State& state) {
  sim::Cpu cpu;
  (void)cpu.memory().AddSegment({"code", 0, 0x1000, true, false, true,
                                 false});
  const sim::ScanChainSet chains = sim::BuildThorRdScanChains(cpu);
  const sim::ScanChain* internal = chains.FindChain("internal");
  for (auto _ : state) {
    BitVector image = internal->Capture(cpu);
    benchmark::DoNotOptimize(image);
  }
  state.counters["chain_bits"] =
      static_cast<double>(internal->bit_length());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InternalChainCapture);

void BM_TapReadChain(benchmark::State& state) {
  // Full TAP-honest read: instruction load + capture + 2x shift + update.
  sim::Cpu cpu;
  (void)cpu.memory().AddSegment({"code", 0, 0x1000, true, false, true,
                                 false});
  sim::ScanChainSet chains = sim::BuildThorRdScanChains(cpu);
  sim::TapController tap(&chains, &cpu);
  tap.Reset();
  tap.LoadInstruction(sim::TapInstruction::kScanInternal);
  std::uint64_t cycles_before = tap.tck_cycles();
  for (auto _ : state) {
    BitVector image = tap.ReadDataRegister();
    benchmark::DoNotOptimize(image);
  }
  state.counters["tck_per_read"] =
      static_cast<double>(tap.tck_cycles() - cycles_before) /
      static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TapReadChain);

void BM_TapExchangeChain(benchmark::State& state) {
  // The SCIFI injection step: shift out, flip, shift back in.
  sim::Cpu cpu;
  (void)cpu.memory().AddSegment({"code", 0, 0x1000, true, false, true,
                                 false});
  sim::ScanChainSet chains = sim::BuildThorRdScanChains(cpu);
  sim::TapController tap(&chains, &cpu);
  tap.Reset();
  tap.LoadInstruction(sim::TapInstruction::kScanInternal);
  BitVector image = chains.FindChain("internal")->Capture(cpu);
  for (auto _ : state) {
    image.Flip(37);
    BitVector out = tap.ExchangeDataRegister(image);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TapExchangeChain);

void BM_TapBypassAccess(benchmark::State& state) {
  // 1-bit bypass register: the short-chain baseline.
  sim::Cpu cpu;
  (void)cpu.memory().AddSegment({"code", 0, 0x1000, true, false, true,
                                 false});
  sim::ScanChainSet chains = sim::BuildThorRdScanChains(cpu);
  sim::TapController tap(&chains, &cpu);
  tap.Reset();
  tap.LoadInstruction(sim::TapInstruction::kBypass);
  for (auto _ : state) {
    BitVector image = tap.ReadDataRegister();
    benchmark::DoNotOptimize(image);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TapBypassAccess);

void BM_SimulatorInstructionRate(benchmark::State& state) {
  // Raw target execution speed: the denominator of every campaign-cost
  // estimate.
  target::TestCard card;
  if (!card.Initialize().ok()) std::abort();
  const auto program = sim::Assemble(R"(
  li r1, 0
loop:
  addi r1, r1, 1
  b loop
)");
  if (!program.ok()) std::abort();
  if (!program->LoadInto(card.cpu().memory()).ok()) std::abort();
  card.ResetTarget(0);
  std::uint64_t executed = 0;
  for (auto _ : state) {
    const sim::RunResult result = card.Run(/*max_instructions=*/10000);
    executed += result.instructions_executed;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}
BENCHMARK(BM_SimulatorInstructionRate);

void BM_BreakpointLatency(benchmark::State& state) {
  // Cost of arming a breakpoint and running to it (the waitForBreakpoint
  // phase) for increasing injection times.
  target::TestCard card;
  if (!card.Initialize().ok()) std::abort();
  const auto program = sim::Assemble(R"(
  li r1, 0
loop:
  addi r1, r1, 1
  b loop
)");
  if (!program.ok()) std::abort();
  if (!program->LoadInto(card.cpu().memory()).ok()) std::abort();
  const std::uint64_t when = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    card.ResetTarget(0);
    sim::Breakpoint bp;
    bp.kind = sim::Breakpoint::Kind::kInstretReached;
    bp.count = when;
    card.SetBreakpoint(bp);
    const sim::RunResult result = card.Run(when + 100);
    if (result.reason != sim::StopReason::kBreakpoint) std::abort();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(when));
}
BENCHMARK(BM_BreakpointLatency)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
