// Experiment T-RECOVERY (DESIGN.md extension; companion study [12],
// "Reducing Critical Failures for Control Algorithms Using Executable
// Assertions and Best Effort Recovery"):
//
// The same fault list hits the engine controller in three builds:
//   plain        — hardware EDMs only, fail-stop
//   assert       — + executable assertions, fail-stop
//   assert+BER   — + a best-effort recovery handler (EDM hits vector to
//                  a routine that repairs state and resumes the loop)
//
// The critical-failure count — experiments where the controller stopped
// producing (correct) actuator values — is what [12] reduces.
#include "bench_util.h"

namespace {

using namespace goofi;

struct Tally {
  std::size_t completed_clean = 0;   // all iterations, golden actuators
  std::size_t disturbed = 0;         // all iterations, actuators diverged
  std::size_t lost_controller = 0;   // terminated early (critical failure)
  std::size_t recoveries = 0;
};

Tally RunVariant(const std::string& workload, bool assertions) {
  db::Database database;
  target::TestCardOptions options;
  options.cpu_config.edm.SetEnabled(sim::EdmType::kAssertion, assertions);
  target::ThorRdTarget board(options);
  core::CampaignConfig config;
  config.name = workload + (assertions ? "_a" : "_na");
  config.workload = workload;
  config.num_experiments = 400;
  config.seed = 20010704;
  config.location_filters = {"cpu.regs.*", "cpu.pc", "cpu.ir"};
  const bench::CampaignRun run = bench::RunCampaign(database, board, config);

  Tally tally;
  const target::Observation& golden = run.summary.reference;
  const db::Table* logged = database.FindTable("LoggedSystemState");
  for (const db::Row& row : logged->rows()) {
    if (row[3].AsText() == "reference") continue;
    auto observation = target::Observation::Deserialize(row[4].AsText());
    if (!observation.ok()) std::abort();
    tally.recoveries += observation->recovery_count > 0 ? 1 : 0;
    if (observation->iterations < golden.iterations) {
      ++tally.lost_controller;
    } else if (observation->env_outputs == golden.env_outputs) {
      ++tally.completed_clean;
    } else {
      ++tally.disturbed;
    }
  }
  return tally;
}

}  // namespace

int main() {
  std::printf("== T-RECOVERY: executable assertions + best-effort "
              "recovery ==\n");
  std::printf("(engine controller, identical 400-fault campaigns; "
              "'lost controller' = terminated before the mission's 40 "
              "iterations)\n\n");
  std::printf("%-14s | %10s %10s %14s | %10s\n", "build", "clean",
              "disturbed", "lost ctrl", "recovered");

  const Tally plain = RunVariant("engine_control", false);
  std::printf("%-14s | %10zu %10zu %14zu | %10zu\n", "plain",
              plain.completed_clean, plain.disturbed,
              plain.lost_controller, plain.recoveries);
  const Tally asserts = RunVariant("engine_control", true);
  std::printf("%-14s | %10zu %10zu %14zu | %10zu\n", "assert",
              asserts.completed_clean, asserts.disturbed,
              asserts.lost_controller, asserts.recoveries);
  const Tally ber = RunVariant("engine_control_ber", true);
  std::printf("%-14s | %10zu %10zu %14zu | %10zu\n", "assert+BER",
              ber.completed_clean, ber.disturbed, ber.lost_controller,
              ber.recoveries);

  std::printf(
      "\nExpected shape ([12]): fail-stop detection *creates* controller\n"
      "loss — every detected error kills the mission. Best-effort\n"
      "recovery converts those terminations into completed runs (clean\n"
      "or briefly disturbed), at the price of the disturbance; the\n"
      "'recovered' column counts experiments whose handler actually ran.\n");
  return 0;
}
