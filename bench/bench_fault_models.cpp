// Experiment T-FAULTMODELS (DESIGN.md): the paper's fault-model
// extension — "Support for additional fault models such as intermittent
// and permanent faults" — compared against the shipped transient
// bit-flip model on identical locations and seeds.
#include "bench_util.h"

int main() {
  using namespace goofi;
  std::printf("== T-FAULTMODELS: transient vs intermittent vs permanent "
              "==\n");
  std::printf("(register faults on isort; same seed per row group)\n\n");
  bench::PrintTaxonomyHeader("model");

  struct Case {
    const char* label;
    target::FaultModel model;
  };
  target::FaultModel transient;
  target::FaultModel intermittent;
  intermittent.kind = target::FaultModel::Kind::kIntermittentBitFlip;
  intermittent.period = 200;
  intermittent.occurrences = 6;
  target::FaultModel stuck1;
  stuck1.kind = target::FaultModel::Kind::kPermanentStuckAt;
  stuck1.stuck_to_one = true;
  target::FaultModel stuck0 = stuck1;
  stuck0.stuck_to_one = false;

  const Case cases[] = {
      {"transient", transient},
      {"intermittent", intermittent},
      {"stuck_at_1", stuck1},
      {"stuck_at_0", stuck0},
  };
  for (const Case& c : cases) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = std::string("model_") + c.label;
    config.workload = "isort";
    config.num_experiments = 300;
    config.seed = 5150;
    config.location_filters = {"cpu.regs.*"};
    config.model = c.model;
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    bench::PrintTaxonomyRow(c.label, run.analysis);
  }
  std::printf(
      "\nExpected shape: permanent faults are the most effective (the\n"
      "corruption re-asserts itself, so overwriting cannot neutralise\n"
      "it), intermittent faults fall between transient and permanent,\n"
      "and stuck-at-0 differs from stuck-at-1 (many register bits are\n"
      "already 0, so forcing 0 is often a no-op).\n");

  std::printf("\n-- same comparison on the cache arrays (SCIFI-only "
              "reach) --\n");
  bench::PrintTaxonomyHeader("model");
  for (const Case& c : cases) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = std::string("cmodel_") + c.label;
    config.workload = "isort";
    config.num_experiments = 300;
    config.seed = 5151;
    config.location_filters = {"dcache.*", "icache.*"};
    config.model = c.model;
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    bench::PrintTaxonomyRow(c.label, run.analysis);
  }
  return 0;
}
