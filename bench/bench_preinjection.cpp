// Experiment T-PREINJ (DESIGN.md): the paper's pre-injection analysis
// extension. "Injecting a fault into a location that does not hold live
// data serves no purpose, since the fault will be overwritten."
//
// Compares random (location, time) sampling against liveness-filtered
// sampling on register faults: fraction of non-effective experiments and
// effective-error yield per experiment.
#include "bench_util.h"

int main() {
  using namespace goofi;
  std::printf("== T-PREINJ: pre-injection analysis effectiveness ==\n");
  std::printf("(register faults, transient single bit flips)\n\n");
  std::printf("%-14s %-10s %6s | %8s %8s %8s | %10s %9s\n", "workload",
              "sampling", "N", "effect", "latent", "useless", "yield",
              "liveFrac");

  for (const std::string workload : {"isort", "matmul", "crc32",
                                     "engine_control"}) {
    double random_yield = 0.0;
    double random_effective = 0.0;
    for (const bool filtered : {false, true}) {
      db::Database database;
      target::ThorRdTarget target;
      core::CampaignConfig config;
      config.name = workload + (filtered ? "_live" : "_random");
      config.workload = workload;
      config.num_experiments = 300;
      config.seed = 1234;
      config.location_filters = {"cpu.regs.*"};
      config.use_preinjection_analysis = filtered;
      const bench::CampaignRun run =
          bench::RunCampaign(database, target, config);
      const std::size_t effective =
          run.analysis.detected + run.analysis.escaped;
      const std::size_t useless =
          run.analysis.overwritten + run.analysis.not_injected;
      const double yield =
          static_cast<double>(effective + run.analysis.latent) /
          static_cast<double>(run.analysis.total);
      const double effective_yield =
          static_cast<double>(effective) /
          static_cast<double>(run.analysis.total);
      if (!filtered) {
        random_yield = yield;
        random_effective = effective_yield;
      }
      std::printf("%-14s %-10s %6zu | %8zu %8zu %8zu | %9.1f%% %8.1f%%\n",
                  workload.c_str(), filtered ? "liveness" : "random",
                  run.analysis.total, effective, run.analysis.latent,
                  useless, 100.0 * yield,
                  filtered ? 100.0 * run.summary.register_live_fraction
                           : 100.0);
      if (filtered && random_yield > 0.0) {
        std::printf("%-14s %-10s any-error yield %.1fx, "
                    "effective-error yield %.1fx (resamples: %llu)\n",
                    "", "", yield / random_yield,
                    random_effective > 0.0
                        ? effective_yield / random_effective
                        : 0.0,
                    static_cast<unsigned long long>(
                        run.summary.preinjection_resamples));
      }
    }
  }
  std::printf(
      "\nExpected shape: random register sampling is mostly useless\n"
      "(live fraction of the register file is small); liveness filtering\n"
      "eliminates nearly all overwritten experiments, improving the\n"
      "error-yield per experiment by a multiplicative factor.\n");
  return 0;
}
