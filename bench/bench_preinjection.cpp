// Experiment T-PREINJ (DESIGN.md): the paper's pre-injection analysis
// extension. "Injecting a fault into a location that does not hold live
// data serves no purpose, since the fault will be overwritten."
//
// Compares random (location, time) sampling against static pre-run
// pruning (analysis::StaticLiveness dropping provably-dead registers
// before the reference run), dynamic liveness-filtered sampling, and
// def-use equivalence partitioning (one representative injection per
// class, `static_analysis = equivalence`): fraction of non-effective
// experiments, effective-error yield per experiment, and the fraction
// of planned experiments each mode prunes.
//
// Alongside the stdout table the bench writes BENCH_preinjection.json
// with one entry per (workload, mode) row plus the T-EQUIV scale runs,
// so CI and EXPERIMENTS.md consume the same numbers.
#include "bench_util.h"

namespace {

struct ModeSetup {
  const char* name;
  bool use_static = false;
  bool use_liveness = false;
  bool use_equivalence = false;
};

constexpr ModeSetup kModes[] = {
    {"random"},
    {"static", true, false, false},
    {"liveness", false, true, false},
    {"equivalence", true, true, true},
};

}  // namespace

int main() {
  using namespace goofi;
  std::printf("== T-PREINJ: pre-injection analysis effectiveness ==\n");
  std::printf("(register faults, transient single bit flips)\n\n");
  std::printf("%-14s %-12s %6s | %8s %8s %8s | %10s %9s\n", "workload",
              "sampling", "N", "effect", "latent", "useless", "yield",
              "pruned");

  bench::BenchJson json("preinjection");
  for (const std::string workload : {"isort", "matmul", "crc32",
                                     "engine_control"}) {
    double random_yield = 0.0;
    double random_effective = 0.0;
    for (const ModeSetup& mode : kModes) {
      db::Database database;
      target::ThorRdTarget target;
      core::CampaignConfig config;
      config.name = workload + "_" + mode.name;
      config.workload = workload;
      config.num_experiments = 300;
      config.seed = 1234;
      config.location_filters = {"cpu.regs.*"};
      config.use_static_analysis = mode.use_static;
      config.use_preinjection_analysis = mode.use_liveness;
      config.use_equivalence = mode.use_equivalence;
      const bench::CampaignRun run =
          bench::RunCampaign(database, target, config);
      const std::size_t effective =
          run.analysis.detected + run.analysis.escaped;
      const std::size_t useless =
          run.analysis.overwritten + run.analysis.not_injected;
      const double yield =
          static_cast<double>(effective + run.analysis.latent) /
          static_cast<double>(run.analysis.total);
      const double effective_yield =
          static_cast<double>(effective) /
          static_cast<double>(run.analysis.total);
      if (std::string(mode.name) == "random") {
        random_yield = yield;
        random_effective = effective_yield;
      }
      // "pruned" is the fraction of planned work each mode removes up
      // front: static = location bits proven dead before any run,
      // liveness = (location, time) points outside the live intervals,
      // equivalence = planned experiments not injected because their
      // class already has a representative.
      const double pruned =
          mode.use_equivalence
              ? static_cast<double>(run.summary.equiv_duplicates) /
                    static_cast<double>(config.num_experiments)
          : mode.use_static ? run.summary.static_pruned_fraction
          : mode.use_liveness
              ? 1.0 - run.summary.register_live_fraction
              : 0.0;
      std::printf("%-14s %-12s %6zu | %8zu %8zu %8zu | %9.1f%% %8.1f%%\n",
                  workload.c_str(), mode.name, run.analysis.total,
                  effective, run.analysis.latent, useless, 100.0 * yield,
                  100.0 * pruned);
      json.BeginEntry()
          .Field("workload", workload)
          .Field("mode", mode.name)
          .Field("experiments_planned",
                 static_cast<std::uint64_t>(config.num_experiments))
          .Field("experiments_injected",
                 static_cast<std::uint64_t>(run.analysis.total))
          .Field("effective", static_cast<std::uint64_t>(effective))
          .Field("latent",
                 static_cast<std::uint64_t>(run.analysis.latent))
          .Field("useless", static_cast<std::uint64_t>(useless))
          .Field("yield", yield)
          .Field("effective_yield", effective_yield)
          .Field("pruned_fraction", pruned)
          .Field("classes",
                 static_cast<std::uint64_t>(run.summary.equiv_classes))
          .Field("representatives",
                 static_cast<std::uint64_t>(run.summary.equiv_classes))
          .Field("duplicates",
                 static_cast<std::uint64_t>(run.summary.equiv_duplicates))
          .Field("space_weight", run.summary.equiv_space_weight)
          .Field("resamples", run.summary.preinjection_resamples)
          .Field("wall_seconds", run.wall_seconds);
    }
  }

  // T-EQUIV at scale: with enough draws (or a bounded window) the
  // sampled classes saturate and representative injection prunes well
  // over the 30% bar; EXPERIMENTS.md quotes these two rows.
  std::printf("\n== T-EQUIV: representative injection at scale ==\n");
  std::printf("%-14s %8s %8s | %8s %9s %12s\n", "workload", "window",
              "N", "classes", "pruned", "space");
  struct ScaleRun {
    const char* workload;
    std::uint32_t experiments;
    std::uint64_t window_hi;  // 0 = whole run
  };
  constexpr ScaleRun kScaleRuns[] = {
      {"fib", 6000, 0},
      {"isort", 5000, 300},
  };
  for (const ScaleRun& scale : kScaleRuns) {
    db::Database database;
    target::ThorRdTarget target;
    core::CampaignConfig config;
    config.name = std::string(scale.workload) + "_equiv_scale";
    config.workload = scale.workload;
    config.num_experiments = scale.experiments;
    config.seed = 1234;
    config.location_filters = {"cpu.regs.*"};
    config.use_static_analysis = true;
    config.use_preinjection_analysis = true;
    config.use_equivalence = true;
    config.time_window_hi = scale.window_hi;
    const bench::CampaignRun run =
        bench::RunCampaign(database, target, config);
    const double pruned =
        static_cast<double>(run.summary.equiv_duplicates) /
        static_cast<double>(config.num_experiments);
    std::printf("%-14s %8llu %8u | %8zu %8.1f%% %12llu\n", scale.workload,
                static_cast<unsigned long long>(scale.window_hi),
                scale.experiments, run.summary.equiv_classes,
                100.0 * pruned,
                static_cast<unsigned long long>(
                    run.summary.equiv_space_weight));
    json.BeginEntry()
        .Field("workload", scale.workload)
        .Field("mode", "equivalence_scale")
        .Field("window_hi", scale.window_hi)
        .Field("experiments_planned",
               static_cast<std::uint64_t>(scale.experiments))
        .Field("experiments_injected",
               static_cast<std::uint64_t>(run.summary.equiv_classes))
        .Field("classes",
               static_cast<std::uint64_t>(run.summary.equiv_classes))
        .Field("representatives",
               static_cast<std::uint64_t>(run.summary.equiv_classes))
        .Field("duplicates",
               static_cast<std::uint64_t>(run.summary.equiv_duplicates))
        .Field("pruned_fraction", pruned)
        .Field("space_weight", run.summary.equiv_space_weight)
        .Field("wall_seconds", run.wall_seconds);
  }
  json.Write();

  std::printf(
      "\nExpected shape: random register sampling is mostly useless\n"
      "(live fraction of the register file is small). Static pruning\n"
      "removes write-only/untouched registers for free, before any\n"
      "reference run; dynamic liveness filtering then eliminates nearly\n"
      "all remaining overwritten experiments, improving the error-yield\n"
      "per experiment by a multiplicative factor. Equivalence\n"
      "partitioning keeps that yield while injecting only one\n"
      "representative per def-use class: at scale the duplicate\n"
      "fraction exceeds 30%% and the analysis extrapolates the full\n"
      "space by class weight.\n");
  return 0;
}
