// Experiment T-PREINJ (DESIGN.md): the paper's pre-injection analysis
// extension. "Injecting a fault into a location that does not hold live
// data serves no purpose, since the fault will be overwritten."
//
// Compares random (location, time) sampling against static pre-run
// pruning (analysis::StaticLiveness dropping provably-dead registers
// before the reference run) and against dynamic liveness-filtered
// sampling: fraction of non-effective experiments and effective-error
// yield per experiment.
#include "bench_util.h"

int main() {
  using namespace goofi;
  std::printf("== T-PREINJ: pre-injection analysis effectiveness ==\n");
  std::printf("(register faults, transient single bit flips)\n\n");
  std::printf("%-14s %-10s %6s | %8s %8s %8s | %10s %9s\n", "workload",
              "sampling", "N", "effect", "latent", "useless", "yield",
              "pruned");

  for (const std::string workload : {"isort", "matmul", "crc32",
                                     "engine_control"}) {
    double random_yield = 0.0;
    double random_effective = 0.0;
    for (const std::string mode : {"random", "static", "liveness"}) {
      db::Database database;
      target::ThorRdTarget target;
      core::CampaignConfig config;
      config.name = workload + "_" + mode;
      config.workload = workload;
      config.num_experiments = 300;
      config.seed = 1234;
      config.location_filters = {"cpu.regs.*"};
      config.use_static_analysis = mode == "static";
      config.use_preinjection_analysis = mode == "liveness";
      const bench::CampaignRun run =
          bench::RunCampaign(database, target, config);
      const std::size_t effective =
          run.analysis.detected + run.analysis.escaped;
      const std::size_t useless =
          run.analysis.overwritten + run.analysis.not_injected;
      const double yield =
          static_cast<double>(effective + run.analysis.latent) /
          static_cast<double>(run.analysis.total);
      const double effective_yield =
          static_cast<double>(effective) /
          static_cast<double>(run.analysis.total);
      if (mode == "random") {
        random_yield = yield;
        random_effective = effective_yield;
      }
      // "pruned" is the fraction of the sampling space each mode removes
      // up front: static = location bits proven dead before any run,
      // liveness = (location, time) points outside the live intervals.
      const double pruned =
          mode == "static" ? run.summary.static_pruned_fraction
          : mode == "liveness"
              ? 1.0 - run.summary.register_live_fraction
              : 0.0;
      std::printf("%-14s %-10s %6zu | %8zu %8zu %8zu | %9.1f%% %8.1f%%\n",
                  workload.c_str(), mode.c_str(), run.analysis.total,
                  effective, run.analysis.latent, useless, 100.0 * yield,
                  100.0 * pruned);
      if (mode != "random" && random_yield > 0.0) {
        std::printf("%-14s %-10s any-error yield %.1fx, "
                    "effective-error yield %.1fx (resamples: %llu)\n",
                    "", "", yield / random_yield,
                    random_effective > 0.0
                        ? effective_yield / random_effective
                        : 0.0,
                    static_cast<unsigned long long>(
                        run.summary.preinjection_resamples));
      }
    }
  }
  std::printf(
      "\nExpected shape: random register sampling is mostly useless\n"
      "(live fraction of the register file is small). Static pruning\n"
      "removes write-only/untouched registers for free, before any\n"
      "reference run; dynamic liveness filtering then eliminates nearly\n"
      "all remaining overwritten experiments, improving the error-yield\n"
      "per experiment by a multiplicative factor.\n");
  return 0;
}
