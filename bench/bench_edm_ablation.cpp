// Experiment T-ABLATION (DESIGN.md §3, ablation benches): contribution
// of each error-detection mechanism to overall coverage, measured by
// disabling mechanisms one at a time and re-running the identical
// campaign (same seed, same faults).
//
// This is the design-validation use the paper opens with: "Fault
// injection ... can be used to identify dependability weaknesses in the
// design of a fault tolerant system."
#include "bench_util.h"

namespace {

using namespace goofi;

core::CampaignAnalysis RunWithEdm(const sim::EdmConfig& edm,
                                  const std::string& label) {
  db::Database database;
  target::TestCardOptions options;
  options.cpu_config.edm = edm;
  target::ThorRdTarget target(options);
  core::CampaignConfig config;
  config.name = "ablate_" + label;
  config.workload = "isort";
  config.num_experiments = 400;
  config.seed = 271828;
  config.location_filters = {"cpu.regs.*", "cpu.pc", "cpu.ir", "icache.*",
                             "dcache.*"};
  return bench::RunCampaign(database, target, config).analysis;
}

}  // namespace

int main() {
  std::printf("== T-ABLATION: per-EDM contribution to coverage ==\n");
  std::printf("(isort, identical 400-fault campaign per row; 'all' row "
              "is the baseline)\n\n");
  std::printf("%-22s | %8s %8s %8s | %9s %12s\n", "disabled mechanism",
              "detect", "escape", "latent+", "coverage", "vs baseline");

  const sim::EdmConfig baseline_config;
  const core::CampaignAnalysis baseline = RunWithEdm(baseline_config, "none");
  auto print_row = [&](const std::string& label,
                       const core::CampaignAnalysis& analysis) {
    std::printf("%-22s | %8zu %8zu %8zu | %8.1f%% %+11.1f%%\n",
                label.c_str(), analysis.detected, analysis.escaped,
                analysis.latent + analysis.overwritten +
                    analysis.not_injected,
                100.0 * analysis.detection_coverage.estimate,
                100.0 * (analysis.detection_coverage.estimate -
                         baseline.detection_coverage.estimate));
  };
  print_row("(all enabled)", baseline);

  const sim::EdmType ablatable[] = {
      sim::EdmType::kIcacheParity,  sim::EdmType::kDcacheParity,
      sim::EdmType::kMemProtection, sim::EdmType::kPcOutOfRange,
      sim::EdmType::kIllegalOpcode, sim::EdmType::kWatchdog,
      sim::EdmType::kMisalignedAccess,
  };
  for (const sim::EdmType mechanism : ablatable) {
    sim::EdmConfig edm;
    edm.SetEnabled(mechanism, false);
    print_row(std::string("- ") + sim::EdmTypeName(mechanism),
              RunWithEdm(edm, sim::EdmTypeName(mechanism)));
  }

  // The other direction: arming the (default-off) overflow checker.
  {
    sim::EdmConfig edm;
    edm.SetEnabled(sim::EdmType::kArithOverflow, true);
    print_row("+ arith_overflow",
              RunWithEdm(edm, "plus_overflow"));
  }

  std::printf(
      "\nExpected shape: dropping a parity checker moves its detections\n"
      "into latent/escaped outcomes (cache faults go unnoticed);\n"
      "dropping mem_protection or pc_out_of_range converts crashes into\n"
      "silent data corruption or watchdog timeouts; mechanisms that\n"
      "never fired in the baseline cost nothing to remove.\n");
  return 0;
}
