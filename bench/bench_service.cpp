// T-SERVE: the campaign-as-a-service daemon's scheduling overhead.
//
// Two questions a fleet operator asks before putting goofi_serve in
// front of their injection rig:
//
//   1. Latency — how long from `submit` until the campaign's first
//      experiment lands, including the journal commit and the
//      scheduler claim? (The interactive cost of the service layer.)
//   2. Throughput — does multiplexing N campaigns over a shared fleet
//      beat running them back to back, and what does the submission
//      journal's bookkeeping cost on top of the raw runs?
//
// Emits BENCH_service.json next to the binary for CI and EXPERIMENTS.md.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/executor.h"
#include "service/server.h"

namespace {

namespace fs = std::filesystem;
using goofi::bench::BenchJson;
using namespace goofi;

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

std::string Ini(const std::string& name, int experiments) {
  return "[campaign]\nname = " + name +
         "\ntarget = thor_rd\ntechnique = scifi\nworkload = fib\n"
         "experiments = " + std::to_string(experiments) +
         "\nseed = 17\nlocation[] = cpu.regs.*\n";
}

std::string FreshRoot(const std::string& leaf) {
  const std::string root =
      (fs::temp_directory_path() / ("goofi_bench_service_" + leaf)).string();
  fs::remove_all(root);
  return root;
}

// Poll until every listed submission is terminal; returns wall seconds.
double AwaitAll(service::ServiceCore& core,
                const std::vector<std::uint64_t>& ids) {
  const auto begin = Clock::now();
  for (const std::uint64_t id : ids) {
    for (;;) {
      auto status = core.GetStatus(id);
      if (!status.ok()) {
        std::fprintf(stderr, "status %llu: %s\n",
                     static_cast<unsigned long long>(id),
                     status.status().ToString().c_str());
        std::abort();
      }
      const std::string& state = status->submission.state;
      if (state == service::kStateCompleted) break;
      if (state == service::kStateFailed ||
          state == service::kStateCancelled) {
        std::fprintf(stderr, "submission %llu ended %s\n",
                     static_cast<unsigned long long>(id), state.c_str());
        std::abort();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return Seconds(begin, Clock::now());
}

}  // namespace

int main() {
  BenchJson json("service");
  constexpr int kExperiments = 200;
  constexpr int kCampaigns = 4;

  // ---- 1. submit-to-first-result latency -------------------------------
  {
    const std::string root = FreshRoot("latency");
    service::ServiceConfig config;
    config.root = root;
    config.fleet_workers = 2;
    config.max_campaign_jobs = 2;
    auto core = service::ServiceCore::Start(config);
    if (!core.ok()) {
      std::fprintf(stderr, "%s\n", core.status().ToString().c_str());
      return 1;
    }
    const auto submit_begin = Clock::now();
    auto id = (*core)->Submit(Ini("latency", kExperiments));
    if (!id.ok()) {
      std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
      return 1;
    }
    const double submit_seconds = Seconds(submit_begin, Clock::now());
    // First experiment observed = the service layer's full pipeline
    // (journal commit, scheduler claim, executor start) has delivered.
    double first_result_seconds = 0.0;
    for (;;) {
      auto status = (*core)->GetStatus(*id);
      if (status.ok() && status->experiments_done > 0) {
        first_result_seconds = Seconds(submit_begin, Clock::now());
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    AwaitAll(**core, {*id});
    std::printf("submit latency: %.1f ms (journal commit) / %.1f ms to "
                "first experiment\n",
                1e3 * submit_seconds, 1e3 * first_result_seconds);
    json.BeginEntry()
        .Field("measure", "submit_to_first_result")
        .Field("submit_ms", 1e3 * submit_seconds)
        .Field("first_result_ms", 1e3 * first_result_seconds);
    (*core)->Drain();
    fs::remove_all(root);
  }

  // ---- 2. sequential one-shot baseline ---------------------------------
  double sequential_seconds = 0.0;
  {
    const auto begin = Clock::now();
    for (int i = 0; i < kCampaigns; ++i) {
      const std::string dir = FreshRoot("seq" + std::to_string(i));
      service::ExecutionRequest request;
      request.db_dir = dir;
      request.config_text = Ini("seq" + std::to_string(i), kExperiments);
      auto summary = service::ExecuteSubmission(request);
      if (!summary.ok()) {
        std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
        return 1;
      }
      fs::remove_all(dir);
    }
    sequential_seconds = Seconds(begin, Clock::now());
    std::printf("sequential %d x %d experiments: %.2f s\n", kCampaigns,
                kExperiments, sequential_seconds);
  }

  // ---- 3. multiplexed over a shared fleet ------------------------------
  for (const std::size_t fleet : {2u, 4u}) {
    const std::string root = FreshRoot("fleet" + std::to_string(fleet));
    service::ServiceConfig config;
    config.root = root;
    config.fleet_workers = fleet;
    config.max_campaign_jobs = fleet;
    auto core = service::ServiceCore::Start(config);
    if (!core.ok()) {
      std::fprintf(stderr, "%s\n", core.status().ToString().c_str());
      return 1;
    }
    const auto begin = Clock::now();
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < kCampaigns; ++i) {
      auto id = (*core)->Submit(
          Ini("mux" + std::to_string(i), kExperiments));
      if (!id.ok()) {
        std::fprintf(stderr, "%s\n", id.status().ToString().c_str());
        return 1;
      }
      ids.push_back(*id);
    }
    AwaitAll(**core, ids);
    const double multiplexed_seconds = Seconds(begin, Clock::now());
    const double speedup = multiplexed_seconds > 0.0
                               ? sequential_seconds / multiplexed_seconds
                               : 0.0;
    std::printf("fleet=%zu multiplexed %d campaigns: %.2f s "
                "(%.2fx vs sequential)\n",
                fleet, kCampaigns, multiplexed_seconds, speedup);
    json.BeginEntry()
        .Field("measure", "multiplexed_fleet")
        .Field("fleet_workers", static_cast<std::uint64_t>(fleet))
        .Field("campaigns", static_cast<std::uint64_t>(kCampaigns))
        .Field("experiments_each", static_cast<std::uint64_t>(kExperiments))
        .Field("sequential_s", sequential_seconds)
        .Field("multiplexed_s", multiplexed_seconds)
        .Field("speedup", speedup);
    (*core)->Drain();
    fs::remove_all(root);
  }

  json.Write();
  return 0;
}
