// Experiment T-DB / T-STORAGE (DESIGN.md): throughput of the embedded
// relational engine — the lowest layer of the paper's Fig. 1
// architecture. Campaign logging writes one LoggedSystemState row per
// experiment; the analysis phase reads them back with SQL.
//
// Before the google-benchmark microbenches run, main() produces the
// storage-engine report (BENCH_database.json): durable append
// throughput of the WAL group commit against the legacy full-rewrite
// text save at a campaign-scale row count, and indexed point queries
// against the full scan. Row count defaults to 100000; override with
// GOOFI_BENCH_DB_ROWS for quick runs.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>

#include "bench_util.h"
#include "core/goofi_schema.h"
#include "db/sql/executor.h"
#include "db/sql/parser.h"
#include "util/strings.h"

namespace {

using namespace goofi;
using db::Value;

db::Database MakeGoofiDb() {
  db::Database database;
  if (!core::CreateGoofiSchema(database).ok()) std::abort();
  if (!database
           .Insert("TargetSystemData",
                   {Value::Text_("thor_rd"), Value::Text_("card"),
                    Value::Text_("bench")})
           .ok()) {
    std::abort();
  }
  if (!database
           .Insert(
               "CampaignData",
               {Value::Text_("bench"), Value::Text_("thor_rd"),
                Value::Text_("scifi"), Value::Text_("isort"),
                Value::Integer(1000), Value::Integer(1),
                Value::Text_("transient"), Value::Integer(1),
                Value::Text_(""), Value::Integer(0), Value::Integer(0),
                Value::Text_("instret"), Value::Integer(0),
                Value::Integer(0), Value::Text_("normal"),
                Value::Integer(0), Value::Integer(0), Value::Integer(0),
                Value::Integer(1), Value::Integer(0),
                Value::Text_("configured"), Value::Integer(0),
                Value::Integer(0), Value::Integer(0), Value::Integer(0),
                Value::Integer(0), Value::Integer(0), Value::Null()})
           .ok()) {
    std::abort();
  }
  return database;
}

db::Row LoggedRow(int i) {
  return {Value::Text_(StrFormat("bench/exp%07d", i)), Value::Null(),
          Value::Text_("bench"),
          Value::Text_("technique=scifi;targets=cpu.regs.r3:5"),
          Value::Text_("stop=halted\ninstructions=2639\n"),
          Value::Integer(1), Value::Text_(StrFormat("s%03d", i % 997)),
          Value::Integer(0), Value::Null(), Value::Null()};
}

// ---- storage-engine report (BENCH_database.json) ------------------------

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

void AppendRows(db::Database& database, int first, int count) {
  for (int i = 0; i < count; ++i) {
    if (!database.Insert("LoggedSystemState", LoggedRow(first + i)).ok()) {
      std::abort();
    }
  }
}

void RunStorageReport() {
  namespace fs = std::filesystem;
  using clock = std::chrono::steady_clock;

  int rows = 100000;
  if (const char* env = std::getenv("GOOFI_BENCH_DB_ROWS")) {
    rows = std::max(1000, std::atoi(env));
  }
  constexpr int kBatch = 256;  // rows per durable checkpoint

  bench::BenchJson json("database");

  // Durable bulk load: FK-checked inserts group-committed every kBatch
  // rows, the runner's WAL checkpoint cadence.
  const std::string wal_dir =
      (fs::temp_directory_path() / "goofi_bench_wal").string();
  fs::remove_all(wal_dir);
  db::Database wal_db = MakeGoofiDb();
  if (!wal_db.AttachWal(wal_dir).ok()) std::abort();
  auto begin = clock::now();
  for (int i = 0; i < rows; i += kBatch) {
    AppendRows(wal_db, i, std::min(kBatch, rows - i));
    if (!wal_db.Commit().ok()) std::abort();
  }
  double elapsed = Seconds(begin, clock::now());
  json.BeginEntry()
      .Field("mode", "wal_bulk_load")
      .Field("rows", static_cast<std::uint64_t>(rows))
      .Field("batch", static_cast<std::uint64_t>(kBatch))
      .Field("seconds", elapsed)
      .Field("rows_per_sec", rows / elapsed);

  // Steady-state appends at full size: what one more checkpoint costs
  // once the campaign already holds `rows` experiments.
  constexpr int kWalCheckpoints = 8;
  begin = clock::now();
  for (int k = 0; k < kWalCheckpoints; ++k) {
    AppendRows(wal_db, rows + k * kBatch, kBatch);
    if (!wal_db.Commit().ok()) std::abort();
  }
  const double wal_per_checkpoint =
      Seconds(begin, clock::now()) / kWalCheckpoints;
  json.BeginEntry()
      .Field("mode", "wal_checkpoint_append")
      .Field("base_rows", static_cast<std::uint64_t>(rows))
      .Field("batch", static_cast<std::uint64_t>(kBatch))
      .Field("seconds_per_checkpoint", wal_per_checkpoint)
      .Field("appended_rows_per_sec", kBatch / wal_per_checkpoint);

  // The legacy model: every checkpoint rewrites the whole database as
  // text files.
  const std::string text_dir =
      (fs::temp_directory_path() / "goofi_bench_text").string();
  fs::remove_all(text_dir);
  db::Database text_db = MakeGoofiDb();
  AppendRows(text_db, 0, rows);
  if (!text_db.SaveToDirectory(text_dir).ok()) std::abort();  // warm-up
  constexpr int kTextCheckpoints = 3;
  begin = clock::now();
  for (int k = 0; k < kTextCheckpoints; ++k) {
    AppendRows(text_db, rows + k * kBatch, kBatch);
    if (!text_db.SaveToDirectory(text_dir).ok()) std::abort();
  }
  const double text_per_checkpoint =
      Seconds(begin, clock::now()) / kTextCheckpoints;
  json.BeginEntry()
      .Field("mode", "text_full_rewrite_checkpoint")
      .Field("base_rows", static_cast<std::uint64_t>(rows))
      .Field("batch", static_cast<std::uint64_t>(kBatch))
      .Field("seconds_per_checkpoint", text_per_checkpoint)
      .Field("appended_rows_per_sec", kBatch / text_per_checkpoint);
  json.BeginEntry()
      .Field("mode", "append_speedup")
      .Field("wal_vs_text_full_rewrite",
             text_per_checkpoint / wal_per_checkpoint);

  // Point queries on the secondary-indexed tool_status column (~0.1%
  // selectivity at 997 distinct keys) with and without the index.
  const std::string query =
      "SELECT COUNT(*) FROM LoggedSystemState WHERE tool_status = 's123'";
  auto run_query = [&](int repetitions) {
    const auto query_begin = clock::now();
    for (int q = 0; q < repetitions; ++q) {
      auto result = db::sql::ExecuteSql(wal_db, query);
      if (!result.ok() || result->rows.size() != 1) std::abort();
      benchmark::DoNotOptimize(result->rows);
    }
    return Seconds(query_begin, clock::now()) / repetitions;
  };
  db::sql::SetIndexScanEnabled(false);
  const double scan_per_query = run_query(20);
  db::sql::SetIndexScanEnabled(true);
  db::sql::ResetIndexScanCount();
  const double indexed_per_query = run_query(500);
  if (db::sql::IndexScanCount() == 0) std::abort();
  json.BeginEntry()
      .Field("mode", "query_full_scan")
      .Field("rows", static_cast<std::uint64_t>(rows))
      .Field("seconds_per_query", scan_per_query);
  json.BeginEntry()
      .Field("mode", "query_indexed")
      .Field("rows", static_cast<std::uint64_t>(rows))
      .Field("seconds_per_query", indexed_per_query);
  json.BeginEntry()
      .Field("mode", "query_speedup")
      .Field("indexed_vs_scan", scan_per_query / indexed_per_query);

  json.Write();
  fs::remove_all(wal_dir);
  fs::remove_all(text_dir);
}

// ---- microbenches -------------------------------------------------------

void BM_FkCheckedInsert(benchmark::State& state) {
  db::Database database = MakeGoofiDb();
  int i = 0;
  for (auto _ : state) {
    if (!database.Insert("LoggedSystemState", LoggedRow(i++)).ok()) {
      std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FkCheckedInsert);

void BM_WalCommittedInsert(benchmark::State& state) {
  // FK checks plus durable group commit every 256 rows.
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "goofi_bench_wal_insert").string();
  fs::remove_all(dir);
  db::Database database = MakeGoofiDb();
  if (!database.AttachWal(dir).ok()) std::abort();
  int i = 0;
  for (auto _ : state) {
    if (!database.Insert("LoggedSystemState", LoggedRow(i++)).ok()) {
      std::abort();
    }
    if (i % 256 == 0 && !database.Commit().ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  fs::remove_all(dir);
}
BENCHMARK(BM_WalCommittedInsert);

void BM_PlainTableInsert(benchmark::State& state) {
  // Same row shape without FK checking, for the constraint overhead.
  db::TableSchema schema("plain");
  (void)schema.AddColumn({"experiment_name", db::ColumnType::kText, false,
                          false, true});
  (void)schema.AddColumn({"parent", db::ColumnType::kText});
  (void)schema.AddColumn({"campaign", db::ColumnType::kText, true});
  (void)schema.AddColumn({"data", db::ColumnType::kText});
  (void)schema.AddColumn({"state", db::ColumnType::kText});
  (void)schema.AddColumn({"attempts", db::ColumnType::kInteger});
  (void)schema.AddColumn({"tool_status", db::ColumnType::kText});
  (void)schema.AddColumn({"quarantined", db::ColumnType::kInteger});
  (void)schema.AddColumn({"equiv_class", db::ColumnType::kText});
  (void)schema.AddColumn({"equiv_weight", db::ColumnType::kInteger});
  db::Table table(schema);
  int i = 0;
  for (auto _ : state) {
    if (!table.Insert(LoggedRow(i++)).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainTableInsert);

void BM_IndexedPointLookup(benchmark::State& state) {
  db::Database database = MakeGoofiDb();
  const int rows = static_cast<int>(state.range(0));
  for (int i = 0; i < rows; ++i) {
    (void)database.Insert("LoggedSystemState", LoggedRow(i));
  }
  const db::Table* table = database.FindTable("LoggedSystemState");
  int i = 0;
  for (auto _ : state) {
    const auto found = table->FindByUnique(
        0, Value::Text_(StrFormat("bench/exp%07d", i++ % rows)));
    if (!found) std::abort();
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedPointLookup)->Arg(1000)->Arg(10000);

void BM_SqlSelectWhereIndexed(benchmark::State& state) {
  // Equality on the secondary-indexed tool_status column; toggled by
  // the bench arg so the two modes show up side by side.
  db::Database database = MakeGoofiDb();
  const int rows = 10000;
  for (int i = 0; i < rows; ++i) {
    (void)database.Insert("LoggedSystemState", LoggedRow(i));
  }
  db::sql::SetIndexScanEnabled(state.range(0) != 0);
  for (auto _ : state) {
    auto result = db::sql::ExecuteSql(
        database,
        "SELECT COUNT(*) FROM LoggedSystemState WHERE tool_status = 's42'");
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
  db::sql::SetIndexScanEnabled(true);
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SqlSelectWhereIndexed)->Arg(0)->Arg(1);

void BM_SqlSelectWhereScan(benchmark::State& state) {
  db::Database database = MakeGoofiDb();
  const int rows = static_cast<int>(state.range(0));
  for (int i = 0; i < rows; ++i) {
    (void)database.Insert("LoggedSystemState", LoggedRow(i));
  }
  for (auto _ : state) {
    auto result = db::sql::ExecuteSql(
        database,
        "SELECT COUNT(*) FROM LoggedSystemState WHERE campaign_name = "
        "'bench' AND parent_experiment IS NULL");
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SqlSelectWhereScan)->Arg(1000)->Arg(10000);

void BM_SqlParseOnly(benchmark::State& state) {
  const std::string sql =
      "SELECT experiment_name, state_vector FROM LoggedSystemState WHERE "
      "campaign_name = 'bench' AND experiment_data LIKE '%cpu.regs%' "
      "ORDER BY experiment_name DESC LIMIT 25";
  for (auto _ : state) {
    auto parsed = db::sql::ParseStatement(sql);
    if (!parsed.ok()) std::abort();
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlParseOnly);

void BM_SqlGroupByAggregate(benchmark::State& state) {
  db::Database database;
  if (!db::sql::ExecuteSql(database,
                           "CREATE TABLE outcomes (id INTEGER PRIMARY KEY, "
                           "class TEXT, bits INTEGER)")
           .ok()) {
    std::abort();
  }
  const char* classes[] = {"detected", "escaped", "latent", "overwritten"};
  for (int i = 0; i < 4000; ++i) {
    (void)database.Insert("outcomes",
                          {Value::Integer(i), Value::Text_(classes[i % 4]),
                           Value::Integer(i % 97)});
  }
  for (auto _ : state) {
    auto result = db::sql::ExecuteSql(
        database,
        "SELECT class, COUNT(*), AVG(bits) FROM outcomes GROUP BY class");
    if (!result.ok() || result->rows.size() != 4) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_SqlGroupByAggregate);

void BM_SaveLoadRoundTrip(benchmark::State& state) {
  db::Database database = MakeGoofiDb();
  for (int i = 0; i < 500; ++i) {
    (void)database.Insert("LoggedSystemState", LoggedRow(i));
  }
  const std::string dir = "/tmp/goofi_bench_db";
  for (auto _ : state) {
    if (!database.SaveToDirectory(dir).ok()) std::abort();
    auto loaded = db::Database::LoadFromDirectory(dir);
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_SaveLoadRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  RunStorageReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
