// Experiment T-DB (DESIGN.md): throughput of the embedded relational
// engine — the lowest layer of the paper's Fig. 1 architecture. Campaign
// logging writes one LoggedSystemState row per experiment; the analysis
// phase reads them back with SQL.
#include <benchmark/benchmark.h>

#include "core/goofi_schema.h"
#include "db/sql/executor.h"
#include "db/sql/parser.h"
#include "util/strings.h"

namespace {

using namespace goofi;
using db::Value;

db::Database MakeGoofiDb() {
  db::Database database;
  if (!core::CreateGoofiSchema(database).ok()) std::abort();
  (void)database.Insert("TargetSystemData",
                        {Value::Text_("thor_rd"), Value::Text_("card"),
                         Value::Text_("bench")});
  (void)database.Insert(
      "CampaignData",
      {Value::Text_("bench"), Value::Text_("thor_rd"), Value::Text_("scifi"),
       Value::Text_("isort"), Value::Integer(1000), Value::Integer(1),
       Value::Text_("transient"), Value::Integer(1), Value::Text_(""),
       Value::Integer(0), Value::Integer(0), Value::Text_("instret"),
       Value::Integer(0), Value::Integer(0), Value::Text_("normal"),
       Value::Integer(0), Value::Integer(0), Value::Integer(0),
       Value::Integer(1), Value::Text_("configured"), Value::Integer(0)});
  return database;
}

db::Row LoggedRow(int i) {
  return {Value::Text_(StrFormat("bench/exp%07d", i)), Value::Null(),
          Value::Text_("bench"),
          Value::Text_("technique=scifi;targets=cpu.regs.r3:5"),
          Value::Text_("stop=halted\ninstructions=2639\n")};
}

void BM_FkCheckedInsert(benchmark::State& state) {
  db::Database database = MakeGoofiDb();
  int i = 0;
  for (auto _ : state) {
    if (!database.Insert("LoggedSystemState", LoggedRow(i++)).ok()) {
      std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FkCheckedInsert);

void BM_PlainTableInsert(benchmark::State& state) {
  // Same row shape without FK checking, for the constraint overhead.
  db::TableSchema schema("plain");
  (void)schema.AddColumn({"experiment_name", db::ColumnType::kText, false,
                          false, true});
  (void)schema.AddColumn({"parent", db::ColumnType::kText, false, false,
                          false});
  (void)schema.AddColumn({"campaign", db::ColumnType::kText, true, false,
                          false});
  (void)schema.AddColumn({"data", db::ColumnType::kText, false, false,
                          false});
  (void)schema.AddColumn({"state", db::ColumnType::kText, false, false,
                          false});
  db::Table table(schema);
  int i = 0;
  for (auto _ : state) {
    if (!table.Insert(LoggedRow(i++)).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PlainTableInsert);

void BM_IndexedPointLookup(benchmark::State& state) {
  db::Database database = MakeGoofiDb();
  const int rows = static_cast<int>(state.range(0));
  for (int i = 0; i < rows; ++i) {
    (void)database.Insert("LoggedSystemState", LoggedRow(i));
  }
  const db::Table* table = database.FindTable("LoggedSystemState");
  int i = 0;
  for (auto _ : state) {
    const auto found = table->FindByUnique(
        0, Value::Text_(StrFormat("bench/exp%07d", i++ % rows)));
    if (!found) std::abort();
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedPointLookup)->Arg(1000)->Arg(10000);

void BM_SqlSelectWhereScan(benchmark::State& state) {
  db::Database database = MakeGoofiDb();
  const int rows = static_cast<int>(state.range(0));
  for (int i = 0; i < rows; ++i) {
    (void)database.Insert("LoggedSystemState", LoggedRow(i));
  }
  for (auto _ : state) {
    auto result = db::sql::ExecuteSql(
        database,
        "SELECT COUNT(*) FROM LoggedSystemState WHERE campaign_name = "
        "'bench' AND parent_experiment IS NULL");
    if (!result.ok()) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_SqlSelectWhereScan)->Arg(1000)->Arg(10000);

void BM_SqlParseOnly(benchmark::State& state) {
  const std::string sql =
      "SELECT experiment_name, state_vector FROM LoggedSystemState WHERE "
      "campaign_name = 'bench' AND experiment_data LIKE '%cpu.regs%' "
      "ORDER BY experiment_name DESC LIMIT 25";
  for (auto _ : state) {
    auto parsed = db::sql::ParseStatement(sql);
    if (!parsed.ok()) std::abort();
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SqlParseOnly);

void BM_SqlGroupByAggregate(benchmark::State& state) {
  db::Database database;
  if (!db::sql::ExecuteSql(database,
                           "CREATE TABLE outcomes (id INTEGER PRIMARY KEY, "
                           "class TEXT, bits INTEGER)")
           .ok()) {
    std::abort();
  }
  const char* classes[] = {"detected", "escaped", "latent", "overwritten"};
  for (int i = 0; i < 4000; ++i) {
    (void)database.Insert("outcomes",
                          {Value::Integer(i), Value::Text_(classes[i % 4]),
                           Value::Integer(i % 97)});
  }
  for (auto _ : state) {
    auto result = db::sql::ExecuteSql(
        database,
        "SELECT class, COUNT(*), AVG(bits) FROM outcomes GROUP BY class");
    if (!result.ok() || result->rows.size() != 4) std::abort();
    benchmark::DoNotOptimize(result->rows);
  }
  state.SetItemsProcessed(state.iterations() * 4000);
}
BENCHMARK(BM_SqlGroupByAggregate);

void BM_SaveLoadRoundTrip(benchmark::State& state) {
  db::Database database = MakeGoofiDb();
  for (int i = 0; i < 500; ++i) {
    (void)database.Insert("LoggedSystemState", LoggedRow(i));
  }
  const std::string dir = "/tmp/goofi_bench_db";
  for (auto _ : state) {
    if (!database.SaveToDirectory(dir).ok()) std::abort();
    auto loaded = db::Database::LoadFromDirectory(dir);
    if (!loaded.ok()) std::abort();
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_SaveLoadRoundTrip);

}  // namespace

BENCHMARK_MAIN();
