// Shared plumbing for the experiment benches: run a campaign end to end
// and print taxonomy rows in the shape of the paper's §3.4 measures.
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/goofi.h"
#include "util/strings.h"

namespace goofi::bench {

struct CampaignRun {
  core::CampaignSummary summary;
  core::CampaignAnalysis analysis;
  double wall_seconds = 0.0;
};

// Store + run + analyze `config` against a fresh Thor RD target bound to
// `database`. Aborts the process on tool errors (benches have no user to
// report to). `checkpoint` forces checkpoint-fork execution on or off
// for the run (execution-only; the stored campaign row and the logged
// results are identical either way).
inline CampaignRun RunCampaign(db::Database& database,
                               target::TargetSystemInterface& target,
                               const core::CampaignConfig& config,
                               std::optional<bool> checkpoint
                               = std::nullopt) {
  auto workload = target::GetBuiltinWorkload(config.workload);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload %s: %s\n", config.workload.c_str(),
                 workload.status().ToString().c_str());
    std::abort();
  }
  if (auto s = target.SetWorkload(*workload); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::abort();
  }
  if (auto s = core::RegisterTargetSystem(database, target, "bench-card",
                                          "bench board");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::abort();
  }
  if (auto s = core::StoreCampaign(database, config); !s.ok()) {
    std::fprintf(stderr, "store %s: %s\n", config.name.c_str(),
                 s.ToString().c_str());
    std::abort();
  }
  core::CampaignRunner runner(&database, &target);
  runner.set_checkpoint_fork(checkpoint);
  const auto begin = std::chrono::steady_clock::now();
  auto summary = runner.Run(config.name);
  const auto end = std::chrono::steady_clock::now();
  if (!summary.ok()) {
    std::fprintf(stderr, "run %s: %s\n", config.name.c_str(),
                 summary.status().ToString().c_str());
    std::abort();
  }
  auto analysis = core::AnalyzeCampaign(database, config.name);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analyze %s: %s\n", config.name.c_str(),
                 analysis.status().ToString().c_str());
    std::abort();
  }
  CampaignRun run;
  run.summary = std::move(*summary);
  run.analysis = std::move(*analysis);
  run.wall_seconds =
      std::chrono::duration<double>(end - begin).count();
  return run;
}

// ---- machine-readable bench reports ------------------------------------
// Accumulates flat entries and writes BENCH_<name>.json in the working
// directory, so CI and EXPERIMENTS.md consume the same numbers the bench
// prints. Values are pre-rendered JSON tokens; the overloads cover every
// type the benches report.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  BenchJson& BeginEntry() {
    entries_.emplace_back();
    return *this;
  }
  BenchJson& Field(const std::string& key, const std::string& value) {
    return Raw(key, "\"" + Escaped(value) + "\"");
  }
  BenchJson& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  BenchJson& Field(const std::string& key, double value) {
    return Raw(key, StrFormat("%.4f", value));
  }
  BenchJson& Field(const std::string& key, std::uint64_t value) {
    return Raw(key, StrFormat("%llu",
                              static_cast<unsigned long long>(value)));
  }
  BenchJson& Field(const std::string& key, bool value) {
    return Raw(key, value ? "true" : "false");
  }

  // Writes BENCH_<name>.json; aborts on I/O failure like the rest of
  // the bench plumbing.
  void Write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    std::string text = "{\n  \"bench\": \"" + Escaped(name_) +
                       "\",\n  \"entries\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      text += "    {";
      for (std::size_t f = 0; f < entries_[i].size(); ++f) {
        if (f != 0) text += ", ";
        text += "\"" + Escaped(entries_[i][f].first) +
                "\": " + entries_[i][f].second;
      }
      text += i + 1 < entries_.size() ? "},\n" : "}\n";
    }
    text += "  ]\n}\n";
    out << text;
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::abort();
    }
    std::printf("wrote %s (%zu entries)\n", path.c_str(), entries_.size());
  }

 private:
  static std::string Escaped(const std::string& text) {
    std::string out;
    for (const char c : text) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }
  BenchJson& Raw(const std::string& key, std::string token) {
    if (entries_.empty()) entries_.emplace_back();
    entries_.back().emplace_back(key, std::move(token));
    return *this;
  }

  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> entries_;
};

inline void PrintTaxonomyHeader(const char* first_column) {
  std::printf(
      "%-16s %6s | %8s %8s | %8s %8s %8s | %8s %12s\n", first_column, "N",
      "detect", "escape", "latent", "overwr", "noinj", "cover", "cover95");
}

inline void PrintTaxonomyRow(const std::string& label,
                             const core::CampaignAnalysis& analysis) {
  std::printf(
      "%-16s %6zu | %8zu %8zu | %8zu %8zu %8zu | %7.1f%% [%4.1f,%5.1f]%%\n",
      label.c_str(), analysis.total, analysis.detected, analysis.escaped,
      analysis.latent, analysis.overwritten, analysis.not_injected,
      100.0 * analysis.detection_coverage.estimate,
      100.0 * analysis.detection_coverage.low,
      100.0 * analysis.detection_coverage.high);
}

}  // namespace goofi::bench
