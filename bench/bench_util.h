// Shared plumbing for the experiment benches: run a campaign end to end
// and print taxonomy rows in the shape of the paper's §3.4 measures.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "core/goofi.h"
#include "util/strings.h"

namespace goofi::bench {

struct CampaignRun {
  core::CampaignSummary summary;
  core::CampaignAnalysis analysis;
  double wall_seconds = 0.0;
};

// Store + run + analyze `config` against a fresh Thor RD target bound to
// `database`. Aborts the process on tool errors (benches have no user to
// report to).
inline CampaignRun RunCampaign(db::Database& database,
                               target::TargetSystemInterface& target,
                               const core::CampaignConfig& config) {
  auto workload = target::GetBuiltinWorkload(config.workload);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload %s: %s\n", config.workload.c_str(),
                 workload.status().ToString().c_str());
    std::abort();
  }
  if (auto s = target.SetWorkload(*workload); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::abort();
  }
  if (auto s = core::RegisterTargetSystem(database, target, "bench-card",
                                          "bench board");
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    std::abort();
  }
  if (auto s = core::StoreCampaign(database, config); !s.ok()) {
    std::fprintf(stderr, "store %s: %s\n", config.name.c_str(),
                 s.ToString().c_str());
    std::abort();
  }
  core::CampaignRunner runner(&database, &target);
  const auto begin = std::chrono::steady_clock::now();
  auto summary = runner.Run(config.name);
  const auto end = std::chrono::steady_clock::now();
  if (!summary.ok()) {
    std::fprintf(stderr, "run %s: %s\n", config.name.c_str(),
                 summary.status().ToString().c_str());
    std::abort();
  }
  auto analysis = core::AnalyzeCampaign(database, config.name);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analyze %s: %s\n", config.name.c_str(),
                 analysis.status().ToString().c_str());
    std::abort();
  }
  CampaignRun run;
  run.summary = std::move(*summary);
  run.analysis = std::move(*analysis);
  run.wall_seconds =
      std::chrono::duration<double>(end - begin).count();
  return run;
}

inline void PrintTaxonomyHeader(const char* first_column) {
  std::printf(
      "%-16s %6s | %8s %8s | %8s %8s %8s | %8s %12s\n", first_column, "N",
      "detect", "escape", "latent", "overwr", "noinj", "cover", "cover95");
}

inline void PrintTaxonomyRow(const std::string& label,
                             const core::CampaignAnalysis& analysis) {
  std::printf(
      "%-16s %6zu | %8zu %8zu | %8zu %8zu %8zu | %7.1f%% [%4.1f,%5.1f]%%\n",
      label.c_str(), analysis.total, analysis.detected, analysis.escaped,
      analysis.latent, analysis.overwritten, analysis.not_injected,
      100.0 * analysis.detection_coverage.estimate,
      100.0 * analysis.detection_coverage.low,
      100.0 * analysis.detection_coverage.high);
}

}  // namespace goofi::bench
