// Experiment T-TARGETS (DESIGN.md extension): Thor vs Thor RD.
//
// The paper: the Thor RD "is an improved version of the Thor
// microprocessor evaluated in [10] featuring parity protected
// instruction and data caches". Running the identical SCIFI campaign
// (same seed, same scan-chain location space) on both boards measures
// what the parity upgrade buys — the FTCS-28 companion's
// coverage-improvement story as a controlled A/B experiment.
#include "bench_util.h"

int main() {
  using namespace goofi;
  std::printf("== T-TARGETS: Thor (no cache parity) vs Thor RD ==\n");
  std::printf("(identical 400-fault SCIFI campaigns, cache-array and "
              "register faults)\n\n");
  bench::PrintTaxonomyHeader("target");

  core::CampaignAnalysis results[2];
  int row = 0;
  for (const bool rad_hard : {false, true}) {
    db::Database database;
    std::unique_ptr<target::ThorRdTarget> board =
        rad_hard ? std::make_unique<target::ThorRdTarget>()
                 : target::MakeThorTarget();
    core::CampaignConfig config;
    config.name = rad_hard ? "ab_thor_rd" : "ab_thor";
    config.target = board->target_name();
    config.workload = "isort";
    config.num_experiments = 400;
    config.seed = 1998;  // FTCS-28
    config.location_filters = {"cpu.regs.*", "icache.*", "dcache.*"};
    const bench::CampaignRun run =
        bench::RunCampaign(database, *board, config);
    bench::PrintTaxonomyRow(board->target_name(), run.analysis);
    results[row++] = run.analysis;
  }

  const double thor = results[0].detection_coverage.estimate;
  const double thor_rd = results[1].detection_coverage.estimate;
  std::printf("\ncoverage improvement from the parity-protected caches: "
              "%.1f%% -> %.1f%% (%.1fx)\n",
              100.0 * thor, 100.0 * thor_rd,
              thor > 0 ? thor_rd / thor : 0.0);
  std::printf("escaped+latent errors: thor=%zu, thor_rd=%zu\n",
              results[0].escaped + results[0].latent,
              results[1].escaped + results[1].latent);
  std::printf(
      "\nExpected shape: with ~89%% of the scan-chain bits in the cache\n"
      "arrays, the parity checkers dominate detection; the Thor board\n"
      "leaves those same faults latent (most cache corruption is read\n"
      "as plain wrong data or never read at all).\n");
  return 0;
}
