#include "sim/access_recorder.h"

namespace goofi::sim {

void AccessRecorder::OnInstructionRetired(const Cpu& cpu,
                                          const Instruction& instruction,
                                          std::uint64_t time,
                                          std::uint32_t pc) {
  (void)cpu;
  (void)instruction;
  if (pc_trace_.size() <= time) pc_trace_.resize(time + 1, 0);
  pc_trace_[time] = pc;
}

void AccessRecorder::OnRegisterRead(unsigned reg, std::uint64_t time) {
  if (reg == 0 || reg >= 16) return;  // r0 is never live
  reg_events_[reg].push_back({time, /*is_write=*/false});
}

void AccessRecorder::OnRegisterWrite(unsigned reg, std::uint32_t old_value,
                                     std::uint32_t new_value,
                                     std::uint64_t time) {
  (void)old_value;
  (void)new_value;
  if (reg == 0 || reg >= 16) return;
  reg_events_[reg].push_back({time, /*is_write=*/true});
}

void AccessRecorder::OnMemoryRead(std::uint32_t address, unsigned bytes,
                                  std::uint64_t time) {
  (void)bytes;
  mem_events_[address & ~3u].push_back({time, /*is_write=*/false});
}

void AccessRecorder::OnMemoryWrite(std::uint32_t address, unsigned bytes,
                                   std::uint32_t value, std::uint64_t time) {
  (void)value;
  // A byte store only overwrites part of the word: treat it as a read-
  // modify-write so liveness stays conservative (the untouched bytes'
  // bits remain live).
  if (bytes < 4) {
    mem_events_[address & ~3u].push_back({time, /*is_write=*/false});
  }
  mem_events_[address & ~3u].push_back({time, /*is_write=*/true});
}

void AccessRecorder::Clear() {
  for (auto& events : reg_events_) events.clear();
  mem_events_.clear();
  pc_trace_.clear();
}

}  // namespace goofi::sim
