// Execution-observation interface.
//
// Two GOOFI features hang off this: detail-mode logging ("the system
// state is logged as frequently as the target system allows, typically
// after the execution of each machine instruction") and the pre-injection
// liveness analysis extension (which needs every register/memory
// read/write with its time).
#pragma once

#include <cstdint>

namespace goofi::sim {

class Cpu;
struct Instruction;

class Tracer {
 public:
  virtual ~Tracer() = default;

  // After an instruction retires. `time` is the executed-instruction
  // count *before* this instruction (i.e. its position in the run),
  // `pc` its address.
  virtual void OnInstructionRetired(const Cpu& cpu,
                                    const Instruction& instruction,
                                    std::uint64_t time, std::uint32_t pc) {
    (void)cpu; (void)instruction; (void)time; (void)pc;
  }

  virtual void OnRegisterRead(unsigned reg, std::uint64_t time) {
    (void)reg; (void)time;
  }
  virtual void OnRegisterWrite(unsigned reg, std::uint32_t old_value,
                               std::uint32_t new_value, std::uint64_t time) {
    (void)reg; (void)old_value; (void)new_value; (void)time;
  }
  virtual void OnMemoryRead(std::uint32_t address, unsigned bytes,
                            std::uint64_t time) {
    (void)address; (void)bytes; (void)time;
  }
  virtual void OnMemoryWrite(std::uint32_t address, unsigned bytes,
                             std::uint32_t value, std::uint64_t time) {
    (void)address; (void)bytes; (void)value; (void)time;
  }
};

}  // namespace goofi::sim
