#include "sim/edm.h"

#include "util/strings.h"

namespace goofi::sim {

const char* EdmTypeName(EdmType type) {
  switch (type) {
    case EdmType::kIllegalOpcode: return "illegal_opcode";
    case EdmType::kMemProtection: return "mem_protection";
    case EdmType::kMisalignedAccess: return "misaligned_access";
    case EdmType::kPcOutOfRange: return "pc_out_of_range";
    case EdmType::kDivByZero: return "div_by_zero";
    case EdmType::kArithOverflow: return "arith_overflow";
    case EdmType::kIcacheParity: return "icache_parity";
    case EdmType::kDcacheParity: return "dcache_parity";
    case EdmType::kWatchdog: return "watchdog";
    case EdmType::kAssertion: return "assertion";
  }
  return "?";
}

std::optional<EdmType> EdmTypeFromName(const std::string& name) {
  for (int i = 0; i < kEdmTypeCount; ++i) {
    const EdmType type = static_cast<EdmType>(i);
    if (EqualsIgnoreCase(name, EdmTypeName(type))) return type;
  }
  return std::nullopt;
}

}  // namespace goofi::sim
