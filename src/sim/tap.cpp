#include "sim/tap.h"

#include <cassert>

namespace goofi::sim {

const char* TapStateName(TapState state) {
  switch (state) {
    case TapState::kTestLogicReset: return "Test-Logic-Reset";
    case TapState::kRunTestIdle: return "Run-Test/Idle";
    case TapState::kSelectDrScan: return "Select-DR-Scan";
    case TapState::kCaptureDr: return "Capture-DR";
    case TapState::kShiftDr: return "Shift-DR";
    case TapState::kExit1Dr: return "Exit1-DR";
    case TapState::kPauseDr: return "Pause-DR";
    case TapState::kExit2Dr: return "Exit2-DR";
    case TapState::kUpdateDr: return "Update-DR";
    case TapState::kSelectIrScan: return "Select-IR-Scan";
    case TapState::kCaptureIr: return "Capture-IR";
    case TapState::kShiftIr: return "Shift-IR";
    case TapState::kExit1Ir: return "Exit1-IR";
    case TapState::kPauseIr: return "Pause-IR";
    case TapState::kExit2Ir: return "Exit2-IR";
    case TapState::kUpdateIr: return "Update-IR";
  }
  return "?";
}

TapController::TapController(const ScanChainSet* chains, Cpu* cpu)
    : chains_(chains), cpu_(cpu) {
  dr_shift_.Resize(1);
}

TapState TapController::NextState(bool tms) const {
  // The IEEE 1149.1 state graph.
  switch (state_) {
    case TapState::kTestLogicReset:
      return tms ? TapState::kTestLogicReset : TapState::kRunTestIdle;
    case TapState::kRunTestIdle:
      return tms ? TapState::kSelectDrScan : TapState::kRunTestIdle;
    case TapState::kSelectDrScan:
      return tms ? TapState::kSelectIrScan : TapState::kCaptureDr;
    case TapState::kCaptureDr:
      return tms ? TapState::kExit1Dr : TapState::kShiftDr;
    case TapState::kShiftDr:
      return tms ? TapState::kExit1Dr : TapState::kShiftDr;
    case TapState::kExit1Dr:
      return tms ? TapState::kUpdateDr : TapState::kPauseDr;
    case TapState::kPauseDr:
      return tms ? TapState::kExit2Dr : TapState::kPauseDr;
    case TapState::kExit2Dr:
      return tms ? TapState::kUpdateDr : TapState::kShiftDr;
    case TapState::kUpdateDr:
      return tms ? TapState::kSelectDrScan : TapState::kRunTestIdle;
    case TapState::kSelectIrScan:
      return tms ? TapState::kTestLogicReset : TapState::kCaptureIr;
    case TapState::kCaptureIr:
      return tms ? TapState::kExit1Ir : TapState::kShiftIr;
    case TapState::kShiftIr:
      return tms ? TapState::kExit1Ir : TapState::kShiftIr;
    case TapState::kExit1Ir:
      return tms ? TapState::kUpdateIr : TapState::kPauseIr;
    case TapState::kPauseIr:
      return tms ? TapState::kExit2Ir : TapState::kPauseIr;
    case TapState::kExit2Ir:
      return tms ? TapState::kUpdateIr : TapState::kShiftIr;
    case TapState::kUpdateIr:
      return tms ? TapState::kSelectDrScan : TapState::kRunTestIdle;
  }
  return TapState::kTestLogicReset;
}

std::size_t TapController::SelectedRegisterLength() const {
  switch (instruction_) {
    case TapInstruction::kIdcode: return 32;
    case TapInstruction::kBypass: return 1;
    case TapInstruction::kScanInternal: {
      const ScanChain* chain = chains_->FindChain("internal");
      return chain != nullptr ? chain->bit_length() : 1;
    }
    case TapInstruction::kScanBoundary: {
      const ScanChain* chain = chains_->FindChain("boundary");
      return chain != nullptr ? chain->bit_length() : 1;
    }
  }
  return 1;
}

void TapController::CaptureSelected() {
  dr_length_ = SelectedRegisterLength();
  switch (instruction_) {
    case TapInstruction::kIdcode:
      dr_shift_.Resize(32);
      dr_shift_.SetField(0, 32, 0x7408D001u);
      break;
    case TapInstruction::kBypass:
      dr_shift_.Resize(1);
      dr_shift_.Set(0, false);
      break;
    case TapInstruction::kScanInternal:
      dr_shift_ = chains_->FindChain("internal")->Capture(*cpu_);
      break;
    case TapInstruction::kScanBoundary:
      dr_shift_ = chains_->FindChain("boundary")->Capture(*cpu_);
      break;
  }
}

void TapController::UpdateSelected() {
  switch (instruction_) {
    case TapInstruction::kIdcode:
    case TapInstruction::kBypass:
      break;  // no update side effect
    case TapInstruction::kScanInternal:
      chains_->FindChain("internal")->Apply(*cpu_, dr_shift_);
      break;
    case TapInstruction::kScanBoundary:
      chains_->FindChain("boundary")->Apply(*cpu_, dr_shift_);
      break;
  }
}

bool TapController::Clock(bool tms, bool tdi) {
  ++tck_cycles_;
  bool tdo = false;
  // Actions of the *current* state on this clock.
  switch (state_) {
    case TapState::kCaptureDr:
      CaptureSelected();
      break;
    case TapState::kShiftDr:
      // Bit 0 exits on TDO; TDI enters at the top.
      tdo = dr_shift_.ShiftRightInsertTop(tdi);
      break;
    case TapState::kCaptureIr:
      ir_shift_ = 0x1;  // IEEE: capture 0b...01
      break;
    case TapState::kShiftIr:
      tdo = (ir_shift_ & 1) != 0;
      ir_shift_ = static_cast<std::uint8_t>(
          (ir_shift_ >> 1) | (tdi ? 0x8 : 0x0));
      break;
    default:
      break;
  }
  const TapState next = NextState(tms);
  // Update actions fire on entering the update states.
  if (next == TapState::kUpdateDr && state_ != TapState::kUpdateDr) {
    // dr_shift_ now holds the image shifted in through TDI.
    UpdateSelected();
  }
  if (next == TapState::kUpdateIr && state_ != TapState::kUpdateIr) {
    instruction_ = static_cast<TapInstruction>(ir_shift_ & 0xf);
  }
  if (next == TapState::kTestLogicReset) {
    instruction_ = TapInstruction::kBypass;
  }
  state_ = next;
  return tdo;
}

void TapController::Reset() {
  for (int i = 0; i < 5; ++i) Clock(/*tms=*/true, /*tdi=*/false);
  Clock(/*tms=*/false, /*tdi=*/false);  // settle in Run-Test/Idle
}

void TapController::LoadInstruction(TapInstruction instruction) {
  // From Run-Test/Idle: 1,1 -> Select-IR; 0 -> Capture-IR; 0 -> Shift-IR.
  if (state_ == TapState::kTestLogicReset) Clock(false, false);
  assert(state_ == TapState::kRunTestIdle);
  Clock(true, false);   // Select-DR-Scan
  Clock(true, false);   // Select-IR-Scan
  Clock(false, false);  // Capture-IR
  Clock(false, false);  // -> Shift-IR (capture happened on that clock)
  const std::uint8_t bits = static_cast<std::uint8_t>(instruction);
  // Shift 4 bits, LSB first; the last shift exits to Exit1-IR.
  for (int i = 0; i < 4; ++i) {
    const bool tdi = ((bits >> i) & 1) != 0;
    Clock(/*tms=*/i == 3, tdi);
  }
  Clock(true, false);   // Update-IR (instruction latched here)
  Clock(false, false);  // Run-Test/Idle
}

BitVector TapController::ReadDataRegister() {
  // Read without modifying: shift the captured image out and right back
  // in (the bits we shift in are the ones we just read).
  assert(state_ == TapState::kRunTestIdle);
  Clock(true, false);   // Select-DR-Scan
  Clock(false, false);  // Capture-DR
  Clock(false, false);  // -> Shift-DR (capture happened on that clock)
  const std::size_t n = SelectedRegisterLength();
  BitVector out(n);
  // First pass: read all bits, feeding zeros.
  for (std::size_t i = 0; i < n; ++i) {
    const bool tdo = Clock(/*tms=*/i + 1 == n, /*tdi=*/false);
    out.Set(i, tdo);
  }
  // state: Exit1-DR. Avoid Update-DR (which would apply the zeros we
  // shifted in): Exit1 -> Pause -> Exit2 -> Shift, re-shift the original
  // image, then update. Cheaper: go through Update but first restore the
  // image by a second full rotation. Simplest correct path: re-enter
  // Shift-DR and shift the saved image back in, then update.
  Clock(false, false);  // Pause-DR
  Clock(true, false);   // Exit2-DR
  Clock(false, false);  // Shift-DR
  for (std::size_t i = 0; i < n; ++i) {
    Clock(/*tms=*/i + 1 == n, out.Get(i));
  }
  Clock(true, false);   // Update-DR (writes back what we read: no-op image)
  Clock(false, false);  // Run-Test/Idle
  return out;
}

BitVector TapController::ExchangeDataRegister(const BitVector& image) {
  assert(state_ == TapState::kRunTestIdle);
  assert(image.size() == SelectedRegisterLength());
  Clock(true, false);   // Select-DR-Scan
  Clock(false, false);  // Capture-DR
  Clock(false, false);  // -> Shift-DR
  const std::size_t n = image.size();
  BitVector out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool tdo = Clock(/*tms=*/i + 1 == n, image.Get(i));
    out.Set(i, tdo);
  }
  Clock(true, false);   // Update-DR: the shifted-in image is applied
  Clock(false, false);  // Run-Test/Idle
  return out;
}

}  // namespace goofi::sim
