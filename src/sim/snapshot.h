// Full simulator state snapshots: the substrate of checkpoint-fork
// experiment execution.
//
// Replaying a workload from reset up to the injection trigger dominates
// campaign wall-clock cost (the overhead the paper's pre-injection
// analysis was meant to shrink); ZOFI-style execution instead runs the
// golden reference once and starts each faulty run from saved state
// near the fault's firing point. A Snapshot is that saved state: every
// bit a fault model or EDM can observe — CPU architectural state, the
// parity-protected I/D cache arrays, the memory image, the TAP
// controller — captured as plain values so a snapshot taken on one
// simulator instance restores bit-exactly onto another (the parallel
// runner's factory-minted workers).
//
// Each component exposes CaptureState()/RestoreState() over its own
// sub-state struct; targets aggregate them into a Snapshot behind
// TargetSystemInterface. Restore validates geometry (segment layout,
// cache shape) and fails loudly on a mismatch instead of silently
// corrupting the run.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sim/access_recorder.h"
#include "sim/cache.h"
#include "sim/cpu.h"
#include "sim/fault_injector.h"
#include "sim/memory.h"
#include "sim/tap.h"
#include "util/bitvector.h"

namespace goofi::sim {

// Every array bit of one cache: valid/tag/data words and the stored
// parity bits (the scan-reachable fault locations), plus the running
// statistics so a restored run's counters match replay-from-reset.
struct CacheState {
  std::vector<CacheLine> lines;
  CacheStats stats;
};

// Segment contents by backing index; the segment map itself is part of
// the board's identity (test_card Initialize) and must already match.
struct MemoryState {
  std::vector<std::vector<std::uint8_t>> backings;
};

// The CPU's complete run state: architectural registers and latches,
// run-status counters, the emitted-output and EDM event logs, and the
// owned memory image and cache arrays. Post-step fault hooks, the
// tracer connection and the trap-handler configuration are driver-side
// wiring re-established by the target's run phases, not state.
struct CpuState {
  std::array<std::uint32_t, 16> regs{};
  std::uint32_t pc = 0;
  std::uint32_t ir = 0;
  std::uint32_t mar = 0;
  std::uint32_t mdr = 0;
  std::uint32_t wdt = 0;
  bool ir_valid = false;
  bool halted = false;
  std::uint64_t instret = 0;
  std::uint64_t iterations = 0;
  std::uint64_t recoveries = 0;
  std::vector<std::uint32_t> emitted;
  std::vector<EdmEvent> edm_events;
  MemoryState memory;
  CacheState icache;
  CacheState dcache;
};

// The TAP controller's FSM position and shift registers — a checkpoint
// taken between scan operations restores mid-campaign TAP state exactly.
struct TapControllerState {
  TapState state = TapState::kTestLogicReset;
  TapInstruction instruction = TapInstruction::kBypass;
  std::uint8_t ir_shift = 0;
  BitVector dr_shift;
  std::size_t dr_length = 1;
  std::uint64_t tck_cycles = 0;
};

// The access-path fault injector's armed faults and access counters
// (sim/fault_injector.h). Armed faults are part of the run state: a
// checkpoint taken with a fault armed mid-window must fork into a
// continuation whose remaining applications land on exactly the same
// accesses as replay-from-reset.
struct FaultInjectorState {
  std::vector<ArmedCacheFault> armed;
  std::array<std::uint64_t, kMemUnitCount> unit_accesses{};
  std::uint64_t applied = 0;
  std::uint64_t inflight_flips = 0;
};

// The pre-injection analysis tracer's event streams (core/preinjection
// rebuilds liveness intervals from these).
struct AccessRecorderState {
  std::array<std::vector<AccessEvent>, 16> reg_events;
  std::map<std::uint32_t, std::vector<AccessEvent>> mem_events;
  std::vector<std::uint32_t> pc_trace;
};

// One checkpoint of a target system. Components a target does not have
// stay empty; target-specific state that has no sim component (an
// environment model, a counter machine) rides in `extras` as opaque
// blobs keyed by the target's own names.
struct Snapshot {
  // The golden run's instruction count at capture time — the key the
  // campaign runners use to pick the checkpoint nearest below a
  // trigger. Targets without an instruction counter use their own
  // monotonic time base.
  std::uint64_t instret = 0;
  std::optional<CpuState> cpu;
  std::optional<TapControllerState> tap;
  std::optional<AccessRecorderState> recorder;
  std::optional<FaultInjectorState> injector;
  std::map<std::string, std::vector<std::uint8_t>> extras;
};

}  // namespace goofi::sim
