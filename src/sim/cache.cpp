#include "sim/cache.h"

#include <bit>
#include <cassert>

namespace goofi::sim {

Cache::Cache(CacheGeometry geometry) : geometry_(geometry) {
  assert(std::has_single_bit(geometry_.lines));
  assert(std::has_single_bit(geometry_.words_per_line));
  lines_.resize(geometry_.lines);
  for (CacheLine& line : lines_) {
    line.words.assign(geometry_.words_per_line, 0);
    line.parity.assign(geometry_.words_per_line, false);
  }
}

bool Cache::ComputeParity(std::uint32_t word) {
  return (std::popcount(word) & 1) != 0;
}

std::uint32_t Cache::WordIndex(std::uint32_t address) const {
  return (address >> 2) & (geometry_.words_per_line - 1);
}

std::uint32_t Cache::LineIndex(std::uint32_t address) const {
  const unsigned word_shift =
      2 + static_cast<unsigned>(std::countr_zero(geometry_.words_per_line));
  return (address >> word_shift) & (geometry_.lines - 1);
}

std::uint32_t Cache::Tag(std::uint32_t address) const {
  const unsigned shift =
      2 + static_cast<unsigned>(std::countr_zero(geometry_.words_per_line)) +
      static_cast<unsigned>(std::countr_zero(geometry_.lines));
  const std::uint32_t tag_mask =
      geometry_.tag_bits >= 32 ? ~0u : ((1u << geometry_.tag_bits) - 1);
  return (address >> shift) & tag_mask;
}

MemFault Cache::ReadWord(Memory& memory, std::uint32_t address,
                         std::uint32_t* value, AccessKind kind,
                         bool* parity_error) {
  *parity_error = false;
  if (address % 4 != 0) return MemFault::kMisaligned;
  std::uint32_t inflight_mask = 0;
  if (injector_ != nullptr) {
    inflight_mask = injector_->PreRead(injector_unit_, this, address, kind);
  }
  CacheLine& line = lines_[LineIndex(address)];
  const std::uint32_t word = WordIndex(address);
  if (line.valid && line.tag == Tag(address)) {
    // Hit: the protection check still consults memory's segment map so a
    // cached-but-now-forbidden access kind cannot slip through.
    const Segment* segment = memory.FindSegment(address);
    if (segment == nullptr) return MemFault::kUnmapped;
    if ((kind == AccessKind::kExecute && !segment->executable) ||
        (kind == AccessKind::kRead && !segment->readable)) {
      return MemFault::kProtection;
    }
    ++stats_.hits;
    if (ComputeParity(line.words[word]) != line.parity[word]) {
      ++stats_.parity_errors;
      *parity_error = true;
    }
    *value = line.words[word] ^ inflight_mask;
    return MemFault::kNone;
  }
  // Miss: fill the whole line from memory.
  ++stats_.misses;
  const std::uint32_t line_base =
      address & ~(geometry_.words_per_line * 4 - 1);
  std::vector<std::uint32_t> filled(geometry_.words_per_line);
  for (std::uint32_t w = 0; w < geometry_.words_per_line; ++w) {
    const MemFault fault =
        memory.ReadWord(line_base + w * 4, &filled[w], kind);
    if (fault != MemFault::kNone) return fault;
  }
  line.valid = true;
  line.tag = Tag(address);
  for (std::uint32_t w = 0; w < geometry_.words_per_line; ++w) {
    line.words[w] = filled[w];
    line.parity[w] = ComputeParity(filled[w]);
  }
  *value = line.words[word] ^ inflight_mask;
  return MemFault::kNone;
}

MemFault Cache::WriteWord(Memory& memory, std::uint32_t address,
                          std::uint32_t value) {
  const MemFault fault = memory.WriteWord(address, value);
  if (fault != MemFault::kNone) return fault;
  CacheLine& line = lines_[LineIndex(address)];
  if (line.valid && line.tag == Tag(address)) {
    const std::uint32_t word = WordIndex(address);
    line.words[word] = value;
    line.parity[word] = ComputeParity(value);
  }
  if (injector_ != nullptr) {
    injector_->PostWrite(injector_unit_, this, address, value);
  }
  return MemFault::kNone;
}

void Cache::Invalidate() {
  for (CacheLine& line : lines_) {
    line.valid = false;
    line.tag = 0;
    std::fill(line.words.begin(), line.words.end(), 0);
    std::fill(line.parity.begin(), line.parity.end(), false);
  }
}

}  // namespace goofi::sim
