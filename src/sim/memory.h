// Target memory: named segments with R/W/X protection.
//
// Protection violations feed the machine-level error-detection mechanisms
// (EDMs) of the simulated Thor-RD-like CPU: a corrupted pointer that
// strays outside its segment, or a corrupted PC that leaves the code
// segment, is *detected* rather than silent — exactly the detected/escaped
// distinction the paper's analysis phase classifies.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace goofi::sim {

struct MemoryState;   // sim/snapshot.h
class FaultInjector;  // sim/fault_injector.h

enum class MemFault {
  kNone = 0,
  kUnmapped,     // no segment covers the address
  kProtection,   // segment exists but forbids this access kind
  kMisaligned,   // word access not 4-byte aligned
};

enum class AccessKind { kRead, kWrite, kExecute };

struct Segment {
  std::string name;
  std::uint32_t base = 0;
  std::uint32_t size = 0;  // bytes
  bool readable = true;
  bool writable = true;
  bool executable = false;
  // Device/I-O segments bypass the data cache (the environment simulator
  // writes them from outside the chip, so cached copies would go stale).
  bool uncacheable = false;
};

class Memory {
 public:
  // Adds a segment (zero-initialized). Segments must not overlap.
  Status AddSegment(Segment segment);

  const std::vector<Segment>& segments() const { return segments_; }
  const Segment* FindSegment(std::uint32_t address) const;
  const Segment* FindSegmentByName(const std::string& name) const;

  // Protection-checked accesses used by the CPU. Word accesses must be
  // 4-byte aligned. Little-endian.
  MemFault ReadWord(std::uint32_t address, std::uint32_t* value,
                    AccessKind kind = AccessKind::kRead) const;
  MemFault WriteWord(std::uint32_t address, std::uint32_t value);
  MemFault ReadByte(std::uint32_t address, std::uint8_t* value) const;
  MemFault WriteByte(std::uint32_t address, std::uint8_t value);

  // Unchecked accesses for the loader, the test card and fault injection
  // (pre-runtime SWIFI flips bits in the image before execution).
  // They fail only when the address is unmapped.
  bool Peek(std::uint32_t address, std::uint8_t* value) const;
  bool Poke(std::uint32_t address, std::uint8_t value);
  bool PeekWord(std::uint32_t address, std::uint32_t* value) const;
  bool PokeWord(std::uint32_t address, std::uint32_t value);
  bool FlipBit(std::uint32_t address, unsigned bit);  // bit 0..7 of the byte

  // Bulk helpers for images and state-vector logging.
  Status LoadImage(std::uint32_t address, const std::vector<std::uint8_t>& bytes);
  Result<std::vector<std::uint8_t>> DumpRange(std::uint32_t address,
                                              std::uint32_t length) const;

  // Zero every segment's contents (segments stay mapped).
  void ClearContents();

  // Access-path fault injection (sim/fault_injector.h): ReadWord calls
  // PreRead (unit kMainMemory) and XORs its in-flight mask into the
  // loaded word; WriteWord calls PostWrite after the store. Peek/Poke
  // and the bulk helpers stay hook-free — they model the loader and the
  // test card's backdoor, not the access path.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // Checkpoint support (sim/snapshot.h): capture/reinstate all segment
  // contents. RestoreState fails unless the segment layout (count and
  // sizes, in mapping order) matches the captured one.
  MemoryState CaptureState() const;
  Status RestoreState(const MemoryState& state);

 private:
  struct Backing {
    Segment segment;
    std::vector<std::uint8_t> bytes;
  };
  const Backing* FindBacking(std::uint32_t address) const;
  Backing* FindBacking(std::uint32_t address);

  std::vector<Segment> segments_;
  std::vector<Backing> backings_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace goofi::sim
