// Scan chains: the bit-serial access path to the CPU's state elements.
//
// "The Thor RD features advanced scan-chain logic ... it allows access to
// almost all of the state elements of Thor RD. ... Some locations in the
// scan-chain are read-only and can therefore only be used to observe the
// state of the microprocessor."
//
// A ScanChain is an ordered list of named state elements, each with a bit
// position, a width, and an access class. Capture() snapshots the CPU
// into a BitVector image (what shifts out of the chain); Apply() writes a
// possibly-modified image back (what shifts in), skipping read-only
// elements — flipping a bit of the image between the two is exactly the
// paper's SCIFI injection step ("reading the contents of the scan-chains,
// inverting the bits ... and writing back the fault injected
// scan-chains").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/cpu.h"
#include "util/bitvector.h"

namespace goofi::sim {

enum class ScanAccess { kReadWrite, kReadOnly };

struct ScanElement {
  std::string name;        // hierarchical, e.g. "cpu.regs.r3"
  std::size_t width = 1;   // bits
  std::size_t position = 0;  // bit offset within the chain (assigned)
  ScanAccess access = ScanAccess::kReadWrite;
  std::string category;    // "reg" | "control" | "icache" | "dcache" |
                           // "pin" | "status"
  std::function<std::uint64_t(const Cpu&)> get;
  std::function<void(Cpu&, std::uint64_t)> set;  // empty for read-only
};

class ScanChain {
 public:
  explicit ScanChain(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::size_t bit_length() const { return bit_length_; }
  const std::vector<ScanElement>& elements() const { return elements_; }

  void AddElement(ScanElement element);
  const ScanElement* FindElement(const std::string& name) const;

  // Snapshot CPU state into a chain image.
  BitVector Capture(const Cpu& cpu) const;
  // Write an image back into the CPU; read-only elements are skipped
  // (their image bits are ignored), as on the real chain.
  void Apply(Cpu& cpu, const BitVector& image) const;

 private:
  std::string name_;
  std::vector<ScanElement> elements_;
  std::size_t bit_length_ = 0;
};

// The chain set of the simulated Thor RD: one internal chain (registers,
// pc, ir, watchdog, latches, EDM status, cache arrays) and one boundary
// chain (address/data bus latches and control pins).
struct ScanChainSet {
  std::vector<ScanChain> chains;

  const ScanChain* FindChain(const std::string& name) const;
  // Locate an element across chains; returns {chain, element} or nullopt.
  std::optional<std::pair<const ScanChain*, const ScanElement*>> FindElement(
      const std::string& name) const;
  std::size_t TotalBits() const;
};

// Build the chain set matching `cpu`'s geometry. The chain layout is a
// pure function of the CPU configuration, so the same description can be
// stored in TargetSystemData and rebuilt on load.
ScanChainSet BuildThorRdScanChains(const Cpu& cpu);

}  // namespace goofi::sim
