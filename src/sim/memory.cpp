#include "sim/memory.h"

#include <cstring>

#include "sim/fault_injector.h"

namespace goofi::sim {

Status Memory::AddSegment(Segment segment) {
  if (segment.size == 0) {
    return InvalidArgumentError("segment '" + segment.name +
                                "' has zero size");
  }
  if (segment.base + segment.size < segment.base) {
    return InvalidArgumentError("segment '" + segment.name +
                                "' wraps the address space");
  }
  for (const Segment& existing : segments_) {
    const bool disjoint = segment.base + segment.size <= existing.base ||
                          existing.base + existing.size <= segment.base;
    if (!disjoint) {
      return InvalidArgumentError("segment '" + segment.name +
                                  "' overlaps '" + existing.name + "'");
    }
  }
  Backing backing;
  backing.segment = segment;
  backing.bytes.assign(segment.size, 0);
  segments_.push_back(segment);
  backings_.push_back(std::move(backing));
  return Status::Ok();
}

const Segment* Memory::FindSegment(std::uint32_t address) const {
  const Backing* backing = FindBacking(address);
  return backing == nullptr ? nullptr : &backing->segment;
}

const Segment* Memory::FindSegmentByName(const std::string& name) const {
  for (const Segment& segment : segments_) {
    if (segment.name == name) return &segment;
  }
  return nullptr;
}

const Memory::Backing* Memory::FindBacking(std::uint32_t address) const {
  for (const Backing& backing : backings_) {
    if (address >= backing.segment.base &&
        address - backing.segment.base < backing.segment.size) {
      return &backing;
    }
  }
  return nullptr;
}

Memory::Backing* Memory::FindBacking(std::uint32_t address) {
  return const_cast<Backing*>(
      static_cast<const Memory*>(this)->FindBacking(address));
}

namespace {
bool Allowed(const Segment& segment, AccessKind kind) {
  switch (kind) {
    case AccessKind::kRead: return segment.readable;
    case AccessKind::kWrite: return segment.writable;
    case AccessKind::kExecute: return segment.executable;
  }
  return false;
}
}  // namespace

MemFault Memory::ReadWord(std::uint32_t address, std::uint32_t* value,
                          AccessKind kind) const {
  if (address % 4 != 0) return MemFault::kMisaligned;
  const Backing* backing = FindBacking(address);
  if (backing == nullptr) return MemFault::kUnmapped;
  if (!Allowed(backing->segment, kind)) return MemFault::kProtection;
  const std::size_t offset = address - backing->segment.base;
  if (offset + 4 > backing->bytes.size()) return MemFault::kUnmapped;
  std::uint32_t out = 0;
  std::memcpy(&out, backing->bytes.data() + offset, 4);
  if (injector_ != nullptr) {
    out ^= injector_->PreRead(MemUnit::kMainMemory, nullptr, address, kind);
  }
  *value = out;
  return MemFault::kNone;
}

MemFault Memory::WriteWord(std::uint32_t address, std::uint32_t value) {
  if (address % 4 != 0) return MemFault::kMisaligned;
  Backing* backing = FindBacking(address);
  if (backing == nullptr) return MemFault::kUnmapped;
  if (!backing->segment.writable) return MemFault::kProtection;
  const std::size_t offset = address - backing->segment.base;
  if (offset + 4 > backing->bytes.size()) return MemFault::kUnmapped;
  std::memcpy(backing->bytes.data() + offset, &value, 4);
  if (injector_ != nullptr) {
    injector_->PostWrite(MemUnit::kMainMemory, nullptr, address, value);
  }
  return MemFault::kNone;
}

MemFault Memory::ReadByte(std::uint32_t address, std::uint8_t* value) const {
  const Backing* backing = FindBacking(address);
  if (backing == nullptr) return MemFault::kUnmapped;
  if (!backing->segment.readable) return MemFault::kProtection;
  *value = backing->bytes[address - backing->segment.base];
  return MemFault::kNone;
}

MemFault Memory::WriteByte(std::uint32_t address, std::uint8_t value) {
  Backing* backing = FindBacking(address);
  if (backing == nullptr) return MemFault::kUnmapped;
  if (!backing->segment.writable) return MemFault::kProtection;
  backing->bytes[address - backing->segment.base] = value;
  return MemFault::kNone;
}

bool Memory::Peek(std::uint32_t address, std::uint8_t* value) const {
  const Backing* backing = FindBacking(address);
  if (backing == nullptr) return false;
  *value = backing->bytes[address - backing->segment.base];
  return true;
}

bool Memory::Poke(std::uint32_t address, std::uint8_t value) {
  Backing* backing = FindBacking(address);
  if (backing == nullptr) return false;
  backing->bytes[address - backing->segment.base] = value;
  return true;
}

bool Memory::PeekWord(std::uint32_t address, std::uint32_t* value) const {
  const Backing* backing = FindBacking(address);
  if (backing == nullptr) return false;
  const std::size_t offset = address - backing->segment.base;
  if (offset + 4 > backing->bytes.size()) return false;
  std::memcpy(value, backing->bytes.data() + offset, 4);
  return true;
}

bool Memory::PokeWord(std::uint32_t address, std::uint32_t value) {
  Backing* backing = FindBacking(address);
  if (backing == nullptr) return false;
  const std::size_t offset = address - backing->segment.base;
  if (offset + 4 > backing->bytes.size()) return false;
  std::memcpy(backing->bytes.data() + offset, &value, 4);
  return true;
}

bool Memory::FlipBit(std::uint32_t address, unsigned bit) {
  Backing* backing = FindBacking(address);
  if (backing == nullptr || bit > 7) return false;
  backing->bytes[address - backing->segment.base] ^=
      static_cast<std::uint8_t>(1u << bit);
  return true;
}

Status Memory::LoadImage(std::uint32_t address,
                         const std::vector<std::uint8_t>& bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (!Poke(address + static_cast<std::uint32_t>(i), bytes[i])) {
      return OutOfRangeError("image does not fit at address");
    }
  }
  return Status::Ok();
}

Result<std::vector<std::uint8_t>> Memory::DumpRange(
    std::uint32_t address, std::uint32_t length) const {
  std::vector<std::uint8_t> out(length);
  for (std::uint32_t i = 0; i < length; ++i) {
    if (!Peek(address + i, &out[i])) {
      return OutOfRangeError("dump range not fully mapped");
    }
  }
  return out;
}

void Memory::ClearContents() {
  for (Backing& backing : backings_) {
    std::fill(backing.bytes.begin(), backing.bytes.end(), 0);
  }
}

}  // namespace goofi::sim
