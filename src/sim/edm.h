// Error-detection mechanisms (EDMs) of the simulated target.
//
// The paper's analysis phase classifies "Detected errors: errors that are
// detected by the error detection mechanisms of the target system. These
// errors can be further classified into errors detected by each of the
// various mechanisms." This header is the catalogue of those mechanisms.
//
// Machine-level EDMs follow the Thor processor family: illegal opcode,
// memory protection, misaligned access, control flow leaving program
// memory, divide-by-zero, optional arithmetic overflow, I/D-cache parity
// and a watchdog timer. SYS 2 adds application-level executable
// assertions (the companion study [12] uses these on the control app).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace goofi::sim {

enum class EdmType : std::uint8_t {
  kIllegalOpcode = 0,
  kMemProtection,
  kMisalignedAccess,
  kPcOutOfRange,
  kDivByZero,
  kArithOverflow,   // disabled by default (would trip on pointer arith)
  kIcacheParity,
  kDcacheParity,
  kWatchdog,
  kAssertion,       // application-level (SYS kAssertFail)
};
inline constexpr int kEdmTypeCount = 10;

const char* EdmTypeName(EdmType type);
std::optional<EdmType> EdmTypeFromName(const std::string& name);

struct EdmEvent {
  EdmType type = EdmType::kIllegalOpcode;
  std::uint64_t time = 0;  // executed-instruction count when raised
  std::uint32_t pc = 0;
  std::string detail;
};

// Which mechanisms are armed. A disabled mechanism means the condition
// passes silently (the fault stays latent or escapes) — comparing
// detection coverage with mechanisms on/off is a classic GOOFI campaign.
struct EdmConfig {
  bool enabled[kEdmTypeCount] = {
      true,   // kIllegalOpcode
      true,   // kMemProtection
      true,   // kMisalignedAccess
      true,   // kPcOutOfRange
      true,   // kDivByZero
      false,  // kArithOverflow
      true,   // kIcacheParity
      true,   // kDcacheParity
      true,   // kWatchdog
      true,   // kAssertion
  };

  bool IsEnabled(EdmType type) const {
    return enabled[static_cast<int>(type)];
  }
  void SetEnabled(EdmType type, bool value) {
    enabled[static_cast<int>(type)] = value;
  }
};

}  // namespace goofi::sim
