// Debug-event unit: breakpoints and the run loop.
//
// In the paper, "the SCIFI fault injection algorithm requires breakpoints
// to be set according to the points in time when the fault should be
// injected ... The breakpoint is ... set via the scan-chains. When a
// break-point condition has been fulfilled, execution of the workload
// stops". The condition kinds below also cover the paper's future-
// extension trigger list: "access of certain data values, execution of
// branch instructions or subprogram calls ... or at specific times
// determined by a real-time clock".
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/cpu.h"

namespace goofi::sim {

struct Breakpoint {
  enum class Kind {
    kPcEquals,        // before executing the instruction at `address`
    kInstretReached,  // before executing instruction number `count`
    kDataRead,        // after a load touching `address`
    kDataWrite,       // after a store touching `address`
    kBranchTaken,     // after the n-th taken branch
    kCall,            // after the n-th JAL/JALR
    kRtcMicros,       // real-time clock: instret >= micros * ipus
  };
  Kind kind = Kind::kInstretReached;
  std::uint32_t address = 0;  // kPcEquals / kDataRead / kDataWrite
  std::uint64_t count = 0;    // occurrence number (1 = first) or instret
  std::uint64_t micros = 0;   // kRtcMicros
  bool one_shot = true;       // disarm after the first hit
};

enum class StopReason {
  kHalted,          // HALT retired — workload finished by itself
  kEdm,             // an EDM fired (CPU halted; error detected)
  kBreakpoint,      // a debug event matched
  kIterationLimit,  // max control-loop iterations reached
  kBudgetExhausted, // instruction budget spent (tool-level timeout)
};

const char* StopReasonName(StopReason reason);

struct RunResult {
  StopReason reason = StopReason::kBudgetExhausted;
  std::uint64_t instructions_executed = 0;
  std::optional<EdmEvent> edm;
  std::optional<int> breakpoint_id;
};

class DebugUnit {
 public:
  // Simulated RTC rate for kRtcMicros, in instructions per microsecond.
  explicit DebugUnit(std::uint64_t instructions_per_micro = 25)
      : instructions_per_micro_(instructions_per_micro) {}

  int AddBreakpoint(Breakpoint breakpoint);
  void RemoveBreakpoint(int id);
  void Clear();
  std::size_t breakpoint_count() const { return breakpoints_.size(); }

  // Check conditions that fire *before* executing the instruction at the
  // current pc/instret. Returns the breakpoint id, disarming one-shots.
  std::optional<int> CheckBefore(const Cpu& cpu);
  // Check conditions that depend on the side effects of the step that
  // just retired (data access / branch / call occurrence counts).
  std::optional<int> CheckAfter(const Cpu& cpu, const StepEffects& effects);

 private:
  struct Armed {
    int id;
    Breakpoint breakpoint;
    std::uint64_t occurrences = 0;  // for occurrence-counted kinds
  };
  std::optional<int> Fire(std::size_t index);

  std::vector<Armed> breakpoints_;
  int next_id_ = 1;
  std::uint64_t instructions_per_micro_;
};

// Run the CPU until a stop condition:
//  - a debug event (breakpoint),
//  - HALT or an EDM trap,
//  - `max_iterations` SYS-kIterEnd boundaries (0 = unlimited); the
//    `on_iteration` callback (may be null) runs the environment exchange
//    at each boundary and may veto continuation by returning false,
//  - `max_instructions` executed in this call (the tool-level time-out).
RunResult Run(Cpu& cpu, DebugUnit* debug_unit,
              std::uint64_t max_instructions,
              std::uint64_t max_iterations = 0,
              const std::function<bool(Cpu&)>& on_iteration = nullptr);

}  // namespace goofi::sim
