// The simulated Thor-RD-like CPU.
//
// Microarchitecture: a two-stage execute/prefetch model. `ir` holds the
// *next* instruction (already fetched through the parity-protected
// instruction cache) and `pc` its address. Step() executes `ir`, then
// prefetches the successor. This makes IR and PC genuine, *live* scan-
// chain fault-injection targets: a bit flipped in IR while the CPU is
// halted at a breakpoint corrupts the instruction that executes next,
// exactly as on scan-chain hardware.
//
// Fail-stop on detection: when an enabled EDM fires, the CPU halts and
// records the event — the experiment terminates as "error detected",
// matching the paper's termination condition "an error has been
// detected".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/cache.h"
#include "sim/edm.h"
#include "sim/isa.h"
#include "sim/memory.h"
#include "sim/tracer.h"
#include "util/status.h"

namespace goofi::sim {

struct CpuState;  // sim/snapshot.h

struct CpuConfig {
  CacheGeometry icache_geometry;
  CacheGeometry dcache_geometry;
  EdmConfig edm;
  std::uint32_t watchdog_period = 200000;  // instructions between kicks
  // Detection response. Fail-stop (default): an enabled EDM halts the
  // CPU and the experiment terminates "error detected". Trap mode: the
  // CPU aborts the offending instruction and vectors to `trap_vector`
  // instead — the substrate for best-effort recovery handlers
  // (companion study [12]). Trap entry rearms the watchdog.
  bool trap_to_handler = false;
  std::uint32_t trap_vector = 0;
};

// Side effects of one Step(), consumed by the debug unit's data-access /
// branch / call fault triggers.
struct StepEffects {
  bool branch_taken = false;
  bool is_call = false;
  std::optional<std::uint32_t> mem_read_address;
  std::optional<std::uint32_t> mem_write_address;
};

struct StepOutcome {
  enum class Kind {
    kRetired,       // normal instruction
    kHalted,        // HALT executed (workload terminated by itself)
    kEdm,           // enabled EDM fired; CPU is now halted (fail-stop)
    kEdmTrapped,    // enabled EDM fired; CPU vectored to the handler
    kIterationEnd,  // SYS kIterEnd retired (environment-exchange point)
  };
  Kind kind = Kind::kRetired;
  std::optional<EdmEvent> edm;
  StepEffects effects;
};

class Cpu {
 public:
  explicit Cpu(CpuConfig config = {});

  // --- architectural state (all scan-chain reachable) ------------------
  std::uint32_t reg(unsigned index) const { return index == 0 ? 0 : regs_[index]; }
  void set_reg(unsigned index, std::uint32_t value) {
    if (index != 0) regs_[index] = value;
  }
  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }
  std::uint32_t ir() const { return ir_; }
  void set_ir(std::uint32_t ir) { ir_ = ir; }
  std::uint32_t mar() const { return mar_; }   // memory address latch
  void set_mar(std::uint32_t v) { mar_ = v; }
  std::uint32_t mdr() const { return mdr_; }   // memory data latch
  void set_mdr(std::uint32_t v) { mdr_ = v; }
  std::uint32_t watchdog() const { return wdt_; }
  void set_watchdog(std::uint32_t v) { wdt_ = v; }

  Memory& memory() { return memory_; }
  const Memory& memory() const { return memory_; }
  Cache& icache() { return icache_; }
  const Cache& icache() const { return icache_; }
  Cache& dcache() { return dcache_; }
  const Cache& dcache() const { return dcache_; }

  const CpuConfig& config() const { return config_; }
  EdmConfig& edm_config() { return config_.edm; }
  // Switch between fail-stop and trap-to-handler detection response
  // (typically set by the loader once the handler's address is known).
  void set_trap_handler(bool enabled, std::uint32_t vector) {
    config_.trap_to_handler = enabled;
    config_.trap_vector = vector;
  }

  // --- run status -------------------------------------------------------
  bool halted() const { return halted_; }
  std::uint64_t instret() const { return instret_; }  // time base
  std::uint64_t iteration_count() const { return iterations_; }
  // Emitted output stream (SYS kEmit of r1) — part of the workload's
  // observable result alongside its memory output region.
  const std::vector<std::uint32_t>& emitted() const { return emitted_; }
  const std::vector<EdmEvent>& edm_events() const { return edm_events_; }
  std::uint64_t recovery_count() const { return recoveries_; }

  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  // Persistent fault hooks, applied after every step — this is how
  // permanent stuck-at and intermittent fault models are realized
  // (DESIGN.md, core/fault_model).
  using PostStepHook = std::function<void(Cpu&)>;
  int AddPostStepHook(PostStepHook hook);
  void RemovePostStepHook(int id);
  void ClearPostStepHooks();

  // Reset architectural state (registers, pc, latches, caches, event
  // logs, counters). Memory contents are left alone: the loader fills
  // them between reset and run.
  void Reset(std::uint32_t boot_pc = 0);

  // Checkpoint support (sim/snapshot.h): copy out / reinstate the full
  // run state including the owned memory image and cache arrays. The
  // tracer, post-step hooks and trap configuration are driver wiring
  // and are not part of the state; RestoreState fails when the memory
  // or cache geometry differs from the captured one.
  CpuState CaptureState() const;
  Status RestoreState(const CpuState& state);

  // Execute one instruction (plus the prefetch of its successor).
  // The very first Step() after Reset performs the initial fetch.
  StepOutcome Step();

 private:
  // Raise an EDM condition; returns true when the (enabled) mechanism
  // fired and the CPU halted.
  bool RaiseEdm(EdmType type, std::uint32_t pc, std::string detail,
                StepOutcome* outcome);
  // Prefetch `ir` from `pc_`; may raise fetch-side EDMs.
  bool Prefetch(StepOutcome* outcome);
  void RunPostStepHooks();

  CpuConfig config_;
  Memory memory_;
  Cache icache_;
  Cache dcache_;

  std::uint32_t regs_[16] = {0};
  std::uint32_t pc_ = 0;
  std::uint32_t ir_ = 0;
  std::uint32_t mar_ = 0;
  std::uint32_t mdr_ = 0;
  std::uint32_t wdt_ = 0;
  bool ir_valid_ = false;
  bool halted_ = false;

  std::uint64_t instret_ = 0;
  std::uint64_t iterations_ = 0;
  std::uint64_t recoveries_ = 0;
  std::vector<std::uint32_t> emitted_;
  std::vector<EdmEvent> edm_events_;

  Tracer* tracer_ = nullptr;
  std::vector<std::pair<int, PostStepHook>> hooks_;
  int next_hook_id_ = 1;
};

}  // namespace goofi::sim
