// IEEE 1149.1 (JTAG) TAP controller for the simulated Thor RD.
//
// The paper's SCIFI technique "injects faults via the built-in
// test-logic, i.e. boundary scan-chains and internal scan-chains ...
// conforming to the IEEE standard for boundary scan". We model the
// full 16-state TAP FSM: the test card reaches the chains only by
// clocking TMS/TDI sequences through this controller, so scan access
// costs shift-cycles proportional to chain length — the quantity
// bench_scan_chain measures.
//
// Supported TAP instructions (4-bit IR):
//   IDCODE        0x1  -> 32-bit device identification register
//   SCAN_INTERNAL 0x2  -> the internal chain of BuildThorRdScanChains
//   SCAN_BOUNDARY 0x3  -> the boundary chain
//   BYPASS        0xF  -> 1-bit bypass register (also the reset value)
#pragma once

#include <cstdint>
#include <string>

#include "sim/scan_chain.h"
#include "util/bitvector.h"

namespace goofi::sim {

struct TapControllerState;  // sim/snapshot.h

enum class TapState : std::uint8_t {
  kTestLogicReset, kRunTestIdle,
  kSelectDrScan, kCaptureDr, kShiftDr, kExit1Dr, kPauseDr, kExit2Dr,
  kUpdateDr,
  kSelectIrScan, kCaptureIr, kShiftIr, kExit1Ir, kPauseIr, kExit2Ir,
  kUpdateIr,
};

const char* TapStateName(TapState state);

enum class TapInstruction : std::uint8_t {
  kIdcode = 0x1,
  kScanInternal = 0x2,
  kScanBoundary = 0x3,
  kBypass = 0xf,
};

class TapController {
 public:
  // `chains` and `cpu` must outlive the controller.
  TapController(const ScanChainSet* chains, Cpu* cpu);

  TapState state() const { return state_; }
  TapInstruction instruction() const { return instruction_; }
  std::uint64_t tck_cycles() const { return tck_cycles_; }

  // Clock one TCK edge with the given TMS/TDI levels; returns TDO.
  bool Clock(bool tms, bool tdi);

  // Synchronous reset (5 TMS=1 clocks reach Test-Logic-Reset from any
  // state; this helper just does it).
  void Reset();

  // Checkpoint support (sim/snapshot.h): FSM position, shift registers
  // and the cycle counter. The chain/CPU wiring is identity, not state.
  TapControllerState CaptureState() const;
  void RestoreState(const TapControllerState& state);

  // --- test-card conveniences built on Clock() ------------------------
  // Load a TAP instruction through Shift-IR.
  void LoadInstruction(TapInstruction instruction);
  // Capture + shift out the selected data register. The returned image
  // has bit 0 = first bit shifted out. Shifting in `write_back` (or the
  // captured bits when nullptr) and passing Update-DR applies the image.
  BitVector ReadDataRegister();
  // Full SCIFI access: capture, shift out/in, update. Returns what was
  // shifted out; `image` is what gets written (must match the register
  // length).
  BitVector ExchangeDataRegister(const BitVector& image);

 private:
  TapState NextState(bool tms) const;
  std::size_t SelectedRegisterLength() const;
  void CaptureSelected();
  void UpdateSelected();

  const ScanChainSet* chains_;
  Cpu* cpu_;
  TapState state_ = TapState::kTestLogicReset;
  TapInstruction instruction_ = TapInstruction::kBypass;
  std::uint8_t ir_shift_ = 0;
  BitVector dr_shift_;
  std::size_t dr_length_ = 1;
  std::uint64_t tck_cycles_ = 0;
};

}  // namespace goofi::sim
