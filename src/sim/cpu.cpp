#include "sim/cpu.h"

#include <cassert>
#include <limits>

#include "util/strings.h"

namespace goofi::sim {

Cpu::Cpu(CpuConfig config)
    : config_(config),
      icache_(config.icache_geometry),
      dcache_(config.dcache_geometry) {
  wdt_ = config_.watchdog_period;
}

int Cpu::AddPostStepHook(PostStepHook hook) {
  const int id = next_hook_id_++;
  hooks_.emplace_back(id, std::move(hook));
  return id;
}

void Cpu::RemovePostStepHook(int id) {
  for (auto it = hooks_.begin(); it != hooks_.end(); ++it) {
    if (it->first == id) {
      hooks_.erase(it);
      return;
    }
  }
}

void Cpu::ClearPostStepHooks() { hooks_.clear(); }

void Cpu::Reset(std::uint32_t boot_pc) {
  for (auto& r : regs_) r = 0;
  pc_ = boot_pc;
  ir_ = 0;
  mar_ = 0;
  mdr_ = 0;
  wdt_ = config_.watchdog_period;
  ir_valid_ = false;
  halted_ = false;
  instret_ = 0;
  iterations_ = 0;
  recoveries_ = 0;
  emitted_.clear();
  edm_events_.clear();
  icache_.Invalidate();
  dcache_.Invalidate();
}

bool Cpu::RaiseEdm(EdmType type, std::uint32_t pc, std::string detail,
                   StepOutcome* outcome) {
  if (!config_.edm.IsEnabled(type)) return false;
  EdmEvent event;
  event.type = type;
  event.time = instret_;
  event.pc = pc;
  event.detail = std::move(detail);
  edm_events_.push_back(event);
  if (config_.trap_to_handler) {
    // Abort the offending instruction and vector to the recovery
    // handler. Trap entry rearms the watchdog (otherwise an expired
    // watchdog would re-trap before the handler's first instruction).
    pc_ = config_.trap_vector;
    ir_valid_ = false;
    wdt_ = config_.watchdog_period;
    outcome->kind = StepOutcome::Kind::kEdmTrapped;
    outcome->edm = std::move(event);
    return true;
  }
  halted_ = true;
  outcome->kind = StepOutcome::Kind::kEdm;
  outcome->edm = std::move(event);
  return true;
}

bool Cpu::Prefetch(StepOutcome* outcome) {
  // Misaligned PC.
  if (pc_ % 4 != 0) {
    if (RaiseEdm(EdmType::kMisalignedAccess, pc_,
                 StrFormat("fetch from misaligned pc 0x%08x", pc_),
                 outcome)) {
      return false;
    }
    pc_ &= ~3u;  // mechanism disabled: hardware masks the low bits
  }
  bool parity_error = false;
  std::uint32_t word = 0;
  const MemFault fault = icache_.ReadWord(memory_, pc_, &word,
                                          AccessKind::kExecute,
                                          &parity_error);
  if (fault == MemFault::kUnmapped || fault == MemFault::kProtection) {
    if (RaiseEdm(EdmType::kPcOutOfRange, pc_,
                 StrFormat("fetch outside program memory at 0x%08x", pc_),
                 outcome)) {
      return false;
    }
    // Mechanism disabled: runaway execution reads zeros (NOPs) — the
    // tool-level timeout eventually terminates the experiment.
    word = 0;
  } else if (parity_error) {
    if (RaiseEdm(EdmType::kIcacheParity, pc_,
                 StrFormat("instruction cache parity at 0x%08x", pc_),
                 outcome)) {
      return false;
    }
  }
  ir_ = word;
  ir_valid_ = true;
  return true;
}

void Cpu::RunPostStepHooks() {
  for (auto& [id, hook] : hooks_) hook(*this);
}

StepOutcome Cpu::Step() {
  StepOutcome outcome;
  if (halted_) {
    outcome.kind = StepOutcome::Kind::kHalted;
    return outcome;
  }
  // Initial fetch after Reset.
  if (!ir_valid_) {
    if (!Prefetch(&outcome)) return outcome;
  }

  // Watchdog: counts down once per instruction; SYS kWdtKick and
  // iteration ends rearm it.
  if (config_.edm.IsEnabled(EdmType::kWatchdog) &&
      config_.watchdog_period > 0) {
    if (wdt_ == 0) {
      RaiseEdm(EdmType::kWatchdog, pc_, "watchdog expired", &outcome);
      return outcome;
    }
    --wdt_;
  }

  const std::uint64_t time = instret_;
  const std::uint32_t at_pc = pc_;
  const auto decoded = Decode(ir_);
  if (!decoded.ok()) {
    if (RaiseEdm(EdmType::kIllegalOpcode, at_pc, decoded.status().message(),
                 &outcome)) {
      return outcome;
    }
    // Mechanism disabled: treat as NOP.
    pc_ += 4;
    ++instret_;
    if (!Prefetch(&outcome)) return outcome;
    RunPostStepHooks();
    return outcome;
  }
  const Instruction& insn = *decoded;

#ifndef NDEBUG
  std::uint16_t observed_uses = 0;
  std::uint16_t observed_defs = 0;
#endif
  auto read_reg = [&](unsigned reg) {
#ifndef NDEBUG
    observed_uses |= static_cast<std::uint16_t>(1u << reg);
#endif
    if (tracer_ != nullptr) tracer_->OnRegisterRead(reg, time);
    return this->reg(reg);
  };
  auto write_reg = [&](unsigned reg, std::uint32_t value) {
#ifndef NDEBUG
    observed_defs |= static_cast<std::uint16_t>(1u << reg);
#endif
    if (tracer_ != nullptr) {
      tracer_->OnRegisterWrite(reg, this->reg(reg), value, time);
    }
    set_reg(reg, value);
  };

  std::uint32_t next_pc = pc_ + 4;
  bool halt_after = false;

  switch (insn.opcode) {
    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      halt_after = true;
      break;
    case Opcode::kSys: {
      switch (static_cast<SysCode>(static_cast<std::uint16_t>(insn.imm))) {
        case SysCode::kIterEnd:
          ++iterations_;
          wdt_ = config_.watchdog_period;
          outcome.kind = StepOutcome::Kind::kIterationEnd;
          break;
        case SysCode::kAssertFail:
          if (RaiseEdm(EdmType::kAssertion, at_pc,
                       StrFormat("executable assertion failed (r1=0x%08x)",
                                 reg(1)),
                       &outcome)) {
            return outcome;
          }
          break;
        case SysCode::kWdtKick:
          wdt_ = config_.watchdog_period;
          break;
        case SysCode::kEmit:
          emitted_.push_back(read_reg(1));
          break;
        case SysCode::kRecovery:
          ++recoveries_;
          break;
        default:
          if (RaiseEdm(EdmType::kIllegalOpcode, at_pc,
                       StrFormat("undefined SYS code %d", insn.imm),
                       &outcome)) {
            return outcome;
          }
          break;
      }
      break;
    }
    case Opcode::kLui:
      write_reg(insn.ra, static_cast<std::uint32_t>(insn.imm) << 16);
      break;

    // ----- ALU ----------------------------------------------------------
    // R-type and I-type share one evaluation path: the second operand is
    // rc or the immediate per the isa.h operand class (the same split
    // InstructionDefUse encodes).
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDiv: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl:
    case Opcode::kSra: case Opcode::kSlt: case Opcode::kSltu:
    case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
    case Opcode::kXori: case Opcode::kSlli: case Opcode::kSrli:
    case Opcode::kSrai: case Opcode::kSlti: {
      const std::uint32_t b = read_reg(insn.rb);
      const std::uint32_t c = IsRType(insn.opcode)
                                  ? read_reg(insn.rc)
                                  : static_cast<std::uint32_t>(insn.imm);
      std::uint32_t result = 0;
      switch (insn.opcode) {
        case Opcode::kAdd:
        case Opcode::kAddi: {
          result = b + c;
          const bool overflow =
              ((b ^ result) & (c ^ result) & 0x80000000u) != 0;
          if (overflow &&
              RaiseEdm(EdmType::kArithOverflow, at_pc,
                       StrFormat("%s overflow", OpcodeMnemonic(insn.opcode)),
                       &outcome)) {
            return outcome;
          }
          break;
        }
        case Opcode::kSub: {
          result = b - c;
          const bool overflow =
              ((b ^ c) & (b ^ result) & 0x80000000u) != 0;
          if (overflow &&
              RaiseEdm(EdmType::kArithOverflow, at_pc, "sub overflow",
                       &outcome)) {
            return outcome;
          }
          break;
        }
        case Opcode::kMul:
          result = b * c;
          break;
        case Opcode::kDiv: {
          if (c == 0) {
            if (RaiseEdm(EdmType::kDivByZero, at_pc, "divide by zero",
                         &outcome)) {
              return outcome;
            }
            result = 0;  // mechanism disabled
          } else {
            const std::int32_t sb = static_cast<std::int32_t>(b);
            const std::int32_t sc = static_cast<std::int32_t>(c);
            if (sb == std::numeric_limits<std::int32_t>::min() && sc == -1) {
              if (RaiseEdm(EdmType::kArithOverflow, at_pc, "div overflow",
                           &outcome)) {
                return outcome;
              }
              result = b;  // INT_MIN
            } else {
              result = static_cast<std::uint32_t>(sb / sc);
            }
          }
          break;
        }
        case Opcode::kAnd: case Opcode::kAndi: result = b & c; break;
        case Opcode::kOr: case Opcode::kOri: result = b | c; break;
        case Opcode::kXor: case Opcode::kXori: result = b ^ c; break;
        case Opcode::kSll: case Opcode::kSlli: result = b << (c & 31); break;
        case Opcode::kSrl: case Opcode::kSrli: result = b >> (c & 31); break;
        case Opcode::kSra: case Opcode::kSrai:
          result = static_cast<std::uint32_t>(
              static_cast<std::int32_t>(b) >> (c & 31));
          break;
        case Opcode::kSlt: case Opcode::kSlti:
          result = static_cast<std::int32_t>(b) < static_cast<std::int32_t>(c);
          break;
        case Opcode::kSltu:
          result = b < c;
          break;
        default: break;
      }
      write_reg(insn.ra, result);
      break;
    }

    // ----- memory ---------------------------------------------------------
    case Opcode::kLd: case Opcode::kLdb: {
      const std::uint32_t address =
          read_reg(insn.rb) + static_cast<std::uint32_t>(insn.imm);
      mar_ = address;
      std::uint32_t value = 0;
      MemFault fault;
      bool parity_error = false;
      const Segment* segment = memory_.FindSegment(address);
      const bool uncached = segment != nullptr && segment->uncacheable;
      if (insn.opcode == Opcode::kLd && uncached) {
        fault = memory_.ReadWord(address, &value, AccessKind::kRead);
      } else if (insn.opcode == Opcode::kLd) {
        fault = dcache_.ReadWord(memory_, address, &value,
                                 AccessKind::kRead, &parity_error);
      } else {
        std::uint8_t byte = 0;
        fault = memory_.ReadByte(address, &byte);
        value = byte;
      }
      if (parity_error &&
          RaiseEdm(EdmType::kDcacheParity, at_pc,
                   StrFormat("data cache parity at 0x%08x", address),
                   &outcome)) {
        return outcome;
      }
      if (fault == MemFault::kMisaligned) {
        if (RaiseEdm(EdmType::kMisalignedAccess, at_pc,
                     StrFormat("misaligned load at 0x%08x", address),
                     &outcome)) {
          return outcome;
        }
        // Disabled: hardware masks the low bits and retries.
        std::uint32_t masked = address & ~3u;
        bool pe2 = false;
        fault = dcache_.ReadWord(memory_, masked, &value, AccessKind::kRead,
                                 &pe2);
      }
      if (fault == MemFault::kUnmapped || fault == MemFault::kProtection) {
        if (RaiseEdm(EdmType::kMemProtection, at_pc,
                     StrFormat("load fault at 0x%08x", address),
                     &outcome)) {
          return outcome;
        }
        value = 0;  // disabled: bus reads as zero
      }
      mdr_ = value;
      if (tracer_ != nullptr) {
        tracer_->OnMemoryRead(address, insn.opcode == Opcode::kLd ? 4 : 1,
                              time);
      }
      write_reg(insn.ra, mdr_);
      outcome.effects.mem_read_address = address;
      break;
    }
    case Opcode::kSt: case Opcode::kStb: {
      const std::uint32_t address =
          read_reg(insn.rb) + static_cast<std::uint32_t>(insn.imm);
      const std::uint32_t value = read_reg(insn.ra);
      mar_ = address;
      mdr_ = value;
      MemFault fault;
      if (insn.opcode == Opcode::kSt) {
        fault = dcache_.WriteWord(memory_, address, value);
      } else {
        fault = memory_.WriteByte(address,
                                  static_cast<std::uint8_t>(value & 0xff));
      }
      if (fault == MemFault::kMisaligned) {
        if (RaiseEdm(EdmType::kMisalignedAccess, at_pc,
                     StrFormat("misaligned store at 0x%08x", address),
                     &outcome)) {
          return outcome;
        }
        fault = dcache_.WriteWord(memory_, address & ~3u, value);
      }
      if (fault == MemFault::kUnmapped || fault == MemFault::kProtection) {
        if (RaiseEdm(EdmType::kMemProtection, at_pc,
                     StrFormat("store fault at 0x%08x", address),
                     &outcome)) {
          return outcome;
        }
        // Disabled: the store is dropped on the floor.
      }
      if (tracer_ != nullptr) {
        tracer_->OnMemoryWrite(address, insn.opcode == Opcode::kSt ? 4 : 1,
                               value, time);
      }
      outcome.effects.mem_write_address = address;
      break;
    }

    // ----- control flow ---------------------------------------------------
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu: {
      const std::uint32_t a = read_reg(insn.ra);
      const std::uint32_t b = read_reg(insn.rb);
      bool taken = false;
      switch (insn.opcode) {
        case Opcode::kBeq: taken = a == b; break;
        case Opcode::kBne: taken = a != b; break;
        case Opcode::kBlt:
          taken = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b);
          break;
        case Opcode::kBge:
          taken = static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b);
          break;
        case Opcode::kBltu: taken = a < b; break;
        case Opcode::kBgeu: taken = a >= b; break;
        default: break;
      }
      if (taken) {
        next_pc = pc_ + 4 +
                  static_cast<std::uint32_t>(insn.imm) * 4;
        outcome.effects.branch_taken = true;
      }
      break;
    }
    case Opcode::kJal:
      write_reg(insn.ra, pc_ + 4);
      next_pc = pc_ + 4 + static_cast<std::uint32_t>(insn.imm) * 4;
      outcome.effects.branch_taken = true;
      outcome.effects.is_call = true;
      break;
    case Opcode::kJalr: {
      const std::uint32_t target =
          (read_reg(insn.rb) + static_cast<std::uint32_t>(insn.imm)) & ~3u;
      write_reg(insn.ra, pc_ + 4);
      next_pc = target;
      outcome.effects.branch_taken = true;
      outcome.effects.is_call = true;
      break;
    }
  }

#ifndef NDEBUG
  {
    // The accesses the instruction actually performed must be a subset of
    // isa.h's per-opcode def/use metadata (a subset, not an exact match:
    // EDM early-outs above skip trailing accesses, and kSys's kAssertFail
    // diagnostic read is deliberately untraced).
    const RegDefUse du = InstructionDefUse(insn);
    assert((observed_uses & ~du.uses) == 0);
    assert((observed_defs & ~du.defs) == 0);
  }
#endif

  ++instret_;
  if (tracer_ != nullptr) {
    tracer_->OnInstructionRetired(*this, insn, time, at_pc);
  }

  if (halt_after) {
    halted_ = true;
    outcome.kind = StepOutcome::Kind::kHalted;
    RunPostStepHooks();
    return outcome;
  }

  pc_ = next_pc;
  if (!Prefetch(&outcome)) return outcome;
  RunPostStepHooks();
  return outcome;
}

}  // namespace goofi::sim
