#include "sim/fault_injector.h"

#include <algorithm>

#include "sim/cache.h"
#include "sim/snapshot.h"

namespace goofi::sim {

void AccessPathInjector::Arm(ArmedCacheFault fault) {
  if (fault.remaining == 0) fault.remaining = 1;
  if (fault.kind == ArmedFaultKind::kIntermittent && fault.period == 0) {
    fault.period = 1;
  }
  // Applies from the next access to its unit onward.
  fault.next_access =
      unit_accesses_[static_cast<std::size_t>(fault.unit)] + 1;
  armed_.push_back(fault);
}

void AccessPathInjector::ClearFaults() { armed_.clear(); }

namespace {

// Flips (transient/intermittent) or pins (permanent) one bit of a cache
// array. Out-of-range coordinates are ignored: the injector is fed from
// snapshots as well as the target's own enumeration, and a stale armed
// fault must never index outside the attached cache's geometry.
void MutateArray(const ArmedCacheFault& fault, Cache* cache) {
  if (cache == nullptr) return;
  if (fault.set >= cache->line_count()) return;
  CacheLine& line = cache->line(fault.set);
  const bool pin = fault.kind == ArmedFaultKind::kPermanentStuckAt;
  switch (fault.array) {
    case CacheArray::kData: {
      if (fault.word >= line.words.size() || fault.bit >= 32) return;
      const std::uint32_t mask = 1u << fault.bit;
      if (pin) {
        if (fault.stuck_to_one) {
          line.words[fault.word] |= mask;
        } else {
          line.words[fault.word] &= ~mask;
        }
      } else {
        line.words[fault.word] ^= mask;
      }
      break;
    }
    case CacheArray::kTag: {
      if (fault.bit >= 32) return;
      const std::uint32_t mask = 1u << fault.bit;
      if (pin) {
        if (fault.stuck_to_one) {
          line.tag |= mask;
        } else {
          line.tag &= ~mask;
        }
      } else {
        line.tag ^= mask;
      }
      break;
    }
    case CacheArray::kParity: {
      if (fault.word >= line.parity.size()) return;
      if (pin) {
        line.parity[fault.word] = fault.stuck_to_one;
      } else {
        line.parity[fault.word] = !line.parity[fault.word];
      }
      break;
    }
    case CacheArray::kInflight:
      break;  // handled by the caller as an XOR mask, not array state
  }
}

// An in-flight fault corrupts the value on the wires of one specific
// (set, word) coordinate — for main memory, one word address. It only
// fires when the access actually touches that coordinate.
bool InflightMatches(const ArmedCacheFault& fault, Cache* cache,
                     std::uint32_t address) {
  if (fault.unit == MemUnit::kMainMemory || cache == nullptr) {
    return address == fault.set;
  }
  return cache->LineIndex(address) == fault.set &&
         cache->WordIndex(address) == fault.word;
}

}  // namespace

std::uint32_t AccessPathInjector::Apply(const ArmedCacheFault& fault,
                                        MemUnit unit, Cache* cache,
                                        std::uint32_t address, bool is_read) {
  if (fault.array == CacheArray::kInflight) {
    if (!is_read || !InflightMatches(fault, cache, address)) return 0;
    if (fault.bit >= 32) return 0;
    ++inflight_flips_;
    ++applied_;
    return 1u << fault.bit;
  }
  (void)unit;
  MutateArray(fault, cache);
  ++applied_;
  return 0;
}

std::uint32_t AccessPathInjector::OnAccess(MemUnit unit, Cache* cache,
                                           std::uint32_t address,
                                           bool is_read) {
  const std::size_t u = static_cast<std::size_t>(unit);
  const std::uint64_t n = ++unit_accesses_[u];
  std::uint32_t mask = 0;
  for (ArmedCacheFault& fault : armed_) {
    if (fault.unit != unit) continue;
    switch (fault.kind) {
      case ArmedFaultKind::kPermanentStuckAt:
        mask ^= Apply(fault, unit, cache, address, is_read);
        break;
      case ArmedFaultKind::kTransient:
      case ArmedFaultKind::kIntermittent: {
        if (n < fault.next_access || fault.remaining == 0) break;
        // In-flight faults wait (without consuming a use) until an
        // access actually touches their coordinate.
        if (fault.array == CacheArray::kInflight &&
            (!is_read || !InflightMatches(fault, cache, address))) {
          break;
        }
        mask ^= Apply(fault, unit, cache, address, is_read);
        --fault.remaining;
        fault.next_access = n + std::max<std::uint64_t>(fault.period, 1);
        break;
      }
    }
  }
  armed_.erase(std::remove_if(armed_.begin(), armed_.end(),
                              [](const ArmedCacheFault& fault) {
                                return fault.kind !=
                                           ArmedFaultKind::kPermanentStuckAt &&
                                       fault.remaining == 0;
                              }),
               armed_.end());
  return mask;
}

std::uint32_t AccessPathInjector::PreRead(MemUnit unit, Cache* cache,
                                          std::uint32_t address,
                                          AccessKind kind) {
  (void)kind;
  return OnAccess(unit, cache, address, /*is_read=*/true);
}

void AccessPathInjector::PostWrite(MemUnit unit, Cache* cache,
                                   std::uint32_t address,
                                   std::uint32_t value) {
  (void)value;
  OnAccess(unit, cache, address, /*is_read=*/false);
}

FaultInjectorState AccessPathInjector::CaptureState() const {
  FaultInjectorState state;
  state.armed = armed_;
  state.unit_accesses = unit_accesses_;
  state.applied = applied_;
  state.inflight_flips = inflight_flips_;
  return state;
}

void AccessPathInjector::RestoreState(const FaultInjectorState& state) {
  armed_ = state.armed;
  unit_accesses_ = state.unit_accesses;
  applied_ = state.applied;
  inflight_flips_ = state.inflight_flips;
}

}  // namespace goofi::sim
