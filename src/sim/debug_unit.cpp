#include "sim/debug_unit.h"

namespace goofi::sim {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kHalted: return "halted";
    case StopReason::kEdm: return "edm";
    case StopReason::kBreakpoint: return "breakpoint";
    case StopReason::kIterationLimit: return "iteration_limit";
    case StopReason::kBudgetExhausted: return "budget_exhausted";
  }
  return "?";
}

int DebugUnit::AddBreakpoint(Breakpoint breakpoint) {
  const int id = next_id_++;
  breakpoints_.push_back({id, breakpoint, 0});
  return id;
}

void DebugUnit::RemoveBreakpoint(int id) {
  for (auto it = breakpoints_.begin(); it != breakpoints_.end(); ++it) {
    if (it->id == id) {
      breakpoints_.erase(it);
      return;
    }
  }
}

void DebugUnit::Clear() { breakpoints_.clear(); }

std::optional<int> DebugUnit::Fire(std::size_t index) {
  const int id = breakpoints_[index].id;
  if (breakpoints_[index].breakpoint.one_shot) {
    breakpoints_.erase(breakpoints_.begin() +
                       static_cast<std::ptrdiff_t>(index));
  }
  return id;
}

std::optional<int> DebugUnit::CheckBefore(const Cpu& cpu) {
  for (std::size_t i = 0; i < breakpoints_.size(); ++i) {
    const Breakpoint& bp = breakpoints_[i].breakpoint;
    switch (bp.kind) {
      case Breakpoint::Kind::kPcEquals:
        if (cpu.pc() == bp.address) {
          if (++breakpoints_[i].occurrences >= std::max<std::uint64_t>(
                                                   bp.count, 1)) {
            return Fire(i);
          }
        }
        break;
      case Breakpoint::Kind::kInstretReached:
        if (cpu.instret() >= bp.count) return Fire(i);
        break;
      case Breakpoint::Kind::kRtcMicros:
        if (cpu.instret() >= bp.micros * instructions_per_micro_) {
          return Fire(i);
        }
        break;
      default:
        break;
    }
  }
  return std::nullopt;
}

std::optional<int> DebugUnit::CheckAfter(const Cpu& cpu,
                                         const StepEffects& effects) {
  (void)cpu;
  for (std::size_t i = 0; i < breakpoints_.size(); ++i) {
    const Breakpoint& bp = breakpoints_[i].breakpoint;
    bool hit = false;
    switch (bp.kind) {
      case Breakpoint::Kind::kDataRead:
        hit = effects.mem_read_address &&
              *effects.mem_read_address == bp.address;
        break;
      case Breakpoint::Kind::kDataWrite:
        hit = effects.mem_write_address &&
              *effects.mem_write_address == bp.address;
        break;
      case Breakpoint::Kind::kBranchTaken:
        hit = effects.branch_taken;
        break;
      case Breakpoint::Kind::kCall:
        hit = effects.is_call;
        break;
      default:
        break;
    }
    if (hit &&
        ++breakpoints_[i].occurrences >= std::max<std::uint64_t>(bp.count,
                                                                 1)) {
      return Fire(i);
    }
  }
  return std::nullopt;
}

RunResult Run(Cpu& cpu, DebugUnit* debug_unit,
              std::uint64_t max_instructions,
              std::uint64_t max_iterations,
              const std::function<bool(Cpu&)>& on_iteration) {
  RunResult result;
  std::uint64_t executed = 0;
  while (true) {
    if (cpu.halted()) {
      result.reason = cpu.edm_events().empty() ? StopReason::kHalted
                                               : StopReason::kEdm;
      if (!cpu.edm_events().empty()) result.edm = cpu.edm_events().back();
      break;
    }
    if (executed >= max_instructions) {
      result.reason = StopReason::kBudgetExhausted;
      break;
    }
    if (debug_unit != nullptr) {
      if (const auto id = debug_unit->CheckBefore(cpu)) {
        result.reason = StopReason::kBreakpoint;
        result.breakpoint_id = id;
        break;
      }
    }
    const StepOutcome outcome = cpu.Step();
    ++executed;
    switch (outcome.kind) {
      case StepOutcome::Kind::kHalted:
        result.reason = StopReason::kHalted;
        result.instructions_executed = executed;
        return result;
      case StepOutcome::Kind::kEdm:
        result.reason = StopReason::kEdm;
        result.edm = outcome.edm;
        result.instructions_executed = executed;
        return result;
      case StepOutcome::Kind::kEdmTrapped:
        // Detection handled on-chip by the recovery handler; the
        // experiment keeps running.
        break;
      case StepOutcome::Kind::kIterationEnd: {
        bool keep_going = true;
        if (on_iteration != nullptr) keep_going = on_iteration(cpu);
        if (!keep_going ||
            (max_iterations != 0 &&
             cpu.iteration_count() >= max_iterations)) {
          result.reason = StopReason::kIterationLimit;
          result.instructions_executed = executed;
          return result;
        }
        break;
      }
      case StepOutcome::Kind::kRetired:
        break;
    }
    if (debug_unit != nullptr) {
      if (const auto id = debug_unit->CheckAfter(cpu, outcome.effects)) {
        result.reason = StopReason::kBreakpoint;
        result.breakpoint_id = id;
        break;
      }
    }
  }
  result.instructions_executed = executed;
  return result;
}

}  // namespace goofi::sim
