// Two-pass assembler for GOOFI-32 workload programs.
//
// The paper's campaigns download a workload image to the target and run
// it ("the workload and initial input data is downloaded to the
// system"); this assembler produces those images from readable sources
// in workloads/ and from strings embedded in examples and tests.
//
// Syntax:
//   ; or # comments, one statement per line
//   label:                       (may share a line with a statement)
//   .org ADDRESS                 set the location counter
//   .entry LABEL                 program entry point (default 0)
//   .word V [, V ...]            emit 32-bit words (labels allowed)
//   .space N                     emit N zero bytes
//   .align N                     pad to an N-byte boundary
//
//   Registers: r0..r15, plus aliases zero (r0), sp (r14), lr (r15).
//   Instructions use the mnemonics of isa.h:
//     add r1, r2, r3        addi r1, r2, -5       lui r1, 0x1234
//     ld r1, [r2+8]         st r1, [r2]           beq r1, r2, label
//     jal lr, label         jalr r0, lr           sys 1
//   Pseudo-instructions:
//     li  rd, imm32         (addi, or lui+ori when it doesn't fit)
//     la  rd, label         (lui+ori, always 2 words)
//     mov rd, rs            (add rd, rs, r0)
//     b   label             (beq r0, r0, label)
//     call label            (jal lr, label)
//     ret                   (jalr r0, lr)
//     push rs               (addi sp, sp, -4 ; st rs, [sp])
//     pop  rd               (ld rd, [sp] ; addi sp, sp, 4)
//   Immediates: decimal, 0x hex, 'label', or 'label+N' / 'label-N'.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/memory.h"
#include "util/status.h"

namespace goofi::sim {

struct AssembledProgram {
  // Contiguous byte chunks keyed by start address (gaps from .org).
  std::map<std::uint32_t, std::vector<std::uint8_t>> chunks;
  std::uint32_t entry = 0;
  std::map<std::string, std::uint32_t> symbols;
  // Instruction address -> 1-based source line. Only instructions (and
  // pseudo-instruction expansions) are mapped; data directives are not.
  // This is what gives goofi-lint and the static analyzer their
  // file:line diagnostics.
  std::map<std::uint32_t, int> source_lines;

  // Total bytes across chunks.
  std::size_t ByteSize() const;
  // Copy every chunk into target memory (unchecked pokes).
  Status LoadInto(Memory& memory) const;
};

Result<AssembledProgram> Assemble(const std::string& source);

}  // namespace goofi::sim
