#include "sim/isa.h"

#include "util/strings.h"

namespace goofi::sim {

bool IsValidOpcode(std::uint8_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kNop: case Opcode::kHalt: case Opcode::kSys:
    case Opcode::kLui:
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDiv: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl:
    case Opcode::kSra: case Opcode::kSlt: case Opcode::kSltu:
    case Opcode::kAddi: case Opcode::kAndi: case Opcode::kOri:
    case Opcode::kXori: case Opcode::kSlli: case Opcode::kSrli:
    case Opcode::kSrai: case Opcode::kSlti:
    case Opcode::kLd: case Opcode::kSt: case Opcode::kLdb:
    case Opcode::kStb:
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
    case Opcode::kJal: case Opcode::kJalr:
      return true;
  }
  return false;
}

bool UsesSignedImmediate(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAddi: case Opcode::kSlti:
    case Opcode::kLd: case Opcode::kSt: case Opcode::kLdb:
    case Opcode::kStb:
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
    case Opcode::kJal: case Opcode::kJalr:
      return true;
    default:
      return false;
  }
}

bool UsesLogicalImmediate(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAndi: case Opcode::kOri: case Opcode::kXori:
    case Opcode::kSlli: case Opcode::kSrli: case Opcode::kSrai:
    case Opcode::kLui: case Opcode::kSys:
      return true;
    default:
      return false;
  }
}

bool IsRType(Opcode opcode) {
  switch (opcode) {
    case Opcode::kAdd: case Opcode::kSub: case Opcode::kMul:
    case Opcode::kDiv: case Opcode::kAnd: case Opcode::kOr:
    case Opcode::kXor: case Opcode::kSll: case Opcode::kSrl:
    case Opcode::kSra: case Opcode::kSlt: case Opcode::kSltu:
      return true;
    default:
      return false;
  }
}

bool IsBranch(Opcode opcode) {
  switch (opcode) {
    case Opcode::kBeq: case Opcode::kBne: case Opcode::kBlt:
    case Opcode::kBge: case Opcode::kBltu: case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}

bool IsCall(Opcode opcode) {
  return opcode == Opcode::kJal || opcode == Opcode::kJalr;
}

RegDefUse InstructionDefUse(const Instruction& instruction) {
  const auto bit = [](unsigned reg) {
    return static_cast<std::uint16_t>(1u << (reg & 0xf));
  };
  RegDefUse du;
  switch (instruction.opcode) {
    case Opcode::kNop:
    case Opcode::kHalt:
      break;
    case Opcode::kSys:
      // kEmit copies r1 into the output stream; the other codes touch no
      // architectural register (kAssertFail only formats r1 into its
      // diagnostic, which is not a dataflow use).
      if (static_cast<SysCode>(static_cast<std::uint16_t>(instruction.imm)) ==
          SysCode::kEmit) {
        du.uses = bit(1);
      }
      break;
    case Opcode::kLui:
      du.defs = bit(instruction.ra);
      break;
    case Opcode::kLd:
    case Opcode::kLdb:
      du.uses = bit(instruction.rb);
      du.defs = bit(instruction.ra);
      du.reads_memory = true;
      break;
    case Opcode::kSt:
      du.uses = bit(instruction.ra) | bit(instruction.rb);
      du.writes_memory = true;
      break;
    case Opcode::kStb:
      du.uses = bit(instruction.ra) | bit(instruction.rb);
      du.reads_memory = true;  // read-modify-write of the containing word
      du.writes_memory = true;
      break;
    case Opcode::kJal:
      du.defs = bit(instruction.ra);
      break;
    case Opcode::kJalr:
      du.uses = bit(instruction.rb);
      du.defs = bit(instruction.ra);
      break;
    default:
      if (IsRType(instruction.opcode)) {
        du.uses = bit(instruction.rb) | bit(instruction.rc);
        du.defs = bit(instruction.ra);
      } else if (IsBranch(instruction.opcode)) {
        du.uses = bit(instruction.ra) | bit(instruction.rb);
      } else {
        // I-type ALU (ADDI..SLTI): ra = rb OP imm.
        du.uses = bit(instruction.rb);
        du.defs = bit(instruction.ra);
      }
      break;
  }
  return du;
}

std::uint32_t Encode(const Instruction& instruction) {
  std::uint32_t word =
      static_cast<std::uint32_t>(instruction.opcode) << 24 |
      (static_cast<std::uint32_t>(instruction.ra) & 0xf) << 20 |
      (static_cast<std::uint32_t>(instruction.rb) & 0xf) << 16;
  if (IsRType(instruction.opcode)) {
    word |= (static_cast<std::uint32_t>(instruction.rc) & 0xf) << 12;
  } else {
    word |= static_cast<std::uint32_t>(instruction.imm) & 0xffff;
  }
  return word;
}

Result<Instruction> Decode(std::uint32_t word) {
  const std::uint8_t opcode_bits = static_cast<std::uint8_t>(word >> 24);
  if (!IsValidOpcode(opcode_bits)) {
    return InvalidArgumentError(
        StrFormat("illegal opcode 0x%02x in word 0x%08x", opcode_bits, word));
  }
  Instruction instruction;
  instruction.opcode = static_cast<Opcode>(opcode_bits);
  instruction.ra = static_cast<std::uint8_t>((word >> 20) & 0xf);
  instruction.rb = static_cast<std::uint8_t>((word >> 16) & 0xf);
  instruction.rc = static_cast<std::uint8_t>((word >> 12) & 0xf);
  instruction.raw = word;
  const std::uint16_t imm16 = static_cast<std::uint16_t>(word & 0xffff);
  if (UsesSignedImmediate(instruction.opcode)) {
    instruction.imm = static_cast<std::int16_t>(imm16);
  } else {
    instruction.imm = imm16;  // zero-extended (logical / LUI / SYS)
  }
  return instruction;
}

const char* OpcodeMnemonic(Opcode opcode) {
  switch (opcode) {
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
    case Opcode::kSys: return "sys";
    case Opcode::kLui: return "lui";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kSll: return "sll";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kSlt: return "slt";
    case Opcode::kSltu: return "sltu";
    case Opcode::kAddi: return "addi";
    case Opcode::kAndi: return "andi";
    case Opcode::kOri: return "ori";
    case Opcode::kXori: return "xori";
    case Opcode::kSlli: return "slli";
    case Opcode::kSrli: return "srli";
    case Opcode::kSrai: return "srai";
    case Opcode::kSlti: return "slti";
    case Opcode::kLd: return "ld";
    case Opcode::kSt: return "st";
    case Opcode::kLdb: return "ldb";
    case Opcode::kStb: return "stb";
    case Opcode::kBeq: return "beq";
    case Opcode::kBne: return "bne";
    case Opcode::kBlt: return "blt";
    case Opcode::kBge: return "bge";
    case Opcode::kBltu: return "bltu";
    case Opcode::kBgeu: return "bgeu";
    case Opcode::kJal: return "jal";
    case Opcode::kJalr: return "jalr";
  }
  return "?";
}

std::string Disassemble(const Instruction& i) {
  const char* m = OpcodeMnemonic(i.opcode);
  switch (i.opcode) {
    case Opcode::kNop:
    case Opcode::kHalt:
      return m;
    case Opcode::kSys:
      return StrFormat("%s %d", m, i.imm);
    case Opcode::kLui:
      return StrFormat("%s r%u, 0x%x", m, i.ra, i.imm);
    case Opcode::kLd:
    case Opcode::kLdb:
      return StrFormat("%s r%u, [r%u%+d]", m, i.ra, i.rb, i.imm);
    case Opcode::kSt:
    case Opcode::kStb:
      return StrFormat("%s r%u, [r%u%+d]", m, i.ra, i.rb, i.imm);
    case Opcode::kJal:
      return StrFormat("%s r%u, %+d", m, i.ra, i.imm);
    case Opcode::kJalr:
      return StrFormat("%s r%u, r%u%+d", m, i.ra, i.rb, i.imm);
    default:
      if (IsRType(i.opcode)) {
        return StrFormat("%s r%u, r%u, r%u", m, i.ra, i.rb, i.rc);
      }
      if (IsBranch(i.opcode)) {
        return StrFormat("%s r%u, r%u, %+d", m, i.ra, i.rb, i.imm);
      }
      return StrFormat("%s r%u, r%u, %d", m, i.ra, i.rb, i.imm);
  }
}

}  // namespace goofi::sim
