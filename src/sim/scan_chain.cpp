#include "sim/scan_chain.h"

#include <cassert>

#include "util/strings.h"

namespace goofi::sim {

void ScanChain::AddElement(ScanElement element) {
  assert(element.width >= 1 && element.width <= 64);
  assert(element.get);
  assert((element.access == ScanAccess::kReadOnly) == !element.set);
  element.position = bit_length_;
  bit_length_ += element.width;
  elements_.push_back(std::move(element));
}

const ScanElement* ScanChain::FindElement(const std::string& name) const {
  for (const ScanElement& element : elements_) {
    if (element.name == name) return &element;
  }
  return nullptr;
}

BitVector ScanChain::Capture(const Cpu& cpu) const {
  BitVector image(bit_length_);
  for (const ScanElement& element : elements_) {
    image.SetField(element.position, element.width, element.get(cpu));
  }
  return image;
}

void ScanChain::Apply(Cpu& cpu, const BitVector& image) const {
  assert(image.size() == bit_length_);
  for (const ScanElement& element : elements_) {
    if (element.access == ScanAccess::kReadOnly) continue;
    element.set(cpu, image.GetField(element.position, element.width));
  }
}

const ScanChain* ScanChainSet::FindChain(const std::string& name) const {
  for (const ScanChain& chain : chains) {
    if (chain.name() == name) return &chain;
  }
  return nullptr;
}

std::optional<std::pair<const ScanChain*, const ScanElement*>>
ScanChainSet::FindElement(const std::string& name) const {
  for (const ScanChain& chain : chains) {
    if (const ScanElement* element = chain.FindElement(name)) {
      return std::make_pair(&chain, element);
    }
  }
  return std::nullopt;
}

std::size_t ScanChainSet::TotalBits() const {
  std::size_t total = 0;
  for (const ScanChain& chain : chains) total += chain.bit_length();
  return total;
}

namespace {

// Pack the cache arrays of one cache into chain elements.
void AddCacheElements(ScanChain& chain, const std::string& prefix,
                      const std::string& category,
                      const CacheGeometry& geometry,
                      Cache& (Cpu::*cache_of)()) {
  auto cache_ref = [cache_of](const Cpu& cpu) -> const Cache& {
    return (const_cast<Cpu&>(cpu).*cache_of)();
  };
  for (std::uint32_t l = 0; l < geometry.lines; ++l) {
    {
      ScanElement element;
      element.name = StrFormat("%s.line%u.valid", prefix.c_str(), l);
      element.width = 1;
      element.category = category;
      element.get = [cache_ref, l](const Cpu& cpu) -> std::uint64_t {
        return cache_ref(cpu).line(l).valid ? 1 : 0;
      };
      element.set = [cache_of, l](Cpu& cpu, std::uint64_t v) {
        (cpu.*cache_of)().line(l).valid = (v & 1) != 0;
      };
      chain.AddElement(std::move(element));
    }
    {
      ScanElement element;
      element.name = StrFormat("%s.line%u.tag", prefix.c_str(), l);
      element.width = geometry.tag_bits;
      element.category = category;
      element.get = [cache_ref, l](const Cpu& cpu) -> std::uint64_t {
        return cache_ref(cpu).line(l).tag;
      };
      element.set = [cache_of, l, geometry](Cpu& cpu, std::uint64_t v) {
        const std::uint32_t mask =
            geometry.tag_bits >= 32 ? ~0u : ((1u << geometry.tag_bits) - 1);
        (cpu.*cache_of)().line(l).tag = static_cast<std::uint32_t>(v) & mask;
      };
      chain.AddElement(std::move(element));
    }
    for (std::uint32_t w = 0; w < geometry.words_per_line; ++w) {
      {
        ScanElement element;
        element.name = StrFormat("%s.line%u.data%u", prefix.c_str(), l, w);
        element.width = 32;
        element.category = category;
        element.get = [cache_ref, l, w](const Cpu& cpu) -> std::uint64_t {
          return cache_ref(cpu).line(l).words[w];
        };
        element.set = [cache_of, l, w](Cpu& cpu, std::uint64_t v) {
          (cpu.*cache_of)().line(l).words[w] = static_cast<std::uint32_t>(v);
        };
        chain.AddElement(std::move(element));
      }
      {
        ScanElement element;
        element.name = StrFormat("%s.line%u.parity%u", prefix.c_str(), l, w);
        element.width = 1;
        element.category = category;
        element.get = [cache_ref, l, w](const Cpu& cpu) -> std::uint64_t {
          return cache_ref(cpu).line(l).parity[w] ? 1 : 0;
        };
        element.set = [cache_of, l, w](Cpu& cpu, std::uint64_t v) {
          (cpu.*cache_of)().line(l).parity[w] = (v & 1) != 0;
        };
        chain.AddElement(std::move(element));
      }
    }
  }
}

}  // namespace

ScanChainSet BuildThorRdScanChains(const Cpu& cpu) {
  ScanChainSet set;

  // ------------------------------------------------------------------
  // Internal chain: register file, control state, cache arrays.
  // ------------------------------------------------------------------
  ScanChain internal("internal");
  // r0 is hardwired to zero — it has no latch, so it is not in the chain.
  for (unsigned r = 1; r < 16; ++r) {
    ScanElement element;
    element.name = StrFormat("cpu.regs.r%u", r);
    element.width = 32;
    element.category = "reg";
    element.get = [r](const Cpu& c) -> std::uint64_t { return c.reg(r); };
    element.set = [r](Cpu& c, std::uint64_t v) {
      c.set_reg(r, static_cast<std::uint32_t>(v));
    };
    internal.AddElement(std::move(element));
  }
  {
    ScanElement element;
    element.name = "cpu.pc";
    element.width = 32;
    element.category = "control";
    element.get = [](const Cpu& c) -> std::uint64_t { return c.pc(); };
    element.set = [](Cpu& c, std::uint64_t v) {
      c.set_pc(static_cast<std::uint32_t>(v));
    };
    internal.AddElement(std::move(element));
  }
  {
    ScanElement element;
    element.name = "cpu.ir";
    element.width = 32;
    element.category = "control";
    element.get = [](const Cpu& c) -> std::uint64_t { return c.ir(); };
    element.set = [](Cpu& c, std::uint64_t v) {
      c.set_ir(static_cast<std::uint32_t>(v));
    };
    internal.AddElement(std::move(element));
  }
  {
    ScanElement element;
    element.name = "cpu.wdt";
    element.width = 32;
    element.category = "control";
    element.get = [](const Cpu& c) -> std::uint64_t { return c.watchdog(); };
    element.set = [](Cpu& c, std::uint64_t v) {
      c.set_watchdog(static_cast<std::uint32_t>(v));
    };
    internal.AddElement(std::move(element));
  }
  {
    // EDM status register: sticky bitmask of mechanisms that have fired.
    // Observe-only, like the paper's read-only chain locations.
    ScanElement element;
    element.name = "cpu.edm_status";
    element.width = kEdmTypeCount;
    element.category = "status";
    element.access = ScanAccess::kReadOnly;
    element.get = [](const Cpu& c) -> std::uint64_t {
      std::uint64_t mask = 0;
      for (const EdmEvent& event : c.edm_events()) {
        mask |= std::uint64_t{1} << static_cast<int>(event.type);
      }
      return mask;
    };
    internal.AddElement(std::move(element));
  }
  {
    ScanElement element;
    element.name = "cpu.chip_id";
    element.width = 32;
    element.category = "status";
    element.access = ScanAccess::kReadOnly;
    element.get = [](const Cpu&) -> std::uint64_t { return 0x7408D001u; };
    internal.AddElement(std::move(element));
  }
  AddCacheElements(internal, "icache", "icache",
                   cpu.config().icache_geometry, &Cpu::icache);
  AddCacheElements(internal, "dcache", "dcache",
                   cpu.config().dcache_geometry, &Cpu::dcache);
  set.chains.push_back(std::move(internal));

  // ------------------------------------------------------------------
  // Boundary chain: bus latches and pins (IEEE 1149.1 boundary cells).
  // ------------------------------------------------------------------
  ScanChain boundary("boundary");
  {
    ScanElement element;
    element.name = "pins.addr_bus";
    element.width = 32;
    element.category = "pin";
    element.get = [](const Cpu& c) -> std::uint64_t { return c.mar(); };
    element.set = [](Cpu& c, std::uint64_t v) {
      c.set_mar(static_cast<std::uint32_t>(v));
    };
    boundary.AddElement(std::move(element));
  }
  {
    ScanElement element;
    element.name = "pins.data_bus";
    element.width = 32;
    element.category = "pin";
    element.get = [](const Cpu& c) -> std::uint64_t { return c.mdr(); };
    element.set = [](Cpu& c, std::uint64_t v) {
      c.set_mdr(static_cast<std::uint32_t>(v));
    };
    boundary.AddElement(std::move(element));
  }
  {
    ScanElement element;
    element.name = "pins.halted";
    element.width = 1;
    element.category = "pin";
    element.access = ScanAccess::kReadOnly;
    element.get = [](const Cpu& c) -> std::uint64_t {
      return c.halted() ? 1 : 0;
    };
    boundary.AddElement(std::move(element));
  }
  set.chains.push_back(std::move(boundary));
  return set;
}

}  // namespace goofi::sim
