#include "sim/assembler.h"

#include <cctype>
#include <sstream>

#include "sim/isa.h"
#include "util/strings.h"

namespace goofi::sim {

std::size_t AssembledProgram::ByteSize() const {
  std::size_t total = 0;
  for (const auto& [address, bytes] : chunks) total += bytes.size();
  return total;
}

Status AssembledProgram::LoadInto(Memory& memory) const {
  for (const auto& [address, bytes] : chunks) {
    RETURN_IF_ERROR(memory.LoadImage(address, bytes));
  }
  return Status::Ok();
}

namespace {

struct SourceLine {
  int number = 0;
  std::vector<std::string> labels;
  std::string mnemonic;                // lower-cased; empty for label-only
  std::vector<std::string> operands;   // comma-split, trimmed
};

Status LineError(const SourceLine& line, const std::string& message) {
  return ParseError(StrFormat("line %d: %s", line.number, message.c_str()));
}

// Strip comments and split a raw line into labels/mnemonic/operands.
Result<std::vector<SourceLine>> Scan(const std::string& source) {
  std::vector<SourceLine> lines;
  std::istringstream stream(source);
  std::string raw;
  int number = 0;
  while (std::getline(stream, raw)) {
    ++number;
    const std::size_t comment = raw.find_first_of(";#");
    if (comment != std::string::npos) raw.resize(comment);
    std::string_view text = StripAsciiWhitespace(raw);
    SourceLine line;
    line.number = number;
    // Leading labels: IDENT ':'
    while (true) {
      const std::size_t colon = text.find(':');
      if (colon == std::string_view::npos) break;
      const std::string_view candidate =
          StripAsciiWhitespace(text.substr(0, colon));
      bool is_ident = !candidate.empty() &&
                      (std::isalpha(static_cast<unsigned char>(candidate[0])) ||
                       candidate[0] == '_' || candidate[0] == '.');
      for (char c : candidate) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
            c != '.') {
          is_ident = false;
        }
      }
      if (!is_ident) break;
      line.labels.emplace_back(candidate);
      text = StripAsciiWhitespace(text.substr(colon + 1));
    }
    if (!text.empty()) {
      // Mnemonic = first whitespace-delimited word; rest = operands.
      std::size_t space = 0;
      while (space < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[space]))) {
        ++space;
      }
      line.mnemonic = AsciiToLower(text.substr(0, space));
      const std::string_view rest = StripAsciiWhitespace(text.substr(space));
      if (!rest.empty()) {
        for (const std::string& piece : SplitString(std::string(rest), ',')) {
          line.operands.emplace_back(StripAsciiWhitespace(piece));
        }
      }
    }
    if (!line.labels.empty() || !line.mnemonic.empty()) {
      lines.push_back(std::move(line));
    }
  }
  return lines;
}

Result<unsigned> ParseRegister(const SourceLine& line,
                               const std::string& name) {
  const std::string lower = AsciiToLower(name);
  if (lower == "zero") return 0u;
  if (lower == "sp") return 14u;
  if (lower == "lr") return 15u;
  if (lower.size() >= 2 && lower[0] == 'r') {
    const auto index = ParseUint64(lower.substr(1));
    if (index && *index < 16) return static_cast<unsigned>(*index);
  }
  return Status(ErrorCode::kParseError,
                StrFormat("line %d: bad register '%s'", line.number,
                          name.c_str()));
}

class Assembler {
 public:
  Result<AssembledProgram> Run(const std::string& source) {
    ASSIGN_OR_RETURN(lines_, Scan(source));
    RETURN_IF_ERROR(Pass(/*emit=*/false));  // sizes + symbol table
    RETURN_IF_ERROR(Pass(/*emit=*/true));
    if (!entry_label_.empty()) {
      const auto it = program_.symbols.find(entry_label_);
      if (it == program_.symbols.end()) {
        return ParseError("undefined .entry label '" + entry_label_ + "'");
      }
      program_.entry = it->second;
    }
    return std::move(program_);
  }

 private:
  // Resolve "123", "0x1f", "-4", "label", "label+8", "label-8".
  Result<std::int64_t> Eval(const SourceLine& line, const std::string& text,
                            bool require_symbols) {
    const std::string_view view = StripAsciiWhitespace(text);
    if (view.empty()) return LineError(line, "empty operand");
    // Pure number?
    if (const auto number = ParseInt64(view)) return *number;
    // label [+|- offset]
    std::size_t split = view.npos;
    for (std::size_t i = 1; i < view.size(); ++i) {
      if (view[i] == '+' || view[i] == '-') {
        split = i;
        break;
      }
    }
    const std::string symbol(
        StripAsciiWhitespace(view.substr(0, split)));
    std::int64_t offset = 0;
    if (split != view.npos) {
      const auto parsed = ParseInt64(view.substr(split));
      if (!parsed) {
        return LineError(line, "bad offset in '" + std::string(view) + "'");
      }
      offset = *parsed;
    }
    const auto it = program_.symbols.find(symbol);
    if (it == program_.symbols.end()) {
      if (require_symbols) {
        return LineError(line, "undefined symbol '" + symbol + "'");
      }
      return std::int64_t{0};  // pass 1 placeholder
    }
    return static_cast<std::int64_t>(it->second) + offset;
  }

  void EmitWord(std::uint32_t word) {
    if (emit_) {
      auto& chunk = program_.chunks[chunk_base_];
      chunk.push_back(static_cast<std::uint8_t>(word & 0xff));
      chunk.push_back(static_cast<std::uint8_t>((word >> 8) & 0xff));
      chunk.push_back(static_cast<std::uint8_t>((word >> 16) & 0xff));
      chunk.push_back(static_cast<std::uint8_t>((word >> 24) & 0xff));
    }
    cursor_ += 4;
  }

  void EmitByte(std::uint8_t byte) {
    if (emit_) program_.chunks[chunk_base_].push_back(byte);
    ++cursor_;
  }

  void EmitInstruction(Opcode opcode, unsigned ra = 0, unsigned rb = 0,
                       unsigned rc = 0, std::int32_t imm = 0) {
    Instruction insn;
    insn.opcode = opcode;
    insn.ra = static_cast<std::uint8_t>(ra);
    insn.rb = static_cast<std::uint8_t>(rb);
    insn.rc = static_cast<std::uint8_t>(rc);
    insn.imm = imm;
    EmitWord(Encode(insn));
  }

  Status CheckSigned16(const SourceLine& line, std::int64_t value,
                       const char* what) {
    if (value < -32768 || value > 32767) {
      return LineError(line, StrFormat("%s %lld does not fit in 16 bits",
                                       what, static_cast<long long>(value)));
    }
    return Status::Ok();
  }

  // Branch displacement in words from pc+4 to target.
  Result<std::int32_t> BranchOffset(const SourceLine& line,
                                    const std::string& operand) {
    ASSIGN_OR_RETURN(std::int64_t target, Eval(line, operand, emit_));
    if (!emit_) return std::int32_t{0};
    const std::int64_t delta =
        target - (static_cast<std::int64_t>(cursor_) + 4);
    if (delta % 4 != 0) {
      return LineError(line, "branch target not word aligned");
    }
    const std::int64_t words = delta / 4;
    RETURN_IF_ERROR(CheckSigned16(line, words, "branch offset"));
    return static_cast<std::int32_t>(words);
  }

  // "[rb+imm]" / "[rb-imm]" / "[rb]" memory operand.
  Status ParseMemOperand(const SourceLine& line, const std::string& text,
                         unsigned* rb, std::int32_t* imm) {
    const std::string_view view = StripAsciiWhitespace(text);
    if (view.size() < 3 || view.front() != '[' || view.back() != ']') {
      return LineError(line, "expected memory operand '[reg+imm]', got '" +
                                 std::string(view) + "'");
    }
    const std::string inner(
        StripAsciiWhitespace(view.substr(1, view.size() - 2)));
    std::size_t split = inner.npos;
    for (std::size_t i = 1; i < inner.size(); ++i) {
      if (inner[i] == '+' || inner[i] == '-') {
        split = i;
        break;
      }
    }
    const std::string reg_text(
        StripAsciiWhitespace(inner.substr(0, split)));
    ASSIGN_OR_RETURN(*rb, ParseRegister(line, reg_text));
    *imm = 0;
    if (split != inner.npos) {
      ASSIGN_OR_RETURN(std::int64_t value,
                       Eval(line, inner.substr(split), emit_));
      RETURN_IF_ERROR(CheckSigned16(line, value, "memory offset"));
      *imm = static_cast<std::int32_t>(value);
    }
    return Status::Ok();
  }

  Status Expect(const SourceLine& line, std::size_t count) {
    if (line.operands.size() != count) {
      return LineError(line, StrFormat("'%s' expects %zu operands, got %zu",
                                       line.mnemonic.c_str(), count,
                                       line.operands.size()));
    }
    return Status::Ok();
  }

  Status HandleStatement(const SourceLine& line) {
    const std::string& m = line.mnemonic;
    // Directives ---------------------------------------------------------
    if (m == ".org") {
      RETURN_IF_ERROR(Expect(line, 1));
      ASSIGN_OR_RETURN(std::int64_t address,
                       Eval(line, line.operands[0], emit_));
      cursor_ = static_cast<std::uint32_t>(address);
      chunk_base_ = cursor_;
      return Status::Ok();
    }
    if (m == ".entry") {
      RETURN_IF_ERROR(Expect(line, 1));
      entry_label_ = line.operands[0];
      return Status::Ok();
    }
    if (m == ".word") {
      if (line.operands.empty()) {
        return LineError(line, ".word needs at least one value");
      }
      for (const std::string& operand : line.operands) {
        ASSIGN_OR_RETURN(std::int64_t value, Eval(line, operand, emit_));
        EmitWord(static_cast<std::uint32_t>(value));
      }
      return Status::Ok();
    }
    if (m == ".space") {
      RETURN_IF_ERROR(Expect(line, 1));
      ASSIGN_OR_RETURN(std::int64_t count,
                       Eval(line, line.operands[0], emit_));
      for (std::int64_t i = 0; i < count; ++i) EmitByte(0);
      return Status::Ok();
    }
    if (m == ".align") {
      RETURN_IF_ERROR(Expect(line, 1));
      ASSIGN_OR_RETURN(std::int64_t boundary,
                       Eval(line, line.operands[0], emit_));
      if (boundary <= 0) return LineError(line, ".align needs a positive N");
      while (cursor_ % static_cast<std::uint32_t>(boundary) != 0) EmitByte(0);
      return Status::Ok();
    }
    if (!m.empty() && m[0] == '.') {
      return LineError(line, "unknown directive '" + m + "'");
    }

    // Pseudo-instructions --------------------------------------------------
    if (m == "li") {
      RETURN_IF_ERROR(Expect(line, 2));
      ASSIGN_OR_RETURN(unsigned rd, ParseRegister(line, line.operands[0]));
      // li's size must not depend on pass-2-only symbol values, so only
      // literal numbers are allowed (use 'la' for addresses).
      const auto literal = ParseInt64(line.operands[1]);
      if (!literal) {
        return LineError(line, "li needs a numeric literal; use la for labels");
      }
      const std::int64_t value = *literal;
      if (value >= -32768 && value <= 32767) {
        EmitInstruction(Opcode::kAddi, rd, 0, 0,
                        static_cast<std::int32_t>(value));
      } else {
        const std::uint32_t bits = static_cast<std::uint32_t>(value);
        EmitInstruction(Opcode::kLui, rd, 0, 0,
                        static_cast<std::int32_t>(bits >> 16));
        EmitInstruction(Opcode::kOri, rd, rd, 0,
                        static_cast<std::int32_t>(bits & 0xffff));
      }
      return Status::Ok();
    }
    if (m == "la") {
      RETURN_IF_ERROR(Expect(line, 2));
      ASSIGN_OR_RETURN(unsigned rd, ParseRegister(line, line.operands[0]));
      ASSIGN_OR_RETURN(std::int64_t value,
                       Eval(line, line.operands[1], emit_));
      const std::uint32_t bits = static_cast<std::uint32_t>(value);
      EmitInstruction(Opcode::kLui, rd, 0, 0,
                      static_cast<std::int32_t>(bits >> 16));
      EmitInstruction(Opcode::kOri, rd, rd, 0,
                      static_cast<std::int32_t>(bits & 0xffff));
      return Status::Ok();
    }
    if (m == "mov") {
      RETURN_IF_ERROR(Expect(line, 2));
      ASSIGN_OR_RETURN(unsigned rd, ParseRegister(line, line.operands[0]));
      ASSIGN_OR_RETURN(unsigned rs, ParseRegister(line, line.operands[1]));
      EmitInstruction(Opcode::kAdd, rd, rs, 0);
      return Status::Ok();
    }
    if (m == "b") {
      RETURN_IF_ERROR(Expect(line, 1));
      ASSIGN_OR_RETURN(std::int32_t offset,
                       BranchOffset(line, line.operands[0]));
      EmitInstruction(Opcode::kBeq, 0, 0, 0, offset);
      return Status::Ok();
    }
    if (m == "call") {
      RETURN_IF_ERROR(Expect(line, 1));
      ASSIGN_OR_RETURN(std::int32_t offset,
                       BranchOffset(line, line.operands[0]));
      EmitInstruction(Opcode::kJal, 15, 0, 0, offset);
      return Status::Ok();
    }
    if (m == "ret") {
      RETURN_IF_ERROR(Expect(line, 0));
      EmitInstruction(Opcode::kJalr, 0, 15, 0, 0);
      return Status::Ok();
    }
    if (m == "push") {
      RETURN_IF_ERROR(Expect(line, 1));
      ASSIGN_OR_RETURN(unsigned rs, ParseRegister(line, line.operands[0]));
      EmitInstruction(Opcode::kAddi, 14, 14, 0, -4);
      EmitInstruction(Opcode::kSt, rs, 14, 0, 0);
      return Status::Ok();
    }
    if (m == "pop") {
      RETURN_IF_ERROR(Expect(line, 1));
      ASSIGN_OR_RETURN(unsigned rd, ParseRegister(line, line.operands[0]));
      EmitInstruction(Opcode::kLd, rd, 14, 0, 0);
      EmitInstruction(Opcode::kAddi, 14, 14, 0, 4);
      return Status::Ok();
    }

    // Real instructions -----------------------------------------------------
    Opcode opcode;
    if (!LookupMnemonic(m, &opcode)) {
      return LineError(line, "unknown mnemonic '" + m + "'");
    }
    switch (opcode) {
      case Opcode::kNop:
      case Opcode::kHalt:
        RETURN_IF_ERROR(Expect(line, 0));
        EmitInstruction(opcode);
        return Status::Ok();
      case Opcode::kSys: {
        RETURN_IF_ERROR(Expect(line, 1));
        ASSIGN_OR_RETURN(std::int64_t code,
                         Eval(line, line.operands[0], emit_));
        if (code < 0 || code > 0xffff) {
          return LineError(line, "sys code out of range");
        }
        EmitInstruction(opcode, 0, 0, 0, static_cast<std::int32_t>(code));
        return Status::Ok();
      }
      case Opcode::kLui: {
        RETURN_IF_ERROR(Expect(line, 2));
        ASSIGN_OR_RETURN(unsigned rd, ParseRegister(line, line.operands[0]));
        ASSIGN_OR_RETURN(std::int64_t imm,
                         Eval(line, line.operands[1], emit_));
        if (imm < 0 || imm > 0xffff) {
          return LineError(line, "lui immediate out of range");
        }
        EmitInstruction(opcode, rd, 0, 0, static_cast<std::int32_t>(imm));
        return Status::Ok();
      }
      case Opcode::kLd: case Opcode::kLdb:
      case Opcode::kSt: case Opcode::kStb: {
        RETURN_IF_ERROR(Expect(line, 2));
        ASSIGN_OR_RETURN(unsigned ra, ParseRegister(line, line.operands[0]));
        unsigned rb = 0;
        std::int32_t imm = 0;
        RETURN_IF_ERROR(ParseMemOperand(line, line.operands[1], &rb, &imm));
        EmitInstruction(opcode, ra, rb, 0, imm);
        return Status::Ok();
      }
      case Opcode::kJal: {
        RETURN_IF_ERROR(Expect(line, 2));
        ASSIGN_OR_RETURN(unsigned ra, ParseRegister(line, line.operands[0]));
        ASSIGN_OR_RETURN(std::int32_t offset,
                         BranchOffset(line, line.operands[1]));
        EmitInstruction(opcode, ra, 0, 0, offset);
        return Status::Ok();
      }
      case Opcode::kJalr: {
        // jalr rd, rs [, imm]
        if (line.operands.size() != 2 && line.operands.size() != 3) {
          return LineError(line, "jalr expects 2 or 3 operands");
        }
        ASSIGN_OR_RETURN(unsigned ra, ParseRegister(line, line.operands[0]));
        ASSIGN_OR_RETURN(unsigned rb, ParseRegister(line, line.operands[1]));
        std::int32_t imm = 0;
        if (line.operands.size() == 3) {
          ASSIGN_OR_RETURN(std::int64_t value,
                           Eval(line, line.operands[2], emit_));
          RETURN_IF_ERROR(CheckSigned16(line, value, "jalr offset"));
          imm = static_cast<std::int32_t>(value);
        }
        EmitInstruction(opcode, ra, rb, 0, imm);
        return Status::Ok();
      }
      default:
        break;
    }
    if (IsRType(opcode)) {
      RETURN_IF_ERROR(Expect(line, 3));
      ASSIGN_OR_RETURN(unsigned ra, ParseRegister(line, line.operands[0]));
      ASSIGN_OR_RETURN(unsigned rb, ParseRegister(line, line.operands[1]));
      ASSIGN_OR_RETURN(unsigned rc, ParseRegister(line, line.operands[2]));
      EmitInstruction(opcode, ra, rb, rc);
      return Status::Ok();
    }
    if (IsBranch(opcode)) {
      RETURN_IF_ERROR(Expect(line, 3));
      ASSIGN_OR_RETURN(unsigned ra, ParseRegister(line, line.operands[0]));
      ASSIGN_OR_RETURN(unsigned rb, ParseRegister(line, line.operands[1]));
      ASSIGN_OR_RETURN(std::int32_t offset,
                       BranchOffset(line, line.operands[2]));
      EmitInstruction(opcode, ra, rb, 0, offset);
      return Status::Ok();
    }
    // Remaining I-type ALU: op rd, rs, imm
    RETURN_IF_ERROR(Expect(line, 3));
    ASSIGN_OR_RETURN(unsigned ra, ParseRegister(line, line.operands[0]));
    ASSIGN_OR_RETURN(unsigned rb, ParseRegister(line, line.operands[1]));
    ASSIGN_OR_RETURN(std::int64_t value, Eval(line, line.operands[2], emit_));
    if (UsesLogicalImmediate(opcode)) {
      if (value < 0 || value > 0xffff) {
        return LineError(line, "logical immediate out of range [0, 0xffff]");
      }
    } else {
      RETURN_IF_ERROR(CheckSigned16(line, value, "immediate"));
    }
    EmitInstruction(opcode, ra, rb, 0, static_cast<std::int32_t>(value));
    return Status::Ok();
  }

  static bool LookupMnemonic(const std::string& name, Opcode* opcode) {
    for (int op = 0; op < 0x48; ++op) {
      if (!IsValidOpcode(static_cast<std::uint8_t>(op))) continue;
      if (name == OpcodeMnemonic(static_cast<Opcode>(op))) {
        *opcode = static_cast<Opcode>(op);
        return true;
      }
    }
    return false;
  }

  Status Pass(bool emit) {
    emit_ = emit;
    cursor_ = 0;
    chunk_base_ = 0;
    if (emit_) program_.chunks.clear();
    for (const SourceLine& line : lines_) {
      for (const std::string& label : line.labels) {
        if (!emit_) {
          if (program_.symbols.count(label) != 0) {
            return LineError(line, "duplicate label '" + label + "'");
          }
          program_.symbols[label] = cursor_;
        }
      }
      if (!line.mnemonic.empty()) {
        const std::uint32_t start = cursor_;
        RETURN_IF_ERROR(HandleStatement(line));
        // Non-directive statements only emit whole instruction words;
        // map each of them (pseudo-ops expand to several) to this line.
        if (emit_ && line.mnemonic[0] != '.') {
          for (std::uint32_t address = start; address < cursor_;
               address += 4) {
            program_.source_lines[address] = line.number;
          }
        }
      }
    }
    return Status::Ok();
  }

  std::vector<SourceLine> lines_;
  AssembledProgram program_;
  bool emit_ = false;
  std::uint32_t cursor_ = 0;
  std::uint32_t chunk_base_ = 0;
  std::string entry_label_;
};

}  // namespace

Result<AssembledProgram> Assemble(const std::string& source) {
  Assembler assembler;
  return assembler.Run(source);
}

}  // namespace goofi::sim
