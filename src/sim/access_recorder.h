// Records every register and memory-word access with its time.
//
// This is the data source for the paper's pre-injection analysis
// extension: "to determine when registers and other fault injection
// locations hold live data. Injecting a fault into a location that does
// not hold live data serves no purpose, since the fault will be
// overwritten." core/preinjection.* turns these event streams into
// liveness intervals.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/tracer.h"

namespace goofi::sim {

struct AccessRecorderState;  // sim/snapshot.h

struct AccessEvent {
  std::uint64_t time = 0;  // instret of the accessing instruction
  bool is_write = false;
};

class AccessRecorder : public Tracer {
 public:
  void OnInstructionRetired(const Cpu& cpu, const Instruction& instruction,
                            std::uint64_t time, std::uint32_t pc) override;
  void OnRegisterRead(unsigned reg, std::uint64_t time) override;
  void OnRegisterWrite(unsigned reg, std::uint32_t old_value,
                       std::uint32_t new_value, std::uint64_t time) override;
  void OnMemoryRead(std::uint32_t address, unsigned bytes,
                    std::uint64_t time) override;
  void OnMemoryWrite(std::uint32_t address, unsigned bytes,
                     std::uint32_t value, std::uint64_t time) override;

  // Events in program order, one stream per register (1..15).
  const std::vector<AccessEvent>& register_events(unsigned reg) const {
    return reg_events_[reg];
  }
  // Per word-aligned memory address.
  const std::map<std::uint32_t, std::vector<AccessEvent>>& memory_events()
      const {
    return mem_events_;
  }
  // pc_trace()[t] is the address of the instruction executed at time t.
  // core/crosscheck.* uses it to map the dynamic liveness timeline onto
  // the static analyzer's per-pc results.
  const std::vector<std::uint32_t>& pc_trace() const { return pc_trace_; }

  void Clear();

  // Checkpoint support (sim/snapshot.h): copy out / reinstate all three
  // event streams.
  AccessRecorderState CaptureState() const;
  void RestoreState(const AccessRecorderState& state);

 private:
  std::vector<AccessEvent> reg_events_[16];
  std::map<std::uint32_t, std::vector<AccessEvent>> mem_events_;
  std::vector<std::uint32_t> pc_trace_;
};

}  // namespace goofi::sim
