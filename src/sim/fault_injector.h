// Per-access fault injection on the memory hierarchy's access path.
//
// Every existing fault model mutates *architectural* state (registers,
// memory images, scan chains) while the target is stopped. This seam
// instead follows Sniper's FaultInjector interface: the caches and the
// memory image call PreRead/PostWrite hooks on every word access, and an
// installed injector mutates the *microarchitectural* arrays (cache
// data/tag/parity bits) or the in-flight value itself while the workload
// runs. The distinction matters for EDM coverage: a data-array flip
// leaves the stored parity stale and is caught on the next read hit,
// while an in-flight flip happens after the parity check and escapes —
// exactly the detected/escaped split the paper's outcome taxonomy
// (section 3.4) measures.
//
// PreRead runs after the alignment check and *before* hit determination,
// so a tag flip can turn the access into a miss and a data flip is seen
// by that same read's parity check. Its return value is an XOR mask
// applied to the loaded word *after* the parity check — the in-flight
// path that no array-level EDM can observe. PostWrite runs after the
// write-through (and resident-line update), which is where permanent
// stuck-at bits get re-pinned.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/memory.h"

namespace goofi::sim {

class Cache;                // sim/cache.h
struct FaultInjectorState;  // sim/snapshot.h

// Which unit of the hierarchy an access (or an armed fault) belongs to.
enum class MemUnit : std::uint32_t {
  kIcache = 0,
  kDcache = 1,
  kMainMemory = 2,
};
inline constexpr std::size_t kMemUnitCount = 3;

// Which physical array of a cache a fault lands in. kInflight is not an
// array at all: it corrupts the value on the wires, post-parity-check.
enum class CacheArray : std::uint32_t {
  kData = 0,
  kTag = 1,
  kParity = 2,
  kInflight = 3,
};

// Temporal behavior, mirroring target::FaultModel::Kind without a
// layering cycle (sim must not depend on target).
enum class ArmedFaultKind : std::uint32_t {
  kTransient = 0,        // applies once, then disarms
  kIntermittent = 1,     // re-applies every `period` unit accesses
  kPermanentStuckAt = 2, // re-pinned on every access to the unit
};

// One armed fault, in (unit, array, set, word, bit) coordinates taken
// from the real cache geometry. For MemUnit::kMainMemory only kInflight
// is meaningful and `set` holds the word-aligned byte address (memory
// has no arrays the access path can reach). Plain data so it snapshots
// verbatim (sim/snapshot.h FaultInjectorState) and forked runs replay
// the armed window bit-exactly.
struct ArmedCacheFault {
  MemUnit unit = MemUnit::kDcache;
  CacheArray array = CacheArray::kData;
  std::uint32_t set = 0;
  std::uint32_t word = 0;  // ignored for kTag
  std::uint32_t bit = 0;
  ArmedFaultKind kind = ArmedFaultKind::kTransient;
  bool stuck_to_one = false;      // kPermanentStuckAt polarity
  std::uint64_t period = 0;       // kIntermittent: accesses between hits
  std::uint32_t remaining = 1;    // transient/intermittent uses left
  // Unit-access count at or after which the fault next applies
  // (bookkeeping, maintained by the injector).
  std::uint64_t next_access = 0;

  friend bool operator==(const ArmedCacheFault&,
                         const ArmedCacheFault&) = default;
};

// The access-path hook interface (Sniper's preRead/postWrite shape).
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  // Called on every word read through `unit` (cache reads: after the
  // alignment check, before hit determination; memory reads: before the
  // value is returned). `cache` is the accessed cache, or nullptr for
  // main memory. Returns an XOR mask the caller applies to the loaded
  // word after its own EDM checks.
  virtual std::uint32_t PreRead(MemUnit unit, Cache* cache,
                                std::uint32_t address, AccessKind kind) = 0;

  // Called on every word written through `unit`, after the write-through
  // and any resident-line update.
  virtual void PostWrite(MemUnit unit, Cache* cache, std::uint32_t address,
                         std::uint32_t value) = 0;
};

// The concrete injector the CacheHierarchyTarget installs: holds a list
// of armed faults and realizes them on the access path. Deterministic —
// application depends only on the armed list and the access stream, so
// serial, sharded, and checkpoint-forked runs stay byte-identical.
class AccessPathInjector : public FaultInjector {
 public:
  // Arms a fault; it starts applying on the next access to its unit.
  void Arm(ArmedCacheFault fault);
  void ClearFaults();

  // Back to power-on: no armed faults, all counters zero (the target's
  // initTestCard calls this so experiments cannot leak faults into the
  // next run).
  void Reset() {
    armed_.clear();
    unit_accesses_.fill(0);
    applied_ = 0;
    inflight_flips_ = 0;
  }

  const std::vector<ArmedCacheFault>& armed() const { return armed_; }
  std::uint64_t applied_count() const { return applied_; }
  std::uint64_t inflight_flip_count() const { return inflight_flips_; }
  std::uint64_t unit_access_count(MemUnit unit) const {
    return unit_accesses_[static_cast<std::size_t>(unit)];
  }

  std::uint32_t PreRead(MemUnit unit, Cache* cache, std::uint32_t address,
                        AccessKind kind) override;
  void PostWrite(MemUnit unit, Cache* cache, std::uint32_t address,
                 std::uint32_t value) override;

  // Checkpoint support (sim/snapshot.h): armed faults and access
  // counters round-trip so a snapshot taken with a fault armed
  // mid-window forks into an identical continuation.
  FaultInjectorState CaptureState() const;
  void RestoreState(const FaultInjectorState& state);

 private:
  // Applies `fault` to the arrays of `cache` (or the in-flight mask for
  // kInflight / main-memory faults). Returns the XOR mask contribution.
  std::uint32_t Apply(const ArmedCacheFault& fault, MemUnit unit,
                      Cache* cache, std::uint32_t address, bool is_read);
  std::uint32_t OnAccess(MemUnit unit, Cache* cache, std::uint32_t address,
                         bool is_read);

  std::vector<ArmedCacheFault> armed_;
  std::array<std::uint64_t, kMemUnitCount> unit_accesses_{};
  std::uint64_t applied_ = 0;
  std::uint64_t inflight_flips_ = 0;
};

}  // namespace goofi::sim
