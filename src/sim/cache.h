// Direct-mapped, write-through caches with per-word parity bits.
//
// The Thor RD "features parity protected instruction and data caches";
// that parity logic is the hardware EDM that catches most faults injected
// into cache arrays via the scan chains. The model keeps every array bit
// (valid, tag, data words, parity bits) as addressable state so the scan
// chain can expose them as fault-injection locations:
//
//  - flipping a DATA bit leaves the stored parity stale -> the next read
//    hit raises a parity error (detected),
//  - flipping the PARITY bit itself also raises one (false alarm,
//    faithful to real parity checkers),
//  - flipping a TAG bit usually turns the next access into a miss and the
//    fault is refetched over (overwritten / non-effective),
//  - flipping VALID 1->0 silently invalidates the line (overwritten).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/memory.h"

namespace goofi::sim {

struct CacheState;  // sim/snapshot.h

struct CacheGeometry {
  std::uint32_t lines = 16;           // power of two
  std::uint32_t words_per_line = 4;   // power of two
  std::uint32_t tag_bits = 24;
};

struct CacheLine {
  bool valid = false;
  std::uint32_t tag = 0;
  std::vector<std::uint32_t> words;
  std::vector<bool> parity;  // stored parity bit per word
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t parity_errors = 0;
};

class Cache {
 public:
  explicit Cache(CacheGeometry geometry = {});

  const CacheGeometry& geometry() const { return geometry_; }
  const CacheStats& stats() const { return stats_; }

  // Read through the cache. On a hit the stored parity is checked;
  // *parity_error reports a mismatch (the CPU raises the corresponding
  // EDM). On a miss the line is filled from memory. Returns the memory
  // fault (if any) of the fill/access path.
  MemFault ReadWord(Memory& memory, std::uint32_t address,
                    std::uint32_t* value, AccessKind kind,
                    bool* parity_error);

  // Write-through with write-update (no allocate on miss): memory is
  // written, and if the line is resident the cached word + parity are
  // refreshed.
  MemFault WriteWord(Memory& memory, std::uint32_t address,
                     std::uint32_t value);

  void Invalidate();

  // Raw array access for the scan chain.
  std::size_t line_count() const { return lines_.size(); }
  CacheLine& line(std::size_t index) { return lines_[index]; }
  const CacheLine& line(std::size_t index) const { return lines_[index]; }

  // Address decomposition (public for tests and the scan-chain map).
  std::uint32_t LineIndex(std::uint32_t address) const;
  std::uint32_t WordIndex(std::uint32_t address) const;
  std::uint32_t Tag(std::uint32_t address) const;

  static bool ComputeParity(std::uint32_t word);  // even parity over 32 bits

  // Access-path fault injection (sim/fault_injector.h). When installed,
  // ReadWord calls PreRead after the alignment check and before hit
  // determination (tag flips can turn the access into a miss, data flips
  // are seen by that read's own parity check) and XORs the returned
  // in-flight mask into the loaded word *after* the parity check;
  // WriteWord calls PostWrite after the write-through and resident-line
  // update. `unit` tells the injector which cache this is.
  void set_fault_injector(FaultInjector* injector, MemUnit unit) {
    injector_ = injector;
    injector_unit_ = unit;
  }
  FaultInjector* fault_injector() const { return injector_; }

  // Checkpoint support (sim/snapshot.h): every array bit — valid, tag,
  // data words and the stored parity bits — plus the statistics.
  // RestoreState fails when the line shape does not match the geometry.
  CacheState CaptureState() const;
  Status RestoreState(const CacheState& state);

 private:
  CacheGeometry geometry_;
  std::vector<CacheLine> lines_;
  CacheStats stats_;
  FaultInjector* injector_ = nullptr;
  MemUnit injector_unit_ = MemUnit::kMainMemory;
};

}  // namespace goofi::sim
