// Capture/restore implementations for every snapshottable sim
// component. They live in one translation unit so the component headers
// only need to forward-declare their state structs (sim/snapshot.h
// includes all of them; including it from cpu.h etc. would be a cycle).
#include "sim/snapshot.h"

#include <algorithm>

#include "util/strings.h"

namespace goofi::sim {

CacheState Cache::CaptureState() const {
  CacheState state;
  state.lines = lines_;
  state.stats = stats_;
  return state;
}

Status Cache::RestoreState(const CacheState& state) {
  if (state.lines.size() != lines_.size()) {
    return InvalidArgumentError(
        StrFormat("cache snapshot has %zu lines, cache has %zu",
                  state.lines.size(), lines_.size()));
  }
  for (const CacheLine& line : state.lines) {
    if (line.words.size() != geometry_.words_per_line ||
        line.parity.size() != geometry_.words_per_line) {
      return InvalidArgumentError(
          "cache snapshot line shape does not match geometry");
    }
  }
  lines_ = state.lines;
  stats_ = state.stats;
  return Status::Ok();
}

MemoryState Memory::CaptureState() const {
  MemoryState state;
  state.backings.reserve(backings_.size());
  for (const Backing& backing : backings_) {
    state.backings.push_back(backing.bytes);
  }
  return state;
}

Status Memory::RestoreState(const MemoryState& state) {
  if (state.backings.size() != backings_.size()) {
    return InvalidArgumentError(
        StrFormat("memory snapshot has %zu segments, memory has %zu",
                  state.backings.size(), backings_.size()));
  }
  for (std::size_t i = 0; i < backings_.size(); ++i) {
    if (state.backings[i].size() != backings_[i].bytes.size()) {
      return InvalidArgumentError(StrFormat(
          "memory snapshot segment %zu is %zu bytes, segment '%s' is %zu",
          i, state.backings[i].size(), backings_[i].segment.name.c_str(),
          backings_[i].bytes.size()));
    }
  }
  for (std::size_t i = 0; i < backings_.size(); ++i) {
    backings_[i].bytes = state.backings[i];
  }
  return Status::Ok();
}

CpuState Cpu::CaptureState() const {
  CpuState state;
  std::copy(std::begin(regs_), std::end(regs_), state.regs.begin());
  state.pc = pc_;
  state.ir = ir_;
  state.mar = mar_;
  state.mdr = mdr_;
  state.wdt = wdt_;
  state.ir_valid = ir_valid_;
  state.halted = halted_;
  state.instret = instret_;
  state.iterations = iterations_;
  state.recoveries = recoveries_;
  state.emitted = emitted_;
  state.edm_events = edm_events_;
  state.memory = memory_.CaptureState();
  state.icache = icache_.CaptureState();
  state.dcache = dcache_.CaptureState();
  return state;
}

Status Cpu::RestoreState(const CpuState& state) {
  // Validate every sub-restore before mutating anything, so a geometry
  // mismatch cannot leave the CPU half-restored.
  RETURN_IF_ERROR(memory_.RestoreState(state.memory));
  RETURN_IF_ERROR(icache_.RestoreState(state.icache));
  RETURN_IF_ERROR(dcache_.RestoreState(state.dcache));
  std::copy(state.regs.begin(), state.regs.end(), std::begin(regs_));
  pc_ = state.pc;
  ir_ = state.ir;
  mar_ = state.mar;
  mdr_ = state.mdr;
  wdt_ = state.wdt;
  ir_valid_ = state.ir_valid;
  halted_ = state.halted;
  instret_ = state.instret;
  iterations_ = state.iterations;
  recoveries_ = state.recoveries;
  emitted_ = state.emitted;
  edm_events_ = state.edm_events;
  return Status::Ok();
}

TapControllerState TapController::CaptureState() const {
  TapControllerState state;
  state.state = state_;
  state.instruction = instruction_;
  state.ir_shift = ir_shift_;
  state.dr_shift = dr_shift_;
  state.dr_length = dr_length_;
  state.tck_cycles = tck_cycles_;
  return state;
}

void TapController::RestoreState(const TapControllerState& state) {
  state_ = state.state;
  instruction_ = state.instruction;
  ir_shift_ = state.ir_shift;
  dr_shift_ = state.dr_shift;
  dr_length_ = state.dr_length;
  tck_cycles_ = state.tck_cycles;
}

AccessRecorderState AccessRecorder::CaptureState() const {
  AccessRecorderState state;
  for (std::size_t i = 0; i < state.reg_events.size(); ++i) {
    state.reg_events[i] = reg_events_[i];
  }
  state.mem_events = mem_events_;
  state.pc_trace = pc_trace_;
  return state;
}

void AccessRecorder::RestoreState(const AccessRecorderState& state) {
  for (std::size_t i = 0; i < state.reg_events.size(); ++i) {
    reg_events_[i] = state.reg_events[i];
  }
  mem_events_ = state.mem_events;
  pc_trace_ = state.pc_trace;
}

}  // namespace goofi::sim
