// GOOFI-32: the instruction set of the simulated Thor-RD-like target CPU.
//
// The paper's target is the Thor RD, a rad-hard processor for space
// applications with parity-protected caches and IEEE 1149.1 scan logic.
// The tool never depends on Thor's ISA — only on its state elements and
// error-detection mechanisms — so we define a compact 32-bit RISC ISA
// that is easy to assemble workloads for (DESIGN.md, substitutions).
//
// Encoding (32 bits):
//   [31:24] opcode   [23:20] ra   [19:16] rb   [15:12] rc   [15:0] imm16
// R-type uses ra,rb,rc ([11:0] zero); I-type uses ra,rb,imm16.
//
// Registers: r0 reads as zero (writes ignored), r1..r13 general,
// r14 = sp (stack pointer), r15 = lr (link register) by convention.
//
// Immediates: arithmetic immediates (ADDI, SLTI, loads/stores, branches,
// JAL) are sign-extended; logical immediates (ANDI, ORI, XORI) are
// zero-extended. Branch/JAL offsets count words relative to pc+4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/status.h"

namespace goofi::sim {

enum class Opcode : std::uint8_t {
  kNop  = 0x00,
  kHalt = 0x01,
  // SYS imm16 — software signal to the harness; see SysCode.
  kSys  = 0x02,
  // ra = imm16 << 16
  kLui  = 0x08,

  // R-type: ra = rb OP rc
  kAdd  = 0x10,
  kSub  = 0x11,
  kMul  = 0x12,
  kDiv  = 0x13,  // signed; divide-by-zero raises an EDM event
  kAnd  = 0x14,
  kOr   = 0x15,
  kXor  = 0x16,
  kSll  = 0x17,  // shift amount = rc & 31
  kSrl  = 0x18,
  kSra  = 0x19,
  kSlt  = 0x1a,  // ra = (signed) rb < rc
  kSltu = 0x1b,

  // I-type: ra = rb OP imm
  kAddi = 0x20,
  kAndi = 0x21,
  kOri  = 0x22,
  kXori = 0x23,
  kSlli = 0x24,
  kSrli = 0x25,
  kSrai = 0x26,
  kSlti = 0x27,

  // Memory: address = rb + imm (sign-extended)
  kLd   = 0x30,  // ra = mem32[rb+imm]
  kSt   = 0x31,  // mem32[rb+imm] = ra
  kLdb  = 0x32,  // ra = zero-extended mem8[rb+imm]
  kStb  = 0x33,  // mem8[rb+imm] = ra & 0xff

  // Branches: compare ra, rb; target = pc + 4 + imm*4
  kBeq  = 0x40,
  kBne  = 0x41,
  kBlt  = 0x42,  // signed
  kBge  = 0x43,  // signed
  kBltu = 0x44,
  kBgeu = 0x45,

  // Jumps
  kJal  = 0x46,  // ra = pc + 4; pc = pc + 4 + imm*4
  kJalr = 0x47,  // ra = pc + 4; pc = (rb + imm) & ~3
};

// SYS immediate codes understood by the simulator/harness.
enum class SysCode : std::uint16_t {
  kIterEnd = 1,     // end of a control-loop iteration (environment exchange)
  kAssertFail = 2,  // executable assertion fired (application-level EDM)
  kWdtKick = 3,     // reset the watchdog timer
  kEmit = 4,        // append r1 to the workload output stream
  kRecovery = 5,    // best-effort recovery marker (companion paper [12])
};

struct Instruction {
  Opcode opcode = Opcode::kNop;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::uint8_t rc = 0;
  std::int32_t imm = 0;       // sign- or zero-extended per the opcode
  std::uint32_t raw = 0;      // original encoding
};

// Is `opcode` a defined GOOFI-32 opcode?
bool IsValidOpcode(std::uint8_t opcode);

// Immediate handling class of an opcode.
bool UsesSignedImmediate(Opcode opcode);  // ADDI/SLTI/mem/branch/JAL
bool UsesLogicalImmediate(Opcode opcode); // ANDI/ORI/XORI (zero-extended)
bool IsRType(Opcode opcode);
bool IsBranch(Opcode opcode);
bool IsCall(Opcode opcode);  // JAL/JALR (trigger class "subprogram call")

// Syntactic register def/use sets of one decoded instruction — the
// single source of truth shared by the CPU's trace hooks (asserted in
// debug builds), the access recorder's event streams and the static
// analyzer (src/analysis). Masks are bit-per-register (bit N = rN) and
// include r0; consumers that reason about liveness mask r0 out
// themselves (it reads as zero and ignores writes).
struct RegDefUse {
  std::uint16_t uses = 0;
  std::uint16_t defs = 0;
  bool reads_memory = false;   // LD/LDB, plus STB (partial-word write
                               // leaves the rest of the word live)
  bool writes_memory = false;  // ST/STB
};
RegDefUse InstructionDefUse(const Instruction& instruction);

std::uint32_t Encode(const Instruction& instruction);
// Decode; an undefined opcode yields an error (the CPU raises the
// illegal-opcode EDM from it).
Result<Instruction> Decode(std::uint32_t word);

const char* OpcodeMnemonic(Opcode opcode);
std::string Disassemble(const Instruction& instruction);

}  // namespace goofi::sim
