// Small string helpers shared across layers (SQL lexer, assembler,
// campaign-config parsing, state-vector serialization).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace goofi {

// Trim ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view text);

// Split on a delimiter; empty pieces are kept ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view text, char delimiter);

// Split on runs of whitespace; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view text);

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator);

std::string AsciiToLower(std::string_view text);
std::string AsciiToUpper(std::string_view text);

bool EqualsIgnoreCase(std::string_view a, std::string_view b);
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Parse integers; accepts optional leading '-' and 0x/0X hex prefix.
std::optional<std::int64_t> ParseInt64(std::string_view text);
std::optional<std::uint64_t> ParseUint64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

// printf-style formatting into std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Glob-style match supporting '*' (any run) and '?' (any one char);
// used by location filters such as "cpu.regs.*".
bool GlobMatch(std::string_view pattern, std::string_view text);

// SQL LIKE match: '%' = any run, '_' = any one char, case-sensitive.
bool LikeMatch(std::string_view pattern, std::string_view text);

// Escape/unescape for tab-separated persistence files: '\\', '\t', '\n',
// and '\0'-free round trip. UnescapeTsvField returns nullopt on a
// malformed escape.
std::string EscapeTsvField(std::string_view raw);
std::optional<std::string> UnescapeTsvField(std::string_view escaped);

// Hex encoding of raw bytes (lowercase), and its inverse.
std::string HexEncode(std::string_view bytes);
std::optional<std::string> HexDecode(std::string_view hex);

}  // namespace goofi
