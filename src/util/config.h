// INI-style configuration files.
//
// This is the reproduction's substitute for GOOFI's configuration and
// set-up GUI windows (paper Figs. 5 and 6): target descriptions and
// campaign definitions are declarative files that the tool parses into
// TargetSystemData / CampaignData rows (see src/core/campaign.*).
//
// Format:
//   # comment, ; comment
//   [section]            ; sections may repeat; order is preserved
//   key = value          ; values keep internal spaces, trimmed at ends
//   key[] = value        ; appends to a repeated key (list value)
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/status.h"

namespace goofi {

class ConfigSection {
 public:
  ConfigSection() = default;
  explicit ConfigSection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  bool Has(const std::string& key) const;

  // Scalar lookups. GetX return nullopt when the key is absent; the *Or
  // variants substitute a default. A present key that fails to parse as
  // the requested type is reported through the Result overloads below.
  std::optional<std::string> GetString(const std::string& key) const;
  std::string GetStringOr(const std::string& key, std::string fallback) const;
  Result<std::int64_t> GetInt(const std::string& key) const;
  std::int64_t GetIntOr(const std::string& key, std::int64_t fallback) const;
  Result<double> GetDouble(const std::string& key) const;
  double GetDoubleOr(const std::string& key, double fallback) const;
  Result<bool> GetBool(const std::string& key) const;  // true/false/1/0/yes/no
  bool GetBoolOr(const std::string& key, bool fallback) const;

  // All values appended with `key[] =`, plus the scalar value if present.
  std::vector<std::string> GetList(const std::string& key) const;

  void Set(const std::string& key, std::string value);
  void Append(const std::string& key, std::string value);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::string name_;
  // Order-preserving; scalar Get uses the last occurrence of a key.
  std::vector<std::pair<std::string, std::string>> entries_;
};

class Config {
 public:
  static Result<Config> Parse(const std::string& text);
  static Result<Config> LoadFile(const std::string& path);

  // First section with the given name, or nullptr.
  const ConfigSection* FindSection(const std::string& name) const;
  // All sections with the given name, in file order.
  std::vector<const ConfigSection*> FindSections(const std::string& name) const;

  const std::vector<ConfigSection>& sections() const { return sections_; }
  std::vector<ConfigSection>& mutable_sections() { return sections_; }

  std::string Serialize() const;

 private:
  std::vector<ConfigSection> sections_;
};

}  // namespace goofi
