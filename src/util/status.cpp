#include "util/status.h"

namespace goofi {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
    case ErrorCode::kConstraintViolation: return "CONSTRAINT_VIOLATION";
    case ErrorCode::kParseError: return "PARSE_ERROR";
    case ErrorCode::kTargetFault: return "TARGET_FAULT";
    case ErrorCode::kIo: return "IO";
    case ErrorCode::kQueueFull: return "QUEUE_FULL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(ErrorCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(ErrorCode::kDataLoss, std::move(message));
}
Status ConstraintViolationError(std::string message) {
  return Status(ErrorCode::kConstraintViolation, std::move(message));
}
Status ParseError(std::string message) {
  return Status(ErrorCode::kParseError, std::move(message));
}
Status TargetFaultError(std::string message) {
  return Status(ErrorCode::kTargetFault, std::move(message));
}
Status IoError(std::string message) {
  return Status(ErrorCode::kIo, std::move(message));
}
Status QueueFullError(std::string message) {
  return Status(ErrorCode::kQueueFull, std::move(message));
}

}  // namespace goofi
