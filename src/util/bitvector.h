// Arbitrary-width bit vector used as the bit-accurate image of a scan
// chain (DESIGN.md: src/sim/scan_chain). Bit 0 is the first bit shifted
// out of the chain. Unlike std::vector<bool> this exposes word-sized
// field extraction/insertion, which is how named state elements (a 32-bit
// register at chain position p) are read and written.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace goofi {

class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t bit_count) { Resize(bit_count); }

  std::size_t size() const { return bit_count_; }
  bool empty() const { return bit_count_ == 0; }

  void Resize(std::size_t bit_count);
  void Clear();  // size -> 0

  bool Get(std::size_t bit) const;
  void Set(std::size_t bit, bool value);
  void Flip(std::size_t bit);

  // Extract/insert a little-endian field of up to 64 bits starting at
  // `bit`. Fields may straddle word boundaries.
  std::uint64_t GetField(std::size_t bit, std::size_t width) const;
  void SetField(std::size_t bit, std::size_t width, std::uint64_t value);

  // Number of set bits, and number of differing bits vs `other`
  // (vectors must be the same size).
  std::size_t PopCount() const;
  std::size_t HammingDistance(const BitVector& other) const;

  void FillZero();
  void FillOne();

  // Shift the whole vector right by one (bit 1 -> bit 0, ...), inserting
  // `top` as the new highest bit, and return the old bit 0. This is the
  // TAP controller's shift-register step; word-level, O(size/64).
  bool ShiftRightInsertTop(bool top);

  // '0'/'1' string, bit 0 first; and the inverse parse ("0110...").
  std::string ToBitString() const;
  static BitVector FromBitString(const std::string& bits);

  // Compact hex serialization (lowercase, 4 bits per char, bit 0 in the
  // low nibble of the first char), prefixed with "<bitcount>:".
  std::string ToHexString() const;
  static bool FromHexString(const std::string& text, BitVector* out);

  friend bool operator==(const BitVector& a, const BitVector& b) {
    return a.bit_count_ == b.bit_count_ && a.words_ == b.words_;
  }

 private:
  void MaskTail();  // zero the unused bits of the last word

  std::size_t bit_count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace goofi
