#include "util/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace goofi {

namespace {

Status Errno(const std::string& what) {
  return IoError(what + ": " + std::strerror(errno));
}

Result<sockaddr_un> MakeAddress(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    return InvalidArgumentError("socket path '" + path +
                                "' is empty or too long for sockaddr_un");
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void UnixSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UnixSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<UnixSocket> UnixSocket::Listen(const std::string& path, int backlog) {
  ASSIGN_OR_RETURN(const sockaddr_un address, MakeAddress(path));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  UnixSocket socket(fd);
  ::unlink(path.c_str());  // stale file from a killed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Errno("bind '" + path + "'");
  }
  if (::listen(fd, backlog) != 0) return Errno("listen '" + path + "'");
  return socket;
}

Result<UnixSocket> UnixSocket::Connect(const std::string& path) {
  ASSIGN_OR_RETURN(const sockaddr_un address, MakeAddress(path));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  UnixSocket socket(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect '" + path + "'");
  return socket;
}

Result<UnixSocket> UnixSocket::Accept() const {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return UnixSocket(fd);
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

Status UnixSocket::WriteAll(const char* data, std::size_t size) const {
  std::size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE here instead of
    // killing the daemon with SIGPIPE.
    const ssize_t n =
        ::send(fd_, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status UnixSocket::ReadAll(char* data, std::size_t size,
                           bool* clean_eof) const {
  if (clean_eof != nullptr) *clean_eof = false;
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::Ok();
      }
      return IoError("peer closed the connection mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status UnixSocket::SendFrame(std::string_view payload) const {
  if (!valid()) return FailedPreconditionError("SendFrame on closed socket");
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgumentError("frame exceeds kMaxFrameBytes");
  }
  const auto length = static_cast<std::uint32_t>(payload.size());
  char prefix[4];
  prefix[0] = static_cast<char>(length & 0xff);
  prefix[1] = static_cast<char>((length >> 8) & 0xff);
  prefix[2] = static_cast<char>((length >> 16) & 0xff);
  prefix[3] = static_cast<char>((length >> 24) & 0xff);
  // One buffered write so a frame is a single send when it fits the
  // socket buffer (no interleaving hazard on this point-to-point pipe,
  // but it keeps small messages to one syscall).
  std::string wire;
  wire.reserve(sizeof(prefix) + payload.size());
  wire.append(prefix, sizeof(prefix));
  wire.append(payload.data(), payload.size());
  return WriteAll(wire.data(), wire.size());
}

Result<std::string> UnixSocket::RecvFrame() const {
  if (!valid()) return FailedPreconditionError("RecvFrame on closed socket");
  char prefix[4];
  bool clean_eof = false;
  RETURN_IF_ERROR(ReadAll(prefix, sizeof(prefix), &clean_eof));
  if (clean_eof) return NotFoundError("end of stream");
  const std::uint32_t length =
      static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[1]))
       << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[2]))
       << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(prefix[3]))
       << 24);
  if (length > kMaxFrameBytes) {
    return DataLossError("frame length prefix exceeds kMaxFrameBytes");
  }
  std::string payload(length, '\0');
  if (length != 0) {
    RETURN_IF_ERROR(ReadAll(payload.data(), length, nullptr));
  }
  return payload;
}

}  // namespace goofi
