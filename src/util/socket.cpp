#include "util/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/crc32.h"

namespace goofi {

namespace {

Status Errno(const std::string& what) {
  return IoError(what + ": " + std::strerror(errno));
}

void AppendU32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

std::uint32_t DecodeU32(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1]))
          << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2]))
          << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]))
          << 24);
}

Result<sockaddr_un> MakeAddress(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    return InvalidArgumentError("socket path '" + path +
                                "' is empty or too long for sockaddr_un");
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

}  // namespace

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void UnixSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UnixSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<UnixSocket> UnixSocket::Listen(const std::string& path, int backlog) {
  ASSIGN_OR_RETURN(const sockaddr_un address, MakeAddress(path));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  UnixSocket socket(fd);
  ::unlink(path.c_str());  // stale file from a killed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Errno("bind '" + path + "'");
  }
  if (::listen(fd, backlog) != 0) return Errno("listen '" + path + "'");
  return socket;
}

Result<UnixSocket> UnixSocket::Connect(const std::string& path) {
  ASSIGN_OR_RETURN(const sockaddr_un address, MakeAddress(path));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  UnixSocket socket(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect '" + path + "'");
  return socket;
}

Result<UnixSocket> UnixSocket::Accept(int* accept_errno) const {
  if (accept_errno != nullptr) *accept_errno = 0;
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return UnixSocket(fd);
    // A client that connected and died while queued in the backlog is
    // not the listener's problem: take the next one.
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (accept_errno != nullptr) *accept_errno = errno;
    return Errno("accept");
  }
}

Status UnixSocket::WriteAll(const char* data, std::size_t size) const {
  std::size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE here instead of
    // killing the daemon with SIGPIPE.
    const ssize_t n =
        ::send(fd_, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status UnixSocket::ReadAll(char* data, std::size_t size,
                           bool* clean_eof) const {
  if (clean_eof != nullptr) *clean_eof = false;
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::Ok();
      }
      return IoError("peer closed the connection mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status UnixSocket::SendFrame(std::string_view payload) const {
  if (!valid()) return FailedPreconditionError("SendFrame on closed socket");
  if (payload.size() > kMaxFrameBytes) {
    return InvalidArgumentError("frame exceeds kMaxFrameBytes");
  }
  // One buffered write so a frame is a single send when it fits the
  // socket buffer (no interleaving hazard on this point-to-point pipe,
  // but it keeps small messages to one syscall).
  std::string wire;
  wire.reserve(8 + payload.size());
  AppendU32(wire, static_cast<std::uint32_t>(payload.size()));
  AppendU32(wire, Crc32(payload));
  wire.append(payload.data(), payload.size());
  return WriteAll(wire.data(), wire.size());
}

Result<std::string> UnixSocket::RecvFrame() const {
  if (!valid()) return FailedPreconditionError("RecvFrame on closed socket");
  char prefix[8];
  bool clean_eof = false;
  RETURN_IF_ERROR(ReadAll(prefix, sizeof(prefix), &clean_eof));
  if (clean_eof) return NotFoundError("end of stream");
  const std::uint32_t length = DecodeU32(prefix);
  const std::uint32_t crc = DecodeU32(prefix + 4);
  if (length > kMaxFrameBytes) {
    return DataLossError("frame length prefix exceeds kMaxFrameBytes");
  }
  std::string payload(length, '\0');
  if (length != 0) {
    RETURN_IF_ERROR(ReadAll(payload.data(), length, nullptr));
  }
  if (Crc32(payload) != crc) {
    return DataLossError("frame payload fails its CRC");
  }
  return payload;
}

}  // namespace goofi
