// Deterministic random number generation for fault-injection campaigns.
//
// Every campaign records its seed in CampaignData; re-running the campaign
// with the same seed reproduces the exact fault list (location, bit, time)
// — the paper's `parentExperiment` detail-mode re-run depends on this.
//
// SplitMix64 seeds Xoshiro256**, both public-domain algorithms with
// well-studied statistical behaviour. We avoid <random> engines because
// their streams are not guaranteed identical across standard libraries,
// and campaign reproducibility is a portability requirement (the paper's
// tool runs on both Windows and Solaris hosts).
#pragma once

#include <cstdint>

namespace goofi {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Reseed(seed); }

  void Reseed(std::uint64_t seed);

  // Uniform bits.
  std::uint64_t NextU64();

  // Uniform integer in [0, bound) using Lemire's debiased multiply.
  // bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial.
  bool NextBool(double p_true = 0.5);

 private:
  std::uint64_t state_[4];
};

// Seed for substream `stream` of `seed` (a SplitMix64 finalize over the
// pair). Campaigns give experiment i the stream seed (campaign_seed, i),
// so any experiment's fault can be regenerated without replaying the
// draws of experiments 0..i-1 — the property that lets a sharded
// campaign sample its plan out of order yet stay bit-identical to a
// serial walk.
std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::uint64_t stream);

}  // namespace goofi
