// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the one
// integrity checksum shared by every GOOFI wire/disk format: WAL log
// records and snapshot trailers (db/wal.h) and the goofi_serve socket
// frames (util/socket.h).
#pragma once

#include <cstdint>
#include <string_view>

namespace goofi {

std::uint32_t Crc32(std::string_view bytes);

}  // namespace goofi
