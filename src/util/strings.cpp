#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace goofi {

std::string_view StripAsciiWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> pieces;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    std::size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) pieces.emplace_back(text.substr(start, i - start));
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> ParseInt64(std::string_view text) {
  text = StripAsciiWhitespace(text);
  if (text.empty()) return std::nullopt;
  bool negative = false;
  if (text[0] == '-') {
    negative = true;
    text.remove_prefix(1);
  } else if (text[0] == '+') {
    text.remove_prefix(1);
  }
  const std::optional<std::uint64_t> magnitude = ParseUint64(text);
  if (!magnitude) return std::nullopt;
  if (negative) {
    if (*magnitude > 0x8000000000000000ULL) return std::nullopt;
    return -static_cast<std::int64_t>(*magnitude - 1) - 1;
  }
  if (*magnitude > 0x7fffffffffffffffULL) return std::nullopt;
  return static_cast<std::int64_t>(*magnitude);
}

std::optional<std::uint64_t> ParseUint64(std::string_view text) {
  text = StripAsciiWhitespace(text);
  if (text.empty()) return std::nullopt;
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    text.remove_prefix(2);
    if (text.empty()) return std::nullopt;
  }
  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (base == 16 && c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (base == 16 && c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (digit >= base) return std::nullopt;
    const std::uint64_t next = value * base + static_cast<std::uint64_t>(digit);
    if (next / base != value) return std::nullopt;  // overflow
    value = next;
  }
  return value;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = StripAsciiWhitespace(text);
  if (text.empty()) return std::nullopt;
  std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size()) return std::nullopt;
  return value;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

namespace {

// Shared wildcard matcher: `any_run` matches any sequence (including
// empty), `any_one` matches exactly one character.
bool WildcardMatch(std::string_view pattern, std::string_view text,
                   char any_run, char any_one) {
  // Iterative two-pointer algorithm with backtracking over the last
  // any_run position; linear in practice.
  std::size_t p = 0, t = 0;
  std::size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == any_one || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == any_run) {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == any_run) ++p;
  return p == pattern.size();
}

}  // namespace

bool GlobMatch(std::string_view pattern, std::string_view text) {
  return WildcardMatch(pattern, text, '*', '?');
}

bool LikeMatch(std::string_view pattern, std::string_view text) {
  return WildcardMatch(pattern, text, '%', '_');
}

std::string EscapeTsvField(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::optional<std::string> UnescapeTsvField(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (std::size_t i = 0; i < escaped.size(); ++i) {
    if (escaped[i] != '\\') {
      out.push_back(escaped[i]);
      continue;
    }
    if (++i == escaped.size()) return std::nullopt;
    switch (escaped[i]) {
      case '\\': out.push_back('\\'); break;
      case 't': out.push_back('\t'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      default: return std::nullopt;
    }
  }
  return out;
}

std::string HexEncode(std::string_view bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

std::optional<std::string> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int high = nibble(hex[i]);
    const int low = nibble(hex[i + 1]);
    if (high < 0 || low < 0) return std::nullopt;
    out.push_back(static_cast<char>((high << 4) | low));
  }
  return out;
}

}  // namespace goofi
