#include "util/crc32.h"

#include <array>

namespace goofi {

std::uint32_t Crc32(std::string_view bytes) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace goofi
