// Lightweight Status / Result<T> error handling for GOOFI++.
//
// Recoverable failures (bad config, malformed SQL, target refuses a
// command) are reported as values; exceptions are reserved for programming
// errors. See DESIGN.md section 4.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace goofi {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDataLoss,
  kConstraintViolation,  // database integrity (PK/FK/UNIQUE/NOT NULL)
  kParseError,           // SQL / assembler / config syntax errors
  kTargetFault,          // target system refused or failed an operation
  kIo,                   // filesystem / transport failures
  kQueueFull,            // bounded queue rejected a submission (backpressure)
};

const char* ErrorCodeName(ErrorCode code);

// A success-or-error value. Cheap to copy on the success path.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != ErrorCode::kOk && "use Status() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Convenience constructors mirroring the ErrorCode enumerators.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status DataLossError(std::string message);
Status ConstraintViolationError(std::string message);
Status ParseError(std::string message);
Status TargetFaultError(std::string message);
Status IoError(std::string message);
Status QueueFullError(std::string message);

// A value or an error. `value()` asserts on the error path; call `ok()`
// (or use RETURN_IF_ERROR/ASSIGN_OR_RETURN) first.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "cannot build Result<T> from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace goofi

// Early-return plumbing for Status/Result call chains.
#define GOOFI_CONCAT_INNER(a, b) a##b
#define GOOFI_CONCAT(a, b) GOOFI_CONCAT_INNER(a, b)

#define RETURN_IF_ERROR(expr)                       \
  do {                                              \
    ::goofi::Status goofi_status__ = (expr);        \
    if (!goofi_status__.ok()) return goofi_status__; \
  } while (0)

#define ASSIGN_OR_RETURN(lhs, expr)                            \
  auto GOOFI_CONCAT(goofi_result__, __LINE__) = (expr);        \
  if (!GOOFI_CONCAT(goofi_result__, __LINE__).ok())            \
    return GOOFI_CONCAT(goofi_result__, __LINE__).status();    \
  lhs = std::move(GOOFI_CONCAT(goofi_result__, __LINE__)).value()
