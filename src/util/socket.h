// Local (Unix-domain) stream sockets with length-prefixed, CRC-framed
// messages.
//
// This is the transport under the goofi_serve submission protocol
// (src/service/protocol.h): a daemon listens on a filesystem socket,
// clients connect and exchange framed messages. A frame on the wire is
//
//   u32 payload_length (little-endian) | u32 crc32(payload) | payload
//
// so a reader always knows message boundaries and a half-written frame
// from a dying peer is detected as a short read, never misparsed as the
// next message; the CRC (same CRC-32 as the WAL log records,
// util/crc32.h) rejects a desynchronized or corrupted stream as
// kDataLoss instead of executing a garbled verb. The frame length is
// capped (kMaxFrameBytes) so a corrupt or hostile peer cannot make the
// receiver allocate unbounded memory.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace goofi {

// Largest frame either side will send or accept. Campaign submissions
// are ini text (a few KiB); 4 MiB leaves room without letting a bad
// length prefix drive allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;

// A connected (or listening) Unix-domain stream socket owning its fd.
// Move-only; the destructor closes. All operations are blocking.
class UnixSocket {
 public:
  UnixSocket() = default;
  explicit UnixSocket(int fd) : fd_(fd) {}
  UnixSocket(UnixSocket&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  UnixSocket& operator=(UnixSocket&& other) noexcept;
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;
  ~UnixSocket() { Close(); }

  // Bind + listen on `path`. Any stale socket file at `path` (left by a
  // killed daemon) is removed first — the caller is the one daemon
  // allowed to own it.
  static Result<UnixSocket> Listen(const std::string& path, int backlog = 16);

  // Connect to a listening daemon at `path`.
  static Result<UnixSocket> Connect(const std::string& path);

  // Accept one connection (blocks). Fails with kIo once the listening
  // fd has been shut down (how Drain() unblocks the accept loop).
  // Connections that died while queued in the backlog (ECONNABORTED)
  // are retried internally; for other failures `accept_errno`, when
  // non-null, receives the errno so the caller can tell transient
  // resource exhaustion (EMFILE/ENFILE) from a dead listener.
  Result<UnixSocket> Accept(int* accept_errno = nullptr) const;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Close the fd (idempotent). Shutdown() additionally wakes any thread
  // blocked in Accept()/RecvFrame() on this socket from another thread.
  void Close();
  void Shutdown();

  // Send one framed message (length prefix + CRC + payload). Partial
  // writes are retried; a closed peer reports kIo instead of raising
  // SIGPIPE.
  Status SendFrame(std::string_view payload) const;

  // Receive one framed message. A peer that closes cleanly before the
  // first length byte reports kNotFound ("end of stream"); a close or
  // error mid-frame reports kIo; an over-cap length or a payload that
  // fails its CRC reports kDataLoss.
  Result<std::string> RecvFrame() const;

 private:
  Status WriteAll(const char* data, std::size_t size) const;
  Status ReadAll(char* data, std::size_t size, bool* clean_eof) const;

  int fd_ = -1;
};

}  // namespace goofi
