#include "util/bitvector.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace goofi {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t WordCount(std::size_t bits) {
  return (bits + kWordBits - 1) / kWordBits;
}
}  // namespace

void BitVector::Resize(std::size_t bit_count) {
  bit_count_ = bit_count;
  words_.resize(WordCount(bit_count), 0);
  MaskTail();
}

void BitVector::Clear() {
  bit_count_ = 0;
  words_.clear();
}

void BitVector::MaskTail() {
  if (bit_count_ % kWordBits != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << (bit_count_ % kWordBits)) - 1;
  }
}

bool BitVector::Get(std::size_t bit) const {
  assert(bit < bit_count_);
  return (words_[bit / kWordBits] >> (bit % kWordBits)) & 1u;
}

void BitVector::Set(std::size_t bit, bool value) {
  assert(bit < bit_count_);
  const std::uint64_t mask = std::uint64_t{1} << (bit % kWordBits);
  if (value) {
    words_[bit / kWordBits] |= mask;
  } else {
    words_[bit / kWordBits] &= ~mask;
  }
}

void BitVector::Flip(std::size_t bit) {
  assert(bit < bit_count_);
  words_[bit / kWordBits] ^= std::uint64_t{1} << (bit % kWordBits);
}

std::uint64_t BitVector::GetField(std::size_t bit, std::size_t width) const {
  assert(width >= 1 && width <= 64);
  assert(bit + width <= bit_count_);
  const std::size_t word = bit / kWordBits;
  const std::size_t shift = bit % kWordBits;
  std::uint64_t value = words_[word] >> shift;
  if (shift + width > kWordBits) {
    value |= words_[word + 1] << (kWordBits - shift);
  }
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  return value;
}

void BitVector::SetField(std::size_t bit, std::size_t width,
                         std::uint64_t value) {
  assert(width >= 1 && width <= 64);
  assert(bit + width <= bit_count_);
  if (width < 64) value &= (std::uint64_t{1} << width) - 1;
  const std::size_t word = bit / kWordBits;
  const std::size_t shift = bit % kWordBits;
  const std::uint64_t low_mask =
      (width == 64 && shift == 0)
          ? ~std::uint64_t{0}
          : ((shift + width >= kWordBits)
                 ? ~((std::uint64_t{1} << shift) - 1)
                 : (((std::uint64_t{1} << width) - 1) << shift));
  words_[word] = (words_[word] & ~low_mask) | ((value << shift) & low_mask);
  if (shift + width > kWordBits) {
    const std::size_t high_bits = shift + width - kWordBits;
    const std::uint64_t high_mask = (std::uint64_t{1} << high_bits) - 1;
    words_[word + 1] =
        (words_[word + 1] & ~high_mask) |
        ((value >> (kWordBits - shift)) & high_mask);
  }
}

std::size_t BitVector::PopCount() const {
  std::size_t count = 0;
  for (std::uint64_t w : words_) count += std::popcount(w);
  return count;
}

std::size_t BitVector::HammingDistance(const BitVector& other) const {
  assert(bit_count_ == other.bit_count_);
  std::size_t count = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] ^ other.words_[i]);
  }
  return count;
}

void BitVector::FillZero() {
  for (auto& w : words_) w = 0;
}

void BitVector::FillOne() {
  for (auto& w : words_) w = ~std::uint64_t{0};
  MaskTail();
}

bool BitVector::ShiftRightInsertTop(bool top) {
  assert(bit_count_ > 0);
  const bool out = (words_[0] & 1u) != 0;
  for (std::size_t i = 0; i + 1 < words_.size(); ++i) {
    words_[i] = (words_[i] >> 1) | (words_[i + 1] << 63);
  }
  words_.back() >>= 1;
  if (top) {
    const std::size_t last = bit_count_ - 1;
    words_[last / kWordBits] |= std::uint64_t{1} << (last % kWordBits);
  }
  return out;
}

std::string BitVector::ToBitString() const {
  std::string out;
  out.reserve(bit_count_);
  for (std::size_t i = 0; i < bit_count_; ++i) out.push_back(Get(i) ? '1' : '0');
  return out;
}

BitVector BitVector::FromBitString(const std::string& bits) {
  BitVector v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    v.Set(i, bits[i] == '1');
  }
  return v;
}

std::string BitVector::ToHexString() const {
  std::string out = std::to_string(bit_count_);
  out.push_back(':');
  static const char* kHex = "0123456789abcdef";
  const std::size_t nibbles = (bit_count_ + 3) / 4;
  for (std::size_t n = 0; n < nibbles; ++n) {
    const std::size_t bit = n * 4;
    const std::size_t width = std::min<std::size_t>(4, bit_count_ - bit);
    out.push_back(kHex[GetField(bit, width)]);
  }
  return out;
}

bool BitVector::FromHexString(const std::string& text, BitVector* out) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) return false;
  std::size_t bit_count = 0;
  try {
    bit_count = std::stoul(text.substr(0, colon));
  } catch (const std::exception&) {
    return false;
  }
  const std::string hex = text.substr(colon + 1);
  if (hex.size() != (bit_count + 3) / 4) return false;
  BitVector v(bit_count);
  for (std::size_t n = 0; n < hex.size(); ++n) {
    const char c = hex[n];
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
    const std::size_t bit = n * 4;
    const std::size_t width = std::min<std::size_t>(4, bit_count - bit);
    if (width < 4 && (nibble >> width) != 0) return false;
    v.SetField(bit, width, nibble);
  }
  *out = std::move(v);
  return true;
}

}  // namespace goofi
