#include "util/config.h"

#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace goofi {

bool ConfigSection::Has(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return true;
  }
  return false;
}

std::optional<std::string> ConfigSection::GetString(
    const std::string& key) const {
  std::optional<std::string> found;
  for (const auto& [k, v] : entries_) {
    if (k == key) found = v;
  }
  return found;
}

std::string ConfigSection::GetStringOr(const std::string& key,
                                       std::string fallback) const {
  auto v = GetString(key);
  return v ? *v : std::move(fallback);
}

Result<std::int64_t> ConfigSection::GetInt(const std::string& key) const {
  const auto raw = GetString(key);
  if (!raw) return NotFoundError("missing key '" + key + "'");
  const auto parsed = ParseInt64(*raw);
  if (!parsed) {
    return ParseError("key '" + key + "': not an integer: '" + *raw + "'");
  }
  return *parsed;
}

std::int64_t ConfigSection::GetIntOr(const std::string& key,
                                     std::int64_t fallback) const {
  const auto v = GetInt(key);
  return v.ok() ? *v : fallback;
}

Result<double> ConfigSection::GetDouble(const std::string& key) const {
  const auto raw = GetString(key);
  if (!raw) return NotFoundError("missing key '" + key + "'");
  const auto parsed = ParseDouble(*raw);
  if (!parsed) {
    return ParseError("key '" + key + "': not a number: '" + *raw + "'");
  }
  return *parsed;
}

double ConfigSection::GetDoubleOr(const std::string& key,
                                  double fallback) const {
  const auto v = GetDouble(key);
  return v.ok() ? *v : fallback;
}

Result<bool> ConfigSection::GetBool(const std::string& key) const {
  const auto raw = GetString(key);
  if (!raw) return NotFoundError("missing key '" + key + "'");
  const std::string lower = AsciiToLower(*raw);
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") {
    return false;
  }
  return ParseError("key '" + key + "': not a boolean: '" + *raw + "'");
}

bool ConfigSection::GetBoolOr(const std::string& key, bool fallback) const {
  const auto v = GetBool(key);
  return v.ok() ? *v : fallback;
}

std::vector<std::string> ConfigSection::GetList(const std::string& key) const {
  std::vector<std::string> values;
  for (const auto& [k, v] : entries_) {
    if (k == key) values.push_back(v);
  }
  return values;
}

void ConfigSection::Set(const std::string& key, std::string value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(key, std::move(value));
}

void ConfigSection::Append(const std::string& key, std::string value) {
  entries_.emplace_back(key, std::move(value));
}

Result<Config> Config::Parse(const std::string& text) {
  Config config;
  config.sections_.emplace_back("");  // implicit top-level section
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    std::string_view view = StripAsciiWhitespace(line);
    if (view.empty() || view[0] == '#' || view[0] == ';') continue;
    if (view.front() == '[') {
      if (view.back() != ']' || view.size() < 3) {
        return ParseError(StrFormat("line %d: malformed section header",
                                    line_number));
      }
      config.sections_.emplace_back(std::string(
          StripAsciiWhitespace(view.substr(1, view.size() - 2))));
      continue;
    }
    const std::size_t eq = view.find('=');
    if (eq == std::string_view::npos) {
      return ParseError(StrFormat("line %d: expected 'key = value'",
                                  line_number));
    }
    std::string key(StripAsciiWhitespace(view.substr(0, eq)));
    std::string value(StripAsciiWhitespace(view.substr(eq + 1)));
    if (key.empty()) {
      return ParseError(StrFormat("line %d: empty key", line_number));
    }
    if (EndsWith(key, "[]")) {
      key.resize(key.size() - 2);
      key = std::string(StripAsciiWhitespace(key));
      config.sections_.back().Append(key, std::move(value));
    } else {
      config.sections_.back().Append(key, std::move(value));
    }
  }
  return config;
}

Result<Config> Config::LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return IoError("cannot open config file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

const ConfigSection* Config::FindSection(const std::string& name) const {
  for (const auto& section : sections_) {
    if (section.name() == name) return &section;
  }
  return nullptr;
}

std::vector<const ConfigSection*> Config::FindSections(
    const std::string& name) const {
  std::vector<const ConfigSection*> found;
  for (const auto& section : sections_) {
    if (section.name() == name) found.push_back(&section);
  }
  return found;
}

std::string Config::Serialize() const {
  std::string out;
  for (const auto& section : sections_) {
    if (!section.name().empty()) {
      out += "[" + section.name() + "]\n";
    } else if (section.entries().empty()) {
      continue;
    }
    for (const auto& [k, v] : section.entries()) {
      out += k + " = " + v + "\n";
    }
  }
  return out;
}

}  // namespace goofi
