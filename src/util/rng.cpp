#include "util/rng.h"

#include <cassert>

namespace goofi {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::Reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  // Xoshiro256** step.
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextU64());  // full range
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::uint64_t stream) {
  // Two dependent SplitMix64 steps so that (seed, stream) and
  // (seed', stream') collide only if the 128-bit pairs do modulo the
  // golden-ratio lattice; a single step would make (s, k) and
  // (s + gamma, k - 1) identical.
  std::uint64_t x = seed;
  const std::uint64_t mixed_seed = SplitMix64(x);
  x = mixed_seed ^ stream;
  return SplitMix64(x);
}

}  // namespace goofi
