#include "db/index.h"

namespace goofi::db {

void SecondaryIndex::Add(const Value& key, std::size_t row_index) {
  if (key.is_null()) return;
  buckets_[key.Encode()].push_back(row_index);
}

const std::vector<std::size_t>* SecondaryIndex::Find(const Value& key) const {
  if (key.is_null()) return nullptr;
  const auto it = buckets_.find(key.Encode());
  if (it == buckets_.end()) return nullptr;
  return &it->second;
}

}  // namespace goofi::db
