// Typed cell values for the embedded relational engine (DESIGN.md §2).
//
// GOOFI stores target descriptions, campaign definitions and logged
// system states in a relational database; this Value type is the cell
// currency of that engine. Supported storage classes mirror the small
// set the tool needs: NULL, INTEGER (64-bit signed), REAL, TEXT, BLOB.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "util/status.h"

namespace goofi::db {

enum class ValueType { kNull, kInteger, kReal, kText, kBlob };

const char* ValueTypeName(ValueType type);

class Value {
 public:
  Value() : data_(std::monostate{}) {}  // NULL
  Value(std::int64_t v) : data_(v) {}   // NOLINT: implicit by design
  Value(double v) : data_(v) {}         // NOLINT
  Value(std::string v) : data_(Text{std::move(v)}) {}  // NOLINT
  Value(const char* v) : data_(Text{v}) {}             // NOLINT

  static Value Null() { return Value(); }
  static Value Integer(std::int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Text_(std::string v) { return Value(std::move(v)); }
  static Value Blob(std::string bytes);

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  // Typed accessors; assert on type mismatch.
  std::int64_t AsInteger() const;
  double AsReal() const;  // also accepts INTEGER (widening)
  const std::string& AsText() const;
  const std::string& AsBlob() const;

  // Numeric truth: INTEGER/REAL != 0; everything else false.
  bool Truthy() const;

  // SQL-style three-valued comparison is handled by the caller; these
  // give a total order used by indexes and ORDER BY:
  //   NULL < numeric (INTEGER and REAL compared numerically) < TEXT < BLOB
  // Returns -1 / 0 / +1.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Human-readable form (NULL, 42, 3.5, 'text', x'ab01').
  std::string ToDisplayString() const;

  // Lossless serialization for persistence files and index keys:
  //   "n" | "i<dec>" | "r<hex-bits>" | "t<raw>" | "b<raw>"
  std::string Encode() const;
  static Result<Value> Decode(const std::string& encoded);

 private:
  struct Text { std::string data; };
  struct BlobBytes { std::string data; };
  std::variant<std::monostate, std::int64_t, double, Text, BlobBytes> data_;
};

}  // namespace goofi::db
