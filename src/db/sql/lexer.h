// SQL tokenizer. Keywords are case-insensitive; identifiers keep case.
#pragma once

#include <string>
#include <vector>

#include "db/value.h"
#include "util/status.h"

namespace goofi::db::sql {

enum class TokenType {
  kIdentifier,  // bare word (possibly a keyword; parser decides)
  kInteger,
  kReal,
  kString,      // 'text' with '' escape
  kBlob,        // x'hex'
  kSymbol,      // ( ) , * = != <> < <= > >= ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       // identifier/symbol spelling, or literal body
  std::int64_t integer = 0;
  double real = 0.0;
  std::size_t offset = 0;  // byte offset in the input, for error messages

  bool IsSymbol(const char* symbol) const {
    return type == TokenType::kSymbol && text == symbol;
  }
  // Case-insensitive keyword check on an identifier token.
  bool IsKeyword(const char* keyword) const;
};

Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace goofi::db::sql
