#include "db/sql/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace goofi::db::sql {

bool Token::IsKeyword(const char* keyword) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, keyword);
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();
  auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < n ? input[i + ahead] : '\0';
  };
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && peek(1) == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    // Blob literal x'68656a'
    if ((c == 'x' || c == 'X') && peek(1) == '\'') {
      i += 2;
      std::string hex;
      while (i < n && input[i] != '\'') hex.push_back(input[i++]);
      if (i == n) return ParseError("unterminated blob literal");
      ++i;  // closing quote
      const auto bytes = HexDecode(hex);
      if (!bytes) return ParseError("bad hex in blob literal: '" + hex + "'");
      token.type = TokenType::kBlob;
      token.text = *bytes;
      tokens.push_back(std::move(token));
      continue;
    }
    // String literal with '' escape
    if (c == '\'') {
      ++i;
      std::string body;
      while (i < n) {
        if (input[i] == '\'') {
          if (peek(1) == '\'') {
            body.push_back('\'');
            i += 2;
            continue;
          }
          break;
        }
        body.push_back(input[i++]);
      }
      if (i == n) return ParseError("unterminated string literal");
      ++i;  // closing quote
      token.type = TokenType::kString;
      token.text = std::move(body);
      tokens.push_back(std::move(token));
      continue;
    }
    // Numbers (optionally negative handled by parser via unary minus
    // symbol; here we lex digits, '.', exponent, and 0x hex).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t start = i;
      bool is_real = false;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        i += 2;
        while (i < n && std::isxdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      } else {
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
        if (i < n && input[i] == '.') {
          is_real = true;
          ++i;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        }
        if (i < n && (input[i] == 'e' || input[i] == 'E')) {
          is_real = true;
          ++i;
          if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        }
      }
      const std::string spelled = input.substr(start, i - start);
      if (is_real) {
        const auto value = ParseDouble(spelled);
        if (!value) return ParseError("bad numeric literal '" + spelled + "'");
        token.type = TokenType::kReal;
        token.real = *value;
      } else {
        const auto value = ParseInt64(spelled);
        if (!value) return ParseError("bad integer literal '" + spelled + "'");
        token.type = TokenType::kInteger;
        token.integer = *value;
      }
      token.text = spelled;
      tokens.push_back(std::move(token));
      continue;
    }
    // Identifiers / keywords
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      token.type = TokenType::kIdentifier;
      token.text = input.substr(start, i - start);
      tokens.push_back(std::move(token));
      continue;
    }
    // Multi-char symbols first.
    auto symbol2 = [&](const char* s) {
      if (peek(0) == s[0] && peek(1) == s[1]) {
        token.type = TokenType::kSymbol;
        token.text = s;
        i += 2;
        tokens.push_back(token);
        return true;
      }
      return false;
    };
    if (symbol2("!=") || symbol2("<>") || symbol2("<=") || symbol2(">=")) {
      continue;
    }
    switch (c) {
      case '(': case ')': case ',': case '*': case '=': case '<':
      case '>': case ';': case '-': case '.':
        token.type = TokenType::kSymbol;
        token.text = std::string(1, c);
        ++i;
        tokens.push_back(std::move(token));
        continue;
      default:
        return ParseError(StrFormat("unexpected character '%c' at offset %zu",
                                    c, i));
    }
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace goofi::db::sql
