// Statement execution against a Database.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/sql/ast.h"
#include "util/status.h"

namespace goofi::db::sql {

struct QueryResult {
  std::vector<std::string> columns;  // output column names (SELECT only)
  std::vector<Row> rows;             // result rows (SELECT only)
  std::size_t affected_rows = 0;     // INSERT/UPDATE/DELETE row count

  // Render as an aligned ASCII table (used by the analysis CLI and
  // examples; the paper's analysis phase is "scripts that query the
  // database").
  std::string ToAsciiTable() const;
};

Result<QueryResult> ExecuteStatement(Database& database,
                                     const Statement& statement);

// Parse + execute one statement.
Result<QueryResult> ExecuteSql(Database& database, const std::string& sql);

// Parse + execute a script; returns the last statement's result.
Result<QueryResult> ExecuteScript(Database& database, const std::string& sql);

// SELECT consults hash indexes (UNIQUE and INDEXED columns) for equality
// predicates at the WHERE root or under a top-level AND; results are
// row-for-row identical to a full scan. The toggle and counter exist so
// tests and benchmarks can prove both properties.
void SetIndexScanEnabled(bool enabled);
bool IndexScanEnabled();
std::uint64_t IndexScanCount();  // SELECTs answered via an index so far
void ResetIndexScanCount();

}  // namespace goofi::db::sql
