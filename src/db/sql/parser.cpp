#include "db/sql/parser.h"

#include "db/sql/lexer.h"
#include "util/strings.h"

namespace goofi::db::sql {

std::string SelectItem::OutputName() const {
  if (star) return "*";
  switch (aggregate) {
    case Aggregate::kNone: return column;
    case Aggregate::kCount:
      return count_star ? "COUNT(*)" : "COUNT(" + column + ")";
    case Aggregate::kSum: return "SUM(" + column + ")";
    case Aggregate::kMin: return "MIN(" + column + ")";
    case Aggregate::kMax: return "MAX(" + column + ")";
    case Aggregate::kAvg: return "AVG(" + column + ")";
  }
  return column;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOne() {
    ASSIGN_OR_RETURN(Statement statement, ParseStatementInner());
    ConsumeSymbol(";");
    if (!At(TokenType::kEnd)) {
      return ParseError("trailing input after statement near '" +
                        Current().text + "'");
    }
    return statement;
  }

  Result<std::vector<Statement>> ParseAll() {
    std::vector<Statement> statements;
    while (!At(TokenType::kEnd)) {
      ASSIGN_OR_RETURN(Statement statement, ParseStatementInner());
      statements.push_back(std::move(statement));
      if (!ConsumeSymbol(";") && !At(TokenType::kEnd)) {
        return ParseError("expected ';' between statements near '" +
                          Current().text + "'");
      }
      while (ConsumeSymbol(";")) {
      }
    }
    return statements;
  }

 private:
  const Token& Current() const { return tokens_[position_]; }
  bool At(TokenType type) const { return Current().type == type; }
  void Advance() {
    if (position_ + 1 < tokens_.size()) ++position_;
  }

  bool ConsumeKeyword(const char* keyword) {
    if (Current().IsKeyword(keyword)) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeSymbol(const char* symbol) {
    if (Current().IsSymbol(symbol)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* keyword) {
    if (!ConsumeKeyword(keyword)) {
      return ParseError(StrFormat("expected %s near '%s'", keyword,
                                  Current().text.c_str()));
    }
    return Status::Ok();
  }

  Status ExpectSymbol(const char* symbol) {
    if (!ConsumeSymbol(symbol)) {
      return ParseError(StrFormat("expected '%s' near '%s'", symbol,
                                  Current().text.c_str()));
    }
    return Status::Ok();
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!At(TokenType::kIdentifier)) {
      return ParseError(StrFormat("expected %s near '%s'", what,
                                  Current().text.c_str()));
    }
    std::string name = Current().text;
    Advance();
    return name;
  }

  Result<Value> ExpectLiteral() {
    const Token& token = Current();
    switch (token.type) {
      case TokenType::kInteger: {
        Value v = Value::Integer(token.integer);
        Advance();
        return v;
      }
      case TokenType::kReal: {
        Value v = Value::Real(token.real);
        Advance();
        return v;
      }
      case TokenType::kString: {
        Value v = Value::Text_(token.text);
        Advance();
        return v;
      }
      case TokenType::kBlob: {
        Value v = Value::Blob(token.text);
        Advance();
        return v;
      }
      case TokenType::kSymbol:
        if (token.text == "-") {
          Advance();
          if (At(TokenType::kInteger)) {
            Value v = Value::Integer(-Current().integer);
            Advance();
            return v;
          }
          if (At(TokenType::kReal)) {
            Value v = Value::Real(-Current().real);
            Advance();
            return v;
          }
          return ParseError("expected number after unary '-'");
        }
        break;
      case TokenType::kIdentifier:
        if (ConsumeKeyword("NULL")) return Value::Null();
        break;
      default:
        break;
    }
    return ParseError("expected literal near '" + token.text + "'");
  }

  Result<Statement> ParseStatementInner() {
    if (ConsumeKeyword("SELECT")) return ParseSelect();
    if (ConsumeKeyword("INSERT")) return ParseInsert();
    if (ConsumeKeyword("UPDATE")) return ParseUpdate();
    if (ConsumeKeyword("DELETE")) return ParseDelete();
    if (ConsumeKeyword("CREATE")) return ParseCreate();
    if (ConsumeKeyword("DROP")) return ParseDrop();
    return ParseError("expected a statement near '" + Current().text + "'");
  }

  Result<Statement> ParseSelect() {
    SelectStatement select;
    while (true) {
      SelectItem item;
      if (ConsumeSymbol("*")) {
        item.star = true;
      } else if (At(TokenType::kIdentifier)) {
        const std::string word = Current().text;
        Aggregate aggregate = Aggregate::kNone;
        if (EqualsIgnoreCase(word, "COUNT")) aggregate = Aggregate::kCount;
        else if (EqualsIgnoreCase(word, "SUM")) aggregate = Aggregate::kSum;
        else if (EqualsIgnoreCase(word, "MIN")) aggregate = Aggregate::kMin;
        else if (EqualsIgnoreCase(word, "MAX")) aggregate = Aggregate::kMax;
        else if (EqualsIgnoreCase(word, "AVG")) aggregate = Aggregate::kAvg;
        if (aggregate != Aggregate::kNone &&
            tokens_[position_ + 1].IsSymbol("(")) {
          Advance();  // function name
          Advance();  // '('
          item.aggregate = aggregate;
          if (aggregate == Aggregate::kCount && ConsumeSymbol("*")) {
            item.count_star = true;
          } else {
            ASSIGN_OR_RETURN(item.column, ExpectIdentifier("column name"));
          }
          RETURN_IF_ERROR(ExpectSymbol(")"));
        } else {
          ASSIGN_OR_RETURN(item.column, ExpectIdentifier("column name"));
        }
      } else {
        return ParseError("expected select item near '" + Current().text +
                          "'");
      }
      select.items.push_back(std::move(item));
      if (!ConsumeSymbol(",")) break;
    }
    RETURN_IF_ERROR(ExpectKeyword("FROM"));
    ASSIGN_OR_RETURN(select.table, ExpectIdentifier("table name"));
    ASSIGN_OR_RETURN(select.where, ParseOptionalWhere());
    if (ConsumeKeyword("GROUP")) {
      RETURN_IF_ERROR(ExpectKeyword("BY"));
      ASSIGN_OR_RETURN(std::string group_col,
                       ExpectIdentifier("GROUP BY column"));
      select.group_by = std::move(group_col);
    }
    if (ConsumeKeyword("ORDER")) {
      RETURN_IF_ERROR(ExpectKeyword("BY"));
      OrderBy order;
      ASSIGN_OR_RETURN(order.column, ExpectIdentifier("ORDER BY column"));
      if (ConsumeKeyword("DESC")) {
        order.descending = true;
      } else {
        ConsumeKeyword("ASC");
      }
      select.order_by = std::move(order);
    }
    if (ConsumeKeyword("LIMIT")) {
      if (!At(TokenType::kInteger) || Current().integer < 0) {
        return ParseError("expected non-negative integer after LIMIT");
      }
      select.limit = static_cast<std::size_t>(Current().integer);
      Advance();
    }
    return Statement(std::move(select));
  }

  Result<Statement> ParseInsert() {
    RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement insert;
    ASSIGN_OR_RETURN(insert.table, ExpectIdentifier("table name"));
    if (ConsumeSymbol("(")) {
      while (true) {
        ASSIGN_OR_RETURN(std::string column,
                         ExpectIdentifier("column name"));
        insert.columns.push_back(std::move(column));
        if (!ConsumeSymbol(",")) break;
      }
      RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Value> row;
      while (true) {
        ASSIGN_OR_RETURN(Value value, ExpectLiteral());
        row.push_back(std::move(value));
        if (!ConsumeSymbol(",")) break;
      }
      RETURN_IF_ERROR(ExpectSymbol(")"));
      insert.rows.push_back(std::move(row));
      if (!ConsumeSymbol(",")) break;
    }
    return Statement(std::move(insert));
  }

  Result<Statement> ParseUpdate() {
    UpdateStatement update;
    ASSIGN_OR_RETURN(update.table, ExpectIdentifier("table name"));
    RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      ASSIGN_OR_RETURN(std::string column, ExpectIdentifier("column name"));
      RETURN_IF_ERROR(ExpectSymbol("="));
      ASSIGN_OR_RETURN(Value value, ExpectLiteral());
      update.assignments.emplace_back(std::move(column), std::move(value));
      if (!ConsumeSymbol(",")) break;
    }
    ASSIGN_OR_RETURN(update.where, ParseOptionalWhere());
    return Statement(std::move(update));
  }

  Result<Statement> ParseDelete() {
    RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStatement del;
    ASSIGN_OR_RETURN(del.table, ExpectIdentifier("table name"));
    ASSIGN_OR_RETURN(del.where, ParseOptionalWhere());
    return Statement(std::move(del));
  }

  Result<Statement> ParseCreate() {
    RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("table name"));
    TableSchema schema(name);
    RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      if (Current().IsKeyword("FOREIGN")) {
        Advance();
        RETURN_IF_ERROR(ExpectKeyword("KEY"));
        RETURN_IF_ERROR(ExpectSymbol("("));
        ASSIGN_OR_RETURN(std::string fk_column,
                         ExpectIdentifier("column name"));
        RETURN_IF_ERROR(ExpectSymbol(")"));
        RETURN_IF_ERROR(ExpectKeyword("REFERENCES"));
        ASSIGN_OR_RETURN(std::string ref_table,
                         ExpectIdentifier("table name"));
        RETURN_IF_ERROR(ExpectSymbol("("));
        ASSIGN_OR_RETURN(std::string ref_column,
                         ExpectIdentifier("column name"));
        RETURN_IF_ERROR(ExpectSymbol(")"));
        RETURN_IF_ERROR(schema.AddForeignKey(
            {std::move(fk_column), std::move(ref_table),
             std::move(ref_column)}));
      } else {
        Column column;
        ASSIGN_OR_RETURN(column.name, ExpectIdentifier("column name"));
        ASSIGN_OR_RETURN(std::string type_name,
                         ExpectIdentifier("column type"));
        const auto type = ColumnTypeFromName(type_name);
        if (!type) return ParseError("unknown column type '" + type_name + "'");
        column.type = *type;
        while (true) {
          if (ConsumeKeyword("PRIMARY")) {
            RETURN_IF_ERROR(ExpectKeyword("KEY"));
            column.primary_key = true;
          } else if (ConsumeKeyword("UNIQUE")) {
            column.unique = true;
          } else if (ConsumeKeyword("NOT")) {
            RETURN_IF_ERROR(ExpectKeyword("NULL"));
            column.not_null = true;
          } else if (ConsumeKeyword("INDEXED")) {
            column.indexed = true;
          } else {
            break;
          }
        }
        RETURN_IF_ERROR(schema.AddColumn(std::move(column)));
      }
      if (!ConsumeSymbol(",")) break;
    }
    RETURN_IF_ERROR(ExpectSymbol(")"));
    CreateTableStatement create;
    create.schema = std::move(schema);
    return Statement(std::move(create));
  }

  Result<Statement> ParseDrop() {
    RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    DropTableStatement drop;
    ASSIGN_OR_RETURN(drop.table, ExpectIdentifier("table name"));
    return Statement(std::move(drop));
  }

  Result<WhereClause> ParseOptionalWhere() {
    WhereClause where;
    if (!ConsumeKeyword("WHERE")) return where;
    ASSIGN_OR_RETURN(Condition root, ParseOrExpression());
    where.root = std::move(root);
    return where;
  }

  // expr := term (OR term)*
  Result<Condition> ParseOrExpression() {
    ASSIGN_OR_RETURN(Condition first, ParseAndExpression());
    if (!Current().IsKeyword("OR")) return first;
    Condition node;
    node.kind = Condition::Kind::kOr;
    node.children.push_back(std::move(first));
    while (ConsumeKeyword("OR")) {
      ASSIGN_OR_RETURN(Condition next, ParseAndExpression());
      node.children.push_back(std::move(next));
    }
    return node;
  }

  // term := factor (AND factor)*
  Result<Condition> ParseAndExpression() {
    ASSIGN_OR_RETURN(Condition first, ParseFactor());
    if (!Current().IsKeyword("AND")) return first;
    Condition node;
    node.kind = Condition::Kind::kAnd;
    node.children.push_back(std::move(first));
    while (ConsumeKeyword("AND")) {
      ASSIGN_OR_RETURN(Condition next, ParseFactor());
      node.children.push_back(std::move(next));
    }
    return node;
  }

  // factor := NOT factor | '(' expr ')' | predicate
  Result<Condition> ParseFactor() {
    if (ConsumeKeyword("NOT")) {
      ASSIGN_OR_RETURN(Condition inner, ParseFactor());
      Condition node;
      node.kind = Condition::Kind::kNot;
      node.children.push_back(std::move(inner));
      return node;
    }
    if (ConsumeSymbol("(")) {
      ASSIGN_OR_RETURN(Condition inner, ParseOrExpression());
      RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    return ParsePredicate();
  }

  Result<Condition> ParsePredicate() {
    Condition condition;
    ASSIGN_OR_RETURN(condition.column, ExpectIdentifier("column name"));
    if (ConsumeKeyword("IS")) {
      if (ConsumeKeyword("NOT")) {
        RETURN_IF_ERROR(ExpectKeyword("NULL"));
        condition.op = CompareOp::kIsNotNull;
      } else {
        RETURN_IF_ERROR(ExpectKeyword("NULL"));
        condition.op = CompareOp::kIsNull;
      }
      return condition;
    }
    condition.negated = ConsumeKeyword("NOT");
    if (ConsumeKeyword("LIKE")) {
      condition.op = CompareOp::kLike;
      ASSIGN_OR_RETURN(condition.rhs, ExpectLiteral());
      if (condition.rhs.type() != ValueType::kText) {
        return ParseError("LIKE pattern must be a string");
      }
      return condition;
    }
    if (ConsumeKeyword("IN")) {
      condition.op = CompareOp::kIn;
      RETURN_IF_ERROR(ExpectSymbol("("));
      while (true) {
        ASSIGN_OR_RETURN(Value value, ExpectLiteral());
        condition.set.push_back(std::move(value));
        if (!ConsumeSymbol(",")) break;
      }
      RETURN_IF_ERROR(ExpectSymbol(")"));
      return condition;
    }
    if (ConsumeKeyword("BETWEEN")) {
      condition.op = CompareOp::kBetween;
      ASSIGN_OR_RETURN(condition.rhs, ExpectLiteral());
      RETURN_IF_ERROR(ExpectKeyword("AND"));
      ASSIGN_OR_RETURN(condition.rhs2, ExpectLiteral());
      return condition;
    }
    if (condition.negated) {
      return ParseError("expected LIKE, IN or BETWEEN after NOT");
    }
    if (ConsumeSymbol("=")) condition.op = CompareOp::kEq;
    else if (ConsumeSymbol("!=") || ConsumeSymbol("<>"))
      condition.op = CompareOp::kNe;
    else if (ConsumeSymbol("<=")) condition.op = CompareOp::kLe;
    else if (ConsumeSymbol(">=")) condition.op = CompareOp::kGe;
    else if (ConsumeSymbol("<")) condition.op = CompareOp::kLt;
    else if (ConsumeSymbol(">")) condition.op = CompareOp::kGt;
    else {
      return ParseError("expected comparison operator near '" +
                        Current().text + "'");
    }
    ASSIGN_OR_RETURN(condition.rhs, ExpectLiteral());
    return condition;
  }

  std::vector<Token> tokens_;
  std::size_t position_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseOne();
}

Result<std::vector<Statement>> ParseScript(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseAll();
}

}  // namespace goofi::db::sql
