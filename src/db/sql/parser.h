// Recursive-descent parser for the SQL subset (see ast.h).
#pragma once

#include <string>

#include "db/sql/ast.h"
#include "util/status.h"

namespace goofi::db::sql {

// Parse a single statement (a trailing ';' is allowed).
Result<Statement> ParseStatement(const std::string& sql);

// Parse a ';'-separated script into statements.
Result<std::vector<Statement>> ParseScript(const std::string& sql);

}  // namespace goofi::db::sql
