// AST for the SQL subset GOOFI++ supports (DESIGN.md §2, "db"):
//
//   CREATE TABLE t (col TYPE [PRIMARY KEY|UNIQUE] [NOT NULL], ...,
//                   FOREIGN KEY (col) REFERENCES t2(col2), ...)
//   DROP TABLE t
//   INSERT INTO t [(cols)] VALUES (v, ...) [, (v, ...)]*
//   SELECT */cols/aggregates FROM t [WHERE expr] [GROUP BY col]
//        [ORDER BY col [ASC|DESC]] [LIMIT n]
//   UPDATE t SET col = v, ... [WHERE expr]
//   DELETE FROM t [WHERE expr]
//
// WHERE supports full boolean expressions with SQL's three-valued
// logic:
//   expr := term (OR term)*          term := factor (AND factor)*
//   factor := NOT factor | '(' expr ')' | predicate
//   predicate := col cmp literal | col IS [NOT] NULL
//              | col [NOT] LIKE 'pattern'
//              | col [NOT] IN (literal, ...)
//              | col [NOT] BETWEEN literal AND literal
// — the query shapes the paper's analysis phase needs ("tailor made
// scripts or programs that query the database").
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "db/schema.h"
#include "db/value.h"

namespace goofi::db::sql {

enum class CompareOp {
  kEq, kNe, kLt, kLe, kGt, kGe, kLike, kIsNull, kIsNotNull, kIn, kBetween,
};

// A boolean expression tree. kCompare nodes are leaves; kAnd/kOr hold
// two-or-more children, kNot exactly one. (std::vector of the enclosing
// type keeps the tree value-semantic.)
struct Condition {
  enum class Kind { kCompare, kAnd, kOr, kNot };
  Kind kind = Kind::kCompare;

  // kCompare fields:
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value rhs;               // comparison / LIKE / BETWEEN lower bound
  Value rhs2;              // BETWEEN upper bound
  std::vector<Value> set;  // IN list
  bool negated = false;    // NOT LIKE / NOT IN / NOT BETWEEN

  // kAnd / kOr / kNot:
  std::vector<Condition> children;
};

// Empty root = match everything.
struct WhereClause {
  std::optional<Condition> root;
};

enum class Aggregate { kNone, kCount, kSum, kMin, kMax, kAvg };

struct SelectItem {
  bool star = false;            // SELECT *
  Aggregate aggregate = Aggregate::kNone;
  bool count_star = false;      // COUNT(*)
  std::string column;           // plain column, or aggregate argument
  std::string OutputName() const;
};

struct OrderBy {
  std::string column;  // resolved against output columns, then the table
  bool descending = false;
};

struct SelectStatement {
  std::vector<SelectItem> items;
  std::string table;
  WhereClause where;
  std::optional<std::string> group_by;
  std::optional<OrderBy> order_by;
  std::optional<std::size_t> limit;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;  // empty = schema order
  std::vector<std::vector<Value>> rows;
};

struct UpdateStatement {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  WhereClause where;
};

struct DeleteStatement {
  std::string table;
  WhereClause where;
};

struct CreateTableStatement {
  TableSchema schema;
};

struct DropTableStatement {
  std::string table;
};

using Statement = std::variant<SelectStatement, InsertStatement,
                               UpdateStatement, DeleteStatement,
                               CreateTableStatement, DropTableStatement>;

}  // namespace goofi::db::sql
