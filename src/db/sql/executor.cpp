#include "db/sql/executor.h"

#include <algorithm>
#include <map>
#include <memory>

#include "db/sql/parser.h"
#include "util/strings.h"

namespace goofi::db::sql {

namespace {

bool g_index_scan_enabled = true;
std::uint64_t g_index_scan_count = 0;

// Gather equality leaves usable for an index probe: non-negated kEq
// against a non-NULL literal, at the WHERE root or anywhere under a
// conjunction (rows outside such a leaf's bucket make the AND false or
// unknown, so probing the bucket is a sound superset of the answer).
void CollectEqLeaves(const Condition& node,
                     std::vector<const Condition*>& leaves) {
  if (node.kind == Condition::Kind::kCompare) {
    if (node.op == CompareOp::kEq && !node.negated && !node.rhs.is_null()) {
      leaves.push_back(&node);
    }
    return;
  }
  if (node.kind == Condition::Kind::kAnd) {
    for (const Condition& child : node.children) {
      CollectEqLeaves(child, leaves);
    }
  }
  // kOr / kNot: an eq leaf below these does not bound the result set.
}

// Candidate row indices (ascending) for the WHERE clause via the best
// available index, or nullopt for a full scan. The caller still applies
// the full predicate to every candidate.
std::optional<std::vector<std::size_t>> IndexCandidates(
    const Table& table, const WhereClause& where) {
  if (!g_index_scan_enabled || !where.root) return std::nullopt;
  std::vector<const Condition*> leaves;
  CollectEqLeaves(*where.root, leaves);
  const TableSchema& schema = table.schema();
  std::optional<std::vector<std::size_t>> best;
  for (const Condition* leaf : leaves) {
    const auto column = schema.FindColumn(leaf->column);
    if (!column) continue;  // binding reports the error later
    std::vector<std::size_t> candidates;
    if (schema.columns()[*column].unique) {
      const auto row = table.FindByUnique(*column, leaf->rhs);
      if (row) candidates.push_back(*row);
    } else if (table.HasSecondaryIndex(*column)) {
      const auto* bucket = table.FindBySecondary(*column, leaf->rhs);
      if (bucket != nullptr) candidates = *bucket;
    } else {
      continue;
    }
    if (!best || candidates.size() < best->size()) {
      best = std::move(candidates);
    }
  }
  if (best) ++g_index_scan_count;
  return best;
}

// SQL three-valued logic: TRUE / FALSE / UNKNOWN (nullopt). A row
// matches the WHERE clause iff its value is TRUE.
using Truth = std::optional<bool>;

// Leaf predicate against the row's cell value.
Truth EvaluatePredicate(const Condition& condition, const Value& lhs) {
  Truth verdict;
  switch (condition.op) {
    case CompareOp::kIsNull:
      return lhs.is_null();
    case CompareOp::kIsNotNull:
      return !lhs.is_null();
    case CompareOp::kLike:
      if (lhs.is_null()) {
        verdict = std::nullopt;
      } else if (lhs.type() != ValueType::kText) {
        verdict = false;
      } else {
        verdict = LikeMatch(condition.rhs.AsText(), lhs.AsText());
      }
      break;
    case CompareOp::kIn: {
      if (lhs.is_null()) {
        verdict = std::nullopt;
        break;
      }
      bool found = false;
      bool saw_null = false;
      for (const Value& candidate : condition.set) {
        if (candidate.is_null()) {
          saw_null = true;
        } else if (lhs == candidate) {
          found = true;
          break;
        }
      }
      // SQL: x IN (..., NULL) is UNKNOWN when no non-null element
      // matches.
      if (found) {
        verdict = true;
      } else if (saw_null) {
        verdict = std::nullopt;
      } else {
        verdict = false;
      }
      break;
    }
    case CompareOp::kBetween:
      if (lhs.is_null() || condition.rhs.is_null() ||
          condition.rhs2.is_null()) {
        verdict = std::nullopt;
      } else {
        verdict = lhs.Compare(condition.rhs) >= 0 &&
                  lhs.Compare(condition.rhs2) <= 0;
      }
      break;
    default: {
      if (lhs.is_null() || condition.rhs.is_null()) {
        verdict = std::nullopt;
        break;
      }
      const int c = lhs.Compare(condition.rhs);
      switch (condition.op) {
        case CompareOp::kEq: verdict = c == 0; break;
        case CompareOp::kNe: verdict = c != 0; break;
        case CompareOp::kLt: verdict = c < 0; break;
        case CompareOp::kLe: verdict = c <= 0; break;
        case CompareOp::kGt: verdict = c > 0; break;
        case CompareOp::kGe: verdict = c >= 0; break;
        default: verdict = false; break;
      }
      break;
    }
  }
  if (condition.negated && verdict.has_value()) verdict = !*verdict;
  return verdict;
}

// Bound expression tree (column names resolved to indices).
struct BoundCondition {
  const Condition* node = nullptr;
  std::size_t column = 0;  // leaves only
  std::vector<BoundCondition> children;
};

Result<BoundCondition> BindCondition(const TableSchema& schema,
                                     const Condition& condition) {
  BoundCondition bound;
  bound.node = &condition;
  if (condition.kind == Condition::Kind::kCompare) {
    const auto index = schema.FindColumn(condition.column);
    if (!index) {
      return InvalidArgumentError("no column '" + condition.column +
                                  "' in table '" + schema.table_name() +
                                  "'");
    }
    bound.column = *index;
    return bound;
  }
  for (const Condition& child : condition.children) {
    ASSIGN_OR_RETURN(BoundCondition bound_child,
                     BindCondition(schema, child));
    bound.children.push_back(std::move(bound_child));
  }
  return bound;
}

Truth EvaluateTree(const BoundCondition& bound, const Row& row) {
  const Condition& node = *bound.node;
  switch (node.kind) {
    case Condition::Kind::kCompare:
      return EvaluatePredicate(node, row[bound.column]);
    case Condition::Kind::kNot: {
      const Truth inner = EvaluateTree(bound.children[0], row);
      if (!inner.has_value()) return std::nullopt;  // NOT UNKNOWN
      return !*inner;
    }
    case Condition::Kind::kAnd: {
      // Kleene AND: FALSE dominates, else UNKNOWN taints.
      bool unknown = false;
      for (const BoundCondition& child : bound.children) {
        const Truth value = EvaluateTree(child, row);
        if (value.has_value() && !*value) return false;
        if (!value.has_value()) unknown = true;
      }
      if (unknown) return std::nullopt;
      return true;
    }
    case Condition::Kind::kOr: {
      // Kleene OR: TRUE dominates, else UNKNOWN taints.
      bool unknown = false;
      for (const BoundCondition& child : bound.children) {
        const Truth value = EvaluateTree(child, row);
        if (value.has_value() && *value) return true;
        if (!value.has_value()) unknown = true;
      }
      if (unknown) return std::nullopt;
      return false;
    }
  }
  return false;
}

// Bind WHERE columns to indices and build a row predicate.
Result<std::function<bool(const Row&)>> BindWhere(const TableSchema& schema,
                                                  const WhereClause& where) {
  if (!where.root) {
    return std::function<bool(const Row&)>([](const Row&) { return true; });
  }
  // The bound tree points into the statement's Condition nodes; copy the
  // root into a shared owner so the predicate is self-contained.
  auto owner = std::make_shared<Condition>(*where.root);
  ASSIGN_OR_RETURN(BoundCondition bound, BindCondition(schema, *owner));
  return std::function<bool(const Row&)>(
      [owner, bound = std::move(bound)](const Row& row) {
        const Truth verdict = EvaluateTree(bound, row);
        return verdict.has_value() && *verdict;
      });
}

struct AggregateState {
  std::size_t count = 0;        // non-null inputs (or all rows for COUNT(*))
  double sum = 0.0;
  bool sum_is_integral = true;
  std::int64_t isum = 0;
  Value min, max;
  bool has_minmax = false;

  void Accumulate(const Value& v, bool star) {
    if (star) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    ++count;
    if (v.type() == ValueType::kInteger) {
      isum += v.AsInteger();
      sum += static_cast<double>(v.AsInteger());
    } else if (v.type() == ValueType::kReal) {
      sum_is_integral = false;
      sum += v.AsReal();
    } else {
      sum_is_integral = false;  // SUM over text is meaningless; AVG too
    }
    if (!has_minmax) {
      min = v;
      max = v;
      has_minmax = true;
    } else {
      if (v.Compare(min) < 0) min = v;
      if (v.Compare(max) > 0) max = v;
    }
  }

  Value Finish(Aggregate aggregate) const {
    switch (aggregate) {
      case Aggregate::kCount:
        return Value::Integer(static_cast<std::int64_t>(count));
      case Aggregate::kSum:
        if (count == 0) return Value::Null();
        return sum_is_integral ? Value::Integer(isum) : Value::Real(sum);
      case Aggregate::kAvg:
        if (count == 0) return Value::Null();
        return Value::Real(sum / static_cast<double>(count));
      case Aggregate::kMin:
        return has_minmax ? min : Value::Null();
      case Aggregate::kMax:
        return has_minmax ? max : Value::Null();
      case Aggregate::kNone:
        break;
    }
    return Value::Null();
  }
};

Result<QueryResult> ExecuteSelect(Database& database,
                                  const SelectStatement& select) {
  const Table* table = database.FindTable(select.table);
  if (table == nullptr) {
    return NotFoundError("no table '" + select.table + "'");
  }
  const TableSchema& schema = table->schema();
  ASSIGN_OR_RETURN(auto predicate, BindWhere(schema, select.where));

  // Ascending candidate indices from an index probe (or nullopt = scan).
  // Ascending order means index-assisted results keep table row order,
  // identical to the scan they replace.
  const std::optional<std::vector<std::size_t>> candidates =
      IndexCandidates(*table, select.where);
  const auto for_each_matching = [&](const auto& fn) {
    if (candidates) {
      for (const std::size_t i : *candidates) {
        if (predicate(table->row(i))) fn(table->row(i));
      }
    } else {
      for (const Row& row : table->rows()) {
        if (predicate(row)) fn(row);
      }
    }
  };

  const bool has_aggregate =
      std::any_of(select.items.begin(), select.items.end(),
                  [](const SelectItem& item) {
                    return item.aggregate != Aggregate::kNone;
                  });

  QueryResult result;

  if (!has_aggregate && !select.group_by) {
    // Plain projection.
    std::vector<std::size_t> projection;  // npos = expand '*'
    for (const SelectItem& item : select.items) {
      if (item.star) {
        for (const Column& column : schema.columns()) {
          result.columns.push_back(column.name);
        }
        for (std::size_t i = 0; i < schema.column_count(); ++i) {
          projection.push_back(i);
        }
      } else {
        const auto index = schema.FindColumn(item.column);
        if (!index) {
          return InvalidArgumentError("no column '" + item.column +
                                      "' in table '" + select.table + "'");
        }
        result.columns.push_back(item.column);
        projection.push_back(*index);
      }
    }
    for_each_matching([&](const Row& row) {
      Row out;
      out.reserve(projection.size());
      for (const std::size_t index : projection) out.push_back(row[index]);
      result.rows.push_back(std::move(out));
    });
    // ORDER BY an output column first, falling back to any table column
    // (carried alongside during the sort via index pairing).
    if (select.order_by) {
      const std::string& by = select.order_by->column;
      const auto out_pos =
          std::find(result.columns.begin(), result.columns.end(), by);
      if (out_pos != result.columns.end()) {
        const std::size_t key =
            static_cast<std::size_t>(out_pos - result.columns.begin());
        std::stable_sort(result.rows.begin(), result.rows.end(),
                         [&](const Row& a, const Row& b) {
                           const int c = a[key].Compare(b[key]);
                           return select.order_by->descending ? c > 0 : c < 0;
                         });
      } else {
        const auto table_col = schema.FindColumn(by);
        if (!table_col) {
          return InvalidArgumentError("ORDER BY references unknown column '" +
                                      by + "'");
        }
        // Re-run the selection carrying the key column — over the same
        // candidates, so keys pair with the rows selected above.
        std::vector<std::pair<Value, Row>> keyed;
        std::size_t out_index = 0;
        for_each_matching([&](const Row& row) {
          keyed.emplace_back(row[*table_col],
                             std::move(result.rows[out_index++]));
        });
        std::stable_sort(keyed.begin(), keyed.end(),
                         [&](const auto& a, const auto& b) {
                           const int c = a.first.Compare(b.first);
                           return select.order_by->descending ? c > 0 : c < 0;
                         });
        result.rows.clear();
        for (auto& [key, row] : keyed) result.rows.push_back(std::move(row));
      }
    }
    if (select.limit && result.rows.size() > *select.limit) {
      result.rows.resize(*select.limit);
    }
    return result;
  }

  // Aggregate path (with optional GROUP BY on one column).
  std::optional<std::size_t> group_col;
  if (select.group_by) {
    group_col = schema.FindColumn(*select.group_by);
    if (!group_col) {
      return InvalidArgumentError("GROUP BY references unknown column '" +
                                  *select.group_by + "'");
    }
  }
  // Validate items: non-aggregate items must be the grouped column.
  struct BoundItem {
    SelectItem item;
    std::size_t column = 0;  // for aggregates over a column / plain item
  };
  std::vector<BoundItem> bound_items;
  for (const SelectItem& item : select.items) {
    if (item.star) {
      return InvalidArgumentError("SELECT * cannot be mixed with aggregates");
    }
    BoundItem bi;
    bi.item = item;
    if (item.aggregate == Aggregate::kNone) {
      if (!group_col || item.column != *select.group_by) {
        return InvalidArgumentError(
            "non-aggregate column '" + item.column +
            "' must appear in GROUP BY");
      }
      bi.column = *group_col;
    } else if (!item.count_star) {
      const auto index = schema.FindColumn(item.column);
      if (!index) {
        return InvalidArgumentError("no column '" + item.column +
                                    "' in table '" + select.table + "'");
      }
      bi.column = *index;
    }
    bound_items.push_back(std::move(bi));
    result.columns.push_back(item.OutputName());
  }

  // Group rows. Without GROUP BY everything lands in one group (and the
  // group exists even when no rows match, per SQL aggregate semantics).
  std::map<std::string, std::pair<Value, std::vector<AggregateState>>> groups;
  auto make_states = [&]() {
    return std::vector<AggregateState>(bound_items.size());
  };
  if (!group_col) {
    groups.emplace("", std::make_pair(Value::Null(), make_states()));
  }
  for_each_matching([&](const Row& row) {
    const std::string key = group_col ? row[*group_col].Encode() : "";
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups
               .emplace(key, std::make_pair(
                                 group_col ? row[*group_col] : Value::Null(),
                                 make_states()))
               .first;
    }
    for (std::size_t i = 0; i < bound_items.size(); ++i) {
      const BoundItem& bi = bound_items[i];
      if (bi.item.aggregate == Aggregate::kNone) continue;
      it->second.second[i].Accumulate(
          bi.item.count_star ? Value::Null() : row[bi.column],
          bi.item.count_star);
    }
  });
  for (const auto& [key, group] : groups) {
    Row out;
    out.reserve(bound_items.size());
    for (std::size_t i = 0; i < bound_items.size(); ++i) {
      const BoundItem& bi = bound_items[i];
      if (bi.item.aggregate == Aggregate::kNone) {
        out.push_back(group.first);
      } else {
        out.push_back(group.second[i].Finish(bi.item.aggregate));
      }
    }
    result.rows.push_back(std::move(out));
  }
  if (select.order_by) {
    const auto out_pos = std::find(result.columns.begin(),
                                   result.columns.end(),
                                   select.order_by->column);
    if (out_pos == result.columns.end()) {
      return InvalidArgumentError(
          "ORDER BY in an aggregate query must name an output column");
    }
    const std::size_t key =
        static_cast<std::size_t>(out_pos - result.columns.begin());
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [&](const Row& a, const Row& b) {
                       const int c = a[key].Compare(b[key]);
                       return select.order_by->descending ? c > 0 : c < 0;
                     });
  }
  if (select.limit && result.rows.size() > *select.limit) {
    result.rows.resize(*select.limit);
  }
  return result;
}

Result<QueryResult> ExecuteInsert(Database& database,
                                  const InsertStatement& insert) {
  const Table* table = database.FindTable(insert.table);
  if (table == nullptr) {
    return NotFoundError("no table '" + insert.table + "'");
  }
  const TableSchema& schema = table->schema();
  std::vector<std::size_t> mapping;  // position in VALUES -> column index
  if (insert.columns.empty()) {
    for (std::size_t i = 0; i < schema.column_count(); ++i) {
      mapping.push_back(i);
    }
  } else {
    for (const std::string& name : insert.columns) {
      const auto index = schema.FindColumn(name);
      if (!index) {
        return InvalidArgumentError("no column '" + name + "' in table '" +
                                    insert.table + "'");
      }
      mapping.push_back(*index);
    }
  }
  QueryResult result;
  for (const std::vector<Value>& values : insert.rows) {
    if (values.size() != mapping.size()) {
      return InvalidArgumentError(StrFormat(
          "INSERT has %zu values for %zu columns", values.size(),
          mapping.size()));
    }
    Row row(schema.column_count(), Value::Null());
    for (std::size_t i = 0; i < values.size(); ++i) {
      row[mapping[i]] = values[i];
    }
    RETURN_IF_ERROR(database.Insert(insert.table, std::move(row)));
    ++result.affected_rows;
  }
  return result;
}

Result<QueryResult> ExecuteUpdate(Database& database,
                                  const UpdateStatement& update) {
  const Table* table = database.FindTable(update.table);
  if (table == nullptr) {
    return NotFoundError("no table '" + update.table + "'");
  }
  const TableSchema& schema = table->schema();
  ASSIGN_OR_RETURN(auto predicate, BindWhere(schema, update.where));
  std::vector<ColumnUpdate> updates;
  for (const auto& [name, value] : update.assignments) {
    const auto index = schema.FindColumn(name);
    if (!index) {
      return InvalidArgumentError("no column '" + name + "' in table '" +
                                  update.table + "'");
    }
    updates.push_back({*index, value});
  }
  ASSIGN_OR_RETURN(std::size_t affected,
                   database.Update(update.table, predicate, updates));
  QueryResult result;
  result.affected_rows = affected;
  return result;
}

Result<QueryResult> ExecuteDelete(Database& database,
                                  const DeleteStatement& del) {
  const Table* table = database.FindTable(del.table);
  if (table == nullptr) {
    return NotFoundError("no table '" + del.table + "'");
  }
  ASSIGN_OR_RETURN(auto predicate, BindWhere(table->schema(), del.where));
  ASSIGN_OR_RETURN(std::size_t affected,
                   database.Delete(del.table, predicate));
  QueryResult result;
  result.affected_rows = affected;
  return result;
}

}  // namespace

void SetIndexScanEnabled(bool enabled) { g_index_scan_enabled = enabled; }
bool IndexScanEnabled() { return g_index_scan_enabled; }
std::uint64_t IndexScanCount() { return g_index_scan_count; }
void ResetIndexScanCount() { g_index_scan_count = 0; }

std::string QueryResult::ToAsciiTable() const {
  std::vector<std::size_t> widths(columns.size());
  std::vector<std::vector<std::string>> rendered;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    widths[i] = columns[i].size();
  }
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    for (std::size_t i = 0; i < row.size(); ++i) {
      std::string cell = row[i].ToDisplayString();
      if (i < widths.size()) widths[i] = std::max(widths[i], cell.size());
      cells.push_back(std::move(cell));
    }
    rendered.push_back(std::move(cells));
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out += cells[i];
      if (i < widths.size()) {
        out.append(widths[i] - std::min(widths[i], cells[i].size()) + 2, ' ');
      }
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };
  emit_row(columns);
  std::vector<std::string> rule;
  for (const std::size_t w : widths) rule.push_back(std::string(w, '-'));
  emit_row(rule);
  for (const auto& cells : rendered) emit_row(cells);
  return out;
}

Result<QueryResult> ExecuteStatement(Database& database,
                                     const Statement& statement) {
  return std::visit(
      [&](const auto& stmt) -> Result<QueryResult> {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, SelectStatement>) {
          return ExecuteSelect(database, stmt);
        } else if constexpr (std::is_same_v<T, InsertStatement>) {
          return ExecuteInsert(database, stmt);
        } else if constexpr (std::is_same_v<T, UpdateStatement>) {
          return ExecuteUpdate(database, stmt);
        } else if constexpr (std::is_same_v<T, DeleteStatement>) {
          return ExecuteDelete(database, stmt);
        } else if constexpr (std::is_same_v<T, CreateTableStatement>) {
          RETURN_IF_ERROR(database.CreateTable(stmt.schema));
          return QueryResult{};
        } else {
          static_assert(std::is_same_v<T, DropTableStatement>);
          RETURN_IF_ERROR(database.DropTable(stmt.table));
          return QueryResult{};
        }
      },
      statement);
}

Result<QueryResult> ExecuteSql(Database& database, const std::string& sql) {
  ASSIGN_OR_RETURN(Statement statement, ParseStatement(sql));
  return ExecuteStatement(database, statement);
}

Result<QueryResult> ExecuteScript(Database& database, const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Statement> statements, ParseScript(sql));
  QueryResult last;
  for (const Statement& statement : statements) {
    ASSIGN_OR_RETURN(last, ExecuteStatement(database, statement));
  }
  return last;
}

}  // namespace goofi::db::sql
